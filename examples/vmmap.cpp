// vmmap: dump the virtual memory of two processes side by side, showing
// how the same segments appear with different access in different
// processes (per-user ACL entries), where the per-ring stacks live, and
// which words of each gated segment are gates.
//
// Build & run:  ./build/examples/vmmap
#include <cstdio>

#include "src/base/strings.h"
#include "src/mem/descriptor_segment.h"
#include "src/sys/machine.h"

using namespace rings;

namespace {

void DumpProcess(Machine& machine, Process* process) {
  std::printf("\nprocess %d (user '%s')  descriptor segment @%llu, %u slots, stack base %u\n",
              process->pid, process->user.c_str(),
              static_cast<unsigned long long>(process->dbr.base), process->dbr.bound,
              process->dbr.stack_base);
  std::printf("  segno  name            flags  brackets  gates  bound   paged  kind\n");
  DescriptorSegment dseg(&machine.memory(), process->dbr);
  for (Segno s = 0; s < machine.registry().next_segno(); ++s) {
    const auto sdw = dseg.Fetch(s);
    if (!sdw.has_value() || !sdw->present) {
      continue;
    }
    const RegisteredSegment* reg = machine.registry().FindBySegno(s);
    const char* kind = "shared";
    std::string name;
    if (reg != nullptr) {
      name = reg->name;
    } else if (s < kStackBaseSegno + kRingCount) {
      name = StrFormat("stack_ring_%u", s - kStackBaseSegno);
      kind = "private";
    } else {
      name = "<anonymous>";
      kind = "private";
    }
    std::printf("  %5u  %-14s  %5s  %8s  %5u  %5llu   %5s  %s\n", s, name.c_str(),
                sdw->access.flags.ToString().c_str(), sdw->access.brackets.ToString().c_str(),
                sdw->access.gate_count, static_cast<unsigned long long>(sdw->bound),
                sdw->paged ? "yes" : "no", kind);
  }
}

}  // namespace

int main() {
  Machine machine;

  // A small world: a shared library, a data base with per-user access, a
  // paged scratch area.
  machine.registry().CreatePagedSegment("paged_scratch", 4096,
                                        AccessControlList::Public(MakeDataSegment(4, 4)),
                                        /*populate=*/false);
  std::map<std::string, AccessControlList> acls;
  acls["mathlib"] = AccessControlList::Public(MakeProcedureSegment(1, 5));  // wide bracket
  acls["salaries"] = AccessControlList{{"hr", MakeDataSegment(4, 4)},
                                       {"audit", MakeReadOnlyDataSegment(4)}};
  std::string error;
  if (!machine.LoadProgramSource(R"(
        .segment mathlib
sqrt:   nop
        ret pr7|0

        .segment salaries
        .word 100000
        .word 120000
)",
                                 acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  Process* hr = machine.Login("hr");
  Process* audit = machine.Login("audit");
  Process* guest = machine.Login("guest");
  machine.supervisor().InitiateAll(hr);
  machine.supervisor().InitiateAll(audit);
  machine.supervisor().InitiateAll(guest);

  DumpProcess(machine, hr);
  DumpProcess(machine, audit);
  DumpProcess(machine, guest);

  std::printf(
      "\nnotes:\n"
      " * 'salaries' is rw- for hr but r-- for audit, and absent for guest —\n"
      "   one segment, three virtual memories, ACL-driven SDWs.\n"
      " * the supervisor gate segments appear identically everywhere, with\n"
      "   execute brackets [1,1] or [0,0] and gate extensions for callers.\n"
      " * stack_ring_n is writable only through ring n (brackets (n,n,n)).\n");
  return 0;
}

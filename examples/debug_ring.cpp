// User self-protection (paper, "Use of Rings"): "a user may debug a
// program by executing it in ring 5, where only procedure and data
// segments intended to be referenced by the program would be made
// accessible. The ring protection mechanisms would detect many of the
// addressing errors that could be made by the program and would prevent
// the untested program from accidently damaging other segments accessible
// from ring 4."
//
// The same buggy program (a stray store through a miscomputed pointer) is
// run twice: in ring 4, where it silently corrupts the user's address
// book, and in ring 5, where the ring hardware stops it cold.
//
// Build & run:  ./build/examples/debug_ring
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

constexpr char kBuggyProgram[] = R"(
; A program whose pointer arithmetic is off by one segment: it means to
; write into `scratch` but writes through a pointer into `addressbook`.
        .segment buggy
start:  ldai  0
        sta   okptr,*        ; the intended write (fine in both rings)
        ldai  999
        sta   badptr,*       ; the bug: stomps the address book
        mme   0
okptr:  .its  4, scratch, 0
badptr: .its  4, addressbook, 0

        .segment scratch
        .block 4

        .segment addressbook ; precious ring-4 data, writable to ring 4
        .word 5551234
        .word 5555678
)";

int run_in_ring(Ring ring, bool* killed, Word* book0) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  // The buggy program is certified for rings 4..5 (a wider execute
  // bracket, like a library under test).
  acls["buggy"] = AccessControlList::Public(MakeProcedureSegment(4, 5));
  // The debug scratch area is writable from ring 5.
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(5, 5));
  // The address book is a normal ring-4 segment: ring 5 cannot touch it.
  acls["addressbook"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine.LoadProgramSource(kBuggyProgram, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  Process* p = machine.Login("dev");
  machine.supervisor().InitiateAll(p);
  machine.Start(p, "buggy", "start", ring);
  machine.Run();
  *killed = p->state == ProcessState::kKilled;
  *book0 = *machine.PeekSegment("addressbook", 0);
  if (*killed) {
    std::printf("ring %u: process killed by %s at %u|%u — bug caught, address book intact\n",
                ring, std::string(TrapCauseName(p->kill_cause)).c_str(), p->kill_pc.segno,
                p->kill_pc.wordno);
  } else {
    std::printf("ring %u: process exited normally — address book word 0 is now %llu\n", ring,
                static_cast<unsigned long long>(*book0));
  }
  return 0;
}

int main() {
  std::printf("running the buggy program in ring 4 (production):\n  ");
  bool killed4 = false;
  Word book4 = 0;
  run_in_ring(4, &killed4, &book4);

  std::printf("running the buggy program in ring 5 (debug ring):\n  ");
  bool killed5 = false;
  Word book5 = 0;
  run_in_ring(5, &killed5, &book5);

  const bool ok = !killed4 && book4 == 999 &&  // ring 4: damage done
                  killed5 && book5 == 5551234;  // ring 5: damage prevented
  std::printf("\n%s\n", ok ? "debug ring contained the bug exactly as the paper describes"
                           : "UNEXPECTED BEHAVIOUR");
  return ok ? 0 : 1;
}

// Typewriter I/O restructuring (paper, Conclusions): "in the Multics
// typewriter I/O package, only the functions of copying data in and out
// of shared buffer areas and of executing the privileged instruction to
// initiate I/O channel operation need to be protected. But, since these
// two functions are deeply tangled with typewriter operation strategy and
// code conversion, the typewriter I/O control package is currently
// implemented as a set of procedures all located in the lowest numbered
// ring ... thus increasing the quantity of code which has maximum
// privilege."
//
// With cheap hardware ring crossings the package can be split: the
// strategy and code-conversion code runs in the user ring, and only a
// tiny buffer-copy + SIO stub runs in ring 0. This example runs both
// structures and reports the quantity of ring-0 code and the output.
//
// Build & run:  ./build/examples/typewriter
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

// Monolithic structure: conversion (lower-case -> upper-case) AND channel
// start all live in a ring-0 segment, entered through a gate.
constexpr char kMonolithic[] = R"(
        .segment tty0        ; everything in ring 0: max-privilege code
        .gates 1
gate:   tra   conv
conv:   lda   pr1|1,*        ; A = character (one per call, for simplicity)
        sba   lower_a
        tmi   emit           ; not lower case: emit as-is
        lda   pr1|1,*
        sba   case_delta     ; code conversion, needlessly in ring 0
        tra   send
emit:   lda   pr1|1,*
send:   sio   0, pr1|1,*     ; privileged channel start
        ret   pr7|0
lower_a: .word 97
case_delta: .word 32

        .segment umainA
astart: epp   pr1, args
        epp   pr2, g,*
        call  pr2|0          ; one crossing per character, into BIG ring-0 code
        mme   0
args:   .word 1
        .its  4, umainA, ch
        .word 1
ch:     .word 104            ; 'h'
g:      .its  4, tty0, 0
)";

// Split structure: conversion in ring 4; only copy+SIO in ring 0.
constexpr char kSplit[] = R"(
        .segment sio0        ; ring-0 stub: 4 words of max privilege
        .gates 1
gate:   sio   0, pr1|1,*     ; start channel on the caller's (validated) word
        ret   pr7|0

        .segment umainB
bstart: lda   ch             ; conversion strategy in the USER ring
        sba   lower_a
        tmi   emit
        lda   ch
        sba   case_delta
        sta   chv,*
        tra   send
emit:   lda   ch
        sta   chv,*
send:   epp   pr1, args
        epp   pr2, g,*
        call  pr2|0          ; tiny crossing: copy+SIO only
        mme   0
ch:     .word 104            ; 'h'
lower_a: .word 97
case_delta: .word 32
args:   .word 1
        .its  4, chbuf, 0
        .word 1
chv:    .its  4, chbuf, 0
g:      .its  4, sio0, 0

        .segment chbuf
        .word 0
)";

struct Report {
  uint64_t ring0_words = 0;
  uint64_t crossings = 0;
  uint64_t cycles = 0;
  ProcessState state{};
};

Report RunStructure(const char* source, const char* ring0_seg, const char* main_seg,
                    const char* entry) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls[ring0_seg] = AccessControlList::Public(MakeProcedureSegment(0, 0, 5, 1));
  acls[main_seg] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["chbuf"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine.LoadProgramSource(source, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    std::exit(1);
  }
  Process* p = machine.Login("user");
  machine.supervisor().InitiateAll(p);
  machine.Start(p, main_seg, entry, kUserRing);
  const RunResult result = machine.Run();

  Report report;
  report.ring0_words = machine.registry().Find(ring0_seg)->bound;
  report.crossings = machine.cpu().counters().calls_downward;
  report.cycles = result.cycles;
  report.state = p->state;
  return report;
}

int main() {
  const Report mono = RunStructure(kMonolithic, "tty0", "umainA", "astart");
  const Report split = RunStructure(kSplit, "sio0", "umainB", "bstart");

  std::printf("structure      ring0-code-words  crossings  cycles  state\n");
  std::printf("monolithic     %16llu  %9llu  %6llu  %s\n",
              static_cast<unsigned long long>(mono.ring0_words),
              static_cast<unsigned long long>(mono.crossings),
              static_cast<unsigned long long>(mono.cycles),
              mono.state == ProcessState::kExited ? "exited" : "KILLED");
  std::printf("split          %16llu  %9llu  %6llu  %s\n",
              static_cast<unsigned long long>(split.ring0_words),
              static_cast<unsigned long long>(split.crossings),
              static_cast<unsigned long long>(split.cycles),
              split.state == ProcessState::kExited ? "exited" : "KILLED");

  const bool ok = mono.state == ProcessState::kExited && split.state == ProcessState::kExited &&
                  split.ring0_words < mono.ring0_words;
  std::printf("\n%s: the split structure shrinks the maximum-privilege code by %.0f%%\n",
              ok ? "as the paper argues" : "UNEXPECTED",
              100.0 * (1.0 - static_cast<double>(split.ring0_words) /
                                 static_cast<double>(mono.ring0_words)));
  return ok ? 0 : 1;
}

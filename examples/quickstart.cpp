// Quickstart: assemble a guest program, load it with access control
// lists, log a user in, and watch a ring-4 program make a hardware
// downward call into a ring-1 supervisor gate — no trap, no supervisor
// software on the path.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

// The guest program: computes 6*7, writes it to the typewriter service's
// argument buffer... no — keeps it minimal: computes, stores into a data
// segment, asks the supervisor (via a gated call) which ring it called
// from, and exits with the product.
constexpr char kProgram[] = R"(
        .segment main
start:  ldai  6
        mpy   seven          ; A = 42
        sta   out,*          ; store into the data segment

        epp   pr2, gptr,*    ; PR2 <- address of the g_ring gate
        call  pr2|0          ; hardware downward call: ring 4 -> ring 1
        sta   out2,*         ; the service returned our ring in A

        lda   out,*
        mme   0              ; exit with A = 42
seven:  .word 7
out:    .its  4, results, 0
out2:   .its  4, results, 1
gptr:   .its  4, sup_gates, 3   ; gate 3 = "get caller ring"

        .segment results
        .block 2
)";

int main() {
  Machine machine;
  if (!machine.ok()) {
    std::fprintf(stderr, "machine construction failed\n");
    return 1;
  }

  // Access control lists: who may touch each segment, and with which ring
  // brackets. `main` is a pure procedure for ring 4; `results` is a
  // ring-4 data segment.
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["results"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine.LoadProgramSource(kProgram, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  // Log in and run.
  Process* alice = machine.Login("alice");
  machine.supervisor().InitiateAll(alice);
  machine.Start(alice, "main", "start", kUserRing);
  machine.trace().set_enabled(true);

  const RunResult result = machine.Run();

  std::printf("run: %s\n", result.ToString().c_str());
  std::printf("exit code:         %lld (expected 42)\n",
              static_cast<long long>(alice->exit_code));
  std::printf("service saw ring:  %llu (expected 4)\n",
              static_cast<unsigned long long>(*machine.PeekSegment("results", 1)));

  const Counters& c = machine.cpu().counters();
  std::printf("\n-- what the ring hardware did --\n");
  std::printf("instructions:       %llu\n", static_cast<unsigned long long>(c.instructions));
  std::printf("downward calls:     %llu (ring 4 -> 1, no trap)\n",
              static_cast<unsigned long long>(c.calls_downward));
  std::printf("upward returns:     %llu (ring 1 -> 4, no trap)\n",
              static_cast<unsigned long long>(c.returns_upward));
  std::printf("access validations: %llu\n", static_cast<unsigned long long>(c.TotalChecks()));
  std::printf("traps:              %llu (the final exit only)\n",
              static_cast<unsigned long long>(c.TotalTraps()));

  std::printf("\n-- ring switches and traps observed --\n");
  for (const TraceEvent& e : machine.trace().events()) {
    if (e.kind == EventKind::kRingSwitch || e.kind == EventKind::kTrap) {
      std::printf("%s\n", e.ToString().c_str());
    }
  }
  return alice->exit_code == 42 ? 0 : 1;
}

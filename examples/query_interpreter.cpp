// Protected subsystem #2 (paper, "Use of Rings"): "a subsystem to provide
// interpretive access to some sensitive data base and safely log each
// request for information."
//
// A ring-3 query interpreter guards a salary database that ordinary users
// cannot read. Users submit query programs (tiny bytecode in their own
// segments); the interpreter logs every request, executes only aggregate
// queries (SUM, COUNT), and refuses record-level SELECTs. The query
// buffer is read through the argument-list machinery, so a malicious
// query address is validated at the caller's ring automatically.
//
// Build & run:  ./build/examples/query_interpreter
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

constexpr char kSubsystem[] = R"(
; ---- the ring-3 interpreter -------------------------------------------
        .segment querysys
        .gates 1
gate:   tra   body
body:   aos   logp,*          ; safely log each request (ring-3 write)
        epp   pr4, pr1|1,*    ; PR4 = the caller's query buffer (caller-
                              ; level validation rides on the ring field)
        lda   pr4|0           ; query opcode
        sba   c_sum
        tze   do_sum
        lda   pr4|0
        sba   c_cnt
        tze   do_cnt
        ldai  -1              ; SELECT and anything else: refused
        ret   pr7|0
do_sum: epp   pr5, dbp,*
        stz   acc,*
        stz   idx,*
sloop:  ldx   x1, idx,*
        lda   pr5|0,x1
        ada   acc,*
        sta   acc,*
        aos   idx,*
        lda   idx,*
        sba   dblen
        tmi   sloop
        lda   acc,*
        ret   pr7|0
do_cnt: lda   dblen
        ret   pr7|0
c_sum:  .word 2
c_cnt:  .word 3
dblen:  .word 5
logp:   .its  3, querylog, 0
dbp:    .its  3, salarydb, 0
acc:    .its  3, qscratch, 0
idx:    .its  3, qscratch, 1

        .segment salarydb     ; the sensitive data: rings <= 3 only
        .word 91000
        .word 87000
        .word 105000
        .word 99000
        .word 118000

        .segment querylog
        .word 0

        .segment qscratch
        .block 2

; ---- user programs ------------------------------------------------------
        .segment sumq         ; SUM query
qs1:    epp   pr1, args1
        epp   pr2, gp1,*
        call  pr2|0
        mme   0
args1:  .word 1
        .its  4, sumq, q1
        .word 1
q1:     .word 2               ; opcode SUM
gp1:    .its  4, querysys, 0

        .segment selq         ; record-level SELECT: must be refused
qs2:    epp   pr1, args2
        epp   pr2, gp2,*
        call  pr2|0
        mme   0
args2:  .word 1
        .its  4, selq, q2
        .word 1
q2:     .word 1               ; opcode SELECT
gp2:    .its  4, querysys, 0

        .segment peek         ; bypass attempt: read the db directly
qs3:    lda   dbp2,*
        mme   0
dbp2:   .its  4, salarydb, 0
)";

int main() {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["querysys"] = AccessControlList::Public(MakeProcedureSegment(3, 3, 5, /*gate_count=*/1));
  acls["salarydb"] = AccessControlList::Public(MakeReadOnlyDataSegment(3));
  acls["querylog"] = AccessControlList::Public(MakeDataSegment(3, 4));  // users may read the log
  acls["qscratch"] = AccessControlList::Public(MakeDataSegment(3, 3));
  acls["sumq"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["selq"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["peek"] = AccessControlList::Public(MakeProcedureSegment(4, 4));

  std::string error;
  if (!machine.LoadProgramSource(kSubsystem, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  const auto run = [&](const char* seg, const char* entry) {
    Process* p = machine.Login("analyst");
    machine.supervisor().InitiateAll(p);
    machine.Start(p, seg, entry, kUserRing);
    machine.Run();
    return p;
  };

  Process* sum = run("sumq", "qs1");
  std::printf("SUM query:      state=%s result=%lld (expected 500000)\n",
              sum->state == ProcessState::kExited ? "exited" : "KILLED",
              static_cast<long long>(sum->exit_code));

  Process* sel = run("selq", "qs2");
  std::printf("SELECT query:   state=%s result=%lld (expected -1: refused by policy)\n",
              sel->state == ProcessState::kExited ? "exited" : "KILLED",
              static_cast<long long>(sel->exit_code));

  Process* peek = run("peek", "qs3");
  std::printf("direct read:    state=%s cause=%s (expected killed/read_violation)\n",
              peek->state == ProcessState::kKilled ? "killed" : "EXITED?",
              std::string(TrapCauseName(peek->kill_cause)).c_str());

  std::printf("query log:      %llu requests recorded (expected 2)\n",
              static_cast<unsigned long long>(*machine.PeekSegment("querylog", 0)));

  const bool ok = sum->exit_code == 500000 && sel->exit_code == -1 &&
                  peek->state == ProcessState::kKilled &&
                  *machine.PeekSegment("querylog", 0) == 2;
  std::printf("\n%s\n", ok ? "interpretive access with per-request logging, as the paper sketches"
                           : "UNEXPECTED BEHAVIOUR");
  return ok ? 0 : 1;
}

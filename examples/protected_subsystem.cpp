// Protected subsystem (paper, "Use of Rings"): "user A may wish to allow
// user B to access a sensitive data segment, but only through a special
// program, provided by A, that audits references to the segment."
//
// A's auditor executes in ring 3 with a gate callable from rings 4-5; the
// sensitive segment's ACL gives B brackets that end at ring 3, so B's
// ring-4 code can reach the data only through the auditor. Every access is
// counted in an audit-log segment writable only in ring 3.
//
// Build & run:  ./build/examples/protected_subsystem
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

constexpr char kSubsystem[] = R"(
; --- A's auditor: ring-3 protected subsystem with one gate -------------
        .segment auditor
        .gates 1
gate:   tra   body
body:   aos   logptr,*       ; audit: count the access (ring-3 write)
        ldx   x2, pr1|1,*    ; X2 = requested index, via B's argument list
        epp   pr3, dataptr,*
        lda   pr3|0,x2       ; A = sensitive[index]
        ret   pr7|0
logptr:  .its 3, auditlog, 0
dataptr: .its 3, sensitive, 0

; --- the sensitive data and audit log ----------------------------------
        .segment sensitive
        .word 1001
        .word 1002
        .word 1003

        .segment auditlog
        .word 0

; --- B's program: must go through the gate -----------------------------
        .segment bprog
bstart: epp   pr1, args
        epp   pr2, gateptr,*
        call  pr2|0          ; downward call: ring 4 -> ring 3
        mme   0              ; exit with the value the auditor returned
args:   .word 1
        .its  4, bprog, index
        .word 1
index:  .word 2              ; ask for sensitive[2]
gateptr: .its 4, auditor, 0

; --- B's naughty program: tries to read the data directly --------------
        .segment bsneak
sstart: lda   dptr,*
        mme   0
dptr:   .its  4, sensitive, 0
)";

int main() {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  // The auditor: executes in ring 3 only, gate extension lets rings 4-5
  // call in. (Its ACL could also be restricted to B; kept public here.)
  acls["auditor"] = AccessControlList::Public(MakeProcedureSegment(3, 3, 5, /*gate_count=*/1));
  // The sensitive segment: A uses it freely from ring 4; B's brackets end
  // at ring 3, so only code executing in ring <= 3 (the auditor) can read
  // it on B's behalf.
  acls["sensitive"] = AccessControlList{{"userA", MakeDataSegment(4, 4)},
                                        {"userB", MakeReadOnlyDataSegment(3)}};
  // The audit log: writable only in ring 3 (the auditor), readable by A.
  acls["auditlog"] = AccessControlList{{"userA", MakeDataSegment(3, 4)},
                                       {"userB", MakeDataSegment(3, 3)}};
  acls["bprog"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["bsneak"] = AccessControlList::Public(MakeProcedureSegment(4, 4));

  std::string error;
  if (!machine.LoadProgramSource(kSubsystem, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  // --- B goes through the gate: allowed, audited ------------------------
  Process* b1 = machine.Login("userB");
  machine.supervisor().InitiateAll(b1);
  machine.Start(b1, "bprog", "bstart", kUserRing);
  machine.Run();
  std::printf("B via auditor gate:   state=%s value=%lld (expected 1003)\n",
              b1->state == ProcessState::kExited ? "exited" : "KILLED",
              static_cast<long long>(b1->exit_code));
  std::printf("audit log count:      %llu (expected 1)\n",
              static_cast<unsigned long long>(*machine.PeekSegment("auditlog", 0)));

  // --- B tries to read the segment directly: denied ---------------------
  Process* b2 = machine.Login("userB");
  machine.supervisor().InitiateAll(b2);
  machine.Start(b2, "bsneak", "sstart", kUserRing);
  machine.Run();
  std::printf("B direct access:      state=%s cause=%s (expected killed/read_violation)\n",
              b2->state == ProcessState::kKilled ? "killed" : "EXITED?",
              std::string(TrapCauseName(b2->kill_cause)).c_str());

  // --- A reads the segment directly from ring 4: allowed ----------------
  Process* a = machine.Login("userA");
  machine.supervisor().InitiateAll(a);
  machine.Start(a, "bsneak", "sstart", kUserRing);
  machine.Run();
  std::printf("A direct access:      state=%s value=%lld (expected 1001)\n",
              a->state == ProcessState::kExited ? "exited" : "KILLED",
              static_cast<long long>(a->exit_code));

  const bool ok = b1->exit_code == 1003 && b2->state == ProcessState::kKilled &&
                  a->exit_code == 1001;
  std::printf("\n%s\n", ok ? "protected subsystem behaves as the paper describes"
                           : "UNEXPECTED BEHAVIOUR");
  return ok ? 0 : 1;
}

; linked.asm — dynamic linking: the main program calls `greeter` purely by
; name through a .link word. The first CALL takes a link fault; the
; supervisor snaps the link and the call proceeds into the ring-1 service,
; which prints through the typewriter gate and returns.
;
;   ./build/tools/ringsim --trace examples/asm/linked.asm
;
;; acl main * procedure 4 4
;; acl greeter * procedure 1 1 5
;; acl gdata * data 1 1
;; start main start 4

        .segment main
start:  epp   pr2, lk,*        ; link fault here, exactly once
        call  pr2|0
        epp   pr2, lk,*        ; already snapped: no fault
        call  pr2|0
        mme   0                ; exit with greeting count
lk:     .link 4, greeter, 0

        .segment greeter
        .gates 1
gate:   tra   body
body:   spp   pr7, savew,*     ; nested call below clobbers PR7
        epp   pr1, arglist
        epp   pr3, ttyg,*
        call  pr3|0            ; ring 1 -> ring 1 tty gate (same ring)
        aos   countp,*
        lda   countp,*
        ret   saver,*
arglist: .word 1
        .its  1, greeter, msg
        .word 4
msg:    .string hi!
        .word 10               ; newline
ttyg:   .its  1, sup_gates, 1
countp: .its  1, gdata, 0
savew:  .its  1, gdata, 1
saver:  .its  1, gdata, 1,*

        .segment gdata
        .block 2

; hello.asm — write "HELLO" to the typewriter through the ring-1 gate and
; exit with the number of characters written.
;
;   ./build/tools/ringsim examples/asm/hello.asm
;
;; acl main * procedure 4 4
;; start main start 4

        .segment main
start:  epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0            ; sup_gates gate 1: tty write
        mme   0                ; exit; A = characters written
arglist: .word 1
        .its  4, main, buf
        .word 5
buf:    .string HELLO
gateptr: .its 4, sup_gates, 1

; rings_demo.asm — two processes exercise the ring mechanisms:
;  * alice's program calls down into a gated ring-2 subsystem that tallies
;    calls in data only ring <= 2 may write;
;  * mallory's program tries to write the tally directly and is killed.
;
;   ./build/tools/ringsim --trace examples/asm/rings_demo.asm
;
; Add --stats to see the processor's counters, and --no-fastpath /
; --no-block-engine to ablate the host-side caches and the superblock
; engine — the simulated cycles are identical either way.
;
;; acl subsystem * procedure 2 2 5
;; acl tally * data 2 4
;; acl aprog * procedure 4 4
;; acl mprog * procedure 4 4
;; start aprog astart 4 alice
;; start mprog mstart 4 mallory

        .segment subsystem
        .gates 1
gate:   tra   body
body:   aos   tptr,*          ; count the call (ring-2 write)
        lda   tptr,*
        ret   pr7|0
tptr:   .its  2, tally, 0

        .segment tally
        .word 0

        .segment aprog
astart: epp   pr2, gptr,*
        call  pr2|0            ; 4 -> 2 through the gate
        epp   pr2, gptr,*
        call  pr2|0
        mme   0                ; exits with the tally (2)
gptr:   .its  4, subsystem, 0

        .segment mprog
mstart: ldai  999
        sta   tptr2,*          ; ring 4 writing ring-2 data: killed here
        mme   0
tptr2:  .its  4, tally, 0

// Layered supervisor (paper, "Use of Rings"): "the lowest-level
// supervisor procedures ... execute in ring 0. The remaining supervisor
// procedures execute in ring 1.... Some gates into ring 0 are accessible
// to the processes of all users, but only to procedures executing in
// ring 1. Such gates provide the internal interfaces between the two
// layers of the supervisor."
//
// This example builds a two-layer accounting service: the ring-1 layer
// (bookkeeping policy) is callable from user rings through a gate; it in
// turn calls a ring-0 layer (the "privileged core" that owns the ledger
// segment) through a ring-0 gate that only ring 1 can call. User code
// calling the ring-0 gate directly is refused.
//
// Build & run:  ./build/examples/layered_supervisor
#include <cstdio>

#include "src/sys/machine.h"

using namespace rings;

constexpr char kLayers[] = R"(
; ---- ring-0 layer: owns the ledger ------------------------------------
        .segment core0
        .gates 1
g0add:  tra   c0body
c0body: aos   ledptr,*       ; the only code that may touch the ledger
        ret   pr7|0
ledptr: .its  0, ledger, 0

        .segment ledger      ; writable in ring 0 only, readable to ring 4
        .word 0

; ---- ring-1 layer: policy, calls down into ring 0 ---------------------
        .segment acct1
        .gates 1
g1chg:  tra   a1body
a1body: spp   pr7, savew,*   ; making a nested call clobbers PR7: save it
        aos   statptr,*      ; layer-1 bookkeeping (ring-1 data)
        epp   pr2, coreptr,*
        call  pr2|0          ; internal interface: ring 1 -> ring 0 gate
        ret   saver,*        ; return via the saved pointer (ring field
                             ; kept the caller's ring, so this is safe)
statptr: .its 1, stats1, 0
coreptr: .its 1, core0, 0
savew:  .its 1, stats1, 1    ; the save slot itself (SPP target)
saver:  .its 1, stats1, 1,*  ; chains through the saved word (RET path)

        .segment stats1      ; ring-1 layer's own data
        .word 0
        .word 0              ; saved return pointer slot

; ---- user program ------------------------------------------------------
        .segment user
ustart: epp   pr2, acctptr,*
        call  pr2|0          ; user -> ring-1 gate (legal)
        epp   pr2, acctptr,*
        call  pr2|0          ; charge twice
        lda   ledread,*
        mme   0              ; exit with the ledger value
acctptr: .its 4, acct1, 0
ledread: .its 4, ledger, 0

        .segment usneak      ; user tries the ring-0 gate directly
sstart: epp   pr2, coreptr2,*
        call  pr2|0
        mme   0
coreptr2: .its 4, core0, 0
)";

int main() {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  // Ring-0 layer: execute bracket [0,0]; gate extension reaches only
  // ring 1 — the internal interface between the two supervisor layers.
  acls["core0"] = AccessControlList::Public(MakeProcedureSegment(0, 0, 1, /*gate_count=*/1));
  // The ledger: writable in ring 0 only; users may read their balance.
  acls["ledger"] = AccessControlList::Public(MakeDataSegment(0, 4));
  // Ring-1 layer: callable from rings 2-5 like other supervisor gates.
  acls["acct1"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));
  acls["stats1"] = AccessControlList::Public(MakeDataSegment(1, 1));
  acls["user"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["usneak"] = AccessControlList::Public(MakeProcedureSegment(4, 4));

  std::string error;
  if (!machine.LoadProgramSource(kLayers, acls, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  // Legitimate path: user -> ring-1 gate -> ring-0 gate.
  Process* u = machine.Login("user");
  machine.supervisor().InitiateAll(u);
  machine.Start(u, "user", "ustart", kUserRing);
  machine.trace().set_enabled(true);
  machine.Run();
  std::printf("layered charge path:  state=%s ledger=%lld (expected 2)\n",
              u->state == ProcessState::kExited ? "exited" : "KILLED",
              static_cast<long long>(u->exit_code));
  std::printf("ring switches: ");
  for (const Ring r : machine.trace().RingSwitchSequence()) {
    std::printf("%u ", r);
  }
  std::printf(" (expected 1 0 1 4 1 0 1 4)\n");

  // Illegitimate path: user calls the ring-0 gate directly. Ring 4 is
  // outside core0's gate extension (which stops at ring 1): refused.
  Process* s = machine.Login("user");
  machine.supervisor().InitiateAll(s);
  machine.Start(s, "usneak", "sstart", kUserRing);
  machine.Run();
  std::printf("direct ring-0 call:   state=%s cause=%s (expected killed/execute_violation)\n",
              s->state == ProcessState::kKilled ? "killed" : "EXITED?",
              std::string(TrapCauseName(s->kill_cause)).c_str());

  // The layering payoff the paper describes: "changes can be made in
  // ring 1 without having to recertify the correct operation of the
  // procedures in ring 0" — only core0 can write the ledger:
  std::printf("ring-1 stats counter: %llu (layer 1 ran twice)\n",
              static_cast<unsigned long long>(*machine.PeekSegment("stats1", 0)));

  const bool ok = u->exit_code == 2 && s->state == ProcessState::kKilled &&
                  *machine.PeekSegment("stats1", 0) == 2;
  std::printf("\n%s\n", ok ? "two-layer supervisor enforced by rings, as the paper describes"
                           : "UNEXPECTED BEHAVIOUR");
  return ok ? 0 : 1;
}

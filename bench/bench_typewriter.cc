// Experiment U4 — the typewriter I/O restructuring argument from the
// paper's Conclusions: with cheap hardware crossings, only the buffer
// copy and the privileged SIO need to live in ring 0; strategy and code
// conversion can move to the user ring. The monolithic structure exists
// only because "a call to the supervisor is relatively expensive".
//
// Measures, for a stream of N characters: total cycles, crossings, and
// the quantity of maximum-privilege code, for the monolithic vs split
// structures on ring hardware, and for the monolithic structure on the
// 645 baseline (where the expensive-crossing assumption was true).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

// Monolithic: conversion + SIO in ring 0; one crossing per character.
std::string MonolithicSource(int chars) {
  return StrFormat(R"(
        .segment tty0
        .gates 1
gate:   lda   pr1|1,*
        sba   lower_a
        tmi   emit
        lda   pr1|1,*
        sba   case_delta
        tra   send
emit:   lda   pr1|1,*
send:   sio   0, pr1|1,*
        ret   pr7|0
lower_a: .word 97
case_delta: .word 32

        .segment main
start:  epp   pr1, args
loop:   epp   pr2, g,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word %d
args:   .word 1
        .its  4, chdata, 0
        .word 1
cnt:    .its  4, counter, 0
g:      .its  4, tty0, 0

        .segment chdata
        .word 104

        .segment counter
        .word 0
)",
                   chars);
}

// Split: conversion in ring 4; ring 0 holds only the SIO stub.
std::string SplitSource(int chars) {
  return StrFormat(R"(
        .segment sio0
        .gates 1
gate:   sio   0, pr1|1,*
        ret   pr7|0

        .segment main
start:  epp   pr1, args
loop:   lda   chv,*
        sba   lower_a
        tmi   emit
        lda   chv,*
        sba   case_delta
        sta   outv,*
        tra   send
emit:   lda   chv,*
        sta   outv,*
send:   epp   pr2, g,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word %d
lower_a: .word 97
case_delta: .word 32
args:   .word 1
        .its  4, chdata, 1
        .word 1
chv:    .its  4, chdata, 0
outv:   .its  4, chdata, 1
cnt:    .its  4, counter, 0
g:      .its  4, sio0, 0

        .segment chdata
        .word 104
        .word 0

        .segment counter
        .word 0
)",
                   chars);
}

struct TtyResult {
  uint64_t cycles = 0;
  uint64_t crossings = 0;
  uint64_t ring0_words = 0;
  uint64_t traps = 0;
};

TtyResult RunTty(const std::string& source, const char* ring0_seg) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls[ring0_seg] = AccessControlList::Public(MakeProcedureSegment(0, 0, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["chdata"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine.LoadProgramSource(source, acls, &error)) {
    std::fprintf(stderr, "tty bench setup failed: %s\n", error.c_str());
    std::abort();
  }
  Process* p = machine.Login("bench");
  machine.supervisor().InitiateAll(p);
  machine.Start(p, "main", "start", kUserRing);
  machine.Run(1'000'000'000);
  if (p->state != ProcessState::kExited) {
    std::fprintf(stderr, "tty bench killed: %s at %u|%u\n",
                 std::string(TrapCauseName(p->kill_cause)).c_str(), p->kill_pc.segno,
                 p->kill_pc.wordno);
    std::abort();
  }
  TtyResult r;
  r.cycles = machine.cpu().cycles();
  r.crossings = machine.cpu().counters().calls_downward;
  r.ring0_words = machine.registry().Find(ring0_seg)->bound;
  r.traps = machine.cpu().counters().TotalTraps();
  return r;
}

void PrintReport() {
  const int chars = 500;
  PrintBanner("U4 — typewriter I/O package restructuring",
              "500 characters written; conversion per character. The split\n"
              "structure shrinks ring-0 code; with hardware crossings it costs\n"
              "about the same cycles, so the paper's 'expensive supervisor call'\n"
              "reason for the monolith disappears.");
  const TtyResult mono = RunTty(MonolithicSource(chars), "tty0");
  const TtyResult split = RunTty(SplitSource(chars), "sio0");
  std::printf("  structure    ring0-words  crossings   cycles   cycles/char\n");
  std::printf("  monolithic   %11llu  %9llu  %7llu   %11.2f\n",
              static_cast<unsigned long long>(mono.ring0_words),
              static_cast<unsigned long long>(mono.crossings),
              static_cast<unsigned long long>(mono.cycles),
              static_cast<double>(mono.cycles) / chars);
  std::printf("  split        %11llu  %9llu  %7llu   %11.2f\n",
              static_cast<unsigned long long>(split.ring0_words),
              static_cast<unsigned long long>(split.crossings),
              static_cast<unsigned long long>(split.cycles),
              static_cast<double>(split.cycles) / chars);
  std::printf("\n  maximum-privilege code reduced %.0f%% at %.1f%% cycle cost change.\n",
              100.0 * (1.0 - static_cast<double>(split.ring0_words) / mono.ring0_words),
              100.0 * (static_cast<double>(split.cycles) / mono.cycles - 1.0));
}

void BM_TtySplit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunTty(SplitSource(100), "sio0"));
  }
}
BENCHMARK(BM_TtySplit)->Iterations(10);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiment SV — the multi-tenant serving core: machines/second and
// turnaround percentiles versus offered load, and the golden-image spawn
// latency that makes the daemon's admission path cheap.
//
// Saturation: a closed batch of `load` mixed submissions (gate-crossing
// call loops and demand pagers, as kasm source) is thrown at a Server at
// once; the submit-to-retire turnaround of every submission and the
// batch wall time are recorded at 1, 4, and 8 worker threads. The served
// trajectories are deterministic — every sim_* counter below is
// invariant across thread counts and iterations and is gated exactly by
// tools/bench_check.py; machines/sec and the p50/p99 turnarounds are
// host-dependent (gated one-sidedly, opt-in, see bench_check --wall).
//
// Spawn: submissions materialize machines by cloning a sealed golden
// image copy-on-write instead of construct+load. BM_SpawnLatency times
// both paths; the report enforces the >=10x advantage the serving
// design assumes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fleet/fingerprint.h"
#include "src/kasm/assembler.h"
#include "src/serve/server.h"
#include "src/sys/manifest.h"

namespace rings {
namespace {

// Self-contained guests (kasm + `;;` manifest), the daemon's submission
// format. Two program shapes: the Figure 8 gate-crossing call loop and
// the demand-paged counter; each in two sizes so the batch exercises
// four distinct golden images.
std::string CallLoopGuest(int iters) {
  return StrFormat(R"(;; acl main * procedure 4 4
;; acl counter * data 4 4
;; acl target * procedure 1 1 7
;; start main start 4
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word %d
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)",
                   iters);
}

std::string PagerGuest(int iters) {
  return StrFormat(R"(;; acl pager * procedure 4 4
;; acl bigdata * data 4 4
;; segment bigdata 2048 paged demand
;; start pager pstart 4
        .segment pager
pstart: aos   cnt,*
        lda   far,*
        adai  1
        sta   far,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        mme   0
plim:   .word %d
cnt:    .its  4, bigdata, 10
far:    .its  4, bigdata, 1034
)",
                   iters);
}

const std::vector<std::string>& BenchGuests() {
  static const std::vector<std::string>* kGuests = new std::vector<std::string>{
      CallLoopGuest(1500), PagerGuest(2000), CallLoopGuest(3000), PagerGuest(4000)};
  return *kGuests;
}

// Small machines: a saturated server holds many live at once, so the
// bench keeps each core store at 2^18 words rather than the 2^22
// default (COW makes even that mostly shared zero frames).
ServeConfig BenchServeConfig(int threads) {
  ServeConfig config;
  config.threads = threads;
  config.machine_memory_words = size_t{1} << 18;
  // CI ablation hooks: the bench gate runs the suite with the block
  // engine and then chaining forced off, and every pass must report the
  // same sim_* counters and fingerprint fold.
  config.block_engine = BlockEngineEnvEnabled();
  config.chain = BlockChainEnvEnabled();
  config.shared_decode = SharedDecodeEnvEnabled();
  return config;
}

double Percentile(std::vector<double> sorted_ns, double p) {
  if (sorted_ns.empty()) {
    return 0;
  }
  std::sort(sorted_ns.begin(), sorted_ns.end());
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted_ns.size() - 1));
  return sorted_ns[index];
}

void BM_ServeSaturation(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int load = static_cast<int>(state.range(1));
  WallSampler wall;
  double fold = 0;
  double total_cycles = 0;
  double total_instructions = 0;
  double machines_per_sec_best = 0;
  double p50_best = 0, p99_best = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Server server(BenchServeConfig(threads));
    state.ResumeTiming();
    wall.Begin();
    std::vector<uint64_t> ids;
    ids.reserve(static_cast<size_t>(load));
    for (int i = 0; i < load; ++i) {
      Submission submission;
      submission.source = BenchGuests()[static_cast<size_t>(i) % BenchGuests().size()];
      ids.push_back(server.Submit(std::move(submission)));
    }
    std::vector<Completion> completions;
    completions.reserve(ids.size());
    for (const uint64_t id : ids) {
      completions.push_back(server.Wait(id));
    }
    wall.End();
    state.PauseTiming();
    FingerprintBuilder builder;
    std::vector<double> turnarounds_ns;
    double cycles = 0, instructions = 0;
    for (const Completion& completion : completions) {
      if (!completion.ok()) {
        std::fprintf(stderr, "bench_serve: submission failed: %s\n",
                     completion.ToString().c_str());
        std::abort();
      }
      builder.Mix(completion.fingerprint);
      turnarounds_ns.push_back(static_cast<double>(completion.turnaround_ns));
      cycles += static_cast<double>(completion.cycles);
      instructions += static_cast<double>(completion.instructions);
    }
    const double f = static_cast<double>(builder.digest() & 0xffffffffull);
    if (fold != 0 && f != fold) {
      std::fprintf(stderr, "bench_serve: fingerprints changed between iterations\n");
      std::abort();
    }
    fold = f;
    total_cycles = cycles;
    total_instructions = instructions;
    const double wall_s = wall.MinNs() / 1e9;
    if (wall_s > 0) {
      machines_per_sec_best =
          std::max(machines_per_sec_best, static_cast<double>(load) / wall_s);
    }
    const double p50 = Percentile(turnarounds_ns, 0.50);
    const double p99 = Percentile(turnarounds_ns, 0.99);
    // Noise only ever adds latency: keep the best (lowest) percentile
    // sample across iterations, matching WallSampler's min logic.
    p50_best = p50_best == 0 ? p50 : std::min(p50_best, p50);
    p99_best = p99_best == 0 ? p99 : std::min(p99_best, p99);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_instructions));
  // Thread-count and iteration invariant (gated exactly).
  state.counters["sim_machines"] = static_cast<double>(load);
  state.counters["sim_completed"] = static_cast<double>(load);
  state.counters["sim_total_cycles"] = total_cycles;
  state.counters["sim_total_instructions"] = total_instructions;
  state.counters["sim_fingerprint_fold"] = fold;
  // Host-dependent (one-sided opt-in gate: throughput may not drop,
  // tail latency may not rise).
  state.counters["wall_machines_per_sec"] = machines_per_sec_best;
  state.counters["wall_p50_ns"] = p50_best;
  state.counters["wall_p99_ns"] = p99_best;
  state.counters["wall_min_ns"] = wall.MinNs();
}

BENCHMARK(BM_ServeSaturation)
    ->ArgNames({"threads", "load"})
    ->Args({1, 8})
    ->Args({1, 32})
    ->Args({4, 8})
    ->Args({4, 32})
    ->Args({8, 8})
    ->Args({8, 32})
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- spawn latency: golden clone vs cold construct+load --------------------

struct SpawnRig {
  std::string source;
  std::unique_ptr<Machine> golden;
};

// The daemon's cold path for a source submission — exactly what the
// golden-image registry's build function does once per distinct program
// and what every submission would pay without golden images:
// assemble + parse manifest + construct + load.
std::unique_ptr<Machine> ColdBoot(const std::string& source) {
  const AssembleResult assembled = Assemble(source);
  const Manifest manifest = ParseManifest(source);
  if (!assembled.ok || !manifest.ok()) {
    std::fprintf(stderr, "bench_serve: spawn guest assembly failed\n");
    std::abort();
  }
  MachineConfig config;
  config.memory_words = size_t{1} << 18;
  auto machine = std::make_unique<Machine>(config);
  std::string error;
  if (!machine->ok() ||
      !InstantiateGuest(assembled.program, manifest, machine.get(), &error)) {
    std::fprintf(stderr, "bench_serve: cold boot failed: %s\n", error.c_str());
    std::abort();
  }
  return machine;
}

SpawnRig MakeSpawnRig() {
  SpawnRig rig;
  rig.source = CallLoopGuest(1500);
  rig.golden = ColdBoot(rig.source);
  rig.golden->memory().SealForCloning();
  return rig;
}

void BM_SpawnLatency(benchmark::State& state) {
  const bool cold = state.range(0) == 1;
  const SpawnRig rig = MakeSpawnRig();
  for (auto _ : state) {
    std::unique_ptr<Machine> machine =
        cold ? ColdBoot(rig.source) : Machine::CloneFrom(*rig.golden);
    if (machine == nullptr) {
      std::fprintf(stderr, "bench_serve: spawn failed\n");
      std::abort();
    }
    benchmark::DoNotOptimize(machine);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_SpawnLatency)
    ->ArgName("cold")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Human-readable report, and the hard floor on the clone advantage: the
// serving design assumes spawning from a golden image beats a cold
// construct+load by at least 10x.
void PrintSpawnReport() {
  PrintBanner("SV — serving core: golden-image spawn vs cold boot",
              "Median latency to produce a runnable machine for the call-loop\n"
              "guest: copy-on-write clone of a sealed golden image versus the\n"
              "cold submission path it replaces (assemble + parse manifest +\n"
              "construct + load).");
  const SpawnRig rig = MakeSpawnRig();
  const auto median_ns = [](std::vector<double>& samples) {
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  std::vector<double> clone_ns, cold_ns;
  for (int i = 0; i < 200; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto machine = Machine::CloneFrom(*rig.golden);
    clone_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count()));
    if (machine == nullptr) {
      std::fprintf(stderr, "bench_serve: clone failed\n");
      std::abort();
    }
  }
  for (int i = 0; i < 30; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto machine = ColdBoot(rig.source);
    cold_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count()));
  }
  const double clone_median = median_ns(clone_ns);
  const double cold_median = median_ns(cold_ns);
  const double speedup = clone_median > 0 ? cold_median / clone_median : 0;
  std::printf("  clone:      %10.1f us median (200 spawns)\n", clone_median / 1000.0);
  std::printf("  cold boot:  %10.1f us median (30 boots)\n", cold_median / 1000.0);
  std::printf("  advantage:  %9.1fx  (target >= 10x: %s)\n", speedup,
              speedup >= 10.0 ? "PASS" : "FAIL");
  if (speedup < 10.0) {
    std::fprintf(stderr, "bench_serve: golden spawn advantage below the 10x floor\n");
    std::abort();
  }
}

// Saturation scaling table for humans; the gated figures come from the
// benchmark JSON above.
void PrintSaturationReport() {
  std::printf("\n  saturation (closed batch of 32 mixed submissions):\n");
  std::printf("  threads  wall-ms  machines/s   p50-turnaround-ms  p99-turnaround-ms\n");
  for (const int threads : {1, 4, 8}) {
    Server server(BenchServeConfig(threads));
    const auto start = std::chrono::steady_clock::now();
    std::vector<uint64_t> ids;
    for (int i = 0; i < 32; ++i) {
      Submission submission;
      submission.source = BenchGuests()[static_cast<size_t>(i) % BenchGuests().size()];
      ids.push_back(server.Submit(std::move(submission)));
    }
    std::vector<double> turnarounds_ns;
    for (const uint64_t id : ids) {
      const Completion completion = server.Wait(id);
      if (!completion.ok()) {
        std::fprintf(stderr, "bench_serve: submission failed: %s\n",
                     completion.ToString().c_str());
        std::abort();
      }
      turnarounds_ns.push_back(static_cast<double>(completion.turnaround_ns));
    }
    const double wall_s =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()) /
        1e9;
    std::printf("  %7d  %7.1f  %10.0f  %17.2f  %17.2f\n", threads, wall_s * 1e3,
                wall_s > 0 ? 32.0 / wall_s : 0.0, Percentile(turnarounds_ns, 0.50) / 1e6,
                Percentile(turnarounds_ns, 0.99) / 1e6);
  }
}

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintSpawnReport();
  rings::PrintSaturationReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Paging ablation: the paper asserts paging is transparent to access
// control and (appropriately implemented) does not change the protection
// story. Measures what the page-table walk costs per reference, and what
// a demand-zero page fault costs end to end (trap + supervisor fill +
// resumed instruction).
//
// The BM_Sum* wall-clock benchmarks additionally isolate what the
// software TLB buys the host: machine construction and assembly stay
// outside the timed region, so paged-vs-unpaged and fast-path-on-vs-off
// compare machine.Run() alone. The attached sim_* counters are
// deterministic and gated by tools/bench_check.py; the simulated cycle
// counts are identical with the fast path on or off.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mem/page_table.h"

namespace rings {
namespace {

// The same summing workload over an unpaged vs paged data segment,
// loaded and started but not yet run.
struct SumRig {
  std::unique_ptr<Machine> machine;
  Process* process = nullptr;
};

SumRig SetupSum(bool paged, bool populate, bool fast_path, bool block_engine = true) {
  MachineConfig config;
  config.fast_path = fast_path;
  config.block_engine = block_engine && BlockEngineEnvEnabled();
  SumRig rig;
  rig.machine = std::make_unique<Machine>(config);
  Machine& machine = *rig.machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  const AccessControlList data_acl = AccessControlList::Public(MakeDataSegment(4, 4));
  if (paged) {
    machine.registry().CreatePagedSegment("data", 4 * kPageWords, data_acl, populate);
  } else {
    machine.registry().CreateSegment("data", 4 * kPageWords, data_acl);
  }
  std::string error;
  if (!machine.LoadProgramSource(R"(
        .segment main
start:  stz   idx,*
loop:   ldx   x1, idx,*
        ldai  3
        sta   pr2|0,x1
        aos   idx,*
        lda   idx,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 3000
idx:    .its  4, scratch, 0
dp:     .its  4, data, 0

        .segment scratch
        .word 0
)",
                                 acls, &error)) {
    std::fprintf(stderr, "paging bench setup failed: %s\n", error.c_str());
    std::abort();
  }
  rig.process = machine.Login("bench");
  machine.supervisor().InitiateAll(rig.process);
  machine.Start(rig.process, "main", "start", kUserRing);
  // PR2 -> data segment.
  rig.process->saved_regs.pr[2] =
      PointerRegister{kUserRing, machine.registry().Find("data")->segno, 0};
  return rig;
}

RunCost FinishSum(SumRig& rig) {
  rig.machine->Run(1'000'000'000);
  if (rig.process->state != ProcessState::kExited) {
    std::fprintf(stderr, "paging bench killed: %s\n",
                 std::string(TrapCauseName(rig.process->kill_cause)).c_str());
    std::abort();
  }
  return RunCost{rig.machine->cpu().cycles(), rig.machine->cpu().counters()};
}

RunCost RunSum(bool paged, bool populate, bool fast_path = true, bool block_engine = true) {
  SumRig rig = SetupSum(paged, populate, fast_path, block_engine);
  return FinishSum(rig);
}

void PrintReport() {
  PrintBanner("Paging — transparency and cost",
              "3000 stores across 3 pages of a 4-page data segment.");
  // The ASSERT label above is a no-op statement label; nothing to do.
  const RunCost unpaged = RunSum(false, /*populate=*/true);
  const RunCost pre = RunSum(true, true);
  const RunCost demand = RunSum(true, false);

  std::printf("  configuration          cycles   page walks   faults   pages supplied\n");
  std::printf("  unpaged            %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(unpaged.cycles),
              static_cast<unsigned long long>(unpaged.counters.page_walks),
              static_cast<unsigned long long>(
                  unpaged.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(unpaged.counters.pages_supplied));
  std::printf("  paged, prefilled   %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(pre.cycles),
              static_cast<unsigned long long>(pre.counters.page_walks),
              static_cast<unsigned long long>(pre.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(pre.counters.pages_supplied));
  std::printf("  paged, demand-zero %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(demand.cycles),
              static_cast<unsigned long long>(demand.counters.page_walks),
              static_cast<unsigned long long>(
                  demand.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(demand.counters.pages_supplied));
  std::printf("\n  per-reference walk cost: %.3f cycles; per-fault cost: %.1f cycles\n",
              static_cast<double>(pre.cycles - unpaged.cycles) /
                  static_cast<double>(pre.counters.page_walks),
              pre.counters.pages_supplied == demand.counters.pages_supplied
                  ? 0.0
                  : static_cast<double>(demand.cycles - pre.cycles) /
                        static_cast<double>(demand.counters.pages_supplied));
  std::printf("  access checks: %llu / %llu / %llu — paging adds none except the\n"
              "  re-validation of instructions re-executed after a fault.\n",
              static_cast<unsigned long long>(unpaged.counters.TotalChecks()),
              static_cast<unsigned long long>(pre.counters.TotalChecks()),
              static_cast<unsigned long long>(demand.counters.TotalChecks()));
}

// Host-time cost of one full summing run, machine.Run() only. The sim_*
// counters come from one extra deterministic run of the same
// configuration; tools/bench_check.py gates CI on them (and on the
// invariant that sim_cycles does not depend on the fast path).
void SumLoop(benchmark::State& state, bool paged, bool populate, bool fast_path,
             bool block_engine) {
  WallSampler wall;
  for (auto _ : state) {
    state.PauseTiming();
    SumRig rig = SetupSum(paged, populate, fast_path, block_engine);
    state.ResumeTiming();
    wall.Begin();
    rig.machine->Run(1'000'000'000);
    wall.End();
    benchmark::DoNotOptimize(rig.machine->cpu().cycles());
    state.PauseTiming();
    if (rig.process->state != ProcessState::kExited) {
      std::fprintf(stderr, "paging bench killed: %s\n",
                   std::string(TrapCauseName(rig.process->kill_cause)).c_str());
      std::abort();
    }
    rig.machine.reset();  // destruction stays untimed too
    state.ResumeTiming();
  }
  const RunCost sim = RunSum(paged, populate, fast_path, block_engine);
  state.counters["sim_cycles"] = static_cast<double>(sim.cycles);
  state.counters["sim_page_walks"] = static_cast<double>(sim.counters.page_walks);
  state.counters["sim_checks"] = static_cast<double>(sim.counters.TotalChecks());
  state.counters["sim_pages_supplied"] = static_cast<double>(sim.counters.pages_supplied);
  state.counters["sim_tlb_hits"] = static_cast<double>(sim.counters.tlb_hits);
  state.counters["wall_min_ns"] = wall.MinNs();
  state.counters["wall_median_ns"] = wall.MedianNs();
}

void BM_SumUnpaged(benchmark::State& state) { SumLoop(state, false, true, true, true); }
void BM_SumUnpaged_NoFastPath(benchmark::State& state) {
  SumLoop(state, false, true, false, false);
}
void BM_SumUnpaged_NoBlockEngine(benchmark::State& state) {
  SumLoop(state, false, true, true, false);
}
void BM_SumPaged(benchmark::State& state) { SumLoop(state, true, true, true, true); }
void BM_SumPaged_NoFastPath(benchmark::State& state) {
  SumLoop(state, true, true, false, false);
}
void BM_SumPaged_NoBlockEngine(benchmark::State& state) {
  SumLoop(state, true, true, true, false);
}
void BM_SumDemandZero(benchmark::State& state) { SumLoop(state, true, false, true, true); }
BENCHMARK(BM_SumUnpaged)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumUnpaged_NoFastPath)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumUnpaged_NoBlockEngine)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumPaged)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumPaged_NoFastPath)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumPaged_NoBlockEngine)->Iterations(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumDemandZero)->Iterations(20)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

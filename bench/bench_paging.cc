// Paging ablation: the paper asserts paging is transparent to access
// control and (appropriately implemented) does not change the protection
// story. Measures what the page-table walk costs per reference, and what
// a demand-zero page fault costs end to end (trap + supervisor fill +
// resumed instruction).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mem/page_table.h"

namespace rings {
namespace {

// The same summing workload over an unpaged vs paged data segment.
RunCost RunSum(bool paged, bool populate) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  const AccessControlList data_acl = AccessControlList::Public(MakeDataSegment(4, 4));
  if (paged) {
    machine.registry().CreatePagedSegment("data", 4 * kPageWords, data_acl, populate);
  } else {
    machine.registry().CreateSegment("data", 4 * kPageWords, data_acl);
  }
  std::string error;
  if (!machine.LoadProgramSource(R"(
        .segment main
start:  stz   idx,*
loop:   ldx   x1, idx,*
        ldai  3
        sta   pr2|0,x1
        aos   idx,*
        lda   idx,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 3000
idx:    .its  4, scratch, 0
dp:     .its  4, data, 0

        .segment scratch
        .word 0
)",
                                 acls, &error)) {
    std::fprintf(stderr, "paging bench setup failed: %s\n", error.c_str());
    std::abort();
  }
  Process* p = machine.Login("bench");
  machine.supervisor().InitiateAll(p);
  machine.Start(p, "main", "start", kUserRing);
  // PR2 -> data segment.
  p->saved_regs.pr[2] =
      PointerRegister{kUserRing, machine.registry().Find("data")->segno, 0};
  machine.Run(1'000'000'000);
  if (p->state != ProcessState::kExited) {
    std::fprintf(stderr, "paging bench killed: %s\n",
                 std::string(TrapCauseName(p->kill_cause)).c_str());
    std::abort();
  }
  return RunCost{machine.cpu().cycles(), machine.cpu().counters()};
}

void PrintReport() {
  PrintBanner("Paging — transparency and cost",
              "3000 stores across 3 pages of a 4-page data segment.");
  // The ASSERT label above is a no-op statement label; nothing to do.
  const RunCost unpaged = RunSum(false, /*populate=*/true);
  const RunCost pre = RunSum(true, true);
  const RunCost demand = RunSum(true, false);

  std::printf("  configuration          cycles   page walks   faults   pages supplied\n");
  std::printf("  unpaged            %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(unpaged.cycles),
              static_cast<unsigned long long>(unpaged.counters.page_walks),
              static_cast<unsigned long long>(
                  unpaged.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(unpaged.counters.pages_supplied));
  std::printf("  paged, prefilled   %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(pre.cycles),
              static_cast<unsigned long long>(pre.counters.page_walks),
              static_cast<unsigned long long>(pre.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(pre.counters.pages_supplied));
  std::printf("  paged, demand-zero %10llu   %10llu   %6llu   %14llu\n",
              static_cast<unsigned long long>(demand.cycles),
              static_cast<unsigned long long>(demand.counters.page_walks),
              static_cast<unsigned long long>(
                  demand.counters.TrapCount(TrapCause::kMissingPage)),
              static_cast<unsigned long long>(demand.counters.pages_supplied));
  std::printf("\n  per-reference walk cost: %.3f cycles; per-fault cost: %.1f cycles\n",
              static_cast<double>(pre.cycles - unpaged.cycles) /
                  static_cast<double>(pre.counters.page_walks),
              pre.counters.pages_supplied == demand.counters.pages_supplied
                  ? 0.0
                  : static_cast<double>(demand.cycles - pre.cycles) /
                        static_cast<double>(demand.counters.pages_supplied));
  std::printf("  access checks: %llu / %llu / %llu — paging adds none except the\n"
              "  re-validation of instructions re-executed after a fault.\n",
              static_cast<unsigned long long>(unpaged.counters.TotalChecks()),
              static_cast<unsigned long long>(pre.counters.TotalChecks()),
              static_cast<unsigned long long>(demand.counters.TotalChecks()));
}

void BM_PagedStore(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSum(state.range(0) != 0, true));
  }
}
BENCHMARK(BM_PagedStore)->Arg(0)->Arg(1)->Iterations(3);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

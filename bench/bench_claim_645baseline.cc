// Experiment C3 — hardware rings vs the 645-style software rings.
//
// The paper's motivation: on the Honeywell 645, "the version of Multics
// for this machine implements rings by trapping to a supervisor procedure
// when downward calls and upward returns are performed. The hardware
// mechanisms ... eliminate the need to trap in these cases."
//
// Measures a complete downward-call round trip (with k arguments the
// callee touches once each) on both machines. Hardware pays instruction-
// level cost; the 645 gatekeeper pays two traps plus software gate lookup
// and per-argument validation.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

void PrintReport() {
  PrintBanner("C3 — downward call+return: ring hardware vs 645 software rings",
              "Differential cost per crossing, by argument count. 'x' is the\n"
              "software/hardware cycle ratio — the factor the new processor\n"
              "removes from every protected-subsystem invocation.");

  std::printf(
      "  args  hw cycles  hw traps   645 cycles  645 traps  645 sup-steps      x\n");
  for (const int nargs : {0, 1, 2, 4, 8, 16}) {
    const PerCallCost hw = MeasureHardwareCrossing(4, MakeProcedureSegment(1, 1, 7, 1),
                                                   nargs > 16 ? 16 : nargs);
    const PerCallCost sw = Measure645Crossing(4, MakeProcedureSegment(1, 1, 7, 1), nargs);
    std::printf("  %4d  %9.2f  %8.2f  %11.2f  %9.2f  %13.2f  %5.1f\n", nargs, hw.cycles,
                hw.traps, sw.cycles, sw.traps, sw.supervisor_steps, sw.cycles / hw.cycles);
  }

  std::printf("\n  shape check: hardware cost grows only by the ordinary loads the\n"
              "  callee performs (arguments are referenced, not validated en bloc);\n"
              "  the 645 gatekeeper additionally pays a software validation step\n"
              "  per argument, on top of its two traps and DBR swaps.\n");
}

void BM_HardwareCrossing(benchmark::State& state) {
  const int nargs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHardware(HardwareCallSource(4, nargs, true, 200), 4,
                                         MakeProcedureSegment(1, 1, 7, 1)));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_HardwareCrossing)->Arg(0)->Arg(4)->Iterations(10);

void BM_B645Crossing(benchmark::State& state) {
  const int nargs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Run645(B645CallSource(nargs, true, 200), 4, MakeProcedureSegment(1, 1, 7, 1)));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_B645Crossing)->Arg(0)->Arg(4)->Iterations(10);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

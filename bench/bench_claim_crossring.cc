// Experiment C1 — the paper's central claim: "a call by a user procedure
// to a protected subsystem (including the supervisor) is identical to a
// call to a companion user procedure. The mechanisms of passing and
// referencing arguments are the same in both cases as well."
//
// Measures complete call round trips with arguments, same-ring vs
// cross-ring, on identical object code, and verifies zero supervisor
// participation in both.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

void PrintReport() {
  PrintBanner("C1 — cross-ring call == same-ring call",
              "One epp+CALL+callee(reads k args)+RET round trip, same object\n"
              "code; only the target segment's brackets differ.");

  std::printf("  args  same-ring cycles  cross-ring cycles  delta  traps(either)\n");
  for (const int nargs : {0, 1, 2, 4, 8}) {
    const PerCallCost same = MeasureHardwareCrossing(4, MakeProcedureSegment(4, 4, 4, 1), nargs);
    const PerCallCost cross = MeasureHardwareCrossing(4, MakeProcedureSegment(1, 1, 7, 1), nargs);
    std::printf("  %4d  %17.2f  %17.2f  %5.2f  %13.2f\n", nargs, same.cycles, cross.cycles,
                cross.cycles - same.cycles, same.traps + cross.traps);
  }
  std::printf("\n  The object code of caller and callee is byte-identical in the two\n"
              "  columns; the hardware decides the ring switch from the SDW alone.\n");
}

void BM_SameRingCallPair(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunHardware(HardwareCallSource(4, 2, true, 200), 4, MakeProcedureSegment(4, 4, 4, 1)));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SameRingCallPair)->Iterations(10);

void BM_CrossRingCallPair(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunHardware(HardwareCallSource(4, 2, true, 200), 4, MakeProcedureSegment(1, 1, 7, 1)));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_CrossRingCallPair)->Iterations(10);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

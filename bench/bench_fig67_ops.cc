// Experiments F6/F7 — Figures 6 and 7: operand validation for reads and
// writes, EAP-type instructions (no validation), and the advance check
// for plain transfers.
//
// Reports simulated cycles and validation counts per instruction kind.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cpu/cpu.h"
#include "src/mem/descriptor_segment.h"

namespace rings {
namespace {

// One rig per opcode-under-test: a loop of `op ; tra loop`.
struct OpRig {
  PhysicalMemory memory{1 << 20};
  DescriptorSegment dseg;
  Cpu cpu;

  explicit OpRig(const Instruction& op)
      : dseg(*DescriptorSegment::Create(&memory, 16, 0)), cpu(&memory) {
    cpu.SetDbr(dseg.dbr());
    const AbsAddr data_base = *memory.Allocate(8);
    Sdw data_sdw;
    data_sdw.present = true;
    data_sdw.base = data_base;
    data_sdw.bound = 8;
    data_sdw.access = MakeDataSegment(4, 4);
    dseg.Store(1, data_sdw);

    const AbsAddr code_base = *memory.Allocate(2);
    memory.Write(code_base, EncodeInstruction(op));
    memory.Write(code_base + 1, EncodeInstruction(MakeIns(Opcode::kTra, 0)));
    Sdw code_sdw;
    code_sdw.present = true;
    code_sdw.base = code_base;
    code_sdw.bound = 2;
    code_sdw.access = MakeProcedureSegment(0, 7);
    dseg.Store(0, code_sdw);

    cpu.regs().ipr = Ipr{4, 0, 0};
    cpu.regs().pr[2] = PointerRegister{4, 1, 0};
  }

  // Runs `steps` instruction pairs and reports per-pair cycle cost plus
  // the per-pair check counts.
  void Measure(int steps, double* cycles, Counters* per_pair) {
    for (int i = 0; i < 2 * steps; ++i) {
      cpu.Step();
    }
    *cycles = static_cast<double>(cpu.cycles()) / steps;
    *per_pair = cpu.counters();
  }
};

void Report(const char* name, const Instruction& op) {
  OpRig rig(op);
  double cycles = 0;
  Counters c;
  rig.Measure(10000, &cycles, &c);
  std::printf("  %-22s %10.3f  %9.2f  %9.2f  %9.2f  %9.2f\n", name, cycles,
              static_cast<double>(c.checks_read) / 10000, static_cast<double>(c.checks_write) / 10000,
              static_cast<double>(c.checks_transfer) / 10000,
              static_cast<double>(c.checks_fetch) / 10000);
}

void PrintReport() {
  PrintBanner("F6/F7 — Figures 6 and 7: operand and transfer validation",
              "Cycles per (op + tra) pair and hardware validations performed per\n"
              "pair, by instruction class. EPP performs no operand validation.");
  std::printf("  instruction             cycles   read-chk  write-chk  xfer-chk  fetch-chk\n");
  Report("lda pr2|0    (read)", MakeInsPr(Opcode::kLda, 2, 0));
  Report("sta pr2|0    (write)", MakeInsPr(Opcode::kSta, 2, 0));
  Report("aos pr2|0    (r-m-w)", MakeInsPr(Opcode::kAos, 2, 0));
  Report("epp pr3,pr2|0 (EAP)", MakeInsPrReg(Opcode::kEpp, 2, 3, 0));
  Report("ldai 5  (immediate)", MakeIns(Opcode::kLdai, 5));
  Report("nop", MakeIns(Opcode::kNop));

  std::printf("\n  The advance check (Figure 7): a TRA to a segment outside the\n"
              "  execute bracket traps at the TRA, not at the target fetch:\n");
  {
    OpRig rig(MakeInsPr(Opcode::kTra, 3, 0));
    // PR3 -> segment 1 (a data segment: not executable).
    rig.cpu.regs().pr[3] = PointerRegister{4, 1, 0};
    rig.cpu.Step();
    std::printf("    trap=%s cause=%s at %u|%u (the transfer instruction itself)\n",
                rig.cpu.trap_pending() ? "yes" : "no",
                std::string(TrapCauseName(rig.cpu.trap_state().cause)).c_str(),
                rig.cpu.trap_state().regs.ipr.segno, rig.cpu.trap_state().regs.ipr.wordno);
  }
}

void BM_OperandRead(benchmark::State& state) {
  OpRig rig(MakeInsPr(Opcode::kLda, 2, 0));
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperandRead);

void BM_OperandWrite(benchmark::State& state) {
  OpRig rig(MakeInsPr(Opcode::kSta, 2, 0));
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperandWrite);

void BM_Epp(benchmark::State& state) {
  OpRig rig(MakeInsPrReg(Opcode::kEpp, 2, 3, 0));
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Epp);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiment F5 — Figure 5: effective-address formation, including the
// ring-maximization over pointer registers and chains of indirect words.
//
// Reports cycles per LDA as the indirection depth grows, with the
// per-indirect-word read validation on and off.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cpu/cpu.h"
#include "src/isa/indirect_word.h"
#include "src/mem/descriptor_segment.h"

namespace rings {
namespace {

// Code: `lda pr2|0,*` in a loop; pr2 points at an indirection chain of
// depth d ending at a data word.
struct EaRig {
  PhysicalMemory memory{1 << 20};
  DescriptorSegment dseg;
  Cpu cpu;

  explicit EaRig(int depth) : dseg(*DescriptorSegment::Create(&memory, 16, 0)), cpu(&memory) {
    cpu.SetDbr(dseg.dbr());

    // Segment 1: the chain (word i -> word i+1; last word -> data).
    const int chain_words = depth > 0 ? depth : 1;
    const AbsAddr chain_base = *memory.Allocate(chain_words);
    for (int i = 0; i < depth; ++i) {
      const bool last = i == depth - 1;
      memory.Write(chain_base + i,
                   EncodeIndirectWord(IndirectWord{4, !last,
                                                   static_cast<Segno>(last ? 2 : 1),
                                                   static_cast<Wordno>(last ? 0 : i + 1)}));
    }
    Sdw chain_sdw;
    chain_sdw.present = true;
    chain_sdw.base = chain_base;
    chain_sdw.bound = chain_words;
    chain_sdw.access = MakeDataSegment(4, 4);
    dseg.Store(1, chain_sdw);

    // Segment 2: the data word.
    const AbsAddr data_base = *memory.Allocate(1);
    memory.Write(data_base, 42);
    Sdw data_sdw;
    data_sdw.present = true;
    data_sdw.base = data_base;
    data_sdw.bound = 1;
    data_sdw.access = MakeDataSegment(4, 4);
    dseg.Store(2, data_sdw);

    // Segment 0: the code — lda then tra back.
    const AbsAddr code_base = *memory.Allocate(2);
    Instruction lda = MakeInsPr(Opcode::kLda, 2, 0, /*indirect=*/depth > 0);
    memory.Write(code_base, EncodeInstruction(lda));
    memory.Write(code_base + 1, EncodeInstruction(MakeIns(Opcode::kTra, 0)));
    Sdw code_sdw;
    code_sdw.present = true;
    code_sdw.base = code_base;
    code_sdw.bound = 2;
    code_sdw.access = MakeProcedureSegment(0, 7);
    dseg.Store(0, code_sdw);

    cpu.regs().ipr = Ipr{4, 0, 0};
    cpu.regs().pr[2] = PointerRegister{4, static_cast<Segno>(depth > 0 ? 1 : 2), 0};
  }
};

double CyclesPerLda(int depth, bool checks) {
  EaRig rig(depth);
  rig.cpu.set_checks_enabled(checks);
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    rig.cpu.Step();
  }
  if (rig.cpu.trap_pending()) {
    std::fprintf(stderr, "unexpected trap at depth %d\n", depth);
    std::abort();
  }
  // Each loop iteration is one LDA + one TRA: report the LDA share by
  // subtracting a depth-0 TRA-only baseline is overkill; report the pair.
  return static_cast<double>(rig.cpu.cycles()) / steps;
}

void PrintReport() {
  PrintBanner("F5 — Figure 5: effective address formation",
              "Cycles per (lda + tra) pair vs indirect-word chain depth. Each\n"
              "indirect word costs one validated read and one ring max; TPR.RING\n"
              "accumulates max(PR ring, IND rings, SDW.R1 of chain segments).");
  std::printf("  depth   cycles(validated)   cycles(unchecked)   indirect words/lda\n");
  for (const int depth : {0, 1, 2, 4, 8}) {
    EaRig probe(depth);
    probe.cpu.Step();
    const double iw = static_cast<double>(probe.cpu.counters().indirect_words);
    std::printf("  %5d   %17.3f   %17.3f   %18.1f\n", depth, CyclesPerLda(depth, true),
                CyclesPerLda(depth, false), iw);
  }

  // The ring-accumulation property, shown directly.
  std::printf("\n  effective ring after the chain (caller ring 4):\n");
  for (const Ring planted : {Ring{0}, Ring{5}, Ring{7}}) {
    EaRig rig(2);
    // Plant a ring number inside the first chain word.
    IndirectWord iw = DecodeIndirectWord(rig.memory.Read(rig.dseg.Fetch(1)->base));
    iw.ring = planted;
    rig.memory.Write(rig.dseg.Fetch(1)->base, EncodeIndirectWord(iw));
    rig.cpu.Step();
    std::printf("    IND.RING=%u -> TPR.RING=%u%s\n", planted, rig.cpu.tpr().ring,
                rig.cpu.trap_pending() ? " (then read denied: bracket exceeded)" : "");
  }
}

void BM_EaDepth(benchmark::State& state) {
  EaRig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EaDepth)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

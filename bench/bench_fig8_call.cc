// Experiment F8 — Figure 8: the CALL instruction.
//
// Reports the differential cost (cycles, instructions, traps, supervisor
// steps) of one complete epp+CALL+callee+RETURN sequence on the ring
// hardware, by caller ring and target bracket shape: same-ring calls,
// downward calls across 1..7 rings, and (for contrast) the upward call
// that needs supervisor emulation. The headline: downward and same-ring
// calls cost the same and involve the supervisor not at all.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

void PrintReport() {
  PrintBanner("F8 — Figure 8: CALL, by ring distance",
              "Differential cost of one epp+CALL+RET round trip. Downward calls\n"
              "through gates cost the same as same-ring calls; only the upward\n"
              "call traps to supervisor software.");

  std::printf("  scenario                          cycles  instructions   traps  sup-steps\n");

  // Same-ring call: caller ring 4, target bracket [4,4].
  {
    const PerCallCost c = MeasureHardwareCrossing(4, MakeProcedureSegment(4, 4, 4, 1));
    std::printf("  same-ring    (4 -> 4)           %8.2f  %12.2f  %6.2f  %9.2f\n", c.cycles,
                c.instructions, c.traps, c.supervisor_steps);
  }
  // Downward calls of increasing distance: caller ring 4 or 7 into lower
  // execute brackets with gate extensions reaching the caller.
  for (const int target : {3, 2, 1, 0}) {
    const PerCallCost c = MeasureHardwareCrossing(
        4, MakeProcedureSegment(static_cast<Ring>(target), static_cast<Ring>(target), 7, 1));
    std::printf("  downward     (4 -> %d)           %8.2f  %12.2f  %6.2f  %9.2f\n", target,
                c.cycles, c.instructions, c.traps, c.supervisor_steps);
  }
  {
    const PerCallCost c = MeasureHardwareCrossing(7, MakeProcedureSegment(0, 0, 7, 1));
    std::printf("  downward     (7 -> 0)           %8.2f  %12.2f  %6.2f  %9.2f\n", c.cycles,
                c.instructions, c.traps, c.supervisor_steps);
  }
  // Upward call: caller ring 4, target bracket [6,6] — the trap case.
  {
    const PerCallCost c = MeasureHardwareCrossing(4, MakeProcedureSegment(6, 6, 6, 1));
    std::printf("  upward       (4 -> 6, trapped)  %8.2f  %12.2f  %6.2f  %9.2f\n", c.cycles,
                c.instructions, c.traps, c.supervisor_steps);
  }

  std::printf("\n  note: the gate check is a single comparison of the target word\n"
              "  number against the SDW.GATE count ('the list of gate locations of\n"
              "  a segment is compressed to a single length field'), so its cost is\n"
              "  independent of how many gates a segment declares.\n");
}

constexpr int kCrossingsPerRun = 2000;

// The timed guest: the tightest crossing loop the ISA expresses — one
// downward CALL into a gated target that returns immediately, with the
// loop count held in the accumulator (no memory indirection in the loop).
// The wall numbers then weigh the Figure 8 crossing machinery itself;
// argument passing and effective-address chasing have their own
// experiments (bench_argval, bench_paging).
std::string CrossingLoopSource(int iters) {
  return StrFormat(R"(
        .segment main
start:  epp   pr2, gptr,*
        lda   limit
loop:   call  pr2|0
        sba   one
        tnz   loop
        mme   0
limit:  .word %d
one:    .word 1
gptr:   .its  4, target, 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)",
                   iters);
}

// The simulated (deterministic) cost of the measured crossing, shared by
// both wall-clock variants below. tools/bench_check.py gates CI on these
// counters; the host-dependent real_time numbers are reported but not
// gated.
const PerCallCost& SimCost() {
  static const PerCallCost cost = MeasureHardwareCrossing(4, MakeProcedureSegment(1, 1, 7, 1));
  return cost;
}

// Host-time throughput of simulated downward call round trips. Machine
// construction, assembly, and login stay outside the timed region: the
// measurement is machine.Run() alone, so the variants isolate what the
// address-formation fast path, the superblock engine, and block chaining
// (with the crossing cache) buy in host wall-clock (simulated cost is
// identical across all of them).
void DownwardCallRoundTrip(benchmark::State& state, bool fast_path, bool block_engine,
                           bool chain) {
  const std::string source = CrossingLoopSource(kCrossingsPerRun);
  const SegmentAccess target = MakeProcedureSegment(1, 1, 7, 1);
  MachineConfig config;
  config.fast_path = fast_path;
  config.block_engine = block_engine && BlockEngineEnvEnabled();
  config.chain = chain && BlockChainEnvEnabled();
  config.shared_decode = SharedDecodeEnvEnabled();
  WallSampler wall;
  Counters last;
  for (auto _ : state) {
    state.PauseTiming();
    HardwareRig rig = SetupHardware(source, 4, target, config);
    state.ResumeTiming();
    wall.Begin();
    rig.machine->Run(2'000'000'000);
    wall.End();
    benchmark::DoNotOptimize(rig.machine->cpu().cycles());
    state.PauseTiming();
    if (rig.process->state != ProcessState::kExited) {
      std::fprintf(stderr, "bench workload killed: %s\n",
                   std::string(TrapCauseName(rig.process->kill_cause)).c_str());
      std::abort();
    }
    last = rig.machine->cpu().counters();
    rig.machine.reset();  // destruction stays untimed too
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kCrossingsPerRun);
  const PerCallCost& c = SimCost();
  state.counters["sim_cycles_per_call"] = c.cycles;
  state.counters["sim_instructions_per_call"] = c.instructions;
  state.counters["sim_checks_per_call"] = c.checks;
  state.counters["wall_min_ns"] = wall.MinNs();
  state.counters["wall_median_ns"] = wall.MedianNs();
  // Host-only effectiveness counters from the last run (identical every
  // run — the workload is deterministic); excluded from the fingerprint
  // and from bench_check's sim gate.
  state.counters["chain_follows"] = static_cast<double>(last.chain_follows);
  state.counters["crossing_hits"] = static_cast<double>(last.crossing_hits);
}

void BM_DownwardCallRoundTrip(benchmark::State& state) {
  DownwardCallRoundTrip(state, true, true, true);
}
void BM_DownwardCallRoundTrip_NoFastPath(benchmark::State& state) {
  DownwardCallRoundTrip(state, false, false, false);
}
void BM_DownwardCallRoundTrip_NoBlockEngine(benchmark::State& state) {
  DownwardCallRoundTrip(state, true, false, false);
}
void BM_DownwardCallRoundTrip_NoChain(benchmark::State& state) {
  DownwardCallRoundTrip(state, true, true, false);
}
BENCHMARK(BM_DownwardCallRoundTrip)->Iterations(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DownwardCallRoundTrip_NoFastPath)->Iterations(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DownwardCallRoundTrip_NoBlockEngine)->Iterations(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DownwardCallRoundTrip_NoChain)->Iterations(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

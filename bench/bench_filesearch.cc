// Experiment U5 — the file-search example from the paper's Conclusions:
// "in many file system designs ... complex file search operations are
// carried out entirely by protected supervisor routines rather than by
// unprotected library packages, primarily because a complex file search
// requires many individual file access operations, each of which would
// require transfer to a protected service routine, which transfer is
// presumed costly."
//
// Three structures search the same protected directory (N two-word
// entries, readable only in rings <= 1) for its last key:
//
//   A. monolithic:  the whole linear search runs inside a ring-1 gate
//                   service — one crossing per search (the structure the
//                   expensive-crossing assumption forces);
//   B. library:     the search loop runs in ring 4; each probe calls a
//                   tiny ring-1 "read directory word" gate — one crossing
//                   per probe, viable only if crossings are cheap;
//   C. library/645: structure B on the software-rings baseline — what it
//                   would have cost before this paper's hardware.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

// Directory contents: entries (key, value) with keys 1..n; the searched
// key is n (worst case).
std::vector<Word> MakeDirectory(int n) {
  std::vector<Word> dir;
  for (int i = 1; i <= n; ++i) {
    dir.push_back(static_cast<Word>(i));         // key
    dir.push_back(static_cast<Word>(1000 + i));  // value
  }
  return dir;
}

// Structure A: the search loop lives in the ring-1 service, which derives
// its own directory pointer (it must NOT use a caller pointer — the
// effective ring would deny the read, by design).
std::string MonolithicSource(int n) {
  return StrFormat(R"(
        .segment dirsvc
        .gates 1
gate:   tra   body
body:   stq   kq,*          ; search key arrives in Q
        stz   idx,*
        epp   pr3, sdirp,*
loop:   ldx   x1, idx,*
        lda   pr3|0,x1      ; key at dir[idx]
        sba   kq,*
        tze   found
        aos   idx,*
        aos   idx,*
        lda   idx,*
        sba   dlen
        tmi   loop
        ldai  -1
        ret   pr7|0
found:  ldx   x1, idx,*
        lda   pr3|1,x1      ; the value
        ret   pr7|0
dlen:   .word %d
kq:     .its  1, svcdata, 0
idx:    .its  1, svcdata, 1
sdirp:  .its  1, directory, 0

        .segment svcdata
        .block 2

        .segment main
start:  ldqi  %d             ; the key to find
        epp   pr2, g,*
        call  pr2|0          ; ONE crossing for the whole search
        mme   0              ; exit with the value found
g:      .its  4, dirsvc, 0
)",
                   2 * n, n);
}

// Structure B: the loop in ring 4; each probe crosses into rdsvc, passing
// the word index in Q.
std::string LibrarySource(int n) {
  return StrFormat(R"(
        .segment rdsvc       ; ring-1: A <- directory[Q]
        .gates 1
gate:   stq   tq,*
        ldx   x1, tq,*
        epp   pr3, sdirp,*
        lda   pr3|0,x1
        ret   pr7|0
tq:     .its  1, svcdata, 0
sdirp:  .its  1, directory, 0

        .segment svcdata
        .block 1

        .segment main
start:  stz   idx,*
loop:   ldq   idx,*          ; Q = index of the key word
        epp   pr2, g,*
        call  pr2|0          ; crossing per probe
        sba   key
        tze   found
        aos   idx,*
        aos   idx,*
        lda   idx,*
        sba   dlen
        tmi   loop
        ldai  -1
        mme   0
found:  lda   idx,*
        adai  1
        sta   idx,*
        ldq   idx,*
        epp   pr2, g,*
        call  pr2|0          ; fetch the value word
        mme   0
key:    .word %d
dlen:   .word %d
idx:    .its  4, udata, 0
g:      .its  4, rdsvc, 0

        .segment udata
        .block 1
)",
                   n, 2 * n);
}

// Structure C: structure B on the 645. The index is passed through a
// scratch slot the caller may write; the service reads the directory its
// own descriptor segment permits.
std::string Library645Source(int n) {
  return StrFormat(R"(
        .segment rdsvc
        .gates 1
gate:   ldx   x1, aq,*
        epp   pr3, sdirp,*
        lda   pr3|0,x1
        mme   2
aq:     .its  0, argslot, 0
sdirp:  .its  0, directory, 0

        .segment argslot
        .block 1

        .segment main
start:  stz   idx,*
loop:   lda   idx,*
        sta   argq,*         ; pass the index
        ldq   tgt
        mme   1              ; crossing per probe
        sba   key
        tze   found
        aos   idx,*
        aos   idx,*
        lda   idx,*
        sba   dlen
        tmi   loop
        ldai  -1
        mme   0
found:  lda   idx,*
        adai  1
        sta   argq,*
        ldq   tgt
        mme   1
        mme   0
key:    .word %d
dlen:   .word %d
tgt:    .word 0              ; patched with the packed target
argq:   .its  0, argslot, 0
idx:    .its  0, udata, 0

        .segment udata
        .block 1
)",
                   n, 2 * n);
}

struct SearchCost {
  uint64_t cycles = 0;
  uint64_t crossings = 0;
  uint64_t traps = 0;
  int64_t result = 0;
};

// A loaded, started (but not yet run) search machine. `paged` backs the
// protected directory with a demand-paged segment (prefilled), so every
// service-side probe takes a page-table walk — the workload the software
// TLB memoizes.
struct SearchRig {
  std::unique_ptr<Machine> machine;
  Process* process = nullptr;
};

SearchRig SetupSearchHardware(const std::string& source, const char* svc_seg, int n,
                              bool paged = false, bool fast_path = true,
                              bool block_engine = true) {
  MachineConfig config;
  config.fast_path = fast_path;
  config.block_engine = block_engine && BlockEngineEnvEnabled();
  SearchRig rig;
  rig.machine = std::make_unique<Machine>(config);
  Machine& machine = *rig.machine;
  // The directory must exist before the program so .its patches resolve.
  const AccessControlList dir_acl =
      AccessControlList::Public(MakeReadOnlyDataSegment(1));  // rings 0..1 only
  if (paged) {
    machine.registry().CreatePagedSegment("directory", 2 * static_cast<uint64_t>(n), dir_acl,
                                          /*populate=*/true, MakeDirectory(n));
  } else {
    machine.registry().CreateSegmentWithContents("directory", MakeDirectory(n), 0, 0, dir_acl);
  }
  std::map<std::string, AccessControlList> acls;
  acls[svc_seg] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["svcdata"] = AccessControlList::Public(MakeDataSegment(1, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["udata"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine.LoadProgramSource(source, acls, &error)) {
    std::fprintf(stderr, "filesearch setup failed: %s\n", error.c_str());
    std::abort();
  }
  rig.process = machine.Login("bench");
  machine.supervisor().InitiateAll(rig.process);
  machine.Start(rig.process, "main", "start", kUserRing);
  return rig;
}

SearchCost FinishSearch(SearchRig& rig) {
  rig.machine->Run(1'000'000'000);
  Process* p = rig.process;
  if (p->state != ProcessState::kExited) {
    std::fprintf(stderr, "filesearch killed: %s at %u|%u\n",
                 std::string(TrapCauseName(p->kill_cause)).c_str(), p->kill_pc.segno,
                 p->kill_pc.wordno);
    std::abort();
  }
  return SearchCost{rig.machine->cpu().cycles(),
                    rig.machine->cpu().counters().calls_downward,
                    rig.machine->cpu().counters().TotalTraps(), p->exit_code};
}

SearchCost RunSearchHardware(const std::string& source, const char* svc_seg, int n,
                             bool paged = false, bool fast_path = true,
                             bool block_engine = true) {
  SearchRig rig = SetupSearchHardware(source, svc_seg, n, paged, fast_path, block_engine);
  return FinishSearch(rig);
}

SearchCost RunSearch645(int n) {
  B645Machine machine;
  machine.registry().CreateSegmentWithContents(
      "directory", MakeDirectory(n), 0, 0,
      AccessControlList::Public(MakeReadOnlyDataSegment(1)));
  std::map<std::string, SegmentAccess> specs;
  specs["rdsvc"] = MakeProcedureSegment(1, 1, 5, 1);
  specs["argslot"] = MakeDataSegment(4, 4);  // the caller passes the index here
  specs["main"] = MakeProcedureSegment(4, 4);
  specs["udata"] = MakeDataSegment(4, 4);
  std::string error;
  if (!machine.LoadProgramSource(Library645Source(n), specs, &error)) {
    std::fprintf(stderr, "645 filesearch setup failed: %s\n", error.c_str());
    std::abort();
  }
  // The directory was registered outside LoadProgram: give it ring specs.
  machine.SetRingSpec("directory", MakeReadOnlyDataSegment(1));
  machine.Start("main", "start", kUserRing);
  const Segno svc = machine.registry().Find("rdsvc")->segno;
  const auto tgt_word = machine.registry().Find("main")->symbols.at("tgt");
  machine.PokeWordForTest("main", tgt_word, PackB645Target(svc, 0));
  machine.Run(1'000'000'000);
  if (!machine.exited()) {
    std::fprintf(stderr, "645 filesearch killed: %s\n",
                 std::string(TrapCauseName(machine.kill_cause())).c_str());
    std::abort();
  }
  return SearchCost{machine.cpu().cycles(), machine.crossings(),
                    machine.cpu().counters().TotalTraps(), machine.exit_code()};
}

void PrintReport() {
  PrintBanner("U5 — file search: protected monolith vs library + protected access",
              "Linear search of a protected directory for its last key.");
  std::printf("  entries  structure              cycles  crossings  traps  result\n");
  for (const int n : {16, 64, 128}) {
    const SearchCost a = RunSearchHardware(MonolithicSource(n), "dirsvc", n);
    const SearchCost b = RunSearchHardware(LibrarySource(n), "rdsvc", n);
    const SearchCost c = RunSearch645(n);
    std::printf("  %7d  A monolithic (hw)   %8llu  %9llu  %5llu  %6lld\n", n,
                static_cast<unsigned long long>(a.cycles),
                static_cast<unsigned long long>(a.crossings),
                static_cast<unsigned long long>(a.traps), static_cast<long long>(a.result));
    std::printf("  %7d  B library    (hw)   %8llu  %9llu  %5llu  %6lld\n", n,
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(b.crossings),
                static_cast<unsigned long long>(b.traps), static_cast<long long>(b.result));
    std::printf("  %7d  C library    (645)  %8llu  %9llu  %5llu  %6lld\n", n,
                static_cast<unsigned long long>(c.cycles),
                static_cast<unsigned long long>(c.crossings),
                static_cast<unsigned long long>(c.traps), static_cast<long long>(c.result));
  }
  std::printf("\n  shape: with ring hardware the library structure (B) costs only a\n"
              "  modest factor over the monolith (A) despite one crossing per\n"
              "  probe; on the 645 (C) the same structure is crushed by trap\n"
              "  costs — which is why such designs put the whole search in the\n"
              "  supervisor, 'increasing the quantity of code which has maximum\n"
              "  privilege'.\n");
}

// Host-time cost of the library-structured search (one crossing per
// probe), machine.Run() only; the paged variants put the directory
// behind a page table, so they additionally measure the software TLB.
// The sim_* counters are deterministic and gated by tools/bench_check.py.
void LibrarySearchLoop(benchmark::State& state, bool paged, bool fast_path,
                       bool block_engine) {
  constexpr int kEntries = 64;
  const std::string source = LibrarySource(kEntries);
  WallSampler wall;
  for (auto _ : state) {
    state.PauseTiming();
    SearchRig rig =
        SetupSearchHardware(source, "rdsvc", kEntries, paged, fast_path, block_engine);
    state.ResumeTiming();
    wall.Begin();
    rig.machine->Run(1'000'000'000);
    wall.End();
    benchmark::DoNotOptimize(rig.machine->cpu().cycles());
    state.PauseTiming();
    if (rig.process->state != ProcessState::kExited) {
      std::fprintf(stderr, "filesearch bench killed: %s\n",
                   std::string(TrapCauseName(rig.process->kill_cause)).c_str());
      std::abort();
    }
    rig.machine.reset();  // destruction stays untimed too
    state.ResumeTiming();
  }
  const SearchCost sim =
      RunSearchHardware(source, "rdsvc", kEntries, paged, fast_path, block_engine);
  state.counters["sim_cycles"] = static_cast<double>(sim.cycles);
  state.counters["sim_crossings"] = static_cast<double>(sim.crossings);
  state.counters["sim_traps"] = static_cast<double>(sim.traps);
  state.counters["wall_min_ns"] = wall.MinNs();
  state.counters["wall_median_ns"] = wall.MedianNs();
}

void BM_LibrarySearchHw(benchmark::State& state) {
  LibrarySearchLoop(state, false, true, true);
}
void BM_LibrarySearchHw_NoBlockEngine(benchmark::State& state) {
  LibrarySearchLoop(state, false, true, false);
}
void BM_LibrarySearchHwPagedDir(benchmark::State& state) {
  LibrarySearchLoop(state, true, true, true);
}
void BM_LibrarySearchHwPagedDir_NoFastPath(benchmark::State& state) {
  LibrarySearchLoop(state, true, false, false);
}
void BM_LibrarySearchHwPagedDir_NoBlockEngine(benchmark::State& state) {
  LibrarySearchLoop(state, true, true, false);
}
BENCHMARK(BM_LibrarySearchHw)->Iterations(5);
BENCHMARK(BM_LibrarySearchHw_NoBlockEngine)->Iterations(5);
BENCHMARK(BM_LibrarySearchHwPagedDir)->Iterations(5);
BENCHMARK(BM_LibrarySearchHwPagedDir_NoFastPath)->Iterations(5);
BENCHMARK(BM_LibrarySearchHwPagedDir_NoBlockEngine)->Iterations(5);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiment C2 — the paper's cost claim: the ring mechanisms require
// "very small additional costs in hardware logic and processor speed".
//
// Three measurements on a straight-line compute workload:
//   1. simulated cycles with validation on vs off under the default cycle
//      model (checks are comparison logic folded into translation: 0);
//   2. the same with a pessimistic model charging 1 cycle per check;
//   3. host wall-time of the simulator with checks on vs off (the cost of
//      actually evaluating the comparisons), via google-benchmark below.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cpu/cpu.h"
#include "src/mem/descriptor_segment.h"

namespace rings {
namespace {

// A compute kernel: mixed loads/stores/arithmetic over a data segment.
struct ComputeRig {
  PhysicalMemory memory{1 << 20};
  DescriptorSegment dseg;
  Cpu cpu;

  explicit ComputeRig(CycleModel model = CycleModel::Default())
      : dseg(*DescriptorSegment::Create(&memory, 16, 0)), cpu(&memory, model) {
    cpu.SetDbr(dseg.dbr());
    const AbsAddr data_base = *memory.Allocate(16);
    Sdw sdw;
    sdw.present = true;
    sdw.base = data_base;
    sdw.bound = 16;
    sdw.access = MakeDataSegment(4, 4);
    dseg.Store(1, sdw);

    const std::vector<Instruction> kernel = {
        MakeInsPr(Opcode::kLda, 2, 0), MakeIns(Opcode::kAdai, 3),
        MakeInsPr(Opcode::kSta, 2, 1), MakeInsPr(Opcode::kLdq, 2, 2),
        MakeInsPr(Opcode::kAda, 2, 3), MakeInsPr(Opcode::kMpy, 2, 4),
        MakeInsPr(Opcode::kSta, 2, 5), MakeInsPr(Opcode::kAos, 2, 6),
        MakeIns(Opcode::kTra, 0),
    };
    const AbsAddr code_base = *memory.Allocate(kernel.size());
    for (size_t i = 0; i < kernel.size(); ++i) {
      memory.Write(code_base + i, EncodeInstruction(kernel[i]));
    }
    Sdw code_sdw;
    code_sdw.present = true;
    code_sdw.base = code_base;
    code_sdw.bound = kernel.size();
    code_sdw.access = MakeProcedureSegment(0, 7);
    dseg.Store(0, code_sdw);
    cpu.regs().ipr = Ipr{4, 0, 0};
    cpu.regs().pr[2] = PointerRegister{4, 1, 0};
  }
};

void PrintReport() {
  PrintBanner("C2 — validation overhead on straight-line code",
              "20000 instructions of a load/store/arithmetic kernel.");

  const int steps = 20000;
  auto run = [&](CycleModel model, bool checks) {
    ComputeRig rig(model);
    rig.cpu.set_checks_enabled(checks);
    for (int i = 0; i < steps; ++i) {
      rig.cpu.Step();
    }
    struct R {
      double cpi;
      uint64_t checks_done;
    };
    return R{static_cast<double>(rig.cpu.cycles()) / steps, rig.cpu.counters().TotalChecks()};
  };

  const auto on_default = run(CycleModel::Default(), true);
  const auto off_default = run(CycleModel::Default(), false);
  CycleModel pessimistic = CycleModel::Default();
  pessimistic.access_check = 1;
  const auto on_pess = run(pessimistic, true);

  std::printf("  model                          checks  cycles/instr  overhead\n");
  std::printf("  default, validation on   %12llu  %12.3f  %7.2f%%\n",
              static_cast<unsigned long long>(on_default.checks_done), on_default.cpi,
              100.0 * (on_default.cpi / off_default.cpi - 1.0));
  std::printf("  default, validation off  %12llu  %12.3f  baseline\n",
              static_cast<unsigned long long>(off_default.checks_done), off_default.cpi);
  std::printf("  1-cycle/check (pessimistic) %9llu  %12.3f  %7.2f%%\n",
              static_cast<unsigned long long>(on_pess.checks_done), on_pess.cpi,
              100.0 * (on_pess.cpi / off_default.cpi - 1.0));
  std::printf("\n  checks per instruction: %.2f — one fetch check plus roughly one\n"
              "  operand check, all overlapped with the SDW access the translation\n"
              "  needs anyway.\n",
              static_cast<double>(on_default.checks_done) / steps);
}

void BM_SimulatorChecksOn(benchmark::State& state) {
  ComputeRig rig;
  rig.cpu.set_checks_enabled(true);
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorChecksOn);

void BM_SimulatorChecksOff(benchmark::State& state) {
  ComputeRig rig;
  rig.cpu.set_checks_enabled(false);
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorChecksOff);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiment F9 — Figure 9: the RETURN instruction.
//
// Isolates the RET side of the crossing: cycles for an upward return by
// ring distance, the PR-ring raising work, and the downward-return trap
// cost (supervisor-emulated).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cpu/cpu.h"
#include "src/mem/descriptor_segment.h"

namespace rings {
namespace {

// A bare rig that executes a single RET from `from_ring` to `to_ring`
// repeatedly (re-arming the registers each time), measuring its cycles in
// isolation — no supervisor, no loop overhead.
struct RetRig {
  PhysicalMemory memory{1 << 20};
  DescriptorSegment dseg;
  Cpu cpu;
  Segno ret_segno = 1;
  Segno target_segno = 2;

  RetRig(Ring from_ring, Ring to_ring)
      : dseg(*DescriptorSegment::Create(&memory, 16, 0)), cpu(&memory) {
    cpu.SetDbr(dseg.dbr());
    // Segment 1: `ret pr7|0`, executable at from_ring.
    const AbsAddr ret_base = *memory.Allocate(1);
    memory.Write(ret_base, EncodeInstruction(MakeInsPr(Opcode::kRet, 7, 0)));
    Sdw sdw;
    sdw.present = true;
    sdw.base = ret_base;
    sdw.bound = 1;
    sdw.access = MakeProcedureSegment(from_ring, from_ring, 7, 1);
    dseg.Store(ret_segno, sdw);
    // Segment 2: the return target, executable at to_ring.
    const AbsAddr tgt_base = *memory.Allocate(2);
    memory.Write(tgt_base, EncodeInstruction(MakeIns(Opcode::kNop)));
    memory.Write(tgt_base + 1, EncodeInstruction(MakeIns(Opcode::kNop)));
    sdw.base = tgt_base;
    sdw.bound = 2;
    sdw.access = MakeProcedureSegment(to_ring, to_ring, 7, 1);
    dseg.Store(target_segno, sdw);
    Arm(from_ring, to_ring);
  }

  void Arm(Ring from_ring, Ring to_ring) {
    cpu.regs().ipr = Ipr{from_ring, ret_segno, 0};
    for (PointerRegister& pr : cpu.regs().pr) {
      pr = PointerRegister{from_ring, 0, 0};
    }
    cpu.regs().pr[kPrReturn] = PointerRegister{to_ring, target_segno, 0};
  }
};

double RetCycles(Ring from_ring, Ring to_ring, bool* trapped = nullptr) {
  RetRig rig(from_ring, to_ring);
  const int reps = 5000;
  uint64_t total = 0;
  bool saw_trap = false;
  for (int i = 0; i < reps; ++i) {
    rig.Arm(from_ring, to_ring);
    const uint64_t before = rig.cpu.cycles();
    rig.cpu.Step();
    total += rig.cpu.cycles() - before;
    if (rig.cpu.trap_pending()) {
      saw_trap = true;
      rig.cpu.TakeTrap();
    }
  }
  if (trapped != nullptr) {
    *trapped = saw_trap;
  }
  return static_cast<double>(total) / reps;
}

void PrintReport() {
  PrintBanner("F9 — Figure 9: RETURN, by ring distance",
              "Cycles for one RET instruction in isolation. Upward returns of any\n"
              "distance cost the same as same-ring returns (the PR-ring raising is\n"
              "register logic); only the downward return traps for software.");
  std::printf("  scenario                  cycles   trapped\n");
  const auto row = [](const char* label, Ring from, Ring to, const char* suffix = "") {
    bool trapped = false;
    const double cycles = RetCycles(from, to, &trapped);
    std::printf("  %s     %8.2f   %s%s\n", label, cycles, trapped ? "yes" : "no", suffix);
  };
  row("same-ring  (4 -> 4)", 4, 4);
  row("upward     (1 -> 4)", 1, 4);
  row("upward     (0 -> 7)", 0, 7);
  row("downward   (5 -> 4)", 5, 4, " (cost includes the trap)");

  // The PR-raising rule, demonstrated.
  std::printf("\n  PR rings after an upward return 1 -> 4 (all raised to >= 4):\n   ");
  RetRig rig(1, 4);
  rig.cpu.Step();
  for (unsigned i = 0; i < kNumPointerRegisters; ++i) {
    std::printf(" pr%u=%u", i, rig.cpu.regs().pr[i].ring);
  }
  std::printf("\n");
}

// Wall-clock of a fixed batch of armed RETs, sampled kMinWallSamples
// times; the min feeds the opt-in wall gate. The crossing cache is the
// variable under test: the site is maximally monomorphic (one RET, one
// target, every rep), so `crossing_cache` on replays the memoized
// resolution instead of re-fetching the SDW and re-running ResolveReturn.
double RetWallMinNs(bool crossing_cache, uint64_t* crossing_hits = nullptr) {
  RetRig rig(1, 4);
  rig.cpu.set_chain_enabled(crossing_cache);
  constexpr int kBatch = 200'000;
  WallSampler wall;
  for (int s = 0; s < kMinWallSamples; ++s) {
    wall.Begin();
    for (int i = 0; i < kBatch; ++i) {
      rig.Arm(1, 4);
      rig.cpu.Step();
    }
    wall.End();
  }
  if (crossing_hits != nullptr) {
    *crossing_hits = rig.cpu.counters().crossing_hits;
  }
  return wall.MinNs();
}

void BM_UpwardReturn(benchmark::State& state) {
  RetRig rig(1, 4);
  rig.cpu.set_chain_enabled(BlockChainEnvEnabled());
  for (auto _ : state) {
    rig.Arm(1, 4);
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
  // Deterministic simulated cost, gated in CI by tools/bench_check.py.
  state.counters["sim_cycles_per_return"] = RetCycles(1, 4);
  uint64_t hits = 0;
  state.counters["wall_min_ns"] = RetWallMinNs(BlockChainEnvEnabled(), &hits);
  // Host-only effectiveness counter (fingerprint-excluded).
  state.counters["crossing_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_UpwardReturn);

void BM_UpwardReturn_NoCrossingCache(benchmark::State& state) {
  RetRig rig(1, 4);
  rig.cpu.set_chain_enabled(false);
  for (auto _ : state) {
    rig.Arm(1, 4);
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_cycles_per_return"] = RetCycles(1, 4);
  state.counters["wall_min_ns"] = RetWallMinNs(false);
}
BENCHMARK(BM_UpwardReturn_NoCrossingCache);

void BM_SameRingReturn(benchmark::State& state) {
  RetRig rig(4, 4);
  rig.cpu.set_chain_enabled(BlockChainEnvEnabled());
  for (auto _ : state) {
    rig.Arm(4, 4);
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_cycles_per_return"] = RetCycles(4, 4);
}
BENCHMARK(BM_SameRingReturn);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

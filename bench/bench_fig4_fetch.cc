// Experiment F4 — Figure 4: instruction fetch with execute-bracket
// validation integrated into address translation.
//
// Reports simulated cycles per instruction for a straight-line fetch
// stream under: descriptor cache on/off and validation on/off. The
// paper's point: with the descriptor already in hand for address
// translation, the execute check adds no memory traffic — only
// comparisons.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cpu/cpu.h"
#include "src/mem/descriptor_segment.h"

namespace rings {
namespace {

struct FetchRig {
  PhysicalMemory memory{1 << 20};
  DescriptorSegment dseg;
  Cpu cpu;
  Segno code_segno = 0;

  explicit FetchRig(int code_words = 256)
      : dseg(*DescriptorSegment::Create(&memory, 16, 0)), cpu(&memory) {
    cpu.SetDbr(dseg.dbr());
    const AbsAddr base = *memory.Allocate(code_words);
    for (int i = 0; i < code_words - 1; ++i) {
      memory.Write(base + i, EncodeInstruction(MakeIns(Opcode::kNop)));
    }
    memory.Write(base + code_words - 1, EncodeInstruction(MakeIns(Opcode::kTra, 0)));
    Sdw sdw;
    sdw.present = true;
    sdw.base = base;
    sdw.bound = code_words;
    sdw.access = MakeProcedureSegment(0, 7);
    dseg.Store(0, sdw);
    cpu.regs().ipr = Ipr{4, 0, 0};
  }
};

double CyclesPerInstruction(bool cache, bool checks, int steps = 20000) {
  FetchRig rig;
  rig.cpu.sdw_cache().set_enabled(cache);
  rig.cpu.set_checks_enabled(checks);
  for (int i = 0; i < steps; ++i) {
    rig.cpu.Step();
  }
  return static_cast<double>(rig.cpu.cycles()) / steps;
}

void PrintReport() {
  PrintBanner("F4 — Figure 4: instruction fetch validation",
              "Simulated cycles/instruction for a NOP stream; the execute-bracket\n"
              "check reuses the SDW fetched for address translation.");
  std::printf("  configuration                     cycles/instruction\n");
  std::printf("  cache on,  validation on          %18.3f\n", CyclesPerInstruction(true, true));
  std::printf("  cache on,  validation off         %18.3f\n", CyclesPerInstruction(true, false));
  std::printf("  cache off, validation on          %18.3f\n", CyclesPerInstruction(false, true));
  std::printf("  cache off, validation off         %18.3f\n", CyclesPerInstruction(false, false));
  std::printf("\n  (validation on vs off differ only by the access_check cycle-model\n"
              "   constant, 0 by default: the check is comparison logic, not traffic.)\n");

  // Validation outcome sweep: fetches that trap, by ring (denials cost a
  // trap, not silent failure).
  std::printf("\n  fetch outcome by ring, execute bracket [2,4]:\n  ring: ");
  for (Ring r = 0; r < kRingCount; ++r) {
    FetchRig rig;
    Sdw sdw = *rig.dseg.Fetch(0);
    sdw.access = MakeProcedureSegment(2, 4);
    rig.dseg.Store(0, sdw);
    rig.cpu.FlushSdwCache();
    rig.cpu.regs().ipr.ring = r;
    rig.cpu.Step();
    std::printf("%u=%s ", r, rig.cpu.trap_pending() ? "trap" : "ok");
  }
  std::printf("\n");
}

void BM_FetchStream(benchmark::State& state) {
  FetchRig rig;
  rig.cpu.set_checks_enabled(state.range(0) != 0);
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchStream)->Arg(1)->Arg(0);

void BM_FetchNoCache(benchmark::State& state) {
  FetchRig rig;
  rig.cpu.sdw_cache().set_enabled(false);
  for (auto _ : state) {
    rig.cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchNoCache);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

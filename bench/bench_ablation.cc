// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * the descriptor (SDW) cache — without it every reference walks the
//     descriptor segment, which is what makes per-reference validation
//     affordable;
//   * the trap cost — how the hardware-vs-software crossing ratio (C3)
//     moves as traps get cheaper or dearer (the paper's conclusion is
//     robust unless traps are nearly free);
//   * upward-call emulation cost vs the hardware downward path.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

PerCallCost MeasureHardwareWithModel(const CycleModel& model, Ring caller,
                                     const SegmentAccess& target, int nargs) {
  // Local reimplementation of MeasureHardwareCrossing with a custom cycle
  // model (machine config).
  auto run = [&](bool with_call) {
    MachineConfig config;
    config.cycle_model = model;
    Machine machine(config);
    std::map<std::string, AccessControlList> acls;
    acls["main"] = AccessControlList::Public(MakeProcedureSegment(caller, caller));
    acls["counter"] = AccessControlList::Public(MakeDataSegment(caller, caller));
    acls["argdata"] = AccessControlList::Public(MakeDataSegment(caller, caller));
    acls["target"] = AccessControlList::Public(target);
    std::string error;
    if (!machine.LoadProgramSource(HardwareCallSource(caller, nargs, with_call, kBenchIterations),
                                   acls, &error)) {
      std::abort();
    }
    Process* p = machine.Login("bench");
    machine.supervisor().InitiateAll(p);
    machine.Start(p, "main", "start", caller);
    machine.Run(2'000'000'000);
    if (p->state != ProcessState::kExited) {
      std::abort();
    }
    return machine.cpu().cycles();
  };
  PerCallCost cost;
  cost.cycles = static_cast<double>(run(true) - run(false)) / kBenchIterations;
  return cost;
}

double Measure645WithModel(const CycleModel& model, int nargs) {
  auto run = [&](bool with_call) {
    MachineConfig config;
    config.cycle_model = model;
    B645Machine machine(config);
    std::map<std::string, SegmentAccess> specs;
    specs["main"] = MakeProcedureSegment(4, 4);
    specs["counter"] = MakeDataSegment(4, 4);
    specs["argdata"] = MakeDataSegment(4, 4);
    specs["target"] = MakeProcedureSegment(1, 1, 7, 1);
    std::string error;
    if (!machine.LoadProgramSource(B645CallSource(nargs, with_call, kBenchIterations), specs,
                                   &error)) {
      std::abort();
    }
    const Segno tgt = machine.registry().Find("target")->segno;
    machine.Start("main", "start", 4);
    const auto addr = machine.registry().Find("main")->symbols.at("tgtword");
    machine.PokeWordForTest("main", addr, PackB645Target(tgt, 0));
    machine.Run(2'000'000'000);
    if (!machine.exited()) {
      std::abort();
    }
    return machine.cpu().cycles();
  };
  return static_cast<double>(run(true) - run(false)) / kBenchIterations;
}

void PrintReport() {
  PrintBanner("Ablations — descriptor cache, trap cost, upward-call emulation",
              "Sensitivity of the headline results to the cycle-model choices.");

  // 1. Descriptor cache.
  std::printf("  descriptor cache ablation (straight-line kernel, cycles/instr):\n");
  {
    auto cpi = [&](bool cache) {
      PhysicalMemory memory(1 << 20);
      auto dseg = DescriptorSegment::Create(&memory, 16, 0);
      Cpu cpu(&memory);
      cpu.SetDbr(dseg->dbr());
      cpu.sdw_cache().set_enabled(cache);
      const AbsAddr data = *memory.Allocate(8);
      Sdw sdw;
      sdw.present = true;
      sdw.base = data;
      sdw.bound = 8;
      sdw.access = MakeDataSegment(4, 4);
      dseg->Store(1, sdw);
      const AbsAddr code = *memory.Allocate(2);
      memory.Write(code, EncodeInstruction(MakeInsPr(Opcode::kLda, 2, 0)));
      memory.Write(code + 1, EncodeInstruction(MakeIns(Opcode::kTra, 0)));
      sdw.base = code;
      sdw.bound = 2;
      sdw.access = MakeProcedureSegment(0, 7);
      dseg->Store(0, sdw);
      cpu.regs().ipr = Ipr{4, 0, 0};
      cpu.regs().pr[2] = PointerRegister{4, 1, 0};
      for (int i = 0; i < 10000; ++i) {
        cpu.Step();
      }
      return static_cast<double>(cpu.cycles()) / 10000;
    };
    std::printf("    cache on:  %6.3f\n    cache off: %6.3f\n", cpi(true), cpi(false));
  }

  // 2. Trap-cost sweep: the C3 ratio as the trap gets cheaper/dearer.
  std::printf("\n  trap-cost sensitivity of the hardware advantage (4 args):\n");
  std::printf("    trap cycles   hw cycles   645 cycles      x\n");
  for (const uint64_t trap_cost : {5ull, 20ull, 40ull, 100ull, 400ull}) {
    CycleModel model = CycleModel::Default();
    model.trap = trap_cost;
    model.rett = trap_cost / 2;
    const PerCallCost hw = MeasureHardwareWithModel(model, 4, MakeProcedureSegment(1, 1, 7, 1), 4);
    const double sw = Measure645WithModel(model, 4);
    std::printf("    %11llu   %9.2f   %10.2f  %5.1f\n",
                static_cast<unsigned long long>(trap_cost), hw.cycles, sw, sw / hw.cycles);
  }

  // 2b. Dynamic linking: one-time snap cost vs a pre-resolved pointer.
  std::printf("\n  dynamic linking (.link vs .its), 1000 references to one word:\n");
  {
    auto run = [&](const char* ptr_directive) {
      Machine machine;
      std::map<std::string, AccessControlList> acls;
      acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
      acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
      acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
      const std::string source = StrFormat(R"(
        .segment main
start:  lda   lk,*
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   start
        mme   0
limit:  .word 1000
lk:     %s 4, data, 0
cnt:    .its  4, counter, 0

        .segment data
        .word 7
        .segment counter
        .word 0
)",
                                           ptr_directive);
      std::string error;
      if (!machine.LoadProgramSource(source, acls, &error)) {
        std::abort();
      }
      Process* p = machine.Login("bench");
      machine.supervisor().InitiateAll(p);
      machine.Start(p, "main", "start", kUserRing);
      machine.Run(100'000'000);
      if (p->state != ProcessState::kExited) {
        std::abort();
      }
      return machine.cpu().cycles();
    };
    const uint64_t with_link = run(".link");
    const uint64_t with_its = run(".its ");
    std::printf("    .its (pre-resolved): %8llu cycles\n",
                static_cast<unsigned long long>(with_its));
    std::printf("    .link (snapped):     %8llu cycles (one-time snap cost %lld;\n"
                "                          0 per subsequent reference)\n",
                static_cast<unsigned long long>(with_link),
                static_cast<long long>(with_link - with_its));
  }

  // 3. Upward-call emulation vs hardware downward call.
  std::printf("\n  the case hardware does NOT handle (upward call, supervisor\n"
              "  emulation with copy-in/copy-out) vs the case it does:\n");
  {
    const PerCallCost down = MeasureHardwareCrossing(4, MakeProcedureSegment(1, 1, 7, 1), 2);
    const PerCallCost up = MeasureHardwareCrossing(4, MakeProcedureSegment(6, 6, 6, 1), 2);
    std::printf("    downward (hardware):  %8.2f cycles\n", down.cycles);
    std::printf("    upward  (emulated):   %8.2f cycles  (%.1fx)\n", up.cycles,
                up.cycles / down.cycles);
  }
}

void BM_CachedLda(benchmark::State& state) {
  PhysicalMemory memory(1 << 20);
  auto dseg = DescriptorSegment::Create(&memory, 16, 0);
  Cpu cpu(&memory);
  cpu.SetDbr(dseg->dbr());
  cpu.sdw_cache().set_enabled(state.range(0) != 0);
  const AbsAddr code = *memory.Allocate(2);
  memory.Write(code, EncodeInstruction(MakeIns(Opcode::kNop)));
  memory.Write(code + 1, EncodeInstruction(MakeIns(Opcode::kTra, 0)));
  Sdw sdw;
  sdw.present = true;
  sdw.base = code;
  sdw.bound = 2;
  sdw.access = MakeProcedureSegment(0, 7);
  dseg->Store(0, sdw);
  cpu.regs().ipr = Ipr{4, 0, 0};
  for (auto _ : state) {
    cpu.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedLda)->Arg(1)->Arg(0);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Experiments F1 and F2 — Figures 1 and 2: example access indicators for
// a writable data segment and for a gated pure procedure segment.
//
// Regenerates the figures as per-ring allow/deny matrices computed by the
// core validation functions, and benchmarks the raw throughput of the
// validation predicates (the comparisons the paper argues cost "very
// small additional ... processor speed").
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/access.h"
#include "src/core/transfer.h"

namespace rings {
namespace {

void PrintAccessMatrix(const char* title, const SegmentAccess& access) {
  std::printf("\n%s  [flags=%s brackets=%s gates=%u]\n", title,
              access.flags.ToString().c_str(), access.brackets.ToString().c_str(),
              access.gate_count);
  std::printf("  ring   read  write  execute  call-via-gate\n");
  for (Ring r = 0; r < kRingCount; ++r) {
    const bool gate_call =
        ResolveCall(access, r, r, /*word=*/0, /*same_segment=*/false).ok() ||
        ResolveCall(access, r, r, 0, false).cause == TrapCause::kUpwardCall;
    std::printf("  %4u   %4s  %5s  %7s  %13s\n", r, CheckRead(access, r).ok() ? "yes" : "-",
                CheckWrite(access, r).ok() ? "yes" : "-",
                CheckExecute(access, r).ok() ? "yes" : "-",
                access.gate_count > 0 && gate_call && !CheckExecute(access, r).ok() ? "gate"
                : gate_call ? "direct"
                            : "-");
  }
}

void PrintFigures() {
  PrintBanner("F1/F2 — Figures 1 and 2: example access indicators",
              "Per-ring capability matrices for the paper's two example segments.");

  // Figure 1: a writable data segment — write bracket [0,4], read
  // bracket [0,5].
  PrintAccessMatrix("Figure 1: writable data segment", MakeDataSegment(4, 5));

  // Figure 2: a pure procedure segment with gates — execute bracket
  // [2,4], gate extension (4,6], 2 gates.
  PrintAccessMatrix("Figure 2: gated pure procedure segment", MakeProcedureSegment(2, 4, 6, 2));

  // A ring-n stack segment, for contrast.
  PrintAccessMatrix("Stack segment for ring 4", MakeStackSegment(4));
}

void BM_CheckRead(benchmark::State& state) {
  const SegmentAccess access = MakeDataSegment(4, 5);
  Ring ring = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckRead(access, ring));
    ring = (ring + 1) & 7;
  }
}
BENCHMARK(BM_CheckRead);

void BM_CheckWrite(benchmark::State& state) {
  const SegmentAccess access = MakeDataSegment(4, 5);
  Ring ring = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckWrite(access, ring));
    ring = (ring + 1) & 7;
  }
}
BENCHMARK(BM_CheckWrite);

void BM_CheckExecute(benchmark::State& state) {
  const SegmentAccess access = MakeProcedureSegment(2, 4, 6, 2);
  Ring ring = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckExecute(access, ring));
    ring = (ring + 1) & 7;
  }
}
BENCHMARK(BM_CheckExecute);

void BM_ResolveCall(benchmark::State& state) {
  const SegmentAccess access = MakeProcedureSegment(2, 4, 6, 2);
  Ring ring = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResolveCall(access, ring, ring, 0, false));
    ring = (ring + 1) & 7;
  }
}
BENCHMARK(BM_ResolveCall);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

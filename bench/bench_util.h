// Shared benchmark utilities: guest workload generators and simulated-
// cycle cost measurement for ring crossings on both machines.
//
// Methodology: every cost is measured differentially. A workload loop is
// run twice — once with the operation under test and once with it
// replaced by NOPs — and the per-iteration difference in *simulated
// cycles* (and instructions, checks, supervisor steps) is reported. Wall-
// clock time of the simulator is measured separately by google-benchmark
// and is not the reproduction target; the cycle counts are.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/b645/b645_machine.h"
#include "src/base/strings.h"
#include "src/sys/machine.h"

namespace rings {

inline constexpr int kBenchIterations = 2000;

// Minimum number of timed-region samples a benchmark must collect before
// the min/median are meaningful; benchmarks register Iterations(N >= 5).
inline constexpr int kMinWallSamples = 5;

// Collects one wall-clock sample per timed region and reports the min and
// median. The min is the noise-robust statistic tools/bench_check.py can
// gate on (scheduling and frequency jitter only ever add time); the
// median is reported alongside for humans.
class WallSampler {
 public:
  void Begin() { start_ = std::chrono::steady_clock::now(); }
  void End() {
    samples_ns_.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  double MinNs() const {
    return samples_ns_.empty() ? 0.0
                               : *std::min_element(samples_ns_.begin(), samples_ns_.end());
  }
  double MedianNs() const {
    if (samples_ns_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_ns_;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }
  size_t count() const { return samples_ns_.size(); }

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<double> samples_ns_;
};

// CI ablation hook: RINGS_BLOCK_ENGINE=0 forces the superblock engine off
// for every benchmark in the process, so the whole suite can be run twice
// (engine on and off) without a second set of binaries. Variant-specific
// flags AND with this.
inline bool BlockEngineEnvEnabled() {
  const char* v = std::getenv("RINGS_BLOCK_ENGINE");
  return v == nullptr || std::string(v) != "0";
}

// RINGS_CHAIN=0: force block-to-block chaining (and the CALL/RETURN
// crossing cache) off across the suite, same pattern as above. The CI
// bench gate runs a third pass with this set and archives it as the
// no-chain baseline.
inline bool BlockChainEnvEnabled() {
  const char* v = std::getenv("RINGS_CHAIN");
  return v == nullptr || std::string(v) != "0";
}

// RINGS_SHARED_DECODE=0: every machine builds a private decode image.
inline bool SharedDecodeEnvEnabled() {
  const char* v = std::getenv("RINGS_SHARED_DECODE");
  return v == nullptr || std::string(v) != "0";
}

struct PerCallCost {
  double cycles = 0;
  double instructions = 0;
  double checks = 0;
  double supervisor_steps = 0;
  double traps = 0;
};

// --- hardware machine workloads -------------------------------------------

// Guest source: a loop that performs `epp/call` into a gated target
// `iters` times. The callee touches `nargs` arguments through the
// argument list and returns. When `with_call` is false the crossing
// sequence is replaced by NOPs (the differential baseline).
inline std::string HardwareCallSource(Ring caller, int nargs, bool with_call, int iters) {
  std::string body;
  if (with_call) {
    body = "        epp   pr2, gptr,*\n        call  pr2|0\n";
  } else {
    body = "        nop\n        nop\n";
  }
  std::string callee;
  for (int i = 0; i < nargs; ++i) {
    callee += StrFormat("        lda   pr1|%d,*\n", i + 1);
  }
  std::string arglist = StrFormat("args:   .word %d\n", nargs);
  for (int i = 0; i < nargs; ++i) {
    arglist += StrFormat("        .its  %u, argdata, %d\n", caller, i);
  }
  for (int i = 0; i < nargs; ++i) {
    arglist += "        .word 1\n";
  }
  return StrFormat(R"(
        .segment main
start:  epp   pr1, args
loop:
%s
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word %d
cnt:    .its  %u, counter, 0
gptr:   .its  %u, target, 0
%s
        .segment counter
        .word 0

        .segment argdata
        .block %d

        .segment target
        .gates 1
entry:
%s
        ret   pr7|0
)",
                   body.c_str(), iters, caller, caller, arglist.c_str(), nargs > 0 ? nargs : 1,
                   callee.c_str());
}

// Runs the source on a fresh hardware machine; returns the counters and
// cycles consumed. Aborts on setup failure or unexpected kill.
struct RunCost {
  uint64_t cycles = 0;
  Counters counters;
};

// A loaded, started (but not yet run) hardware machine plus its process —
// lets benchmarks keep construction and assembly outside the timed region.
struct HardwareRig {
  std::unique_ptr<Machine> machine;
  Process* process = nullptr;
};

inline HardwareRig SetupHardware(const std::string& source, Ring caller,
                                 const SegmentAccess& target,
                                 const MachineConfig& config = MachineConfig{}) {
  HardwareRig rig;
  rig.machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(caller, caller));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(caller, caller));
  acls["argdata"] = AccessControlList::Public(MakeDataSegment(caller, caller));
  acls["target"] = AccessControlList::Public(target);
  std::string error;
  if (!rig.machine->LoadProgramSource(source, acls, &error)) {
    std::fprintf(stderr, "bench setup failed: %s\n", error.c_str());
    std::abort();
  }
  rig.process = rig.machine->Login("bench");
  rig.machine->supervisor().InitiateAll(rig.process);
  rig.machine->Start(rig.process, "main", "start", caller);
  return rig;
}

inline RunCost RunHardware(const std::string& source, Ring caller, const SegmentAccess& target,
                           const MachineConfig& config = MachineConfig{}) {
  HardwareRig rig = SetupHardware(source, caller, target, config);
  rig.machine->Run(2'000'000'000);
  if (rig.process->state != ProcessState::kExited) {
    std::fprintf(stderr, "bench workload killed: %s at %u|%u\n",
                 std::string(TrapCauseName(rig.process->kill_cause)).c_str(),
                 rig.process->kill_pc.segno, rig.process->kill_pc.wordno);
    std::abort();
  }
  return RunCost{rig.machine->cpu().cycles(), rig.machine->cpu().counters()};
}

// Differential cost of one epp+call+callee+return sequence on the ring
// hardware.
inline PerCallCost MeasureHardwareCrossing(Ring caller, const SegmentAccess& target,
                                           int nargs = 0, int iters = kBenchIterations) {
  const RunCost with = RunHardware(HardwareCallSource(caller, nargs, true, iters), caller, target);
  const RunCost without =
      RunHardware(HardwareCallSource(caller, nargs, false, iters), caller, target);
  PerCallCost cost;
  cost.cycles = static_cast<double>(with.cycles - without.cycles) / iters;
  cost.instructions =
      static_cast<double>(with.counters.instructions - without.counters.instructions) / iters;
  cost.checks =
      static_cast<double>(with.counters.TotalChecks() - without.counters.TotalChecks()) / iters;
  cost.supervisor_steps =
      static_cast<double>(with.counters.supervisor_steps - without.counters.supervisor_steps) /
      iters;
  cost.traps = static_cast<double>(with.counters.TotalTraps() - without.counters.TotalTraps()) /
               iters;
  return cost;
}

// --- 645 baseline workloads ------------------------------------------------

inline std::string B645CallSource(int nargs, bool with_call, int iters) {
  std::string body;
  if (with_call) {
    body = "        ldq   tgtword\n        mme   1\n";
  } else {
    body = "        nop\n        nop\n";
  }
  std::string callee;
  for (int i = 0; i < nargs; ++i) {
    callee += StrFormat("        lda   pr1|%d,*\n", i + 1);
  }
  std::string arglist = StrFormat("args:   .word %d\n", nargs);
  for (int i = 0; i < nargs; ++i) {
    arglist += StrFormat("        .its  0, argdata, %d\n", i);
  }
  for (int i = 0; i < nargs; ++i) {
    arglist += "        .word 1\n";
  }
  return StrFormat(R"(
        .segment main
start:  epp   pr1, args
loop:
%s
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word %d
cnt:    .its  0, counter, 0
tgtword: .word 0
%s
        .segment counter
        .word 0

        .segment argdata
        .block %d

        .segment target
        .gates 1
entry:
%s
        mme   2
)",
                   body.c_str(), iters, arglist.c_str(), nargs > 0 ? nargs : 1, callee.c_str());
}

inline RunCost Run645(const std::string& source, Ring caller, const SegmentAccess& target) {
  B645Machine machine;
  std::map<std::string, SegmentAccess> specs;
  specs["main"] = MakeProcedureSegment(caller, caller);
  specs["counter"] = MakeDataSegment(caller, caller);
  specs["argdata"] = MakeDataSegment(caller, caller);
  specs["target"] = target;
  std::string error;
  if (!machine.LoadProgramSource(source, specs, &error)) {
    std::fprintf(stderr, "645 bench setup failed: %s\n", error.c_str());
    std::abort();
  }
  const Segno tgt = machine.registry().Find("target")->segno;
  machine.Start("main", "start", caller);
  // Patch the packed crossing target (tgtword is the word labelled
  // `tgtword` in main).
  const auto addr = machine.registry().Find("main")->symbols.at("tgtword");
  machine.PokeWordForTest("main", addr, PackB645Target(tgt, 0));
  machine.Run(2'000'000'000);
  if (!machine.exited()) {
    std::fprintf(stderr, "645 bench workload killed: %s\n",
                 std::string(TrapCauseName(machine.kill_cause())).c_str());
    std::abort();
  }
  return RunCost{machine.cpu().cycles(), machine.cpu().counters()};
}

inline PerCallCost Measure645Crossing(Ring caller, const SegmentAccess& target, int nargs = 0,
                                      int iters = kBenchIterations) {
  const RunCost with = Run645(B645CallSource(nargs, true, iters), caller, target);
  const RunCost without = Run645(B645CallSource(nargs, false, iters), caller, target);
  PerCallCost cost;
  cost.cycles = static_cast<double>(with.cycles - without.cycles) / iters;
  cost.instructions =
      static_cast<double>(with.counters.instructions - without.counters.instructions) / iters;
  cost.checks =
      static_cast<double>(with.counters.TotalChecks() - without.counters.TotalChecks()) / iters;
  cost.supervisor_steps =
      static_cast<double>(with.counters.supervisor_steps - without.counters.supervisor_steps) /
      iters;
  cost.traps = static_cast<double>(with.counters.TotalTraps() - without.counters.TotalTraps()) /
               iters;
  return cost;
}

// --- report helpers ---------------------------------------------------------

inline void PrintBanner(const char* experiment, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("================================================================\n");
}

}  // namespace rings

#endif  // BENCH_BENCH_UTIL_H_

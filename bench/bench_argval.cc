// Experiment C4 — argument referencing and validation ("Call and Return
// Revisited"). A more privileged callee references its caller's arguments
// through PRa and the argument list; the effective-ring machinery
// validates each reference at the caller's level automatically.
//
// Measures the per-reference cost of validated cross-ring argument reads
// vs plain same-ring reads, and vs the 645 baseline where the gatekeeper
// validated the whole argument list in software up front.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rings {
namespace {

void PrintReport() {
  PrintBanner("C4 — automatic argument validation",
              "Cost growth per extra argument reference. Hardware: each extra\n"
              "argument adds one ordinary validated indirect load. 645: the\n"
              "gatekeeper adds a software validation step per argument on top.");

  std::printf("  args  hw cycles/crossing  marginal  645 cycles/crossing  marginal\n");
  double prev_hw = 0;
  double prev_sw = 0;
  for (const int nargs : {0, 1, 2, 4, 8}) {
    const PerCallCost hw = MeasureHardwareCrossing(4, MakeProcedureSegment(1, 1, 7, 1), nargs);
    const PerCallCost sw = Measure645Crossing(4, MakeProcedureSegment(1, 1, 7, 1), nargs);
    std::printf("  %4d  %19.2f  %8.2f  %20.2f  %8.2f\n", nargs, hw.cycles,
                nargs == 0 ? 0.0 : hw.cycles - prev_hw, sw.cycles,
                nargs == 0 ? 0.0 : sw.cycles - prev_sw);
    prev_hw = hw.cycles;
    prev_sw = sw.cycles;
  }

  std::printf("\n  The hardware marginal cost is the cost of `lda pr1|n,*` itself —\n"
              "  the same instruction a same-ring callee would execute; validation\n"
              "  rides along in the effective-ring comparison at zero extra cycles.\n");
}

void BM_ValidatedArgReads(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunHardware(HardwareCallSource(4, 8, true, 100), 4, MakeProcedureSegment(1, 1, 7, 1)));
  }
  state.SetItemsProcessed(state.iterations() * 800);
}
BENCHMARK(BM_ValidatedArgReads)->Iterations(10);

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

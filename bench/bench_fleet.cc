// Experiment FL — the fleet engine: aggregate simulated throughput of N
// independent machines scheduled across host worker threads.
//
// The workload is a mixed twelve-machine fleet — gate-crossing call
// loops (the Figure 8 workload), library-structured protected-directory
// searches (the file-search workload), and demand-paged counters — run
// to completion at 1, 2, 4, and 8 worker threads. Every machine's final
// state is bit-identical at every thread count (the fleet determinism
// contract), so all sim_* counters below are thread-count invariant and
// gated exactly by tools/bench_check.py; only the host wall-clock and
// the aggregate instructions-per-second scale with threads.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include "bench/bench_util.h"
#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/mem/page_table.h"

namespace rings {
namespace {

// PrintReport's shared-vs-private decode comparison flips this between
// fleet runs; it is written on the main thread before Fleet::Run spawns
// the workers that read it, so the factories see a settled value.
bool g_shared_decode = true;

// Small machines: the fleet holds all members live at once, so the bench
// keeps each core store at 2^18 words rather than the 2^22 default.
MachineConfig FleetMachineConfig() {
  MachineConfig config;
  config.memory_words = size_t{1} << 18;
  config.block_engine = BlockEngineEnvEnabled();
  config.chain = BlockChainEnvEnabled();
  config.shared_decode = g_shared_decode && SharedDecodeEnvEnabled();
  return config;
}

// Peak resident set of the whole process so far, in bytes. A monotone
// high-water mark: meaningful for the first fleet run after startup and
// as a floor afterwards, so the report runs the smaller (shared-decode)
// configuration first.
double PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // linux: kilobytes
}

// --- workload 1: the Figure 8 gate-crossing call loop ----------------------

constexpr int kCallIters = 12000;

std::unique_ptr<Machine> MakeCallLoopMachine() {
  HardwareRig rig = SetupHardware(HardwareCallSource(4, 2, true, kCallIters), 4,
                                  MakeProcedureSegment(1, 1, 7, 1), FleetMachineConfig());
  return std::move(rig.machine);
}

// --- workload 2: the file-search library structure -------------------------
// Ring-4 search loop probing a ring-1 protected directory through a tiny
// read gate (one crossing per probe), repeated `rlim` times.

constexpr int kSearchEntries = 48;
constexpr int kSearchRepeats = 120;

std::string SearchSource() {
  return StrFormat(R"(
        .segment rdsvc       ; ring-1: A <- directory[Q]
        .gates 1
gate:   stq   tq,*
        ldx   x1, tq,*
        epp   pr3, sdirp,*
        lda   pr3|0,x1
        ret   pr7|0
tq:     .its  1, svcdata, 0
sdirp:  .its  1, directory, 0

        .segment svcdata
        .block 1

        .segment main
start:  stz   reps,*
outer:  stz   idx,*
loop:   ldq   idx,*
        epp   pr2, g,*
        call  pr2|0          ; crossing per probe
        sba   key
        tze   found
        aos   idx,*
        aos   idx,*
        lda   idx,*
        sba   dlen
        tmi   loop
        ldai  99             ; key missing: exit 99 (error)
        mme   0
found:  aos   reps,*
        lda   reps,*
        sba   rlim
        tmi   outer
        ldai  0
        mme   0
key:    .word %d
dlen:   .word %d
rlim:   .word %d
idx:    .its  4, udata, 0
reps:   .its  4, udata, 1
g:      .its  4, rdsvc, 0

        .segment udata
        .block 2
)",
                   kSearchEntries, 2 * kSearchEntries, kSearchRepeats);
}

std::unique_ptr<Machine> MakeSearchMachine() {
  auto machine = std::make_unique<Machine>(FleetMachineConfig());
  std::vector<Word> directory;
  for (int i = 1; i <= kSearchEntries; ++i) {
    directory.push_back(static_cast<Word>(i));
    directory.push_back(static_cast<Word>(1000 + i));
  }
  machine->registry().CreateSegmentWithContents(
      "directory", directory, 0, 0, AccessControlList::Public(MakeReadOnlyDataSegment(1)));
  std::map<std::string, AccessControlList> acls;
  acls["rdsvc"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["svcdata"] = AccessControlList::Public(MakeDataSegment(1, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["udata"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine->LoadProgramSource(SearchSource(), acls, &error)) {
    std::fprintf(stderr, "bench_fleet search setup failed: %s\n", error.c_str());
    std::abort();
  }
  Process* p = machine->Login("bench");
  machine->supervisor().InitiateAll(p);
  machine->Start(p, "main", "start", kUserRing);
  return machine;
}

// --- workload 3: the demand-paged counter ----------------------------------
// Touches four pages of an initially absent paged segment every lap, so
// the run front-loads missing-page service and then exercises the
// software TLB on every reference.

constexpr int kPagerIters = 24000;

std::unique_ptr<Machine> MakePagerMachine() {
  auto machine = std::make_unique<Machine>(FleetMachineConfig());
  machine->registry().CreatePagedSegment("bigdata", 4 * kPageWords,
                                         AccessControlList::Public(MakeDataSegment(4, 4)),
                                         /*populate=*/false);
  const std::string source = StrFormat(R"(
        .segment pager
pstart: aos   cnt,*
        lda   p1,*
        adai  1
        sta   p1,*
        lda   p2,*
        adai  1
        sta   p2,*
        lda   p3,*
        adai  1
        sta   p3,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        ldai  0
        mme   0
plim:   .word %d
cnt:    .its  4, bigdata, 10
p1:     .its  4, bigdata, 1034
p2:     .its  4, bigdata, 2058
p3:     .its  4, bigdata, 3082
)",
                                       kPagerIters);
  std::map<std::string, AccessControlList> acls;
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  std::string error;
  if (!machine->LoadProgramSource(source, acls, &error)) {
    std::fprintf(stderr, "bench_fleet pager setup failed: %s\n", error.c_str());
    std::abort();
  }
  Process* p = machine->Login("bench");
  machine->supervisor().InitiateAll(p);
  machine->Start(p, "pager", "pstart", kUserRing);
  return machine;
}

// ---------------------------------------------------------------------------

constexpr int kFleetMachines = 12;  // four of each workload

void AddMixedFleet(Fleet* fleet) {
  const struct {
    const char* name;
    std::unique_ptr<Machine> (*make)();
  } kKinds[] = {
      {"call", MakeCallLoopMachine}, {"search", MakeSearchMachine}, {"pager", MakePagerMachine}};
  for (int i = 0; i < kFleetMachines; ++i) {
    const auto& kind = kKinds[i % 3];
    fleet->Add(StrFormat("%s-%d", kind.name, i / 3), kind.make);
  }
}

// A thread-count-invariant digest of the whole fleet outcome: the
// per-machine fingerprints folded in machine-index order, truncated to
// 32 bits so it survives the JSON double round trip exactly.
double FoldFingerprints(const Fleet& fleet) {
  FingerprintBuilder builder;
  for (const MachineResult& result : fleet.results()) {
    builder.Mix(result.fingerprint);
  }
  return static_cast<double>(builder.digest() & 0xffffffffull);
}

void BM_FleetMixed(benchmark::State& state) {
  FleetConfig config;
  config.threads = static_cast<int>(state.range(0));
  config.slice_cycles = 100'000;
  WallSampler wall;
  uint64_t total_instructions = 0;
  double insn_per_sec_best = 0;
  FleetStats stats;
  double fold = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fleet fleet(config);
    AddMixedFleet(&fleet);
    state.ResumeTiming();
    wall.Begin();
    stats = fleet.Run();
    wall.End();
    state.PauseTiming();
    if (stats.completed != fleet.size() || fleet.ExitCode() != 0) {
      std::fprintf(stderr, "bench_fleet: fleet did not complete cleanly:\n%s\n",
                   stats.ToString().c_str());
      std::abort();
    }
    total_instructions += stats.total_instructions;
    insn_per_sec_best = std::max(insn_per_sec_best, stats.instructions_per_second);
    const double f = FoldFingerprints(fleet);
    if (fold != 0 && f != fold) {
      std::fprintf(stderr, "bench_fleet: fingerprints changed between iterations\n");
      std::abort();
    }
    fold = f;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_instructions));
  // Thread-count invariant (gated exactly against the baseline).
  state.counters["sim_total_instructions"] = static_cast<double>(stats.total_instructions);
  state.counters["sim_total_cycles"] = static_cast<double>(stats.total_cycles);
  state.counters["sim_machines"] = static_cast<double>(stats.machines);
  state.counters["sim_completed"] = static_cast<double>(stats.completed);
  state.counters["sim_calls_downward"] = static_cast<double>(stats.aggregate.calls_downward);
  state.counters["sim_pages_supplied"] = static_cast<double>(stats.aggregate.pages_supplied);
  state.counters["sim_fingerprint_fold"] = fold;
  // Host-dependent (reported, not gated). The decode counters are the
  // fleet-sharing evidence: 12 machines running 3 distinct programs
  // build 3 images when sharing is on, 12 when it is off.
  state.counters["fleet_insn_per_sec"] = insn_per_sec_best;
  state.counters["wall_min_ns"] = wall.MinNs();
  state.counters["wall_median_ns"] = wall.MedianNs();
  state.counters["chain_follows"] = static_cast<double>(stats.aggregate.chain_follows);
  state.counters["shared_decode_builds"] =
      static_cast<double>(stats.aggregate.shared_decode_builds);
  state.counters["shared_decode_hits"] = static_cast<double>(stats.aggregate.shared_decode_hits);
}

BENCHMARK(BM_FleetMixed)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Human-readable scaling table (and a hard determinism check across
// thread counts — the process aborts on any fingerprint divergence).
void PrintReport() {
  PrintBanner("FL — fleet engine: N machines across host worker threads",
              "Mixed fleet (call loops, protected-directory searches, demand\n"
              "pagers) run to completion; per-machine results are bit-identical\n"
              "at every thread count, so only host throughput varies.");
  std::printf("  threads  wall-s   sim-insn/s   speedup  completed\n");
  double base = 0;
  double fold = 0;
  for (const int threads : {1, 2, 4, 8}) {
    FleetConfig config;
    config.threads = threads;
    config.slice_cycles = 100'000;
    Fleet fleet(config);
    AddMixedFleet(&fleet);
    const FleetStats stats = fleet.Run();
    if (stats.completed != fleet.size()) {
      std::fprintf(stderr, "bench_fleet: fleet did not complete:\n%s\n",
                   stats.ToString().c_str());
      std::abort();
    }
    const double f = FoldFingerprints(fleet);
    if (fold == 0) {
      fold = f;
    } else if (f != fold) {
      std::fprintf(stderr, "bench_fleet: NOT deterministic across thread counts\n");
      std::abort();
    }
    if (base == 0) {
      base = stats.instructions_per_second;
    }
    std::printf("  %7d  %6.3f  %11.0f  %6.2fx  %zu/%zu\n", threads, stats.wall_seconds,
                stats.instructions_per_second,
                base > 0 ? stats.instructions_per_second / base : 0.0, stats.completed,
                stats.machines);
  }
  std::printf("\n  determinism: per-machine fingerprints identical at every thread\n"
              "  count (fold=%08llx); sim_* counters in the benchmark output are\n"
              "  therefore thread-count invariant and CI-gated exactly.\n",
              static_cast<unsigned long long>(fold));
}

// Shared-vs-private decode: the same twelve-machine mixed fleet run with
// one decode image per distinct program (shared) and one per machine
// (private). Builds and decode-table bytes are exact; peak RSS is a
// process-wide monotone high-water mark, so the smaller shared
// configuration runs first and the private figure is a floor.
void PrintDecodeShareReport() {
  // Per-program decode-table bytes, measured once on standalone machines
  // with private images (keeps the process-wide registry untouched).
  g_shared_decode = false;
  size_t per_program_bytes = 0;
  for (const auto make : {MakeCallLoopMachine, MakeSearchMachine, MakePagerMachine}) {
    per_program_bytes += make()->cpu().decode_image_bytes();
  }

  struct ModeRow {
    const char* label;
    bool shared;
    uint64_t builds = 0;
    size_t decode_bytes = 0;
    double peak_rss = 0;
    double fold = 0;
  };
  ModeRow rows[] = {{"shared ", true}, {"private", false}};
  for (ModeRow& row : rows) {
    g_shared_decode = row.shared;
    FleetConfig config;
    config.threads = 4;
    config.slice_cycles = 100'000;
    Fleet fleet(config);
    AddMixedFleet(&fleet);
    const FleetStats stats = fleet.Run();
    if (stats.completed != fleet.size()) {
      std::fprintf(stderr, "bench_fleet: decode-share fleet did not complete:\n%s\n",
                   stats.ToString().c_str());
      std::abort();
    }
    row.builds = stats.aggregate.shared_decode_builds;
    // Exact storage the fleet's decode tables occupied: one image per
    // build (4 machines per program share one image when sharing is on).
    row.decode_bytes = per_program_bytes * (row.shared ? 1 : 4);
    row.peak_rss = PeakRssBytes();
    row.fold = FoldFingerprints(fleet);
  }
  g_shared_decode = true;
  if (rows[0].fold != rows[1].fold) {
    std::fprintf(stderr, "bench_fleet: shared decode changed machine results\n");
    std::abort();
  }

  std::printf("\n  shared decode (12 machines, 3 distinct programs, 4 threads):\n");
  std::printf("  decode     images-built  decode-KiB  peak-RSS-MiB\n");
  for (const ModeRow& row : rows) {
    std::printf("  %s    %12llu  %10.1f  %12.1f\n", row.label,
                static_cast<unsigned long long>(row.builds),
                static_cast<double>(row.decode_bytes) / 1024.0,
                row.peak_rss / (1024.0 * 1024.0));
  }
  std::printf("\n  fingerprint fold identical in both modes (%08llx): the image is\n"
              "  host-only — sharing the decode changes no simulated outcome.\n",
              static_cast<unsigned long long>(rows[0].fold));
}

// Golden-image frame sharing: N machines cloned copy-on-write from one
// sealed pager golden. At spawn every written frame is shared with the
// golden (a clone owns no pages of its own); the run privatizes exactly
// the frames each clone stores to. Mirrors the decode-share report: the
// sharing is host-only bookkeeping — every clone runs to the same
// fingerprint a cold-booted machine does, and peak RSS is the monotone
// high-water mark, so sizes run smallest first.
void PrintFrameShareReport() {
  auto cold = MakePagerMachine();
  cold->Run(2'000'000'000);
  const uint64_t reference = FingerprintMachine(*cold);
  cold.reset();

  const auto golden = MakePagerMachine();
  golden->memory().SealForCloning();

  std::printf("\n  golden-image frame sharing (clones of one sealed pager golden,\n"
              "  %zu-KiB frames; fleet-wide page bytes at spawn and after the run):\n",
              PhysicalMemory::kFrameBytes / 1024);
  std::printf("  machines  spawn-shared-KiB  spawn-priv-KiB  run-shared-KiB  run-priv-KiB"
              "  peak-RSS-MiB\n");
  for (const int n : {4, 12, 24}) {
    std::vector<std::unique_ptr<Machine>> clones;
    for (int i = 0; i < n; ++i) {
      clones.push_back(Machine::CloneFrom(*golden));
      if (clones.back() == nullptr) {
        std::fprintf(stderr, "bench_fleet: golden clone failed\n");
        std::abort();
      }
    }
    const auto totals = [&clones] {
      double shared = 0, priv = 0;
      for (const auto& clone : clones) {
        const PhysicalMemory::FrameStats s = clone->memory().frame_stats();
        shared += static_cast<double>(s.shared_bytes());
        priv += static_cast<double>(s.private_bytes());
      }
      return std::make_pair(shared, priv);
    };
    const auto [spawn_shared, spawn_priv] = totals();
    for (const auto& clone : clones) {
      clone->Run(2'000'000'000);
      if (FingerprintMachine(*clone) != reference) {
        std::fprintf(stderr, "bench_fleet: clone diverged from cold boot\n");
        std::abort();
      }
    }
    const auto [run_shared, run_priv] = totals();
    std::printf("  %8d  %16.1f  %14.1f  %14.1f  %12.1f  %12.1f\n", n, spawn_shared / 1024.0,
                spawn_priv / 1024.0, run_shared / 1024.0, run_priv / 1024.0,
                PeakRssBytes() / (1024.0 * 1024.0));
  }
  std::printf("\n  every clone's fingerprint equals the cold boot's (%08llx): COW\n"
              "  frame sharing changes no simulated outcome.\n",
              static_cast<unsigned long long>(reference & 0xffffffffull));
}

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  rings::PrintReport();
  rings::PrintDecodeShareReport();
  rings::PrintFrameShareReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

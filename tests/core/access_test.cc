// The pure validation predicates of Figures 4, 5 (indirect read), 6, and
// 7 — exercised exhaustively over all bracket/ring combinations with
// parameterized sweeps.
#include "src/core/access.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(CheckRead, RequiresFlagAndBracket) {
  const SegmentAccess access = MakeDataSegment(2, 5);
  EXPECT_TRUE(CheckRead(access, 0).ok());
  EXPECT_TRUE(CheckRead(access, 5).ok());
  EXPECT_EQ(CheckRead(access, 6).cause, TrapCause::kReadViolation);

  SegmentAccess no_read = access;
  no_read.flags.read = false;
  EXPECT_EQ(CheckRead(no_read, 0).cause, TrapCause::kReadViolation);
}

TEST(CheckWrite, RequiresFlagAndBracket) {
  const SegmentAccess access = MakeDataSegment(2, 5);
  EXPECT_TRUE(CheckWrite(access, 0).ok());
  EXPECT_TRUE(CheckWrite(access, 2).ok());
  EXPECT_EQ(CheckWrite(access, 3).cause, TrapCause::kWriteViolation);

  SegmentAccess no_write = access;
  no_write.flags.write = false;
  EXPECT_EQ(CheckWrite(no_write, 0).cause, TrapCause::kWriteViolation);
}

TEST(CheckExecute, RequiresFlagAndBracketBothEnds) {
  const SegmentAccess access = MakeProcedureSegment(2, 4);
  EXPECT_EQ(CheckExecute(access, 1).cause, TrapCause::kExecuteViolation);  // below floor
  EXPECT_TRUE(CheckExecute(access, 2).ok());
  EXPECT_TRUE(CheckExecute(access, 4).ok());
  EXPECT_EQ(CheckExecute(access, 5).cause, TrapCause::kExecuteViolation);  // above top

  SegmentAccess no_exec = access;
  no_exec.flags.execute = false;
  EXPECT_EQ(CheckExecute(no_exec, 3).cause, TrapCause::kExecuteViolation);
}

TEST(CheckIndirectRead, MatchesRead) {
  const SegmentAccess access = MakeDataSegment(1, 3);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(CheckIndirectRead(access, r).ok(), CheckRead(access, r).ok()) << unsigned(r);
  }
}

TEST(CheckTransfer, RejectsRaisedEffectiveRing) {
  const SegmentAccess access = MakeProcedureSegment(0, 7);
  // Effective ring above the ring of execution: a plain transfer cannot
  // act on a pointer influenced by a higher ring (Figure 7).
  EXPECT_EQ(CheckTransfer(access, 4, 5).cause, TrapCause::kTransferRingViolation);
  // Equal rings pass through to the execute check.
  EXPECT_TRUE(CheckTransfer(access, 4, 4).ok());
}

TEST(CheckTransfer, AppliesExecuteBracket) {
  const SegmentAccess access = MakeProcedureSegment(2, 4);
  EXPECT_EQ(CheckTransfer(access, 1, 1).cause, TrapCause::kExecuteViolation);
  EXPECT_TRUE(CheckTransfer(access, 3, 3).ok());
  EXPECT_EQ(CheckTransfer(access, 5, 5).cause, TrapCause::kExecuteViolation);
}

TEST(AnyAccess, CoversGateExtension) {
  // A gated supervisor entry segment: no read/write/execute for ring 4,
  // but callable through its gates.
  const SegmentAccess access = MakeProcedureSegment(0, 0, 5, /*gate_count=*/3);
  SegmentAccess unreadable = access;
  unreadable.flags.read = false;
  EXPECT_FALSE(CheckRead(unreadable, 4).ok());
  EXPECT_FALSE(CheckExecute(unreadable, 4).ok());
  EXPECT_TRUE(AnyAccess(unreadable, 4));   // gate extension
  EXPECT_FALSE(AnyAccess(unreadable, 6));  // beyond R3
}

// ---------------------------------------------------------------------------
// Parameterized exhaustive sweeps over every (r1, r2, r3, ring).
// ---------------------------------------------------------------------------

struct SweepCase {
  unsigned r1, r2, r3;
};

class BracketSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BracketSweep, ReadWriteMonotoneDownward) {
  const auto [r1, r2, r3] = GetParam();
  SegmentAccess access;
  access.flags = {.read = true, .write = true, .execute = true};
  access.brackets = *Brackets::Make(r1, r2, r3);
  for (Ring ring = 1; ring < kRingCount; ++ring) {
    // Monotonicity: permission at ring implies permission at ring-1.
    if (CheckRead(access, ring).ok()) {
      EXPECT_TRUE(CheckRead(access, ring - 1).ok());
    }
    if (CheckWrite(access, ring).ok()) {
      EXPECT_TRUE(CheckWrite(access, ring - 1).ok());
    }
  }
}

TEST_P(BracketSweep, DecisionsMatchBracketDefinition) {
  const auto [r1, r2, r3] = GetParam();
  SegmentAccess access;
  access.flags = {.read = true, .write = true, .execute = true};
  access.brackets = *Brackets::Make(r1, r2, r3);
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    EXPECT_EQ(CheckRead(access, ring).ok(), ring <= r2);
    EXPECT_EQ(CheckWrite(access, ring).ok(), ring <= r1);
    EXPECT_EQ(CheckExecute(access, ring).ok(), ring >= r1 && ring <= r2);
  }
}

TEST_P(BracketSweep, WriteImpliesReadWhenBothFlagsOn) {
  // Because R1 <= R2, anything writable is also readable (with both flags
  // on): writable-but-unreadable segments cannot be expressed.
  const auto [r1, r2, r3] = GetParam();
  SegmentAccess access;
  access.flags = {.read = true, .write = true, .execute = false};
  access.brackets = *Brackets::Make(r1, r2, r3);
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    if (CheckWrite(access, ring).ok()) {
      EXPECT_TRUE(CheckRead(access, ring).ok());
    }
  }
}

std::vector<SweepCase> AllBrackets() {
  std::vector<SweepCase> cases;
  for (unsigned r1 = 0; r1 < kRingCount; ++r1) {
    for (unsigned r2 = r1; r2 < kRingCount; ++r2) {
      for (unsigned r3 = r2; r3 < kRingCount; ++r3) {
        cases.push_back({r1, r2, r3});
      }
    }
  }
  return cases;  // C(8+2,3) = 120 well-formed bracket triples
}

INSTANTIATE_TEST_SUITE_P(AllWellFormedBrackets, BracketSweep, ::testing::ValuesIn(AllBrackets()),
                         [](const ::testing::TestParamInfo<SweepCase>& param_info) {
                           return "r" + std::to_string(param_info.param.r1) + "_" +
                                  std::to_string(param_info.param.r2) + "_" +
                                  std::to_string(param_info.param.r3);
                         });

// Flags-off sweep: with a flag off the capability exists in no ring,
// regardless of brackets.
TEST(FlagsOff, DenyEverywhere) {
  for (const auto& c : AllBrackets()) {
    SegmentAccess access;
    access.flags = {.read = false, .write = false, .execute = false};
    access.brackets = *Brackets::Make(c.r1, c.r2, c.r3);
    for (Ring ring = 0; ring < kRingCount; ++ring) {
      EXPECT_FALSE(CheckRead(access, ring).ok());
      EXPECT_FALSE(CheckWrite(access, ring).ok());
      EXPECT_FALSE(CheckExecute(access, ring).ok());
    }
  }
}

}  // namespace
}  // namespace rings

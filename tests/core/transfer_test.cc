// Exhaustive tests of the CALL (Figure 8) and RETURN (Figure 9) ring
// resolution rules.
#include "src/core/transfer.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

SegmentAccess Gated(unsigned r1, unsigned r2, unsigned r3, uint32_t gates) {
  return MakeProcedureSegment(static_cast<Ring>(r1), static_cast<Ring>(r2),
                              static_cast<Ring>(r3), gates);
}

// --- CALL -----------------------------------------------------------------

TEST(ResolveCall, RaisedEffectiveRingIsViolation) {
  // "What would appear to be a call within the same ring ... can in fact
  // be an upward call with respect to IPR.RING ... generate an access
  // violation when it occurs, even if the current ring of execution is
  // within the execute bracket."
  const SegmentAccess target = Gated(0, 7, 7, 4);
  const auto outcome = ResolveCall(target, /*ring=*/3, /*effective=*/5, 0, false);
  EXPECT_EQ(outcome.cause, TrapCause::kCallRingViolation);
}

TEST(ResolveCall, ExecuteFlagOff) {
  SegmentAccess target = Gated(0, 4, 5, 4);
  target.flags.execute = false;
  EXPECT_EQ(ResolveCall(target, 4, 4, 0, false).cause, TrapCause::kExecuteViolation);
}

TEST(ResolveCall, GateCheckAppliesEvenSameRing) {
  // "A CALL must be directed at a gate location even when the called
  // procedure will execute in the same ring as the calling procedure."
  const SegmentAccess target = Gated(4, 4, 4, /*gates=*/2);
  EXPECT_TRUE(ResolveCall(target, 4, 4, 0, false).ok());
  EXPECT_TRUE(ResolveCall(target, 4, 4, 1, false).ok());
  EXPECT_EQ(ResolveCall(target, 4, 4, 2, false).cause, TrapCause::kGateViolation);
  EXPECT_EQ(ResolveCall(target, 4, 4, 100, false).cause, TrapCause::kGateViolation);
}

TEST(ResolveCall, SameSegmentBypassesGateList) {
  // "The only exception ... occurs if the operand is in the same segment
  // as the instruction" — internal procedure calls.
  const SegmentAccess target = Gated(4, 4, 4, /*gates=*/1);
  EXPECT_TRUE(ResolveCall(target, 4, 4, 500, /*same_segment=*/true).ok());
}

TEST(ResolveCall, DownwardThroughGateExtensionEntersR2) {
  // Ring 4 caller, target executes in rings [0,1], gate extension to 5.
  const SegmentAccess target = Gated(0, 1, 5, 4);
  const auto outcome = ResolveCall(target, 4, 4, 2, false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.new_ring, 1);  // top of the execute bracket
  EXPECT_TRUE(outcome.ring_changed);
}

TEST(ResolveCall, WithinExecuteBracketKeepsRing) {
  const SegmentAccess target = Gated(2, 5, 6, 4);
  for (Ring ring = 2; ring <= 5; ++ring) {
    const auto outcome = ResolveCall(target, ring, ring, 0, false);
    ASSERT_TRUE(outcome.ok()) << unsigned(ring);
    EXPECT_EQ(outcome.new_ring, ring);
    EXPECT_FALSE(outcome.ring_changed);
  }
}

TEST(ResolveCall, AboveGateExtensionIsViolation) {
  // "Procedures executing in rings 6 and 7 are not given access to
  // supervisor gates" — modelled by R3 = 5.
  const SegmentAccess target = Gated(0, 1, 5, 4);
  EXPECT_EQ(ResolveCall(target, 6, 6, 0, false).cause, TrapCause::kExecuteViolation);
  EXPECT_EQ(ResolveCall(target, 7, 7, 0, false).cause, TrapCause::kExecuteViolation);
}

TEST(ResolveCall, UpwardCallTrapsForSoftware) {
  const SegmentAccess target = Gated(5, 6, 7, 4);
  EXPECT_EQ(ResolveCall(target, 4, 4, 0, false).cause, TrapCause::kUpwardCall);
  EXPECT_EQ(ResolveCall(target, 0, 0, 0, false).cause, TrapCause::kUpwardCall);
}

TEST(ResolveCall, GateCheckPrecedesRingResolution) {
  // A non-gate target in the gate extension is a gate violation, not a
  // ring change.
  const SegmentAccess target = Gated(0, 1, 5, /*gates=*/1);
  EXPECT_EQ(ResolveCall(target, 4, 4, 3, false).cause, TrapCause::kGateViolation);
}

// Exhaustive CALL sweep: for every bracket triple and every caller ring,
// the outcome matches the four-case rule of Figure 8.
TEST(ResolveCall, ExhaustiveRingResolution) {
  for (unsigned r1 = 0; r1 < kRingCount; ++r1) {
    for (unsigned r2 = r1; r2 < kRingCount; ++r2) {
      for (unsigned r3 = r2; r3 < kRingCount; ++r3) {
        const SegmentAccess target = Gated(r1, r2, r3, /*gates=*/8);
        for (Ring ring = 0; ring < kRingCount; ++ring) {
          const auto outcome = ResolveCall(target, ring, ring, 0, false);
          if (ring < r1) {
            EXPECT_EQ(outcome.cause, TrapCause::kUpwardCall);
          } else if (ring <= r2) {
            ASSERT_TRUE(outcome.ok());
            EXPECT_EQ(outcome.new_ring, ring);
            EXPECT_FALSE(outcome.ring_changed);
          } else if (ring <= r3) {
            ASSERT_TRUE(outcome.ok());
            EXPECT_EQ(outcome.new_ring, r2);
            EXPECT_TRUE(outcome.ring_changed);
          } else {
            EXPECT_EQ(outcome.cause, TrapCause::kExecuteViolation);
          }
        }
      }
    }
  }
}

// A successful CALL can never *raise* the ring of execution: privilege is
// only gained, never lost, through CALL.
TEST(ResolveCall, NeverEntersHigherRing) {
  for (unsigned r1 = 0; r1 < kRingCount; ++r1) {
    for (unsigned r2 = r1; r2 < kRingCount; ++r2) {
      for (unsigned r3 = r2; r3 < kRingCount; ++r3) {
        const SegmentAccess target = Gated(r1, r2, r3, 8);
        for (Ring ring = 0; ring < kRingCount; ++ring) {
          const auto outcome = ResolveCall(target, ring, ring, 0, false);
          if (outcome.ok()) {
            EXPECT_LE(outcome.new_ring, ring);
          }
        }
      }
    }
  }
}

// --- RETURN ---------------------------------------------------------------

TEST(ResolveReturn, SameRingReturn) {
  const SegmentAccess target = Gated(4, 4, 4, 0);
  const auto outcome = ResolveReturn(target, 4, 4);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.new_ring, 4);
  EXPECT_FALSE(outcome.ring_changed);
}

TEST(ResolveReturn, UpwardReturnEntersEffectiveRing) {
  // Ring-1 callee returning to its ring-4 caller: the effective ring (from
  // the caller-provided pointer) is 4 and the target executes in ring 4.
  const SegmentAccess target = Gated(4, 4, 4, 0);
  const auto outcome = ResolveReturn(target, 1, 4);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.new_ring, 4);
  EXPECT_TRUE(outcome.ring_changed);
}

TEST(ResolveReturn, ExecuteFlagOff) {
  SegmentAccess target = Gated(4, 4, 4, 0);
  target.flags.execute = false;
  EXPECT_EQ(ResolveReturn(target, 4, 4).cause, TrapCause::kExecuteViolation);
}

TEST(ResolveReturn, DownwardReturnTrapsForSoftware) {
  // A ring-5 callee (after an upward call) returning to its ring-4
  // caller: the effective ring is 5 but the target only executes in
  // ring 4 — the hardware traps and software consults the return-gate
  // stack.
  const SegmentAccess target = Gated(4, 4, 4, 0);
  EXPECT_EQ(ResolveReturn(target, 5, 5).cause, TrapCause::kDownwardReturn);
}

TEST(ResolveReturn, EffectiveRingBelowBracketFloor) {
  const SegmentAccess target = Gated(4, 5, 5, 0);
  EXPECT_EQ(ResolveReturn(target, 2, 2).cause, TrapCause::kExecuteViolation);
}

TEST(ResolveReturn, ExhaustiveAgainstExecuteBracket) {
  for (unsigned r1 = 0; r1 < kRingCount; ++r1) {
    for (unsigned r2 = r1; r2 < kRingCount; ++r2) {
      const SegmentAccess target = Gated(r1, r2, r2, 0);
      for (Ring exec_ring = 0; exec_ring < kRingCount; ++exec_ring) {
        // The effective ring can never lie below the ring of execution.
        for (Ring eff = exec_ring; eff < kRingCount; ++eff) {
          const auto outcome = ResolveReturn(target, exec_ring, eff);
          if (eff > r2) {
            EXPECT_EQ(outcome.cause, TrapCause::kDownwardReturn);
          } else if (eff < r1) {
            EXPECT_EQ(outcome.cause, TrapCause::kExecuteViolation);
          } else {
            ASSERT_TRUE(outcome.ok());
            EXPECT_EQ(outcome.new_ring, eff);
          }
        }
      }
    }
  }
}

// --- stack selection rule (Figure 8 footnote) ------------------------------

TEST(SelectStackSegment, SameRingKeepsCurrentStack) {
  EXPECT_EQ(SelectStackSegment(/*ring_changed=*/false, /*current=*/42, /*base=*/0, 3), 42u);
}

TEST(SelectStackSegment, RingChangeUsesDbrBasePlusRing) {
  EXPECT_EQ(SelectStackSegment(true, 42, 0, 3), 3u);
  EXPECT_EQ(SelectStackSegment(true, 42, 100, 3), 103u);
}

}  // namespace
}  // namespace rings

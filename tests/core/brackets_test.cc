// Bracket semantics (Figure 3) and the example access indicators of
// Figures 1 and 2.
#include "src/core/brackets.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(Brackets, MakeValidatesOrdering) {
  EXPECT_TRUE(Brackets::Make(1, 4, 6).has_value());
  EXPECT_TRUE(Brackets::Make(0, 0, 0).has_value());
  EXPECT_TRUE(Brackets::Make(7, 7, 7).has_value());
  EXPECT_FALSE(Brackets::Make(4, 1, 6).has_value());  // r1 > r2
  EXPECT_FALSE(Brackets::Make(1, 6, 4).has_value());  // r2 > r3
  EXPECT_FALSE(Brackets::Make(1, 4, 8).has_value());  // out of range
  EXPECT_FALSE(Brackets::Make(9, 9, 9).has_value());
}

TEST(Brackets, WriteBracketIsZeroToR1) {
  const Brackets b = *Brackets::Make(3, 5, 6);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(b.InWriteBracket(r), r <= 3) << unsigned(r);
  }
}

TEST(Brackets, ReadBracketIsZeroToR2) {
  const Brackets b = *Brackets::Make(3, 5, 6);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(b.InReadBracket(r), r <= 5) << unsigned(r);
  }
}

TEST(Brackets, ExecuteBracketIsR1ToR2) {
  const Brackets b = *Brackets::Make(3, 5, 6);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(b.InExecuteBracket(r), r >= 3 && r <= 5) << unsigned(r);
  }
}

TEST(Brackets, GateExtensionIsAboveR2UpToR3) {
  const Brackets b = *Brackets::Make(3, 5, 6);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(b.InGateExtension(r), r == 6) << unsigned(r);
  }
}

TEST(Brackets, DegenerateSingleRing) {
  const Brackets b = *Brackets::Make(4, 4, 4);
  EXPECT_TRUE(b.InExecuteBracket(4));
  EXPECT_FALSE(b.InExecuteBracket(3));
  EXPECT_FALSE(b.InExecuteBracket(5));
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_FALSE(b.InGateExtension(r));
  }
}

// Figure 1: "Example access indicators for a writable data segment" — a
// data segment writable in rings 0..4 and readable in rings 0..5.
TEST(Figure1, WritableDataSegment) {
  const SegmentAccess access = MakeDataSegment(/*write_top=*/4, /*read_top=*/5);
  EXPECT_TRUE(access.flags.read);
  EXPECT_TRUE(access.flags.write);
  EXPECT_FALSE(access.flags.execute);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(access.brackets.InWriteBracket(r), r <= 4);
    EXPECT_EQ(access.brackets.InReadBracket(r), r <= 5);
  }
  EXPECT_TRUE(access.brackets.IsWellFormed());
}

// Figure 2: "Example access indicators for a pure procedure segment which
// contains gates" — executable in rings 2..4, callable through gates from
// rings 5..6, two gate words.
TEST(Figure2, GatedPureProcedure) {
  const SegmentAccess access = MakeProcedureSegment(2, 4, 6, /*gate_count=*/2);
  EXPECT_TRUE(access.flags.read);
  EXPECT_FALSE(access.flags.write);  // pure procedure
  EXPECT_TRUE(access.flags.execute);
  EXPECT_EQ(access.gate_count, 2u);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(access.brackets.InExecuteBracket(r), r >= 2 && r <= 4) << unsigned(r);
    EXPECT_EQ(access.brackets.InGateExtension(r), r == 5 || r == 6) << unsigned(r);
  }
  // "The double use of this field ... eliminates an unwanted degree of
  // freedom": the write bracket top and execute bracket bottom coincide,
  // so a segment can never be both writable and executable in more than
  // one ring.
  EXPECT_EQ(access.brackets.r1, 2);
}

TEST(Factories, StackSegmentBracketsEndAtRing) {
  for (Ring n = 0; n < kRingCount; ++n) {
    const SegmentAccess access = MakeStackSegment(n);
    for (Ring m = 0; m < kRingCount; ++m) {
      // "Stack areas for these procedures are not accessible to procedures
      // executing in any ring m > n."
      EXPECT_EQ(access.brackets.InReadBracket(m), m <= n);
      EXPECT_EQ(access.brackets.InWriteBracket(m), m <= n);
    }
    EXPECT_FALSE(access.flags.execute);
  }
}

TEST(Factories, ReadOnlySegmentNotWritableAnywhere) {
  const SegmentAccess access = MakeReadOnlyDataSegment(6);
  EXPECT_FALSE(access.flags.write);
  EXPECT_TRUE(access.brackets.InReadBracket(6));
  EXPECT_FALSE(access.brackets.InReadBracket(7));
}

TEST(Factories, LibraryProcedureWideExecuteBracket) {
  // "Procedure segments with wider execute brackets normally will contain
  // commonly used library subroutines."
  const SegmentAccess lib = MakeProcedureSegment(1, 5);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_EQ(lib.brackets.InExecuteBracket(r), r >= 1 && r <= 5);
  }
  EXPECT_EQ(lib.gate_count, 0u);
}

TEST(ToString, Formats) {
  const SegmentAccess access = MakeProcedureSegment(2, 4, 6, 2);
  EXPECT_EQ(access.brackets.ToString(), "(2,4,6)");
  EXPECT_EQ(access.flags.ToString(), "r-e");
  EXPECT_EQ(MakeDataSegment(1, 2).flags.ToString(), "rw-");
}

// The nested-subset property: for any well-formed brackets, the set of
// access capabilities available at ring m is a subset of those at ring n
// whenever m > n (for read and write; execute deliberately excepted by the
// bracket floor).
TEST(Property, NestedSubsetForReadWrite) {
  for (unsigned r1 = 0; r1 < kRingCount; ++r1) {
    for (unsigned r2 = r1; r2 < kRingCount; ++r2) {
      const Brackets b = *Brackets::Make(r1, r2, r2);
      for (Ring hi = 1; hi < kRingCount; ++hi) {
        const Ring lo = hi - 1;
        // Anything permitted at the higher ring is permitted at the lower.
        if (b.InReadBracket(hi)) {
          EXPECT_TRUE(b.InReadBracket(lo));
        }
        if (b.InWriteBracket(hi)) {
          EXPECT_TRUE(b.InWriteBracket(lo));
        }
      }
    }
  }
}

}  // namespace
}  // namespace rings

// Shared test fixtures: a bare-metal harness (memory + CPU + one
// descriptor segment, no supervisor) for exercising single instructions
// against hand-built SDWs, plus helpers for whole-machine tests.
#ifndef TESTS_TESTUTIL_H_
#define TESTS_TESTUTIL_H_

#include <optional>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/physical_memory.h"

namespace rings {

// A bare machine: physical memory, a CPU, and one descriptor segment the
// test populates directly. Segment numbers are handed out sequentially
// from 0.
class BareMachine {
 public:
  explicit BareMachine(Segno slots = 64, Segno stack_base = 0)
      : memory_(1 << 20) {
    dseg_.emplace(*DescriptorSegment::Create(&memory_, slots, stack_base));
    cpu_.emplace(&memory_);
    cpu_->SetDbr(dseg_->dbr());
  }

  Cpu& cpu() { return *cpu_; }
  PhysicalMemory& memory() { return memory_; }
  DescriptorSegment& dseg() { return *dseg_; }

  // Creates a segment with the given contents and access; returns its
  // segment number. `extra` zero words pad the bound.
  Segno AddSegment(const std::vector<Word>& words, const SegmentAccess& access,
                   uint64_t extra = 0) {
    const uint64_t bound = words.size() + extra;
    const AbsAddr base = *memory_.Allocate(bound == 0 ? 1 : bound);
    for (size_t i = 0; i < words.size(); ++i) {
      memory_.Write(base + i, words[i]);
    }
    Sdw sdw;
    sdw.present = true;
    sdw.base = base;
    sdw.bound = bound;
    sdw.access = access;
    dseg_->Store(next_segno_, sdw);
    cpu_->InvalidateSdw(next_segno_);
    return next_segno_++;
  }

  // Creates a code segment from instructions.
  Segno AddCode(const std::vector<Instruction>& code, const SegmentAccess& access) {
    std::vector<Word> words;
    words.reserve(code.size());
    for (const Instruction& ins : code) {
      words.push_back(EncodeInstruction(ins));
    }
    return AddSegment(words, access);
  }

  // Rewrites one word of a segment (behind the processor's back, so any
  // cached decode of that word must go).
  void Poke(Segno segno, Wordno wordno, Word value) {
    const Sdw sdw = *dseg_->Fetch(segno);
    memory_.Write(sdw.base + wordno, value);
    cpu_->FlushInsnCache();
  }

  Word Peek(Segno segno, Wordno wordno) {
    const Sdw sdw = *dseg_->Fetch(segno);
    return memory_.Read(sdw.base + wordno);
  }

  void SetIpr(Ring ring, Segno segno, Wordno wordno) {
    cpu_->regs().ipr = Ipr{ring, segno, wordno};
    // Keep the PR-ring invariant (PRn.RING >= IPR.RING) that real
    // hardware maintains: fresh PRs start at the ring of execution.
    for (PointerRegister& pr : cpu_->regs().pr) {
      pr.ring = MaxRing(pr.ring, ring);
    }
  }

  void SetPr(uint8_t n, Ring ring, Segno segno, Wordno wordno) {
    cpu_->regs().pr[n] = PointerRegister{ring, segno, wordno};
  }

  // Executes one instruction; returns the trap cause (kNone on success).
  TrapCause StepTrap() {
    cpu_->Step();
    return cpu_->trap_pending() ? cpu_->trap_state().cause : TrapCause::kNone;
  }

  // Steps up to `max` instructions, stopping at the first trap; returns
  // the cause (kNone if no trap occurred within the budget).
  TrapCause RunUntilTrap(int max = 1000) {
    for (int i = 0; i < max; ++i) {
      if (!cpu_->Step()) {
        return cpu_->trap_state().cause;
      }
    }
    return TrapCause::kNone;
  }

 private:
  PhysicalMemory memory_;
  std::optional<DescriptorSegment> dseg_;
  std::optional<Cpu> cpu_;
  Segno next_segno_ = 0;
};

// Common access shapes used across CPU tests.
inline SegmentAccess UserCode() { return MakeProcedureSegment(4, 4); }
inline SegmentAccess UserData() { return MakeDataSegment(4, 4); }

}  // namespace rings

#endif  // TESTS_TESTUTIL_H_

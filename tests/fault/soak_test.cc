// Long-running fault soak: a multi-process workload (CPU spinner, demand-
// paging pounder, I/O chatterbox) runs for thousands of scheduling quanta
// while the injector corrupts descriptors, drops cache entries, flips
// indirect-word rings, raises spurious page faults, and delays I/O. The
// protection auditor runs after every quantum; the machine must absorb or
// attribute every injected fault — zero kError findings, zero host
// aborts, every killed process carrying a cause.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cpu/verdict_cache.h"
#include "src/fault/fault_injector.h"
#include "src/fleet/fingerprint.h"
#include "src/mem/page_table.h"
#include "src/snapshot/snapshot.h"
#include "src/sup/audit.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// Three long-lived workloads. None exits on its own; the soak ends when
// the quantum target is reached. Offsets 10/1034/2058/3082 in bigdata put
// one reference in each of its four (demand-zero) pages.
constexpr char kWorkloadSource[] = R"(
        .segment spin
sstart: ldai  0
sloop:  adai  1
        sta   slot,*
        lda   slot,*
        tra   sloop
slot:   .its  4, counters, 0

        .segment counters
        .block 8

        .segment pager
pstart: ldai  1
ploop:  adai  1
        sta   p0,*
        lda   p1,*
        sta   p1,*
        lda   p2,*
        sta   p2,*
        lda   p3,*
        sta   p3,*
        lda   p0,*
        tra   ploop
p0:     .its  4, bigdata, 10
p1:     .its  4, bigdata, 1034
p2:     .its  4, bigdata, 2058
p3:     .its  4, bigdata, 3082

        .segment chatty
cstart: epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0
        tra   cstart
arglist: .word 1
        .its  4, chatty, buf
        .word 1
buf:    .word 88
gateptr: .its 4, sup_gates, 1
)";

std::map<std::string, AccessControlList> WorkloadAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["spin"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counters"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["chatty"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  return acls;
}

// Logs in one process per workload; returns how many started.
int SpawnFleet(Machine& machine, int generation) {
  struct Entry {
    const char* segment;
    const char* entry;
  };
  static constexpr Entry kFleet[] = {
      {"spin", "sstart"}, {"pager", "pstart"}, {"chatty", "cstart"}};
  int started = 0;
  for (const Entry& e : kFleet) {
    Process* p =
        machine.Login(std::string(e.segment) + "-" + std::to_string(generation));
    if (p == nullptr) {
      continue;
    }
    machine.supervisor().InitiateAll(p);
    if (machine.Start(p, e.segment, e.entry, kUserRing)) {
      ++started;
    }
  }
  return started;
}

void RunSoak(uint64_t seed) {
  constexpr uint64_t kTargetQuanta = 5000;

  MachineConfig config;
  config.memory_words = size_t{1} << 24;
  config.quantum = 200;  // frequent dispatches, frequent audits
  config.audit_every_quantum = true;
  config.fault.seed = seed;
  config.fault.set_rate(FaultSite::kSdwCorruption, 2'000);
  config.fault.set_rate(FaultSite::kSdwCacheDrop, 1'000);
  config.fault.set_rate(FaultSite::kIndirectRingCorruption, 50);
  config.fault.set_rate(FaultSite::kSpuriousMissingPage, 300);
  config.fault.set_rate(FaultSite::kIoDelay, 200'000);
  Machine machine(config);
  ASSERT_TRUE(machine.ok());

  // The pager's target: four demand-zero pages, all initially absent.
  ASSERT_TRUE(machine.registry()
                  .CreatePagedSegment("bigdata", 4 * kPageWords,
                                      AccessControlList::Public(MakeDataSegment(4, 4)),
                                      /*populate=*/false)
                  .has_value());
  ASSERT_TRUE(machine.LoadProgramSource(kWorkloadSource, WorkloadAcls()));

  int generation = 0;
  ASSERT_EQ(SpawnFleet(machine, generation), 3);

  // Run in bounded slices until the quantum target. Unrecoverable faults
  // (e.g. a corrupted indirect-word ring) legitimately kill processes;
  // when the whole fleet is gone, a fresh generation is logged in.
  int rounds = 0;
  while (machine.cpu().counters().TrapCount(TrapCause::kTimerRunout) < kTargetQuanta) {
    ASSERT_LT(rounds++, 1000) << "soak stalled before reaching the quantum target";
    const RunResult result = machine.Run(2'000'000);
    if (!AuditClean(machine.audit_findings())) {
      for (const AuditFinding& f : machine.audit_findings()) {
        ADD_FAILURE() << f.ToString();
      }
      return;
    }
    if (result.idle) {
      ++generation;
      ASSERT_GT(SpawnFleet(machine, generation), 0) << "could not respawn the fleet";
    }
  }

  // The injector actually exercised the machine...
  ASSERT_NE(machine.fault_injector(), nullptr);
  EXPECT_GT(machine.fault_injector()->total_injected(), 0u);
  EXPECT_GT(machine.audit_runs(), 0u);
  EXPECT_GE(machine.cpu().counters().TrapCount(TrapCause::kTimerRunout), kTargetQuanta);

  // ...including the fast path: the hot loops ran on cached verdicts, the
  // injected SDW corruption and cache drops retired them (recovery fills
  // fresh verdicts from re-fetched descriptors), and the whole soak still
  // audits clean with the caches engaged.
  EXPECT_GT(machine.cpu().counters().verdict_hits, 0u);
  EXPECT_GT(machine.cpu().counters().verdict_misses, 0u);
  EXPECT_GT(machine.cpu().counters().verdict_invalidations, 0u);
  EXPECT_GT(machine.cpu().counters().insn_cache_hits, 0u);
  EXPECT_GT(machine.cpu().counters().sdw_recoveries, 0u);

  // The TLB engaged on the pager's paged references (hits), kept taking
  // misses as injected descriptor-cache drops and SDW corruption retired
  // its translations (invalidations), and recovered each time — the soak
  // would not audit clean or reach the quantum target otherwise.
  EXPECT_GT(machine.cpu().counters().tlb_hits, 0u);
  EXPECT_GT(machine.cpu().counters().tlb_misses, 0u);
  EXPECT_GT(machine.cpu().counters().tlb_invalidations, 0u);

  // ...every death is attributed (no process silently disappeared)...
  for (const auto& process : machine.supervisor().processes()) {
    if (process->state == ProcessState::kKilled) {
      EXPECT_NE(process->kill_cause, TrapCause::kNone)
          << "pid " << process->pid << " killed without attribution";
    } else if (process->state == ProcessState::kExited) {
      ADD_FAILURE() << "pid " << process->pid
                    << " exited voluntarily; soak workloads never exit";
    }
  }

  // ...and a final full audit agrees the protection state is intact.
  const auto findings =
      AuditProtectionState(&machine.memory(), machine.registry(), machine.supervisor());
  for (const AuditFinding& f : findings) {
    if (f.severity == AuditSeverity::kError) {
      ADD_FAILURE() << f.ToString();
    }
  }
}

TEST(FaultSoak, SeedA) { ASSERT_NO_FATAL_FAILURE(RunSoak(0xA11CE)); }
TEST(FaultSoak, SeedB) { ASSERT_NO_FATAL_FAILURE(RunSoak(0xB0B)); }
TEST(FaultSoak, SeedC) { ASSERT_NO_FATAL_FAILURE(RunSoak(0xCAFE)); }

// A snapshot taken mid-soak — injector stream live, pages half-filled,
// processes possibly already killed by injected faults — restores into a
// fresh machine whose continued trajectory is fingerprint-identical to
// the uninterrupted run, audits and all.
TEST(FaultSoak, MidSoakSnapshotRestoreIsFingerprintIdentical) {
  MachineConfig config;
  config.memory_words = size_t{1} << 22;
  config.quantum = 200;
  config.audit_every_quantum = true;
  config.fault.seed = 0xA11CE;
  config.fault.set_rate(FaultSite::kSdwCorruption, 2'000);
  config.fault.set_rate(FaultSite::kSdwCacheDrop, 1'000);
  config.fault.set_rate(FaultSite::kIndirectRingCorruption, 50);
  config.fault.set_rate(FaultSite::kSpuriousMissingPage, 300);
  config.fault.set_rate(FaultSite::kIoDelay, 200'000);

  const auto make = [&config]() -> std::unique_ptr<Machine> {
    auto machine = std::make_unique<Machine>(config);
    if (!machine->ok() ||
        !machine->registry()
             .CreatePagedSegment("bigdata", 4 * kPageWords,
                                 AccessControlList::Public(MakeDataSegment(4, 4)),
                                 /*populate=*/false)
             .has_value() ||
        !machine->LoadProgramSource(kWorkloadSource, WorkloadAcls())) {
      return nullptr;
    }
    if (SpawnFleet(*machine, 0) != 3) {
      return nullptr;
    }
    return machine;
  };

  // Both sides run the same sequence of bounded slices; the cut lands
  // between slices kCut-1 and kCut.
  constexpr int kSlices = 6;
  constexpr int kCut = 3;
  constexpr uint64_t kSliceCycles = 500'000;

  const std::unique_ptr<Machine> uninterrupted = make();
  ASSERT_NE(uninterrupted, nullptr);
  for (int i = 0; i < kSlices; ++i) {
    uninterrupted->Run(kSliceCycles);
  }

  const std::unique_ptr<Machine> live = make();
  ASSERT_NE(live, nullptr);
  for (int i = 0; i < kCut; ++i) {
    live->Run(kSliceCycles);
  }
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;
  ASSERT_TRUE(VerifySnapshot(image, &error)) << error;

  Machine restored(config);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(RestoreSnapshot(image, &restored, &error)) << error;
  for (int i = kCut; i < kSlices; ++i) {
    restored.Run(kSliceCycles);
  }

  EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*uninterrupted));
  EXPECT_EQ(restored.cpu().cycles(), uninterrupted->cpu().cycles());
  ASSERT_NE(restored.fault_injector(), nullptr);
  ASSERT_NE(uninterrupted->fault_injector(), nullptr);
  EXPECT_EQ(restored.fault_injector()->sequence(),
            uninterrupted->fault_injector()->sequence());
  EXPECT_TRUE(AuditClean(restored.audit_findings()));
}

// The injector's restriction-only guarantee, pinned against the verdict
// cache: a verdict filled from a corrupted SDW may only DENY accesses the
// clean descriptor would allow, never the reverse. (A corruption that
// widened a verdict would be a silently-granted capability — the failure
// class DESIGN.md rules out of scope for software above the TCB.)
TEST(FaultSoak, CorruptionOnlyRestrictsVerdicts) {
  FaultConfig config;
  config.set_rate(FaultSite::kSdwCorruption, 1'000'000);  // always inject
  FaultInjector injector(config);

  const SegmentAccess shapes[] = {
      MakeDataSegment(2, 4),          MakeDataSegment(4, 4),
      MakeReadOnlyDataSegment(5),     MakeProcedureSegment(0, 4),
      MakeProcedureSegment(2, 3),     MakeProcedureSegment(2, 2, 5, 1),
      MakeStackSegment(4),
  };
  uint64_t corrupted = 0;
  for (int round = 0; round < 64; ++round) {
    for (const SegmentAccess& access : shapes) {
      Sdw clean;
      clean.present = true;
      clean.base = 1000 + round;
      clean.bound = 64;
      clean.access = access;
      Sdw damaged = clean;
      if (!injector.MaybeCorruptSdw(/*cycle=*/round, /*segno=*/9, &damaged)) {
        continue;
      }
      ++corrupted;

      VerdictCache clean_cache;
      VerdictCache damaged_cache;
      for (Ring ring = 0; ring <= kMaxRing; ++ring) {
        clean_cache.Fill(9, ring, 1, clean);
        damaged_cache.Fill(9, ring, 1, damaged);
        const VerdictCache::Entry* c = clean_cache.Lookup(9, ring, 1);
        const VerdictCache::Entry* d = damaged_cache.Lookup(9, ring, 1);
        ASSERT_NE(c, nullptr);
        ASSERT_NE(d, nullptr);
        // Every verdict the damaged descriptor allows, the clean one
        // already allowed.
        EXPECT_TRUE(!d->read_ok || c->read_ok) << "ring " << unsigned(ring);
        EXPECT_TRUE(!d->write_ok || c->write_ok) << "ring " << unsigned(ring);
        EXPECT_TRUE(!d->execute_ok || c->execute_ok) << "ring " << unsigned(ring);
        EXPECT_TRUE(!d->indirect_ok || c->indirect_ok) << "ring " << unsigned(ring);
        // Addressing may only shrink, never grow or move.
        EXPECT_EQ(d->base, c->base);
        EXPECT_LE(d->bound, c->bound);
      }
    }
  }
  EXPECT_GT(corrupted, 0u);
}

}  // namespace
}  // namespace rings

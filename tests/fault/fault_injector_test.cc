// The fault injector's own contract: runs are exactly reproducible from
// (seed, rates), corruption is restriction-only, and the event log stays
// bounded while the counters keep counting.
#include <gtest/gtest.h>

#include "src/core/access.h"
#include "src/fault/fault_injector.h"
#include "src/mem/sdw.h"

namespace rings {
namespace {

Sdw SampleSdw() {
  Sdw sdw;
  sdw.present = true;
  sdw.base = 1000;
  sdw.bound = 100;
  sdw.access = MakeProcedureSegment(2, 4, 6, 3);
  sdw.access.flags.read = true;
  return sdw;
}

TEST(FaultInjector, SameSeedReplaysIdentically) {
  const FaultConfig config = FaultConfig::Uniform(/*seed=*/42, /*ppm=*/200'000);
  FaultInjector a(config);
  FaultInjector b(config);

  // Drive both injectors through the same opportunity sequence.
  for (uint64_t cycle = 0; cycle < 2000; ++cycle) {
    Sdw sa = SampleSdw();
    Sdw sb = SampleSdw();
    a.MaybeCorruptSdw(cycle, 9, &sa);
    b.MaybeCorruptSdw(cycle, 9, &sb);
    EXPECT_EQ(sa, sb);

    size_t ia = 0, ib = 0;
    EXPECT_EQ(a.MaybeDropCacheEntry(cycle, 8, &ia), b.MaybeDropCacheEntry(cycle, 8, &ib));
    EXPECT_EQ(ia, ib);

    IndirectWord wa{2, false, 5, 7};
    IndirectWord wb = wa;
    a.MaybeCorruptIndirectRing(cycle, 5, 7, &wa);
    b.MaybeCorruptIndirectRing(cycle, 5, 7, &wb);
    EXPECT_EQ(wa.ring, wb.ring);

    EXPECT_EQ(a.MaybeSpuriousMissingPage(cycle, 3, 1), b.MaybeSpuriousMissingPage(cycle, 3, 1));
    EXPECT_EQ(a.MaybeIoDelay(cycle), b.MaybeIoDelay(cycle));
  }

  EXPECT_GT(a.total_injected(), 0u);
  EXPECT_EQ(a.total_injected(), b.total_injected());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].sequence, b.events()[i].sequence);
    EXPECT_EQ(a.events()[i].site, b.events()[i].site);
    EXPECT_EQ(a.events()[i].cycle, b.events()[i].cycle);
    EXPECT_EQ(a.events()[i].detail, b.events()[i].detail);
  }
}

TEST(FaultInjector, SdwCorruptionIsRestrictionOnly) {
  // For every corrupted descriptor and every ring: any access the
  // corrupted SDW still grants, the original granted too. A violation here
  // would mean the injector can *create* access — i.e. corrupt the TCB,
  // which the fault model excludes by construction.
  FaultConfig config;
  config.set_rate(FaultSite::kSdwCorruption, 1'000'000);  // every roll fires
  config.seed = 3;
  FaultInjector injector(config);

  for (int trial = 0; trial < 500; ++trial) {
    const Sdw original = SampleSdw();
    Sdw corrupted = original;
    ASSERT_TRUE(injector.MaybeCorruptSdw(trial, 9, &corrupted));
    EXPECT_NE(corrupted, original);

    EXPECT_LE(corrupted.present, original.present);
    EXPECT_LE(corrupted.bound, original.bound);
    for (Ring ring = 0; ring <= kMaxRing; ++ring) {
      if (CheckRead(corrupted.access, ring).ok()) {
        EXPECT_TRUE(CheckRead(original.access, ring).ok()) << "read granted at ring " << +ring;
      }
      if (CheckWrite(corrupted.access, ring).ok()) {
        EXPECT_TRUE(CheckWrite(original.access, ring).ok()) << "write granted at ring " << +ring;
      }
      if (CheckExecute(corrupted.access, ring).ok()) {
        EXPECT_TRUE(CheckExecute(original.access, ring).ok())
            << "execute granted at ring " << +ring;
      }
      if (corrupted.access.brackets.InGateExtension(ring)) {
        EXPECT_TRUE(original.access.brackets.InGateExtension(ring))
            << "gate capability granted at ring " << +ring;
      }
    }
  }
}

TEST(FaultInjector, IndirectRingOnlyRaises) {
  FaultConfig config;
  config.set_rate(FaultSite::kIndirectRingCorruption, 1'000'000);
  config.seed = 5;
  FaultInjector injector(config);

  for (int trial = 0; trial < 200; ++trial) {
    const Ring before = static_cast<Ring>(trial % kMaxRing);  // 0..kMaxRing-1
    IndirectWord iw{before, false, 4, 2};
    ASSERT_TRUE(injector.MaybeCorruptIndirectRing(trial, 4, 2, &iw));
    EXPECT_GT(iw.ring, before);
    EXPECT_LE(iw.ring, kMaxRing);
  }
  // A ring field already at the maximum cannot be raised: never corrupted.
  IndirectWord top{kMaxRing, false, 4, 2};
  EXPECT_FALSE(injector.MaybeCorruptIndirectRing(999, 4, 2, &top));
  EXPECT_EQ(top.ring, kMaxRing);
}

TEST(FaultInjector, DisabledInjectorNeverFires) {
  FaultConfig config;
  config.rate_ppm.fill(1'000'000);
  config.enabled = false;  // master switch wins over the rates
  FaultInjector injector(config);

  Sdw sdw = SampleSdw();
  size_t index = 0;
  IndirectWord iw{1, false, 2, 3};
  for (uint64_t cycle = 0; cycle < 100; ++cycle) {
    EXPECT_FALSE(injector.MaybeCorruptSdw(cycle, 1, &sdw));
    EXPECT_FALSE(injector.MaybeDropCacheEntry(cycle, 8, &index));
    EXPECT_FALSE(injector.MaybeCorruptIndirectRing(cycle, 2, 3, &iw));
    EXPECT_FALSE(injector.MaybeSpuriousMissingPage(cycle, 2, 3));
    EXPECT_EQ(injector.MaybeIoDelay(cycle), 0u);
  }
  EXPECT_EQ(injector.total_injected(), 0u);
  EXPECT_TRUE(injector.events().empty());
}

TEST(FaultInjector, EventLogBoundedButCountsExact) {
  FaultConfig config;
  config.set_rate(FaultSite::kSpuriousMissingPage, 1'000'000);
  config.seed = 8;
  FaultInjector injector(config);

  const uint64_t kInjections = FaultInjector::kMaxLoggedEvents + 500;
  for (uint64_t i = 0; i < kInjections; ++i) {
    ASSERT_TRUE(injector.MaybeSpuriousMissingPage(i, 1, 0));
  }
  EXPECT_EQ(injector.injected(FaultSite::kSpuriousMissingPage), kInjections);
  EXPECT_EQ(injector.events().size(), FaultInjector::kMaxLoggedEvents);
  // Logged sequence numbers are the injection order, gap-free.
  for (size_t i = 0; i < injector.events().size(); ++i) {
    EXPECT_EQ(injector.events()[i].sequence, i);
  }
  EXPECT_NE(injector.Summary().find("spurious_missing_page"), std::string::npos);
}

}  // namespace
}  // namespace rings

// The Honeywell-645-style software-rings baseline: per-ring descriptor
// segments, MME-trap crossings, software gate and argument validation —
// and its allow/deny equivalence with the ring hardware.
#include "src/b645/b645_machine.h"

#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

std::map<std::string, SegmentAccess> BasicSpecs() {
  std::map<std::string, SegmentAccess> specs;
  specs["main"] = MakeProcedureSegment(4, 4);
  return specs;
}

TEST(B645, RunsAndExits) {
  B645Machine machine;
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldai 6
        mpy  seven
        mme  0
seven:  .word 7
)",
                                        BasicSpecs()));
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_TRUE(machine.exited());
  EXPECT_EQ(machine.exit_code(), 42);
}

TEST(B645, PerRingDescriptorSegmentsCompileBrackets) {
  // A segment writable to ring 2, readable to ring 5: the ring-4 process
  // can read but not write; after crossing to ring 2 it can write. The
  // whole bracket behaviour emerges from per-ring descriptor segments
  // holding only flags.
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["data"] = MakeDataSegment(2, 5);
  specs["writer"] = MakeProcedureSegment(2, 2, 5, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   dptr,*         ; read OK in ring 4
        ldq   target
        mme   1              ; cross-ring call to writer$0
        lda   dptr,*         ; observe the write back in ring 4
        mme   0
dptr:   .its  0, data, 0
target: .word 0              ; patched below

        .segment writer
        .gates 1
entry:  ldai  77
        sta   wptr,*         ; write OK in ring 2
        mme   2              ; cross-ring return
wptr:   .its  0, data, 0

        .segment data
        .word 5
)",
                                        specs));
  const Segno writer_segno = machine.registry().Find("writer")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  ASSERT_TRUE(machine.PokeWordForTest("main", 6, PackB645Target(writer_segno, 0)));
  machine.Run();
  EXPECT_TRUE(machine.exited()) << TrapCauseName(machine.kill_cause());
  EXPECT_EQ(machine.exit_code(), 77);
  EXPECT_EQ(machine.PeekWordForTest("data", 0), 77u);
  EXPECT_EQ(machine.crossings(), 1u);
}

TEST(B645, WriteDeniedOutsideCompiledBracket) {
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["data"] = MakeDataSegment(2, 5);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldai 9
        sta  dptr,*
        mme  0
dptr:   .its 0, data, 0
        .segment data
        .word 5
)",
                                        specs));
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  machine.Run();
  EXPECT_FALSE(machine.exited());
  EXPECT_EQ(machine.kill_cause(), TrapCause::kWriteViolation);
}

TEST(B645, ReadDeniedAboveReadBracket) {
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["main"] = MakeProcedureSegment(6, 6);
  specs["data"] = MakeDataSegment(2, 5);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda  dptr,*
        mme  0
dptr:   .its 0, data, 0
        .segment data
        .word 5
)",
                                        specs));
  ASSERT_TRUE(machine.Start("main", "start", /*ring=*/6));
  machine.Run();
  // In ring 6's descriptor segment the data segment carries no access at
  // all, so it is simply absent there: the 645 scheme denies with a
  // missing-segment fault where the ring hardware reports a read
  // violation — same deny, different cause, as the real systems did.
  EXPECT_FALSE(machine.exited());
  EXPECT_EQ(machine.kill_cause(), TrapCause::kMissingSegment);
}

TEST(B645, CrossRingCallAndReturn) {
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["service"] = MakeProcedureSegment(1, 1, 5, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq   tgt
        mme   1              ; cross-ring call
        adai  1
        mme   0
tgt:    .word 0              ; patched: packed (service, 0)

        .segment service
        .gates 1
entry:  ldai  41
        mme   2              ; cross-ring return
)",
                                        specs));
  const Segno svc = machine.registry().Find("service")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  // Patch the packed target into main$tgt (word 4).
  ASSERT_TRUE(machine.PokeWordForTest("main", 4, PackB645Target(svc, 0)));
  machine.Run();
  EXPECT_TRUE(machine.exited());
  EXPECT_EQ(machine.exit_code(), 42);
  EXPECT_EQ(machine.crossings(), 1u);
  EXPECT_GT(machine.gatekeeper_steps(), 0u);
}

TEST(B645, GateValidatedInSoftware) {
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["service"] = MakeProcedureSegment(1, 1, 5, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq  tgt
        mme  1
        mme  0
tgt:    .word 0

        .segment service
        .gates 1
entry:  nop
body:   mme  2
)",
                                        specs));
  const Segno svc = machine.registry().Find("service")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  // Target word 1 is not a gate.
  machine.PokeWordForTest("main", 3, PackB645Target(svc, 1));
  machine.Run();
  EXPECT_FALSE(machine.exited());
  EXPECT_EQ(machine.kill_cause(), TrapCause::kGateViolation);
}

TEST(B645, ReturnWithoutCallRejected) {
  B645Machine machine;
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  mme  2
        mme  0
)",
                                        BasicSpecs()));
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  machine.Run();
  EXPECT_FALSE(machine.exited());
  EXPECT_EQ(machine.kill_cause(), TrapCause::kDownwardReturn);
}

TEST(B645, GetRingReflectsCrossing) {
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["service"] = MakeProcedureSegment(1, 1, 5, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq  tgt
        mme  1
        mme  0               ; exit code = ring seen inside the service
tgt:    .word 0

        .segment service
        .gates 1
entry:  mme  3               ; A <- current ring
        mme  2
)",
                                        specs));
  const Segno svc = machine.registry().Find("service")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  machine.PokeWordForTest("main", 3, PackB645Target(svc, 0));
  machine.Run();
  EXPECT_TRUE(machine.exited());
  EXPECT_EQ(machine.exit_code(), 1);  // the service ring
}

TEST(B645, UpwardCallThroughGatekeeper) {
  // On the 645 all crossings are software; the gatekeeper handles the
  // upward direction the same way (enter the bracket floor), and the
  // subsequent MME return restores the caller's ring.
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["high"] = MakeProcedureSegment(6, 6, 6, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq  tgt
        mme  1               ; upward crossing 4 -> 6
        adai 1
        mme  0
tgt:    .word 0

        .segment high
        .gates 1
entry:  mme  3               ; A <- current ring (6)
        mme  2
)",
                                        specs));
  const Segno high = machine.registry().Find("high")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  machine.PokeWordForTest("main", 4, PackB645Target(high, 0));
  machine.Run();
  EXPECT_TRUE(machine.exited());
  EXPECT_EQ(machine.exit_code(), 7);  // ring 6 + 1
  EXPECT_EQ(machine.current_ring(), kUserRing);
}

TEST(B645, ArgumentValidationRejectsUnreadableArgs) {
  // The gatekeeper validates the argument list against the CALLER's
  // capabilities; pointing an argument at a supervisor-only segment kills
  // the process at crossing time.
  B645Machine machine;
  auto specs = BasicSpecs();
  specs["service"] = MakeProcedureSegment(1, 1, 5, 1);
  specs["secret"] = MakeDataSegment(1, 1);
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  epp  pr1, args
        ldq  tgt
        mme  1
        mme  0
args:   .word 1
        .its 0, secret, 0
        .word 1
tgt:    .word 0

        .segment secret
        .word 99

        .segment service
        .gates 1
entry:  mme  2
)",
                                        specs));
  const Segno svc = machine.registry().Find("service")->segno;
  ASSERT_TRUE(machine.Start("main", "start", kUserRing));
  const auto tgt = machine.registry().Find("main")->symbols.at("tgt");
  machine.PokeWordForTest("main", tgt, PackB645Target(svc, 0));
  machine.Run();
  EXPECT_FALSE(machine.exited());
  EXPECT_EQ(machine.kill_cause(), TrapCause::kReadViolation);
  EXPECT_EQ(machine.crossings(), 1u);  // died inside the gatekeeper
}

// Differential property: the 645 gatekeeper and the ring hardware agree
// on which crossings are legal, because both use core ResolveCall.
TEST(B645Differential, CrossingLegalityMatchesHardware) {
  for (unsigned r1 : {0u, 1u, 4u}) {
    for (unsigned r2 : {1u, 4u, 5u}) {
      for (unsigned r3 : {1u, 5u, 7u}) {
        if (r1 > r2 || r2 > r3) {
          continue;
        }
        for (Ring caller : {Ring{1}, Ring{4}, Ring{6}}) {
          const SegmentAccess spec = MakeProcedureSegment(
              static_cast<Ring>(r1), static_cast<Ring>(r2), static_cast<Ring>(r3), 1);
          const TransferOutcome hw = ResolveCall(spec, caller, caller, 0, false);

          B645Machine machine;
          std::map<std::string, SegmentAccess> specs;
          specs["main"] = MakeProcedureSegment(caller, caller);
          specs["service"] = spec;
          ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq  tgt
        mme  1
        mme  0
tgt:    .word 0

        .segment service
        .gates 1
entry:  mme  2
)",
                                                specs));
          const Segno svc = machine.registry().Find("service")->segno;
          ASSERT_TRUE(machine.Start("main", "start", caller));
          machine.PokeWordForTest("main", 3, PackB645Target(svc, 0));
          machine.Run();

          const bool hw_allows = hw.ok() || hw.cause == TrapCause::kUpwardCall;
          EXPECT_EQ(machine.exited(), hw_allows)
              << "r=(" << r1 << "," << r2 << "," << r3 << ") caller=" << unsigned(caller);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rings

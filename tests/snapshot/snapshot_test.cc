// Snapshot/restore correctness. The headline contract: restoring a
// mid-run image into a fresh machine and running to completion produces
// the exact fingerprint, counters, and trap sequence the live machine
// produces uninterrupted — across the slow path, the fast path, and the
// superblock engine. The robustness contract: truncated, bit-flipped,
// wrong-endian, and wrong-shape images are rejected with structured
// errors and leave the target machine untouched.
#include "src/snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/xorshift.h"
#include "src/fleet/fingerprint.h"
#include "src/mem/page_table.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// --- the three pinned guest workloads --------------------------------------

// Gate-crossing call loop: repeated downward calls through a ring-1 gate.
constexpr char kCallLoopSource[] = R"(
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 300
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

std::unique_ptr<Machine> MakeCallLoopMachine(const MachineConfig& config) {
  auto machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 7, 1));
  if (!machine->LoadProgramSource(kCallLoopSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("caller");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// Demand pager: pounds two pages of an initially absent paged segment,
// so missing-page traps and supervisor page fills cross the snapshot.
constexpr char kPagerSource[] = R"(
        .segment pager
pstart: aos   cnt,*
        lda   far,*
        adai  1
        sta   far,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        mme   0
plim:   .word 400
cnt:    .its  4, bigdata, 10
far:    .its  4, bigdata, 1034
)";

std::unique_ptr<Machine> MakePagerMachine(const MachineConfig& config) {
  auto machine = std::make_unique<Machine>(config);
  if (!machine->registry()
           .CreatePagedSegment("bigdata", 2 * kPageWords,
                               AccessControlList::Public(MakeDataSegment(4, 4)),
                               /*populate=*/false)
           .has_value()) {
    return nullptr;
  }
  std::map<std::string, AccessControlList> acls;
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  if (!machine->LoadProgramSource(kPagerSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("pager");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "pager", "pstart", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// Protected-directory search (the paper's file-search workload): a ring-4
// loop probing a rings<=1 directory through a tiny ring-1 gate service —
// one ring crossing per probe, exiting with the found value.
constexpr char kSearchSource[] = R"(
        .segment rdsvc
        .gates 1
gate:   stq   tq,*
        ldx   x1, tq,*
        epp   pr3, sdirp,*
        lda   pr3|0,x1
        ret   pr7|0
tq:     .its  1, svcdata, 0
sdirp:  .its  1, directory, 0

        .segment svcdata
        .block 1

        .segment main
start:  stz   idx,*
loop:   ldq   idx,*
        epp   pr2, g,*
        call  pr2|0
        sba   key
        tze   found
        aos   idx,*
        aos   idx,*
        lda   idx,*
        sba   dlen
        tmi   loop
        ldai  -1
        mme   0
found:  lda   idx,*
        adai  1
        sta   idx,*
        ldq   idx,*
        epp   pr2, g,*
        call  pr2|0
        mme   0
key:    .word 40
dlen:   .word 80
idx:    .its  4, udata, 0
g:      .its  4, rdsvc, 0

        .segment udata
        .block 1
)";

std::unique_ptr<Machine> MakeSearchMachine(const MachineConfig& config) {
  auto machine = std::make_unique<Machine>(config);
  std::vector<Word> directory;
  for (int i = 1; i <= 40; ++i) {
    directory.push_back(static_cast<Word>(i));
    directory.push_back(static_cast<Word>(1000 + i));
  }
  machine->registry().CreateSegmentWithContents(
      "directory", directory, 0, 0, AccessControlList::Public(MakeReadOnlyDataSegment(1)));
  std::map<std::string, AccessControlList> acls;
  acls["rdsvc"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["svcdata"] = AccessControlList::Public(MakeDataSegment(1, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["udata"] = AccessControlList::Public(MakeDataSegment(4, 4));
  if (!machine->LoadProgramSource(kSearchSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("searcher");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

using MachineFactory = std::unique_ptr<Machine> (*)(const MachineConfig&);

struct Guest {
  const char* name;
  MachineFactory factory;
};
constexpr Guest kGuests[] = {
    {"call-loop", MakeCallLoopMachine},
    {"pager", MakePagerMachine},
    {"dir-search", MakeSearchMachine},
};

struct Engine {
  const char* name;
  bool fast_path;
  bool block_engine;
};
constexpr Engine kEngines[] = {
    {"slow", false, false},
    {"fast", true, false},
    {"block", true, true},
};

MachineConfig ConfigFor(const Engine& engine) {
  MachineConfig config;
  config.fast_path = engine.fast_path;
  config.block_engine = engine.block_engine;
  return config;
}

void ExpectArchitecturalCountersIdentical(const Counters& a, const Counters& b) {
  Counters::ForEachField(
      [&a, &b](const char* name, uint64_t Counters::* member, bool host_only) {
        if (host_only) {
          return;  // the restored machine re-warms host caches
        }
        EXPECT_EQ(a.*member, b.*member) << "counter " << name;
      });
  for (size_t i = 0; i < a.traps.size(); ++i) {
    EXPECT_EQ(a.traps[i], b.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

// ---------------------------------------------------------------------------
// Exact-restore determinism: every guest, every engine.
// ---------------------------------------------------------------------------

TEST(Snapshot, RestoreTrajectoryMatchesUninterruptedRun) {
  for (const Guest& guest : kGuests) {
    for (const Engine& engine : kEngines) {
      SCOPED_TRACE(std::string(guest.name) + "/" + engine.name);
      const MachineConfig config = ConfigFor(engine);

      // The reference: the same machine run uninterrupted to completion.
      std::unique_ptr<Machine> reference = guest.factory(config);
      ASSERT_NE(reference, nullptr);
      ASSERT_TRUE(reference->Run(100'000'000).idle);
      const uint64_t want_fingerprint = FingerprintMachine(*reference);

      // The live machine runs a few short slices, then is snapshotted.
      std::unique_ptr<Machine> live = guest.factory(config);
      ASSERT_NE(live, nullptr);
      for (int slice = 0; slice < 3; ++slice) {
        live->Run(2'000);
      }
      std::vector<uint8_t> image;
      std::string error;
      ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;
      ASSERT_TRUE(VerifySnapshot(image, &error)) << error;

      // Restore into a bare machine (no program loaded): the image alone
      // must carry the full state.
      Machine restored(config);
      ASSERT_TRUE(restored.ok());
      ASSERT_TRUE(RestoreSnapshot(image, &restored, &error)) << error;
      EXPECT_EQ(restored.cpu().cycles(), live->cpu().cycles());
      EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*live));

      // Both the interrupted original and the restored copy must land on
      // the uninterrupted run's exact final state.
      ASSERT_TRUE(live->Run(100'000'000).idle);
      ASSERT_TRUE(restored.Run(100'000'000).idle);
      EXPECT_EQ(FingerprintMachine(*live), want_fingerprint);
      EXPECT_EQ(FingerprintMachine(restored), want_fingerprint);
      EXPECT_EQ(restored.cpu().cycles(), live->cpu().cycles());
      EXPECT_EQ(restored.TtyOutput(), live->TtyOutput());
      ExpectArchitecturalCountersIdentical(restored.cpu().counters(), live->cpu().counters());
      ExpectArchitecturalCountersIdentical(restored.cpu().counters(),
                                           reference->cpu().counters());
    }
  }
}

// The snapshot point must not matter: images taken at many different
// cut points all converge to the same final state.
TEST(Snapshot, EveryCutPointConverges) {
  const MachineConfig config;
  std::unique_ptr<Machine> reference = MakeSearchMachine(config);
  ASSERT_NE(reference, nullptr);
  ASSERT_TRUE(reference->Run(100'000'000).idle);
  const uint64_t want_fingerprint = FingerprintMachine(*reference);

  for (const uint64_t cut : {1u, 500u, 1'500u, 4'000u, 9'000u}) {
    SCOPED_TRACE(cut);
    std::unique_ptr<Machine> live = MakeSearchMachine(config);
    ASSERT_NE(live, nullptr);
    live->Run(cut);
    std::vector<uint8_t> image;
    std::string error;
    ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;
    Machine restored(config);
    ASSERT_TRUE(RestoreSnapshot(image, &restored, &error)) << error;
    ASSERT_TRUE(restored.Run(100'000'000).idle);
    EXPECT_EQ(FingerprintMachine(restored), want_fingerprint);
  }
}

// A snapshot of a completed machine round-trips exactly.
TEST(Snapshot, CompletedMachineRoundTrips) {
  const MachineConfig config;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(live->Run(100'000'000).idle);
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;
  Machine restored(config);
  ASSERT_TRUE(RestoreSnapshot(image, &restored, &error)) << error;
  EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*live));
  EXPECT_TRUE(restored.Run(1'000'000).idle);  // nothing left to run
  EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*live));
}

TEST(Snapshot, PeekMetaReportsMachineShape) {
  MachineConfig config;
  config.memory_words = size_t{1} << 20;
  config.quantum = 1234;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  live->Run(3'000);
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;

  SnapshotMeta meta;
  ASSERT_TRUE(PeekSnapshotMeta(image, &meta, &error)) << error;
  EXPECT_EQ(meta.memory_words, uint64_t{1} << 20);
  EXPECT_EQ(meta.quantum, 1234);
  EXPECT_EQ(meta.mode, ProtectionMode::kRingHardware);
  EXPECT_EQ(meta.cycle_model.instruction_base, CycleModel{}.instruction_base);
}

// ---------------------------------------------------------------------------
// Rejection: corrupted, truncated, wrong-endian, wrong-shape images.
// ---------------------------------------------------------------------------

std::vector<uint8_t> MakeValidImage(const MachineConfig& config) {
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  EXPECT_NE(live, nullptr);
  live->Run(3'000);
  std::vector<uint8_t> image;
  std::string error;
  EXPECT_TRUE(SaveSnapshot(*live, &image, &error)) << error;
  return image;
}

TEST(Snapshot, TruncatedImagesAreRejectedAtEveryLength) {
  const MachineConfig config;
  const std::vector<uint8_t> image = MakeValidImage(config);
  ASSERT_GT(image.size(), 64u);

  Machine target(config);
  ASSERT_TRUE(target.ok());
  const uint64_t untouched = FingerprintMachine(target);

  std::vector<size_t> lengths = {0, 1, 4, 8, 12, 15, 16, 17, 31, image.size() - 1};
  for (size_t len = 32; len < image.size(); len += 97) {
    lengths.push_back(len);
  }
  for (const size_t len : lengths) {
    SCOPED_TRACE(len);
    std::string error;
    EXPECT_FALSE(VerifySnapshot(image.data(), len, &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(RestoreSnapshot(image.data(), len, &target, &error));
    EXPECT_FALSE(error.empty());
  }
  // A rejected image never modifies the target machine.
  EXPECT_EQ(FingerprintMachine(target), untouched);
}

TEST(Snapshot, EverySingleBitFlipIsDetected) {
  const MachineConfig config;
  std::vector<uint8_t> image = MakeValidImage(config);
  Machine target(config);
  ASSERT_TRUE(target.ok());
  const uint64_t untouched = FingerprintMachine(target);

  Xorshift rng(0xF11Fu);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t byte = rng.Below(image.size());
    const uint8_t mask = static_cast<uint8_t>(1u << rng.Below(8));
    image[byte] ^= mask;
    SCOPED_TRACE(trial);
    std::string error;
    EXPECT_FALSE(VerifySnapshot(image, &error)) << "byte " << byte;
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(RestoreSnapshot(image, &target, &error)) << "byte " << byte;
    EXPECT_FALSE(error.empty());
    image[byte] ^= mask;  // un-flip for the next trial
  }
  std::string error;
  EXPECT_TRUE(VerifySnapshot(image, &error)) << error;  // pristine again
  EXPECT_EQ(FingerprintMachine(target), untouched);
}

TEST(Snapshot, WrongEndianImageIsNamedAsSuch) {
  const std::vector<uint8_t> image = MakeValidImage(MachineConfig{});
  std::vector<uint8_t> swapped = image;
  std::swap(swapped[0], swapped[3]);
  std::swap(swapped[1], swapped[2]);
  std::string error;
  EXPECT_FALSE(VerifySnapshot(swapped, &error));
  EXPECT_NE(error.find("wrong-endian"), std::string::npos) << error;
}

TEST(Snapshot, GarbageAndEmptyImagesAreRejected) {
  std::string error;
  EXPECT_FALSE(VerifySnapshot(nullptr, 0, &error));
  const std::vector<uint8_t> garbage(1024, 0xA5);
  error.clear();
  EXPECT_FALSE(VerifySnapshot(garbage, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(Snapshot, MemoryShapeMismatchIsRejected) {
  const std::vector<uint8_t> image = MakeValidImage(MachineConfig{});
  MachineConfig smaller;
  smaller.memory_words = size_t{1} << 20;
  Machine target(smaller);
  ASSERT_TRUE(target.ok());
  std::string error;
  EXPECT_FALSE(RestoreSnapshot(image, &target, &error));
  EXPECT_NE(error.find("does not match"), std::string::npos) << error;
}

TEST(Snapshot, CycleModelMismatchIsRejected) {
  const std::vector<uint8_t> image = MakeValidImage(MachineConfig{});
  MachineConfig other;
  other.cycle_model.trap = 99;
  Machine target(other);
  ASSERT_TRUE(target.ok());
  std::string error;
  EXPECT_FALSE(RestoreSnapshot(image, &target, &error));
  EXPECT_NE(error.find("cycle model"), std::string::npos) << error;
}

TEST(Snapshot, FileRoundTripAndFileErrors) {
  const MachineConfig config;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  live->Run(3'000);
  const std::string path = testing::TempDir() + "/snapshot_test.image";
  std::string error;
  ASSERT_TRUE(SaveSnapshotFile(*live, path, &error)) << error;
  Machine restored(config);
  ASSERT_TRUE(RestoreSnapshotFile(path, &restored, &error)) << error;
  EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*live));

  error.clear();
  EXPECT_FALSE(RestoreSnapshotFile("/nonexistent/dir/image", &restored, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Snapshot fault-injection sites.
// ---------------------------------------------------------------------------

TEST(Snapshot, WriteFaultSiteCorruptsTheImage) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.rate_ppm[static_cast<size_t>(FaultSite::kSnapshotWrite)] = 1'000'000;
  FaultInjector injector(fault);

  const MachineConfig config;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  live->Run(3'000);
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error, &injector)) << error;
  // The certain-rate write fault flipped one bit; verification catches it.
  EXPECT_FALSE(VerifySnapshot(image, &error));
  EXPECT_EQ(injector.counts()[static_cast<size_t>(FaultSite::kSnapshotWrite)], 1u);
}

TEST(Snapshot, ReadFaultSiteRejectsOnTheWayIn) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.rate_ppm[static_cast<size_t>(FaultSite::kSnapshotRead)] = 1'000'000;
  FaultInjector injector(fault);

  const MachineConfig config;
  const std::vector<uint8_t> image = MakeValidImage(config);
  Machine target(config);
  ASSERT_TRUE(target.ok());
  const uint64_t untouched = FingerprintMachine(target);
  std::string error;
  EXPECT_FALSE(RestoreSnapshot(image.data(), image.size(), &target, &error, &injector));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(FingerprintMachine(target), untouched);
  // The original buffer is never modified — the fault damages a copy.
  EXPECT_TRUE(VerifySnapshot(image, &error)) << error;
}

TEST(Snapshot, DisabledFaultSitesConsumeNoRandomness) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;  // all rates zero
  FaultInjector injector(fault);
  const uint64_t s0 = injector.rng().state(0);
  const uint64_t s1 = injector.rng().state(1);

  const MachineConfig config;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  live->Run(3'000);
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error, &injector)) << error;
  EXPECT_TRUE(VerifySnapshot(image, &error)) << error;
  EXPECT_EQ(injector.rng().state(0), s0);
  EXPECT_EQ(injector.rng().state(1), s1);
}

// The injector's own stream survives the round trip: a machine with live
// fault injection restored from a snapshot continues the exact stream.
TEST(Snapshot, FaultInjectorStreamRoundTrips) {
  MachineConfig config;
  config.fault = FaultConfig::Uniform(/*seed=*/42, /*rate_ppm=*/2'000);
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  live->Run(2'000);
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;

  // Restore into a machine built with NO injector: the image reinstates
  // configuration, RNG position, counts, and the event log.
  Machine restored(MachineConfig{});
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.fault_injector(), nullptr);
  ASSERT_TRUE(RestoreSnapshot(image, &restored, &error)) << error;
  ASSERT_NE(restored.fault_injector(), nullptr);
  ASSERT_NE(live->fault_injector(), nullptr);
  EXPECT_EQ(restored.fault_injector()->sequence(), live->fault_injector()->sequence());

  live->Run(100'000'000);
  restored.Run(100'000'000);
  EXPECT_EQ(FingerprintMachine(restored), FingerprintMachine(*live));
  EXPECT_EQ(restored.fault_injector()->sequence(), live->fault_injector()->sequence());
  EXPECT_EQ(restored.fault_injector()->counts(), live->fault_injector()->counts());
}

// ---------------------------------------------------------------------------
// Counters::ForEachField completeness guard: the snapshot codec (and the
// fingerprint) visit every scalar field. If someone adds a counter
// without updating ForEachField, this breaks.
// ---------------------------------------------------------------------------

TEST(Counters, ForEachFieldVisitsEveryScalarField) {
  size_t visited = 0;
  Counters::ForEachField([&visited](const char*, uint64_t Counters::*, bool) { ++visited; });
  EXPECT_EQ(sizeof(Counters), visited * sizeof(uint64_t) + sizeof(Counters{}.traps))
      << "Counters has a field ForEachField does not visit (or vice versa); "
         "update Counters::ForEachField in src/trace/counters.h";
}

}  // namespace
}  // namespace rings

// Snapshot/restore under the fleet engine: restore-seeded fleets stay
// bit-deterministic across thread counts, crash-consistent checkpointing
// is observation-free, and self-healing restarts an injected-fault
// machine from its last verified checkpoint (while a machine whose doom
// is baked into its state exhausts its restarts and retires cleanly).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/mem/descriptor_segment.h"
#include "src/snapshot/snapshot.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

constexpr char kCallLoopSource[] = R"(
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 200
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

std::unique_ptr<Machine> MakeCallLoopMachine(const MachineConfig& config) {
  auto machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 7, 1));
  if (!machine->LoadProgramSource(kCallLoopSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("caller");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// SDW base corrupted past the end of the core store: the first reference
// latches a physical fault, kMachineFault kills the process. The doom is
// part of the machine's state, so it survives into every checkpoint.
std::unique_ptr<Machine> MakeDoomedMachine() {
  auto machine = std::make_unique<Machine>(MachineConfig{});
  constexpr char kSource[] = R"(
        .segment reader
rstart: lda   vp,*
        mme   0
vp:     .its  4, victim, 0

        .segment victim
        .block 16
)";
  std::map<std::string, AccessControlList> acls;
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["victim"] = AccessControlList::Public(MakeDataSegment(4, 4));
  if (!machine->LoadProgramSource(kSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* reader = machine->Login("doomed");
  machine->supervisor().InitiateAll(reader);
  if (!machine->Start(reader, "reader", "rstart", kUserRing)) {
    return nullptr;
  }
  const Segno victim_segno = machine->registry().Find("victim")->segno;
  DescriptorSegment dseg(&machine->memory(), reader->dbr);
  Sdw bad = *dseg.Fetch(victim_segno);
  bad.base = static_cast<AbsAddr>(machine->memory().size()) + 4096;
  dseg.Store(victim_segno, bad);
  return machine;
}

// An injection mix hot enough to kill the call loop quickly — the loop is
// built on indirect references, and a raised ring field on one of its
// indirect words turns the next `lda cnt,*` into a read violation — but
// clean enough that a disarmed replay completes.
FaultConfig FatalInjection(uint64_t seed) {
  FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.set_rate(FaultSite::kIndirectRingCorruption, 100'000);
  return config;
}

TEST(SnapshotFleet, RestoreSeededFleetDeterministicAcrossThreadCounts) {
  // One mid-run image, restored by every factory: the fleet continues the
  // trajectory identically at every thread count, and identically to a
  // standalone continuation.
  const MachineConfig config;
  std::unique_ptr<Machine> live = MakeCallLoopMachine(config);
  ASSERT_NE(live, nullptr);
  for (int slice = 0; slice < 3; ++slice) {
    live->Run(1'500);
  }
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, &image, &error)) << error;

  std::unique_ptr<Machine> standalone = std::make_unique<Machine>(config);
  ASSERT_TRUE(RestoreSnapshot(image, standalone.get(), &error)) << error;
  ASSERT_TRUE(standalone->Run(100'000'000).idle);
  const uint64_t want_fingerprint = FingerprintMachine(*standalone);

  for (const int threads : {1, 4, 8}) {
    SCOPED_TRACE(threads);
    FleetConfig fleet_config;
    fleet_config.threads = threads;
    fleet_config.slice_cycles = 1'000;
    Fleet fleet(fleet_config);
    for (int m = 0; m < 4; ++m) {
      fleet.Add(std::string("restored-") + std::to_string(m),
                [&image, &config]() -> std::unique_ptr<Machine> {
                  auto machine = std::make_unique<Machine>(config);
                  std::string restore_error;
                  if (!machine->ok() ||
                      !RestoreSnapshot(image, machine.get(), &restore_error)) {
                    return nullptr;
                  }
                  return machine;
                });
    }
    const FleetStats stats = fleet.Run();
    EXPECT_EQ(stats.completed, 4u) << stats.ToString();
    for (const MachineResult& result : fleet.results()) {
      EXPECT_EQ(result.fingerprint, want_fingerprint) << result.ToString();
      EXPECT_EQ(result.exit_code, 0);
    }
  }
}

TEST(SnapshotFleet, CheckpointingIsObservationFree) {
  // Checkpointing must never perturb a machine's trajectory (snapshot
  // fault sites at rate zero consume no randomness, serialization reads
  // const state): results with and without checkpointing are identical.
  std::vector<MachineResult> baseline;
  std::vector<MachineResult> checkpointed;
  for (const uint64_t every : {uint64_t{0}, uint64_t{2}}) {
    FleetConfig config;
    config.threads = 4;
    config.slice_cycles = 1'000;
    config.checkpoint_every_quanta = every;
    Fleet fleet(config);
    for (uint64_t i = 0; i < 3; ++i) {
      MachineConfig machine_config;
      machine_config.fault = FaultConfig::Uniform(/*seed=*/0x5eed + i, /*ppm=*/2'000);
      fleet.Add(std::string("m") + std::to_string(i),
                [machine_config] { return MakeCallLoopMachine(machine_config); });
    }
    fleet.Run();
    (every == 0 ? baseline : checkpointed) = fleet.results();
  }
  ASSERT_EQ(baseline.size(), checkpointed.size());
  for (size_t m = 0; m < baseline.size(); ++m) {
    SCOPED_TRACE(baseline[m].name);
    EXPECT_EQ(checkpointed[m].fingerprint, baseline[m].fingerprint);
    EXPECT_EQ(checkpointed[m].cycles, baseline[m].cycles);
    EXPECT_EQ(checkpointed[m].exit_code, baseline[m].exit_code);
    EXPECT_EQ(checkpointed[m].process_status, baseline[m].process_status);
    EXPECT_EQ(checkpointed[m].restarts, 0);
  }
}

TEST(SnapshotFleet, SelfHealingRecoversInjectedFaultMachine) {
  // First establish that the injection mix is fatal without healing.
  {
    MachineConfig config;
    config.fault = FatalInjection(/*seed=*/0xDEAD);
    std::unique_ptr<Machine> victim = MakeCallLoopMachine(config);
    ASSERT_NE(victim, nullptr);
    ASSERT_TRUE(victim->Run(100'000'000).idle);
    bool killed = false;
    for (const auto& process : victim->supervisor().processes()) {
      killed = killed || process->state == ProcessState::kKilled;
    }
    ASSERT_TRUE(killed) << "injection mix no longer kills the guest; retune the test";
  }

  // With checkpointing and restarts, the same machine completes: the
  // restart disarms the injector (the transient fault was repaired) and
  // replays from the last verified checkpoint.
  std::vector<MachineResult> first_run;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    FleetConfig fleet_config;
    fleet_config.threads = threads;
    fleet_config.slice_cycles = 1'000;
    fleet_config.checkpoint_every_quanta = 1;
    fleet_config.max_restarts = 3;
    Fleet fleet(fleet_config);
    fleet.Add("victim", [] {
      MachineConfig config;
      config.fault = FatalInjection(/*seed=*/0xDEAD);
      return MakeCallLoopMachine(config);
    });
    fleet.Add("healthy", [] { return MakeCallLoopMachine(MachineConfig{}); });
    const FleetStats stats = fleet.Run();

    const MachineResult& victim = fleet.results()[0];
    EXPECT_EQ(victim.outcome, MachineOutcome::kCompleted) << victim.ToString();
    EXPECT_GE(victim.restarts, 1) << victim.ToString();
    EXPECT_TRUE(victim.recovered);
    EXPECT_EQ(victim.exit_code, 0);
    EXPECT_TRUE(fleet.results()[1].ok());
    EXPECT_EQ(fleet.results()[1].restarts, 0);
    EXPECT_FALSE(fleet.results()[1].recovered);
    EXPECT_GE(stats.restarts, 1u);
    EXPECT_EQ(stats.recovered, 1u);
    EXPECT_EQ(fleet.ExitCode(), 0);

    // Recovery itself is deterministic and thread-count invariant.
    if (first_run.empty()) {
      first_run = fleet.results();
    } else {
      for (size_t m = 0; m < first_run.size(); ++m) {
        EXPECT_EQ(fleet.results()[m].fingerprint, first_run[m].fingerprint);
        EXPECT_EQ(fleet.results()[m].cycles, first_run[m].cycles);
        EXPECT_EQ(fleet.results()[m].restarts, first_run[m].restarts);
      }
    }
  }
}

TEST(SnapshotFleet, UnrecoverableMachineExhaustsRestartsAndRetires) {
  // The doomed machine's corruption lives in its architectural state, so
  // every checkpoint carries it: restarts replay the same death until the
  // budget runs out, then the machine retires as failed while its
  // sibling completes.
  FleetConfig fleet_config;
  fleet_config.threads = 2;
  fleet_config.slice_cycles = 1'000;
  fleet_config.checkpoint_every_quanta = 1;
  fleet_config.max_restarts = 2;
  Fleet fleet(fleet_config);
  fleet.Add("doomed", [] { return MakeDoomedMachine(); });
  fleet.Add("healthy", [] { return MakeCallLoopMachine(MachineConfig{}); });
  const FleetStats stats = fleet.Run();

  const MachineResult& doomed = fleet.results()[0];
  EXPECT_EQ(doomed.outcome, MachineOutcome::kFailed) << doomed.ToString();
  EXPECT_EQ(doomed.restarts, 2);
  EXPECT_FALSE(doomed.recovered);
  EXPECT_EQ(doomed.exit_code, 111);
  EXPECT_NE(doomed.failure.find("machine_fault"), std::string::npos) << doomed.failure;
  EXPECT_TRUE(fleet.results()[1].ok());
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.restarts, 2u);
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(fleet.ExitCode(), 111);
}

TEST(SnapshotFleet, NoCheckpointMeansNoRestart) {
  // max_restarts alone is not enough: without a checkpoint there is
  // nothing to restart from, and the failure retires the machine exactly
  // as before self-healing existed.
  FleetConfig fleet_config;
  fleet_config.max_restarts = 3;  // checkpoint_every_quanta stays 0
  Fleet fleet(fleet_config);
  fleet.Add("doomed", [] { return MakeDoomedMachine(); });
  fleet.Run();
  const MachineResult& doomed = fleet.results()[0];
  EXPECT_EQ(doomed.outcome, MachineOutcome::kFailed);
  EXPECT_EQ(doomed.restarts, 0);
  EXPECT_EQ(doomed.exit_code, 111);
}

}  // namespace
}  // namespace rings

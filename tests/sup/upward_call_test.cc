// The hard cases of the Call and Return section: upward calls and
// downward returns, emulated by the supervisor with dynamic stacked
// return gates, argument copy-in/copy-out, and stack-pointer
// verification.
#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

std::map<std::string, AccessControlList> BaseAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  return acls;
}

TEST(UpwardCall, EntersHigherRingAndReturns) {
  // Ring-4 code calls a gate of a ring-6 procedure (execute bracket
  // [6,6]): the hardware traps, the supervisor emulates the upward call;
  // the callee's RET traps again and the supervisor performs the
  // downward return.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        ldai  0            ; A clobbered by callee; prove we resumed here
        adai  11
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  ldai  77           ; runs in ring 6
        ret   pr7|0        ; downward return -> trap -> supervisor
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 11);
  EXPECT_EQ(machine.cpu().counters().upward_calls_emulated, 1u);
  EXPECT_EQ(machine.cpu().counters().downward_returns_emulated, 1u);
  EXPECT_TRUE(p->return_gates.empty());  // gate destroyed on return
}

TEST(UpwardCall, CalleeRunsInTargetBracketFloor) {
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  epp   pr3, ringgate,*
        call  pr3|0          ; downward call to the g_ring service (ring 1)
        sta   saver,*        ; should report ring 6... A = caller ring = 6
        epp   pr2, exitgate,*
        lda   saver,*
        call  pr2|0          ; exit with A
ringgate: .its 6, sup_gates, 3
exitgate: .its 6, sup_gates, 0
saver:  .its  6, scratch, 0

        .segment scratch
        .word 0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(6, 6));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  // Rings 6 cannot reach supervisor gates (R3 = 5): the downward call
  // from ring 6 must be denied.
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kExecuteViolation);
}

TEST(UpwardCall, ArgumentsCopiedInAndOut) {
  // The ring-4 caller passes an in/out argument in a segment the ring-6
  // callee cannot reference; the supervisor's copy-in/copy-out makes the
  // upward call work anyway ("copying arguments into segments that are
  // accessible in the called ring, and then copying them back").
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr1, arglist
        epp   pr2, hiptr,*
        call  pr2|0
        lda   dptr,*         ; read back the (copied-out) result
        mme   0
arglist: .word 1
        .its  4, lowdata, 0
        .word 1
hiptr:  .its  4, high, 0
dptr:   .its  4, lowdata, 0

        .segment lowdata     ; accessible only to rings <= 4
        .word 5

        .segment high
        .gates 1
entry:  lda   pr1|1,*        ; read arg 0 through the (rewritten) arg list
        adai  100
        sta   pr1|1,*        ; write it back (into the transfer area)
        ret   pr7|0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["lowdata"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 105);
  EXPECT_EQ(machine.PeekSegment("lowdata", 0), 105u);
  EXPECT_GT(machine.cpu().counters().argument_words_copied, 0u);
}

TEST(UpwardCall, CallerCannotPassArgumentsItCannotRead) {
  // The caller names an argument in a ring-0 segment: the supervisor's
  // copy-in validates at the caller's ring and kills the process.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr1, arglist
        epp   pr2, hiptr,*
        call  pr2|0
        mme   0
arglist: .word 1
        .its  4, secret, 0
        .word 1
hiptr:  .its  4, high, 0

        .segment secret
        .word 999

        .segment high
        .gates 1
entry:  ret   pr7|0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["secret"] = AccessControlList::Public(MakeDataSegment(0, 0));
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
}

TEST(DownwardReturn, VerifiedAgainstGateStack) {
  // A ring-5 program attempts a downward return with NO outstanding
  // upward call: the supervisor must kill it.
  constexpr char kSource[] = R"(
        .segment main
start:  ret   fakeptr,*
        mme   0
fakeptr: .its 5, low, 0

        .segment low
        nop
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(5, 5));
  acls["low"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", /*ring=*/5));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kDownwardReturn);
}

TEST(DownwardReturn, WrongTargetRejected) {
  // The callee (entered by upward call) tries to "return" somewhere other
  // than the recorded return point: rejected.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        mme   0              ; the legitimate return point
victim: nop                  ; the forged target
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  ret   forged,*
forged: .its  6, main, victim
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kDownwardReturn);
}

TEST(DownwardReturn, TamperedStackPointerRejected) {
  // "...if the intervening software verifies the restored stack pointer
  // register value when performing the downward return." The callee
  // clobbers PR6 before returning: rejected.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  epp   pr6, entry     ; clobber the stack pointer
        ret   pr7|0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kDownwardReturn);
}

TEST(UpwardCall, RecursiveUpwardCallsStackGates) {
  // main (ring 4) -> high (ring 6) -> via a second upward call from a
  // trampoline at ring 4? Not expressible without a downward call first;
  // instead: main calls high twice in sequence, checking the gate stack
  // empties each time and the process completes.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        epp   pr2, hiptr,*
        call  pr2|0
        adai  1
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  adai  10
        ret   pr7|0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 21);
  EXPECT_EQ(machine.cpu().counters().upward_calls_emulated, 2u);
  EXPECT_EQ(machine.cpu().counters().downward_returns_emulated, 2u);
}

}  // namespace
}  // namespace rings

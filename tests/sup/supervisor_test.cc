// Supervisor behaviour: process creation, initiation via ACLs, services,
// scheduling, and the SetAcl ring constraint.
#include "src/sup/supervisor.h"

#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

TEST(Supervisor, ProcessHasEightStackSegments) {
  Machine machine;
  Process* p = machine.Login("alice");
  ASSERT_NE(p, nullptr);
  DescriptorSegment dseg(&machine.memory(), p->dbr);
  for (Ring r = 0; r < kRingCount; ++r) {
    const auto sdw = dseg.Fetch(kStackBaseSegno + r);
    ASSERT_TRUE(sdw.has_value());
    ASSERT_TRUE(sdw->present) << unsigned(r);
    EXPECT_EQ(sdw->bound, kStackSegmentWords);
    // "The stack segment for procedures executing in ring n has read and
    // write brackets that end at ring n."
    EXPECT_EQ(sdw->access.brackets.r1, r);
    EXPECT_EQ(sdw->access.brackets.r2, r);
    // Word 0 holds the next-free pointer.
    EXPECT_EQ(machine.memory().Read(sdw->base + kStackNextFreeWord), kStackFrameStart);
  }
}

TEST(Supervisor, StackSegmentsArePrivatePerProcess) {
  Machine machine;
  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  DescriptorSegment dseg_a(&machine.memory(), a->dbr);
  DescriptorSegment dseg_b(&machine.memory(), b->dbr);
  for (Ring r = 0; r < kRingCount; ++r) {
    EXPECT_NE(dseg_a.Fetch(r)->base, dseg_b.Fetch(r)->base) << unsigned(r);
  }
}

TEST(Supervisor, InitiateHonorsAcl) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["shared"] = AccessControlList{{"alice", MakeDataSegment(4, 4)},
                                     {"bob", MakeReadOnlyDataSegment(4)}};
  ASSERT_TRUE(machine.LoadProgramSource(".segment shared\n.word 1\n", acls));

  Process* alice = machine.Login("alice");
  Process* bob = machine.Login("bob");
  Process* carol = machine.Login("carol");

  const auto segno_a = machine.supervisor().Initiate(alice, "shared");
  const auto segno_b = machine.supervisor().Initiate(bob, "shared");
  ASSERT_TRUE(segno_a.has_value());
  ASSERT_TRUE(segno_b.has_value());
  // Global numbering: same segno in both virtual memories.
  EXPECT_EQ(*segno_a, *segno_b);
  // Carol is not on the ACL.
  EXPECT_EQ(machine.supervisor().Initiate(carol, "shared"), std::nullopt);

  // Different access for the two users, same storage.
  DescriptorSegment dseg_a(&machine.memory(), alice->dbr);
  DescriptorSegment dseg_b(&machine.memory(), bob->dbr);
  EXPECT_TRUE(dseg_a.Fetch(*segno_a)->access.flags.write);
  EXPECT_FALSE(dseg_b.Fetch(*segno_b)->access.flags.write);
  EXPECT_EQ(dseg_a.Fetch(*segno_a)->base, dseg_b.Fetch(*segno_b)->base);
}

TEST(Supervisor, InitiateUnknownSegment) {
  Machine machine;
  Process* p = machine.Login("alice");
  EXPECT_EQ(machine.supervisor().Initiate(p, "nosuch"), std::nullopt);
}

TEST(Supervisor, StartFailsForUnknownEntry) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(".segment main\nstart: nop\n", acls));
  Process* p = machine.Login("alice");
  EXPECT_FALSE(machine.Start(p, "main", "nosuch", kUserRing));
  EXPECT_FALSE(machine.Start(p, "nosuch", "start", kUserRing));
  EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
}

TEST(Supervisor, SetAclServiceEnforcesRingConstraint) {
  // A ring-4 program may not set brackets below 4 ("a program executing in
  // ring n cannot specify R1, R2, or R3 values of less than n").
  constexpr char kSource[] = R"(
        .segment main
start:  lda   segq          ; A = target segno (patched at runtime below)
        ldqi  0
        epp   pr2, gateptr,*
        call  pr2|0          ; g_acl (gate 4) -- Q holds packed spec
        mme   0              ; exit with service result in A
segq:   .word 0
gateptr: .its 4, sup_gates, 4

        .segment target
        .word 0
)";
  const auto attempt = [&](Word spec) -> int64_t {
    Machine machine;
    std::map<std::string, AccessControlList> acls;
    acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
    acls["target"] = AccessControlList::Public(MakeDataSegment(4, 4));
    EXPECT_TRUE(machine.LoadProgramSource(kSource, acls));
    // Patch the target segno and the packed spec into the program.
    const Segno target_segno = machine.registry().Find("target")->segno;
    machine.PokeSegment("main", 5, target_segno);
    // The Q register is loaded via ldqi 0 above; replace that instruction's
    // literal with the low bits... spec exceeds 18 bits, so instead patch
    // the word after ldqi: simpler — rewrite instruction word directly.
    // ldqi is word 1 of main; encode a fresh ldqi with no offset and set Q
    // through a data word would be cleaner, but offsets are 18 bits and
    // PackAccessSpec fits in 12, so patching the literal works:
    Word ins_word = *machine.PeekSegment("main", 1);
    ins_word = (ins_word & ~uint64_t{0x3FFFF}) | (spec & 0x3FFFF);
    machine.PokeSegment("main", 1, ins_word);

    Process* p = machine.Login("alice");
    machine.supervisor().InitiateAll(p);
    EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
    machine.Run();
    EXPECT_EQ(p->state, ProcessState::kExited);
    return p->exit_code;
  };

  // Legal: tighten own access to read-only within rings >= 4.
  EXPECT_EQ(attempt(PackAccessSpec(true, false, false, 4, 4, 4)), 0);
  // Illegal: brackets reaching below ring 4.
  EXPECT_EQ(attempt(PackAccessSpec(true, true, false, 0, 4, 4)), -1);
  EXPECT_EQ(attempt(PackAccessSpec(true, true, false, 4, 4, 3)), -1);
}

TEST(Supervisor, SetAclChangeIsImmediatelyEffective) {
  // The program revokes its own write permission, then tries to write:
  // the second store must kill the process.
  constexpr char kSource[] = R"(
        .segment main
start:  ldai  1
        sta   dptr,*         ; first write succeeds
        lda   segq
        ldqi  0              ; patched to read-only spec below
        epp   pr2, gateptr,*
        call  pr2|0
        ldai  2
        sta   dptr,*         ; must now fail
        mme   0
segq:   .word 0
dptr:   .its  4, target, 0
gateptr: .its 4, sup_gates, 4

        .segment target
        .word 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  const Segno target_segno = machine.registry().Find("target")->segno;
  machine.PokeSegment("main", 9, target_segno);
  const Word spec = PackAccessSpec(true, false, false, 4, 4, 4);
  Word ins_word = *machine.PeekSegment("main", 3);
  ins_word = (ins_word & ~uint64_t{0x3FFFF}) | spec;
  machine.PokeSegment("main", 3, ins_word);

  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kWriteViolation);
  EXPECT_EQ(machine.PeekSegment("target", 0), 1u);  // first write landed
}

TEST(Supervisor, CycleCountServiceMonotone) {
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, gateptr,*
        call  pr2|0           ; g_cyc (gate 5)
        mme   0
gateptr: .its 4, sup_gates, 5
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_GT(p->exit_code, 0);
}

TEST(Supervisor, UnknownServiceKillsProcess) {
  Machine machine;
  // Hand-craft a ring-1 segment issuing a bogus SVC, reachable by a gate.
  constexpr char kSource[] = R"(
        .segment roguegate
        .gates 1
g:      svc 99
        ret pr7|0
        .segment main
start:  epp  pr2, gptr,*
        call pr2|0
        mme  0
gptr:   .its 4, roguegate, 0
)";
  std::map<std::string, AccessControlList> acls;
  acls["roguegate"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
}

TEST(Supervisor, GatesNotCallableFromRing6) {
  // "Procedures executing in rings 6 and 7 are not given access to
  // supervisor gates."
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, gateptr,*
        call  pr2|0
        mme   0
gateptr: .its 6, sup_gates, 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 6));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", /*ring=*/6));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kExecuteViolation);
}

}  // namespace
}  // namespace rings

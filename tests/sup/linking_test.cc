// Dynamic linking: fault-tagged link words (.link) trap on first
// reference, are snapped by the supervisor, and the disrupted instruction
// resumes and completes — Multics-style "snapping the link".
#include <gtest/gtest.h>

#include "src/isa/indirect_word.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

std::map<std::string, AccessControlList> BaseAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  return acls;
}

TEST(DynamicLinking, SnapsOnFirstReference) {
  constexpr char kSource[] = R"(
        .segment main
start:  lda   lk,*           ; first use: link fault, snap, resume
        ada   lk,*           ; second use: already snapped
        mme   0
lk:     .link 4, data, value

        .segment data
        .word 0
value:  .word 21
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 42);
  // Exactly one snap, one link-fault trap.
  EXPECT_EQ(machine.cpu().counters().links_snapped, 1u);
  EXPECT_EQ(machine.cpu().counters().TrapCount(TrapCause::kLinkFault), 1u);
  // The stored word is now an ordinary snapped pointer.
  const IndirectWord snapped = DecodeIndirectWord(*machine.PeekSegment("main", 3));
  EXPECT_FALSE(snapped.fault);
  EXPECT_EQ(snapped.wordno, 1u);
}

TEST(DynamicLinking, TargetMayBeRegisteredAfterTheReferent) {
  // The whole point of dynamic linking: `main` links against a segment
  // that does not exist at load time.
  Machine machine;
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   lk,*
        mme   0
lk:     .link 4, latecomer, 0
)",
                                        BaseAcls()));
  // Register the target afterwards.
  machine.registry().CreateSegmentWithContents(
      "latecomer", {77}, 0, 0, AccessControlList::Public(MakeDataSegment(4, 4)));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 77);
}

TEST(DynamicLinking, UnresolvableLinkKillsProcess) {
  Machine machine;
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   lk,*
        mme   0
lk:     .link 4, nowhere, 0
)",
                                        BaseAcls()));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kLinkFault);
}

TEST(DynamicLinking, UnknownSymbolKillsProcess) {
  Machine machine;
  auto acls = BaseAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   lk,*
        mme   0
lk:     .link 4, data, missing_symbol

        .segment data
        .word 1
)",
                                        acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kLinkFault);
}

TEST(DynamicLinking, SnappedLinkKeepsRingValidation) {
  // The link declares ring 4; snapping must not grant more than the
  // declared validation level. Linking to supervisor-only data still
  // faults on the post-snap reference.
  Machine machine;
  auto acls = BaseAcls();
  acls["secret"] = AccessControlList::Public(MakeDataSegment(1, 1));
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   lk,*
        mme   0
lk:     .link 4, secret, 0

        .segment secret
        .word 9
)",
                                        acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  // The snap succeeds (linking is name resolution, not access), but the
  // resumed LDA is denied by the ordinary ring check.
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
  EXPECT_EQ(machine.cpu().counters().links_snapped, 1u);
}

TEST(DynamicLinking, SharedSnapVisibleToSecondProcess) {
  constexpr char kSource[] = R"(
        .segment main
start:  lda   lk,*
        mme   0
lk:     .link 4, data, 0

        .segment data
        .word 5
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  machine.supervisor().InitiateAll(a);
  machine.supervisor().InitiateAll(b);
  ASSERT_TRUE(machine.Start(a, "main", "start", kUserRing));
  ASSERT_TRUE(machine.Start(b, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(a->state, ProcessState::kExited);
  EXPECT_EQ(b->state, ProcessState::kExited);
  EXPECT_EQ(a->exit_code, 5);
  EXPECT_EQ(b->exit_code, 5);
  // One snap serves both processes (shared storage).
  EXPECT_EQ(machine.cpu().counters().links_snapped, 1u);
}

TEST(DynamicLinking, ProcedureCallThroughLink) {
  // The canonical Multics use: calling a procedure by name. The CALL's
  // effective-address formation hits the fault word, the supervisor snaps
  // it, and the re-executed CALL crosses into the (ring-1) service as if
  // the link had always been there.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, lk,*      ; link fault on first execution
        call  pr2|0
        mme   0
lk:     .link 4, service, 0

        .segment service
        .gates 1
entry:  ldai  31
        ret   pr7|0
)";
  Machine machine;
  auto acls = BaseAcls();
  acls["service"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 31);
  EXPECT_EQ(machine.cpu().counters().links_snapped, 1u);
  EXPECT_EQ(machine.cpu().counters().calls_downward, 1u);
}

TEST(DynamicLinking, ForgedFaultWordDoesNotEscalate) {
  // A user fabricates a fault-tagged word naming the supervisor gate
  // segment's link table (it has none): the process dies, nothing is
  // written anywhere else.
  Machine machine;
  auto acls = BaseAcls();
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   sp2,*
        mme   0
sp2:    .its  4, scratch, 0,*

        .segment scratch
        .word 0
)",
                                        acls));
  // Plant a forged fault word in scratch pointing at the gate segment's
  // (empty) link table.
  const Segno gates = machine.registry().Find(kGateSegmentRing1)->segno;
  machine.PokeSegment("scratch", 0,
                      EncodeIndirectWord(IndirectWord{4, false, gates, 0, /*fault=*/true}));
  Process* p = machine.Login("mallory");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kLinkFault);
}

}  // namespace
}  // namespace rings

#include "src/sup/acl.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(Acl, LookupByUser) {
  AccessControlList acl{{"alice", MakeDataSegment(4, 4)}, {"bob", MakeReadOnlyDataSegment(4)}};
  ASSERT_TRUE(acl.Lookup("alice").has_value());
  EXPECT_TRUE(acl.Lookup("alice")->flags.write);
  ASSERT_TRUE(acl.Lookup("bob").has_value());
  EXPECT_FALSE(acl.Lookup("bob")->flags.write);
  EXPECT_EQ(acl.Lookup("carol"), std::nullopt);
}

TEST(Acl, WildcardMatchesAnyUser) {
  const AccessControlList acl = AccessControlList::Public(MakeDataSegment(4, 4));
  EXPECT_TRUE(acl.Lookup("anyone").has_value());
  EXPECT_TRUE(acl.Lookup("admin").has_value());
}

TEST(Acl, FirstMatchWins) {
  // A specific entry preceding the wildcard overrides it — e.g. bob gets
  // read-only while everyone else can write.
  AccessControlList acl{{"bob", MakeReadOnlyDataSegment(4)},
                        {kAclWildcard, MakeDataSegment(4, 4)}};
  EXPECT_FALSE(acl.Lookup("bob")->flags.write);
  EXPECT_TRUE(acl.Lookup("alice")->flags.write);
}

TEST(Acl, SetReplacesExisting) {
  AccessControlList acl = AccessControlList::ForUser("alice", MakeDataSegment(4, 4));
  ASSERT_TRUE(acl.Set("alice", MakeReadOnlyDataSegment(3)));
  EXPECT_FALSE(acl.Lookup("alice")->flags.write);
  EXPECT_EQ(acl.entries().size(), 1u);
}

TEST(Acl, SetAddsInFrontOfWildcard) {
  AccessControlList acl = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(acl.Set("bob", MakeReadOnlyDataSegment(4)));
  EXPECT_FALSE(acl.Lookup("bob")->flags.write);
  EXPECT_TRUE(acl.Lookup("alice")->flags.write);
}

TEST(Acl, SetRejectsMalformedBrackets) {
  AccessControlList acl;
  SegmentAccess bad = MakeDataSegment(4, 4);
  bad.brackets = Brackets{5, 2, 1};
  EXPECT_FALSE(acl.Set("alice", bad));
  EXPECT_TRUE(acl.empty());
}

TEST(Acl, Remove) {
  AccessControlList acl{{"alice", MakeDataSegment(4, 4)}, {"bob", MakeDataSegment(4, 4)}};
  acl.Remove("alice");
  EXPECT_EQ(acl.Lookup("alice"), std::nullopt);
  EXPECT_TRUE(acl.Lookup("bob").has_value());
}

TEST(Acl, EmptyDeniesEveryone) {
  const AccessControlList acl;
  EXPECT_EQ(acl.Lookup("anyone"), std::nullopt);
}

TEST(Acl, DifferentUsersDifferentBrackets) {
  // The paper's audited-data-base scenario: owner A accesses the segment
  // directly from ring 4; B reaches it only through A's ring-3 subsystem,
  // expressed by giving B brackets that stop at ring 3.
  AccessControlList acl{{"a", MakeDataSegment(4, 4)}, {"b", MakeDataSegment(3, 3)}};
  EXPECT_TRUE(acl.Lookup("a")->brackets.InReadBracket(4));
  EXPECT_FALSE(acl.Lookup("b")->brackets.InReadBracket(4));
  EXPECT_TRUE(acl.Lookup("b")->brackets.InReadBracket(3));
}

}  // namespace
}  // namespace rings

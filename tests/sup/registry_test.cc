#include "src/sup/segment_registry.h"

#include <gtest/gtest.h>

#include "src/isa/indirect_word.h"
#include "src/kasm/assembler.h"
#include "src/sup/abi.h"

namespace rings {
namespace {

TEST(Registry, CreateSegmentAssignsIncreasingSegnos) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const auto a = reg.CreateSegment("a", 10, AccessControlList::Public(MakeDataSegment(4, 4)));
  const auto b = reg.CreateSegment("b", 10, AccessControlList::Public(MakeDataSegment(4, 4)));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, kFirstSharedSegno);
  EXPECT_EQ(*b, kFirstSharedSegno + 1);
}

TEST(Registry, DuplicateNameRejected) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  ASSERT_TRUE(reg.CreateSegment("a", 4, {}).has_value());
  EXPECT_FALSE(reg.CreateSegment("a", 4, {}).has_value());
}

TEST(Registry, ContentsWritten) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const auto segno =
      reg.CreateSegmentWithContents("a", {7, 8, 9}, /*extra_zero=*/2, /*gates=*/1, {});
  ASSERT_TRUE(segno.has_value());
  const RegisteredSegment* seg = reg.FindBySegno(*segno);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->bound, 5u);
  EXPECT_EQ(seg->gate_count, 1u);
  EXPECT_EQ(mem.Read(seg->base + 0), 7u);
  EXPECT_EQ(mem.Read(seg->base + 2), 9u);
  EXPECT_EQ(mem.Read(seg->base + 4), 0u);
}

TEST(Registry, LoadProgramResolvesItsPatches) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(R"(
        .segment code
ptr:    .its 4, data, target,*
        .segment data
        .word 0
target: .word 42
)");
  std::map<std::string, AccessControlList> acls;
  acls["code"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  ASSERT_TRUE(reg.LoadProgram(program, acls, &error)) << error;

  const RegisteredSegment* code = reg.Find("code");
  const RegisteredSegment* data = reg.Find("data");
  const IndirectWord iw = DecodeIndirectWord(mem.Read(code->base));
  EXPECT_EQ(iw.segno, data->segno);
  EXPECT_EQ(iw.wordno, 1u);
  EXPECT_EQ(iw.ring, 4);
  EXPECT_TRUE(iw.indirect);
}

TEST(Registry, LoadProgramRequiresAcls) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(".segment lonely\n nop\n");
  std::string error;
  EXPECT_FALSE(reg.LoadProgram(program, {}, &error));
  EXPECT_NE(error.find("lonely"), std::string::npos);
}

TEST(Registry, LoadProgramRejectsUnknownPatchTarget) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(".segment s\n .its 4, ghost, 0\n");
  std::map<std::string, AccessControlList> acls;
  acls["s"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  EXPECT_FALSE(reg.LoadProgram(program, acls, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos);
}

TEST(Registry, LoadProgramRejectsUnknownPatchSymbol) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(R"(
        .segment s
        .its 4, d, missing
        .segment d
        .word 0
)");
  std::map<std::string, AccessControlList> acls;
  acls["s"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["d"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  EXPECT_FALSE(reg.LoadProgram(program, acls, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);
}

TEST(Registry, ResolveSymbolAddresses) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(R"(
        .segment code
        nop
entry:  nop
)");
  std::map<std::string, AccessControlList> acls;
  acls["code"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  std::string error;
  ASSERT_TRUE(reg.LoadProgram(program, acls, &error));
  const auto addr = reg.Resolve("code", "entry");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->wordno, 1u);
  EXPECT_EQ(reg.Resolve("code", "nosuch"), std::nullopt);
  EXPECT_EQ(reg.Resolve("nosuch", ""), std::nullopt);
  // Empty symbol = word 0.
  EXPECT_EQ(reg.Resolve("code", "")->wordno, 0u);
}

TEST(Registry, SymbolsPreservedFromAssembly) {
  PhysicalMemory mem(1 << 16);
  SegmentRegistry reg(&mem);
  const Program program = AssembleOrDie(".segment s\na: nop\nb: nop\n");
  std::map<std::string, AccessControlList> acls;
  acls["s"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  std::string error;
  ASSERT_TRUE(reg.LoadProgram(program, acls, &error));
  EXPECT_EQ(reg.Find("s")->symbols.at("b"), 1u);
}

}  // namespace
}  // namespace rings

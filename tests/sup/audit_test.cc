#include "src/sup/audit.h"

#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

std::vector<AuditFinding> Audit(Machine& machine) {
  return AuditProtectionState(&machine.memory(), machine.registry(), machine.supervisor());
}

TEST(Audit, FreshMachineIsClean) {
  Machine machine;
  machine.Login("alice");
  machine.Login("bob");
  const auto findings = Audit(machine);
  for (const auto& f : findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_TRUE(AuditClean(findings));
}

TEST(Audit, LoadedProgramsStayClean) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["d"] = AccessControlList::Public(MakeDataSegment(2, 5));
  ASSERT_TRUE(machine.LoadProgramSource(".segment main\nstart: nop\n.segment d\n.word 1\n", acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(AuditClean(Audit(machine)));
}

TEST(Audit, DetectsMalformedSdw) {
  Machine machine;
  Process* p = machine.Login("alice");
  DescriptorSegment dseg(&machine.memory(), p->dbr);
  Sdw sdw;
  sdw.present = true;
  sdw.base = 0;
  sdw.bound = 4;
  sdw.access.flags = {true, false, false};
  sdw.access.brackets = Brackets{5, 2, 1};  // malformed
  dseg.Store(100, sdw);
  const auto findings = Audit(machine);
  EXPECT_FALSE(AuditClean(findings));
  bool found = false;
  for (const auto& f : findings) {
    found |= f.segno == 100 && f.message.find("malformed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Audit, DetectsExecutableStack) {
  Machine machine;
  Process* p = machine.Login("alice");
  DescriptorSegment dseg(&machine.memory(), p->dbr);
  Sdw sdw = *dseg.Fetch(kStackBaseSegno + 4);
  sdw.access.flags.execute = true;
  dseg.Store(kStackBaseSegno + 4, sdw);
  const auto findings = Audit(machine);
  EXPECT_FALSE(AuditClean(findings));
}

TEST(Audit, DetectsWrongStackBrackets) {
  Machine machine;
  Process* p = machine.Login("alice");
  DescriptorSegment dseg(&machine.memory(), p->dbr);
  Sdw sdw = *dseg.Fetch(kStackBaseSegno + 5);
  sdw.access.brackets = Brackets{7, 7, 7};  // ring-5 stack writable from 6-7
  dseg.Store(kStackBaseSegno + 5, sdw);
  EXPECT_FALSE(AuditClean(Audit(machine)));
}

TEST(Audit, DetectsDescriptorSegmentExposure) {
  Machine machine;
  Process* victim = machine.Login("alice");
  Process* attacker = machine.Login("mallory");
  // A rogue SDW in mallory's VM mapping alice's descriptor segment.
  DescriptorSegment dseg(&machine.memory(), attacker->dbr);
  Sdw sdw;
  sdw.present = true;
  sdw.base = victim->dbr.base;
  sdw.bound = 16;
  sdw.access = MakeDataSegment(4, 4);
  dseg.Store(200, sdw);
  const auto findings = Audit(machine);
  EXPECT_FALSE(AuditClean(findings));
  bool found = false;
  for (const auto& f : findings) {
    found |= f.message.find("descriptor-segment storage") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Audit, DetectsSharedStackStorage) {
  Machine machine;
  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  // Point bob's ring-4 stack at alice's.
  DescriptorSegment dseg_a(&machine.memory(), a->dbr);
  DescriptorSegment dseg_b(&machine.memory(), b->dbr);
  Sdw stolen = *dseg_a.Fetch(kStackBaseSegno + 4);
  dseg_b.Store(kStackBaseSegno + 4, stolen);
  const auto findings = Audit(machine);
  EXPECT_FALSE(AuditClean(findings));
  bool found = false;
  for (const auto& f : findings) {
    found |= f.message.find("stack storage shared") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Audit, WarnsOnGateExtensionWithoutGates) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  // Gate extension to ring 5, but the segment declares no gates.
  acls["odd"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 0));
  ASSERT_TRUE(machine.LoadProgramSource(".segment odd\n nop\n", acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  const auto findings = Audit(machine);
  EXPECT_TRUE(AuditClean(findings));  // warning, not error
  bool warned = false;
  for (const auto& f : findings) {
    warned |= f.severity == AuditSeverity::kWarning &&
              f.message.find("no gates") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Audit, WarnsOnWritableExecutable) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  SegmentAccess wx = MakeProcedureSegment(4, 4);
  wx.flags.write = true;
  acls["wx"] = AccessControlList::Public(wx);
  ASSERT_TRUE(machine.LoadProgramSource(".segment wx\n nop\n", acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  bool warned = false;
  for (const auto& f : Audit(machine)) {
    warned |= f.severity == AuditSeverity::kWarning &&
              f.message.find("writable and executable") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Audit, WarnsOnSoleOccupantViolation) {
  // Two different gated subsystems protected by ring 3 in the same
  // process's virtual memory.
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["subsys_a"] = AccessControlList::Public(MakeProcedureSegment(3, 3, 5, 1));
  acls["subsys_b"] = AccessControlList::Public(MakeProcedureSegment(3, 3, 5, 1));
  ASSERT_TRUE(machine.LoadProgramSource(
      ".segment subsys_a\n.gates 1\n nop\n.segment subsys_b\n.gates 1\n nop\n", acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  const auto findings = Audit(machine);
  EXPECT_TRUE(AuditClean(findings));  // warning, not error
  bool warned = false;
  for (const auto& f : findings) {
    warned |= f.message.find("sole-occupant") != std::string::npos;
  }
  EXPECT_TRUE(warned);

  // One subsystem per ring: no warning.
  Machine machine2;
  std::map<std::string, AccessControlList> acls2;
  acls2["subsys_a"] = AccessControlList::Public(MakeProcedureSegment(3, 3, 5, 1));
  acls2["subsys_b"] = AccessControlList::Public(MakeProcedureSegment(2, 2, 5, 1));
  EXPECT_TRUE(machine2.LoadProgramSource(
      ".segment subsys_a\n.gates 1\n nop\n.segment subsys_b\n.gates 1\n nop\n", acls2));
  Process* p2 = machine2.Login("alice");
  machine2.supervisor().InitiateAll(p2);
  for (const auto& f :
       AuditProtectionState(&machine2.memory(), machine2.registry(), machine2.supervisor())) {
    EXPECT_EQ(f.message.find("sole-occupant"), std::string::npos) << f.ToString();
  }
}

TEST(Audit, RegistryAclValidation) {
  Machine machine;
  machine.registry().CreateSegment("bad", 4, AccessControlList{});
  RegisteredSegment* seg = machine.registry().FindMutable("bad");
  AclEntry entry;
  entry.user = "alice";
  entry.access.brackets = Brackets{6, 3, 1};
  seg->acl.Add(entry);
  EXPECT_FALSE(AuditClean(Audit(machine)));
}

TEST(Audit, FindingToString) {
  const AuditFinding f{AuditSeverity::kError, 3, 17, "boom"};
  const std::string text = f.ToString();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("pid=3"), std::string::npos);
  EXPECT_NE(text.find("segno=17"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace rings

// Hardened trap handling: double-fault containment, the trap-storm
// watchdog, machine faults (out-of-range physical addresses) killing the
// process instead of the host, spurious missing-page absorption, and
// recovery from corrupted descriptor-cache entries.
#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"
#include "src/isa/instruction.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/page_table.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

constexpr char kSpinSource[] = R"(
        .segment spin
start:  ldai  0
loop:   adai  1
        sta   slot,*
        lda   limit
        sba   slot,*
        tze   done
        tmi   done
        lda   slot,*
        tra   loop
done:   lda   slot,*
        mme   0
slot:   .its  4, counters, 0
limit:  .word 200

        .segment counters
        .block 8
)";

std::map<std::string, AccessControlList> SpinAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["spin"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counters"] = AccessControlList::Public(MakeDataSegment(4, 4));
  return acls;
}

TEST(Hardening, DoubleFaultKillsProcessNotMachine) {
  constexpr char kSource[] = R"(
        .segment victim
vstart: mme   1

        .segment good
gstart: ldai  9
        mme   0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["victim"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["good"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* victim = machine.Login("alice");
  Process* good = machine.Login("bob");
  machine.supervisor().InitiateAll(victim);
  machine.supervisor().InitiateAll(good);
  ASSERT_TRUE(machine.Start(victim, "victim", "vstart", kUserRing));
  ASSERT_TRUE(machine.Start(good, "good", "gstart", kUserRing));

  // The MME handler models a supervisor path that itself faults while
  // servicing the trap: it raises a second trap and re-enters the trap
  // dispatcher.
  int nested_calls = 0;
  machine.supervisor().set_mme_handler([&machine, &nested_calls](const TrapState& trap) {
    if (trap.code != 1) {
      return false;  // default protocol for everyone else
    }
    ++nested_calls;
    machine.cpu().InjectTrap(TrapCause::kBoundsViolation);
    machine.supervisor().HandleTrap();
    return true;
  });

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(nested_calls, 1);
  EXPECT_EQ(victim->state, ProcessState::kKilled);
  EXPECT_EQ(victim->kill_cause, TrapCause::kDoubleFault);
  EXPECT_EQ(machine.cpu().counters().double_faults, 1u);
  // The machine survived and the other process ran to completion.
  EXPECT_EQ(good->state, ProcessState::kExited);
  EXPECT_EQ(good->exit_code, 9);
}

TEST(Hardening, TrapStormWatchdogKillsLivelockedProcess) {
  // A 100% spurious-missing-page rate makes every instruction trap
  // without retiring: absorb-and-resume alone would spin forever. The
  // watchdog must attribute the livelock and kill the process.
  MachineConfig config;
  config.fault.seed = 7;
  config.fault.set_rate(FaultSite::kSpuriousMissingPage, 1'000'000);
  Machine machine(config);
  ASSERT_TRUE(machine.LoadProgramSource(kSpinSource, SpinAcls()));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "spin", "start", kUserRing));

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kTrapStorm);
  EXPECT_EQ(machine.cpu().counters().trap_storm_kills, 1u);
  // The storm ran exactly to the configured limit before the kill.
  EXPECT_GE(machine.cpu().counters().spurious_pages_ignored + 1,
            static_cast<uint64_t>(machine.supervisor().options().trap_storm_limit));
}

TEST(Hardening, SpuriousMissingPageAbsorbed) {
  // A moderate spurious-trap rate against an ordinary (unpaged) workload:
  // every injected trap is absorbed and the program's result is
  // unaffected.
  MachineConfig config;
  config.fault.seed = 11;
  config.fault.set_rate(FaultSite::kSpuriousMissingPage, 20'000);
  Machine machine(config);
  ASSERT_TRUE(machine.LoadProgramSource(kSpinSource, SpinAcls()));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "spin", "start", kUserRing));

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 200);
  ASSERT_NE(machine.fault_injector(), nullptr);
  EXPECT_GT(machine.fault_injector()->injected(FaultSite::kSpuriousMissingPage), 0u);
  EXPECT_EQ(machine.cpu().counters().spurious_pages_ignored,
            machine.fault_injector()->injected(FaultSite::kSpuriousMissingPage));
}

TEST(Hardening, SpuriousMissingPageDoesNotRemapLivePages) {
  // Regression: the old missing-page handler installed a zero page
  // unconditionally, so a spurious trap against a resident page would
  // discard its contents. With paged *code*, that corruption is fatal to
  // the program; the hardened handler must leave resident pages alone.
  MachineConfig config;
  config.fault.seed = 13;
  config.fault.set_rate(FaultSite::kSpuriousMissingPage, 20'000);
  Machine machine(config);
  // A countdown loop long enough for spurious traps to hit the (resident)
  // code page mid-run, then exit 42.
  std::vector<Word> code = {
      EncodeInstruction(MakeIns(Opcode::kLdai, 400)),
      EncodeInstruction(MakeIns(Opcode::kAdai, -1)),
      EncodeInstruction(MakeIns(Opcode::kTnz, 1)),
      EncodeInstruction(MakeIns(Opcode::kAdai, 42)),
      EncodeInstruction(MakeIns(Opcode::kMme, 0)),
  };
  const auto segno = machine.registry().CreatePagedSegment(
      "pagedcode", kPageWords, AccessControlList::Public(MakeProcedureSegment(4, 4)),
      /*populate=*/false, code);
  ASSERT_TRUE(segno.has_value());
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  machine.registry().FindMutable("pagedcode")->symbols["start"] = 0;
  ASSERT_TRUE(machine.Start(p, "pagedcode", "start", kUserRing));

  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 42);
  // Every spurious trap against the resident code page was absorbed; none
  // caused the page to be resupplied (which would have zeroed the code).
  EXPECT_GT(machine.cpu().counters().spurious_pages_ignored, 0u);
  EXPECT_EQ(machine.cpu().counters().pages_supplied, 0u);
}

TEST(Hardening, MachineFaultKillsProcessNotHost) {
  // A hand-corrupted SDW whose base points past the end of the core
  // store: the reference escapes segment-level checks, the store latches
  // the fault, and the machine converts it into a kMachineFault that
  // kills only the offending process.
  constexpr char kSource[] = R"(
        .segment reader
rstart: lda   vp,*
        mme   0
vp:     .its  4, victim, 0

        .segment good
gstart: ldai  5
        mme   0

        .segment victim
        .block 16
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["good"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["victim"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* reader = machine.Login("alice");
  Process* good = machine.Login("bob");
  machine.supervisor().InitiateAll(reader);
  machine.supervisor().InitiateAll(good);
  ASSERT_TRUE(machine.Start(reader, "reader", "rstart", kUserRing));
  ASSERT_TRUE(machine.Start(good, "good", "gstart", kUserRing));

  // Corrupt the victim's SDW in the reader's descriptor segment (and the
  // authoritative copy only — this models descriptor-segment damage, not
  // cache damage, so there is nothing to recover from).
  const Segno victim_segno = machine.registry().Find("victim")->segno;
  DescriptorSegment dseg(&machine.memory(), reader->dbr);
  Sdw bad = *dseg.Fetch(victim_segno);
  bad.base = static_cast<AbsAddr>(machine.memory().size()) + 4096;
  dseg.Store(victim_segno, bad);

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(reader->state, ProcessState::kKilled);
  EXPECT_EQ(reader->kill_cause, TrapCause::kMachineFault);
  EXPECT_EQ(machine.cpu().counters().machine_faults, 1u);
  EXPECT_GE(machine.memory().fault_count(), 1u);
  EXPECT_FALSE(machine.memory().fault_pending());  // latch was consumed
  // The host never aborted and the other process is unaffected.
  EXPECT_EQ(good->state, ProcessState::kExited);
  EXPECT_EQ(good->exit_code, 5);
}

TEST(Hardening, CorruptedCachedSdwRecoveredByFlush) {
  // SDW corruption lands only in the processor's cached copy; the
  // descriptor segment stays intact. The supervisor detects the mismatch
  // on the resulting trap, flushes the entry, and resumes — the workload
  // finishes correctly despite a 10% per-fetch corruption rate.
  MachineConfig config;
  config.quantum = 50;  // frequent dispatches -> frequent cache refills
  config.fault.seed = 17;
  config.fault.set_rate(FaultSite::kSdwCorruption, 100'000);
  Machine machine(config);
  ASSERT_TRUE(machine.LoadProgramSource(kSpinSource, SpinAcls()));
  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  machine.supervisor().InitiateAll(a);
  machine.supervisor().InitiateAll(b);
  ASSERT_TRUE(machine.Start(a, "spin", "start", kUserRing));
  ASSERT_TRUE(machine.Start(b, "spin", "start", kUserRing));

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(a->state, ProcessState::kExited);
  EXPECT_EQ(b->state, ProcessState::kExited);
  ASSERT_NE(machine.fault_injector(), nullptr);
  EXPECT_GT(machine.fault_injector()->injected(FaultSite::kSdwCorruption), 0u);
  EXPECT_GT(machine.cpu().counters().sdw_recoveries, 0u);
}

TEST(Hardening, DroppedCacheEntriesAreInvisible) {
  // Cache-entry drops cost refetches but can never change behaviour.
  MachineConfig config;
  config.fault.seed = 19;
  config.fault.set_rate(FaultSite::kSdwCacheDrop, 100'000);
  Machine machine(config);
  ASSERT_TRUE(machine.LoadProgramSource(kSpinSource, SpinAcls()));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "spin", "start", kUserRing));
  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 200);
  EXPECT_GT(machine.fault_injector()->injected(FaultSite::kSdwCacheDrop), 0u);
}

TEST(Hardening, AssemblyErrorsReportedNotFatal) {
  Machine machine;
  std::string error;
  EXPECT_FALSE(machine.LoadProgramSource("        .segment x\n        bogus 1\n", {}, &error));
  EXPECT_FALSE(error.empty());
  // The machine remains usable after a failed load.
  ASSERT_TRUE(machine.LoadProgramSource(kSpinSource, SpinAcls()));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "spin", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
}

}  // namespace
}  // namespace rings

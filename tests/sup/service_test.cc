// Supervisor services beyond the basics: runtime segment creation via the
// g_mkseg gate, with the ring constraint, and actual use of the created
// segment through a guest-constructed indirect word.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// Requests a fresh segment (A = words, Q = spec), builds an indirect word
// addressing it at runtime (segno is only known after the call), writes
// 123 through it, reads it back, and exits with the value.
constexpr char kMakeSegmentProgram[] = R"(
        .segment main
start:  ldai  64             ; request 64 words
        ldqi  0              ; patched: packed access spec
        epp   pr2, gptr,*
        call  pr2|0          ; g_mkseg (gate 6)
        tmi   fail           ; A = -1 on refusal
        mpy   segshift       ; A = segno << 33 (the IND.SEGNO field)
        ora   ringbits       ; ring field = 4
        sta   slot,*         ; the constructed indirect word
        ldai  123
        sta   chain,*        ; store through it: new_segment[0] = 123
        lda   chain,*        ; and read it back
        mme   0
fail:   ldai  -1
        mme   0
segshift: .word 8589934592   ; 1 << 33
ringbits: .word 0x4000000000000000
slot:   .its  4, scratch, 0
chain:  .its  4, scratch, 0,*
gptr:   .its  4, sup_gates, 6

        .segment scratch
        .word 0
)";

int64_t RunMakeSegment(Word spec) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  EXPECT_TRUE(machine.LoadProgramSource(kMakeSegmentProgram, acls));
  // Patch the spec into the ldqi literal (fits in 18 bits).
  Word ins = *machine.PeekSegment("main", 1);
  machine.PokeSegment("main", 1, (ins & ~uint64_t{0x3FFFF}) | (spec & 0x3FFFF));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  return p->exit_code;
}

TEST(MakeSegment, CreatesUsableSegment) {
  EXPECT_EQ(RunMakeSegment(PackAccessSpec(true, true, false, 4, 4, 4)), 123);
}

TEST(MakeSegment, RefusesBracketsBelowCallerRing) {
  EXPECT_EQ(RunMakeSegment(PackAccessSpec(true, true, false, 0, 4, 4)), -1);
  EXPECT_EQ(RunMakeSegment(PackAccessSpec(true, true, false, 4, 4, 2)), -1);
}

TEST(MakeSegment, RefusesMalformedBrackets) {
  // r1 > r2 is not even expressible as well-formed: 5,4,4.
  EXPECT_EQ(RunMakeSegment(PackAccessSpec(true, true, false, 5, 4, 4)), -1);
}

TEST(MakeSegment, SegmentIsPrivateToCreator) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kMakeSegmentProgram, acls));
  Word ins = *machine.PeekSegment("main", 1);
  machine.PokeSegment("main", 1,
                      (ins & ~uint64_t{0x3FFFF}) | PackAccessSpec(true, true, false, 4, 4, 4));
  Process* alice = machine.Login("alice");
  machine.supervisor().InitiateAll(alice);
  ASSERT_TRUE(machine.Start(alice, "main", "start", kUserRing));
  machine.Run();
  ASSERT_EQ(alice->state, ProcessState::kExited);
  ASSERT_EQ(alice->exit_code, 123);

  // The created segment's ACL names only alice: bob cannot initiate it.
  const std::string created = StrFormat("proc%d_seg1", alice->pid);
  ASSERT_NE(machine.registry().Find(created), nullptr);
  Process* bob = machine.Login("bob");
  EXPECT_EQ(machine.supervisor().Initiate(bob, created), std::nullopt);
  EXPECT_TRUE(machine.supervisor().Initiate(alice, created).has_value());
}

TEST(MakeSegment, RefusesZeroAndOversize) {
  // Patch A (the word count) instead: 0 words.
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["scratch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kMakeSegmentProgram, acls));
  // ldai 64 is word 0; make it ldai 0.
  Word ins0 = *machine.PeekSegment("main", 0);
  machine.PokeSegment("main", 0, ins0 & ~uint64_t{0x3FFFF});
  Word ins1 = *machine.PeekSegment("main", 1);
  machine.PokeSegment("main", 1,
                      (ins1 & ~uint64_t{0x3FFFF}) | PackAccessSpec(true, true, false, 4, 4, 4));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, -1);
}

TEST(Services, GateSevenIsMkseg) {
  // Sanity: the gate segment really has 7 gates now.
  Machine machine;
  EXPECT_EQ(machine.registry().Find(kGateSegmentRing1)->gate_count, 7u);
}

}  // namespace
}  // namespace rings

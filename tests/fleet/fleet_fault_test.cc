// Fleet failure isolation under injected and hand-planted hardware
// faults: a machine that latches kMachineFault (or gets its processes
// killed by seeded fault injection) retires with a structured failure
// while every sibling machine completes normally — and fault-seeded
// fleets are exactly as deterministic across thread counts as healthy
// ones, because each machine owns its injector and RNG stream.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/mem/descriptor_segment.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

constexpr char kCallLoopSource[] = R"(
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 200
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

std::unique_ptr<Machine> MakeCallLoopMachine(const MachineConfig& config) {
  auto machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 7, 1));
  if (!machine->LoadProgramSource(kCallLoopSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("caller");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// The hardening-test recipe: corrupt the victim's SDW base past the end
// of the core store, so the first reference latches a physical fault and
// the machine converts it into kMachineFault against the process.
std::unique_ptr<Machine> MakeDoomedMachine() {
  auto machine = std::make_unique<Machine>(MachineConfig{});
  constexpr char kSource[] = R"(
        .segment reader
rstart: lda   vp,*
        mme   0
vp:     .its  4, victim, 0

        .segment victim
        .block 16
)";
  std::map<std::string, AccessControlList> acls;
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["victim"] = AccessControlList::Public(MakeDataSegment(4, 4));
  if (!machine->LoadProgramSource(kSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* reader = machine->Login("doomed");
  machine->supervisor().InitiateAll(reader);
  if (!machine->Start(reader, "reader", "rstart", kUserRing)) {
    return nullptr;
  }
  const Segno victim_segno = machine->registry().Find("victim")->segno;
  DescriptorSegment dseg(&machine->memory(), reader->dbr);
  Sdw bad = *dseg.Fetch(victim_segno);
  bad.base = static_cast<AbsAddr>(machine->memory().size()) + 4096;
  dseg.Store(victim_segno, bad);
  return machine;
}

TEST(FleetFault, MachineFaultIsIsolatedToItsMachine) {
  FleetConfig config;
  config.threads = 4;
  config.slice_cycles = 1'000;
  Fleet fleet(config);
  fleet.Add("healthy-0", [] { return MakeCallLoopMachine(MachineConfig{}); });
  fleet.Add("doomed", [] { return MakeDoomedMachine(); });
  fleet.Add("healthy-1", [] { return MakeCallLoopMachine(MachineConfig{}); });
  fleet.Add("healthy-2", [] { return MakeCallLoopMachine(MachineConfig{}); });
  const FleetStats stats = fleet.Run();

  EXPECT_EQ(stats.machines, 4u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 1u);

  const MachineResult& doomed = fleet.results()[1];
  EXPECT_EQ(doomed.outcome, MachineOutcome::kFailed);
  EXPECT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.exit_code, 111);
  EXPECT_NE(doomed.failure.find("machine_fault"), std::string::npos) << doomed.failure;
  EXPECT_EQ(doomed.counters.machine_faults, 1u);
  ASSERT_EQ(doomed.process_status.size(), 1u);
  EXPECT_NE(doomed.process_status[0].find("state=killed"), std::string::npos);

  for (const size_t sibling : {size_t{0}, size_t{2}, size_t{3}}) {
    SCOPED_TRACE(fleet.results()[sibling].name);
    EXPECT_TRUE(fleet.results()[sibling].ok());
    EXPECT_EQ(fleet.results()[sibling].exit_code, 0);
    EXPECT_EQ(fleet.results()[sibling].counters.machine_faults, 0u);
  }
  EXPECT_EQ(fleet.ExitCode(), 111);
}

TEST(FleetFault, SeededInjectionIsDeterministicAcrossThreadCounts) {
  // Each machine owns a fault injector seeded from its index. Whatever an
  // injected fault does to a machine — absorbed by SDW recovery, or fatal
  // — the outcome must be the same fleet-wide at every thread count and
  // standalone.
  const auto add_jobs = [](Fleet* fleet) {
    for (uint64_t i = 0; i < 4; ++i) {
      MachineConfig config;
      config.fault = FaultConfig::Uniform(/*seed=*/0x5eed + i, /*ppm=*/2'000);
      fleet->Add(std::string("seeded-") + std::to_string(i),
                 [config] { return MakeCallLoopMachine(config); });
    }
  };

  std::vector<std::vector<MachineResult>> runs;
  for (const int threads : {1, 4, 8}) {
    FleetConfig config;
    config.threads = threads;
    config.slice_cycles = 1'500;
    Fleet fleet(config);
    add_jobs(&fleet);
    fleet.Run();
    runs.push_back(fleet.results());
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    for (size_t m = 0; m < runs[0].size(); ++m) {
      SCOPED_TRACE(runs[0][m].name);
      EXPECT_EQ(runs[run][m].fingerprint, runs[0][m].fingerprint);
      EXPECT_EQ(runs[run][m].cycles, runs[0][m].cycles);
      EXPECT_EQ(runs[run][m].exit_code, runs[0][m].exit_code);
      EXPECT_EQ(runs[run][m].process_status, runs[0][m].process_status);
    }
  }

  // Standalone replay of each seeded machine through one Machine::Run.
  for (uint64_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    MachineConfig config;
    config.fault = FaultConfig::Uniform(0x5eed + i, 2'000);
    const std::unique_ptr<Machine> standalone = MakeCallLoopMachine(config);
    ASSERT_NE(standalone, nullptr);
    const RunResult run = standalone->Run(100'000'000);
    EXPECT_TRUE(run.idle);
    EXPECT_EQ(runs[0][i].fingerprint, FingerprintMachine(*standalone));
    EXPECT_EQ(runs[0][i].cycles, standalone->cpu().cycles());
  }
}

}  // namespace
}  // namespace rings

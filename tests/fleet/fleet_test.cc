// Fleet engine determinism and bookkeeping. The headline assertions: a
// machine's final fingerprint, counters, and trap sequence are
// bit-identical whether the fleet runs on 1, 4, or 8 worker threads, and
// identical again to the same machine run standalone through a single
// Machine::Run call; and the fleet's structured results (outcome, exit
// code, aggregate stats) are faithful.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/mem/page_table.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// --- terminating guest workloads -------------------------------------------

// Gate-crossing loop: `iters` downward calls through a ring-1 gate, then
// a clean exit with A == 0.
constexpr char kCallLoopSource[] = R"(
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 300
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

std::unique_ptr<Machine> MakeCallLoopMachine(bool enable_trace) {
  auto machine = std::make_unique<Machine>(MachineConfig{});
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 7, 1));
  if (!machine->LoadProgramSource(kCallLoopSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(enable_trace);
  Process* p = machine->Login("caller");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// Demand-paged counter: pounds two pages of an initially absent paged
// segment (every fill is a supervisor service), then exits with A == 0.
constexpr char kPagerSource[] = R"(
        .segment pager
pstart: aos   cnt,*
        lda   far,*
        adai  1
        sta   far,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        mme   0
plim:   .word 400
cnt:    .its  4, bigdata, 10
far:    .its  4, bigdata, 1034
)";

std::unique_ptr<Machine> MakePagerMachine(bool enable_trace) {
  auto machine = std::make_unique<Machine>(MachineConfig{});
  if (!machine->registry()
           .CreatePagedSegment("bigdata", 2 * kPageWords,
                               AccessControlList::Public(MakeDataSegment(4, 4)),
                               /*populate=*/false)
           .has_value()) {
    return nullptr;
  }
  std::map<std::string, AccessControlList> acls;
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  if (!machine->LoadProgramSource(kPagerSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(enable_trace);
  Process* p = machine->Login("pager");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "pager", "pstart", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// Two processes time-slicing inside one machine, so per-machine
// scheduling and timer-runout traps are exercised under the fleet.
constexpr char kPairSource[] = R"(
        .segment spin
sstart: aos   scnt,*
        lda   scnt,*
        sba   slim
        tmi   sstart
        mme   0
slim:   .word 600
scnt:   .its  4, shared, 0

        .segment walk
wstart: aos   wcnt,*
        lda   wcnt,*
        sba   wlim
        tmi   wstart
        mme   0
wlim:   .word 500
wcnt:   .its  4, shared, 1

        .segment shared
        .block 2
)";

std::unique_ptr<Machine> MakePairMachine(bool enable_trace) {
  MachineConfig config;
  config.quantum = 300;  // frequent timer runouts
  auto machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["spin"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["walk"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["shared"] = AccessControlList::Public(MakeDataSegment(4, 4));
  if (!machine->LoadProgramSource(kPairSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(enable_trace);
  const struct {
    const char* segment;
    const char* entry;
  } kStarts[] = {{"spin", "sstart"}, {"walk", "wstart"}};
  for (const auto& s : kStarts) {
    Process* p = machine->Login(s.segment);
    machine->supervisor().InitiateAll(p);
    if (!machine->Start(p, s.segment, s.entry, kUserRing)) {
      return nullptr;
    }
  }
  return machine;
}

// The mixed six-machine fleet every determinism test runs.
void AddMixedJobs(Fleet* fleet, bool enable_trace) {
  fleet->Add("call-a", [enable_trace] { return MakeCallLoopMachine(enable_trace); });
  fleet->Add("pager-a", [enable_trace] { return MakePagerMachine(enable_trace); });
  fleet->Add("pair-a", [enable_trace] { return MakePairMachine(enable_trace); });
  fleet->Add("call-b", [enable_trace] { return MakeCallLoopMachine(enable_trace); });
  fleet->Add("pager-b", [enable_trace] { return MakePagerMachine(enable_trace); });
  fleet->Add("pair-b", [enable_trace] { return MakePairMachine(enable_trace); });
}

void ExpectCountersIdentical(const Counters& a, const Counters& b, bool include_host_only) {
  Counters::ForEachField(
      [&a, &b, include_host_only](const char* name, uint64_t Counters::* member,
                                  bool host_only) {
        if (host_only && !include_host_only) {
          return;
        }
        // Shared-decode build attribution is first-acquirer-wins in the
        // process-wide registry: which of two machines running the same
        // program pays the build depends on worker scheduling. The fleet
        // AGGREGATE build count is deterministic (one per distinct live
        // program); the per-machine split is the one host counter that
        // is not, so it is the one exclusion here.
        if (std::string_view(name) == "shared_decode_builds") {
          return;
        }
        EXPECT_EQ(a.*member, b.*member) << "counter " << name;
      });
  for (size_t i = 0; i < a.traps.size(); ++i) {
    EXPECT_EQ(a.traps[i], b.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

// ---------------------------------------------------------------------------

TEST(Fleet, DeterministicAcrossThreadCounts) {
  std::vector<std::vector<MachineResult>> runs;
  for (const int threads : {1, 4, 8}) {
    FleetConfig config;
    config.threads = threads;
    config.slice_cycles = 2'000;  // many quanta per machine, lots of interleaving
    Fleet fleet(config);
    AddMixedJobs(&fleet, /*enable_trace=*/true);
    const FleetStats stats = fleet.Run();
    EXPECT_EQ(stats.completed, fleet.size()) << stats.ToString();
    runs.push_back(fleet.results());
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t m = 0; m < runs[0].size(); ++m) {
      SCOPED_TRACE(runs[0][m].name);
      // The whole simulated face — including host-only cache statistics,
      // because the quantum sequence is identical no matter which worker
      // runs each slice.
      EXPECT_EQ(runs[run][m].fingerprint, runs[0][m].fingerprint);
      EXPECT_EQ(runs[run][m].cycles, runs[0][m].cycles);
      EXPECT_EQ(runs[run][m].instructions, runs[0][m].instructions);
      EXPECT_EQ(runs[run][m].exit_code, runs[0][m].exit_code);
      EXPECT_EQ(runs[run][m].quanta, runs[0][m].quanta);
      EXPECT_EQ(runs[run][m].process_status, runs[0][m].process_status);
      EXPECT_EQ(runs[run][m].tty, runs[0][m].tty);
      ExpectCountersIdentical(runs[run][m].counters, runs[0][m].counters,
                              /*include_host_only=*/true);
    }
  }
}

TEST(Fleet, MatchesStandaloneMachineRun) {
  FleetConfig config;
  config.threads = 4;
  config.slice_cycles = 3'000;
  Fleet fleet(config);
  AddMixedJobs(&fleet, /*enable_trace=*/true);
  const FleetStats stats = fleet.Run();
  ASSERT_EQ(stats.completed, fleet.size()) << stats.ToString();

  std::unique_ptr<Machine> (*const factories[])(bool) = {
      MakeCallLoopMachine, MakePagerMachine, MakePairMachine,
      MakeCallLoopMachine, MakePagerMachine, MakePairMachine,
  };
  for (size_t m = 0; m < fleet.results().size(); ++m) {
    SCOPED_TRACE(fleet.results()[m].name);
    const std::unique_ptr<Machine> standalone = factories[m](/*enable_trace=*/true);
    ASSERT_NE(standalone, nullptr);
    const RunResult run = standalone->Run(100'000'000);
    EXPECT_TRUE(run.idle);
    // Architectural identity is exact. (Host-only cache statistics may
    // legally differ: the fleet's slice boundaries bail superblocks the
    // uninterrupted standalone run commits.)
    EXPECT_EQ(fleet.results()[m].fingerprint, FingerprintMachine(*standalone));
    EXPECT_EQ(fleet.results()[m].cycles, standalone->cpu().cycles());
    EXPECT_EQ(fleet.results()[m].instructions, standalone->cpu().counters().instructions);
    ExpectCountersIdentical(fleet.results()[m].counters, standalone->cpu().counters(),
                            /*include_host_only=*/false);
  }
}

TEST(Fleet, AggregateStatsAreFaithful) {
  FleetConfig config;
  config.threads = 4;
  Fleet fleet(config);
  AddMixedJobs(&fleet, /*enable_trace=*/false);
  const FleetStats stats = fleet.Run();

  EXPECT_EQ(stats.machines, fleet.size());
  EXPECT_EQ(stats.completed, fleet.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.budget_exhausted, 0u);
  EXPECT_EQ(fleet.ExitCode(), 0);

  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t quanta = 0;
  for (const MachineResult& result : fleet.results()) {
    EXPECT_TRUE(result.ok()) << result.ToString();
    instructions += result.instructions;
    cycles += result.cycles;
    quanta += result.quanta;
  }
  EXPECT_EQ(stats.total_instructions, instructions);
  EXPECT_EQ(stats.total_cycles, cycles);
  EXPECT_EQ(stats.aggregate.instructions, instructions);
  EXPECT_GT(stats.total_instructions, 0u);
  EXPECT_GT(stats.instructions_per_second, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);

  ASSERT_EQ(stats.workers.size(), 4u);
  uint64_t worker_quanta = 0;
  for (const WorkerStats& w : stats.workers) {
    worker_quanta += w.quanta;
  }
  EXPECT_EQ(worker_quanta, quanta);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(Fleet, NonzeroGuestExitCodePropagates) {
  Fleet fleet(FleetConfig{});
  fleet.Add("exits-seven", [] {
    auto machine = std::make_unique<Machine>(MachineConfig{});
    std::map<std::string, AccessControlList> acls;
    acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
    if (!machine->LoadProgramSource(R"(
        .segment main
start:  ldai  7
        mme   0
)",
                                    acls)) {
      return std::unique_ptr<Machine>();
    }
    Process* p = machine->Login("seven");
    machine->supervisor().InitiateAll(p);
    machine->Start(p, "main", "start", kUserRing);
    return machine;
  });
  fleet.Add("exits-zero", [] { return MakeCallLoopMachine(false); });
  fleet.Run();

  // A clean exit with a nonzero code is a *completed* machine but a
  // nonzero fleet exit status — exactly like a Unix process.
  EXPECT_TRUE(fleet.results()[0].ok());
  EXPECT_EQ(fleet.results()[0].exit_code, 7);
  EXPECT_EQ(fleet.results()[1].exit_code, 0);
  EXPECT_EQ(fleet.ExitCode(), 7);
}

TEST(Fleet, BudgetExhaustionRetiresWithNonzeroStatus) {
  Fleet fleet(FleetConfig{});
  FleetJob job;
  job.name = "spinner";
  job.max_cycles = 20'000;  // far less than the infinite loop wants
  job.factory = [] {
    auto machine = std::make_unique<Machine>(MachineConfig{});
    std::map<std::string, AccessControlList> acls;
    acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
    if (!machine->LoadProgramSource(R"(
        .segment main
start:  tra   start
)",
                                    acls)) {
      return std::unique_ptr<Machine>();
    }
    Process* p = machine->Login("spin");
    machine->supervisor().InitiateAll(p);
    machine->Start(p, "main", "start", kUserRing);
    return machine;
  };
  fleet.Add(std::move(job));
  const FleetStats stats = fleet.Run();

  EXPECT_EQ(stats.budget_exhausted, 1u);
  const MachineResult& result = fleet.results()[0];
  EXPECT_EQ(result.outcome, MachineOutcome::kBudgetExhausted);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.exit_code, 111);
  EXPECT_GE(result.cycles, 20'000u);
  EXPECT_NE(fleet.ExitCode(), 0);
}

TEST(Fleet, ConstructionFailureIsIsolated) {
  FleetConfig config;
  config.threads = 2;
  Fleet fleet(config);
  fleet.Add("stillborn", [] { return std::unique_ptr<Machine>(); });
  fleet.Add("healthy", [] { return MakeCallLoopMachine(false); });
  const FleetStats stats = fleet.Run();

  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(fleet.results()[0].outcome, MachineOutcome::kFailed);
  EXPECT_EQ(fleet.results()[0].failure, "machine construction failed");
  EXPECT_EQ(fleet.results()[0].exit_code, 111);
  EXPECT_TRUE(fleet.results()[1].ok());
  EXPECT_EQ(fleet.ExitCode(), 111);
}

}  // namespace
}  // namespace rings

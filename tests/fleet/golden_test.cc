// Golden-image cloning. The headline assertion: a machine spawned by
// Machine::CloneFrom from a sealed golden image runs the exact trajectory
// — fingerprint, counters, trap sequence, tty — a fresh boot+load of the
// same program would, across engine configurations and fleet thread
// counts; and the GoldenImageRegistry boots each program once, with Pin
// keeping the image alive across machine retirement.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/fleet/golden_image.h"
#include "src/mem/page_table.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// Gate-crossing loop: downward calls through a ring-1 gate, clean exit.
constexpr char kCallLoopSource[] = R"(
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 300
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

std::unique_ptr<Machine> MakeCallLoopMachine(MachineConfig config) {
  auto machine = std::make_unique<Machine>(config);
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counter"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["target"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 7, 1));
  if (!machine->LoadProgramSource(kCallLoopSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("caller");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "main", "start", kUserRing)) {
    return nullptr;
  }
  return machine;
}

// Demand-paged counter: every page fill is a store into a shared frame
// performed inside the supervisor's trap handler.
constexpr char kPagerSource[] = R"(
        .segment pager
pstart: aos   cnt,*
        lda   far,*
        adai  1
        sta   far,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        mme   0
plim:   .word 400
cnt:    .its  4, bigdata, 10
far:    .its  4, bigdata, 1034
)";

std::unique_ptr<Machine> MakePagerMachine(MachineConfig config) {
  auto machine = std::make_unique<Machine>(config);
  if (!machine->registry()
           .CreatePagedSegment("bigdata", 2 * kPageWords,
                               AccessControlList::Public(MakeDataSegment(4, 4)),
                               /*populate=*/false)
           .has_value()) {
    return nullptr;
  }
  std::map<std::string, AccessControlList> acls;
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  if (!machine->LoadProgramSource(kPagerSource, acls)) {
    return nullptr;
  }
  machine->trace().set_enabled(true);
  Process* p = machine->Login("pager");
  machine->supervisor().InitiateAll(p);
  if (!machine->Start(p, "pager", "pstart", kUserRing)) {
    return nullptr;
  }
  return machine;
}

void ExpectArchCountersIdentical(const Counters& a, const Counters& b) {
  Counters::ForEachField(
      [&a, &b](const char* name, uint64_t Counters::* member, bool host_only) {
        if (host_only) {
          return;  // clone host caches start cold by design
        }
        EXPECT_EQ(a.*member, b.*member) << "counter " << name;
      });
  for (size_t i = 0; i < a.traps.size(); ++i) {
    EXPECT_EQ(a.traps[i], b.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

void ExpectSameTrajectory(Machine* cloned, Machine* fresh) {
  const RunResult clone_run = cloned->Run(100'000'000);
  const RunResult fresh_run = fresh->Run(100'000'000);
  EXPECT_TRUE(clone_run.idle);
  EXPECT_TRUE(fresh_run.idle);
  EXPECT_EQ(FingerprintMachine(*cloned), FingerprintMachine(*fresh));
  EXPECT_EQ(cloned->cpu().cycles(), fresh->cpu().cycles());
  EXPECT_EQ(cloned->TtyOutput(), fresh->TtyOutput());
  ExpectArchCountersIdentical(cloned->cpu().counters(), fresh->cpu().counters());
}

// --- clone == fresh boot, across engine configurations ---------------------

struct EngineCase {
  const char* name;
  bool fast_path;
  bool block_engine;
  bool chain;
};

constexpr EngineCase kEngines[] = {
    {"slow", false, false, false},
    {"fast", true, false, false},
    {"block", true, true, true},
};

TEST(GoldenImage, CloneMatchesFreshBootAcrossEngines) {
  for (const EngineCase& engine : kEngines) {
    SCOPED_TRACE(engine.name);
    MachineConfig config;
    config.fast_path = engine.fast_path;
    config.block_engine = engine.block_engine;
    config.chain = engine.chain;
    const std::unique_ptr<Machine> golden = MakeCallLoopMachine(config);
    ASSERT_NE(golden, nullptr);
    golden->memory().SealForCloning();
    const std::unique_ptr<Machine> clone = Machine::CloneFrom(*golden);
    ASSERT_NE(clone, nullptr);
    const std::unique_ptr<Machine> fresh = MakeCallLoopMachine(config);
    ASSERT_NE(fresh, nullptr);
    ExpectSameTrajectory(clone.get(), fresh.get());
  }
}

TEST(GoldenImage, TrapHandlerStoresIntoSharedPagesStayPrivate) {
  // Demand paging fills pages from inside the trap handler; those stores
  // must privatize the clone's frames, not write through to the golden.
  const std::unique_ptr<Machine> golden = MakePagerMachine(MachineConfig{});
  ASSERT_NE(golden, nullptr);
  golden->memory().SealForCloning();
  const uint64_t golden_fp_before = FingerprintMachine(*golden);
  const uint64_t golden_priv_before = golden->memory().frames_privatized();

  const std::unique_ptr<Machine> clone = Machine::CloneFrom(*golden);
  ASSERT_NE(clone, nullptr);
  const std::unique_ptr<Machine> fresh = MakePagerMachine(MachineConfig{});
  ASSERT_NE(fresh, nullptr);
  ExpectSameTrajectory(clone.get(), fresh.get());

  // The clone privatized frames while running; the golden is untouched
  // (its pre-seal boot writes are the only privatizations it ever made).
  EXPECT_GT(clone->memory().frames_privatized(), 0u);
  EXPECT_EQ(golden->memory().frames_privatized(), golden_priv_before);
  EXPECT_EQ(FingerprintMachine(*golden), golden_fp_before);
}

TEST(GoldenImage, CloneOfCloneMidRunContinuesIdentically) {
  // Run two identical machines to the same mid-point; clone one there and
  // let the clone finish against the other's finish.
  const std::unique_ptr<Machine> a = MakeCallLoopMachine(MachineConfig{});
  const std::unique_ptr<Machine> b = MakeCallLoopMachine(MachineConfig{});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->Run(5'000);
  b->Run(5'000);
  ASSERT_EQ(FingerprintMachine(*a), FingerprintMachine(*b));

  // Clone-of-clone chain from the mid-run state.
  const std::unique_ptr<Machine> c1 = Machine::CloneFrom(*a);
  ASSERT_NE(c1, nullptr);
  const std::unique_ptr<Machine> c2 = Machine::CloneFrom(*c1);
  ASSERT_NE(c2, nullptr);
  ASSERT_EQ(FingerprintMachine(*c2), FingerprintMachine(*b));

  const RunResult clone_run = c2->Run(100'000'000);
  const RunResult fresh_run = b->Run(100'000'000);
  EXPECT_TRUE(clone_run.idle);
  EXPECT_TRUE(fresh_run.idle);
  EXPECT_EQ(FingerprintMachine(*c2), FingerprintMachine(*b));
  ExpectArchCountersIdentical(c2->cpu().counters(), b->cpu().counters());
}

// --- registry ---------------------------------------------------------------

TEST(GoldenImageRegistry, BootsOncePerProgramAndExpiresWithUsers) {
  GoldenImageRegistry& registry = GoldenImageRegistry::Instance();
  const uint64_t identity = 0xDEADBEEFDEADBEEFull;  // synthetic key for this test

  bool built_first = false;
  std::shared_ptr<const GoldenImage> image = registry.Acquire(
      identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &built_first);
  ASSERT_NE(image, nullptr);
  EXPECT_TRUE(built_first);

  bool built_second = true;
  std::shared_ptr<const GoldenImage> again = registry.Acquire(
      identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &built_second);
  EXPECT_EQ(again.get(), image.get());
  EXPECT_FALSE(built_second);

  // Spawns from both handles are runnable and identical.
  const std::unique_ptr<Machine> m1 = image->Spawn();
  const std::unique_ptr<Machine> m2 = again->Spawn();
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(FingerprintMachine(*m1), FingerprintMachine(*m2));

  again.reset();
  EXPECT_GE(registry.LiveImages(), 1u);
  image.reset();
  // All user references gone, no pin: the image expires.
  const size_t live = registry.LiveImages();
  bool rebuilt = false;
  std::shared_ptr<const GoldenImage> fresh = registry.Acquire(
      identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &rebuilt);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(rebuilt) << "image should have expired; " << live << " live images";
}

TEST(GoldenImageRegistry, FailedBootReturnsNull) {
  bool built = true;
  const std::shared_ptr<const GoldenImage> image = GoldenImageRegistry::Instance().Acquire(
      0x1234u, [] { return std::unique_ptr<Machine>(); }, &built);
  EXPECT_EQ(image, nullptr);
}

TEST(GoldenImageRegistry, PinKeepsImageAliveAcrossRetirement) {
  GoldenImageRegistry& registry = GoldenImageRegistry::Instance();
  const uint64_t identity = 0xC0FFEE00C0FFEE00ull;
  {
    const GoldenImageRegistry::Pin pin;
    bool built = false;
    std::shared_ptr<const GoldenImage> image = registry.Acquire(
        identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &built);
    ASSERT_NE(image, nullptr);
    EXPECT_TRUE(built);
    image.reset();  // golden image outlives its last user while pinned
    bool rebuilt = true;
    std::shared_ptr<const GoldenImage> again = registry.Acquire(
        identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &rebuilt);
    ASSERT_NE(again, nullptr);
    EXPECT_FALSE(rebuilt);
  }
  // Pin released: retained references dropped, the image expires.
  bool rebuilt = false;
  const std::shared_ptr<const GoldenImage> after = registry.Acquire(
      identity, [] { return MakeCallLoopMachine(MachineConfig{}); }, &rebuilt);
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(rebuilt);
}

// --- fleet spawning ---------------------------------------------------------

TEST(GoldenImage, FleetSpawnedFromGoldenMatchesConstructLoadAcrossThreads) {
  // Reference: a construct+load fleet on one thread.
  FleetConfig ref_config;
  ref_config.threads = 1;
  ref_config.slice_cycles = 2'000;
  Fleet reference(ref_config);
  for (int i = 0; i < 4; ++i) {
    reference.Add("cold-" + std::to_string(i),
                  [] { return MakeCallLoopMachine(MachineConfig{}); });
  }
  const FleetStats ref_stats = reference.Run();
  ASSERT_EQ(ref_stats.completed, reference.size()) << ref_stats.ToString();

  for (const int threads : {1, 4, 8}) {
    SCOPED_TRACE(threads);
    const GoldenImageRegistry::Pin pin;
    std::shared_ptr<const GoldenImage> golden = GoldenImageRegistry::Instance().Acquire(
        0x601Du, [] { return MakeCallLoopMachine(MachineConfig{}); });
    ASSERT_NE(golden, nullptr);

    FleetConfig config;
    config.threads = threads;
    config.slice_cycles = 2'000;
    Fleet fleet(config);
    for (int i = 0; i < 4; ++i) {
      fleet.Add("clone-" + std::to_string(i), [golden] { return golden->Spawn(); });
    }
    const FleetStats stats = fleet.Run();
    ASSERT_EQ(stats.completed, fleet.size()) << stats.ToString();
    for (size_t m = 0; m < fleet.results().size(); ++m) {
      SCOPED_TRACE(fleet.results()[m].name);
      EXPECT_EQ(fleet.results()[m].fingerprint, reference.results()[m].fingerprint);
      EXPECT_EQ(fleet.results()[m].cycles, reference.results()[m].cycles);
      EXPECT_EQ(fleet.results()[m].instructions, reference.results()[m].instructions);
      EXPECT_EQ(fleet.results()[m].exit_code, reference.results()[m].exit_code);
      EXPECT_EQ(fleet.results()[m].tty, reference.results()[m].tty);
      ExpectArchCountersIdentical(fleet.results()[m].counters, reference.results()[m].counters);
    }
  }
}

// --- fault injection --------------------------------------------------------

TEST(GoldenImageFault, CloneReplaysInjectedFaultStreamIdentically) {
  // Page privatization under fault injection: the injected stream is part
  // of the machine state CloneFrom copies, so clone and fresh boot see
  // the same faults at the same cycles and land on the same fingerprint.
  MachineConfig config;
  config.fault = FaultConfig::Uniform(/*seed=*/42, /*ppm=*/400);
  const std::unique_ptr<Machine> golden = MakePagerMachine(config);
  ASSERT_NE(golden, nullptr);
  golden->memory().SealForCloning();
  const std::unique_ptr<Machine> clone = Machine::CloneFrom(*golden);
  ASSERT_NE(clone, nullptr);
  ASSERT_NE(clone->fault_injector(), nullptr);
  const std::unique_ptr<Machine> fresh = MakePagerMachine(config);
  ASSERT_NE(fresh, nullptr);

  clone->Run(100'000'000);
  fresh->Run(100'000'000);
  EXPECT_EQ(FingerprintMachine(*clone), FingerprintMachine(*fresh));
  ExpectArchCountersIdentical(clone->cpu().counters(), fresh->cpu().counters());
  ASSERT_NE(fresh->fault_injector(), nullptr);
  EXPECT_EQ(clone->fault_injector()->events().size(), fresh->fault_injector()->events().size());
  EXPECT_EQ(clone->fault_injector()->sequence(), fresh->fault_injector()->sequence());
}

}  // namespace
}  // namespace rings

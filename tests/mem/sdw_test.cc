// Figure 3 storage formats: SDW encode/decode round-trips and supervisor
// validation rules.
#include "src/mem/sdw.h"

#include <gtest/gtest.h>

#include "src/base/xorshift.h"

namespace rings {
namespace {

Sdw SampleSdw() {
  Sdw sdw;
  sdw.present = true;
  sdw.base = 0x123456789;
  sdw.bound = 4096;
  sdw.access = MakeProcedureSegment(2, 4, 6, 3);
  return sdw;
}

TEST(SdwCodec, RoundTrip) {
  const Sdw sdw = SampleSdw();
  Word w0 = 0;
  Word w1 = 0;
  EncodeSdw(sdw, &w0, &w1);
  EXPECT_EQ(DecodeSdw(w0, w1), sdw);
}

TEST(SdwCodec, AbsentSegment) {
  Sdw sdw;
  sdw.present = false;
  Word w0 = 0;
  Word w1 = 0;
  EncodeSdw(sdw, &w0, &w1);
  EXPECT_FALSE(DecodeSdw(w0, w1).present);
}

TEST(SdwCodec, MaximumFieldValues) {
  Sdw sdw;
  sdw.present = true;
  sdw.base = (uint64_t{1} << 40) - 1;
  sdw.bound = kMaxSegmentWords;
  sdw.access.flags = {true, true, true};
  sdw.access.brackets = {7, 7, 7};
  sdw.access.gate_count = 0xFFFFFFFF;
  Word w0 = 0;
  Word w1 = 0;
  EncodeSdw(sdw, &w0, &w1);
  EXPECT_EQ(DecodeSdw(w0, w1), sdw);
}

TEST(SdwCodec, RandomizedRoundTrip) {
  Xorshift rng(99);
  for (int i = 0; i < 500; ++i) {
    Sdw sdw;
    sdw.present = rng.Chance(1, 2);
    sdw.base = rng.Below(uint64_t{1} << 40);
    sdw.bound = rng.Below(kMaxSegmentWords + 1);
    sdw.access.flags = {rng.Chance(1, 2), rng.Chance(1, 2), rng.Chance(1, 2)};
    const Ring r1 = static_cast<Ring>(rng.Below(kRingCount));
    const Ring r2 = static_cast<Ring>(rng.Between(r1, kMaxRing));
    const Ring r3 = static_cast<Ring>(rng.Between(r2, kMaxRing));
    sdw.access.brackets = {r1, r2, r3};
    sdw.access.gate_count = static_cast<uint32_t>(rng.Below(1 << 20));
    Word w0 = 0;
    Word w1 = 0;
    EncodeSdw(sdw, &w0, &w1);
    EXPECT_EQ(DecodeSdw(w0, w1), sdw);
  }
}

TEST(ValidateSdw, AcceptsWellFormed) {
  EXPECT_EQ(ValidateSdw(SampleSdw()), std::nullopt);
}

TEST(ValidateSdw, AbsentIsAlwaysValid) {
  Sdw sdw;
  sdw.present = false;
  sdw.access.brackets = {5, 2, 0};  // garbage, but absent
  EXPECT_EQ(ValidateSdw(sdw), std::nullopt);
}

TEST(ValidateSdw, RejectsMalformedBrackets) {
  Sdw sdw = SampleSdw();
  sdw.access.brackets = {5, 2, 7};
  EXPECT_NE(ValidateSdw(sdw), std::nullopt);
}

TEST(ValidateSdw, RejectsGateCountBeyondBound) {
  Sdw sdw = SampleSdw();
  sdw.bound = 2;
  sdw.access.gate_count = 3;
  EXPECT_NE(ValidateSdw(sdw), std::nullopt);
}

TEST(ValidateSdw, RejectsOversizeBound) {
  Sdw sdw = SampleSdw();
  sdw.bound = kMaxSegmentWords + 1;
  EXPECT_NE(ValidateSdw(sdw), std::nullopt);
}

}  // namespace
}  // namespace rings

// PTW encoding round-trips and PageCount edge cases. The PTW is the word
// the software TLB memoizes its translations from, so its encoding must
// be exact for every representable frame address.
#include "src/mem/page_table.h"

#include <gtest/gtest.h>

#include "src/mem/physical_memory.h"
#include "src/mem/word.h"

namespace rings {
namespace {

TEST(PtwEncoding, RoundTripPresent) {
  const Ptw ptw{true, 0x12345 * kPageWords};
  EXPECT_EQ(DecodePtw(EncodePtw(ptw)), ptw);
}

TEST(PtwEncoding, RoundTripAbsent) {
  const Ptw ptw{false, 0};
  EXPECT_EQ(DecodePtw(EncodePtw(ptw)), ptw);
}

TEST(PtwEncoding, RoundTripZeroFrame) {
  // Frame 0 is a legal frame address and must be distinguishable from
  // "absent" by the present bit alone.
  const Ptw ptw{true, 0};
  const Ptw back = DecodePtw(EncodePtw(ptw));
  EXPECT_TRUE(back.present);
  EXPECT_EQ(back.frame, 0u);
}

TEST(PtwEncoding, RoundTripMaxFrame) {
  // The frame field is 40 bits wide, like SDW.base.
  const AbsAddr max_frame = (AbsAddr{1} << 40) - 1;
  const Ptw ptw{true, max_frame};
  EXPECT_EQ(DecodePtw(EncodePtw(ptw)), ptw);
}

TEST(PtwEncoding, DefaultWordDecodesAbsent) {
  EXPECT_FALSE(DecodePtw(Word{0}).present);
}

TEST(PageCountEdges, ZeroWordsNeedsNoPages) { EXPECT_EQ(PageCount(0), 0u); }

TEST(PageCountEdges, OneWordNeedsOnePage) { EXPECT_EQ(PageCount(1), 1u); }

TEST(PageCountEdges, ExactMultiple) {
  EXPECT_EQ(PageCount(kPageWords), 1u);
  EXPECT_EQ(PageCount(4 * kPageWords), 4u);
}

TEST(PageCountEdges, OnePastBoundary) {
  EXPECT_EQ(PageCount(kPageWords + 1), 2u);
  EXPECT_EQ(PageCount(4 * kPageWords + 1), 5u);
}

TEST(PageTableAllocation, FreshTableIsAllAbsent) {
  PhysicalMemory memory(64 * kPageWords);
  const auto table = AllocatePageTable(&memory, 4);
  ASSERT_TRUE(table.has_value());
  for (uint64_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(DecodePtw(memory.Read(*table + p)).present) << "page " << p;
  }
}

TEST(PageTableAllocation, InstallZeroPageWritesPresentPtw) {
  PhysicalMemory memory(64 * kPageWords);
  const auto table = AllocatePageTable(&memory, 4);
  ASSERT_TRUE(table.has_value());
  const auto frame = InstallZeroPage(&memory, *table, 2);
  ASSERT_TRUE(frame.has_value());
  const Ptw ptw = DecodePtw(memory.Read(*table + 2));
  EXPECT_TRUE(ptw.present);
  EXPECT_EQ(ptw.frame, *frame);
  for (uint64_t i = 0; i < kPageWords; ++i) {
    ASSERT_EQ(memory.Read(*frame + i), 0u);
  }
}

}  // namespace
}  // namespace rings

// Copy-on-write frame sharing in the physical store: clones alias the
// parent's frames read-only and privatize on first store, never-written
// frames alias the immortal zero frame, and none of it changes the
// store's observable read/write/latch semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/mem/physical_memory.h"

namespace rings {
namespace {

constexpr size_t kWords = 4 * PhysicalMemory::kFrameWords;

TEST(CowMemory, FreshStoreReadsZeroAndAliasesZeroFrame) {
  PhysicalMemory memory(kWords);
  EXPECT_EQ(memory.size(), kWords);
  for (AbsAddr a = 0; a < kWords; a += PhysicalMemory::kFrameWords / 2) {
    EXPECT_EQ(memory.Read(a), 0u);
  }
  const PhysicalMemory::FrameStats stats = memory.frame_stats();
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_EQ(stats.zero_frames, 4u);  // reads never materialize storage
  EXPECT_EQ(stats.private_frames, 0u);
}

TEST(CowMemory, FirstWriteMaterializesExactlyOneFrame) {
  PhysicalMemory memory(kWords);
  memory.Write(10, 42);
  EXPECT_EQ(memory.Read(10), 42u);
  EXPECT_EQ(memory.Read(11), 0u);  // rest of the frame is still zero
  const PhysicalMemory::FrameStats stats = memory.frame_stats();
  EXPECT_EQ(stats.zero_frames, 3u);
  EXPECT_EQ(stats.private_frames, 1u);
  EXPECT_EQ(memory.frames_privatized(), 1u);
  // Further writes to the same frame are free.
  memory.Write(11, 43);
  EXPECT_EQ(memory.frames_privatized(), 1u);
}

TEST(CowMemory, CloneSeesParentContents) {
  PhysicalMemory parent(kWords);
  parent.Write(5, 111);
  parent.Write(PhysicalMemory::kFrameWords + 7, 222);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  EXPECT_EQ(clone.size(), parent.size());
  EXPECT_EQ(clone.Read(5), 111u);
  EXPECT_EQ(clone.Read(PhysicalMemory::kFrameWords + 7), 222u);
  EXPECT_EQ(clone.Read(100), 0u);
  // The two written frames are now shared, the other two still zero.
  const PhysicalMemory::FrameStats stats = clone.frame_stats();
  EXPECT_EQ(stats.shared_frames, 2u);
  EXPECT_EQ(stats.zero_frames, 2u);
}

TEST(CowMemory, CloneWriteDoesNotLeakIntoParent) {
  PhysicalMemory parent(kWords);
  parent.Write(5, 111);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  clone.Write(5, 999);
  clone.Write(6, 888);
  EXPECT_EQ(clone.Read(5), 999u);
  EXPECT_EQ(clone.Read(6), 888u);
  EXPECT_EQ(parent.Read(5), 111u);
  EXPECT_EQ(parent.Read(6), 0u);
}

TEST(CowMemory, ParentWriteAfterSealDoesNotLeakIntoClone) {
  PhysicalMemory parent(kWords);
  parent.Write(5, 111);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  parent.Write(5, 777);  // re-privatizes the sealed frame in the parent
  EXPECT_EQ(parent.Read(5), 777u);
  EXPECT_EQ(clone.Read(5), 111u);
}

TEST(CowMemory, CloneOfCloneChains) {
  PhysicalMemory a(kWords);
  a.Write(0, 1);
  PhysicalMemory b(a, PhysicalMemory::CowClone{});
  b.Write(0, 2);
  PhysicalMemory c(b, PhysicalMemory::CowClone{});
  c.Write(0, 3);
  PhysicalMemory d(c, PhysicalMemory::CowClone{});
  EXPECT_EQ(a.Read(0), 1u);
  EXPECT_EQ(b.Read(0), 2u);
  EXPECT_EQ(c.Read(0), 3u);
  EXPECT_EQ(d.Read(0), 3u);
  // The untouched tail of the chain still shares: d aliases c's frame.
  EXPECT_EQ(d.frame_stats().shared_frames, 1u);
}

TEST(CowMemory, CloneOutlivesParent) {
  auto parent = std::make_unique<PhysicalMemory>(kWords);
  parent->Write(9, 123);
  PhysicalMemory clone(*parent, PhysicalMemory::CowClone{});
  parent.reset();  // the shared frame must survive via the clone's ref
  EXPECT_EQ(clone.Read(9), 123u);
  clone.Write(9, 124);
  EXPECT_EQ(clone.Read(9), 124u);
}

TEST(CowMemory, SealIsIdempotentAndPreservesContents) {
  PhysicalMemory memory(kWords);
  memory.Write(3, 33);
  memory.SealForCloning();
  memory.SealForCloning();
  EXPECT_EQ(memory.Read(3), 33u);
  // Write-after-seal re-adopts the exclusively-owned frame in place: no
  // copy, contents intact.
  memory.Write(4, 44);
  EXPECT_EQ(memory.Read(3), 33u);
  EXPECT_EQ(memory.Read(4), 44u);
}

TEST(CowMemory, AllocatorAndPolicyCarryIntoClone) {
  PhysicalMemory parent(kWords);
  ASSERT_TRUE(parent.Allocate(100).has_value());
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  EXPECT_EQ(clone.allocated(), parent.allocated());
  const auto base = clone.Allocate(10);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base, 100u);
  EXPECT_EQ(parent.allocated(), 100u);  // clone allocation is private
  EXPECT_EQ(clone.out_of_range_policy(), parent.out_of_range_policy());
}

TEST(CowMemory, OutOfRangeLatchSemanticsSurviveCloning) {
  PhysicalMemory parent(kWords);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  EXPECT_EQ(clone.Read(kWords + 5), 0u);  // inert, latched
  clone.Write(kWords + 9, 1);             // dropped, counted
  ASSERT_TRUE(clone.fault_pending());
  EXPECT_EQ(clone.fault_count(), 2u);
  const auto fault = clone.TakeFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->addr, kWords + 5);
  EXPECT_FALSE(fault->write);
  EXPECT_FALSE(clone.fault_pending());
  // The parent's latch is untouched.
  EXPECT_FALSE(parent.fault_pending());
  EXPECT_EQ(parent.fault_count(), 0u);
}

TEST(CowMemory, PendingLatchCopiesIntoClone) {
  PhysicalMemory parent(kWords);
  parent.Read(kWords);  // latch a fault in the parent
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});
  EXPECT_TRUE(clone.fault_pending());
  EXPECT_EQ(clone.fault_count(), 1u);
}

TEST(CowMemory, RestoreIdenticalContentsKeepsFramesShared) {
  PhysicalMemory parent(kWords);
  parent.Write(5, 111);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});

  // Rebuild the parent's exact contents and restore them into the clone:
  // every frame matches, so nothing privatizes (the restore-into-clone
  // fast path).
  std::vector<Word> store(kWords, 0);
  store[5] = 111;
  clone.RestoreContents(std::move(store));
  EXPECT_EQ(clone.frames_privatized(), 0u);
  EXPECT_EQ(clone.frame_stats().shared_frames, 1u);
  EXPECT_EQ(clone.Read(5), 111u);
}

TEST(CowMemory, RestoreDifferingContentsPrivatizesOnlyChangedFrames) {
  PhysicalMemory parent(kWords);
  parent.Write(5, 111);
  parent.Write(PhysicalMemory::kFrameWords + 3, 222);
  PhysicalMemory clone(parent, PhysicalMemory::CowClone{});

  std::vector<Word> store(kWords, 0);
  store[5] = 111;                                  // frame 0 unchanged
  store[PhysicalMemory::kFrameWords + 3] = 555;    // frame 1 differs
  clone.RestoreContents(std::move(store));
  EXPECT_EQ(clone.frames_privatized(), 1u);
  EXPECT_EQ(clone.Read(5), 111u);
  EXPECT_EQ(clone.Read(PhysicalMemory::kFrameWords + 3), 555u);
  EXPECT_EQ(parent.Read(PhysicalMemory::kFrameWords + 3), 222u);
  const PhysicalMemory::FrameStats stats = clone.frame_stats();
  EXPECT_EQ(stats.shared_frames, 1u);   // frame 0 still aliased
  EXPECT_EQ(stats.private_frames, 1u);  // frame 1 copied
}

TEST(CowMemory, NonFrameMultipleSizeWorks) {
  const size_t odd = PhysicalMemory::kFrameWords + 100;
  PhysicalMemory memory(odd);
  EXPECT_EQ(memory.size(), odd);
  memory.Write(odd - 1, 7);
  EXPECT_EQ(memory.Read(odd - 1), 7u);
  EXPECT_EQ(memory.Read(odd), 0u);  // out of range latches
  EXPECT_TRUE(memory.fault_pending());

  PhysicalMemory clone(memory, PhysicalMemory::CowClone{});
  EXPECT_EQ(clone.Read(odd - 1), 7u);
  std::vector<Word> store(odd, 0);
  store[odd - 1] = 7;
  clone.RestoreContents(std::move(store));  // partial-frame compare path
  EXPECT_EQ(clone.frames_privatized(), 0u);
}

}  // namespace
}  // namespace rings

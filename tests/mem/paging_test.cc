// Paging: "taken into account by the address translation logic, but ...
// totally transparent to an executing machine language program. Paging,
// if appropriately implemented, need not affect access control."
//
// Differential tests (paged vs unpaged segments behave identically under
// every access check), page-boundary arithmetic, missing-page faults, and
// supervisor demand-zero paging with instruction resumption.
#include <gtest/gtest.h>

#include "src/mem/page_table.h"
#include "src/sys/machine.h"
#include "tests/testutil.h"

namespace rings {
namespace {

TEST(PtwCodec, RoundTrip) {
  const Ptw ptw{true, 0x123456789};
  EXPECT_EQ(DecodePtw(EncodePtw(ptw)), ptw);
  EXPECT_FALSE(DecodePtw(EncodePtw(Ptw{})).present);
}

TEST(PageMath, PageCount) {
  EXPECT_EQ(PageCount(0), 0u);
  EXPECT_EQ(PageCount(1), 1u);
  EXPECT_EQ(PageCount(kPageWords), 1u);
  EXPECT_EQ(PageCount(kPageWords + 1), 2u);
  EXPECT_EQ(PageCount(10 * kPageWords), 10u);
}

// A bare machine with one paged data segment backed by scattered frames.
struct PagedRig {
  BareMachine m;
  Segno data = 0;

  explicit PagedRig(uint64_t words, int present_pages) {
    const uint64_t pages = PageCount(words);
    const AbsAddr table = *AllocatePageTable(&m.memory(), pages);
    for (int p = 0; p < present_pages; ++p) {
      // Interleave dummy allocations so frames are genuinely scattered.
      m.memory().Allocate(7);
      InstallZeroPage(&m.memory(), table, p);
    }
    Sdw sdw;
    sdw.present = true;
    sdw.paged = true;
    sdw.base = table;
    sdw.bound = words;
    sdw.access = MakeDataSegment(4, 4);
    data = 10;
    m.dseg().Store(data, sdw);
    m.cpu().InvalidateSdw(data);
  }
};

TEST(Paging, ReadWriteThroughPages) {
  PagedRig rig(3 * kPageWords, 3);
  const Segno code = rig.m.AddCode(
      {
          MakeIns(Opcode::kLdai, 77),
          MakeInsPr(Opcode::kSta, 2, 5),                                 // page 0
          MakeInsPr(Opcode::kSta, 2, static_cast<int32_t>(kPageWords)),  // page 1
          MakeInsPr(Opcode::kLda, 2, 5),
      },
      UserCode());
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone) << i;
  }
  EXPECT_EQ(rig.m.cpu().regs().a, 77u);
  EXPECT_GE(rig.m.cpu().counters().page_walks, 3u);
}

TEST(Paging, PageBoundaryArithmetic) {
  PagedRig rig(2 * kPageWords, 2);
  // Write the last word of page 0 and the first word of page 1; read both
  // back.
  const int32_t last0 = static_cast<int32_t>(kPageWords - 1);
  const int32_t first1 = static_cast<int32_t>(kPageWords);
  const Segno code = rig.m.AddCode(
      {
          MakeIns(Opcode::kLdai, 11),
          MakeInsPr(Opcode::kSta, 2, last0),
          MakeIns(Opcode::kLdai, 22),
          MakeInsPr(Opcode::kSta, 2, first1),
          MakeInsPr(Opcode::kLda, 2, last0),
          MakeInsPr(Opcode::kAda, 2, first1),
      },
      UserCode());
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone) << i;
  }
  EXPECT_EQ(rig.m.cpu().regs().a, 33u);
}

TEST(Paging, MissingPageFaults) {
  PagedRig rig(2 * kPageWords, /*present_pages=*/1);
  const Segno code =
      rig.m.AddCode({MakeInsPr(Opcode::kLda, 2, static_cast<int32_t>(kPageWords))}, UserCode());
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kMissingPage);
  // The fault address identifies the page for the supervisor.
  EXPECT_EQ(rig.m.cpu().trap_state().fault_addr.segno, rig.data);
  EXPECT_EQ(rig.m.cpu().trap_state().fault_addr.wordno, kPageWords);
  // The saved state addresses the disrupted instruction.
  EXPECT_EQ(rig.m.cpu().trap_state().regs.ipr.wordno, 0u);
}

TEST(Paging, FaultRepairAndResume) {
  // Install the page by hand and RETT: the disrupted LDA completes.
  PagedRig rig(2 * kPageWords, 1);
  const Segno code =
      rig.m.AddCode({MakeInsPr(Opcode::kLda, 2, static_cast<int32_t>(kPageWords))}, UserCode());
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kMissingPage);
  const TrapState trap = rig.m.cpu().TakeTrap();
  const Sdw sdw = *rig.m.dseg().Fetch(rig.data);
  const AbsAddr frame = *InstallZeroPage(&rig.m.memory(), sdw.base, 1);
  rig.m.memory().Write(frame, 1234);
  rig.m.cpu().Rett(trap.regs);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().a, 1234u);
}

TEST(Paging, AccessControlUnaffected) {
  // The paper's assertion, tested literally: identical access decisions
  // for a paged and an unpaged segment with the same brackets, across all
  // rings and all three access kinds.
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    for (const bool paged : {false, true}) {
      BareMachine m;
      const SegmentAccess access = MakeDataSegment(2, 5);
      Segno data;
      if (paged) {
        const AbsAddr table = *AllocatePageTable(&m.memory(), 1);
        InstallZeroPage(&m.memory(), table, 0);
        Sdw sdw;
        sdw.present = true;
        sdw.paged = true;
        sdw.base = table;
        sdw.bound = 8;
        sdw.access = access;
        data = 10;
        m.dseg().Store(data, sdw);
      } else {
        data = m.AddSegment({0, 0, 0, 0, 0, 0, 0, 0}, access);
      }
      const Segno code = m.AddCode(
          {MakeInsPr(Opcode::kLda, 2, 0), MakeInsPr(Opcode::kSta, 2, 1)},
          MakeProcedureSegment(ring, ring));
      m.SetIpr(ring, code, 0);
      m.SetPr(2, ring, data, 0);
      const TrapCause read_result = m.StepTrap();
      EXPECT_EQ(read_result == TrapCause::kNone, ring <= 5)
          << "paged=" << paged << " ring=" << unsigned(ring);
      if (read_result == TrapCause::kNone) {
        EXPECT_EQ(m.StepTrap() == TrapCause::kNone, ring <= 2)
            << "paged=" << paged << " ring=" << unsigned(ring);
      }
    }
  }
}

TEST(Paging, BoundsStillEnforced) {
  PagedRig rig(kPageWords / 2, 1);  // bound smaller than a full page
  const Segno code = rig.m.AddCode(
      {MakeInsPr(Opcode::kLda, 2, static_cast<int32_t>(kPageWords / 2))}, UserCode());
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kBoundsViolation);
}

TEST(Paging, SupervisorDemandZeroPaging) {
  // Whole-machine: a guest program sums into a large paged segment that
  // starts with NO pages; the supervisor supplies zero pages on demand
  // and the program never notices.
  // The paged segment must be registered before the program so the .its
  // patches can resolve against it.
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  Machine machine2;
  const auto segno2 = machine2.registry().CreatePagedSegment(
      "bigdata", 4 * kPageWords, AccessControlList::Public(MakeDataSegment(4, 4)), false);
  ASSERT_TRUE(segno2.has_value());
  ASSERT_TRUE(machine2.LoadProgramSource(R"(
        .segment main
start:  ldai  7
        sta   p0,*
        ldai  8
        sta   p1,*
        lda   p0,*
        ada   p1,*
        mme   0
p0:     .its  4, bigdata, 3
p1:     .its  4, bigdata, 2100
)",
                                         acls));
  Process* p = machine2.Login("alice");
  machine2.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine2.Start(p, "main", "start", kUserRing));
  machine2.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 15);
  EXPECT_EQ(machine2.cpu().counters().pages_supplied, 2u);
  EXPECT_EQ(machine2.cpu().counters().TrapCount(TrapCause::kMissingPage), 2u);
  EXPECT_EQ(machine2.PeekSegment("bigdata", 3), 7u);
  EXPECT_EQ(machine2.PeekSegment("bigdata", 2100), 8u);
}

TEST(Paging, PagedCodeSegmentExecutes) {
  // Procedure segments can be paged too: instruction fetch walks the page
  // table exactly like operand references.
  Machine machine;
  std::vector<Word> code = {
      EncodeInstruction(MakeIns(Opcode::kLdai, 31)),
      EncodeInstruction(MakeIns(Opcode::kAdai, 11)),
      EncodeInstruction(MakeIns(Opcode::kMme, 0)),
  };
  const auto segno = machine.registry().CreatePagedSegment(
      "pagedcode", kPageWords, AccessControlList::Public(MakeProcedureSegment(4, 4)),
      /*populate=*/false, code);
  ASSERT_TRUE(segno.has_value());
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  // Start() needs a symbol; resolve word 0 directly instead.
  RegisteredSegment* seg = machine.registry().FindMutable("pagedcode");
  seg->symbols["start"] = 0;
  ASSERT_TRUE(machine.Start(p, "pagedcode", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 42);
  EXPECT_GT(machine.cpu().counters().page_walks, 0u);
}

TEST(Paging, DemandPagedCodeFetchFault) {
  // A transfer into an absent page of a paged code segment demand-loads
  // it (with zeroes, which decode as NOPs... actually as opcode 0 = NOP)
  // — the fetch fault path works like the operand fault path.
  Machine machine;
  std::vector<Word> code = {
      EncodeInstruction(MakeIns(Opcode::kTra, static_cast<int32_t>(kPageWords))),
  };
  const auto segno = machine.registry().CreatePagedSegment(
      "pagedcode", 2 * kPageWords, AccessControlList::Public(MakeProcedureSegment(4, 4)),
      /*populate=*/false, code);
  ASSERT_TRUE(segno.has_value());
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  RegisteredSegment* seg = machine.registry().FindMutable("pagedcode");
  seg->symbols["start"] = 0;
  ASSERT_TRUE(machine.Start(p, "pagedcode", "start", kUserRing));
  // Plant an exit at the start of page 1 (the fault installs the page on
  // first fetch; run a few steps, then poke and continue).
  machine.Run(/*max_cycles=*/2000);
  // The page-1 fetch faulted and was supplied with zeroes (NOPs); the
  // process is still running through them. Poke an MME 0 ahead of the
  // execution point and let it finish.
  ASSERT_GT(machine.cpu().counters().pages_supplied, 0u);
  const Wordno pc = machine.cpu().regs().ipr.wordno;
  ASSERT_TRUE(machine.PokeSegment("pagedcode", pc + 4, EncodeInstruction(MakeIns(Opcode::kMme, 0))));
  machine.cpu().InvalidateSdw(*segno);
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
}

TEST(Paging, DemandPagingSharedAcrossProcesses) {
  Machine machine;
  const auto segno = machine.registry().CreatePagedSegment(
      "shared", 2 * kPageWords, AccessControlList::Public(MakeDataSegment(4, 4)), false);
  ASSERT_TRUE(segno.has_value());
  std::map<std::string, AccessControlList> acls;
  acls["writer"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment writer
ws:     ldai  55
        sta   wp,*
        mme   0
wp:     .its  4, shared, 100

        .segment reader
rs:     lda   rp,*
        mme   0
rp:     .its  4, shared, 100
)",
                                        acls));
  Process* w = machine.Login("alice");
  Process* r = machine.Login("bob");
  machine.supervisor().InitiateAll(w);
  machine.supervisor().InitiateAll(r);
  ASSERT_TRUE(machine.Start(w, "writer", "ws", kUserRing));
  ASSERT_TRUE(machine.Start(r, "reader", "rs", kUserRing));
  machine.Run();
  EXPECT_EQ(w->state, ProcessState::kExited);
  EXPECT_EQ(r->state, ProcessState::kExited);
  // The reader sees the writer's value: one page, one storage, two
  // virtual memories; only one demand-zero fill happened.
  EXPECT_EQ(r->exit_code, 55);
  EXPECT_EQ(machine.cpu().counters().pages_supplied, 1u);
}

}  // namespace
}  // namespace rings

#include <gtest/gtest.h>

#include "src/mem/descriptor_segment.h"
#include "src/mem/physical_memory.h"

namespace rings {
namespace {

TEST(PhysicalMemory, ReadWrite) {
  PhysicalMemory mem(1024);
  mem.Write(10, 42);
  EXPECT_EQ(mem.Read(10), 42u);
  EXPECT_EQ(mem.Read(11), 0u);
  EXPECT_EQ(mem.size(), 1024u);
}

TEST(PhysicalMemory, AllocatorHandsOutDisjointRegions) {
  PhysicalMemory mem(1000);
  const auto a = mem.Allocate(100);
  const auto b = mem.Allocate(200);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_GE(*b, *a + 100);
  EXPECT_EQ(mem.allocated(), 300u);
}

TEST(PhysicalMemory, AllocatorExhaustion) {
  PhysicalMemory mem(100);
  EXPECT_TRUE(mem.Allocate(60).has_value());
  EXPECT_FALSE(mem.Allocate(60).has_value());
  EXPECT_TRUE(mem.Allocate(40).has_value());
  EXPECT_FALSE(mem.Allocate(1).has_value());
}

TEST(PhysicalMemory, OutOfRangeReadLatchesFaultInsteadOfAborting) {
  PhysicalMemory mem(100);
  EXPECT_FALSE(mem.fault_pending());
  // The reference is inert: reads return 0, and the host survives.
  EXPECT_EQ(mem.Read(100), 0u);
  ASSERT_TRUE(mem.fault_pending());
  const auto fault = mem.TakeFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->addr, 100u);
  EXPECT_FALSE(fault->write);
  // Consuming clears the latch.
  EXPECT_FALSE(mem.fault_pending());
  EXPECT_FALSE(mem.TakeFault().has_value());
  EXPECT_EQ(mem.fault_count(), 1u);
}

TEST(PhysicalMemory, OutOfRangeWriteIsDroppedAndLatched) {
  PhysicalMemory mem(100);
  mem.Write(5000, 42);
  const auto fault = mem.TakeFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->addr, 5000u);
  EXPECT_TRUE(fault->write);
  // In-range contents are untouched and later in-range traffic works.
  mem.Write(50, 7);
  EXPECT_EQ(mem.Read(50), 7u);
  EXPECT_FALSE(mem.fault_pending());
}

TEST(PhysicalMemory, LatchKeepsFirstFaultAndCountsTheRest) {
  PhysicalMemory mem(100);
  mem.Write(200, 1);
  mem.Write(300, 2);
  EXPECT_EQ(mem.Read(400), 0u);
  const auto fault = mem.TakeFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->addr, 200u);  // oldest access wins
  EXPECT_EQ(mem.fault_count(), 3u);
  // After consuming, the next out-of-range access re-arms the latch.
  mem.Write(500, 3);
  EXPECT_EQ(mem.TakeFault()->addr, 500u);
}

TEST(DescriptorSegment, CreateInitializesAbsent) {
  PhysicalMemory mem(4096);
  const auto ds = DescriptorSegment::Create(&mem, 16, 0);
  ASSERT_TRUE(ds.has_value());
  for (Segno s = 0; s < 16; ++s) {
    const auto sdw = ds->Fetch(s);
    ASSERT_TRUE(sdw.has_value());
    EXPECT_FALSE(sdw->present);
  }
}

TEST(DescriptorSegment, StoreFetchRoundTrip) {
  PhysicalMemory mem(4096);
  auto ds = DescriptorSegment::Create(&mem, 16, 0);
  Sdw sdw;
  sdw.present = true;
  sdw.base = 100;
  sdw.bound = 50;
  sdw.access = MakeDataSegment(3, 5);
  ds->Store(7, sdw);
  EXPECT_EQ(ds->Fetch(7), sdw);
  // Neighbors untouched.
  EXPECT_FALSE(ds->Fetch(6)->present);
  EXPECT_FALSE(ds->Fetch(8)->present);
}

TEST(DescriptorSegment, OutOfBoundsSegno) {
  PhysicalMemory mem(4096);
  auto ds = DescriptorSegment::Create(&mem, 16, 0);
  EXPECT_EQ(ds->Fetch(16), std::nullopt);
  EXPECT_EQ(ds->Fetch(1000), std::nullopt);
}

TEST(DescriptorSegment, TwoVirtualMemoriesShareOneSegment) {
  // "A single segment may be part of several virtual memories at the same
  // time, allowing straightforward sharing of segments among users."
  PhysicalMemory mem(8192);
  auto ds_a = DescriptorSegment::Create(&mem, 16, 0);
  auto ds_b = DescriptorSegment::Create(&mem, 16, 0);
  const AbsAddr shared = *mem.Allocate(10);
  mem.Write(shared + 3, 77);

  Sdw sdw;
  sdw.present = true;
  sdw.base = shared;
  sdw.bound = 10;
  sdw.access = MakeDataSegment(4, 4);
  ds_a->Store(5, sdw);
  // Different segment number, different access, same storage.
  sdw.access = MakeReadOnlyDataSegment(4);
  ds_b->Store(9, sdw);

  EXPECT_EQ(ds_a->Fetch(5)->base, ds_b->Fetch(9)->base);
  EXPECT_TRUE(ds_a->Fetch(5)->access.flags.write);
  EXPECT_FALSE(ds_b->Fetch(9)->access.flags.write);
  EXPECT_EQ(mem.Read(ds_b->Fetch(9)->base + 3), 77u);
}

TEST(DescriptorSegment, StackBaseRecordedInDbr) {
  PhysicalMemory mem(4096);
  const auto ds = DescriptorSegment::Create(&mem, 16, /*stack_base=*/8);
  EXPECT_EQ(ds->dbr().stack_base, 8u);
  EXPECT_EQ(ds->dbr().bound, 16u);
}

}  // namespace
}  // namespace rings

#include "src/base/xorshift.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(Xorshift, DeterministicForSameSeed) {
  Xorshift a(42);
  Xorshift b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xorshift, DifferentSeedsDiffer) {
  Xorshift a(1);
  Xorshift b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 45);
}

TEST(Xorshift, BelowStaysInRange) {
  Xorshift rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(Xorshift, BetweenInclusive) {
  Xorshift rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xorshift, ChanceExtremes) {
  Xorshift rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

TEST(Xorshift, RoughUniformity) {
  Xorshift rng(123);
  int buckets[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.Below(8)];
  }
  for (const int b : buckets) {
    EXPECT_GT(b, n / 8 - n / 40);
    EXPECT_LT(b, n / 8 + n / 40);
  }
}

}  // namespace
}  // namespace rings

#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(StrFormat, Basic) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "ok"), "x=5 y=ok");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Hex, Formatting) {
  EXPECT_EQ(Hex(0x2A), "0x2a");
  EXPECT_EQ(Hex(0x2A, 4), "0x002a");
}

TEST(SplitAny, DropsEmptyPieces) {
  const auto pieces = SplitAny("a,,b, c", ", ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitAny, NoDelimiters) {
  const auto pieces = SplitAny("alone", ",");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "alone");
}

TEST(StripWhitespace, Variants) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("\ta b\n"), "a b");
}

TEST(EqualsIgnoreCase, Variants) {
  EXPECT_TRUE(EqualsIgnoreCase("CALL", "call"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("call", "cal"));
  EXPECT_FALSE(EqualsIgnoreCase("call", "calk"));
}

TEST(ToLower, Basic) { EXPECT_EQ(ToLower("LdA"), "lda"); }

}  // namespace
}  // namespace rings

#include "src/base/bitfield.h"

#include <gtest/gtest.h>

namespace rings {
namespace {

TEST(BitMask, Widths) {
  EXPECT_EQ(BitMask(0), 0u);
  EXPECT_EQ(BitMask(1), 1u);
  EXPECT_EQ(BitMask(3), 7u);
  EXPECT_EQ(BitMask(18), 0x3FFFFu);
  EXPECT_EQ(BitMask(63), 0x7FFFFFFFFFFFFFFFu);
  EXPECT_EQ(BitMask(64), ~uint64_t{0});
}

TEST(ExtractDeposit, RoundTrip) {
  uint64_t w = 0;
  w = DepositBits(w, 10, 5, 0b10110);
  EXPECT_EQ(ExtractBits(w, 10, 5), 0b10110u);
  // Neighboring bits untouched.
  EXPECT_EQ(ExtractBits(w, 0, 10), 0u);
  EXPECT_EQ(ExtractBits(w, 15, 10), 0u);
}

TEST(ExtractDeposit, OverwritesField) {
  uint64_t w = ~uint64_t{0};
  w = DepositBits(w, 4, 4, 0);
  EXPECT_EQ(ExtractBits(w, 4, 4), 0u);
  EXPECT_EQ(ExtractBits(w, 0, 4), 0xFu);
  EXPECT_EQ(ExtractBits(w, 8, 4), 0xFu);
}

TEST(ExtractDeposit, ValueTruncatedToWidth) {
  uint64_t w = DepositBits(0, 0, 3, 0xFF);
  EXPECT_EQ(w, 7u);
}

TEST(SignExtend, Positive) {
  EXPECT_EQ(SignExtend(5, 18), 5);
  EXPECT_EQ(SignExtend(0x1FFFF, 18), 0x1FFFF);  // max positive 18-bit
}

TEST(SignExtend, Negative) {
  EXPECT_EQ(SignExtend(0x3FFFF, 18), -1);
  EXPECT_EQ(SignExtend(0x20000, 18), -131072);
}

TEST(EncodeSigned, RoundTripAllBoundary18Bit) {
  for (const int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{131071}, int64_t{-131072}}) {
    EXPECT_EQ(SignExtend(EncodeSigned(v, 18), 18), v) << v;
  }
}

TEST(Fits, Signed) {
  EXPECT_TRUE(FitsSigned(131071, 18));
  EXPECT_FALSE(FitsSigned(131072, 18));
  EXPECT_TRUE(FitsSigned(-131072, 18));
  EXPECT_FALSE(FitsSigned(-131073, 18));
}

TEST(Fits, Unsigned) {
  EXPECT_TRUE(FitsUnsigned(7, 3));
  EXPECT_FALSE(FitsUnsigned(8, 3));
}

// Property sweep: every (shift, width) deposit/extract round-trips.
TEST(ExtractDeposit, PropertySweep) {
  for (unsigned shift = 0; shift < 60; shift += 7) {
    for (unsigned width = 1; width <= 64 - shift && width <= 20; ++width) {
      const uint64_t value = 0xA5A5A5A5A5A5A5A5u & BitMask(width);
      const uint64_t w = DepositBits(0x123456789ABCDEFu, shift, width, value);
      EXPECT_EQ(ExtractBits(w, shift, width), value) << shift << "," << width;
    }
  }
}

}  // namespace
}  // namespace rings

#include "src/kasm/disassembler.h"

#include <gtest/gtest.h>

#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"
#include "src/kasm/assembler.h"

namespace rings {
namespace {

TEST(Disassembler, SimpleInstruction) {
  EXPECT_EQ(DisassembleWord(EncodeInstruction(MakeIns(Opcode::kLdai, 5))), "ldai 5");
  EXPECT_EQ(DisassembleWord(EncodeInstruction(MakeInsPr(Opcode::kLda, 3, 2, true))),
            "lda pr3|2,*");
}

TEST(Disassembler, InvalidOpcodeAsData) {
  const Word bogus = uint64_t{250} << 56;
  const std::string text = DisassembleWord(bogus);
  EXPECT_NE(text.find(".word"), std::string::npos);
}

TEST(Disassembler, IndirectWordAnnotated) {
  const Word iw = EncodeIndirectWord(IndirectWord{4, true, 12, 34});
  // An indirect word with a nonzero ring decodes as some instruction or a
  // .word; the annotation must mention the its fields when shown as data.
  const std::string text = DisassembleWord(iw);
  EXPECT_FALSE(text.empty());
}

TEST(Disassembler, SegmentListingMarksGates) {
  const Program program = AssembleOrDie(R"(
        .segment s
        .gates 2
a:      nop
b:      nop
c:      ldai 7
)");
  const std::string listing =
      DisassembleSegment(program.segments[0].words, program.segments[0].gate_count);
  // Three lines; first two marked as gates.
  EXPECT_NE(listing.find("0 G"), std::string::npos);
  EXPECT_NE(listing.find("1 G"), std::string::npos);
  EXPECT_EQ(listing.find("2 G"), std::string::npos);
  EXPECT_NE(listing.find("ldai 7"), std::string::npos);
}

TEST(Disassembler, RoundTripThroughAssembler) {
  // Assemble, disassemble, re-assemble the instruction lines: the words
  // must match. (Data words are excluded — the disassembler cannot know
  // word types.)
  const char* lines[] = {
      "lda pr2|5", "sta pr1|0,*", "epp pr3, pr1|4", "ldx x2, 9",
      "tra 3",     "call pr2|0",  "ret pr7|0",      "mme 0",
      "nop",       "ldai -42",    "aos pr4|1",      "spp pr6, pr0|2",
  };
  for (const char* line : lines) {
    const std::string source = std::string(".segment s\n") + line + "\n";
    const Program first = AssembleOrDie(source);
    const std::string disassembled = DisassembleWord(first.segments[0].words[0]);
    const Program second = AssembleOrDie(".segment s\n" + disassembled + "\n");
    EXPECT_EQ(first.segments[0].words[0], second.segments[0].words[0]) << line;
  }
}

}  // namespace
}  // namespace rings

#include "src/kasm/assembler.h"

#include <gtest/gtest.h>

#include "src/isa/instruction.h"

namespace rings {
namespace {

Instruction DecodeAt(const AssembledSegment& seg, Wordno wordno) {
  Instruction ins;
  EXPECT_TRUE(DecodeInstruction(seg.words[wordno], &ins));
  return ins;
}

TEST(Assembler, SimpleSegment) {
  const AssembleResult r = Assemble(R"(
        .segment main
start:  ldai 5
        sta  buf
buf:    .word 0
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  ASSERT_EQ(r.program.segments.size(), 1u);
  const AssembledSegment& seg = r.program.segments[0];
  EXPECT_EQ(seg.name, "main");
  ASSERT_EQ(seg.words.size(), 3u);
  EXPECT_EQ(seg.Symbol("start"), 0u);
  EXPECT_EQ(seg.Symbol("buf"), 2u);
  EXPECT_EQ(DecodeAt(seg, 0), MakeIns(Opcode::kLdai, 5));
  EXPECT_EQ(DecodeAt(seg, 1), MakeIns(Opcode::kSta, 2));  // buf resolved
  EXPECT_EQ(seg.words[2], 0u);
}

TEST(Assembler, PrRelativeIndirectAndIndex) {
  const AssembleResult r = Assemble(R"(
        .segment s
        lda  pr3|5,*
        ldx  x2, table, x1
        epp  pr2, pr1|0
table:  .word 9
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  const AssembledSegment& seg = r.program.segments[0];

  Instruction lda = DecodeAt(seg, 0);
  EXPECT_EQ(lda.opcode, Opcode::kLda);
  EXPECT_TRUE(lda.pr_relative);
  EXPECT_EQ(lda.prnum, 3);
  EXPECT_EQ(lda.offset, 5);
  EXPECT_TRUE(lda.indirect);

  Instruction ldx = DecodeAt(seg, 1);
  EXPECT_EQ(ldx.opcode, Opcode::kLdx);
  EXPECT_EQ(ldx.reg, 2);
  EXPECT_EQ(ldx.offset, 3);  // table
  EXPECT_EQ(ldx.tag, 1);
  EXPECT_FALSE(ldx.pr_relative);

  Instruction epp = DecodeAt(seg, 2);
  EXPECT_EQ(epp.opcode, Opcode::kEpp);
  EXPECT_EQ(epp.reg, 2);
  EXPECT_TRUE(epp.pr_relative);
  EXPECT_EQ(epp.prnum, 1);
}

TEST(Assembler, GatesDirective) {
  const AssembleResult r = Assemble(R"(
        .segment g
        .gates 3
a:      nop
b:      nop
c:      nop
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.program.segments[0].gate_count, 3u);
}

TEST(Assembler, EquAndExpressions) {
  const AssembleResult r = Assemble(R"(
        .equ magic, 40
        .segment s
        ldai magic
        ldai magic+2
lbl:    .word lbl+1
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  const AssembledSegment& seg = r.program.segments[0];
  EXPECT_EQ(DecodeAt(seg, 0).offset, 40);
  EXPECT_EQ(DecodeAt(seg, 1).offset, 42);
  EXPECT_EQ(seg.words[2], 3u);  // lbl=2, +1
}

TEST(Assembler, StringDirective) {
  const AssembleResult r = Assemble(R"(
        .segment s
msg:    .string Hi there
after:  .word 0
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  const AssembledSegment& seg = r.program.segments[0];
  ASSERT_EQ(seg.Symbol("after"), 8u);  // "Hi there" = 8 characters
  EXPECT_EQ(seg.words[0], static_cast<Word>('H'));
  EXPECT_EQ(seg.words[1], static_cast<Word>('i'));
  EXPECT_EQ(seg.words[2], static_cast<Word>(' '));
  EXPECT_EQ(seg.words[7], static_cast<Word>('e'));
}

TEST(Assembler, EmptyStringRejected) {
  EXPECT_FALSE(Assemble(".segment s\n .string\n").ok);
}

TEST(Assembler, BlockAndReserve) {
  const AssembleResult r = Assemble(R"(
        .segment s
        .block 5
after:  .word 1
        .reserve 100
)");
  ASSERT_TRUE(r.ok);
  const AssembledSegment& seg = r.program.segments[0];
  EXPECT_EQ(seg.words.size(), 6u);
  EXPECT_EQ(seg.Symbol("after"), 5u);
  EXPECT_EQ(seg.reserve_words, 100u);
}

TEST(Assembler, ItsPatchRecorded) {
  const AssembleResult r = Assemble(R"(
        .segment s
p:      .its 4, other, target,*
q:      .its 2, other, 7
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  const AssembledSegment& seg = r.program.segments[0];
  ASSERT_EQ(seg.patches.size(), 2u);
  EXPECT_EQ(seg.patches[0].wordno, 0u);
  EXPECT_EQ(seg.patches[0].ring, 4);
  EXPECT_TRUE(seg.patches[0].indirect);
  EXPECT_EQ(seg.patches[0].target_segment, "other");
  EXPECT_EQ(seg.patches[0].target_symbol, "target");
  EXPECT_EQ(seg.patches[1].ring, 2);
  EXPECT_FALSE(seg.patches[1].indirect);
  EXPECT_EQ(seg.patches[1].target_offset, 7);
}

TEST(Assembler, MultipleSegments) {
  const AssembleResult r = Assemble(R"(
        .segment a
        nop
        .segment b
        nop
        nop
)");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.program.segments.size(), 2u);
  EXPECT_EQ(r.program.Find("a")->words.size(), 1u);
  EXPECT_EQ(r.program.Find("b")->words.size(), 2u);
  EXPECT_EQ(r.program.Find("c"), nullptr);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AssembleResult r = Assemble(R"(
; full-line comment
        .segment s     ; trailing comment
        nop            # hash comment

lbl:                   ; label-only line
        nop
)");
  ASSERT_TRUE(r.ok) << r.error.ToString();
  EXPECT_EQ(r.program.segments[0].words.size(), 2u);
  EXPECT_EQ(r.program.segments[0].Symbol("lbl"), 1u);
}

TEST(Assembler, HexAndNegativeLiterals) {
  const AssembleResult r = Assemble(R"(
        .segment s
        ldai 0x2a
        ldai -3
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(DecodeAt(r.program.segments[0], 0).offset, 42);
  EXPECT_EQ(DecodeAt(r.program.segments[0], 1).offset, -3);
}

// --- errors ---------------------------------------------------------------

TEST(AssemblerErrors, UnknownOpcode) {
  const AssembleResult r = Assemble(".segment s\n frobnicate 3\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.line, 2);
  EXPECT_NE(r.error.message.find("frobnicate"), std::string::npos);
}

TEST(AssemblerErrors, CodeOutsideSegment) {
  EXPECT_FALSE(Assemble("nop\n").ok);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_FALSE(Assemble(".segment s\nx: nop\nx: nop\n").ok);
}

TEST(AssemblerErrors, DuplicateSegment) {
  EXPECT_FALSE(Assemble(".segment s\n.segment s\n").ok);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  const AssembleResult r = Assemble(".segment s\n lda nowhere\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.message.find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, OffsetOverflow) {
  EXPECT_FALSE(Assemble(".segment s\n ldai 140000\n").ok);
  EXPECT_TRUE(Assemble(".segment s\n ldai 131071\n").ok);
}

TEST(AssemblerErrors, MissingRegisterOperand) {
  EXPECT_FALSE(Assemble(".segment s\n ldx 5\n").ok);
}

TEST(AssemblerErrors, BadItsRing) {
  EXPECT_FALSE(Assemble(".segment s\n .its 9, other, 0\n").ok);
}

TEST(AssemblerErrors, X0AsIndexTag) {
  EXPECT_FALSE(Assemble(".segment s\nlbl: lda lbl, x0\n").ok);
}

TEST(AssemblerErrors, OperandOnNoOperandOpcode) {
  EXPECT_FALSE(Assemble(".segment s\n nop 5\n").ok);
}

TEST(AssemblerErrors, UnknownDirective) {
  EXPECT_FALSE(Assemble(".segment s\n .bogus 1\n").ok);
}

TEST(AssemblerErrors, ErrorToStringIncludesLine) {
  const AssembleResult r = Assemble(".segment s\n\n\n bad_op\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.ToString().find("line 4"), std::string::npos);
}

}  // namespace
}  // namespace rings

// Quantum-boundary regression: events that land BETWEEN two instructions
// of a hot straight-line run — the timer running out, and a fault-injector
// trap — must produce identical architectural outcomes with every
// fast-path combination (caches off / caches on / caches + superblock
// engine). This is the sharpest edge of the block engine's contract: the
// per-instruction boundary work (timer decrement, fault-injection hooks,
// trap capture state) runs before every op of a block, and a trap raised
// there must deliver exactly as it would between two Step() calls, with
// the rest of the block abandoned.
//
// The quantum is swept over values coprime to the hot loop's length so the
// runout lands at many different offsets inside a cached block, not just
// at block heads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

struct Fingerprint {
  uint64_t cycles = 0;
  RegisterFile regs{};
  Counters counters{};
  std::vector<std::string> traps;  // kTrap / kRingSwitch events, in order
  std::vector<std::string> processes;
};

void ExpectArchitecturalCountersEqual(const Counters& off, const Counters& on) {
  EXPECT_EQ(off.instructions, on.instructions);
  EXPECT_EQ(off.memory_reads, on.memory_reads);
  EXPECT_EQ(off.memory_writes, on.memory_writes);
  EXPECT_EQ(off.sdw_fetches, on.sdw_fetches);
  EXPECT_EQ(off.sdw_cache_hits, on.sdw_cache_hits);
  EXPECT_EQ(off.indirect_words, on.indirect_words);
  EXPECT_EQ(off.page_walks, on.page_walks);
  EXPECT_EQ(off.pages_supplied, on.pages_supplied);
  EXPECT_EQ(off.checks_fetch, on.checks_fetch);
  EXPECT_EQ(off.checks_read, on.checks_read);
  EXPECT_EQ(off.checks_write, on.checks_write);
  EXPECT_EQ(off.supervisor_steps, on.supervisor_steps);
  EXPECT_EQ(off.sdw_recoveries, on.sdw_recoveries);
  EXPECT_EQ(off.spurious_pages_ignored, on.spurious_pages_ignored);
  EXPECT_EQ(off.machine_faults, on.machine_faults);
  EXPECT_EQ(off.trap_storm_kills, on.trap_storm_kills);
  EXPECT_EQ(off.double_faults, on.double_faults);
  for (size_t i = 0; i < off.traps.size(); ++i) {
    EXPECT_EQ(off.traps[i], on.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

void ExpectFingerprintsEqual(const Fingerprint& off, const Fingerprint& on) {
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.regs, on.regs);
  EXPECT_EQ(off.traps, on.traps);
  EXPECT_EQ(off.processes, on.processes);
  ExpectArchitecturalCountersEqual(off.counters, on.counters);
}

struct PathConfig {
  bool fast_path = true;
  bool block_engine = true;
};

inline constexpr PathConfig kSlowPath{false, false};
inline constexpr PathConfig kFastNoBlock{true, false};
inline constexpr PathConfig kFastWithBlock{true, true};

// A hot straight-line run: 14 data-free or same-slot instructions between
// back edges, so the superblock engine chains one long block per lap and
// almost every timer runout lands in its interior.
constexpr char kHotSource[] = R"(
        .segment hot
start:  ldai  0
loop:   adai  1
        adai  1
        adai  1
        adai  1
        adai  1
        adai  1
        sta   slot,*
        lda   slot,*
        adai  1
        adai  1
        adai  1
        sta   slot,*
        lda   slot,*
        tra   loop
slot:   .its  4, counters, 0

        .segment counters
        .word 0
)";

Fingerprint RunHotLoop(PathConfig path, uint64_t quantum, uint64_t fault_seed,
                       uint32_t fault_rate_ppm) {
  MachineConfig config;
  config.quantum = quantum;
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  if (fault_rate_ppm != 0) {
    config.fault = FaultConfig::Uniform(fault_seed, fault_rate_ppm);
  }
  Machine machine(config);
  EXPECT_TRUE(machine.ok());
  std::map<std::string, AccessControlList> acls;
  acls["hot"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counters"] = AccessControlList::Public(MakeDataSegment(4, 4));
  EXPECT_TRUE(machine.LoadProgramSource(kHotSource, acls));
  Process* p = machine.Login("hot");
  EXPECT_NE(p, nullptr);
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "hot", "start", kUserRing));
  machine.trace().set_enabled(true);

  // Several bounded slices: runouts, trap deliveries and re-dispatches
  // recur at shifting offsets into the hot block.
  for (int i = 0; i < 3; ++i) {
    machine.Run(40'000);
  }

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  for (const TraceEvent& e : machine.trace().events()) {
    if (e.kind == EventKind::kTrap || e.kind == EventKind::kRingSwitch) {
      fp.traps.push_back(e.ToString());
    }
  }
  for (const auto& process : machine.supervisor().processes()) {
    fp.processes.push_back(StrFormat(
        "pid=%lld state=%d cause=%s", static_cast<long long>(process->pid),
        static_cast<int>(process->state),
        std::string(TrapCauseName(process->kill_cause)).c_str()));
  }
  return fp;
}

// Timer runout mid-block. Quanta are chosen coprime to the loop's cycle
// footprint so successive runouts sweep across every intra-block offset.
TEST(QuantumBoundary, TimerRunoutLandsIdenticallyAcrossFastPaths) {
  for (const uint64_t quantum : {61u, 97u, 127u, 509u}) {
    SCOPED_TRACE(StrFormat("quantum=%llu", static_cast<unsigned long long>(quantum)));
    const Fingerprint slow = RunHotLoop(kSlowPath, quantum, 0, 0);
    const Fingerprint fast = RunHotLoop(kFastNoBlock, quantum, 0, 0);
    const Fingerprint block = RunHotLoop(kFastWithBlock, quantum, 0, 0);
    // The scenario must actually exercise its edge: runouts happened, and
    // the block engine was executing the hot run when they did.
    EXPECT_GT(slow.counters.TrapCount(TrapCause::kTimerRunout), 0u);
    EXPECT_GT(block.counters.block_ops, 0u);
    EXPECT_GT(block.counters.block_hits, 0u);
    {
      SCOPED_TRACE("slow vs fast(no block)");
      ExpectFingerprintsEqual(slow, fast);
    }
    {
      SCOPED_TRACE("fast(no block) vs fast(block)");
      ExpectFingerprintsEqual(fast, block);
    }
  }
}

// Fault-injector traps mid-block: the injector consumes its RNG stream at
// every instruction boundary, so a spurious missing-page trap (and the
// cache drops that precede it) lands between two ops of a hot block. Any
// divergence in boundary-work placement desynchronizes the stream and the
// fingerprints split immediately.
TEST(QuantumBoundary, InjectedTrapLandsIdenticallyAcrossFastPaths) {
  for (const uint64_t seed : {0x5EEDu, 0xFACEu}) {
    SCOPED_TRACE(StrFormat("seed=%llx", static_cast<unsigned long long>(seed)));
    const Fingerprint slow = RunHotLoop(kSlowPath, 509, seed, 5'000);
    const Fingerprint fast = RunHotLoop(kFastNoBlock, 509, seed, 5'000);
    const Fingerprint block = RunHotLoop(kFastWithBlock, 509, seed, 5'000);
    // The injector must actually have fired into the hot run: some trap
    // other than the scheduler's timer runout was delivered.
    uint64_t injected_traps = 0;
    for (size_t i = 0; i < slow.counters.traps.size(); ++i) {
      if (static_cast<TrapCause>(i) != TrapCause::kTimerRunout) {
        injected_traps += slow.counters.traps[i];
      }
    }
    EXPECT_GT(injected_traps, 0u);
    EXPECT_GT(block.counters.block_ops, 0u);
    {
      SCOPED_TRACE("slow vs fast(no block)");
      ExpectFingerprintsEqual(slow, fast);
    }
    {
      SCOPED_TRACE("fast(no block) vs fast(block)");
      ExpectFingerprintsEqual(fast, block);
    }
  }
}

}  // namespace
}  // namespace rings

// The paper's software conventions exercised end to end: the per-ring
// stack discipline (word 0 of each stack segment points at the next
// available area; CALL hands the callee PR0 = the stack base), the
// caller-saves-return-point convention, and gate-extension boundary
// cases.
#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

TEST(StackConvention, CalleeAllocatesFrameViaWordZero) {
  // A ring-1 service builds a frame in its ring's stack segment using the
  // word-0 next-free protocol the processor's CALL makes possible: "the
  // stack segment number alone can provide the called procedure with
  // enough information from which to construct its own stack pointer."
  constexpr char kSource[] = R"(
        .segment svc
        .gates 1
gate:   tra   body
body:   ldx   x1, pr0|0      ; X1 = next free offset (from stack word 0)
        epp   pr6, pr0|0,x1  ; SP = frame base in the ring-1 stack
        ldai  111
        sta   pr6|0          ; use the frame
        ldai  222
        sta   pr6|1
        lda   pr0|0          ; bump the next-free pointer by the frame size
        adai  8
        sta   pr0|0
        lda   pr6|0
        ada   pr6|1          ; A = 333, computed in the frame
        ; pop the frame
        lda   pr0|0
        adai  -8
        sta   pr0|0
        lda   pr6|0
        ada   pr6|1
        ret   pr7|0

        .segment main
start:  epp   pr2, gptr,*
        call  pr2|0
        mme   0
gptr:   .its  4, svc, 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["svc"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 333);
  // The ring-4 caller cannot inspect the ring-1 stack afterwards: its
  // frame is protected by the stack bracket rule.
}

TEST(StackConvention, CallerCannotReadCalleeStack) {
  constexpr char kSource[] = R"(
        .segment main
start:  lda   pr3|0          ; PR3 planted at the ring-1 stack below
        mme   0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  p->saved_regs.pr[3] = PointerRegister{4, kStackBaseSegno + 1, kStackFrameStart};
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
}

TEST(GateExtension, EmptyExtensionMeansNoOutsideCallers) {
  // R3 == R2: the segment has gates (for accidental-entry protection
  // within its own ring) but no ring above the bracket may call in.
  constexpr char kSource[] = R"(
        .segment inner
        .gates 1
gate:   ret   pr7|0
        .segment main
start:  epp   pr2, gptr,*
        call  pr2|0
        mme   0
gptr:   .its  4, inner, 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["inner"] = AccessControlList::Public(MakeProcedureSegment(2, 3, 3, 1));  // R3 == R2
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kExecuteViolation);
}

TEST(GateExtension, CallerExactlyAtR3Admitted) {
  constexpr char kSource[] = R"(
        .segment inner
        .gates 1
gate:   ldai  9
        ret   pr7|0
        .segment main
start:  epp   pr2, gptr,*
        call  pr2|0
        mme   0
gptr:   .its  5, inner, 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["inner"] = AccessControlList::Public(MakeProcedureSegment(2, 2, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(5, 5));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", /*ring=*/5));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 9);
}

TEST(LibrarySubroutine, WideExecuteBracketRunsInCallersRing) {
  // "Procedure segments with wider execute brackets normally will contain
  // commonly used library subroutines certified as acceptable for
  // execution in any of several rings." A library with bracket [1,5] is
  // CALLed from rings 2 and 5; it executes in the caller's ring each time
  // (no switch), and its data references are validated at that ring.
  constexpr char kSource[] = R"(
        .segment lib
        .gates 1
entry:  lda   dp,*           ; validated at the *caller's* ring
        adai  1
        ret   pr7|0
dp:     .its  1, privdata, 0

        .segment privdata    ; readable only to ring 3
        .word 41

        .segment prog
start:  epp   pr2, lp,*
        call  pr2|0
        mme   0
lp:     .its  1, lib, 0
)";
  // Copies the outcome out before the machine (which owns the process)
  // is destroyed.
  struct Outcome {
    ProcessState state;
    int64_t exit_code;
    TrapCause kill_cause;
  };
  const auto run_in = [&](Ring ring) {
    Machine machine;
    std::map<std::string, AccessControlList> acls;
    acls["lib"] = AccessControlList::Public(MakeProcedureSegment(1, 5, 5, 1));
    acls["privdata"] = AccessControlList::Public(MakeReadOnlyDataSegment(3));
    acls["prog"] = AccessControlList::Public(MakeProcedureSegment(1, 5, 5, 0));
    EXPECT_TRUE(machine.LoadProgramSource(kSource, acls));
    Process* p = machine.Login("alice");
    machine.supervisor().InitiateAll(p);
    EXPECT_TRUE(machine.Start(p, "prog", "start", ring));
    machine.Run();
    return Outcome{p->state, p->exit_code, p->kill_cause};
  };

  // From ring 2: within privdata's read bracket — works.
  const Outcome low = run_in(2);
  EXPECT_EQ(low.state, ProcessState::kExited);
  EXPECT_EQ(low.exit_code, 42);

  // From ring 5: the same library code is denied the read, because it
  // executes in ring 5 — certification travels with the caller's ring.
  const Outcome high = run_in(5);
  EXPECT_EQ(high.state, ProcessState::kKilled);
  EXPECT_EQ(high.kill_cause, TrapCause::kReadViolation);
}

}  // namespace
}  // namespace rings

// Differential fuzzing: random straight-line data-access programs run on
// BOTH machines — the ring-hardware Machine and the 645-style software-
// rings B645Machine — configured with identical segment ring specs. The
// two implementations must agree on whether the program completes and,
// when it does, on its result. (Deny causes may differ in flavor: the
// 645's per-ring descriptor segments report inaccessible segments as
// missing rather than as read/write violations.)
#include <gtest/gtest.h>

#include "src/b645/b645_machine.h"
#include "src/base/strings.h"
#include "src/base/xorshift.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

struct GeneratedProgram {
  std::string source;
  std::map<std::string, SegmentAccess> specs;
};

// Builds a random program over three data segments with random brackets:
// a sequence of loads, stores, adds through fixed .its pointers, ending
// with `mme 0` (exit with A).
GeneratedProgram Generate(uint64_t seed) {
  Xorshift rng(seed);
  GeneratedProgram out;
  out.specs["main"] = MakeProcedureSegment(4, 4);

  // Data segments d0..d2 with random bracket tops.
  std::string data_segments;
  for (int i = 0; i < 3; ++i) {
    const Ring w = static_cast<Ring>(rng.Below(kRingCount));
    const Ring r = static_cast<Ring>(rng.Between(w, kMaxRing));
    SegmentAccess access = MakeDataSegment(w, r);
    access.flags.write = rng.Chance(4, 5);
    access.flags.read = rng.Chance(9, 10);
    out.specs[StrFormat("d%d", i)] = access;
    data_segments += StrFormat("\n        .segment d%d\n", i);
    for (int w2 = 0; w2 < 4; ++w2) {
      data_segments += StrFormat("        .word %llu\n",
                                 static_cast<unsigned long long>(rng.Below(1000)));
    }
  }

  // Pointer words in main (ring field = caller ring on both systems; the
  // 645 ignores it).
  std::string pointers;
  for (int i = 0; i < 3; ++i) {
    pointers += StrFormat("p%d:     .its  4, d%d, %llu\n", i, i,
                          static_cast<unsigned long long>(rng.Below(4)));
  }

  // Random instruction sequence.
  std::string body = "start:  ldai  1\n";
  const int steps = 4 + static_cast<int>(rng.Below(8));
  for (int s = 0; s < steps; ++s) {
    const int p = static_cast<int>(rng.Below(3));
    switch (rng.Below(4)) {
      case 0:
        body += StrFormat("        lda   p%d,*\n", p);
        break;
      case 1:
        body += StrFormat("        sta   p%d,*\n", p);
        break;
      case 2:
        body += StrFormat("        ada   p%d,*\n", p);
        break;
      default:
        body += StrFormat("        aos   p%d,*\n", p);
        break;
    }
  }
  body += "        mme   0\n";

  out.source = "        .segment main\n" + body + pointers + data_segments;
  return out;
}

struct Outcome {
  bool exited = false;
  int64_t code = 0;
};

Outcome RunOnHardware(const GeneratedProgram& prog) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  for (const auto& [name, spec] : prog.specs) {
    acls[name] = AccessControlList::Public(spec);
  }
  EXPECT_TRUE(machine.LoadProgramSource(prog.source, acls));
  Process* p = machine.Login("fuzz");
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run(1'000'000);
  return Outcome{p->state == ProcessState::kExited, p->exit_code};
}

Outcome RunOn645(const GeneratedProgram& prog) {
  B645Machine machine;
  std::string error;
  EXPECT_TRUE(machine.LoadProgramSource(prog.source, prog.specs, &error)) << error;
  EXPECT_TRUE(machine.Start("main", "start", kUserRing));
  machine.Run(1'000'000);
  return Outcome{machine.exited(), machine.exit_code()};
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, HardwareAnd645Agree) {
  for (uint64_t i = 0; i < 20; ++i) {
    const GeneratedProgram prog = Generate(GetParam() * 1000 + i);
    const Outcome hw = RunOnHardware(prog);
    const Outcome sw = RunOn645(prog);
    EXPECT_EQ(hw.exited, sw.exited) << "seed " << GetParam() * 1000 + i << "\n" << prog.source;
    if (hw.exited && sw.exited) {
      EXPECT_EQ(hw.code, sw.code) << "seed " << GetParam() * 1000 + i << "\n" << prog.source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rings

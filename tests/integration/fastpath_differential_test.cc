// The fast-path identity: the host-side verdict and decoded-instruction
// caches — and the superblock engine built on top of them — must change
// NOTHING the simulated machine can observe. Every workload here runs
// three times — caches forced off, caches on with the block engine off,
// caches and block engine on — and all runs must agree bit-for-bit on
// architectural state (registers), the simulated cycle count, every
// architectural event counter, the trap sequence, and process outcomes.
// The workloads cover the tier-1 surface: hot loops, indirection, demand
// paging, gate crossings, the supervisor services, fault injection (whose
// RNG stream consumption must also be identical), self-modifying code,
// and the 645-style baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/b645/b645_machine.h"
#include "src/base/strings.h"
#include "src/kasm/assembler.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/page_table.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// The observable face of a finished run. Fast-path statistics
// (verdict_*/insn_cache_*) are intentionally absent: they describe host
// work saved, and are the only counters allowed to differ.
struct Fingerprint {
  uint64_t cycles = 0;
  RegisterFile regs{};
  Counters counters{};
  std::vector<std::string> traps;  // kTrap / kRingSwitch events, in order
  std::vector<std::string> processes;
  std::string tty;

  void CaptureTraps(const EventTrace& trace) {
    for (const TraceEvent& e : trace.events()) {
      if (e.kind == EventKind::kTrap || e.kind == EventKind::kRingSwitch) {
        traps.push_back(e.ToString());
      }
    }
  }
};

void ExpectArchitecturalCountersEqual(const Counters& off, const Counters& on) {
  EXPECT_EQ(off.instructions, on.instructions);
  EXPECT_EQ(off.memory_reads, on.memory_reads);
  EXPECT_EQ(off.memory_writes, on.memory_writes);
  EXPECT_EQ(off.sdw_fetches, on.sdw_fetches);
  EXPECT_EQ(off.sdw_cache_hits, on.sdw_cache_hits);
  EXPECT_EQ(off.indirect_words, on.indirect_words);
  EXPECT_EQ(off.page_walks, on.page_walks);
  EXPECT_EQ(off.pages_supplied, on.pages_supplied);
  EXPECT_EQ(off.links_snapped, on.links_snapped);
  EXPECT_EQ(off.checks_fetch, on.checks_fetch);
  EXPECT_EQ(off.checks_read, on.checks_read);
  EXPECT_EQ(off.checks_write, on.checks_write);
  EXPECT_EQ(off.checks_indirect, on.checks_indirect);
  EXPECT_EQ(off.checks_transfer, on.checks_transfer);
  EXPECT_EQ(off.checks_call, on.checks_call);
  EXPECT_EQ(off.checks_return, on.checks_return);
  EXPECT_EQ(off.calls_same_ring, on.calls_same_ring);
  EXPECT_EQ(off.calls_downward, on.calls_downward);
  EXPECT_EQ(off.returns_same_ring, on.returns_same_ring);
  EXPECT_EQ(off.returns_upward, on.returns_upward);
  EXPECT_EQ(off.supervisor_steps, on.supervisor_steps);
  EXPECT_EQ(off.upward_calls_emulated, on.upward_calls_emulated);
  EXPECT_EQ(off.downward_returns_emulated, on.downward_returns_emulated);
  EXPECT_EQ(off.argument_words_copied, on.argument_words_copied);
  EXPECT_EQ(off.sdw_recoveries, on.sdw_recoveries);
  EXPECT_EQ(off.spurious_pages_ignored, on.spurious_pages_ignored);
  EXPECT_EQ(off.machine_faults, on.machine_faults);
  EXPECT_EQ(off.trap_storm_kills, on.trap_storm_kills);
  EXPECT_EQ(off.double_faults, on.double_faults);
  for (size_t i = 0; i < off.traps.size(); ++i) {
    EXPECT_EQ(off.traps[i], on.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

void ExpectFingerprintsEqual(const Fingerprint& off, const Fingerprint& on) {
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.regs, on.regs);
  EXPECT_EQ(off.traps, on.traps);
  EXPECT_EQ(off.processes, on.processes);
  EXPECT_EQ(off.tty, on.tty);
  ExpectArchitecturalCountersEqual(off.counters, on.counters);
}

// The fast-path combinations every workload must agree across. Block
// without fast path is not a combination: the engine chains fast-path
// decodes, so it self-disables when the caches are off (asserted in
// FastPathEngages below).
struct PathConfig {
  bool fast_path = true;
  bool block_engine = true;
};

inline constexpr PathConfig kSlowPath{false, false};
inline constexpr PathConfig kFastNoBlock{true, false};
inline constexpr PathConfig kFastWithBlock{true, true};

void ExpectAllFingerprintsEqual(const Fingerprint& slow, const Fingerprint& fast_no_block,
                                const Fingerprint& fast_with_block) {
  {
    SCOPED_TRACE("slow vs fast(no block)");
    ExpectFingerprintsEqual(slow, fast_no_block);
  }
  {
    SCOPED_TRACE("fast(no block) vs fast(block)");
    ExpectFingerprintsEqual(fast_no_block, fast_with_block);
  }
}

// ---------------------------------------------------------------------------
// Hardware machine: the soak fleet (hot spinner, demand pager touching all
// four pages, gate-crossing chatterbox) with optional fault injection.
// ---------------------------------------------------------------------------

constexpr char kFleetSource[] = R"(
        .segment spin
sstart: ldai  0
sloop:  adai  1
        sta   slot,*
        lda   slot,*
        tra   sloop
slot:   .its  4, counters, 0

        .segment counters
        .block 8

        .segment pager
pstart: ldai  1
ploop:  adai  1
        sta   p0,*
        lda   p1,*
        sta   p1,*
        lda   p2,*
        sta   p2,*
        lda   p3,*
        sta   p3,*
        lda   p0,*
        tra   ploop
p0:     .its  4, bigdata, 10
p1:     .its  4, bigdata, 1034
p2:     .its  4, bigdata, 2058
p3:     .its  4, bigdata, 3082

        .segment chatty
cstart: epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0
        tra   cstart
arglist: .word 1
        .its  4, chatty, buf
        .word 1
buf:    .word 88
gateptr: .its 4, sup_gates, 1
)";

std::map<std::string, AccessControlList> FleetAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["spin"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counters"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["pager"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["chatty"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  return acls;
}

Fingerprint RunFleet(PathConfig path, uint64_t fault_seed, uint32_t fault_rate_ppm) {
  MachineConfig config;
  config.memory_words = size_t{1} << 24;
  config.quantum = 500;  // frequent dispatches
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  if (fault_rate_ppm != 0) {
    config.fault = FaultConfig::Uniform(fault_seed, fault_rate_ppm);
  }
  Machine machine(config);
  EXPECT_TRUE(machine.ok());
  EXPECT_TRUE(machine.registry()
                  .CreatePagedSegment("bigdata", 4 * kPageWords,
                                      AccessControlList::Public(MakeDataSegment(4, 4)),
                                      /*populate=*/false)
                  .has_value());
  EXPECT_TRUE(machine.LoadProgramSource(kFleetSource, FleetAcls()));
  machine.trace().set_enabled(true);

  const struct {
    const char* segment;
    const char* entry;
  } kFleet[] = {{"spin", "sstart"}, {"pager", "pstart"}, {"chatty", "cstart"}};
  for (const auto& e : kFleet) {
    Process* p = machine.Login(e.segment);
    EXPECT_NE(p, nullptr);
    machine.supervisor().InitiateAll(p);
    EXPECT_TRUE(machine.Start(p, e.segment, e.entry, kUserRing));
  }

  // Several bounded slices, so scheduling/trap interleavings recur.
  for (int i = 0; i < 4; ++i) {
    machine.Run(400'000);
  }

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  fp.CaptureTraps(machine.trace());
  fp.tty = machine.TtyOutput();
  for (const auto& process : machine.supervisor().processes()) {
    fp.processes.push_back(StrFormat(
        "pid=%lld state=%d cause=%s", static_cast<long long>(process->pid),
        static_cast<int>(process->state),
        std::string(TrapCauseName(process->kill_cause)).c_str()));
  }
  return fp;
}

TEST(FastPathDifferential, FleetNoFaults) {
  ExpectAllFingerprintsEqual(RunFleet(kSlowPath, 0, 0), RunFleet(kFastNoBlock, 0, 0),
                             RunFleet(kFastWithBlock, 0, 0));
}

// With fault injection the identity is stronger: the injector's RNG
// stream is consumed at SDW-fetch misses, instruction boundaries and
// indirect-word retrievals, so any divergence in what the fast path
// skips would desynchronize every subsequent injection.
TEST(FastPathDifferential, FleetFaultSeedA) {
  ExpectAllFingerprintsEqual(RunFleet(kSlowPath, 0xA11CE, 2'000),
                             RunFleet(kFastNoBlock, 0xA11CE, 2'000),
                             RunFleet(kFastWithBlock, 0xA11CE, 2'000));
}

TEST(FastPathDifferential, FleetFaultSeedB) {
  ExpectAllFingerprintsEqual(RunFleet(kSlowPath, 0xB0B, 5'000),
                             RunFleet(kFastNoBlock, 0xB0B, 5'000),
                             RunFleet(kFastWithBlock, 0xB0B, 5'000));
}

// The fast path must actually engage for the runs above to mean anything.
// The fleet's pager pounds a paged segment, so the TLB must be taking
// hits as well as the verdict and instruction caches.
TEST(FastPathDifferential, FastPathEngages) {
  const Fingerprint on = RunFleet(kFastWithBlock, 0, 0);
  EXPECT_GT(on.counters.verdict_hits, 0u);
  EXPECT_GT(on.counters.insn_cache_hits, 0u);
  EXPECT_GT(on.counters.tlb_hits, 0u);
  EXPECT_GT(on.counters.block_builds, 0u);
  EXPECT_GT(on.counters.block_hits, 0u);
  EXPECT_GT(on.counters.block_ops, 0u);
  const Fingerprint no_block = RunFleet(kFastNoBlock, 0, 0);
  EXPECT_GT(no_block.counters.verdict_hits, 0u);
  EXPECT_EQ(no_block.counters.block_ops, 0u);
  const Fingerprint off = RunFleet(kSlowPath, 0, 0);
  EXPECT_EQ(off.counters.verdict_hits, 0u);
  EXPECT_EQ(off.counters.insn_cache_hits, 0u);
  EXPECT_EQ(off.counters.tlb_hits, 0u);
  EXPECT_EQ(off.counters.block_ops, 0u);
}

// ---------------------------------------------------------------------------
// Self-modifying code: a program overwrites the instruction it then jumps
// back to. The decoded-instruction cache must see the store; a stale
// decode would leave A at 1 instead of 99.
// ---------------------------------------------------------------------------

Fingerprint RunSelfModify(PathConfig path) {
  MachineConfig config;
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  Machine machine(config);
  EXPECT_TRUE(machine.ok());
  // A procedure segment ring 4 may also write into: write bracket [0,4],
  // execute bracket [4,4].
  SegmentAccess access = MakeProcedureSegment(4, 4);
  access.flags.write = true;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(access);
  EXPECT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldq   patch
        ldai  1
target: ldai  1
        stq   target
        tra   target
patch:  ldai  99
)",
                                        acls));
  Process* p = machine.Login("selfmod");
  EXPECT_NE(p, nullptr);
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.trace().set_enabled(true);
  machine.Run(50'000);

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  fp.CaptureTraps(machine.trace());
  // The patched instruction must have taken effect (this is what a stale
  // cached decode would break).
  EXPECT_EQ(fp.regs.a, 99u);
  return fp;
}

TEST(FastPathDifferential, SelfModifyingCode) {
  ExpectAllFingerprintsEqual(RunSelfModify(kSlowPath), RunSelfModify(kFastNoBlock),
                             RunSelfModify(kFastWithBlock));
}

// ---------------------------------------------------------------------------
// Self-modifying PAGED code: the same patch-and-jump program, but the
// procedure segment lives behind a page table, so instruction fetches run
// through the TLB + decoded-instruction fast path. A stale decode (or a
// stale translation revalidating one) would leave A at 1 instead of 99.
// ---------------------------------------------------------------------------

Fingerprint RunSelfModifyPaged(PathConfig path) {
  MachineConfig config;
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  Machine machine(config);
  EXPECT_TRUE(machine.ok());
  SegmentAccess access = MakeProcedureSegment(4, 4);
  access.flags.write = true;
  // The loader only creates unpaged segments, so assemble by hand and put
  // the words into a paged segment (entry = word 0; all references are
  // same-segment, so no .its patches are needed).
  const Program program = AssembleOrDie(R"(
        .segment pmain
start:  ldq   patch
        ldai  1
target: ldai  1
        stq   target
        tra   target
patch:  ldai  99
)");
  EXPECT_EQ(program.segments.size(), 1u);
  EXPECT_TRUE(machine.registry()
                  .CreatePagedSegment("pmain", kPageWords + 8,
                                      AccessControlList::Public(access),
                                      /*populate=*/true, program.segments[0].words)
                  .has_value());
  Process* p = machine.Login("selfmod-paged");
  EXPECT_NE(p, nullptr);
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "pmain", "", kUserRing));
  machine.trace().set_enabled(true);
  machine.Run(50'000);

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  fp.CaptureTraps(machine.trace());
  EXPECT_EQ(fp.regs.a, 99u);
  return fp;
}

TEST(FastPathDifferential, SelfModifyingPagedCode) {
  ExpectAllFingerprintsEqual(RunSelfModifyPaged(kSlowPath), RunSelfModifyPaged(kFastNoBlock),
                             RunSelfModifyPaged(kFastWithBlock));
}

// ---------------------------------------------------------------------------
// Page-table relocation and in-place PTW rewrites. A counter program
// pounds a paged data segment while the "supervisor" (the test, between
// run slices) first moves the whole page table to a new address — an SDW
// edit, announced via InvalidateSdw — and then migrates one page to a new
// frame — a PTW store, announced via NotePtwStore. The vacated table and
// frame are poisoned, so any stale translation surviving either
// announcement reads garbage and diverges from the slow-path run.
// ---------------------------------------------------------------------------

constexpr char kPagedCounterSource[] = R"(
        .segment psum
start:  lda   d0,*
        adai  1
        sta   d0,*
        lda   d1,*
        adai  1
        sta   d1,*
        lda   d0,*
        ada   d1,*
        sta   out,*
        tra   start
d0:     .its  4, pdata, 10
d1:     .its  4, pdata, 1034
out:    .its  4, pdata, 2058
)";

Fingerprint RunPageTableUpheaval(PathConfig path) {
  MachineConfig config;
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  Machine machine(config);
  EXPECT_TRUE(machine.ok());
  EXPECT_TRUE(machine.registry()
                  .CreatePagedSegment("pdata", 3 * kPageWords,
                                      AccessControlList::Public(MakeDataSegment(4, 4)),
                                      /*populate=*/true)
                  .has_value());
  std::map<std::string, AccessControlList> acls;
  acls["psum"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  EXPECT_TRUE(machine.LoadProgramSource(kPagedCounterSource, acls));
  Process* p = machine.Login("upheaval");
  EXPECT_NE(p, nullptr);
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, "psum", "start", kUserRing));
  machine.trace().set_enabled(true);

  machine.Run(50'000);  // warm the caches on the original table

  // --- Relocate the whole page table (descriptor edit). ---
  RegisteredSegment* seg = machine.registry().FindMutable("pdata");
  EXPECT_NE(seg, nullptr);
  const uint64_t pages = PageCount(seg->bound);
  const auto new_table = machine.memory().Allocate(pages);
  EXPECT_TRUE(new_table.has_value());
  for (uint64_t page = 0; page < pages; ++page) {
    machine.memory().Write(*new_table + page, machine.memory().Read(seg->base + page));
    // Poison the vacated PTW: a walk that still trusts the old table
    // faults on a page the new table maps.
    machine.memory().Write(seg->base + page, EncodePtw(Ptw{}));
  }
  seg->base = *new_table;
  DescriptorSegment dseg(&machine.memory(), p->dbr);
  auto sdw = dseg.Fetch(seg->segno);
  EXPECT_TRUE(sdw.has_value());
  sdw->base = *new_table;
  dseg.Store(seg->segno, *sdw);
  machine.cpu().InvalidateSdw(seg->segno);

  machine.Run(50'000);  // re-warm on the relocated table

  // --- Migrate page 1 (the page holding word 1034) to a new frame. ---
  const Ptw old_ptw = DecodePtw(machine.memory().Read(seg->base + 1));
  EXPECT_TRUE(old_ptw.present);
  const auto new_frame = machine.memory().Allocate(kPageWords);
  EXPECT_TRUE(new_frame.has_value());
  for (uint64_t i = 0; i < kPageWords; ++i) {
    machine.memory().Write(*new_frame + i, machine.memory().Read(old_ptw.frame + i));
    // Poison the vacated frame: a stale translation reads garbage counts.
    machine.memory().Write(old_ptw.frame + i, 0xDEADBEEFu);
  }
  machine.memory().Write(seg->base + 1, EncodePtw(Ptw{true, *new_frame}));
  machine.cpu().NotePtwStore(seg->base + 1);

  machine.Run(50'000);

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  fp.CaptureTraps(machine.trace());
  fp.tty = machine.TtyOutput();
  // The data pages themselves survived both moves: the counters kept
  // counting, and the published sum is exactly d0 + d1.
  const auto d0 = machine.PeekSegment("pdata", 10);
  const auto d1 = machine.PeekSegment("pdata", 1034);
  const auto out = machine.PeekSegment("pdata", 2058);
  EXPECT_TRUE(d0.has_value() && d1.has_value() && out.has_value());
  EXPECT_GT(*d0, 0u);
  EXPECT_GT(*d1, 0u);
  // The final slice can stop mid-iteration, after the increments but
  // before the sum is republished, so `out` may trail by up to 2.
  EXPECT_LE(*out, *d0 + *d1);
  EXPECT_GE(*out + 2, *d0 + *d1);
  fp.processes.push_back(
      StrFormat("d0=%llu d1=%llu out=%llu", static_cast<unsigned long long>(*d0),
                static_cast<unsigned long long>(*d1), static_cast<unsigned long long>(*out)));
  return fp;
}

TEST(FastPathDifferential, PageTableRelocationAndFrameMove) {
  ExpectAllFingerprintsEqual(RunPageTableUpheaval(kSlowPath),
                             RunPageTableUpheaval(kFastNoBlock),
                             RunPageTableUpheaval(kFastWithBlock));
}

// ---------------------------------------------------------------------------
// The 645-style baseline: MME crossings swap the DBR on every transition,
// stressing the flush/epoch machinery.
// ---------------------------------------------------------------------------

Fingerprint RunB645(PathConfig path) {
  MachineConfig config;
  config.fast_path = path.fast_path;
  config.block_engine = path.block_engine;
  B645Machine machine(config);
  EXPECT_TRUE(machine.ok());
  std::map<std::string, SegmentAccess> specs;
  specs["main"] = MakeProcedureSegment(4, 4);
  specs["data"] = MakeDataSegment(2, 5);
  specs["scratch"] = MakeDataSegment(4, 5);
  specs["writer"] = MakeProcedureSegment(2, 2, 5, 1);
  EXPECT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  ldai  12
loop:   sta   cptr,*
        ldq   target
        mme   1              ; cross-ring call to writer$0
        lda   cptr,*
        sba   one
        tnz   loop
        mme   0
target: .word 0              ; patched: packed (writer, 0)
cptr:   .its  0, scratch, 0
one:    .word 1

        .segment scratch
        .word 0

        .segment writer
        .gates 1
entry:  lda   wptr,*
        adai  1
        sta   wptr,*
        mme   2              ; cross-ring return
wptr:   .its  0, data, 0

        .segment data
        .word 0
)",
                                        specs));
  const Segno writer_segno = machine.registry().Find("writer")->segno;
  EXPECT_TRUE(machine.Start("main", "start", kUserRing));
  EXPECT_TRUE(machine.PokeWordForTest("main", 8, PackB645Target(writer_segno, 0)));
  machine.Run(2'000'000);

  Fingerprint fp;
  fp.cycles = machine.cpu().cycles();
  fp.regs = machine.cpu().regs();
  fp.counters = machine.cpu().counters();
  fp.processes.push_back(StrFormat(
      "exited=%d cause=%s code=%lld crossings=%llu", machine.exited() ? 1 : 0,
      std::string(TrapCauseName(machine.kill_cause())).c_str(),
      static_cast<long long>(machine.exit_code()),
      static_cast<unsigned long long>(machine.crossings())));
  // The workload itself must have worked: 12 round trips, 12 increments.
  EXPECT_TRUE(machine.exited()) << TrapCauseName(machine.kill_cause());
  EXPECT_EQ(machine.crossings(), 12u);
  EXPECT_EQ(machine.PeekWordForTest("data", 0), 12u);
  return fp;
}

TEST(FastPathDifferential, B645Crossings) {
  ExpectAllFingerprintsEqual(RunB645(kSlowPath), RunB645(kFastNoBlock),
                             RunB645(kFastWithBlock));
}

}  // namespace
}  // namespace rings

// Property fuzzing on the bare machine: random instruction streams over
// randomly configured segments, checking the hardware invariants the
// paper's security arguments rest on after every instruction:
//
//   1. PRn.RING >= IPR.RING for all n ("the hardware guarantees that the
//      RING fields in all PR'S always contain values greater than or
//      equal to the current ring of execution").
//   2. The ring of execution never drops except through a CALL that
//      entered via a gate (tracked via counters).
//   3. The TPR ring never lies below the ring of execution at the time of
//      the reference.
//   4. A frozen (trapped) processor makes no further progress.
#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "tests/testutil.h"

namespace rings {
namespace {

// Builds a random machine: a few data/pointer/procedure segments with
// random brackets, stacks at 0..7, and a code segment of random
// instructions executable everywhere.
class FuzzRig {
 public:
  explicit FuzzRig(uint64_t seed) : rng_(seed) {
    for (Ring r = 0; r < kRingCount; ++r) {
      machine_.AddSegment({}, MakeStackSegment(r), 32);
    }
    // Data segments with random brackets; contents are random words that
    // sometimes look like indirect words.
    for (int i = 0; i < 6; ++i) {
      const Ring r1 = static_cast<Ring>(rng_.Below(kRingCount));
      const Ring r2 = static_cast<Ring>(rng_.Between(r1, kMaxRing));
      std::vector<Word> words;
      for (int w = 0; w < 16; ++w) {
        if (rng_.Chance(1, 3)) {
          words.push_back(EncodeIndirectWord(
              IndirectWord{static_cast<Ring>(rng_.Below(kRingCount)), rng_.Chance(1, 8),
                           static_cast<Segno>(rng_.Below(20)),
                           static_cast<Wordno>(rng_.Below(16))}));
        } else {
          words.push_back(rng_.Next());
        }
      }
      SegmentAccess access = MakeDataSegment(r1, r2);
      access.flags.read = rng_.Chance(9, 10);
      access.flags.write = rng_.Chance(3, 4);
      data_segnos_.push_back(machine_.AddSegment(words, access));
    }
    // Procedure segments with random brackets and gates, filled with
    // random (valid) instructions.
    for (int i = 0; i < 3; ++i) {
      const Ring r1 = static_cast<Ring>(rng_.Below(kRingCount));
      const Ring r2 = static_cast<Ring>(rng_.Between(r1, kMaxRing));
      const Ring r3 = static_cast<Ring>(rng_.Between(r2, kMaxRing));
      std::vector<Instruction> code;
      for (int w = 0; w < 16; ++w) {
        code.push_back(RandomInstruction());
      }
      proc_segnos_.push_back(
          machine_.AddCode(code, MakeProcedureSegment(r1, r2, r3, rng_.Below(4))));
    }
    // The main code segment: executable in every ring so random rings can
    // run it.
    std::vector<Instruction> code;
    for (int w = 0; w < 64; ++w) {
      code.push_back(RandomInstruction());
    }
    main_segno_ = machine_.AddCode(code, MakeProcedureSegment(0, 7, 7, 4));

    const Ring start_ring = static_cast<Ring>(rng_.Below(kRingCount));
    machine_.SetIpr(start_ring, main_segno_, static_cast<Wordno>(rng_.Below(64)));
    for (unsigned n = 0; n < kNumPointerRegisters; ++n) {
      machine_.SetPr(static_cast<uint8_t>(n),
                     static_cast<Ring>(rng_.Between(start_ring, kMaxRing)), RandomSegno(),
                     static_cast<Wordno>(rng_.Below(16)));
    }
  }

  BareMachine& machine() { return machine_; }

  Segno RandomSegno() {
    const uint64_t pick = rng_.Below(4);
    if (pick == 0) {
      return static_cast<Segno>(rng_.Below(kRingCount));  // a stack
    }
    if (pick == 1 && !proc_segnos_.empty()) {
      return proc_segnos_[rng_.Below(proc_segnos_.size())];
    }
    return data_segnos_[rng_.Below(data_segnos_.size())];
  }

  Instruction RandomInstruction() {
    static constexpr Opcode kOps[] = {
        Opcode::kNop, Opcode::kLda,  Opcode::kSta, Opcode::kLdq, Opcode::kStq, Opcode::kLdx,
        Opcode::kStx, Opcode::kLdai, Opcode::kAda, Opcode::kSba, Opcode::kAna, Opcode::kOra,
        Opcode::kEra, Opcode::kAos,  Opcode::kEpp, Opcode::kSpp, Opcode::kTra, Opcode::kTze,
        Opcode::kTnz, Opcode::kCall, Opcode::kRet, Opcode::kStz, Opcode::kMpy, Opcode::kLdxi,
    };
    Instruction ins;
    ins.opcode = kOps[rng_.Below(std::size(kOps))];
    ins.pr_relative = rng_.Chance(2, 3);
    ins.prnum = static_cast<uint8_t>(rng_.Below(8));
    ins.reg = static_cast<uint8_t>(rng_.Below(8));
    ins.tag = rng_.Chance(1, 4) ? static_cast<uint8_t>(rng_.Between(1, 7)) : 0;
    ins.indirect = rng_.Chance(1, 4);
    ins.offset = static_cast<int32_t>(rng_.Below(16));
    return ins;
  }

 private:
  Xorshift rng_;
  BareMachine machine_;
  std::vector<Segno> data_segnos_;
  std::vector<Segno> proc_segnos_;
  Segno main_segno_ = 0;
};

class FuzzInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzInvariants, PrRingInvariantAndRingMonotonicity) {
  FuzzRig rig(GetParam());
  Cpu& cpu = rig.machine().cpu();

  Ring prev_ring = cpu.regs().ipr.ring;
  uint64_t prev_gate_entries = 0;
  for (int step = 0; step < 2000; ++step) {
    if (cpu.trap_pending()) {
      // Resume at a fresh random location (acting as a permissive
      // supervisor that always restarts the process).
      TrapState trap = cpu.TakeTrap();
      trap.regs.ipr.wordno = static_cast<Wordno>(step % 64);
      cpu.Rett(trap.regs);
      prev_ring = cpu.regs().ipr.ring;
      continue;
    }
    cpu.Step();
    const RegisterFile& regs = cpu.regs();
    if (!cpu.trap_pending()) {
      // Invariant 1: no PR ring below the ring of execution.
      for (unsigned n = 0; n < kNumPointerRegisters; ++n) {
        ASSERT_GE(regs.pr[n].ring, regs.ipr.ring)
            << "seed=" << GetParam() << " step=" << step << " pr" << n;
      }
      // Invariant 2: the ring can only decrease via a downward CALL.
      const uint64_t gate_entries = cpu.counters().calls_downward;
      if (regs.ipr.ring < prev_ring) {
        ASSERT_GT(gate_entries, prev_gate_entries)
            << "ring dropped without a downward call, seed=" << GetParam();
      }
      prev_ring = regs.ipr.ring;
      prev_gate_entries = gate_entries;
    }
  }
}

TEST_P(FuzzInvariants, TprRingNeverBelowExecutionRing) {
  FuzzRig rig(GetParam() ^ 0xABCDEF);
  Cpu& cpu = rig.machine().cpu();
  for (int step = 0; step < 1000; ++step) {
    if (cpu.trap_pending()) {
      TrapState trap = cpu.TakeTrap();
      trap.regs.ipr.wordno = static_cast<Wordno>(step % 64);
      cpu.Rett(trap.regs);
      continue;
    }
    const Ring ring_before = cpu.regs().ipr.ring;
    cpu.Step();
    // TPR.RING starts from the ring of execution and only maxes upward.
    // (Instructions without a memory operand leave TPR cleared; skip
    // those.)
    const Tpr& tpr = cpu.tpr();
    if (!(tpr == Tpr{})) {
      ASSERT_GE(tpr.ring, std::min(ring_before, cpu.regs().ipr.ring))
          << "seed=" << GetParam() << " step=" << step;
    }
  }
}

TEST_P(FuzzInvariants, CountersNeverRegress) {
  FuzzRig rig(GetParam() ^ 0x5555);
  Cpu& cpu = rig.machine().cpu();
  uint64_t prev_instructions = 0;
  uint64_t prev_cycles = 0;
  for (int step = 0; step < 500; ++step) {
    if (cpu.trap_pending()) {
      TrapState trap = cpu.TakeTrap();
      cpu.Rett(trap.regs);
    }
    cpu.Step();
    ASSERT_GE(cpu.counters().instructions, prev_instructions);
    ASSERT_GE(cpu.cycles(), prev_cycles);
    prev_instructions = cpu.counters().instructions;
    prev_cycles = cpu.cycles();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace rings

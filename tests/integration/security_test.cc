// Adversarial end-to-end scenarios: every attack the paper's mechanisms
// are designed to stop, mounted by real guest code on the full machine.
#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

struct Outcome {
  ProcessState state;
  TrapCause cause;
  int64_t exit_code;
};

Outcome RunProgram(const std::string& source, std::map<std::string, AccessControlList> acls,
                   Ring ring = kUserRing, const std::string& entry_seg = "main") {
  Machine machine;
  EXPECT_TRUE(machine.LoadProgramSource(source, acls));
  Process* p = machine.Login("mallory");
  machine.supervisor().InitiateAll(p);
  EXPECT_TRUE(machine.Start(p, entry_seg, "start", ring));
  machine.Run();
  return Outcome{p->state, p->kill_cause, p->exit_code};
}

TEST(Security, CannotJumpIntoSupervisorCodeDirectly) {
  // TRA into a ring-1 segment from ring 4: the advance check refuses (the
  // execute bracket does not include ring 4 and TRA cannot change rings).
  const Outcome o = RunProgram(R"(
        .segment main
start:  tra   gptr,*
        mme   0
gptr:   .its  4, sup_gates, 0
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kExecuteViolation);
}

TEST(Security, CannotCallPastTheGateList) {
  // CALL at a supervisor word beyond the gate list: gate violation, even
  // though the gate extension covers ring 4.
  const Outcome o = RunProgram(R"(
        .segment main
start:  epp   pr2, gptr,*
        call  pr2|0
        mme   0
gptr:   .its  4, sup_gates, 12    ; inside the segment, past the 6 gates
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kGateViolation);
}

TEST(Security, CannotForgeLowRingPointerViaEpp) {
  // EPP can only copy TPR, whose ring is the max of everything involved —
  // a ring-4 program cannot manufacture a ring-0 pointer and use it to
  // write supervisor data. The PR keeps ring >= 4; the write is denied.
  const Outcome o = RunProgram(R"(
        .segment main
start:  epp   pr3, sptr,*    ; pr3 ring can only be >= 4
        ldai  1
        sta   pr3|0
        mme   0
sptr:   .its  0, supdata, 0  ; claims ring 0 in the stored word

        .segment supdata
        .word 7
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))},
                                {"supdata", AccessControlList::Public(MakeDataSegment(1, 1))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  // The .its claims ring 0, but TPR.RING = max(IPR.RING=4, 0) = 4, and the
  // indirect word's *segment* is readable; the final store is denied.
  EXPECT_EQ(o.cause, TrapCause::kWriteViolation);
}

TEST(Security, LowRingFieldInIndirectWordDoesNotLowerValidation) {
  // Writing ring 0 into an indirect word in one's own segment and
  // referencing through it: TPR.RING still >= the ring of execution.
  const Outcome o = RunProgram(R"(
        .segment main
start:  lda   wptr,*
        mme   0
wptr:   .its  0, supdata, 0  ; forged low ring number

        .segment supdata
        .word 7
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))},
                                {"supdata", AccessControlList::Public(MakeDataSegment(1, 1))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kReadViolation);
}

TEST(Security, StackOfLowerRingInaccessible) {
  // Ring-4 code reaching into the ring-1 stack segment (segno 1). Stack
  // segments are per-process and unnamed, so the pointer is planted in
  // the process's saved registers rather than via .its.
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(R"(
        .segment main
start:  lda   pr3|0
        mme   0
)",
                                        acls));
  Process* p = machine.Login("mallory");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  // Point PR3 at the ring-1 stack (segno 1). Ring field must be >= 4.
  p->saved_regs.pr[3] = PointerRegister{4, kStackBaseSegno + 1, 0};
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
}

TEST(Security, Ring5CannotTouchRing4Data) {
  // Debug-ring scenario: data writable to ring 4 is out of reach of
  // ring 5, both read (read bracket 4) and write.
  const Outcome o = RunProgram(R"(
        .segment prog5
start:  ldai  1
        sta   dptr,*
        mme   0
dptr:   .its  5, udata, 0

        .segment udata
        .word 3
)",
                               {{"prog5", AccessControlList::Public(MakeProcedureSegment(5, 5))},
                                {"udata", AccessControlList::Public(MakeDataSegment(4, 4))}},
                               /*ring=*/5, "prog5");
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kWriteViolation);
}

TEST(Security, GateCodeCannotBeReadFromOutsideReadBracket) {
  // Supervisor gate code is readable only within its execute bracket; the
  // user program cannot disassemble it.
  const Outcome o = RunProgram(R"(
        .segment main
start:  lda   gptr,*
        mme   0
gptr:   .its  4, sup_gates, 0
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kReadViolation);
}

TEST(Security, CalleeReturnGoesToCallerRingNotLower) {
  // A ring-4 caller passes a return pointer whose stored ring field
  // claims ring 2. After the downward call the callee returns through
  // it; the effective ring is still taken as >= the caller's ring, so
  // execution cannot materialize in ring 2. (The target executes in
  // ring 4, so any successful return lands at ring 4.)
  const Outcome o = RunProgram(R"(
        .segment gatesg
        .gates 1
entry:  ret   pr7|0           ; honest return via the hardware-set PR7
        .segment main
start:  epp   pr2, gptr,*
        call  pr2|0
        ldai  0
        adai  4               ; resumed here, still ring 4
        mme   0
gptr:   .its  4, gatesg, 0
)",
                               {{"gatesg", AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1))},
                                {"main", AccessControlList::Public(MakeProcedureSegment(4, 4))}});
  EXPECT_EQ(o.state, ProcessState::kExited);
  EXPECT_EQ(o.exit_code, 4);
}

TEST(Security, MaliciousGateSegmentCannotBeInstalledBySetAcl) {
  // A ring-4 program tries to give its own code segment an execute
  // bracket reaching ring 1 (so others calling it would run with ring-1
  // privilege): the SetAcl ring constraint refuses.
  constexpr char kSource[] = R"(
        .segment main
start:  lda   self
        ldqi  0               ; patched below: execute bracket [1,1]
        epp   pr2, gateptr,*
        call  pr2|0
        mme   0
self:   .word 0
gateptr: .its 4, sup_gates, 4
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  const Segno self = machine.registry().Find("main")->segno;
  machine.PokeSegment("main", 5, self);
  const Word spec = PackAccessSpec(true, false, true, 1, 1, 5);
  Word ins = *machine.PeekSegment("main", 1);
  machine.PokeSegment("main", 1, (ins & ~uint64_t{0x3FFFF}) | spec);
  Process* p = machine.Login("mallory");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, -1);  // service refused
}

TEST(Security, BoundsviolationStopsSegmentOverrun) {
  const Outcome o = RunProgram(R"(
        .segment main
start:  ldxi  x1, 100
        lda   dptr,*
        mme   0
dptr:   .its  4, tiny, 90

        .segment tiny
        .word 1
)",
                               {{"main", AccessControlList::Public(MakeProcedureSegment(4, 4))},
                                {"tiny", AccessControlList::Public(MakeDataSegment(4, 4))}});
  EXPECT_EQ(o.state, ProcessState::kKilled);
  EXPECT_EQ(o.cause, TrapCause::kBoundsViolation);
}

}  // namespace
}  // namespace rings

// Processor multiplexing: several processes with separate virtual
// memories sharing segments and the processor under the round-robin
// scheduler, plus I/O completion delivery.
#include <gtest/gtest.h>

#include "src/sup/audit.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

TEST(Multiprocess, RoundRobinInterleavesProcesses) {
  // Two CPU-bound processes incrementing a shared counter; with a small
  // quantum both must make progress before either finishes. Each exits
  // once the counter reaches the limit.
  constexpr char kSource[] = R"(
        .segment spin
start:  ldai  0
loop:   adai  1
        sta   slot,*
        lda   limit
        sba   slot,*
        tze   done
        tmi   done
        lda   slot,*
        tra   loop
done:   lda   slot,*
        mme   0
slot:   .its  4, counters, 0
limit:  .word 300

        .segment counters
        .block 8
)";
  Machine machine(MachineConfig{.quantum = 50, .audit_every_quantum = true});
  std::map<std::string, AccessControlList> acls;
  acls["spin"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["counters"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));

  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  machine.supervisor().InitiateAll(a);
  machine.supervisor().InitiateAll(b);
  ASSERT_TRUE(machine.Start(a, "spin", "start", kUserRing));
  ASSERT_TRUE(machine.Start(b, "spin", "start", kUserRing));

  // The code segment (and thus the counter slot) is shared; the stores
  // interleave but the counter grows monotonically, so both processes
  // terminate.
  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(a->state, ProcessState::kExited);
  EXPECT_EQ(b->state, ProcessState::kExited);
  // Both were dispatched more than once: the quantum actually rotated.
  EXPECT_GT(a->dispatches, 1u);
  EXPECT_GT(b->dispatches, 1u);
  EXPECT_GE(machine.cpu().counters().TrapCount(TrapCause::kTimerRunout), 2u);
  // The protection auditor ran after every quantum and found nothing.
  EXPECT_GT(machine.audit_runs(), 2u);
  EXPECT_TRUE(AuditClean(machine.audit_findings()));
}

TEST(Multiprocess, SharedSegmentVisibleToBoth) {
  // alice writes a value; bob (scheduled after) reads it: one segment in
  // two virtual memories.
  constexpr char kSource[] = R"(
        .segment writer
wstart: ldai  123
        sta   wptr,*
        mme   0
wptr:   .its  4, shared, 0

        .segment reader
rstart: lda   rptr,*
        mme   0
rptr:   .its  4, shared, 0

        .segment shared
        .word 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["writer"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["shared"] = AccessControlList{{"alice", MakeDataSegment(4, 4)},
                                     {"bob", MakeReadOnlyDataSegment(4)}};
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));

  Process* alice = machine.Login("alice");
  Process* bob = machine.Login("bob");
  machine.supervisor().InitiateAll(alice);
  machine.supervisor().InitiateAll(bob);
  ASSERT_TRUE(machine.Start(alice, "writer", "wstart", kUserRing));
  ASSERT_TRUE(machine.Start(bob, "reader", "rstart", kUserRing));
  machine.Run();
  EXPECT_EQ(alice->state, ProcessState::kExited);
  EXPECT_EQ(bob->state, ProcessState::kExited);
  EXPECT_EQ(bob->exit_code, 123);
}

TEST(Multiprocess, OneKilledProcessDoesNotStopOthers) {
  constexpr char kSource[] = R"(
        .segment bad
bstart: sta   bptr,*          ; write violation
        mme   0
bptr:   .its  4, ro, 0

        .segment good
gstart: ldai  7
        mme   0

        .segment ro
        .word 1
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["bad"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["good"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["ro"] = AccessControlList::Public(MakeReadOnlyDataSegment(4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* bad = machine.Login("alice");
  Process* good = machine.Login("bob");
  machine.supervisor().InitiateAll(bad);
  machine.supervisor().InitiateAll(good);
  ASSERT_TRUE(machine.Start(bad, "bad", "bstart", kUserRing));
  ASSERT_TRUE(machine.Start(good, "good", "gstart", kUserRing));
  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(bad->state, ProcessState::kKilled);
  EXPECT_EQ(good->state, ProcessState::kExited);
  EXPECT_EQ(good->exit_code, 7);
}

TEST(Multiprocess, ReturnGateStacksArePerProcess) {
  // Both processes make upward calls; each one's downward return must
  // verify against its own gate stack even when interleaved by the
  // scheduler.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, hiptr,*
        call  pr2|0
        epp   pr2, hiptr,*
        call  pr2|0
        mme   0
hiptr:  .its  4, high, 0

        .segment high
        .gates 1
entry:  adai  1
        ldxi  x1, 30          ; burn some quantum inside ring 6
hloop:  ldx   x2, hc          ; dummy loads
        adai  0
        ldxi  x1, 0
        ret   pr7|0
hc:     .word 0
)";
  Machine machine(MachineConfig{.quantum = 17});
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["high"] = AccessControlList::Public(MakeProcedureSegment(6, 6, 6, 1));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* a = machine.Login("alice");
  Process* b = machine.Login("bob");
  machine.supervisor().InitiateAll(a);
  machine.supervisor().InitiateAll(b);
  ASSERT_TRUE(machine.Start(a, "main", "start", kUserRing));
  ASSERT_TRUE(machine.Start(b, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(a->state, ProcessState::kExited);
  EXPECT_EQ(b->state, ProcessState::kExited);
  EXPECT_EQ(a->exit_code, 2);
  EXPECT_EQ(b->exit_code, 2);
  EXPECT_EQ(machine.cpu().counters().upward_calls_emulated, 4u);
  EXPECT_EQ(machine.cpu().counters().downward_returns_emulated, 4u);
  EXPECT_TRUE(a->return_gates.empty());
  EXPECT_TRUE(b->return_gates.empty());
}

TEST(Multiprocess, BlockedTtyReadWakesOnInput) {
  // One process blocks reading the typewriter; a second keeps computing.
  // Feeding input wakes the reader, which re-issues the service and
  // finishes.
  constexpr char kSource[] = R"(
        .segment reader
rstart: epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0           ; tty read: blocks until input arrives
        lda   bufp,*
        mme   0               ; exit with the first character read
arglist: .word 1
        .its  4, rbuf, 0
        .word 4
bufp:   .its  4, rbuf, 0
gateptr: .its 4, sup_gates, 2

        .segment rbuf
        .block 4

        .segment worker
wstart: ldai  5
        mme   0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["reader"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["rbuf"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["worker"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* reader = machine.Login("alice");
  Process* worker = machine.Login("bob");
  machine.supervisor().InitiateAll(reader);
  machine.supervisor().InitiateAll(worker);
  ASSERT_TRUE(machine.Start(reader, "reader", "rstart", kUserRing));
  ASSERT_TRUE(machine.Start(worker, "worker", "wstart", kUserRing));

  machine.Run();
  // The worker finished; the reader is parked, not killed.
  EXPECT_EQ(worker->state, ProcessState::kExited);
  EXPECT_EQ(reader->state, ProcessState::kBlocked);

  machine.TtyFeedInput("Z");
  machine.Run();
  EXPECT_EQ(reader->state, ProcessState::kExited);
  EXPECT_EQ(reader->exit_code, 'Z');
}

TEST(Multiprocess, IoCompletionDelivered) {
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0
        mme   0
arglist: .word 1
        .its  4, main, buf
        .word 1
buf:    .word 88              ; 'X'
gateptr: .its 4, sup_gates, 1
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  // Run long enough for the channel latency to elapse before the exit.
  machine.Run();
  EXPECT_EQ(machine.TtyOutput(), "X");
  EXPECT_EQ(p->state, ProcessState::kExited);
}

}  // namespace
}  // namespace rings

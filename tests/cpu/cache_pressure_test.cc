// Eviction-pressure tests for the host-side caches. Each cache is filled
// past its capacity with keys chosen to collide in the index function, and
// the tests pin down the two properties the fast path's correctness
// argument leans on:
//
//   1. a displaced entry never answers for its old key (no stale hits
//      after eviction), and
//   2. a re-fill after displacement or an epoch/generation bump serves
//      the *new* contents, not a resurrected old entry.
//
// The caches are purely derived state, so these are host-only unit tests:
// nothing here touches a Machine or simulated cycles.
#include <gtest/gtest.h>

#include "src/cpu/block_cache.h"
#include "src/cpu/insn_cache.h"
#include "src/cpu/tlb.h"
#include "src/cpu/verdict_cache.h"
#include "src/mem/page_table.h"
#include "tests/testutil.h"

namespace rings {
namespace {

// ---------------------------------------------------------------------------
// VerdictCache: 16 direct-mapped slots, indexed segno % kEntries. Segments
// segno and segno + kEntries collide.
// ---------------------------------------------------------------------------

Sdw PressureSdw(AbsAddr base, uint64_t bound = 32) {
  Sdw sdw;
  sdw.present = true;
  sdw.base = base;
  sdw.bound = bound;
  sdw.access = MakeDataSegment(4, 4);
  return sdw;
}

TEST(VerdictCachePressure, CollidingFillDisplacesAndNeverAliases) {
  VerdictCache cache;
  constexpr uint64_t kEpoch = 1;
  // Fill every slot, then a full second wave that collides slot-for-slot.
  for (Segno s = 0; s < VerdictCache::kEntries; ++s) {
    cache.Fill(s, 4, kEpoch, PressureSdw(1000 + 100 * s));
  }
  for (Segno s = 0; s < VerdictCache::kEntries; ++s) {
    const Segno hi = s + VerdictCache::kEntries;
    cache.Fill(hi, 4, kEpoch, PressureSdw(5000 + 100 * s));
  }
  for (Segno s = 0; s < VerdictCache::kEntries; ++s) {
    const Segno hi = s + VerdictCache::kEntries;
    // The displaced first-wave segment must miss, not alias the winner.
    EXPECT_EQ(cache.Lookup(s, 4, kEpoch), nullptr) << "stale hit for segno " << s;
    const VerdictCache::Entry* e = cache.Lookup(hi, 4, kEpoch);
    ASSERT_NE(e, nullptr) << "lost fill for segno " << hi;
    EXPECT_EQ(e->base, 5000u + 100 * s);
  }
  // Re-fill of a displaced segment reclaims its slot with fresh contents.
  cache.Fill(3, 4, kEpoch, PressureSdw(7777));
  const VerdictCache::Entry* e = cache.Lookup(3, 4, kEpoch);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->base, 7777u);
  EXPECT_EQ(cache.Lookup(3 + VerdictCache::kEntries, 4, kEpoch), nullptr);
}

TEST(VerdictCachePressure, EpochBumpRetiresEveryResidentVerdict) {
  VerdictCache cache;
  for (Segno s = 0; s < VerdictCache::kEntries; ++s) {
    cache.Fill(s, 4, /*epoch=*/1, PressureSdw(1000 + s));
  }
  // The SDW cache flushed: every probe at the new epoch must miss even
  // though the slots are still populated.
  for (Segno s = 0; s < VerdictCache::kEntries; ++s) {
    EXPECT_EQ(cache.Lookup(s, 4, /*epoch=*/2), nullptr) << "stale epoch hit, segno " << s;
  }
  // Refill at the new epoch supersedes the stale entry.
  cache.Fill(5, 4, /*epoch=*/2, PressureSdw(4242));
  const VerdictCache::Entry* e = cache.Lookup(5, 4, /*epoch=*/2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->base, 4242u);
  EXPECT_EQ(cache.Lookup(5, 4, /*epoch=*/1), nullptr);
}

// ---------------------------------------------------------------------------
// InsnCache: 512 direct-mapped entries, index (wordno ^ segno*0x9E3779B1)
// & 511. For a fixed segment, wordno and wordno + kEntries collide.
// ---------------------------------------------------------------------------

TEST(InsnCachePressure, CollidingWordsDisplaceWithoutAliasing) {
  InsnCache cache;
  constexpr Segno kSeg = 9;
  // Two full waves over one segment: the second wave's wordno w + 512
  // lands on the first wave's slot for w.
  for (Wordno w = 0; w < InsnCache::kEntries; ++w) {
    cache.Put(kSeg, w, 1000 + w, MakeIns(Opcode::kLda, static_cast<int32_t>(w)));
  }
  for (Wordno w = 0; w < InsnCache::kEntries; ++w) {
    const Wordno hi = w + InsnCache::kEntries;
    cache.Put(kSeg, hi, 1000 + hi, MakeIns(Opcode::kSta, static_cast<int32_t>(hi)));
  }
  for (Wordno w = 0; w < InsnCache::kEntries; ++w) {
    const Wordno hi = w + InsnCache::kEntries;
    EXPECT_EQ(cache.Lookup(kSeg, w), nullptr) << "stale hit for wordno " << w;
    const InsnCache::Entry* e = cache.Lookup(kSeg, hi);
    ASSERT_NE(e, nullptr) << "lost fill for wordno " << hi;
    EXPECT_EQ(e->ins.opcode, Opcode::kSta);
    EXPECT_EQ(e->ins.offset, static_cast<int32_t>(hi));
    EXPECT_EQ(e->addr, 1000u + hi);
  }
  // Displaced word refills with current contents.
  cache.Put(kSeg, 7, 2007, MakeIns(Opcode::kAda, 7));
  const InsnCache::Entry* e = cache.Lookup(kSeg, 7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ins.opcode, Opcode::kAda);
  EXPECT_EQ(e->addr, 2007u);
}

TEST(InsnCachePressure, GenerationBumpRetiresAllThenRefills) {
  InsnCache cache;
  for (Wordno w = 0; w < InsnCache::kEntries; ++w) {
    cache.Put(2, w, 5000 + w, MakeIns(Opcode::kNop));
  }
  cache.Flush();  // generation bump: O(1) wholesale invalidation
  for (Wordno w = 0; w < InsnCache::kEntries; ++w) {
    EXPECT_EQ(cache.Lookup(2, w), nullptr) << "stale post-flush hit, wordno " << w;
  }
  cache.Put(2, 11, 6011, MakeIns(Opcode::kLdq, 11));
  const InsnCache::Entry* e = cache.Lookup(2, 11);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ins.opcode, Opcode::kLdq);
  EXPECT_EQ(e->addr, 6011u);
}

TEST(InsnCachePressure, SegmentInvalidationSurvivesPressure) {
  InsnCache cache;
  // Interleave two segments whose entries share slots, then drop one
  // segment; the survivor's entries must be exactly the other segment's.
  for (Wordno w = 0; w < InsnCache::kEntries / 2; ++w) {
    cache.Put(1, w, 1000 + w, MakeIns(Opcode::kLda));
    cache.Put(2, w, 9000 + w, MakeIns(Opcode::kLdq));
  }
  cache.InvalidateSegment(2);
  for (Wordno w = 0; w < InsnCache::kEntries / 2; ++w) {
    EXPECT_EQ(cache.Lookup(2, w), nullptr) << "stale hit after invalidation, wordno " << w;
    const InsnCache::Entry* e = cache.Lookup(1, w);
    if (e != nullptr) {  // entries displaced by segment 2's puts stay gone
      EXPECT_EQ(e->ins.opcode, Opcode::kLda);
      EXPECT_EQ(e->addr, 1000u + w);
    }
  }
}

// ---------------------------------------------------------------------------
// Tlb: 64 sets x 4 ways, set (pageno ^ segno*0x9E3779B1) % kSets. For a
// fixed segment, pages p, p + kSets, ... share a set.
// ---------------------------------------------------------------------------

constexpr AbsAddr kTable = 0x1000;

TEST(TlbPressure, OverfilledSetEvictsRoundRobinOnly) {
  Tlb tlb;
  // 2 * kWays colliding pages: the second wave evicts the first wave
  // way-for-way, in fill order.
  for (uint64_t i = 0; i < 2 * Tlb::kWays; ++i) {
    tlb.Fill(6, i * Tlb::kSets, kTable, 0x4000 + i * kPageWords);
  }
  for (uint64_t i = 0; i < Tlb::kWays; ++i) {
    EXPECT_EQ(tlb.Lookup(6, i * Tlb::kSets, kTable), nullptr) << "stale way, fill " << i;
  }
  for (uint64_t i = Tlb::kWays; i < 2 * Tlb::kWays; ++i) {
    const Tlb::Entry* e = tlb.Lookup(6, i * Tlb::kSets, kTable);
    ASSERT_NE(e, nullptr) << "lost fill " << i;
    EXPECT_EQ(e->frame, 0x4000 + i * kPageWords);
  }
  // An evicted page re-walks and refills — with a *new* frame — and the
  // hit must serve the new frame, not the evicted one.
  tlb.Fill(6, 0, kTable, 0xF000);
  const Tlb::Entry* e = tlb.Lookup(6, 0, kTable);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frame, 0xF000u);
}

TEST(TlbPressure, FullCapacityFillThenFlushLeavesNoSurvivors) {
  Tlb tlb;
  // Fill well past total capacity (every set overflows), then flush.
  const uint64_t kFills = 2 * Tlb::kEntries;
  for (uint64_t i = 0; i < kFills; ++i) {
    tlb.Fill(3, i, kTable, 0x10000 + i * kPageWords);
  }
  tlb.Flush();
  for (uint64_t i = 0; i < kFills; ++i) {
    EXPECT_EQ(tlb.Lookup(3, i, kTable), nullptr) << "stale post-flush hit, page " << i;
  }
  // Refill after the generation bump serves fresh translations.
  tlb.Fill(3, 5, kTable, 0xABC00);
  const Tlb::Entry* e = tlb.Lookup(3, 5, kTable);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frame, 0xABC00u);
}

TEST(TlbPressure, SnoopUnderPressureDropsOnlyTheStoredPtw) {
  Tlb tlb;
  // Saturate one segment's sets, then snoop a single PTW store.
  for (uint64_t i = 0; i < Tlb::kEntries; ++i) {
    tlb.Fill(8, i, kTable, 0x20000 + i * kPageWords);
  }
  const size_t resident_before = [&] {
    size_t n = 0;
    for (uint64_t i = 0; i < Tlb::kEntries; ++i) {
      n += tlb.Lookup(8, i, kTable) != nullptr;
    }
    return n;
  }();
  ASSERT_GT(resident_before, 0u);
  // Pick a resident page and store to its PTW.
  uint64_t victim = 0;
  for (uint64_t i = 0; i < Tlb::kEntries; ++i) {
    if (tlb.Lookup(8, i, kTable) != nullptr) {
      victim = i;
      break;
    }
  }
  EXPECT_EQ(tlb.NoteStore(kTable + victim), 1u);
  EXPECT_EQ(tlb.Lookup(8, victim, kTable), nullptr);
  size_t resident_after = 0;
  for (uint64_t i = 0; i < Tlb::kEntries; ++i) {
    resident_after += tlb.Lookup(8, i, kTable) != nullptr;
  }
  EXPECT_EQ(resident_after, resident_before - 1);
}

// ---------------------------------------------------------------------------
// BlockCache: 256 direct-mapped blocks, index (start ^ segno*0x9E3779B1)
// & 255. For a fixed segment, starts s and s + kEntries collide.
// ---------------------------------------------------------------------------

BlockCache::Block* FillBlock(BlockCache& cache, Segno segno, Wordno start, uint16_t count) {
  BlockCache::Block* b = cache.SlotFor(segno, start);
  b->segno = segno;
  b->start = start;
  b->count = count;
  b->ring = 4;
  b->checks = false;
  b->paged = false;
  b->base = 0;
  b->gen = cache.generation();
  return b;
}

TEST(BlockCachePressure, CollidingStartsDisplaceWithoutAliasing) {
  BlockCache cache;
  constexpr Segno kSeg = 12;
  for (Wordno s = 0; s < BlockCache::kEntries; ++s) {
    FillBlock(cache, kSeg, s, 1);
  }
  for (Wordno s = 0; s < BlockCache::kEntries; ++s) {
    FillBlock(cache, kSeg, s + BlockCache::kEntries, 2);
  }
  for (Wordno s = 0; s < BlockCache::kEntries; ++s) {
    EXPECT_EQ(cache.Lookup(kSeg, s), nullptr) << "stale block at start " << s;
    const BlockCache::Block* b = cache.Lookup(kSeg, s + BlockCache::kEntries);
    ASSERT_NE(b, nullptr) << "lost block at start " << s + BlockCache::kEntries;
    EXPECT_EQ(b->count, 2);
  }
}

TEST(BlockCachePressure, FlushAndSegmentInvalidationRetireBlocks) {
  BlockCache cache;
  FillBlock(cache, 3, 10, 4);
  FillBlock(cache, 5, 10, 4);
  EXPECT_EQ(cache.InvalidateSegment(3), 1u);
  EXPECT_EQ(cache.Lookup(3, 10), nullptr);
  ASSERT_NE(cache.Lookup(5, 10), nullptr);
  const uint64_t version_before = cache.version();
  cache.Flush();  // generation bump retires everything, bumps version
  EXPECT_EQ(cache.Lookup(5, 10), nullptr);
  EXPECT_GT(cache.version(), version_before);
  // Refill after the flush is served at the new generation.
  FillBlock(cache, 5, 10, 7);
  const BlockCache::Block* b = cache.Lookup(5, 10);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 7);
}

}  // namespace
}  // namespace rings

// Remaining CPU behaviours: the descriptor cache, cycle accounting, 645
// mode degradation, immediates, and counters.
#include <gtest/gtest.h>

#include "src/cpu/sdw_cache.h"
#include "tests/testutil.h"

namespace rings {
namespace {

TEST(SdwCache, HitAndMiss) {
  SdwCache cache;
  Sdw sdw;
  sdw.present = true;
  sdw.base = 100;
  EXPECT_EQ(cache.Lookup(5), std::nullopt);
  cache.Insert(5, sdw);
  ASSERT_TRUE(cache.Lookup(5).has_value());
  EXPECT_EQ(cache.Lookup(5)->base, 100u);
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(SdwCache, ConflictEviction) {
  SdwCache cache;
  Sdw a;
  a.present = true;
  a.base = 1;
  Sdw b;
  b.present = true;
  b.base = 2;
  cache.Insert(3, a);
  cache.Insert(3 + SdwCache::kEntries, b);  // same slot
  EXPECT_EQ(cache.Lookup(3), std::nullopt);
  ASSERT_TRUE(cache.Lookup(3 + SdwCache::kEntries).has_value());
}

TEST(SdwCache, InvalidateAndFlush) {
  SdwCache cache;
  Sdw sdw;
  sdw.present = true;
  cache.Insert(1, sdw);
  cache.Insert(2, sdw);
  cache.Invalidate(1);
  EXPECT_EQ(cache.Lookup(1), std::nullopt);
  EXPECT_TRUE(cache.Lookup(2).has_value());
  cache.Flush();
  EXPECT_EQ(cache.Lookup(2), std::nullopt);
}

TEST(SdwCache, DisabledAlwaysMisses) {
  SdwCache cache;
  cache.set_enabled(false);
  Sdw sdw;
  sdw.present = true;
  cache.Insert(1, sdw);
  EXPECT_EQ(cache.Lookup(1), std::nullopt);
}

TEST(SdwCacheIntegration, SupervisorSdwEditInvalidates) {
  BareMachine m;
  const Segno data = m.AddSegment({5}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, 0), MakeInsPr(Opcode::kLda, 2, 0)},
                               UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  // Revoke read by rewriting the SDW; the cached copy must not be used.
  Sdw sdw = *m.dseg().Fetch(data);
  sdw.access.flags.read = false;
  m.dseg().Store(data, sdw);
  m.cpu().InvalidateSdw(data);
  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
}

TEST(CycleAccounting, InstructionAndMemoryCosts) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  const CycleModel& model = m.cpu().cycle_model();
  const uint64_t before = m.cpu().cycles();
  m.StepTrap();
  const uint64_t first = m.cpu().cycles() - before;
  // First instruction: base + SDW fetch (miss) + instruction read.
  EXPECT_EQ(first, model.instruction_base + model.sdw_fetch + model.memory_ref);
  const uint64_t mid = m.cpu().cycles();
  m.StepTrap();
  // Second: descriptor cache hit, so no sdw_fetch cost.
  EXPECT_EQ(m.cpu().cycles() - mid, model.instruction_base + model.memory_ref);
}

TEST(CycleAccounting, TrapAndRettCosts) {
  BareMachine m;
  m.SetIpr(4, 63, 0);
  const CycleModel& model = m.cpu().cycle_model();
  const uint64_t before = m.cpu().cycles();
  m.StepTrap();
  EXPECT_GE(m.cpu().cycles() - before, model.trap);
  const TrapState trap = m.cpu().TakeTrap();
  const uint64_t mid = m.cpu().cycles();
  m.cpu().Rett(trap.regs);
  EXPECT_EQ(m.cpu().cycles() - mid, model.rett);
}

TEST(Immediates, LoadForms) {
  BareMachine m;
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kLdai, -7),
          MakeIns(Opcode::kLdqi, 9),
          MakeInsReg(Opcode::kLdxi, 2, 1000),
          MakeIns(Opcode::kAdai, 3),
      },
      UserCode());
  m.SetIpr(4, code, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  }
  EXPECT_EQ(static_cast<int64_t>(m.cpu().regs().a), -4);
  EXPECT_EQ(m.cpu().regs().q, 9u);
  EXPECT_EQ(m.cpu().regs().x[2], 1000u);
}

TEST(RegisterOps, ShiftsNegateExchange) {
  BareMachine m;
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kLdai, 5),
          MakeIns(Opcode::kAls, 3),   // 40
          MakeIns(Opcode::kArs, 2),   // 10
          MakeIns(Opcode::kLdqi, 7),
          MakeIns(Opcode::kXaq),      // A=7 Q=10
          MakeIns(Opcode::kNega),     // A=-7
      },
      UserCode());
  m.SetIpr(4, code, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 40u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 10u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 7u);
  EXPECT_EQ(m.cpu().regs().q, 10u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(static_cast<int64_t>(m.cpu().regs().a), -7);
}

TEST(RegisterOps, ShiftBoundaries) {
  BareMachine m;
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kLdai, 1),
          MakeIns(Opcode::kAls, 63),
          MakeIns(Opcode::kArs, 63),
          MakeIns(Opcode::kAls, 64),  // shifts everything out
      },
      UserCode());
  m.SetIpr(4, code, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, uint64_t{1} << 63);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 1u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 0u);
}

TEST(ImmediatesDoNotTouchMemory, NoChecksCounted) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kLdai, 5)}, UserCode());
  m.SetIpr(4, code, 0);
  m.StepTrap();
  EXPECT_EQ(m.cpu().counters().checks_read, 0u);
  EXPECT_EQ(m.cpu().counters().checks_write, 0u);
  // One memory read: the instruction fetch itself.
  EXPECT_EQ(m.cpu().counters().memory_reads, 1u);
}

TEST(Mode645, RingBracketsIgnoredFlagsEnforced) {
  BareMachine m;
  m.cpu().set_mode(ProtectionMode::kFlags645);
  // Brackets would deny ring 4, but 645 SDWs have no ring fields: only
  // flags matter.
  const Segno data = m.AddSegment({5}, MakeDataSegment(0, 0));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, 0), MakeInsPr(Opcode::kSta, 2, 0)},
                               MakeProcedureSegment(0, 0));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);  // read passes on flags
  EXPECT_EQ(m.cpu().regs().a, 5u);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);  // write passes on flags
}

TEST(Mode645, FlagsStillDeny) {
  BareMachine m;
  m.cpu().set_mode(ProtectionMode::kFlags645);
  const Segno data = m.AddSegment({5}, MakeReadOnlyDataSegment(0));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kSta, 2, 0)}, MakeProcedureSegment(0, 0));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kWriteViolation);
}

TEST(Mode645, CallAndReturnDoNotExist) {
  BareMachine m;
  m.cpu().set_mode(ProtectionMode::kFlags645);
  const Segno code = m.AddCode({MakeInsPr(Opcode::kCall, 2, 0), MakeInsPr(Opcode::kRet, 7, 0)},
                               MakeProcedureSegment(0, 0));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kIllegalOpcode);
  m.cpu().TakeTrap();
  m.SetIpr(4, code, 1);
  m.cpu().Rett(m.cpu().regs());
  EXPECT_EQ(m.StepTrap(), TrapCause::kIllegalOpcode);
}

TEST(Mode645, PrivilegedStillRestrictedToMasterMode) {
  BareMachine m;
  m.cpu().set_mode(ProtectionMode::kFlags645);
  const Segno code = m.AddCode({MakeIns(Opcode::kHlt)}, MakeProcedureSegment(0, 0));
  m.SetIpr(4, code, 0);  // slave mode (nonzero ring)
  EXPECT_EQ(m.StepTrap(), TrapCause::kPrivilegedViolation);
}

TEST(Counters, SinceComputesDeltas) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  m.StepTrap();
  const Counters snapshot = m.cpu().counters();
  m.StepTrap();
  const Counters delta = m.cpu().counters().Since(snapshot);
  EXPECT_EQ(delta.instructions, 1u);
  EXPECT_EQ(delta.checks_fetch, 1u);
}

TEST(EventTrace, RecordsRingSwitches) {
  BareMachine m;
  for (Ring r = 0; r < kRingCount; ++r) {
    m.AddSegment({}, MakeStackSegment(r), 16);
  }
  EventTrace trace;
  trace.set_enabled(true);
  m.cpu().set_trace(&trace);
  const Segno callee = m.AddCode({MakeInsPr(Opcode::kRet, 7, 0)},
                                 MakeProcedureSegment(1, 1, 5, 1));
  const Segno caller =
      m.AddCode({MakeInsPr(Opcode::kCall, 2, 0), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, caller, 0);
  m.SetPr(2, 4, callee, 0);
  m.SetPr(kPrStack, 4, 4, 16);
  m.StepTrap();  // CALL 4 -> 1
  m.StepTrap();  // RET 1 -> 4
  const auto rings = trace.RingSwitchSequence();
  ASSERT_EQ(rings.size(), 2u);
  EXPECT_EQ(rings[0], 1);
  EXPECT_EQ(rings[1], 4);
}

}  // namespace
}  // namespace rings

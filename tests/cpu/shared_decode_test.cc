// Fleet-shared read-only decode (src/cpu/shared_decode.h): machines
// loading the identical program share one pre-decoded image through the
// process-wide registry, and a machine that modifies its own code
// diverges from the image word-by-word (the copy-on-write split) without
// its siblings ever seeing the change.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cpu/shared_decode.h"
#include "src/sys/machine.h"

namespace rings {
namespace {

// A guest that copies one word from the `patch` data segment over its own
// `target` instruction, executes it, and exits with the A register:
//
//   main w0: lda src,*     main w4: src -> patch[0]
//        w1: sta dst,*          w5: dst -> main[2]
//        w2: ldai 7  (target)
//        w3: mme 0
//
// Poking patch[0] with the original `ldai 7` encoding makes the
// self-store a no-op (exit 7); poking a different instruction makes the
// guest genuinely self-modifying (exit = the new immediate).
constexpr char kSelfPatchSource[] = R"(
        .segment main
start:  lda   src,*
        sta   dst,*
target: ldai  7
        mme   0
src:    .its  4, patch, 0
dst:    .its  4, main, 2

        .segment patch
        .word 0
)";

std::unique_ptr<Machine> MakeSelfPatchMachine(bool shared_decode) {
  MachineConfig config;
  config.memory_words = size_t{1} << 18;
  config.shared_decode = shared_decode;
  auto machine = std::make_unique<Machine>(config);
  SegmentAccess writable_code = MakeProcedureSegment(4, 4);
  writable_code.flags.write = true;  // the guest stores into its own code
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(writable_code);
  acls["patch"] = AccessControlList::Public(MakeDataSegment(4, 4));
  std::string error;
  if (!machine->LoadProgramSource(kSelfPatchSource, acls, &error)) {
    ADD_FAILURE() << "load failed: " << error;
    return nullptr;
  }
  return machine;
}

int64_t RunToExit(Machine* machine) {
  Process* process = machine->Login("test");
  machine->supervisor().InitiateAll(process);
  machine->Start(process, "main", "start", kUserRing);
  machine->Run(10'000'000);
  EXPECT_EQ(process->state, ProcessState::kExited);
  return process->exit_code;
}

TEST(SharedDecode, SiblingsShareOneImageAndBuildOnce) {
  const size_t live_before = SharedDecodeRegistry::Instance().LiveImages();
  auto a = MakeSelfPatchMachine(/*shared_decode=*/true);
  auto b = MakeSelfPatchMachine(/*shared_decode=*/true);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->cpu().has_decode_image());
  EXPECT_TRUE(b->cpu().has_decode_image());
  // One build between the two siblings; the identical program identity
  // resolves to one registry image.
  EXPECT_EQ(a->cpu().counters().shared_decode_builds +
                b->cpu().counters().shared_decode_builds,
            1u);
  EXPECT_EQ(SharedDecodeRegistry::Instance().LiveImages(), live_before + 1);
  EXPECT_GT(a->cpu().decode_image_bytes(), 0u);
  EXPECT_EQ(a->cpu().decode_image_bytes(), b->cpu().decode_image_bytes());

  // The image is refcounted: it outlives either single machine and
  // expires with the last.
  a.reset();
  EXPECT_EQ(SharedDecodeRegistry::Instance().LiveImages(), live_before + 1);
  b.reset();
  EXPECT_EQ(SharedDecodeRegistry::Instance().LiveImages(), live_before);
}

TEST(SharedDecode, PrivateImagesWhenSharingIsDisabled) {
  const size_t live_before = SharedDecodeRegistry::Instance().LiveImages();
  auto a = MakeSelfPatchMachine(/*shared_decode=*/false);
  auto b = MakeSelfPatchMachine(/*shared_decode=*/false);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Every machine decodes for itself and nothing is published.
  EXPECT_EQ(a->cpu().counters().shared_decode_builds, 1u);
  EXPECT_EQ(b->cpu().counters().shared_decode_builds, 1u);
  EXPECT_EQ(SharedDecodeRegistry::Instance().LiveImages(), live_before);
}

TEST(SharedDecode, SelfModifyingSiblingDivergesWithoutTouchingTheImage) {
  auto a = MakeSelfPatchMachine(/*shared_decode=*/true);
  auto b = MakeSelfPatchMachine(/*shared_decode=*/true);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // A's self-store rewrites `target` with its original encoding (a
  // content no-op); B's rewrites it with `ldai 31`.
  ASSERT_TRUE(a->PokeSegment("patch", 0, EncodeInstruction(MakeIns(Opcode::kLdai, 7))));
  ASSERT_TRUE(b->PokeSegment("patch", 0, EncodeInstruction(MakeIns(Opcode::kLdai, 31))));

  // B runs (and diverges) first; A still reads the shared image after.
  EXPECT_EQ(RunToExit(b.get()), 31);
  EXPECT_EQ(RunToExit(a.get()), 7);

  // B's rewritten word missed the image (the CoW split) and was decoded
  // live; A's identical word kept hitting it — B's store never reached
  // the shared copy.
  EXPECT_GT(b->cpu().counters().shared_decode_misses, 0u);
  EXPECT_EQ(a->cpu().counters().shared_decode_misses, 0u);
  EXPECT_GT(a->cpu().counters().shared_decode_hits, 0u);
}

}  // namespace
}  // namespace rings

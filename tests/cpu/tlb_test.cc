// Unit tests for the software TLB: fills, probes, the PTW-store snoop,
// the per-segment and per-page invalidations, the O(1) flush, and the
// deterministic round-robin eviction within a set.
#include "src/cpu/tlb.h"

#include <gtest/gtest.h>

#include "src/mem/page_table.h"

namespace rings {
namespace {

constexpr AbsAddr kTable = 0x1000;

TEST(TlbTest, MissThenHit) {
  Tlb tlb;
  EXPECT_EQ(tlb.Lookup(3, 7, kTable), nullptr);
  tlb.Fill(3, 7, kTable, 0x4000);
  const Tlb::Entry* e = tlb.Lookup(3, 7, kTable);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frame, 0x4000u);
}

TEST(TlbTest, TableBaseIsPartOfTheKey) {
  // A descriptor edit that moves the page table changes the base the
  // caller probes with; the old translation must not answer.
  Tlb tlb;
  tlb.Fill(3, 7, kTable, 0x4000);
  EXPECT_EQ(tlb.Lookup(3, 7, kTable + 0x100), nullptr);
}

TEST(TlbTest, DistinguishesSegments) {
  Tlb tlb;
  tlb.Fill(3, 7, kTable, 0x4000);
  EXPECT_EQ(tlb.Lookup(4, 7, kTable), nullptr);
}

TEST(TlbTest, NoteStoreDropsExactlyTheStoredPtw) {
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  tlb.Fill(3, 1, kTable, 0x4400);
  EXPECT_EQ(tlb.NoteStore(kTable + 1), 1u);  // page 1's PTW
  EXPECT_EQ(tlb.Lookup(3, 1, kTable), nullptr);
  EXPECT_NE(tlb.Lookup(3, 0, kTable), nullptr);  // untouched survives
}

TEST(TlbTest, NoteStoreOnUnrelatedAddressDropsNothing) {
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  EXPECT_EQ(tlb.NoteStore(0x9999), 0u);
  EXPECT_NE(tlb.Lookup(3, 0, kTable), nullptr);
}

TEST(TlbTest, SnoopStillWorksAfterFilterRebuild) {
  // The first snoop that scans rebuilds the membership filter from the
  // survivors; those survivors must still be droppable afterwards.
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  tlb.Fill(3, 1, kTable, 0x4400);
  ASSERT_EQ(tlb.NoteStore(kTable + 0), 1u);
  EXPECT_EQ(tlb.NoteStore(kTable + 1), 1u);
  EXPECT_EQ(tlb.Lookup(3, 1, kTable), nullptr);
}

TEST(TlbTest, InvalidateSegmentDropsAllItsPages) {
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  tlb.Fill(3, 1, kTable, 0x4400);
  tlb.Fill(5, 0, 0x2000, 0x8000);
  EXPECT_EQ(tlb.InvalidateSegment(3), 2u);
  EXPECT_EQ(tlb.Lookup(3, 0, kTable), nullptr);
  EXPECT_EQ(tlb.Lookup(3, 1, kTable), nullptr);
  EXPECT_NE(tlb.Lookup(5, 0, 0x2000), nullptr);
}

TEST(TlbTest, InvalidatePageDropsOnePage) {
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  tlb.Fill(3, 1, kTable, 0x4400);
  EXPECT_EQ(tlb.InvalidatePage(3, 0), 1u);
  EXPECT_EQ(tlb.Lookup(3, 0, kTable), nullptr);
  EXPECT_NE(tlb.Lookup(3, 1, kTable), nullptr);
}

TEST(TlbTest, FlushDropsEverything) {
  Tlb tlb;
  tlb.Fill(3, 0, kTable, 0x4000);
  tlb.Fill(5, 0, 0x2000, 0x8000);
  tlb.Flush();
  EXPECT_EQ(tlb.Lookup(3, 0, kTable), nullptr);
  EXPECT_EQ(tlb.Lookup(5, 0, 0x2000), nullptr);
}

TEST(TlbTest, RefillUpdatesFrameInPlace) {
  // After a snoop dropped a translation, the re-walk refills the same key
  // with the page's new frame.
  Tlb tlb;
  tlb.Fill(3, 7, kTable, 0x4000);
  tlb.Fill(3, 7, kTable, 0x7000);
  const Tlb::Entry* e = tlb.Lookup(3, 7, kTable);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frame, 0x7000u);
}

TEST(TlbTest, SetConflictEvictsDeterministically) {
  // Pages p, p + kSets, p + 2*kSets, ... of one segment all land in the
  // same set; the fifth fill must evict exactly the round-robin victim
  // (way 0, holding the first fill) and leave the other three resident.
  Tlb tlb;
  for (uint64_t i = 0; i < Tlb::kWays + 1; ++i) {
    tlb.Fill(3, i * Tlb::kSets, kTable, 0x4000 + i * kPageWords);
  }
  EXPECT_EQ(tlb.Lookup(3, 0, kTable), nullptr);  // evicted
  for (uint64_t i = 1; i < Tlb::kWays + 1; ++i) {
    EXPECT_NE(tlb.Lookup(3, i * Tlb::kSets, kTable), nullptr) << "fill " << i;
  }
}

}  // namespace
}  // namespace rings

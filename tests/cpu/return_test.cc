// Figure 9: the RETURN instruction — upward returns raise all PR rings,
// the return ring comes from the effective ring, downward returns trap,
// and the return-to-proper-ring security argument holds.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

struct RetRig {
  BareMachine m;
  Segno caller_code = 0;  // executable in ring 4
  Segno callee_code = 0;  // executable in ring 1, gate ext to 5
  Segno ret4_code = 0;    // a RET executable in ring 4

  RetRig() {
    for (Ring r = 0; r < kRingCount; ++r) {
      m.AddSegment({}, MakeStackSegment(r), 64);
    }
    caller_code = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)},
                            MakeProcedureSegment(4, 4));
    callee_code = m.AddCode({MakeInsPr(Opcode::kRet, 7, 0), MakeIns(Opcode::kNop)},
                            MakeProcedureSegment(1, 1, 5, 1));
    ret4_code = m.AddCode({MakeInsPr(Opcode::kRet, 7, 0)}, MakeProcedureSegment(4, 4));
  }
};

TEST(Return, UpwardReturnEntersRingFromEffectiveRing) {
  RetRig rig;
  rig.m.SetIpr(1, rig.callee_code, 0);
  // The return pointer carries the caller's ring, as CALL left it.
  rig.m.SetPr(7, 4, rig.caller_code, 1);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().ipr.ring, 4);
  EXPECT_EQ(rig.m.cpu().regs().ipr.segno, rig.caller_code);
  EXPECT_EQ(rig.m.cpu().regs().ipr.wordno, 1u);
  EXPECT_EQ(rig.m.cpu().counters().returns_upward, 1u);
}

TEST(Return, UpwardReturnRaisesAllPrRings) {
  // "In the case that the return is upward, the ring number fields in all
  // pointer registers are replaced with the larger of their current
  // values and the new ring of execution."
  RetRig rig;
  rig.m.SetIpr(1, rig.callee_code, 0);
  rig.m.SetPr(7, 4, rig.caller_code, 1);
  rig.m.SetPr(2, 1, 9, 0);  // a callee pointer at ring 1
  rig.m.SetPr(3, 6, 9, 0);  // already above the new ring
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().pr[2].ring, 4);  // raised
  EXPECT_EQ(rig.m.cpu().regs().pr[3].ring, 6);  // kept
  for (const PointerRegister& pr : rig.m.cpu().regs().pr) {
    EXPECT_GE(pr.ring, 4);
  }
}

TEST(Return, SameRingReturnLeavesPrRings) {
  RetRig rig;
  rig.m.SetIpr(4, rig.ret4_code, 0);
  rig.m.SetPr(7, 4, rig.caller_code, 1);
  rig.m.SetPr(3, 6, 9, 0);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().ipr.ring, 4);
  EXPECT_EQ(rig.m.cpu().regs().pr[3].ring, 6);
  EXPECT_EQ(rig.m.cpu().counters().returns_same_ring, 1u);
}

TEST(Return, CannotReturnBelowCallerRing) {
  // The security argument: PR rings can never drop below the ring of
  // execution, so a malicious caller cannot make the callee return into a
  // lower ring than the caller's own. Here a ring-4 "caller pointer"
  // claims ring 2 — but hardware-maintained pointers cannot hold 2 while
  // executing in ring 4; if the callee nevertheless fabricates the return
  // through its own low-ring pointer, the return targets caller code that
  // executes in ring 4 only, and the bracket floor check refuses ring 2.
  RetRig rig;
  rig.m.SetIpr(1, rig.callee_code, 0);
  rig.m.cpu().regs().pr[7] = PointerRegister{2, rig.caller_code, 1};
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Return, DownwardReturnTrapsForSoftware) {
  // A ring-5 procedure (entered by an upward call) returning to ring-4
  // code: effective ring 5 exceeds the target's execute top 4.
  RetRig rig;
  const Segno high_code =
      rig.m.AddCode({MakeInsPr(Opcode::kRet, 7, 0)}, MakeProcedureSegment(5, 5));
  rig.m.SetIpr(5, high_code, 0);
  rig.m.SetPr(7, 5, rig.caller_code, 1);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kDownwardReturn);
  // The target is exposed for the supervisor's gate-stack validation.
  EXPECT_EQ(rig.m.cpu().trap_state().tpr.segno, rig.caller_code);
  EXPECT_EQ(rig.m.cpu().trap_state().tpr.wordno, 1u);
}

TEST(Return, ExecuteFlagOffDenied) {
  RetRig rig;
  SegmentAccess access = MakeProcedureSegment(4, 4);
  access.flags.execute = false;
  const Segno dead = rig.m.AddCode({MakeIns(Opcode::kNop)}, access);
  rig.m.SetIpr(4, rig.ret4_code, 0);
  rig.m.SetPr(7, 4, dead, 0);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Return, ViaStackSavedIndirectWord) {
  // The paper's stack convention: the caller saves the return point in its
  // stack frame; the callee returns through that indirect word. The ring
  // field of the saved word keeps the caller's ring, so validation is
  // automatic.
  RetRig rig;
  // Caller (ring 4) saves a return pointer into its ring-4 stack (segno 4)
  // at word 20, then "calls" — we start directly in the callee with sp
  // pointing at the frame.
  const Word saved = EncodeIndirectWord(IndirectWord{4, false, rig.caller_code, 1});
  rig.m.Poke(4, 20, saved);
  rig.m.SetIpr(1, rig.callee_code, 1);
  // Callee returns via `ret pr6|4,*`-style addressing: here PR6 points at
  // the frame and word 4 holds the saved return pointer.
  const Segno ret_code = rig.m.AddCode({MakeInsPr(Opcode::kRet, 6, 4, /*indirect=*/true)},
                                       MakeProcedureSegment(1, 1, 5, 1));
  rig.m.SetIpr(1, ret_code, 0);
  rig.m.SetPr(6, 4, /*segno=*/4, /*wordno=*/16);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().ipr.ring, 4);
  EXPECT_EQ(rig.m.cpu().regs().ipr.segno, rig.caller_code);
}

TEST(Return, EffectiveRingSweepMatchesFigure9) {
  // For every execute-bracket top and effective ring: enter, or trap the
  // way Figure 9 specifies.
  for (unsigned top = 0; top < kRingCount; ++top) {
    for (Ring eff = 0; eff < kRingCount; ++eff) {
      BareMachine m;
      const Segno target =
          m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)},
                    MakeProcedureSegment(0, static_cast<Ring>(top)));
      const Segno code = m.AddCode({MakeInsPr(Opcode::kRet, 7, 0)}, MakeProcedureSegment(0, 7));
      // Execute in ring 0 so any effective ring >= execution ring is
      // expressible through the pointer.
      m.SetIpr(0, code, 0);
      m.cpu().regs().pr[7] = PointerRegister{eff, target, 1};
      const TrapCause cause = m.StepTrap();
      if (eff <= top) {
        EXPECT_EQ(cause, TrapCause::kNone) << "top=" << top << " eff=" << unsigned(eff);
        EXPECT_EQ(m.cpu().regs().ipr.ring, eff);
      } else {
        EXPECT_EQ(cause, TrapCause::kDownwardReturn) << "top=" << top << " eff=" << unsigned(eff);
      }
    }
  }
}

}  // namespace
}  // namespace rings

// The access-verdict and decoded-instruction caches (the host-side fast
// path): unit behavior of the caches themselves, plus bare-machine checks
// that the fast path engages, never changes simulated cycles, retires
// verdicts on flush/ring/epoch changes, and sees self-modifying code.
#include <gtest/gtest.h>

#include "src/cpu/insn_cache.h"
#include "src/cpu/verdict_cache.h"
#include "tests/testutil.h"

namespace rings {
namespace {

// ---------------------------------------------------------------------------
// VerdictCache unit behavior.
// ---------------------------------------------------------------------------

Sdw TestSdw(const SegmentAccess& access, AbsAddr base = 1000, uint64_t bound = 16) {
  Sdw sdw;
  sdw.present = true;
  sdw.base = base;
  sdw.bound = bound;
  sdw.access = access;
  return sdw;
}

TEST(VerdictCacheUnit, FillComputesPerRingVerdicts) {
  VerdictCache cache;
  // Data segment: write bracket [0,2], read bracket [0,4].
  cache.Fill(7, 4, 1, TestSdw(MakeDataSegment(2, 4)));
  const VerdictCache::Entry* e = cache.Lookup(7, 4, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->read_ok);
  EXPECT_FALSE(e->write_ok);  // ring 4 above the write bracket
  EXPECT_FALSE(e->execute_ok);
  EXPECT_TRUE(e->indirect_ok);
  EXPECT_EQ(e->base, 1000u);
  EXPECT_EQ(e->bound, 16u);
  EXPECT_FALSE(e->paged);
  EXPECT_FALSE(e->flags_execute);

  cache.Fill(7, 2, 1, TestSdw(MakeDataSegment(2, 4)));
  e = cache.Lookup(7, 2, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->write_ok);  // ring 2 is inside the write bracket
}

TEST(VerdictCacheUnit, LookupDemandsExactSegnoRingEpoch) {
  VerdictCache cache;
  cache.Fill(7, 4, 3, TestSdw(MakeDataSegment(2, 4)));
  EXPECT_NE(cache.Lookup(7, 4, 3), nullptr);
  // A different ring was never vouched for.
  EXPECT_EQ(cache.Lookup(7, 3, 3), nullptr);
  // A flush-epoch bump retires the verdict.
  EXPECT_EQ(cache.Lookup(7, 4, 4), nullptr);
  // A different segment mapping to the same slot misses.
  EXPECT_EQ(cache.Lookup(7 + static_cast<Segno>(VerdictCache::kEntries), 4, 3), nullptr);
}

TEST(VerdictCacheUnit, InvalidateSegmentSlotAndFlush) {
  VerdictCache cache;
  cache.Fill(7, 4, 1, TestSdw(MakeDataSegment(2, 4)));
  cache.InvalidateSegment(7);
  EXPECT_EQ(cache.Lookup(7, 4, 1), nullptr);

  cache.Fill(7, 4, 1, TestSdw(MakeDataSegment(2, 4)));
  cache.InvalidateSlot(7 % VerdictCache::kEntries);
  EXPECT_EQ(cache.Lookup(7, 4, 1), nullptr);

  cache.Fill(7, 4, 1, TestSdw(MakeDataSegment(2, 4)));
  cache.Flush();
  EXPECT_EQ(cache.Lookup(7, 4, 1), nullptr);
}

TEST(VerdictCacheUnit, ExecuteVerdictTracksBracketFloor) {
  VerdictCache cache;
  // Procedure segment executable only in [2,3].
  cache.Fill(9, 4, 1, TestSdw(MakeProcedureSegment(2, 3)));
  const VerdictCache::Entry* e = cache.Lookup(9, 4, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->execute_ok);  // ring 4 above the execute bracket
  EXPECT_TRUE(e->flags_execute);
  EXPECT_EQ(e->r1, 2u);

  cache.Fill(9, 3, 1, TestSdw(MakeProcedureSegment(2, 3)));
  e = cache.Lookup(9, 3, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->execute_ok);
}

// ---------------------------------------------------------------------------
// InsnCache unit behavior.
// ---------------------------------------------------------------------------

TEST(InsnCacheUnit, PutLookupFlushInvalidate) {
  InsnCache cache;
  const Instruction ins = MakeIns(Opcode::kLdai, 42);
  cache.Put(12, 5, 2000, ins);

  const InsnCache::Entry* e = cache.Lookup(12, 5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->addr, 2000u);
  EXPECT_EQ(e->ins, ins);
  EXPECT_EQ(cache.Lookup(12, 6), nullptr);
  EXPECT_EQ(cache.Lookup(13, 5), nullptr);

  cache.InvalidateSegment(12);
  EXPECT_EQ(cache.Lookup(12, 5), nullptr);

  cache.Put(12, 5, 2000, ins);
  cache.Flush();
  EXPECT_EQ(cache.Lookup(12, 5), nullptr);
}

// ---------------------------------------------------------------------------
// Bare-machine behavior of the combined fast path.
// ---------------------------------------------------------------------------

// A three-instruction loop reading and writing a data segment. Returns
// the machine for counter/cycle inspection after `steps` instructions.
struct LoopRig {
  BareMachine m;
  Segno data = 0;
  Segno code = 0;

  explicit LoopRig(bool fast_path, int steps = 300) {
    m.cpu().set_fast_path_enabled(fast_path);
    data = m.AddSegment({100, 200}, MakeDataSegment(4, 4));
    code = m.AddCode(
        {
            MakeInsPr(Opcode::kLda, 2, 0),
            MakeInsPr(Opcode::kSta, 2, 1),
            MakeIns(Opcode::kTra, 0),
        },
        UserCode());
    m.SetIpr(4, code, 0);
    m.SetPr(2, 4, data, 0);
    Steps(steps);
  }

  void Steps(int steps) {
    for (int i = 0; i < steps; ++i) {
      ASSERT_EQ(m.StepTrap(), TrapCause::kNone) << "step " << i;
    }
  }
};

TEST(FastPathBare, SimulatedCostIdenticalOnAndOff) {
  LoopRig on(true);
  LoopRig off(false);
  EXPECT_GT(on.m.cpu().counters().verdict_hits, 0u);
  EXPECT_GT(on.m.cpu().counters().insn_cache_hits, 0u);
  EXPECT_EQ(off.m.cpu().counters().verdict_hits, 0u);
  EXPECT_EQ(on.m.cpu().cycles(), off.m.cpu().cycles());
  EXPECT_EQ(on.m.cpu().counters().instructions, off.m.cpu().counters().instructions);
  EXPECT_EQ(on.m.cpu().counters().memory_reads, off.m.cpu().counters().memory_reads);
  EXPECT_EQ(on.m.cpu().counters().memory_writes, off.m.cpu().counters().memory_writes);
  EXPECT_EQ(on.m.cpu().counters().sdw_fetches, off.m.cpu().counters().sdw_fetches);
  EXPECT_EQ(on.m.cpu().counters().sdw_cache_hits, off.m.cpu().counters().sdw_cache_hits);
  EXPECT_EQ(on.m.cpu().counters().TotalChecks(), off.m.cpu().counters().TotalChecks());
  EXPECT_EQ(on.m.cpu().regs().a, off.m.cpu().regs().a);
}

TEST(FastPathBare, DisengagesWhileSdwCacheDisabled) {
  BareMachine m;
  m.cpu().sdw_cache().set_enabled(false);
  const Segno data = m.AddSegment({100, 200}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeIns(Opcode::kTra, 0),
      },
      UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  }
  EXPECT_EQ(m.cpu().counters().verdict_hits, 0u);
  EXPECT_EQ(m.cpu().counters().insn_cache_hits, 0u);
  EXPECT_EQ(m.cpu().regs().a, 100u);
}

TEST(FastPathBare, FlushSdwCacheRetiresVerdicts) {
  LoopRig rig(true, 30);
  const Counters before = rig.m.cpu().counters();
  rig.m.cpu().FlushSdwCache();
  // The next pass must re-derive every verdict (slow path) and still run.
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  }
  const Counters& after = rig.m.cpu().counters();
  EXPECT_GT(after.verdict_misses, before.verdict_misses);
  EXPECT_GT(after.sdw_fetches, before.sdw_fetches);
}

TEST(FastPathBare, VerdictsArePerRing) {
  // Write bracket [0,2]: denied at ring 4 even with a warm read verdict.
  BareMachine m4;
  const Segno data4 = m4.AddSegment({100, 200}, MakeDataSegment(2, 4));
  const Segno code4 = m4.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kLda, 2, 1),
          MakeInsPr(Opcode::kSta, 2, 0),
      },
      MakeProcedureSegment(4, 4));
  m4.SetIpr(4, code4, 0);
  m4.SetPr(2, 4, data4, 0);
  EXPECT_EQ(m4.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m4.StepTrap(), TrapCause::kNone);  // warm verdict for (data, 4)
  EXPECT_EQ(m4.StepTrap(), TrapCause::kWriteViolation);

  // The same brackets allow the write from ring 2.
  BareMachine m2;
  const Segno data2 = m2.AddSegment({100, 200}, MakeDataSegment(2, 4));
  const Segno code2 = m2.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kSta, 2, 0),
      },
      MakeProcedureSegment(2, 2));
  m2.SetIpr(2, code2, 0);
  m2.SetPr(2, 2, data2, 0);
  EXPECT_EQ(m2.StepTrap(), TrapCause::kNone);
  m2.cpu().regs().a = 55;
  EXPECT_EQ(m2.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m2.Peek(data2, 0), 55u);
}

TEST(FastPathBare, SelfModifyingStoreInvalidatesCachedDecode) {
  // [0] tra 2 / [2] nop / [3] sta ->code[2] / [4] tra 2: the second trip
  // through word 2 must execute the newly stored `ldai 77`, not the
  // cached nop decode.
  BareMachine m;
  SegmentAccess access = MakeProcedureSegment(4, 4);
  access.flags.write = true;
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kTra, 2),
          MakeIns(Opcode::kNop),
          MakeIns(Opcode::kNop),
          MakeInsPr(Opcode::kSta, 3, 2),
          MakeIns(Opcode::kTra, 2),
      },
      access);
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, code, 0);
  m.cpu().regs().a = EncodeInstruction(MakeIns(Opcode::kLdai, 77));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone) << "step " << i;
  }
  // tra, nop, sta, tra, then the patched instruction.
  EXPECT_EQ(m.cpu().regs().a, 77u);
  EXPECT_GT(m.cpu().counters().insn_cache_invalidations, 0u);
}

TEST(FastPathBare, Works645Flags) {
  // In the 645 base the fast path must honor flags-only validation.
  BareMachine m;
  m.cpu().set_mode(ProtectionMode::kFlags645);
  SegmentAccess readonly = MakeDataSegment(0, 4);
  readonly.flags.write = false;
  const Segno data = m.AddSegment({100, 200}, readonly);
  // Execute bracket reaching ring 0: the 645 base validates everything at
  // ring 0 (flags only), like the compiled per-ring descriptor segments.
  const Segno code = m.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kLda, 2, 1),
          MakeInsPr(Opcode::kSta, 2, 0),
      },
      MakeProcedureSegment(0, 4));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 200u);
  EXPECT_EQ(m.StepTrap(), TrapCause::kWriteViolation);
}

}  // namespace
}  // namespace rings

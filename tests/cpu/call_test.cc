// Figure 8: the CALL instruction — gate checks, ring switching, stack
// base generation, return-pointer generation, and the trap cases.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

// A rig with per-ring stack segments at segnos 0..7 (matching the
// DBR.stack_base = 0 convention), user code in ring 4, and a gated target.
struct CallRig {
  BareMachine m{64, /*stack_base... (dbr stack base set below)*/ 0};
  Segno target = 0;
  Segno code = 0;

  explicit CallRig(const SegmentAccess& target_access, Ring caller_ring = 4) {
    // Stacks occupy segnos 0..7.
    for (Ring r = 0; r < kRingCount; ++r) {
      m.AddSegment({}, MakeStackSegment(r), /*extra=*/64);
    }
    // Target: a gate word then a body.
    target = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, target_access);
    code = m.AddCode({MakeInsPr(Opcode::kCall, 2, 0), MakeIns(Opcode::kNop)},
                     MakeProcedureSegment(caller_ring, caller_ring));
    m.SetIpr(caller_ring, code, 0);
    m.SetPr(2, caller_ring, target, 0);
    // Give the caller a plausible stack pointer in its own ring's stack.
    m.SetPr(kPrStack, caller_ring, caller_ring, 16);
  }
};

TEST(Call, DownwardThroughGateSwitchesRing) {
  // Ring 4 calls a gate of a ring-1 subsystem (execute [1,1], gates to 5).
  CallRig rig(MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().ipr.ring, 1);
  EXPECT_EQ(rig.m.cpu().regs().ipr.segno, rig.target);
  EXPECT_EQ(rig.m.cpu().regs().ipr.wordno, 0u);
  EXPECT_EQ(rig.m.cpu().counters().calls_downward, 1u);
}

TEST(Call, DownwardGeneratesStackBaseInPr0) {
  // "CALL generates in PR0 a pointer to word 0 of the stack segment for
  // the new ring of execution" — with the ring-change rule, segno =
  // DBR.stack_base + new ring = 1.
  CallRig rig(MakeProcedureSegment(1, 1, 5, 1));
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().pr[kPrStackBase], (PointerRegister{1, 1, 0}));
}

TEST(Call, SameRingKeepsCurrentStackSegment) {
  // Footnote rule: "If the CALL instruction does not change the ring of
  // execution, then the segment number for the stack base pointer is
  // taken directly from the stack pointer register."
  CallRig rig(MakeProcedureSegment(4, 4, 4, 1));
  // Put the caller's stack somewhere nonstandard.
  rig.m.SetPr(kPrStack, 4, /*segno=*/4, /*wordno=*/32);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().ipr.ring, 4);
  EXPECT_EQ(rig.m.cpu().regs().pr[kPrStackBase], (PointerRegister{4, 4, 0}));
  EXPECT_EQ(rig.m.cpu().counters().calls_same_ring, 1u);
}

TEST(Call, ReturnPointerCarriesCallerRing) {
  // "The processor leave[s] in a program accessible register the number of
  // the ring in which execution was occurring before the downward call."
  CallRig rig(MakeProcedureSegment(1, 1, 5, 1));
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  const PointerRegister& rp = rig.m.cpu().regs().pr[kPrReturn];
  EXPECT_EQ(rp.ring, 4);
  EXPECT_EQ(rp.segno, rig.code);
  EXPECT_EQ(rp.wordno, 1u);  // the instruction after the CALL
}

TEST(Call, GateViolationAtNonGateWord) {
  CallRig rig(MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));
  rig.m.SetPr(2, 4, rig.target, 1);  // word 1 is not a gate
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kGateViolation);
}

TEST(Call, GateCheckAppliesToSameRingCalls) {
  CallRig rig(MakeProcedureSegment(4, 4, 4, /*gate_count=*/1));
  rig.m.SetPr(2, 4, rig.target, 1);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kGateViolation);
}

TEST(Call, SameSegmentCallIgnoresGateList) {
  // An internal procedure call: CALL within the segment containing the
  // instruction bypasses the gate list.
  BareMachine m;
  for (Ring r = 0; r < kRingCount; ++r) {
    m.AddSegment({}, MakeStackSegment(r), 64);
  }
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kCall, 2),  // word 0: call word 2 (not a gate)
          MakeIns(Opcode::kNop),
          MakeIns(Opcode::kLdai, 3),  // word 2: internal procedure
      },
      MakeProcedureSegment(4, 4, 4, /*gate_count=*/1));
  m.SetIpr(4, code, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, 2u);
}

TEST(Call, EffectiveRingAboveExecutionRingRejected) {
  // A CALL via a pointer whose ring is above the ring of execution traps,
  // even though the target would accept the current ring.
  CallRig rig(MakeProcedureSegment(1, 1, 5, 1));
  rig.m.SetPr(2, /*ring=*/6, rig.target, 0);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kCallRingViolation);
}

TEST(Call, UpwardCallTrapsToSoftware) {
  CallRig rig(MakeProcedureSegment(6, 6, 6, 1));
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kUpwardCall);
  // The trap state exposes the intended target for the supervisor's
  // emulation.
  EXPECT_EQ(rig.m.cpu().trap_state().tpr.segno, rig.target);
  EXPECT_EQ(rig.m.cpu().trap_state().tpr.wordno, 0u);
}

TEST(Call, BeyondGateExtensionDenied) {
  // Ring 6 calling a gate whose extension stops at 5.
  CallRig rig(MakeProcedureSegment(1, 1, 5, 1), /*caller_ring=*/6);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Call, ExecuteFlagOffDenied) {
  SegmentAccess access = MakeProcedureSegment(1, 1, 5, 1);
  access.flags.execute = false;
  CallRig rig(access);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Call, PrRingInvariantHoldsAfterDownwardCall) {
  // After a downward call, every PR ring is still >= the (new, lower)
  // ring of execution; PRs other than PR0/PR7 keep the caller's ring.
  CallRig rig(MakeProcedureSegment(0, 0, 7, 1));
  rig.m.SetPr(3, 5, 9, 9);
  ASSERT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  const RegisterFile& regs = rig.m.cpu().regs();
  EXPECT_EQ(regs.ipr.ring, 0);
  for (unsigned i = 0; i < kNumPointerRegisters; ++i) {
    EXPECT_GE(regs.pr[i].ring, regs.ipr.ring) << i;
  }
  EXPECT_EQ(regs.pr[3].ring, 5);  // untouched
}

TEST(Call, DownwardCallAndUpwardReturnRoundTrip) {
  // The full paper scenario: ring-4 code calls a ring-1 gate; the callee
  // returns via the return pointer; execution resumes in ring 4 after the
  // CALL.
  BareMachine m;
  for (Ring r = 0; r < kRingCount; ++r) {
    m.AddSegment({}, MakeStackSegment(r), 64);
  }
  const Segno callee = m.AddCode(
      {
          MakeIns(Opcode::kLdai, 42),       // gate word 0
          MakeInsPr(Opcode::kRet, 7, 0),    // return via PR7
      },
      MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));
  const Segno caller = m.AddCode(
      {
          MakeInsPr(Opcode::kCall, 2, 0),
          MakeIns(Opcode::kAdai, 1),
      },
      MakeProcedureSegment(4, 4));
  m.SetIpr(4, caller, 0);
  m.SetPr(2, 4, callee, 0);
  m.SetPr(kPrStack, 4, 4, 16);

  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);  // CALL (ring 4 -> 1)
  EXPECT_EQ(m.cpu().regs().ipr.ring, 1);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);  // LDAI in ring 1
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);  // RET (ring 1 -> 4)
  EXPECT_EQ(m.cpu().regs().ipr.ring, 4);
  EXPECT_EQ(m.cpu().regs().ipr.segno, caller);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, 1u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);  // ADAI back in the caller
  EXPECT_EQ(m.cpu().regs().a, 43u);
  // No supervisor intervention anywhere in this sequence.
  EXPECT_EQ(m.cpu().counters().TotalTraps(), 0u);
}

TEST(Call, BoundsViolationOnTargetWord) {
  CallRig rig(MakeProcedureSegment(1, 1, 5, /*gate_count=*/100));
  rig.m.SetPr(2, 4, rig.target, 50);  // gate-count allows, bound (2) does not
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kBoundsViolation);
}

// Exhaustive Figure 8 ring sweep on the real CPU: caller ring x bracket
// configuration, checking entered ring or trap kind against the paper's
// rule.
class CallSweep : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(CallSweep, OutcomeMatchesFigure8) {
  const Ring caller = static_cast<Ring>(std::get<0>(GetParam()));
  const unsigned r1 = std::get<1>(GetParam());
  const unsigned r2 = std::get<2>(GetParam());
  const unsigned r3 = std::get<3>(GetParam());
  if (r1 > r2 || r2 > r3) {
    GTEST_SKIP();
  }
  CallRig rig(MakeProcedureSegment(static_cast<Ring>(r1), static_cast<Ring>(r2),
                                   static_cast<Ring>(r3), 1),
              caller);
  const TrapCause cause = rig.m.StepTrap();
  if (caller < r1) {
    EXPECT_EQ(cause, TrapCause::kUpwardCall);
  } else if (caller <= r2) {
    EXPECT_EQ(cause, TrapCause::kNone);
    EXPECT_EQ(rig.m.cpu().regs().ipr.ring, caller);
  } else if (caller <= r3) {
    EXPECT_EQ(cause, TrapCause::kNone);
    EXPECT_EQ(rig.m.cpu().regs().ipr.ring, r2);
  } else {
    EXPECT_EQ(cause, TrapCause::kExecuteViolation);
  }
}

INSTANTIATE_TEST_SUITE_P(RingByBrackets, CallSweep,
                         ::testing::Combine(::testing::Values(0, 1, 3, 4, 6, 7),
                                            ::testing::Values(0, 1, 4),
                                            ::testing::Values(1, 4, 5),
                                            ::testing::Values(1, 5, 7)));

}  // namespace
}  // namespace rings

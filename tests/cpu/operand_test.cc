// Figure 6: validation for instructions that read or write their operands,
// across the full ring sweep, plus the arithmetic/logic behaviours.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

// A harness where ring-4 code addresses a data segment with configurable
// brackets through PR2.
struct OperandRig {
  BareMachine m;
  Segno data = 0;
  Segno code = 0;

  explicit OperandRig(const SegmentAccess& data_access, Opcode op, Ring exec_ring = 4) {
    data = m.AddSegment({100, 200}, data_access);
    code = m.AddCode({MakeInsPr(op, 2, 0)}, MakeProcedureSegment(exec_ring, exec_ring));
    m.SetIpr(exec_ring, code, 0);
    m.SetPr(2, exec_ring, data, 0);
  }
};

TEST(OperandRead, AllowedWithinReadBracket) {
  OperandRig rig(MakeDataSegment(2, 4), Opcode::kLda);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().a, 100u);
  EXPECT_EQ(rig.m.cpu().counters().checks_read, 1u);
}

TEST(OperandRead, DeniedAboveReadBracket) {
  OperandRig rig(MakeDataSegment(2, 3), Opcode::kLda);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kReadViolation);
}

TEST(OperandRead, DeniedWithFlagOff) {
  SegmentAccess access = MakeDataSegment(4, 4);
  access.flags.read = false;
  OperandRig rig(access, Opcode::kLda);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kReadViolation);
}

TEST(OperandWrite, AllowedWithinWriteBracket) {
  OperandRig rig(MakeDataSegment(4, 5), Opcode::kSta);
  rig.m.cpu().regs().a = 77;
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.Peek(rig.data, 0), 77u);
  EXPECT_EQ(rig.m.cpu().counters().checks_write, 1u);
}

TEST(OperandWrite, DeniedAboveWriteBracket) {
  OperandRig rig(MakeDataSegment(3, 5), Opcode::kSta);
  rig.m.cpu().regs().a = 77;
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kWriteViolation);
  EXPECT_EQ(rig.m.Peek(rig.data, 0), 100u);  // unchanged
}

TEST(OperandWrite, DeniedWithFlagOff) {
  // A pure procedure segment: write flag off — writes denied even in
  // ring 0.
  BareMachine m;
  const Segno data = m.AddSegment({1}, MakeProcedureSegment(0, 7));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kSta, 2, 0)}, MakeProcedureSegment(0, 0));
  m.SetIpr(0, code, 0);
  m.SetPr(2, 0, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kWriteViolation);
}

TEST(OperandReadWrite, AosChecksBoth) {
  OperandRig rig(MakeDataSegment(4, 4), Opcode::kAos);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.Peek(rig.data, 0), 101u);
  EXPECT_EQ(rig.m.cpu().counters().checks_read, 1u);
  EXPECT_EQ(rig.m.cpu().counters().checks_write, 1u);
}

TEST(OperandReadWrite, AosDeniedByWriteBracket) {
  // Readable at ring 4 but writable only to ring 3: the increment's write
  // half fails and memory is unchanged.
  OperandRig rig(MakeDataSegment(3, 4), Opcode::kAos);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kWriteViolation);
  EXPECT_EQ(rig.m.Peek(rig.data, 0), 100u);
}

TEST(OperandArithmetic, AddSubtractMultiply) {
  BareMachine m;
  const Segno data = m.AddSegment({10}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kLdai, 5),
          MakeInsPr(Opcode::kAda, 2, 0),  // 15
          MakeInsPr(Opcode::kMpy, 2, 0),  // 150
          MakeInsPr(Opcode::kSba, 2, 0),  // 140
      },
      UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone) << i;
  }
  EXPECT_EQ(m.cpu().regs().a, 140u);
}

TEST(OperandLogic, AndOrXor) {
  BareMachine m;
  const Segno data = m.AddSegment({0b1100}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode(
      {
          MakeIns(Opcode::kLdai, 0b1010),
          MakeInsPr(Opcode::kAna, 2, 0),  // 0b1000
          MakeInsPr(Opcode::kOra, 2, 0),  // 0b1100
          MakeInsPr(Opcode::kEra, 2, 0),  // 0b0000
      },
      UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  }
  EXPECT_EQ(m.cpu().regs().a, 0u);
}

TEST(OperandStores, QAndXAndZero) {
  BareMachine m;
  const Segno data = m.AddSegment({0, 0, 0, 9}, MakeDataSegment(4, 4));
  std::vector<Instruction> code = {
      MakeIns(Opcode::kLdqi, 5),
      MakeInsPr(Opcode::kStq, 2, 0),
      MakeInsReg(Opcode::kLdxi, 3, 17),
      MakeInsPrReg(Opcode::kStx, 2, 3, 1),
      MakeInsPr(Opcode::kStz, 2, 3),
  };
  const Segno seg = m.AddCode(code, UserCode());
  m.SetIpr(4, seg, 0);
  m.SetPr(2, 4, data, 0);
  for (size_t i = 0; i < code.size(); ++i) {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone) << i;
  }
  EXPECT_EQ(m.Peek(data, 0), 5u);
  EXPECT_EQ(m.Peek(data, 1), 17u);
  EXPECT_EQ(m.Peek(data, 3), 0u);
}

TEST(OperandLoads, LdxMasksTo18Bits) {
  BareMachine m;
  const Segno data = m.AddSegment({0xFFFFFFFFF}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kLdx, 2, 1, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().x[1], 0x3FFFFu);
}

TEST(OperandBounds, ReadPastBound) {
  OperandRig rig(MakeDataSegment(4, 4), Opcode::kLda);
  rig.m.SetPr(2, 4, rig.data, 2);  // bound is 2, wordno 2 out of range
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kBoundsViolation);
}

// Exhaustive Figure 6 sweep: read and write decisions for every
// (write_top, read_top, ring).
class Fig6Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Fig6Sweep, ReadAndWriteDecisions) {
  const unsigned write_top = std::get<0>(GetParam());
  const unsigned read_top = std::get<1>(GetParam());
  if (write_top > read_top) {
    GTEST_SKIP() << "ill-formed bracket combination";
  }
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    BareMachine m;
    const Segno data = m.AddSegment(
        {1, 2}, MakeDataSegment(static_cast<Ring>(write_top), static_cast<Ring>(read_top)));
    const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, 0), MakeInsPr(Opcode::kSta, 2, 1)},
                                 MakeProcedureSegment(ring, ring));
    m.SetIpr(ring, code, 0);
    m.SetPr(2, ring, data, 0);
    const TrapCause read_result = m.StepTrap();
    EXPECT_EQ(read_result == TrapCause::kNone, ring <= read_top)
        << "read ring=" << unsigned(ring);
    if (read_result == TrapCause::kNone) {
      const TrapCause write_result = m.StepTrap();
      EXPECT_EQ(write_result == TrapCause::kNone, ring <= write_top)
          << "write ring=" << unsigned(ring);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBracketTops, Fig6Sweep,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

}  // namespace
}  // namespace rings

// SDW-cache invalidation coverage: a store that lands inside the
// descriptor segment is an SDW edit the processor may have cached, and
// must drop the cached descriptor (and the verdicts derived from it) on
// both machines — the ring hardware and the flags-only 645 base. Covers
// the guest store path (WriteOperand snooping) and the supervisor's
// virtual-memory write path.
#include <gtest/gtest.h>

#include "src/mem/sdw.h"
#include "tests/testutil.h"

namespace rings {
namespace {

// A bare machine where the descriptor segment itself is mapped as a
// writable data segment ("window"), so guest code can edit SDWs with
// ordinary stores — exactly the hazard the snoop exists for.
struct WindowRig {
  BareMachine m;
  Segno data = 0;
  Segno window = 0;

  explicit WindowRig(ProtectionMode mode) {
    m.cpu().set_mode(mode);
    data = m.AddSegment({5, 6}, MakeDataSegment(4, 4));
    Sdw win;
    win.present = true;
    win.base = m.dseg().dbr().base;
    win.bound = static_cast<uint64_t>(m.dseg().dbr().bound) * kSdwPairWords;
    win.access = MakeDataSegment(4, 4);
    window = 40;  // a slot the sequential allocator has not handed out
    m.dseg().Store(window, win);
    m.cpu().InvalidateSdw(window);
  }

  // The encoded addressing word of `data`'s SDW with the present bit
  // cleared.
  Word NotPresentWord0() {
    Sdw dead = *m.dseg().Fetch(data);
    dead.present = false;
    Word w0 = 0;
    Word w1 = 0;
    EncodeSdw(dead, &w0, &w1);
    return w0;
  }
};

// Guest code reads `data` (caching its SDW and verdict), stores a
// not-present SDW over data's descriptor through the window, then reads
// again: the read must see the edit and trap, not the stale cached SDW.
void GuestStoreDropsCachedSdw(ProtectionMode mode) {
  WindowRig rig(mode);
  const Segno code = rig.m.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kLda, 2, 1),  // second read: SDW-cache hit
          MakeInsPr(Opcode::kSta, 3, static_cast<int32_t>(rig.data) * kSdwPairWords),
          MakeInsPr(Opcode::kLda, 2, 0),
      },
      // Execute bracket reaching ring 0: the 645 base validates at ring 0.
      MakeProcedureSegment(0, 4));
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  rig.m.SetPr(3, 4, rig.window, 0);

  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.cpu().regs().a, 5u);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  const uint64_t hits_before = rig.m.cpu().counters().sdw_cache_hits;
  EXPECT_GT(hits_before, 0u);  // data's SDW really is cached

  rig.m.cpu().regs().a = rig.NotPresentWord0();
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);  // the SDW edit lands

  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kMissingSegment);
}

TEST(SdwInvalidate, GuestStoreDropsCachedSdwRingHardware) {
  GuestStoreDropsCachedSdw(ProtectionMode::kRingHardware);
}

TEST(SdwInvalidate, GuestStoreDropsCachedSdw645) {
  GuestStoreDropsCachedSdw(ProtectionMode::kFlags645);
}

// Same hazard through the supervisor's virtual-memory write path
// (SupervisorWriteRaw is how supervisor services edit arbitrary words).
void SupervisorStoreDropsCachedSdw(ProtectionMode mode) {
  WindowRig rig(mode);
  const Segno code = rig.m.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kLda, 2, 1),
      },
      MakeProcedureSegment(0, 4));
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);  // SDW + verdict cached

  EXPECT_EQ(rig.m.cpu().SupervisorWriteRaw(
                rig.window, static_cast<Wordno>(rig.data) * kSdwPairWords,
                rig.NotPresentWord0()),
            TrapCause::kNone);

  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kMissingSegment);
}

TEST(SdwInvalidate, SupervisorStoreDropsCachedSdwRingHardware) {
  SupervisorStoreDropsCachedSdw(ProtectionMode::kRingHardware);
}

TEST(SdwInvalidate, SupervisorStoreDropsCachedSdw645) {
  SupervisorStoreDropsCachedSdw(ProtectionMode::kFlags645);
}

// A store into the descriptor segment that restricts access must also
// retire the verdict cache's memo of the old access — the next reference
// must be re-validated against the edited SDW, not the stale verdict.
TEST(SdwInvalidate, DescriptorStoreRetiresVerdicts) {
  WindowRig rig(ProtectionMode::kRingHardware);
  // Re-encode data's SDW with the read flag off (still present).
  Sdw shut = *rig.m.dseg().Fetch(rig.data);
  shut.access.flags.read = false;
  Word w0 = 0;
  Word w1 = 0;
  EncodeSdw(shut, &w0, &w1);

  const Segno code = rig.m.AddCode(
      {
          MakeInsPr(Opcode::kLda, 2, 0),
          MakeInsPr(Opcode::kSta, 3,
                    static_cast<int32_t>(rig.data) * kSdwPairWords + 1),  // access word
          MakeInsPr(Opcode::kLda, 2, 0),
      },
      MakeProcedureSegment(4, 4));
  rig.m.SetIpr(4, code, 0);
  rig.m.SetPr(2, 4, rig.data, 0);
  rig.m.SetPr(3, 4, rig.window, 0);

  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);  // read verdict is warm
  rig.m.cpu().regs().a = w1;
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kReadViolation);
}

}  // namespace
}  // namespace rings

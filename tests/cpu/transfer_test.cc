// Figure 7: EAP-type instructions (no validation) and the advance check
// for transfer instructions other than CALL/RETURN.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

TEST(Epp, LoadsPointerRegisterFromTpr) {
  BareMachine m;
  const Segno data = m.AddSegment({0}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kEpp, 2, 5, 7)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 10);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().pr[5], (PointerRegister{4, data, 17}));
}

TEST(Epp, NoAccessValidationPerformed) {
  // "The operand is not referenced, so no access validation is required"
  // — EPP may form an address into a segment the ring cannot touch.
  BareMachine m;
  const Segno secret = m.AddSegment({0}, MakeDataSegment(0, 0));  // ring-0 only
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kEpp, 2, 5, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, secret, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().pr[5].segno, secret);
  EXPECT_EQ(m.cpu().counters().checks_read, 0u);
  EXPECT_EQ(m.cpu().counters().checks_write, 0u);
}

TEST(Epp, CarriesEffectiveRingIntoPr) {
  // Loading a PR through a raised-ring pointer captures the raised ring —
  // "the proper effective ring number will automatically be put in
  // PR1.RING."
  BareMachine m;
  const Segno data = m.AddSegment({0}, MakeDataSegment(7, 7));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kEpp, 2, 1, 3)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, /*ring=*/6, data, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().pr[1].ring, 6);
  EXPECT_EQ(m.cpu().regs().pr[1].wordno, 3u);
}

TEST(Spp, StoresPointerWithItsRing) {
  BareMachine m;
  const Segno data = m.AddSegment({0, 0}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kSpp, 2, 3, 1)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  m.SetPr(3, 6, 42, 17);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  const IndirectWord iw = DecodeIndirectWord(m.Peek(data, 1));
  EXPECT_EQ(iw.ring, 6);  // the PR's validation level is preserved
  EXPECT_EQ(iw.segno, 42u);
  EXPECT_EQ(iw.wordno, 17u);
  EXPECT_FALSE(iw.indirect);
}

TEST(Spp, WriteValidated) {
  BareMachine m;
  const Segno data = m.AddSegment({0}, MakeReadOnlyDataSegment(4));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kSpp, 2, 3, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kWriteViolation);
}

TEST(Tra, TransfersWithinSegment) {
  BareMachine m;
  const Segno code = m.AddCode(
      {MakeIns(Opcode::kTra, 2), MakeIns(Opcode::kLdai, 1), MakeIns(Opcode::kLdai, 2)},
      UserCode());
  m.SetIpr(4, code, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, 2u);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 2u);
}

TEST(Tra, CrossSegmentSameRingNoGateNeeded) {
  // "On intersegment transfers of control within the same ring, the gate
  // restriction can be bypassed by using a normal transfer instruction."
  BareMachine m;
  const Segno lib = m.AddCode({MakeIns(Opcode::kLdai, 55)},
                              MakeProcedureSegment(0, 7, 7, /*gate_count=*/0));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kTra, 2, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, lib, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().ipr.segno, lib);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 55u);
}

TEST(Tra, AdvanceCheckCatchesBadTarget) {
  // The advance check fires while the transferring instruction is still
  // identifiable — IPR in the trap state addresses the TRA, not the
  // target.
  BareMachine m;
  const Segno other = m.AddCode({MakeIns(Opcode::kNop)}, MakeProcedureSegment(0, 0));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kTra, 2, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, other, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kExecuteViolation);
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.segno, code);
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.wordno, 0u);
}

TEST(Tra, RaisedEffectiveRingRejected) {
  // A transfer through a pointer with a higher ring number cannot proceed:
  // non-CALL transfers never change the ring of execution (Figure 7).
  BareMachine m;
  const Segno lib = m.AddCode({MakeIns(Opcode::kNop)}, MakeProcedureSegment(0, 7));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kTra, 2, 0)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, /*ring=*/6, lib, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kTransferRingViolation);
}

TEST(Tra, BoundsChecked) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kTra, 99)}, UserCode());
  m.SetIpr(4, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kBoundsViolation);
}

struct CondCase {
  Opcode op;
  int64_t a;
  bool taken;
};

class ConditionalTransfer : public ::testing::TestWithParam<CondCase> {};

TEST_P(ConditionalTransfer, TakenAndNotTaken) {
  const CondCase& c = GetParam();
  BareMachine m;
  const Segno code = m.AddCode(
      {MakeIns(c.op, 2), MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  m.cpu().regs().a = static_cast<Word>(c.a);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, c.taken ? 2u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, ConditionalTransfer,
    ::testing::Values(CondCase{Opcode::kTze, 0, true}, CondCase{Opcode::kTze, 1, false},
                      CondCase{Opcode::kTnz, 0, false}, CondCase{Opcode::kTnz, 1, true},
                      CondCase{Opcode::kTmi, -1, true}, CondCase{Opcode::kTmi, 0, false},
                      CondCase{Opcode::kTmi, 5, false}, CondCase{Opcode::kTpl, 0, true},
                      CondCase{Opcode::kTpl, 5, true}, CondCase{Opcode::kTpl, -1, false}));

TEST(ConditionalNotTaken, NoAdvanceCheck) {
  // A conditional transfer that is not taken performs no transfer and so
  // cannot trap on its (bad) target.
  BareMachine m;
  const Segno other = m.AddCode({MakeIns(Opcode::kNop)}, MakeProcedureSegment(0, 0));
  const Segno code =
      m.AddCode({MakeInsPr(Opcode::kTze, 2, 0), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, other, 0);
  m.cpu().regs().a = 1;  // TZE not taken
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, 1u);
}

}  // namespace
}  // namespace rings

// Privileged instructions: "Such instructions are designated as privileged
// and will be executed by the processor only in ring 0." SVC extends to
// ring 1 (the second supervisor layer).
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

TEST(Privileged, HltOutsideRing0Traps) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kHlt)}, MakeProcedureSegment(0, 7));
  for (Ring ring = 1; ring < kRingCount; ++ring) {
    m.SetIpr(ring, code, 0);
    EXPECT_EQ(m.StepTrap(), TrapCause::kPrivilegedViolation) << unsigned(ring);
    m.cpu().TakeTrap();
  }
}

TEST(Privileged, HltInRing0RaisesHaltTrap) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kHlt)}, MakeProcedureSegment(0, 0));
  m.SetIpr(0, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kHalt);
}

TEST(Privileged, SvcAllowedInRings0And1Only) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kSvc, 3)}, MakeProcedureSegment(0, 7));
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    m.SetIpr(ring, code, 0);
    const TrapCause cause = m.StepTrap();
    if (ring <= 1) {
      EXPECT_EQ(cause, TrapCause::kSupervisorService) << unsigned(ring);
      EXPECT_EQ(m.cpu().trap_state().code, 3);
    } else {
      EXPECT_EQ(cause, TrapCause::kPrivilegedViolation) << unsigned(ring);
    }
    m.cpu().TakeTrap();
  }
}

TEST(Privileged, SioOutsideRing0Traps) {
  BareMachine m;
  const Segno iocb = m.AddSegment({42}, MakeDataSegment(0, 7));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kSio, 2, 0, 0)},
                               MakeProcedureSegment(0, 7));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, iocb, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kPrivilegedViolation);
}

TEST(Privileged, SioInRing0InvokesHandler) {
  BareMachine m;
  const Segno iocb = m.AddSegment({42}, MakeDataSegment(0, 7));
  const Segno code = m.AddCode({MakeInsPrReg(Opcode::kSio, 2, /*device=*/3, 0)},
                               MakeProcedureSegment(0, 0));
  m.SetIpr(0, code, 0);
  m.SetPr(2, 0, iocb, 0);
  uint8_t seen_device = 255;
  Word seen_word = 0;
  m.cpu().set_sio_handler([&](uint8_t device, Word word) {
    seen_device = device;
    seen_word = word;
  });
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(seen_device, 3);
  EXPECT_EQ(seen_word, 42u);
}

TEST(Privileged, LdbrOutsideRing0Traps) {
  BareMachine m;
  const Segno data = m.AddSegment({0, 0}, MakeDataSegment(0, 7));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLdbr, 2, 0)}, MakeProcedureSegment(0, 7));
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kPrivilegedViolation);
}

TEST(Privileged, LdbrLoadsDescriptorBaseAndFlushesCache) {
  BareMachine m;
  // Build a second descriptor segment whose segment 0 is a data segment
  // holding 123.
  auto ds2 = DescriptorSegment::Create(&m.memory(), 8, /*stack_base=*/2);
  const AbsAddr data_base = *m.memory().Allocate(4);
  m.memory().Write(data_base, 123);
  Sdw sdw;
  sdw.present = true;
  sdw.base = data_base;
  sdw.bound = 4;
  sdw.access = MakeDataSegment(0, 7);
  ds2->Store(0, sdw);

  // DBR operand pair: word0 = base, word1 = bound | (stack_base << 15).
  const Word w0 = ds2->dbr().base;
  const Word w1 = ds2->dbr().bound | (Word{ds2->dbr().stack_base} << 15);
  const Segno dbr_data = m.AddSegment({w0, w1}, MakeDataSegment(0, 0));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLdbr, 2, 0)}, MakeProcedureSegment(0, 0));
  m.SetIpr(0, code, 0);
  m.SetPr(2, 0, dbr_data, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().dbr.base, ds2->dbr().base);
  EXPECT_EQ(m.cpu().regs().dbr.bound, 8u);
  EXPECT_EQ(m.cpu().regs().dbr.stack_base, 2u);
  // The new virtual memory is in effect: segment 0 is now the data
  // segment under ds2.
  Word value = 0;
  EXPECT_EQ(m.cpu().SupervisorReadRaw(0, 0, &value), TrapCause::kNone);
  EXPECT_EQ(value, 123u);
}

TEST(Privileged, RettFromGuestCodeIsIllegal) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kRett)}, MakeProcedureSegment(0, 0));
  m.SetIpr(0, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kIllegalOpcode);
}

TEST(Privileged, MmeAllowedFromAnyRing) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kMme, 7)}, MakeProcedureSegment(0, 7));
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    m.SetIpr(ring, code, 0);
    EXPECT_EQ(m.StepTrap(), TrapCause::kMasterModeEntry) << unsigned(ring);
    EXPECT_EQ(m.cpu().trap_state().code, 7);
    // Service traps save the advanced IPR so RETT resumes after the MME.
    EXPECT_EQ(m.cpu().trap_state().regs.ipr.wordno, 1u);
    m.cpu().TakeTrap();
  }
}

TEST(Privileged, TimerRunoutTrapsBetweenInstructions) {
  BareMachine m;
  const Segno code = m.AddCode(
      {MakeIns(Opcode::kNop), MakeIns(Opcode::kNop), MakeIns(Opcode::kNop),
       MakeIns(Opcode::kNop)},
      UserCode());
  m.SetIpr(4, code, 0);
  m.cpu().SetTimer(2);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.StepTrap(), TrapCause::kTimerRunout);
  // The saved state resumes exactly where execution stopped.
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.wordno, 2u);
}

TEST(Privileged, InjectedIoCompletion) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  m.cpu().InjectTrap(TrapCause::kIoCompletion, /*code=*/5);
  EXPECT_TRUE(m.cpu().trap_pending());
  EXPECT_EQ(m.cpu().trap_state().cause, TrapCause::kIoCompletion);
  EXPECT_EQ(m.cpu().trap_state().code, 5);
  // Resume and execute normally.
  const TrapState trap = m.cpu().TakeTrap();
  m.cpu().Rett(trap.regs);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
}

}  // namespace
}  // namespace rings

// Block-to-block chaining and the CALL/RETURN crossing cache: directed
// coverage of every invalidation site. Each site test runs a chained
// twin against an unchained twin through the same mid-run invalidation
// and requires the full architectural face (cycles, registers, traps,
// every non-host counter) to stay bit-identical — a patched successor
// link or crossing memo that survived the site would execute stale
// decode or skip a revalidation and split the twins. The five sites:
//
//   1. SDW cache epoch flush        (Cpu::FlushSdwCache)
//   2. descriptor snoop             (Cpu::InvalidateSdw)
//   3. store into executable code   (Cpu::NoteStore, guest stores)
//   4. injected descriptor drop     (fault boundary, kSdwCacheDrop)
//   5. DBR reload                   (Cpu::SetDbr)
//
// The crossing-cache tests are sharper still: they restrict the target
// descriptor between crossings so a stale memo would *grant* a crossing
// the edited SDW forbids, and assert the trap fires.
#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"
#include "tests/testutil.h"

namespace rings {
namespace {

void ExpectSimCountersEqual(const Counters& a, const Counters& b) {
  Counters::ForEachField(
      [&a, &b](const char* name, uint64_t Counters::* member, bool host_only) {
        if (host_only) {
          return;  // cache statistics legitimately differ with chaining
        }
        EXPECT_EQ(a.*member, b.*member) << "counter " << name;
      });
  for (size_t i = 0; i < a.traps.size(); ++i) {
    EXPECT_EQ(a.traps[i], b.traps[i])
        << "trap count for " << TrapCauseName(static_cast<TrapCause>(i));
  }
}

// The whole architectural face of two machines must agree; only host-side
// cache effectiveness may differ between the chained and unchained twins.
void ExpectTwinsAgree(BareMachine& on, BareMachine& off) {
  Cpu& c1 = on.cpu();
  Cpu& c2 = off.cpu();
  EXPECT_EQ(c1.cycles(), c2.cycles());
  EXPECT_EQ(c1.regs().ipr.ring, c2.regs().ipr.ring);
  EXPECT_EQ(c1.regs().ipr.segno, c2.regs().ipr.segno);
  EXPECT_EQ(c1.regs().ipr.wordno, c2.regs().ipr.wordno);
  EXPECT_EQ(c1.regs().a, c2.regs().a);
  EXPECT_EQ(c1.regs().q, c2.regs().q);
  EXPECT_EQ(c1.trap_pending(), c2.trap_pending());
  if (c1.trap_pending() && c2.trap_pending()) {
    EXPECT_EQ(c1.trap_state().cause, c2.trap_state().cause);
  }
  ExpectSimCountersEqual(c1.counters(), c2.counters());
}

// ---------------------------------------------------------------------------
// Block chaining: a two-block guest loop that links A -> B -> A.
//
//   w0: adai 1      block A
//   w1: tra  2
//   w2: adai 2      block B  (the rewrite target: adai 2 -> adai 7)
//   w3: tra  0
// ---------------------------------------------------------------------------

struct LoopRig {
  BareMachine m;
  Segno code = 0;

  explicit LoopRig(bool chain) {
    m.cpu().set_chain_enabled(chain);
    code = m.AddCode(
        {MakeIns(Opcode::kAdai, 1), MakeIns(Opcode::kTra, 2), MakeIns(Opcode::kAdai, 2),
         MakeIns(Opcode::kTra, 0)},
        UserCode());
    m.SetIpr(4, code, 0);
  }

  // Drives the superblock engine (the only executor that chains) until
  // the simulated cycle bound or a trap.
  void RunTo(uint64_t bound) {
    while (m.cpu().cycles() < bound && !m.cpu().trap_pending()) {
      m.cpu().StepBlock(bound);
    }
  }

  // Rewrites block B's body behind the processor's back, with NO flush:
  // the site under test must be the only thing that retires the stale
  // decode and the links into it.
  void RewriteBlockB() {
    const Sdw sdw = *m.dseg().Fetch(code);
    m.memory().Write(sdw.base + 2, EncodeInstruction(MakeIns(Opcode::kAdai, 7)));
  }
};

// Runs the same scenario on a chained and an unchained twin and checks
// the twins agree afterwards; returns the chained twin's final A for
// rewrite-visibility assertions.
template <typename Scenario>
Word RunTwinScenario(Scenario&& scenario) {
  LoopRig on(/*chain=*/true);
  LoopRig off(/*chain=*/false);
  scenario(on);
  scenario(off);
  EXPECT_GT(on.m.cpu().counters().chain_follows, 0u);
  EXPECT_EQ(off.m.cpu().counters().chain_follows, 0u);
  ExpectTwinsAgree(on.m, off.m);
  return on.m.cpu().regs().a;
}

TEST(ChainInvalidate, SdwCacheFlushDropsPatchedLinks) {
  const Word mutated = RunTwinScenario([](LoopRig& rig) {
    rig.RunTo(300);
    rig.RewriteBlockB();
    rig.m.cpu().FlushSdwCache();  // site 1: epoch flush kills block + links
    rig.RunTo(600);
  });
  // The rewrite really changed guest arithmetic (the twin comparison
  // would pass vacuously if both twins kept executing stale decode).
  LoopRig control(/*chain=*/true);
  control.RunTo(300);
  control.m.cpu().FlushSdwCache();
  control.RunTo(600);
  EXPECT_NE(mutated, control.m.cpu().regs().a);
}

TEST(ChainInvalidate, DescriptorSnoopDropsPatchedLinks) {
  RunTwinScenario([](LoopRig& rig) {
    rig.RunTo(300);
    // Rebase the code segment onto a modified copy (block B: adai 7) —
    // the descriptor edit a supervisor announces with InvalidateSdw.
    const Sdw old = *rig.m.dseg().Fetch(rig.code);
    const AbsAddr alt = *rig.m.memory().Allocate(4);
    for (Wordno w = 0; w < 4; ++w) {
      rig.m.memory().Write(alt + w, rig.m.memory().Read(old.base + w));
    }
    rig.m.memory().Write(alt + 2, EncodeInstruction(MakeIns(Opcode::kAdai, 7)));
    Sdw moved = old;
    moved.base = alt;
    rig.m.dseg().Store(rig.code, moved);
    rig.m.cpu().InvalidateSdw(rig.code);  // site 2: descriptor snoop
    rig.RunTo(600);
  });
}

TEST(ChainInvalidate, DbrReloadDropsPatchedLinks) {
  RunTwinScenario([](LoopRig& rig) {
    rig.RunTo(300);
    rig.RewriteBlockB();
    rig.m.cpu().SetDbr(rig.m.dseg().dbr());  // site 5: address-space switch
    rig.RunTo(600);
  });
}

TEST(ChainInvalidate, InjectedDescriptorDropsKeepTwinsIdentical) {
  // Site 4: the fault boundary's kSdwCacheDrop invalidates descriptor
  // slots (and the blocks/links/memos derived through them) at seeded
  // random instants. Identically-seeded injectors see the identical
  // instruction-boundary stream on both twins, so every drop lands at
  // the same simulated instant — and the twins must still agree.
  FaultConfig config;
  config.set_rate(FaultSite::kSdwCacheDrop, 50'000);  // 5% per boundary
  config.seed = 7;
  FaultInjector inject_on(config);
  FaultInjector inject_off(config);

  LoopRig on(/*chain=*/true);
  LoopRig off(/*chain=*/false);
  on.m.cpu().set_fault_injector(&inject_on);
  off.m.cpu().set_fault_injector(&inject_off);
  on.RunTo(4000);
  off.RunTo(4000);

  const auto drops = [](const FaultInjector& fi) {
    return fi.counts()[static_cast<size_t>(FaultSite::kSdwCacheDrop)];
  };
  EXPECT_GT(drops(inject_on), 0u);
  EXPECT_EQ(drops(inject_on), drops(inject_off));
  EXPECT_GT(on.m.cpu().counters().chain_follows, 0u);
  ExpectTwinsAgree(on.m, off.m);
}

// Site 3: the guest stores into its own (writable, executable) code.
// A self-chaining countdown block runs hot, then a store block rewrites
// the instruction the loop exits into; a chained engine that kept a link
// past the NoteStore would execute the stale decode and split the twins.
//
//   w0: aos pr1|0       block A (self-links while cnt < limit)
//   w1: lda pr1|0
//   w2: sba pr1|1
//   w3: tmi 0
//   w4: stq pr2|6       block B: Q (an encoded mme) lands on w6
//   w5: tra 6
//   w6: nop             becomes `mme` — the fresh decode must see it
//   w7: mme             backstop: stale-nop execution falls through here
//                       one instruction later and diverges the twins
TEST(ChainInvalidate, GuestStoreIntoCodeDropsPatchedLinks) {
  const auto run = [](bool chain, BareMachine* out_machine) -> Cpu* {
    auto& m = *out_machine;
    m.cpu().set_chain_enabled(chain);
    const Segno data = m.AddSegment({0, 40}, UserData());  // cnt, limit
    SegmentAccess writable_code = MakeProcedureSegment(4, 4);
    writable_code.flags.write = true;
    const Segno code = m.AddCode(
        {MakeInsPr(Opcode::kAos, 1, 0), MakeInsPr(Opcode::kLda, 1, 0),
         MakeInsPr(Opcode::kSba, 1, 1), MakeIns(Opcode::kTmi, 0),
         MakeInsPr(Opcode::kStq, 2, 6), MakeIns(Opcode::kTra, 6), MakeIns(Opcode::kNop),
         MakeIns(Opcode::kMme)},
        writable_code);
    m.SetIpr(4, code, 0);
    m.SetPr(1, 4, data, 0);
    m.SetPr(2, 4, code, 0);
    m.cpu().regs().q = EncodeInstruction(MakeIns(Opcode::kMme));
    while (!m.cpu().trap_pending() && m.cpu().cycles() < 100'000) {
      m.cpu().StepBlock(100'000);
    }
    return &m.cpu();
  };

  BareMachine machine_on;
  BareMachine machine_off;
  Cpu* on = run(/*chain=*/true, &machine_on);
  Cpu* off = run(/*chain=*/false, &machine_off);

  ASSERT_TRUE(on->trap_pending());
  ASSERT_TRUE(off->trap_pending());
  // Both stopped at the stored `mme` (w6, saved resume ipr w7) — stale
  // decode of w6 as nop would fall through to the backstop (resume w8).
  EXPECT_EQ(on->trap_state().cause, TrapCause::kMasterModeEntry);
  EXPECT_EQ(on->trap_state().regs.ipr.wordno, 7u);
  EXPECT_GT(on->counters().chain_follows, 0u);
  EXPECT_EQ(off->counters().chain_follows, 0u);
  ExpectTwinsAgree(machine_on, machine_off);
}

// ---------------------------------------------------------------------------
// The CALL/RETURN crossing cache. A monomorphic gate-call site is warmed
// until the memo answers, then the target descriptor is restricted; a
// stale memo would grant the crossing the edited SDW forbids.
// ---------------------------------------------------------------------------

struct GateRig {
  BareMachine m{64, 0};
  Segno target = 0;
  Segno code = 0;

  GateRig() {
    for (Ring r = 0; r < kRingCount; ++r) {
      m.AddSegment({}, MakeStackSegment(r), /*extra=*/64);
    }
    target = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)},
                       MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));
    code = m.AddCode({MakeInsPr(Opcode::kCall, 2, 0), MakeIns(Opcode::kNop)},
                     MakeProcedureSegment(4, 4));
    Arm();
  }

  void Arm() {
    m.SetIpr(4, code, 0);
    m.SetPr(2, 4, target, 0);
    m.SetPr(kPrStack, 4, 4, 16);
  }

  // Warms the call site until the crossing cache answers.
  void WarmMemo() {
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
    EXPECT_GT(m.cpu().counters().crossing_misses, 0u);
    Arm();
    ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
    EXPECT_GT(m.cpu().counters().crossing_hits, 0u);
    Arm();
  }

  // Re-encodes the target's descriptor with all gates withdrawn.
  void WithdrawGates() {
    Sdw sdw = *m.dseg().Fetch(target);
    sdw.access.gate_count = 0;
    m.dseg().Store(target, sdw);
  }
};

TEST(CrossingCacheInvalidate, DescriptorSnoopRevalidatesWarmCallSite) {
  GateRig rig;
  rig.WarmMemo();
  rig.WithdrawGates();
  rig.m.cpu().InvalidateSdw(rig.target);
  // The memoized "gate ok" verdict must not answer for the edited SDW.
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kGateViolation);
}

TEST(CrossingCacheInvalidate, SdwCacheFlushRevalidatesWarmCallSite) {
  GateRig rig;
  rig.WarmMemo();
  rig.WithdrawGates();
  rig.m.cpu().FlushSdwCache();  // epoch bump alone must retire the memo
  EXPECT_EQ(rig.m.StepTrap(), TrapCause::kGateViolation);
}

// RETURN side: the slow path fetches the return target's SDW on every
// RET; the memo skips that fetch, so a stale memo would return into a
// segment whose descriptor has since been withdrawn.
TEST(CrossingCacheInvalidate, WithdrawnReturnTargetTrapsAfterWarmMemo) {
  BareMachine m;
  const Segno retseg = m.AddCode({MakeInsPr(Opcode::kRet, 7, 0)}, MakeProcedureSegment(1, 1));
  const Segno target =
      m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, MakeProcedureSegment(4, 4));
  const auto arm = [&] {
    m.cpu().regs().ipr = Ipr{1, retseg, 0};
    for (PointerRegister& pr : m.cpu().regs().pr) {
      pr = PointerRegister{1, 0, 0};
    }
    m.cpu().regs().pr[kPrReturn] = PointerRegister{4, target, 0};
  };

  arm();
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  arm();
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_GT(m.cpu().counters().crossing_hits, 0u);

  Sdw sdw = *m.dseg().Fetch(target);
  sdw.present = false;
  m.dseg().Store(target, sdw);
  m.cpu().InvalidateSdw(target);
  arm();
  EXPECT_EQ(m.StepTrap(), TrapCause::kMissingSegment);
}

}  // namespace
}  // namespace rings

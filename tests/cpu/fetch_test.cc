// Figure 4: retrieval of the next instruction — execute flag, execute
// bracket (both ends), bounds, missing segment, illegal opcode.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

TEST(Fetch, ExecutesWithinBracket) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kLdai, 7)}, MakeProcedureSegment(2, 5));
  for (Ring ring = 2; ring <= 5; ++ring) {
    m.SetIpr(ring, code, 0);
    EXPECT_EQ(m.StepTrap(), TrapCause::kNone) << unsigned(ring);
    EXPECT_EQ(m.cpu().regs().a, 7u);
    m.cpu().TakeTrap();  // defensive: clear any pending state
  }
}

TEST(Fetch, ExecuteFlagOffTraps) {
  BareMachine m;
  SegmentAccess access = MakeProcedureSegment(0, 7);
  access.flags.execute = false;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop)}, access);
  m.SetIpr(4, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Fetch, BelowExecuteBracketTraps) {
  // "For each procedure segment ... there is a lowest numbered ring in
  // which that procedure is intended to execute" — executing below the
  // bracket floor is refused.
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop)}, MakeProcedureSegment(3, 5));
  m.SetIpr(2, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Fetch, AboveExecuteBracketTraps) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop)}, MakeProcedureSegment(3, 5));
  m.SetIpr(6, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kExecuteViolation);
}

TEST(Fetch, BoundsViolation) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 1);  // one past the single instruction
  EXPECT_EQ(m.StepTrap(), TrapCause::kBoundsViolation);
}

TEST(Fetch, MissingSegment) {
  BareMachine m;
  m.SetIpr(4, 63, 0);  // in descriptor bounds but absent
  EXPECT_EQ(m.StepTrap(), TrapCause::kMissingSegment);
}

TEST(Fetch, SegnoBeyondDescriptorBound) {
  BareMachine m(/*slots=*/8);
  m.SetIpr(4, 100, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kMissingSegment);
}

TEST(Fetch, IllegalOpcode) {
  BareMachine m;
  const Segno code = m.AddSegment({uint64_t{255} << 56}, UserCode());
  m.SetIpr(4, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kIllegalOpcode);
}

TEST(Fetch, TrapSavesDisruptedInstructionAddress) {
  BareMachine m;
  const Segno code = m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)},
                               MakeProcedureSegment(3, 5));
  m.SetIpr(6, code, 1);
  ASSERT_EQ(m.StepTrap(), TrapCause::kExecuteViolation);
  // The saved state addresses the faulting instruction, so it can be
  // resumed after the supervisor repairs the condition.
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.segno, code);
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.wordno, 1u);
  EXPECT_EQ(m.cpu().trap_state().regs.ipr.ring, 6);
}

TEST(Fetch, ProcessorFrozenWhileTrapPending) {
  BareMachine m;
  m.SetIpr(4, 63, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kMissingSegment);
  const uint64_t cycles = m.cpu().cycles();
  EXPECT_FALSE(m.cpu().Step());
  EXPECT_FALSE(m.cpu().Step());
  EXPECT_EQ(m.cpu().cycles(), cycles);  // frozen, no progress
}

TEST(Fetch, RettResumesAndRetries) {
  BareMachine m;
  m.SetIpr(4, 63, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kMissingSegment);
  // "A special instruction allows the state of the processor at the time
  // of the trap to be restored later ... resuming the disrupted
  // instruction." Install the segment, then resume the saved state.
  const TrapState trap = m.cpu().TakeTrap();
  const Segno code = m.AddCode({MakeIns(Opcode::kLdai, 9)}, UserCode());
  ASSERT_EQ(code, 0u);  // occupies the first free slot, not 63
  Sdw sdw = *m.dseg().Fetch(code);
  m.dseg().Store(63, sdw);
  m.cpu().InvalidateSdw(63);
  m.cpu().Rett(trap.regs);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 9u);
}

TEST(Fetch, ChecksSkippedWhenDisabled) {
  BareMachine m;
  SegmentAccess access = MakeProcedureSegment(0, 0);  // ring 4 may not execute
  const Segno code = m.AddCode({MakeIns(Opcode::kLdai, 1)}, access);
  m.SetIpr(4, code, 0);
  m.cpu().set_checks_enabled(false);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 1u);
}

TEST(Fetch, CountersTrackFetchChecks) {
  BareMachine m;
  const Segno code =
      m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().counters().checks_fetch, 3u);
  EXPECT_EQ(m.cpu().counters().instructions, 3u);
}

TEST(Fetch, SdwCacheHitsAfterFirstFetch) {
  BareMachine m;
  const Segno code =
      m.AddCode({MakeIns(Opcode::kNop), MakeIns(Opcode::kNop), MakeIns(Opcode::kNop)}, UserCode());
  m.SetIpr(4, code, 0);
  m.StepTrap();
  const uint64_t misses_after_first = m.cpu().counters().sdw_fetches;
  m.StepTrap();
  m.StepTrap();
  EXPECT_EQ(m.cpu().counters().sdw_fetches, misses_after_first);
  EXPECT_GE(m.cpu().counters().sdw_cache_hits, 2u);
}

}  // namespace
}  // namespace rings

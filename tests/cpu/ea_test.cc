// Figure 5: formation of the effective address in TPR — PR-relative ring
// maximization, indirect-word chains, the SDW.R1 write-bracket component,
// indexing, and the read validation of indirect words.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rings {
namespace {

TEST(EffectiveAddress, IprRelativeKeepsCurrentRing) {
  BareMachine m;
  const Segno code = m.AddSegment(
      {EncodeInstruction(MakeIns(Opcode::kLda, 1)), 42}, MakeProcedureSegment(4, 4));
  m.SetIpr(4, code, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 42u);
  EXPECT_EQ(m.cpu().tpr().ring, 4);
  EXPECT_EQ(m.cpu().tpr().segno, code);
  EXPECT_EQ(m.cpu().tpr().wordno, 1u);
}

TEST(EffectiveAddress, PrRelativeMaximizesRing) {
  // "If PRn.RING contains a value that is greater than the current ring of
  // execution, validation of the operand reference will be as though
  // execution were occurring in this higher numbered ring."
  BareMachine m;
  const Segno data = m.AddSegment({11, 22}, MakeDataSegment(5, 5));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, 1)}, MakeProcedureSegment(2, 2));
  m.SetIpr(2, code, 0);
  m.SetPr(2, /*ring=*/5, data, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 22u);
  EXPECT_EQ(m.cpu().tpr().ring, 5);  // max(2, 5)
}

TEST(EffectiveAddress, PrRelativeLowerRingDoesNotLower) {
  BareMachine m;
  const Segno data = m.AddSegment({7}, MakeDataSegment(5, 5));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 1, 0)}, MakeProcedureSegment(4, 4));
  m.SetIpr(4, code, 0);
  // Force a PR ring below the ring of execution (hardware never creates
  // this state; the EA rule must still take the max).
  m.cpu().regs().pr[1] = PointerRegister{2, data, 0};
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().tpr().ring, 4);  // max(4, 2) = 4
}

TEST(EffectiveAddress, RaisedRingDeniesOperand) {
  // The raised effective ring actually denies access: data readable only
  // up to ring 4, addressed through a ring-6 pointer.
  BareMachine m;
  const Segno data = m.AddSegment({1}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, 0)}, MakeProcedureSegment(2, 2));
  m.SetIpr(2, code, 0);
  m.SetPr(2, /*ring=*/6, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
}

TEST(EffectiveAddress, IndirectWordFollowed) {
  BareMachine m;
  const Segno data = m.AddSegment({0, 0, 99}, MakeDataSegment(4, 4));
  const Segno ptrs = m.AddSegment({EncodeIndirectWord(IndirectWord{4, false, data, 2})},
                                  MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, /*indirect=*/true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 99u);
  EXPECT_EQ(m.cpu().counters().indirect_words, 1u);
}

TEST(EffectiveAddress, IndirectRingFieldRaisesEffectiveRing) {
  // "The ring number in the indirect word has the same purpose as the ring
  // number in a pointer register."
  BareMachine m;
  const Segno data = m.AddSegment({5}, MakeDataSegment(4, 4));
  const Segno ptrs = m.AddSegment({EncodeIndirectWord(IndirectWord{6, false, data, 0})},
                                  MakeDataSegment(4, 7));  // readable at 4; written only <=4
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  // Effective ring = max(4, IND.RING=6, ptrs.R1=4) = 6 > data read top 4.
  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
  EXPECT_EQ(m.cpu().tpr().ring, 6);
}

TEST(EffectiveAddress, WriteBracketTopOfIndirectSegmentCounts) {
  // "Taking into account SDW.R1 when updating TPR.RING guarantees that the
  // operand reference will be validated with respect to the highest
  // numbered ring which could have influenced the effective address."
  BareMachine m;
  const Segno data = m.AddSegment({5}, MakeDataSegment(4, 4));
  // The indirect word lives in a segment writable up to ring 6: any ring-6
  // procedure could have forged it.
  const Segno ptrs = m.AddSegment({EncodeIndirectWord(IndirectWord{0, false, data, 0})},
                                  MakeDataSegment(6, 6));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
  EXPECT_EQ(m.cpu().tpr().ring, 6);  // max(4, 0, R1=6)
}

TEST(EffectiveAddress, IndirectWordItselfMustBeReadable) {
  // "The capability to read an indirect word during effective address
  // formation must be validated before the indirect word is retrieved."
  BareMachine m;
  const Segno data = m.AddSegment({5}, MakeDataSegment(7, 7));
  const Segno ptrs = m.AddSegment({EncodeIndirectWord(IndirectWord{0, false, data, 0})},
                                  MakeDataSegment(2, 2));  // unreadable from ring 4
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
  EXPECT_EQ(m.cpu().counters().checks_indirect, 1u);
}

TEST(EffectiveAddress, ChainOfIndirectWordsAccumulatesMaxRing) {
  BareMachine m;
  const Segno data = m.AddSegment({123}, MakeDataSegment(5, 5));
  // chain: ptrs1 -> ptrs2 -> data; ptrs2 carries ring 5.
  const Segno ptrs2 = m.AddSegment({EncodeIndirectWord(IndirectWord{5, false, data, 0})},
                                   MakeDataSegment(4, 4));
  const Segno ptrs1 = m.AddSegment({EncodeIndirectWord(IndirectWord{4, true, ptrs2, 0})},
                                   MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs1, 0);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 123u);
  EXPECT_EQ(m.cpu().tpr().ring, 5);
  EXPECT_EQ(m.cpu().counters().indirect_words, 2u);
}

TEST(EffectiveAddress, IndirectionLoopTraps) {
  BareMachine m;
  // An indirect word pointing at itself with the indirect flag set.
  const Segno ptrs = m.AddSegment({0}, MakeDataSegment(4, 4));
  m.Poke(ptrs, 0, EncodeIndirectWord(IndirectWord{4, true, ptrs, 0}));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kIndirectionLimit);
}

TEST(EffectiveAddress, IndexRegisterModifiesOffset) {
  BareMachine m;
  const Segno data = m.AddSegment({10, 20, 30, 40}, MakeDataSegment(4, 4));
  Instruction ins = MakeInsPr(Opcode::kLda, 2, 1);
  ins.tag = 3;  // offset += X3
  const Segno code = m.AddCode({ins}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  m.cpu().regs().x[3] = 2;
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 40u);  // data[1 + 2]
}

TEST(EffectiveAddress, NegativeOffsetFromPointer) {
  BareMachine m;
  const Segno data = m.AddSegment({10, 20, 30}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, -1)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 2);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 20u);
}

TEST(EffectiveAddress, NegativeResolvedWordnoTraps) {
  BareMachine m;
  const Segno data = m.AddSegment({10}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 2, -5)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, data, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kBoundsViolation);
}

TEST(EffectiveAddress, IndirectBoundsChecked) {
  BareMachine m;
  const Segno ptrs = m.AddSegment({0}, MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 5, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs, 0);
  EXPECT_EQ(m.StepTrap(), TrapCause::kBoundsViolation);
}

// Exhaustive sweep of the max rule: TPR.RING == max(exec ring, PR ring).
class EaRingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EaRingSweep, TprRingIsMax) {
  const Ring exec_ring = static_cast<Ring>(std::get<0>(GetParam()));
  const Ring pr_ring = static_cast<Ring>(std::get<1>(GetParam()));
  BareMachine m;
  const Segno data = m.AddSegment({1}, MakeDataSegment(7, 7));
  const Segno code =
      m.AddCode({MakeInsPr(Opcode::kLda, 2, 0)}, MakeProcedureSegment(exec_ring, exec_ring));
  m.SetIpr(exec_ring, code, 0);
  m.cpu().regs().pr[2] = PointerRegister{pr_ring, data, 0};
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().tpr().ring, MaxRing(exec_ring, pr_ring));
}

INSTANTIATE_TEST_SUITE_P(AllRingPairs, EaRingSweep,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

}  // namespace
}  // namespace rings

// Trap resumption: RETT after a missing-page fault taken in the middle of
// an indirect-word chain must make the fault invisible — the disrupted
// instruction re-executes from scratch and TPR (including the effective
// ring accumulated by the chain) is recomputed exactly, never restored
// from stale state.
#include <gtest/gtest.h>

#include "src/mem/page_table.h"
#include "tests/testutil.h"

namespace rings {
namespace {

// A paged segment stored directly in the bare machine's descriptor
// segment at `segno`, with all pages initially absent.
AbsAddr StorePagedSegment(BareMachine& m, Segno segno, uint64_t words,
                          const SegmentAccess& access) {
  const AbsAddr table = *AllocatePageTable(&m.memory(), PageCount(words));
  Sdw sdw;
  sdw.present = true;
  sdw.paged = true;
  sdw.base = table;
  sdw.bound = words;
  sdw.access = access;
  m.dseg().Store(segno, sdw);
  m.cpu().InvalidateSdw(segno);
  return table;
}

TEST(TrapResume, MissingPageMidIndirectChainRestoresTprExactly) {
  // Chain: pr3 -> ptrs1[0] (ring 5, indirect) -> paged[kPageWords] (in an
  // absent page) -> data[3]. The fault hits while *fetching the second
  // indirect word*, i.e. mid-chain with a partially-accumulated TPR.
  BareMachine m;
  const Segno data = m.AddSegment({0, 0, 0, 777}, MakeDataSegment(0, 6));
  const Segno paged = 10;
  const AbsAddr table =
      StorePagedSegment(m, paged, 2 * kPageWords, MakeDataSegment(4, 7));
  const Segno ptrs1 = m.AddSegment(
      {EncodeIndirectWord(IndirectWord{5, true, paged, static_cast<Wordno>(kPageWords)})},
      MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, /*indirect=*/true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs1, 0);

  ASSERT_EQ(m.StepTrap(), TrapCause::kMissingPage);
  const TrapState trap = m.cpu().TakeTrap();
  // The fault names the absent word and the saved IPR addresses the
  // disrupted instruction, not its successor.
  EXPECT_EQ(trap.fault_addr.segno, paged);
  EXPECT_EQ(trap.fault_addr.wordno, kPageWords);
  EXPECT_EQ(trap.regs.ipr.segno, code);
  EXPECT_EQ(trap.regs.ipr.wordno, 0u);
  // Mid-chain TPR at fault time: max(exec 4, first indirect ring 5).
  EXPECT_EQ(trap.tpr.ring, 5);

  // Supervisor-equivalent: page in the missing page, whose content is the
  // second indirect word (ring 6), then resume the disrupted instruction.
  const AbsAddr frame = *InstallZeroPage(&m.memory(), table, 1);
  m.memory().Write(frame, EncodeIndirectWord(IndirectWord{6, false, data, 3}));
  m.cpu().Rett(trap.regs);

  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.cpu().regs().a, 777u);
  // The whole chain was re-walked: effective ring = max(4, 5, 6).
  EXPECT_EQ(m.cpu().tpr().ring, 6);
  EXPECT_EQ(m.cpu().tpr().segno, data);
  EXPECT_EQ(m.cpu().tpr().wordno, 3u);
  EXPECT_EQ(m.cpu().regs().ipr.wordno, 1u);
}

TEST(TrapResume, RecomputedEffectiveRingStillDeniesAfterResume) {
  // Same shape, but the final operand is only readable through ring 4.
  // After the page-in and RETT, re-execution must re-accumulate the ring-6
  // effective ring and deny the read — proof the ring is recomputed by
  // the re-walk rather than carried through the trap.
  BareMachine m;
  const Segno data = m.AddSegment({1, 2, 3}, MakeDataSegment(4, 4));
  const Segno paged = 10;
  const AbsAddr table =
      StorePagedSegment(m, paged, 2 * kPageWords, MakeDataSegment(4, 7));
  const Segno ptrs1 = m.AddSegment(
      {EncodeIndirectWord(IndirectWord{4, true, paged, static_cast<Wordno>(kPageWords + 9)})},
      MakeDataSegment(4, 4));
  const Segno code = m.AddCode({MakeInsPr(Opcode::kLda, 3, 0, true)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(3, 4, ptrs1, 0);

  ASSERT_EQ(m.StepTrap(), TrapCause::kMissingPage);
  const TrapState trap = m.cpu().TakeTrap();
  const AbsAddr frame = *InstallZeroPage(&m.memory(), table, 1);
  m.memory().Write(frame + 9, EncodeIndirectWord(IndirectWord{6, false, data, 0}));
  m.cpu().Rett(trap.regs);

  EXPECT_EQ(m.StepTrap(), TrapCause::kReadViolation);
  EXPECT_EQ(m.cpu().tpr().ring, 6);
}

TEST(TrapResume, OperandPageFaultLeavesNoSideEffects) {
  // A store whose operand page is absent: the fault must precede the
  // write, and after the page is supplied the re-executed store lands in
  // the fresh frame.
  BareMachine m;
  const Segno paged = 10;
  const AbsAddr table =
      StorePagedSegment(m, paged, kPageWords, MakeDataSegment(4, 4));
  const Segno code = m.AddCode(
      {MakeIns(Opcode::kLdai, 31), MakeInsPr(Opcode::kSta, 2, 7)}, UserCode());
  m.SetIpr(4, code, 0);
  m.SetPr(2, 4, paged, 0);

  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);  // ldai
  ASSERT_EQ(m.StepTrap(), TrapCause::kMissingPage);
  const TrapState trap = m.cpu().TakeTrap();
  EXPECT_EQ(trap.regs.a, 31u);  // accumulator preserved across the fault
  const AbsAddr frame = *InstallZeroPage(&m.memory(), table, 0);
  m.cpu().Rett(trap.regs);
  ASSERT_EQ(m.StepTrap(), TrapCause::kNone);
  EXPECT_EQ(m.memory().Read(frame + 7), 31u);
}

}  // namespace
}  // namespace rings

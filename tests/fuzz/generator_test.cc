// Generator contract: a seed fully determines the program (byte-identical
// regeneration), every generated program assembles, instantiates, and
// terminates within the harness cycle budget, and the risky-region
// weighting actually produces the workloads the fuzzer exists to stress
// (gate-call loops everywhere; paging, self-modifying code, second
// processes, tty traffic across the seed population).
#include "src/fuzz/generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/kasm/assembler.h"
#include "src/sys/machine.h"
#include "src/sys/manifest.h"

namespace rings {
namespace {

TEST(GeneratorTest, SameSeedIsByteIdentical) {
  for (uint64_t seed : {1ull, 2ull, 17ull, 999ull, 123456789ull}) {
    const GeneratedGuest a = GenerateGuest(seed);
    const GeneratedGuest b = GenerateGuest(seed);
    EXPECT_EQ(a.source, b.source) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  EXPECT_NE(GenerateGuest(1).source, GenerateGuest(2).source);
}

TEST(GeneratorTest, EveryProgramAssemblesInstantiatesAndTerminates) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const GeneratedGuest guest = GenerateGuest(seed);
    const AssembleResult assembled = Assemble(guest.source);
    ASSERT_TRUE(assembled.ok) << "seed " << seed << ": " << assembled.error.ToString() << "\n"
                              << guest.source;
    const Manifest manifest = ParseManifest(guest.source);
    ASSERT_TRUE(manifest.ok()) << "seed " << seed << ": " << manifest.error;

    MachineConfig config;
    config.memory_words = size_t{1} << 20;
    auto machine = std::make_unique<Machine>(config);
    ASSERT_TRUE(machine->ok());
    std::string error;
    ASSERT_TRUE(InstantiateGuest(assembled.program, manifest, machine.get(), &error))
        << "seed " << seed << ": " << error;
    const RunResult result = machine->Run(GeneratorConfig{}.max_cycles);
    EXPECT_TRUE(result.idle) << "seed " << seed << " did not terminate: " << result.ToString();
  }
}

TEST(GeneratorTest, RiskyRegionWeightingCoversTheSeedPopulation) {
  bool any_paged = false;
  bool any_smc = false;
  bool any_second_process = false;
  bool any_tty = false;
  bool any_gate2 = false;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string& source = GenerateGuest(seed).source;
    // Every program drives the block engine's riskiest region: a CALL
    // re-executed from cached decodes inside a counted loop.
    EXPECT_NE(source.find("call  pr2|0"), std::string::npos) << "seed " << seed;
    any_paged |= source.find(" paged ") != std::string::npos;
    any_smc |= source.find("procedure 4 4 write") != std::string::npos ||
               source.find("procedure 3 3 write") != std::string::npos ||
               source.find("procedure 5 5 write") != std::string::npos;
    any_second_process |= source.find(";; start prog2") != std::string::npos;
    any_tty |= source.find("sup_gates") != std::string::npos;
    any_gate2 |= source.find(".segment gate2") != std::string::npos;
  }
  EXPECT_TRUE(any_paged);
  EXPECT_TRUE(any_smc);
  EXPECT_TRUE(any_second_process);
  EXPECT_TRUE(any_tty);
  EXPECT_TRUE(any_gate2);
}

// The manifest grammar extensions the generator depends on.
TEST(ManifestTest, ParsesPagedSegmentDirective) {
  const Manifest m = ParseManifest(
      ";; acl pd0 * data 4 4\n"
      ";; segment pd0 2048 paged\n"
      ";; start main start 4\n");
  ASSERT_TRUE(m.ok()) << m.error;
  ASSERT_EQ(m.segments.size(), 1u);
  EXPECT_EQ(m.segments[0].name, "pd0");
  EXPECT_EQ(m.segments[0].words, 2048u);
  EXPECT_FALSE(m.segments[0].populate);

  const Manifest p = ParseManifest(
      ";; segment pd0 1024 paged populate\n"
      ";; start main start 4\n");
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_TRUE(p.segments[0].populate);

  EXPECT_FALSE(ParseManifest(";; segment pd0 0 paged\n;; start m s 4\n").ok());
  EXPECT_FALSE(ParseManifest(";; segment pd0 10 linear\n;; start m s 4\n").ok());
}

TEST(ManifestTest, ParsesWritableProcedureAcl) {
  const Manifest m = ParseManifest(
      ";; acl main * procedure 4 4 write\n"
      ";; start main start 4\n");
  ASSERT_TRUE(m.ok()) << m.error;
  const auto access = m.acls.at("main").Lookup("anyone");
  ASSERT_TRUE(access.has_value());
  EXPECT_TRUE(access->flags.write);
  EXPECT_TRUE(access->flags.execute);

  const Manifest plain = ParseManifest(
      ";; acl main * procedure 4 4\n"
      ";; start main start 4\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.acls.at("main").Lookup("anyone")->flags.write);
}

}  // namespace
}  // namespace rings

// Shrinker contract: delete-ranges plus simplify-operands reduce a
// diverging source to a minimal form the oracle still accepts, protected
// structure (manifest lines, .segment/.gates) survives, and the real
// catch-and-shrink path — a deliberately broken block engine — ends at a
// repro of at most 16 instructions that still diverges.
#include "src/fuzz/shrink.h"

#include <gtest/gtest.h>

#include <string>

#include "src/fuzz/differential.h"
#include "src/fuzz/generator.h"

namespace rings {
namespace {

TEST(ShrinkTest, CountInstructionsCountsOnlyExecutableLines) {
  const std::string source =
      ";; acl main * procedure 4 4\n"
      "        .segment main\n"
      "start:  nop\n"
      "        lda   d0\n"
      "        mme   0\n"
      "d0:     .word 7\n"
      "; a comment\n";
  EXPECT_EQ(CountInstructions(source), 3);
}

TEST(ShrinkTest, SyntheticOracleReachesMinimalForm) {
  // The oracle wants exactly two specific lines; everything else is noise
  // the shrinker must strip.
  std::string source = ";; start main start 4\n        .segment main\n";
  for (int i = 0; i < 20; ++i) {
    source += "        nop\n";
  }
  source += "        lda   keep1\n";
  for (int i = 0; i < 20; ++i) {
    source += "        adai  1\n";
  }
  source += "        sta   keep2\n";
  const auto oracle = [](const std::string& candidate) {
    return candidate.find("lda   keep1") != std::string::npos &&
           candidate.find("sta   keep2") != std::string::npos;
  };
  const ShrinkResult result = Shrink(source, oracle);
  EXPECT_NE(result.source.find("lda   keep1"), std::string::npos);
  EXPECT_NE(result.source.find("sta   keep2"), std::string::npos);
  // Protected structure survives even though the oracle ignores it.
  EXPECT_NE(result.source.find(";; start"), std::string::npos);
  EXPECT_NE(result.source.find(".segment main"), std::string::npos);
  // All 40 noise instructions are gone.
  EXPECT_EQ(result.instructions, 2) << result.source;
  EXPECT_GT(result.oracle_calls, 0);
}

TEST(ShrinkTest, OracleBudgetIsRespected) {
  std::string source;
  for (int i = 0; i < 50; ++i) {
    source += "        nop\n";
  }
  int calls = 0;
  const auto oracle = [&calls](const std::string&) {
    ++calls;
    return true;
  };
  ShrinkOptions options;
  options.max_oracle_calls = 10;
  const ShrinkResult result = Shrink(source, oracle, options);
  EXPECT_LE(result.oracle_calls, 10);
  EXPECT_EQ(result.oracle_calls, calls);
}

TEST(ShrinkTest, BrokenBlockEngineShrinksToSmallRepro) {
  // The acceptance ablation: a block engine that charges one spurious
  // cycle per in-block CALL must be caught and shrunk to <= 16
  // instructions that still diverge.
  FuzzOptions options;
  options.ablate_block_call = true;
  const GeneratedGuest guest = GenerateGuest(1);
  const CheckResult check = CheckGuest(guest.source, options);
  ASSERT_TRUE(check.ok) << check.error;
  ASSERT_TRUE(check.divergence.found);

  const auto oracle = [&options](const std::string& candidate) {
    const CheckResult r = CheckGuest(candidate, options);
    return r.ok && r.divergence.found;
  };
  const ShrinkResult shrunk = Shrink(guest.source, oracle);
  EXPECT_LE(shrunk.instructions, 16) << shrunk.source;
  EXPECT_TRUE(oracle(shrunk.source)) << shrunk.source;

  // The formatted repro is itself a checkable guest that still diverges.
  const std::string repro = FormatRepro(1, check.divergence.ToString(), shrunk.source);
  const CheckResult again = CheckGuest(repro, options);
  EXPECT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.divergence.found);
}

TEST(ShrinkTest, BrokenChainingShrinksToSmallRepro) {
  // The chaining analog of the block-engine ablation: one spurious cycle
  // per followed successor link must be caught and shrunk to a small
  // guest that still diverges.
  FuzzOptions options;
  options.ablate_chain = true;
  const GeneratedGuest guest = GenerateGuest(1);
  const CheckResult check = CheckGuest(guest.source, options);
  ASSERT_TRUE(check.ok) << check.error;
  ASSERT_TRUE(check.divergence.found);

  const auto oracle = [&options](const std::string& candidate) {
    const CheckResult r = CheckGuest(candidate, options);
    return r.ok && r.divergence.found;
  };
  const ShrinkResult shrunk = Shrink(guest.source, oracle);
  EXPECT_LE(shrunk.instructions, 16) << shrunk.source;
  EXPECT_TRUE(oracle(shrunk.source)) << shrunk.source;
}

}  // namespace
}  // namespace rings

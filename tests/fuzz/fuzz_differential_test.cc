// The differential oracle end to end: a population of generated guests
// runs bit-identically across the slow path, fast path, superblock
// engine, fleet thread counts, and a snapshot/restore cut (this is the
// ctest face of `ringsim --fuzz`); a machine with a sabotaged block
// engine is caught with a precise first-differing-field report; and a
// guest the engines genuinely disagree on is impossible to construct from
// the generator population (smoke over many seeds).
#include "src/fuzz/differential.h"

#include <gtest/gtest.h>

#include <string>

#include "src/fuzz/generator.h"

namespace rings {
namespace {

TEST(FuzzDifferentialTest, GeneratedGuestsAgreeAcrossAllLegs) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const GeneratedGuest guest = GenerateGuest(seed);
    const CheckResult result = CheckGuest(guest.source);
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.error;
    EXPECT_FALSE(result.divergence.found)
        << "seed " << seed << ": " << result.divergence.ToString() << "\n"
        << guest.source;
  }
}

TEST(FuzzDifferentialTest, ReferenceSignatureIsPopulated) {
  const CheckResult result = CheckGuest(GenerateGuest(3).source);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.reference.cycles, 0u);
  EXPECT_GT(result.reference.instructions, 0u);
  EXPECT_NE(result.reference.fingerprint, 0u);
  EXPECT_FALSE(result.reference.processes.empty());
  // Gate calls ring-switch on every program, so the trap/ring-switch
  // trace is never empty.
  EXPECT_FALSE(result.reference.traps.empty());
}

TEST(FuzzDifferentialTest, SabotagedBlockEngineIsCaughtOnTheBlockLeg) {
  FuzzOptions options;
  options.ablate_block_call = true;
  const CheckResult result = CheckGuest(GenerateGuest(1).source, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.divergence.found);
  // The fast leg runs without the block engine, so the ablation must
  // surface on the block leg first, as a cycle-count mismatch.
  EXPECT_EQ(result.divergence.leg, "block");
  EXPECT_NE(result.divergence.detail.find("cycles"), std::string::npos)
      << result.divergence.detail;
}

TEST(FuzzDifferentialTest, SabotageIsCaughtAcrossTheSeedPopulation) {
  // Every generated program contains a gate-call loop, so the ablation
  // must be caught for any seed, not just a lucky one.
  FuzzOptions options;
  options.ablate_block_call = true;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const CheckResult result = CheckGuest(GenerateGuest(seed).source, options);
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.error;
    EXPECT_TRUE(result.divergence.found) << "seed " << seed;
  }
}

TEST(FuzzDifferentialTest, SabotagedChainingIsCaughtOnTheBlockLeg) {
  FuzzOptions options;
  options.ablate_chain = true;
  const CheckResult result = CheckGuest(GenerateGuest(1).source, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.divergence.found);
  // The ablation charges a spurious cycle per followed successor link, so
  // it can only surface on the leg that chains: `block`. The fast leg has
  // no block engine and the block-nochain leg never follows a link.
  EXPECT_EQ(result.divergence.leg, "block");
  EXPECT_NE(result.divergence.detail.find("cycles"), std::string::npos)
      << result.divergence.detail;
}

TEST(FuzzDifferentialTest, ChainSabotageIsCaughtAcrossTheSeedPopulation) {
  // Every generated program loops, so every seed forms and follows
  // block-to-block links; the ablation must be caught for any seed.
  FuzzOptions options;
  options.ablate_chain = true;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const CheckResult result = CheckGuest(GenerateGuest(seed).source, options);
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.error;
    EXPECT_TRUE(result.divergence.found) << "seed " << seed;
  }
}

TEST(FuzzDifferentialTest, MalformedGuestIsAnErrorNotADivergence) {
  const CheckResult bad_asm = CheckGuest(";; start main start 4\n        .segment main\n"
                                         "start:  frobnicate x\n");
  EXPECT_FALSE(bad_asm.ok);
  EXPECT_FALSE(bad_asm.divergence.found);

  const CheckResult no_start = CheckGuest("        .segment main\nstart:  mme   0\n");
  EXPECT_FALSE(no_start.ok);
  EXPECT_NE(no_start.error.find("manifest"), std::string::npos);
}

TEST(FuzzDifferentialTest, NonTerminatingGuestIsAnError) {
  const CheckResult result = CheckGuest(
      ";; acl main * procedure 4 4\n"
      ";; start main start 4\n"
      "        .segment main\n"
      "start:  tra   start\n",
      FuzzOptions{.max_cycles = 10'000});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("did not terminate"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace rings

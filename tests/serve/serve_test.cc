// The serving core: submissions run to the same fingerprint a standalone
// machine produces, golden-image cloning is transparent, tenant budgets
// are enforced, and results are deterministic across pool sizes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fingerprint.h"
#include "src/kasm/assembler.h"
#include "src/serve/server.h"
#include "src/snapshot/snapshot.h"
#include "src/sys/machine.h"
#include "src/sys/manifest.h"

namespace rings {
namespace {

// Self-contained guests (kasm + `;;` manifest), the daemon's submission
// format.

constexpr char kCallLoopGuest[] = R"(;; acl main * procedure 4 4
;; acl counter * data 4 4
;; acl target * procedure 1 1 7
;; start main start 4
        .segment main
start:
loop:   epp   pr2, gptr,*
        call  pr2|0
        aos   cnt,*
        lda   cnt,*
        sba   limit
        tmi   loop
        mme   0
limit:  .word 120
cnt:    .its  4, counter, 0
gptr:   .its  4, target, 0

        .segment counter
        .word 0

        .segment target
        .gates 1
entry:  ret   pr7|0
)";

constexpr char kPagerGuest[] = R"(;; acl pager * procedure 4 4
;; acl bigdata * data 4 4
;; segment bigdata 2048 paged demand
;; start pager pstart 4
        .segment pager
pstart: aos   cnt,*
        lda   far,*
        adai  1
        sta   far,*
        lda   cnt,*
        sba   plim
        tmi   pstart
        mme   0
plim:   .word 150
cnt:    .its  4, bigdata, 10
far:    .its  4, bigdata, 1034
)";

constexpr char kSpinnerGuest[] = R"(;; acl main * procedure 4 4
;; start main start 4
        .segment main
start:  tra   start
)";

// Reads up to 4 words from the typewriter through sup_gates gate 2, exits
// with the word count.
constexpr char kTtyReadGuest[] = R"(;; acl main * procedure 4 4
;; acl inbuf * data 4 4
;; start main start 4
        .segment main
start:  epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0
        mme   0
arglist: .word 1
        .its  4, inbuf, 0
        .word 4
gateptr: .its 4, sup_gates, 2

        .segment inbuf
        .block 8
)";

// The fingerprint a standalone (non-served) machine lands on for `guest`,
// with `stdin_text` fed before the run.
uint64_t StandaloneFingerprint(const std::string& guest, const std::string& stdin_text = "") {
  const AssembleResult assembled = Assemble(guest);
  EXPECT_TRUE(assembled.ok);
  const Manifest manifest = ParseManifest(guest);
  EXPECT_TRUE(manifest.ok()) << manifest.error;
  auto machine = std::make_unique<Machine>(MachineConfig{});
  std::string error;
  EXPECT_TRUE(InstantiateGuest(assembled.program, manifest, machine.get(), &error)) << error;
  if (!stdin_text.empty()) {
    machine->TtyFeedInput(stdin_text);
  }
  const RunResult run = machine->Run(100'000'000);
  EXPECT_TRUE(run.idle);
  return FingerprintMachine(*machine);
}

TEST(Serve, SourceSubmissionMatchesStandaloneFingerprint) {
  Server server(ServeConfig{.threads = 2});
  Submission submission;
  submission.source = kCallLoopGuest;
  const Completion completion = server.Wait(server.Submit(std::move(submission)));
  EXPECT_EQ(completion.status, ServeStatus::kCompleted) << completion.ToString();
  EXPECT_EQ(completion.exit_code, 0);
  EXPECT_GT(completion.cycles, 0u);
  EXPECT_GT(completion.turnaround_ns, 0u);
  EXPECT_EQ(completion.fingerprint, StandaloneFingerprint(kCallLoopGuest));
}

TEST(Serve, RepeatSubmissionsCloneFromOneGoldenImage) {
  Server server(ServeConfig{.threads = 4});
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    Submission submission;
    submission.source = kPagerGuest;
    ids.push_back(server.Submit(std::move(submission)));
  }
  const uint64_t expected = StandaloneFingerprint(kPagerGuest);
  for (const uint64_t id : ids) {
    const Completion completion = server.Wait(id);
    EXPECT_EQ(completion.status, ServeStatus::kCompleted) << completion.ToString();
    EXPECT_EQ(completion.fingerprint, expected) << completion.ToString();
  }
}

TEST(Serve, DeterministicAcrossPoolSizes) {
  const char* guests[] = {kCallLoopGuest, kPagerGuest, kCallLoopGuest};
  std::vector<std::vector<Completion>> runs;
  for (const int threads : {1, 4, 8}) {
    Server server(ServeConfig{.threads = threads});
    std::vector<uint64_t> ids;
    for (const char* guest : guests) {
      Submission submission;
      submission.source = guest;
      ids.push_back(server.Submit(std::move(submission)));
    }
    std::vector<Completion> completions;
    for (const uint64_t id : ids) {
      completions.push_back(server.Wait(id));
    }
    runs.push_back(std::move(completions));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].fingerprint, runs[0][i].fingerprint);
      EXPECT_EQ(runs[run][i].cycles, runs[0][i].cycles);
      EXPECT_EQ(runs[run][i].instructions, runs[0][i].instructions);
      EXPECT_EQ(runs[run][i].exit_code, runs[0][i].exit_code);
      EXPECT_EQ(runs[run][i].tty, runs[0][i].tty);
    }
  }
}

TEST(Serve, StdinFeedsTheTtyReadService) {
  Server server(ServeConfig{.threads = 1});
  Submission submission;
  submission.source = kTtyReadGuest;
  submission.stdin_text = "ok";
  const Completion completion = server.Wait(server.Submit(std::move(submission)));
  EXPECT_EQ(completion.status, ServeStatus::kCompleted) << completion.ToString();
  EXPECT_EQ(completion.exit_code, 2);  // words read
  EXPECT_EQ(completion.fingerprint, StandaloneFingerprint(kTtyReadGuest, "ok"));
}

TEST(Serve, ImageSubmissionRestoresAndContinues) {
  // Run a machine halfway, snapshot it, and submit the image; the served
  // continuation must land on the fingerprint of an uninterrupted run.
  const AssembleResult assembled = Assemble(kCallLoopGuest);
  ASSERT_TRUE(assembled.ok);
  const Manifest manifest = ParseManifest(kCallLoopGuest);
  ASSERT_TRUE(manifest.ok());
  auto half = std::make_unique<Machine>(MachineConfig{});
  std::string error;
  ASSERT_TRUE(InstantiateGuest(assembled.program, manifest, half.get(), &error)) << error;
  half->Run(5'000);
  std::vector<uint8_t> image;
  ASSERT_TRUE(SaveSnapshot(*half, &image, &error)) << error;

  Server server(ServeConfig{.threads = 1});
  Submission submission;
  submission.image = std::move(image);
  const Completion completion = server.Wait(server.Submit(std::move(submission)));
  EXPECT_EQ(completion.status, ServeStatus::kCompleted) << completion.ToString();
  EXPECT_EQ(completion.fingerprint, StandaloneFingerprint(kCallLoopGuest));
}

TEST(Serve, SubmissionCycleCapRetiresAsBudgetExceeded) {
  Server server(ServeConfig{.threads = 1, .slice_cycles = 1'000});
  Submission submission;
  submission.source = kSpinnerGuest;
  submission.max_cycles = 10'000;
  const Completion completion = server.Wait(server.Submit(std::move(submission)));
  EXPECT_EQ(completion.status, ServeStatus::kBudgetExceeded) << completion.ToString();
  EXPECT_EQ(completion.exit_code, 111);
  EXPECT_GE(completion.cycles, 10'000u);
}

TEST(Serve, TenantCycleBudgetCutsAcrossSubmissions) {
  Server server(ServeConfig{.threads = 1, .slice_cycles = 1'000});
  server.SetTenantBudget("miser", TenantBudget{.max_cycles_total = 15'000});
  Submission submission;
  submission.tenant = "miser";
  submission.source = kSpinnerGuest;
  const Completion first = server.Wait(server.Submit(submission));
  EXPECT_EQ(first.status, ServeStatus::kBudgetExceeded) << first.ToString();
  EXPECT_EQ(first.error, "tenant cycle budget exhausted");
  // The tenant has nothing left: the next submission dies on its first
  // slice check, even though it would finish cleanly on its own.
  submission.source = kCallLoopGuest;
  const Completion second = server.Wait(server.Submit(submission));
  EXPECT_EQ(second.status, ServeStatus::kBudgetExceeded) << second.ToString();
}

TEST(Serve, TenantMemoryBudgetRejectsAtSubmit) {
  Server server(ServeConfig{});
  server.SetTenantBudget("small", TenantBudget{.max_memory_words = 1'000});
  Submission submission;
  submission.tenant = "small";
  submission.source = kCallLoopGuest;
  const Completion completion = server.Wait(server.Submit(std::move(submission)));
  EXPECT_EQ(completion.status, ServeStatus::kRejected) << completion.ToString();
  EXPECT_NE(completion.error.find("memory budget"), std::string::npos);
  // Other tenants are unaffected.
  Submission other;
  other.source = kCallLoopGuest;
  EXPECT_EQ(server.Wait(server.Submit(std::move(other))).status, ServeStatus::kCompleted);
}

TEST(Serve, MalformedSubmissionsAreRejectedOrFailed) {
  Server server(ServeConfig{.threads = 1});
  // Neither source nor image.
  const Completion empty = server.Wait(server.Submit(Submission{}));
  EXPECT_EQ(empty.status, ServeStatus::kRejected);
  // Both source and image.
  Submission both;
  both.source = kCallLoopGuest;
  both.image = {1, 2, 3};
  EXPECT_EQ(server.Wait(server.Submit(std::move(both))).status, ServeStatus::kRejected);
  // Corrupt image bytes.
  Submission corrupt;
  corrupt.image = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(server.Wait(server.Submit(std::move(corrupt))).status, ServeStatus::kRejected);
  // Assembly failure surfaces as a failed completion with the error text.
  Submission bad;
  bad.source = ";; start main start 4\n        .segment main\nstart:  frobnicate x\n";
  const Completion failed = server.Wait(server.Submit(std::move(bad)));
  EXPECT_EQ(failed.status, ServeStatus::kFailed);
  EXPECT_FALSE(failed.error.empty());
  EXPECT_EQ(failed.exit_code, 111);
}

TEST(Serve, ShutdownDrainsQueuedWorkAndRefusesNew) {
  auto server = std::make_unique<Server>(ServeConfig{.threads = 2});
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    Submission submission;
    submission.source = kCallLoopGuest;
    ids.push_back(server->Submit(std::move(submission)));
  }
  server->Shutdown();
  for (const uint64_t id : ids) {
    EXPECT_EQ(server->Wait(id).status, ServeStatus::kCompleted);
  }
  Submission late;
  late.source = kCallLoopGuest;
  EXPECT_EQ(server->Wait(server->Submit(std::move(late))).status, ServeStatus::kRejected);
}

}  // namespace
}  // namespace rings

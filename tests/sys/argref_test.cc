// Experiment C4 — "Call and Return Revisited": automatic validation of
// cross-ring argument references. A protected ring-1 service must not be
// trickable into reading or writing anything its (ring-4) caller could
// not itself reference; the PR/indirect-word ring machinery provides this
// without any explicit checks in the callee.
#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

// A ring-1 protected subsystem with one gate: copies arg1 <- arg0 through
// the caller-supplied argument list, exactly as a trusting service would.
constexpr char kCopierSource[] = R"(
        .segment copier
        .gates 1
gate:   tra  body
body:   lda  pr1|1,*        ; read *arg0 (validated at caller level)
        sta  pr1|2,*        ; write *arg1 (validated at caller level)
        ret  pr7|0
)";

std::map<std::string, AccessControlList> CopierAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["copier"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  return acls;
}

TEST(ArgRef, HonestArgumentsWork) {
  constexpr char kMain[] = R"(
        .segment main
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        lda   dstp,*
        mme   0
args:   .word 2
        .its  4, data, 0     ; arg0: source
        .its  4, data, 1     ; arg1: destination
        .word 1
        .word 1
gptr:   .its  4, copier, 0
dstp:   .its  4, data, 1

        .segment data
        .word 123
        .word 0
)";
  Machine machine;
  auto acls = CopierAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(std::string(kCopierSource) + kMain, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 123);
  EXPECT_EQ(machine.PeekSegment("data", 1), 123u);
}

TEST(ArgRef, CalleeCannotBeTrickedIntoReadingSupervisorData) {
  // The caller points arg0 at a ring-0 data segment. The service's
  // `lda pr1|1,*` computes effective ring max(PR1.RING=4, IND.RING=4) = 4,
  // and the read of the secret is denied even though the service itself
  // executes in ring 1.
  constexpr char kMain[] = R"(
        .segment main
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        mme   0
args:   .word 2
        .its  4, secret, 0   ; arg0 the caller cannot read
        .its  4, data, 0
        .word 1
        .word 1
gptr:   .its  4, copier, 0

        .segment secret
        .word 999

        .segment data
        .word 0
)";
  Machine machine;
  auto acls = CopierAcls();
  acls["secret"] = AccessControlList::Public(MakeDataSegment(1, 1));  // rings 0-1 only
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(std::string(kCopierSource) + kMain, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  // The service faulted on the caller's behalf: the process dies with a
  // read violation and the secret never reached user-visible storage.
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
  EXPECT_EQ(machine.PeekSegment("data", 0), 0u);
}

TEST(ArgRef, CalleeCannotBeTrickedIntoWritingSupervisorData) {
  // arg1 points at a segment writable only below the caller's ring: the
  // service's store is validated at the caller's level and denied.
  constexpr char kMain[] = R"(
        .segment main
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        mme   0
args:   .word 2
        .its  4, data, 0
        .its  4, lowseg, 0   ; arg1 the caller cannot write
        .word 1
        .word 1
gptr:   .its  4, copier, 0

        .segment data
        .word 55

        .segment lowseg
        .word 1
)";
  Machine machine;
  auto acls = CopierAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["lowseg"] = AccessControlList::Public(MakeDataSegment(1, 4));  // readable@4, writable@1
  ASSERT_TRUE(machine.LoadProgramSource(std::string(kCopierSource) + kMain, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kWriteViolation);
  EXPECT_EQ(machine.PeekSegment("lowseg", 0), 1u);  // untouched
}

TEST(ArgRef, EppLoadedPointerKeepsValidationLevel) {
  // The footnote property: the callee EPP-loads a free PR from the
  // argument list; the effective ring rides along, so later references
  // through that PR are still validated at the caller's level.
  constexpr char kService[] = R"(
        .segment copier
        .gates 1
gate:   tra  body
body:   epp  pr3, pr1|1,*   ; PR3 <- address of arg0, ring = caller level
        lda  pr3|0           ; still validated at the caller's ring
        ret  pr7|0
)";
  constexpr char kMain[] = R"(
        .segment main
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        mme   0
args:   .word 1
        .its  4, secret, 0
        .word 1
gptr:   .its  4, copier, 0

        .segment secret
        .word 999
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["copier"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["secret"] = AccessControlList::Public(MakeDataSegment(1, 1));
  ASSERT_TRUE(machine.LoadProgramSource(std::string(kService) + kMain, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
}

TEST(ArgRef, ChainOfDownwardCallsPreservesOriginRing) {
  // The footnote's chain property: ring 5 calls a ring-4 intermediary,
  // which forwards the same argument list to the ring-1 copier. The
  // argument's indirect word carries ring 5, so even though PR1.RING
  // becomes 4 at the second hop, validation still happens at ring 5.
  constexpr char kSource[] = R"(
        .segment copier
        .gates 1
gate:   tra  cbody
cbody:  lda  pr1|1,*         ; effective ring = max(4, IND.RING=5) = 5
        sta  pr1|2,*
        ret  pr7|0

        .segment middle      ; runs in ring 4, forwards the args
        .gates 1
mgate:  tra  mbody
mbody:  epp  pr2, mgptr,*
        call pr2|0           ; downward call with the same PR1
        ret  pr7|0
mgptr:  .its 4, copier, 0

        .segment main        ; runs in ring 5
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        mme   0
args:   .word 2
        .its  5, ring4data, 0  ; provided from ring 5
        .its  5, ring5data, 0
        .word 1
        .word 1
gptr:   .its  5, middle, 0

        .segment ring4data   ; readable at 5? no: readable only to ring 4
        .word 7

        .segment ring5data
        .word 0
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["copier"] = AccessControlList::Public(MakeProcedureSegment(1, 1, 5, 1));
  acls["middle"] = AccessControlList::Public(MakeProcedureSegment(4, 4, 5, 1));
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(5, 5));
  acls["ring4data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  acls["ring5data"] = AccessControlList::Public(MakeDataSegment(5, 5));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", /*ring=*/5));
  machine.Run();
  // ring4data is readable only up to ring 4, but the argument originated
  // in ring 5: the copier's read is validated at ring 5 and denied, even
  // though the intermediate caller (ring 4) could have read it directly.
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kReadViolation);
}

TEST(ArgRef, ValidationCostsNothingExtra) {
  // The validated cross-ring reference executes the same instruction
  // sequence as a same-ring one — count cycles for the copier invoked
  // from ring 4 vs an identical copy loop at ring 4.
  constexpr char kMain[] = R"(
        .segment main
start:  epp   pr1, args
        epp   pr2, gptr,*
        call  pr2|0
        mme   0
args:   .word 2
        .its  4, data, 0
        .its  4, data, 1
        .word 1
        .word 1
gptr:   .its  4, copier, 0

        .segment data
        .word 9
        .word 0
)";
  Machine machine;
  auto acls = CopierAcls();
  acls["data"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(std::string(kCopierSource) + kMain, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  // No supervisor involvement in the call, argument references, or
  // return (the only supervisor work is dispatch and the final exit).
  EXPECT_EQ(machine.cpu().counters().upward_calls_emulated, 0u);
  EXPECT_EQ(machine.cpu().counters().argument_words_copied, 0u);
  EXPECT_EQ(machine.cpu().counters().calls_downward, 1u);
  EXPECT_EQ(machine.cpu().counters().returns_upward, 1u);
}

}  // namespace
}  // namespace rings

// Whole-machine tests: assemble guest programs, load them with ACLs, run
// processes, and observe results — including downward calls through
// supervisor gates, the exit protocol, and tty services.
#include <gtest/gtest.h>

#include "src/sys/machine.h"

namespace rings {
namespace {

// A program that computes 6*7 into a data-segment word and exits with the
// result. (The result cannot live in `main`: a pure procedure segment has
// its write flag off, and the hardware enforces that.)
constexpr char kArithmeticProgram[] = R"(
        .segment main
start:  ldai  6
        mpy   seven
        sta   rptr,*
        mme   0            ; exit, code in A
seven:  .word 7
rptr:   .its  4, results, 0

        .segment results
        .word 0
)";

std::map<std::string, AccessControlList> UserAcls() {
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["results"] = AccessControlList::Public(MakeDataSegment(4, 4));
  return acls;
}

TEST(MachineTest, ConstructsCleanly) {
  Machine machine;
  ASSERT_TRUE(machine.ok());
  // Supervisor gate segments exist.
  EXPECT_NE(machine.registry().Find(kGateSegmentRing1), nullptr);
  EXPECT_NE(machine.registry().Find(kGateSegmentRing0), nullptr);
  EXPECT_NE(machine.registry().Find(kAdminGateSegment), nullptr);
}

TEST(MachineTest, RunsArithmeticProgramToExit) {
  Machine machine;
  ASSERT_TRUE(machine.ok());
  ASSERT_TRUE(machine.LoadProgramSource(kArithmeticProgram, UserAcls()));
  Process* p = machine.Login("alice");
  ASSERT_NE(p, nullptr);
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 42);
  EXPECT_EQ(machine.PeekSegment("results", 0), 42u);
}

TEST(MachineTest, ExitViaSupervisorGate) {
  // Same computation, but exiting through the ring-1 gate segment with a
  // hardware downward CALL (ring 4 -> ring 1) instead of MME.
  constexpr char kSource[] = R"(
        .segment main
start:  ldai  21
        ada   val
        epp   pr2, gateptr,*
        call  pr2|0          ; g_exit gate
val:    .word 21
gateptr: .its 4, sup_gates, 0
)";
  Machine machine;
  ASSERT_TRUE(machine.ok());
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));

  const RunResult result = machine.Run();
  EXPECT_TRUE(result.idle);
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 42);
  // The downward call was performed by hardware, without supervisor
  // emulation.
  EXPECT_GE(machine.cpu().counters().calls_downward, 1u);
  EXPECT_EQ(machine.cpu().counters().upward_calls_emulated, 0u);
}

TEST(MachineTest, GetRingServiceReportsCallerRing) {
  // Call the g_ring gate (gate word 3) from ring 4: A must come back 4.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, gateptr,*
        call  pr2|0
        mme   0
gateptr: .its 4, sup_gates, 3
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 4);
}

TEST(MachineTest, TtyWriteThroughGate) {
  // Write "HI" to the typewriter through the ring-1 gate, passing a
  // proper argument list via PR1.
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0          ; g_ttyw (gate 1)
        mme   0
arglist: .word 1             ; one argument
        .its  4, main, buf   ; pointer to the buffer
        .word 2              ; length
buf:    .word 72             ; 'H'
        .word 73             ; 'I'
gateptr: .its 4, sup_gates, 1
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(machine.TtyOutput(), "HI");
  EXPECT_EQ(machine.tty_operations(), 1u);
}

TEST(MachineTest, ProcessKilledOnWildStore) {
  // Storing into a read-only segment kills the process with a write
  // violation.
  constexpr char kSource[] = R"(
        .segment main
start:  ldai  1
        sta   roptr,*
        mme   0
roptr:  .its  4, rodata, 0

        .segment rodata
        .word 7
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["rodata"] = AccessControlList::Public(MakeReadOnlyDataSegment(4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kWriteViolation);
  // The target segment is unchanged.
  EXPECT_EQ(machine.PeekSegment("rodata", 0), 7u);
}

TEST(MachineTest, UninitiatedSegmentIsMissing) {
  constexpr char kSource[] = R"(
        .segment main
start:  lda   ptr,*
        mme   0
ptr:    .its  4, secret, 0

        .segment secret
        .word 1234
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  // secret's ACL names only bob; alice's initiate must fail and the
  // reference must trap.
  acls["secret"] = AccessControlList::ForUser("bob", MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kKilled);
  EXPECT_EQ(p->kill_cause, TrapCause::kMissingSegment);
}

TEST(MachineTest, AdminGateRestrictedByAcl) {
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr2, gateptr,*
        call  pr2|0
        mme   0
gateptr: .its 4, admin_gates, 0
)";
  const auto run_as = [&](const std::string& user) {
    Machine machine;
    std::map<std::string, AccessControlList> acls;
    acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
    EXPECT_TRUE(machine.LoadProgramSource(kSource, acls));
    Process* p = machine.Login(user);
    machine.supervisor().InitiateAll(p);
    EXPECT_TRUE(machine.Start(p, "main", "start", kUserRing));
    machine.Run();
    return std::make_pair(p->state, machine.supervisor().registered_users());
  };

  const auto [admin_state, admin_users] = run_as("admin");
  EXPECT_EQ(admin_state, ProcessState::kExited);
  ASSERT_EQ(admin_users.size(), 1u);
  EXPECT_EQ(admin_users[0], "admin");

  // A non-admin cannot even initiate the gate segment: the call traps.
  const auto [user_state, user_users] = run_as("mallory");
  EXPECT_EQ(user_state, ProcessState::kKilled);
  EXPECT_TRUE(user_users.empty());
}

TEST(MachineTest, RunReportsBudgetExhaustion) {
  constexpr char kSource[] = R"(
        .segment main
start:  tra   start
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  Process* p = machine.Login("alice");
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  const RunResult result = machine.Run(/*max_cycles=*/10000);
  EXPECT_FALSE(result.idle);
  EXPECT_GE(result.cycles, 10000u);
}

TEST(MachineTest, PeekPokeSegment) {
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["d"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(".segment d\n.word 5\n.word 6\n", acls));
  EXPECT_EQ(machine.PeekSegment("d", 0), 5u);
  EXPECT_EQ(machine.PeekSegment("d", 1), 6u);
  EXPECT_TRUE(machine.PokeSegment("d", 0, 99));
  EXPECT_EQ(machine.PeekSegment("d", 0), 99u);
  EXPECT_FALSE(machine.PokeSegment("d", 2, 1));
  EXPECT_EQ(machine.PeekSegment("nosuch", 0), std::nullopt);
}

TEST(MachineTest, TtyReadService) {
  constexpr char kSource[] = R"(
        .segment main
start:  epp   pr1, arglist
        epp   pr2, gateptr,*
        call  pr2|0           ; g_ttyr (gate 2)
        mme   0               ; exit code = words read
arglist: .word 1
        .its  4, inbuf, 0
        .word 4
gateptr: .its 4, sup_gates, 2

        .segment inbuf
        .block 8
)";
  Machine machine;
  std::map<std::string, AccessControlList> acls;
  acls["main"] = AccessControlList::Public(MakeProcedureSegment(4, 4));
  acls["inbuf"] = AccessControlList::Public(MakeDataSegment(4, 4));
  ASSERT_TRUE(machine.LoadProgramSource(kSource, acls));
  machine.TtyFeedInput("ok");
  Process* p = machine.Login("alice");
  machine.supervisor().InitiateAll(p);
  ASSERT_TRUE(machine.Start(p, "main", "start", kUserRing));
  machine.Run();
  EXPECT_EQ(p->state, ProcessState::kExited);
  EXPECT_EQ(p->exit_code, 2);
  EXPECT_EQ(machine.PeekSegment("inbuf", 0), static_cast<Word>('o'));
  EXPECT_EQ(machine.PeekSegment("inbuf", 1), static_cast<Word>('k'));
}

}  // namespace
}  // namespace rings

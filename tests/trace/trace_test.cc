#include <gtest/gtest.h>

#include "src/trace/counters.h"
#include "src/trace/event_trace.h"

namespace rings {
namespace {

TEST(EventTrace, DisabledRecordsNothing) {
  EventTrace trace;
  trace.Record(TraceEvent{EventKind::kTrap, 1, 0, {}, TrapCause::kHalt, 0, {}});
  EXPECT_TRUE(trace.events().empty());
}

TEST(EventTrace, BoundedCapacityDropsOldest) {
  EventTrace trace(/*capacity=*/3);
  trace.set_enabled(true);
  for (uint64_t i = 0; i < 5; ++i) {
    trace.Record(TraceEvent{EventKind::kInstruction, i, 0, {}, TrapCause::kNone, 0, {}});
  }
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events().front().cycle, 2u);
  EXPECT_EQ(trace.events().back().cycle, 4u);
}

TEST(EventTrace, FilterByKind) {
  EventTrace trace;
  trace.set_enabled(true);
  trace.Record(TraceEvent{EventKind::kInstruction, 1, 4, {}, TrapCause::kNone, 0, {}});
  trace.Record(TraceEvent{EventKind::kRingSwitch, 2, 4, {}, TrapCause::kNone, 1, {}});
  trace.Record(TraceEvent{EventKind::kTrap, 3, 1, {}, TrapCause::kHalt, 0, {}});
  trace.Record(TraceEvent{EventKind::kRingSwitch, 4, 1, {}, TrapCause::kNone, 4, {}});
  EXPECT_EQ(trace.Filter(EventKind::kRingSwitch).size(), 2u);
  EXPECT_EQ(trace.Filter(EventKind::kTrap).size(), 1u);
  const auto rings_seen = trace.RingSwitchSequence();
  ASSERT_EQ(rings_seen.size(), 2u);
  EXPECT_EQ(rings_seen[0], 1);
  EXPECT_EQ(rings_seen[1], 4);
}

TEST(EventTrace, DumpAndToString) {
  EventTrace trace;
  trace.set_enabled(true);
  trace.Record(TraceEvent{EventKind::kTrap, 10, 4, SegAddr{2, 7}, TrapCause::kGateViolation, 0,
                          "note"});
  const std::string dump = trace.Dump();
  EXPECT_NE(dump.find("gate_violation"), std::string::npos);
  EXPECT_NE(dump.find("2|7"), std::string::npos);
  EXPECT_NE(dump.find("note"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Counters, TrapCountingAndTotals) {
  Counters c;
  c.CountTrap(TrapCause::kGateViolation);
  c.CountTrap(TrapCause::kGateViolation);
  c.CountTrap(TrapCause::kHalt);
  EXPECT_EQ(c.TrapCount(TrapCause::kGateViolation), 2u);
  EXPECT_EQ(c.TrapCount(TrapCause::kHalt), 1u);
  EXPECT_EQ(c.TrapCount(TrapCause::kReadViolation), 0u);
  EXPECT_EQ(c.TotalTraps(), 3u);
}

TEST(Counters, TotalChecksSumsAllKinds) {
  Counters c;
  c.checks_fetch = 1;
  c.checks_read = 2;
  c.checks_write = 3;
  c.checks_indirect = 4;
  c.checks_transfer = 5;
  c.checks_call = 6;
  c.checks_return = 7;
  EXPECT_EQ(c.TotalChecks(), 28u);
}

TEST(Counters, SinceSubtractsEveryField) {
  Counters a;
  a.instructions = 10;
  a.page_walks = 4;
  a.CountTrap(TrapCause::kHalt);
  Counters b = a;
  b.instructions = 25;
  b.page_walks = 9;
  b.CountTrap(TrapCause::kHalt);
  b.CountTrap(TrapCause::kMissingPage);
  const Counters d = b.Since(a);
  EXPECT_EQ(d.instructions, 15u);
  EXPECT_EQ(d.page_walks, 5u);
  EXPECT_EQ(d.TrapCount(TrapCause::kHalt), 1u);
  EXPECT_EQ(d.TrapCount(TrapCause::kMissingPage), 1u);
}

TEST(Counters, ToStringMentionsNonzeroTraps) {
  Counters c;
  c.instructions = 5;
  c.CountTrap(TrapCause::kWriteViolation);
  const std::string text = c.ToString();
  EXPECT_NE(text.find("write_violation=1"), std::string::npos);
  EXPECT_EQ(text.find("read_violation"), std::string::npos);
}

TEST(TrapCauseNames, AllDistinctAndNamed) {
  for (unsigned i = 0; i < static_cast<unsigned>(TrapCause::kNumCauses); ++i) {
    const auto name = TrapCauseName(static_cast<TrapCause>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid") << i;
    for (unsigned j = i + 1; j < static_cast<unsigned>(TrapCause::kNumCauses); ++j) {
      EXPECT_NE(name, TrapCauseName(static_cast<TrapCause>(j)));
    }
  }
}

TEST(TrapCauseNames, AccessViolationClassification) {
  EXPECT_TRUE(IsAccessViolation(TrapCause::kReadViolation));
  EXPECT_TRUE(IsAccessViolation(TrapCause::kGateViolation));
  EXPECT_TRUE(IsAccessViolation(TrapCause::kPrivilegedViolation));
  EXPECT_FALSE(IsAccessViolation(TrapCause::kUpwardCall));
  EXPECT_FALSE(IsAccessViolation(TrapCause::kTimerRunout));
  EXPECT_FALSE(IsAccessViolation(TrapCause::kSupervisorService));
  EXPECT_FALSE(IsAccessViolation(TrapCause::kMissingPage));
}

}  // namespace
}  // namespace rings

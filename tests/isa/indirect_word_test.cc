#include "src/isa/indirect_word.h"

#include <gtest/gtest.h>

#include "src/base/xorshift.h"

namespace rings {
namespace {

TEST(IndirectWordCodec, RoundTrip) {
  const IndirectWord iw{5, true, 1234, 65535};
  EXPECT_EQ(DecodeIndirectWord(EncodeIndirectWord(iw)), iw);
}

TEST(IndirectWordCodec, ZeroWord) {
  const IndirectWord iw = DecodeIndirectWord(0);
  EXPECT_EQ(iw.ring, 0);
  EXPECT_FALSE(iw.indirect);
  EXPECT_EQ(iw.segno, 0u);
  EXPECT_EQ(iw.wordno, 0u);
}

TEST(IndirectWordCodec, MaximumFields) {
  const IndirectWord iw{kMaxRing, true, kMaxSegno, kMaxWordno};
  EXPECT_EQ(DecodeIndirectWord(EncodeIndirectWord(iw)), iw);
}

TEST(IndirectWordCodec, AllRings) {
  for (Ring r = 0; r < kRingCount; ++r) {
    const IndirectWord iw{r, false, 42, 7};
    EXPECT_EQ(DecodeIndirectWord(EncodeIndirectWord(iw)).ring, r);
  }
}

TEST(IndirectWordCodec, RandomizedRoundTrip) {
  Xorshift rng(8);
  for (int i = 0; i < 1000; ++i) {
    IndirectWord iw;
    iw.ring = static_cast<Ring>(rng.Below(kRingCount));
    iw.indirect = rng.Chance(1, 2);
    iw.segno = static_cast<Segno>(rng.Below(kMaxSegno + 1));
    iw.wordno = static_cast<Wordno>(rng.Below(kMaxWordno + 1));
    EXPECT_EQ(DecodeIndirectWord(EncodeIndirectWord(iw)), iw);
  }
}

TEST(IndirectWordCodec, FieldsDoNotOverlap) {
  // Changing one field leaves the others intact.
  IndirectWord iw{3, false, 100, 200};
  Word w = EncodeIndirectWord(iw);
  const IndirectWord base = DecodeIndirectWord(w);
  iw.ring = 7;
  w = EncodeIndirectWord(iw);
  const IndirectWord changed = DecodeIndirectWord(w);
  EXPECT_EQ(changed.segno, base.segno);
  EXPECT_EQ(changed.wordno, base.wordno);
  EXPECT_EQ(changed.indirect, base.indirect);
  EXPECT_NE(changed.ring, base.ring);
}

TEST(IndirectWordToString, Formats) {
  EXPECT_EQ((IndirectWord{4, false, 10, 20}).ToString(), "4|10|20");
  EXPECT_EQ((IndirectWord{4, true, 10, 20}).ToString(), "4|10|20,*");
}

}  // namespace
}  // namespace rings

#include "src/isa/instruction.h"

#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "src/core/ring.h"

namespace rings {
namespace {

TEST(InstructionCodec, RoundTripSimple) {
  const Instruction ins = MakeIns(Opcode::kLda, 42);
  Instruction decoded;
  ASSERT_TRUE(DecodeInstruction(EncodeInstruction(ins), &decoded));
  EXPECT_EQ(decoded, ins);
}

TEST(InstructionCodec, RoundTripAllFields) {
  Instruction ins;
  ins.opcode = Opcode::kEpp;
  ins.indirect = true;
  ins.pr_relative = true;
  ins.prnum = 5;
  ins.reg = 3;
  ins.tag = 7;
  ins.offset = -1234;
  Instruction decoded;
  ASSERT_TRUE(DecodeInstruction(EncodeInstruction(ins), &decoded));
  EXPECT_EQ(decoded, ins);
}

TEST(InstructionCodec, NegativeOffsetBoundaries) {
  for (const int32_t offset : {-131072, -1, 0, 1, 131071}) {
    const Instruction ins = MakeIns(Opcode::kSta, offset);
    Instruction decoded;
    ASSERT_TRUE(DecodeInstruction(EncodeInstruction(ins), &decoded));
    EXPECT_EQ(decoded.offset, offset);
  }
}

TEST(InstructionCodec, InvalidOpcodeRejected) {
  // Deposit an out-of-range opcode in the opcode field (bits 63..56).
  const Word bogus = uint64_t{200} << 56;
  Instruction decoded;
  EXPECT_FALSE(DecodeInstruction(bogus, &decoded));
}

TEST(InstructionCodec, AllOpcodesRoundTrip) {
  for (unsigned op = 0; op < static_cast<unsigned>(Opcode::kNumOpcodes); ++op) {
    const Instruction ins = MakeIns(static_cast<Opcode>(op), 7);
    Instruction decoded;
    ASSERT_TRUE(DecodeInstruction(EncodeInstruction(ins), &decoded));
    EXPECT_EQ(decoded.opcode, static_cast<Opcode>(op));
  }
}

TEST(InstructionCodec, RandomizedRoundTrip) {
  Xorshift rng(4);
  for (int i = 0; i < 1000; ++i) {
    Instruction ins;
    ins.opcode = static_cast<Opcode>(rng.Below(static_cast<uint64_t>(Opcode::kNumOpcodes)));
    ins.indirect = rng.Chance(1, 2);
    ins.pr_relative = rng.Chance(1, 2);
    ins.prnum = static_cast<uint8_t>(rng.Below(8));
    ins.reg = static_cast<uint8_t>(rng.Below(8));
    ins.tag = static_cast<uint8_t>(rng.Below(8));
    ins.offset = static_cast<int32_t>(static_cast<int64_t>(rng.Below(1 << 18)) - (1 << 17));
    Instruction decoded;
    ASSERT_TRUE(DecodeInstruction(EncodeInstruction(ins), &decoded));
    EXPECT_EQ(decoded, ins);
  }
}

TEST(OpcodeInfo, OperandKinds) {
  EXPECT_EQ(GetOpcodeInfo(Opcode::kLda).operand, OperandKind::kRead);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kSta).operand, OperandKind::kWrite);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kAos).operand, OperandKind::kReadWrite);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kEpp).operand, OperandKind::kEaOnly);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kTra).operand, OperandKind::kTransfer);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kCall).operand, OperandKind::kCall);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kRet).operand, OperandKind::kReturn);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kNop).operand, OperandKind::kNone);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kLdai).operand, OperandKind::kImmediate);
}

TEST(OpcodeInfo, PrivilegeLevels) {
  EXPECT_EQ(GetOpcodeInfo(Opcode::kLdbr).max_ring, 0);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kSio).max_ring, 0);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kHlt).max_ring, 0);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kRett).max_ring, 0);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kSvc).max_ring, 1);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kLda).max_ring, kMaxRing);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kCall).max_ring, kMaxRing);
  EXPECT_EQ(GetOpcodeInfo(Opcode::kMme).max_ring, kMaxRing);
}

TEST(OpcodeMnemonics, LookupBothWays) {
  EXPECT_EQ(OpcodeFromMnemonic("lda"), Opcode::kLda);
  EXPECT_EQ(OpcodeFromMnemonic("LDA"), Opcode::kLda);
  EXPECT_EQ(OpcodeFromMnemonic("call"), Opcode::kCall);
  EXPECT_EQ(OpcodeFromMnemonic("bogus"), std::nullopt);
  for (unsigned op = 0; op < static_cast<unsigned>(Opcode::kNumOpcodes); ++op) {
    const auto& info = GetOpcodeInfo(static_cast<Opcode>(op));
    EXPECT_EQ(OpcodeFromMnemonic(info.mnemonic), static_cast<Opcode>(op)) << info.mnemonic;
  }
}

TEST(ToString, Readable) {
  EXPECT_EQ(MakeIns(Opcode::kLda, 5).ToString(), "lda 5");
  Instruction ins = MakeInsPr(Opcode::kLda, 3, 2, true);
  EXPECT_EQ(ins.ToString(), "lda pr3|2,*");
  ins = MakeInsReg(Opcode::kLdx, 2, 7);
  ins.tag = 1;
  EXPECT_EQ(ins.ToString(), "ldx x2, 7,x1");
  EXPECT_EQ(MakeInsPrReg(Opcode::kEpp, 1, 3, 4).ToString(), "epp pr3, pr1|4");
}

}  // namespace
}  // namespace rings

// The software-rings baseline: a Honeywell-645-style machine.
//
// "The 645 processor provides only a limited set of access control
// mechanisms, forcing software intervention to implement protection rings.
// ... An initial software implementation of rings using multiple
// descriptor segments was worked out by Graham and R.C. Daley." — and
// that is what this module builds:
//
//   * The processor runs in ProtectionMode::kFlags645: SDWs carry only
//     R/W/E flags (ring fields ignored, no effective-ring tracking), and
//     the CALL/RETURN ring-crossing instructions do not exist.
//   * Each process has ONE DESCRIPTOR SEGMENT PER RING; the ring brackets
//     of every segment are compiled down into per-ring access flags.
//   * Every ring crossing is a trap: guest code executes MME with a
//     packed target; the gatekeeper (ring-0 software) validates the gate
//     against its software ring tables, validates every argument in
//     software, pushes a crossing record, swaps the DBR to the target
//     ring's descriptor segment, and resumes. Returns trap again.
//
// The ring-crossing *semantics* (which calls are legal, which ring is
// entered) are computed with the same core functions as the hardware
// (ResolveCall), so the two systems allow/deny identically — only the cost
// differs. That differential is experiment C3.
#ifndef SRC_B645_B645_MACHINE_H_
#define SRC_B645_B645_MACHINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/kasm/assembler.h"
#include "src/mem/physical_memory.h"
#include "src/sup/abi.h"
#include "src/sup/segment_registry.h"
#include "src/sys/machine.h"

namespace rings {

// MME service codes used by guest code on the 645-style machine.
enum B645Mme : int64_t {
  kMmeExit = 0,       // terminate; exit code in A
  kMmeCrossCall = 1,  // Q = (segno << 18) | wordno; PR1 = argument list
  kMmeCrossReturn = 2,
  kMmeGetRing = 3,    // A <- current ring (gatekeeper's notion)
};

inline constexpr Word PackB645Target(Segno segno, Wordno wordno) {
  return (static_cast<Word>(segno) << kWordnoBits) | wordno;
}

class B645Machine {
 public:
  explicit B645Machine(MachineConfig config = MachineConfig{});

  bool ok() const { return ok_; }

  // Loads an assembled program. `ring_specs` gives each segment's intended
  // flags/brackets/gates — these populate the gatekeeper's software ring
  // tables and are compiled into the eight descriptor segments.
  bool LoadProgram(const Program& program, const std::map<std::string, SegmentAccess>& ring_specs,
                   std::string* error = nullptr);
  bool LoadProgramSource(std::string_view source,
                         const std::map<std::string, SegmentAccess>& ring_specs,
                         std::string* error = nullptr);

  // Adds/overrides the ring spec for a segment registered outside
  // LoadProgram (e.g. directly through the registry). Must be called
  // before Start.
  bool SetRingSpec(const std::string& name, const SegmentAccess& spec);

  // Creates the (single) user process: eight descriptor segments compiled
  // from the ring tables, eight stack segments, execution starting at
  // `entry` in `segname`, ring `ring`.
  bool Start(const std::string& segname, const std::string& entry, Ring ring);

  RunResult Run(uint64_t max_cycles = 100'000'000);

  // Outcome.
  bool exited() const { return exited_; }
  int64_t exit_code() const { return exit_code_; }
  TrapCause kill_cause() const { return kill_cause_; }
  Ring current_ring() const { return current_ring_; }

  Cpu& cpu() { return cpu_; }
  SegmentRegistry& registry() { return registry_; }

  // Test/bench setup helpers: direct word access to a registered segment
  // (used to patch packed crossing targets whose segment numbers are only
  // known after loading).
  bool PokeWordForTest(const std::string& name, Wordno wordno, Word value);
  std::optional<Word> PeekWordForTest(const std::string& name, Wordno wordno) const;

  // Gatekeeper statistics.
  uint64_t crossings() const { return crossings_; }
  uint64_t args_validated() const { return args_validated_; }
  uint64_t gatekeeper_steps() const { return gatekeeper_steps_; }

 private:
  struct CrossRecord {
    Ring caller_ring = 0;
    Ipr return_point{};
    PointerRegister saved_sp{};
  };

  void Charge(uint64_t steps);
  void BuildDescriptorSegments();
  // Returns false if the process was killed.
  bool HandleMme(const TrapState& trap);
  bool HandleCrossCall(const TrapState& trap);
  bool HandleCrossReturn(const TrapState& trap);
  void Kill(TrapCause cause);

  const SegmentAccess* RingSpec(Segno segno) const;

  MachineConfig config_;
  PhysicalMemory memory_;
  Cpu cpu_;
  SegmentRegistry registry_;
  bool ok_ = false;

  // Software ring tables: segno -> intended access spec.
  std::map<Segno, SegmentAccess> ring_table_;

  // Per-ring descriptor segments of the single process.
  std::vector<DbrValue> ring_dbrs_;

  Ring current_ring_ = kUserRing;
  std::vector<CrossRecord> cross_stack_;

  bool started_ = false;
  bool exited_ = false;
  bool killed_ = false;
  int64_t exit_code_ = 0;
  TrapCause kill_cause_ = TrapCause::kNone;

  uint64_t crossings_ = 0;
  uint64_t args_validated_ = 0;
  uint64_t gatekeeper_steps_ = 0;
};

}  // namespace rings

#endif  // SRC_B645_B645_MACHINE_H_

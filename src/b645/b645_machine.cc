#include "src/b645/b645_machine.h"

#include "src/core/transfer.h"
#include "src/isa/indirect_word.h"

namespace rings {

namespace {

// Gatekeeper cost constants, in supervisor steps. These model the fixed
// software path of a 645-style ring crossing: decoding the request,
// searching the gate table, building/swapping the addressing environment.
constexpr uint64_t kStepsCrossFixed = 30;
constexpr uint64_t kStepsPerArgument = 8;
constexpr uint64_t kStepsReturnFixed = 20;

constexpr uint32_t kMaxArgs = 16;

}  // namespace

B645Machine::B645Machine(MachineConfig config)
    : config_(config), memory_(config.memory_words), cpu_(&memory_, config.cycle_model),
      registry_(&memory_) {
  cpu_.set_mode(ProtectionMode::kFlags645);
  cpu_.set_fast_path_enabled(config.fast_path);
  cpu_.set_block_engine_enabled(config.block_engine);
  ok_ = true;
}

void B645Machine::Charge(uint64_t steps) {
  cpu_.ChargeCycles(steps * cpu_.cycle_model().supervisor_step);
  cpu_.counters().supervisor_steps += steps;
  gatekeeper_steps_ += steps;
}

bool B645Machine::LoadProgram(const Program& program,
                              const std::map<std::string, SegmentAccess>& ring_specs,
                              std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  // The registry wants ACLs; the 645 system has a single user.
  std::map<std::string, AccessControlList> acls;
  for (const AssembledSegment& seg : program.segments) {
    const auto spec = ring_specs.find(seg.name);
    if (spec == ring_specs.end()) {
      *err = "no ring spec supplied for segment " + seg.name;
      return false;
    }
    acls[seg.name] = AccessControlList::Public(spec->second);
  }
  if (!registry_.LoadProgram(program, acls, err)) {
    cpu_.FlushInsnCache();
    cpu_.FlushTlb();
    return false;
  }
  cpu_.FlushInsnCache();
  cpu_.FlushTlb();
  for (const AssembledSegment& seg : program.segments) {
    const RegisteredSegment* reg = registry_.Find(seg.name);
    SegmentAccess access = ring_specs.at(seg.name);
    access.gate_count = reg->gate_count;
    ring_table_[reg->segno] = access;
  }
  return true;
}

bool B645Machine::LoadProgramSource(std::string_view source,
                                    const std::map<std::string, SegmentAccess>& ring_specs,
                                    std::string* error) {
  const AssembleResult result = Assemble(source);
  if (!result.ok) {
    if (error != nullptr) {
      *error = result.error.ToString();
    }
    return false;
  }
  return LoadProgram(result.program, ring_specs, error);
}

bool B645Machine::PokeWordForTest(const std::string& name, Wordno wordno, Word value) {
  const RegisteredSegment* seg = registry_.Find(name);
  if (seg == nullptr || wordno >= seg->bound) {
    return false;
  }
  memory_.Write(seg->base + wordno, value);
  cpu_.FlushInsnCache();
  cpu_.FlushTlb();
  return true;
}

std::optional<Word> B645Machine::PeekWordForTest(const std::string& name, Wordno wordno) const {
  const RegisteredSegment* seg = registry_.Find(name);
  if (seg == nullptr || wordno >= seg->bound) {
    return std::nullopt;
  }
  return memory_.Read(seg->base + wordno);
}

bool B645Machine::SetRingSpec(const std::string& name, const SegmentAccess& spec) {
  const RegisteredSegment* seg = registry_.Find(name);
  if (seg == nullptr) {
    return false;
  }
  SegmentAccess access = spec;
  access.gate_count = seg->gate_count;
  ring_table_[seg->segno] = access;
  return true;
}

const SegmentAccess* B645Machine::RingSpec(Segno segno) const {
  const auto it = ring_table_.find(segno);
  return it == ring_table_.end() ? nullptr : &it->second;
}

// Compiles the ring brackets of every registered segment into eight
// descriptor segments, one per ring: ring k's descriptor segment holds,
// for each segment, only the flags that ring k's bracket membership
// permits. This is exactly the "multiple descriptor segments" software
// implementation of rings.
void B645Machine::BuildDescriptorSegments() {
  ring_dbrs_.clear();
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    auto dseg = DescriptorSegment::Create(&memory_, kDescriptorSegmentSlots, kStackBaseSegno);
    ring_dbrs_.push_back(dseg->dbr());
  }

  // Per-ring stack segments at segment numbers 0..7 (same layout as the
  // ring-hardware machine, so workloads can share conventions). Stack j is
  // accessible to rings k <= j.
  std::vector<AbsAddr> stack_bases;
  for (Ring j = 0; j < kRingCount; ++j) {
    const auto base = memory_.Allocate(kStackSegmentWords);
    stack_bases.push_back(*base);
    memory_.Write(*base + kStackNextFreeWord, kStackFrameStart);
  }

  for (Ring k = 0; k < kRingCount; ++k) {
    DescriptorSegment dseg(&memory_, ring_dbrs_[k]);
    for (Ring j = 0; j < kRingCount; ++j) {
      Sdw sdw;
      sdw.present = k <= j;  // stack j inaccessible above ring j
      sdw.base = stack_bases[j];
      sdw.bound = kStackSegmentWords;
      sdw.access.flags = {.read = k <= j, .write = k <= j, .execute = false};
      sdw.access.brackets = Brackets{0, kMaxRing, kMaxRing};  // ignored in 645 mode
      dseg.Store(kStackBaseSegno + j, sdw);
    }
    for (const auto& [segno, spec] : ring_table_) {
      const RegisteredSegment* reg = registry_.FindBySegno(segno);
      Sdw sdw;
      sdw.base = reg->base;
      sdw.bound = reg->bound;
      sdw.access.flags.read = spec.flags.read && spec.brackets.InReadBracket(k);
      sdw.access.flags.write = spec.flags.write && spec.brackets.InWriteBracket(k);
      sdw.access.flags.execute = spec.flags.execute && spec.brackets.InExecuteBracket(k);
      sdw.access.brackets = Brackets{0, kMaxRing, kMaxRing};
      sdw.access.gate_count = reg->gate_count;
      sdw.present = sdw.access.flags.read || sdw.access.flags.write || sdw.access.flags.execute;
      dseg.Store(segno, sdw);
    }
  }
}

bool B645Machine::Start(const std::string& segname, const std::string& entry, Ring ring) {
  BuildDescriptorSegments();
  const auto addr = registry_.Resolve(segname, entry);
  if (!addr.has_value()) {
    return false;
  }
  current_ring_ = ring;
  RegisterFile regs;
  regs.dbr = ring_dbrs_[ring];
  regs.ipr = Ipr{ring, addr->segno, addr->wordno};
  for (PointerRegister& pr : regs.pr) {
    pr = PointerRegister{0, 0, 0};
  }
  regs.pr[kPrStackBase] = PointerRegister{0, kStackBaseSegno + ring, 0};
  regs.pr[kPrStack] = PointerRegister{0, kStackBaseSegno + ring, kStackFrameStart};
  cpu_.Rett(regs);
  started_ = true;
  return true;
}

void B645Machine::Kill(TrapCause cause) {
  killed_ = true;
  kill_cause_ = cause;
}

bool B645Machine::HandleCrossCall(const TrapState& trap) {
  ++crossings_;
  Charge(kStepsCrossFixed);

  const Segno target_segno =
      static_cast<Segno>((trap.regs.q >> kWordnoBits) & kMaxSegno);
  const Wordno target_wordno = static_cast<Wordno>(trap.regs.q & kMaxWordno);

  const SegmentAccess* spec = RingSpec(target_segno);
  if (spec == nullptr) {
    Kill(TrapCause::kMissingSegment);
    return false;
  }

  // The same legality rules as the ring hardware, evaluated in software
  // against the gatekeeper's ring tables.
  const TransferOutcome outcome =
      ResolveCall(*spec, current_ring_, current_ring_, target_wordno, /*same_segment=*/false);
  Ring new_ring;
  if (outcome.ok()) {
    new_ring = outcome.new_ring;
  } else if (outcome.cause == TrapCause::kUpwardCall) {
    new_ring = spec->brackets.r1;
  } else {
    Kill(outcome.cause);
    return false;
  }

  // Software argument validation: the gatekeeper must examine every
  // argument pointer and confirm the *callee* ring may reference it (and
  // that the caller supplied a plausible list at all) — work the ring
  // hardware performs implicitly via effective-ring validation.
  const PointerRegister ap = trap.regs.pr[kPrArgs];
  uint64_t arg_count = 0;
  if (!(ap.segno == 0 && ap.wordno == 0)) {
    Word count_word = 0;
    if (cpu_.SupervisorRead(ap.segno, ap.wordno, 0, &count_word) != TrapCause::kNone ||
        count_word > kMaxArgs) {
      Kill(TrapCause::kReadViolation);
      return false;
    }
    arg_count = count_word;
    for (uint64_t i = 0; i < arg_count; ++i) {
      Word ptr_word = 0;
      if (cpu_.SupervisorRead(ap.segno, ap.wordno + 1 + i, 0, &ptr_word) != TrapCause::kNone) {
        Kill(TrapCause::kReadViolation);
        return false;
      }
      const IndirectWord iw = DecodeIndirectWord(ptr_word);
      const SegmentAccess* arg_spec = RingSpec(iw.segno);
      const bool is_stack = iw.segno < kStackBaseSegno + kRingCount;
      if (!is_stack) {
        if (arg_spec == nullptr) {
          Kill(TrapCause::kMissingSegment);
          return false;
        }
        // Validate against the *caller's* capabilities so the callee
        // cannot be tricked into touching what the caller could not.
        if (!CheckRead(*arg_spec, current_ring_).ok()) {
          Kill(TrapCause::kReadViolation);
          return false;
        }
      }
      ++args_validated_;
      Charge(kStepsPerArgument);
    }
  }

  // Record the crossing for the validated return path.
  CrossRecord record;
  record.caller_ring = current_ring_;
  record.return_point = trap.regs.ipr;  // already addresses the next instruction
  record.saved_sp = trap.regs.pr[kPrStack];
  cross_stack_.push_back(record);

  // Swap the addressing environment: the new ring's descriptor segment.
  RegisterFile regs = trap.regs;
  regs.dbr = ring_dbrs_[new_ring];
  regs.ipr = Ipr{new_ring, target_segno, target_wordno};
  regs.pr[kPrStackBase] = PointerRegister{0, kStackBaseSegno + new_ring, 0};
  current_ring_ = new_ring;
  cpu_.Rett(regs);
  return true;
}

bool B645Machine::HandleCrossReturn(const TrapState& trap) {
  Charge(kStepsReturnFixed);
  if (cross_stack_.empty()) {
    Kill(TrapCause::kDownwardReturn);
    return false;
  }
  const CrossRecord record = cross_stack_.back();
  // Verify the restored stack pointer, as the paper requires of the
  // intervening software.
  if (!(trap.regs.pr[kPrStack] == record.saved_sp)) {
    Kill(TrapCause::kDownwardReturn);
    return false;
  }
  cross_stack_.pop_back();

  RegisterFile regs = trap.regs;
  regs.dbr = ring_dbrs_[record.caller_ring];
  regs.ipr = record.return_point;
  regs.pr[kPrStackBase] = PointerRegister{0, kStackBaseSegno + record.caller_ring, 0};
  current_ring_ = record.caller_ring;
  cpu_.Rett(regs);
  return true;
}

bool B645Machine::HandleMme(const TrapState& trap) {
  switch (trap.code) {
    case kMmeExit:
      exited_ = true;
      exit_code_ = static_cast<int64_t>(trap.regs.a);
      return false;
    case kMmeCrossCall:
      return HandleCrossCall(trap);
    case kMmeCrossReturn:
      return HandleCrossReturn(trap);
    case kMmeGetRing: {
      RegisterFile regs = trap.regs;
      regs.a = current_ring_;
      cpu_.Rett(regs);
      return true;
    }
    default:
      Kill(TrapCause::kMasterModeEntry);
      return false;
  }
}

RunResult B645Machine::Run(uint64_t max_cycles) {
  RunResult result;
  const uint64_t start_cycles = cpu_.cycles();
  const uint64_t start_instructions = cpu_.counters().instructions;

  while (started_ && !exited_ && !killed_ && cpu_.cycles() - start_cycles < max_cycles) {
    if (cpu_.trap_pending()) {
      const TrapState trap = cpu_.TakeTrap();
      Charge(2);
      if (trap.cause == TrapCause::kMasterModeEntry) {
        if (!HandleMme(trap)) {
          break;
        }
        continue;
      }
      Kill(trap.cause);
      break;
    }
    cpu_.StepBlock(start_cycles + max_cycles);
  }

  result.idle = exited_ || killed_;
  result.cycles = cpu_.cycles() - start_cycles;
  result.instructions = cpu_.counters().instructions - start_instructions;
  return result;
}

}  // namespace rings

#include "src/fault/fault_injector.h"

#include "src/base/strings.h"

namespace rings {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSdwCorruption:
      return "sdw_corruption";
    case FaultSite::kSdwCacheDrop:
      return "sdw_cache_drop";
    case FaultSite::kIndirectRingCorruption:
      return "indirect_ring_corruption";
    case FaultSite::kSpuriousMissingPage:
      return "spurious_missing_page";
    case FaultSite::kIoDelay:
      return "io_delay";
    case FaultSite::kSnapshotWrite:
      return "snapshot_write";
    case FaultSite::kSnapshotRead:
      return "snapshot_read";
    case FaultSite::kNumSites:
      break;
  }
  return "invalid";
}

std::string FaultEvent::ToString() const {
  return StrFormat("#%llu cycle=%llu %s at %u|%u: %s",
                   static_cast<unsigned long long>(sequence),
                   static_cast<unsigned long long>(cycle),
                   std::string(FaultSiteName(site)).c_str(), segno, wordno, detail.c_str());
}

// Salt for the snapshot-site stream ("SNAPSHOT" in ASCII): derived from
// the same seed for reproducibility, but decoupled from the architectural
// stream so checkpoint writes never advance the guest-visible sequence.
constexpr uint64_t kSnapshotStreamSalt = 0x534E415053484F54ull;

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed), snapshot_rng_(config.seed ^ kSnapshotStreamSalt) {}

bool FaultInjector::Roll(FaultSite site) {
  const uint32_t ppm = config_.rate(site);
  if (!config_.enabled || ppm == 0) {
    return false;
  }
  return rng_.Chance(ppm, 1'000'000);
}

void FaultInjector::Record(FaultSite site, uint64_t cycle, Segno segno, Wordno wordno,
                           std::string detail) {
  ++counts_[static_cast<size_t>(site)];
  if (events_.size() < kMaxLoggedEvents) {
    events_.push_back(FaultEvent{sequence_, site, cycle, segno, wordno, std::move(detail)});
  }
  ++sequence_;
}

bool FaultInjector::MaybeCorruptSdw(uint64_t cycle, Segno segno, Sdw* sdw) {
  if (!Roll(FaultSite::kSdwCorruption)) {
    return false;
  }
  // Restriction-only damage (see the header's fault model): the corrupted
  // descriptor can deny access it should grant, never grant access it
  // should deny.
  std::string detail;
  switch (rng_.Below(4)) {
    case 0:
      sdw->present = false;
      detail = "present bit cleared";
      break;
    case 1:
      sdw->access.flags = AccessFlags{};
      detail = "access flags cleared";
      break;
    case 2: {
      // Collapse R2 and R3 down onto R1. Lowering the tops shrinks the
      // read/execute brackets and empties the gate extension; lowering R1
      // itself would move the execute-bracket floor down and GRANT
      // execute access to lower rings, so R1 stays put.
      const Ring r1 = sdw->access.brackets.r1;
      sdw->access.brackets = Brackets{r1, r1, r1};
      detail = StrFormat("brackets collapsed to (%u,%u,%u)", r1, r1, r1);
      break;
    }
    default:
      sdw->bound /= 2;
      detail = StrFormat("bound halved to %llu", static_cast<unsigned long long>(sdw->bound));
      break;
  }
  Record(FaultSite::kSdwCorruption, cycle, segno, 0, std::move(detail));
  return true;
}

bool FaultInjector::MaybeDropCacheEntry(uint64_t cycle, size_t cache_entries,
                                        size_t* entry_index) {
  if (cache_entries == 0 || !Roll(FaultSite::kSdwCacheDrop)) {
    return false;
  }
  *entry_index = rng_.Below(cache_entries);
  Record(FaultSite::kSdwCacheDrop, cycle, 0, 0,
         StrFormat("cache entry %zu invalidated", *entry_index));
  return true;
}

bool FaultInjector::MaybeCorruptIndirectRing(uint64_t cycle, Segno segno, Wordno wordno,
                                             IndirectWord* iw) {
  if (iw->ring >= kMaxRing || !Roll(FaultSite::kIndirectRingCorruption)) {
    return false;
  }
  // Raise only: a raised ring field tightens validation (possibly causing a
  // spurious, attributable access violation); lowering it would grant.
  const Ring corrupted =
      static_cast<Ring>(rng_.Between(iw->ring + 1, kMaxRing));
  Record(FaultSite::kIndirectRingCorruption, cycle, segno, wordno,
         StrFormat("ring field %u -> %u", iw->ring, corrupted));
  iw->ring = corrupted;
  return true;
}

bool FaultInjector::MaybeSpuriousMissingPage(uint64_t cycle, Segno segno, Wordno wordno) {
  if (!Roll(FaultSite::kSpuriousMissingPage)) {
    return false;
  }
  Record(FaultSite::kSpuriousMissingPage, cycle, segno, wordno, "spurious missing-page trap");
  return true;
}

uint64_t FaultInjector::MaybeIoDelay(uint64_t cycle) {
  if (!Roll(FaultSite::kIoDelay)) {
    return 0;
  }
  const uint64_t delay = rng_.Between(1, 10'000);
  Record(FaultSite::kIoDelay, cycle, 0, 0,
         StrFormat("completion delayed %llu cycles", static_cast<unsigned long long>(delay)));
  return delay;
}

bool FaultInjector::MaybeCorruptSnapshotByte(FaultSite site, uint64_t cycle, size_t image_bytes,
                                             size_t* byte_index, uint8_t* xor_mask) {
  const uint32_t ppm = config_.rate(site);
  if (image_bytes == 0 || !config_.enabled || ppm == 0 ||
      !snapshot_rng_.Chance(ppm, 1'000'000)) {
    return false;
  }
  *byte_index = snapshot_rng_.Below(image_bytes);
  // A single-bit flip is the classic storage fault; the mask is always
  // nonzero so every injection actually damages the image.
  *xor_mask = static_cast<uint8_t>(1u << snapshot_rng_.Below(8));
  Record(site, cycle, 0, 0,
         StrFormat("image byte %zu xor 0x%02x", *byte_index, unsigned(*xor_mask)));
  return true;
}

bool FaultInjector::MaybeCorruptSnapshotWrite(uint64_t cycle, size_t image_bytes,
                                              size_t* byte_index, uint8_t* xor_mask) {
  return MaybeCorruptSnapshotByte(FaultSite::kSnapshotWrite, cycle, image_bytes, byte_index,
                                  xor_mask);
}

bool FaultInjector::MaybeCorruptSnapshotRead(uint64_t cycle, size_t image_bytes,
                                             size_t* byte_index, uint8_t* xor_mask) {
  return MaybeCorruptSnapshotByte(FaultSite::kSnapshotRead, cycle, image_bytes, byte_index,
                                  xor_mask);
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const uint64_t count : counts_) {
    total += count;
  }
  return total;
}

std::string FaultInjector::Summary() const {
  std::string out = StrFormat("faults injected: %llu",
                              static_cast<unsigned long long>(total_injected()));
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    out += StrFormat(" %s=%llu",
                     std::string(FaultSiteName(static_cast<FaultSite>(i))).c_str(),
                     static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

}  // namespace rings

// Deterministic hardware-fault injection. The paper's third acceptance
// criterion for a protection mechanism is "confidence that no way exists to
// circumvent it"; this module supplies the adversarial half of that
// confidence by letting tests and long-running simulations subject the
// supervisor to the faults real hardware produces: corrupted descriptor
// words, dropped descriptor-cache entries, flaky ring fields in indirect
// words, spurious missing-page traps, and late I/O completions.
//
// Fault model (see DESIGN.md, "Fault model & recovery"): the injector
// simulates *detected* faults — the kind parity-checked hardware converts
// into traps or into more-restrictive state. Corruption is therefore
// restriction-only (a bracket never widens, a flag never turns on, a ring
// field never drops). A fault that silently *granted* access would be a
// corrupted protection TCB, which no software above it can defend against;
// that failure class is explicitly out of scope.
//
// Everything is driven by the seedable Xorshift generator, so a run is
// exactly reproducible from (seed, rates); the bounded event log makes each
// injected fault attributable after the fact.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/xorshift.h"
#include "src/isa/indirect_word.h"
#include "src/mem/sdw.h"
#include "src/mem/word.h"

namespace rings {

// The instrumented sites. Each site is rolled independently at every
// opportunity (an SDW fetch, an instruction boundary, ...).
enum class FaultSite {
  kSdwCorruption = 0,      // restrictive bit damage to an SDW at fetch time
  kSdwCacheDrop,           // a descriptor-cache entry silently invalidated
  kIndirectRingCorruption, // ring field of an indirect word raised
  kSpuriousMissingPage,    // missing-page trap with nothing actually wrong
  kIoDelay,                // extra latency on an I/O completion
  kSnapshotWrite,          // a snapshot image byte damaged on its way to stable storage
  kSnapshotRead,           // a snapshot image byte damaged on its way back
  kNumSites,
};

inline constexpr size_t kNumFaultSites = static_cast<size_t>(FaultSite::kNumSites);

std::string_view FaultSiteName(FaultSite site);

struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 1;
  // Per-site injection probability in parts per million per opportunity.
  std::array<uint32_t, kNumFaultSites> rate_ppm{};

  // Convenience: every site at the same rate.
  static FaultConfig Uniform(uint64_t seed, uint32_t ppm) {
    FaultConfig config;
    config.enabled = ppm > 0;
    config.seed = seed;
    config.rate_ppm.fill(ppm);
    return config;
  }

  uint32_t rate(FaultSite site) const { return rate_ppm[static_cast<size_t>(site)]; }
  void set_rate(FaultSite site, uint32_t ppm) {
    rate_ppm[static_cast<size_t>(site)] = ppm;
    if (ppm > 0) {
      enabled = true;
    }
  }
};

// One injected fault, for the replayable log.
struct FaultEvent {
  uint64_t sequence = 0;  // 0-based injection order (stable across replays)
  FaultSite site = FaultSite::kSdwCorruption;
  uint64_t cycle = 0;
  Segno segno = 0;
  Wordno wordno = 0;
  std::string detail;

  std::string ToString() const;
};

class FaultInjector {
 public:
  // Retained log entries; injections past the cap are counted but not
  // logged, so unattended soaks stay bounded in memory.
  static constexpr size_t kMaxLoggedEvents = 4096;

  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  // --- hooks, called from the instrumented sites -------------------------
  // Each returns whether a fault was injected (and records it if so).

  // Damages `sdw` in a restriction-only way (clear present, clear flags,
  // collapse R2/R3 down onto R1, or halve the bound).
  bool MaybeCorruptSdw(uint64_t cycle, Segno segno, Sdw* sdw);

  // A descriptor-cache entry to invalidate this instruction, or nullopt.
  // The caller maps the returned value onto its cache geometry.
  bool MaybeDropCacheEntry(uint64_t cycle, size_t cache_entries, size_t* entry_index);

  // Raises the ring field of an indirect word (never lowers it).
  bool MaybeCorruptIndirectRing(uint64_t cycle, Segno segno, Wordno wordno, IndirectWord* iw);

  // Whether to raise a spurious missing-page trap at this instruction.
  bool MaybeSpuriousMissingPage(uint64_t cycle, Segno segno, Wordno wordno);

  // Extra cycles to add to an I/O completion (0 = no fault).
  uint64_t MaybeIoDelay(uint64_t cycle);

  // Snapshot-path faults: a byte of an image damaged on its way to stable
  // storage (kSnapshotWrite) or back (kSnapshotRead). On injection fills
  // the byte index and a nonzero XOR mask; the snapshot layer applies the
  // damage and its CRCs detect it (tests pin the structured rejection).
  // These sites draw from a dedicated stream, never the architectural
  // one: checkpointing frequency must not perturb the guest-visible fault
  // sequence (crash-consistent checkpointing is observation-free).
  bool MaybeCorruptSnapshotWrite(uint64_t cycle, size_t image_bytes, size_t* byte_index,
                                 uint8_t* xor_mask);
  bool MaybeCorruptSnapshotRead(uint64_t cycle, size_t image_bytes, size_t* byte_index,
                                uint8_t* xor_mask);

  // --- accounting --------------------------------------------------------

  const std::vector<FaultEvent>& events() const { return events_; }
  uint64_t injected(FaultSite site) const {
    return counts_[static_cast<size_t>(site)];
  }
  uint64_t total_injected() const;
  std::string Summary() const;

  // --- snapshot support (src/snapshot) -----------------------------------
  // The injector's stream is machine state: a restored machine must draw
  // the exact fault sequence the live one would have drawn.
  const Xorshift& rng() const { return rng_; }
  const Xorshift& snapshot_rng() const { return snapshot_rng_; }
  uint64_t sequence() const { return sequence_; }
  const std::array<uint64_t, kNumFaultSites>& counts() const { return counts_; }
  void RestoreStream(uint64_t rng_state0, uint64_t rng_state1, uint64_t snapshot_state0,
                     uint64_t snapshot_state1,
                     const std::array<uint64_t, kNumFaultSites>& counts, uint64_t sequence,
                     std::vector<FaultEvent> events) {
    rng_.set_state(rng_state0, rng_state1);
    snapshot_rng_.set_state(snapshot_state0, snapshot_state1);
    counts_ = counts;
    sequence_ = sequence;
    events_ = std::move(events);
  }

  // Fleet self-healing: a machine restarted from a checkpoint would
  // otherwise replay the exact injected fault that killed it. Disarming
  // models the transient hardware fault having been repaired; recovery
  // stays deterministic because the decision depends only on the
  // machine's own trajectory.
  void Disarm() { config_.enabled = false; }

 private:
  bool Roll(FaultSite site);
  bool MaybeCorruptSnapshotByte(FaultSite site, uint64_t cycle, size_t image_bytes,
                                size_t* byte_index, uint8_t* xor_mask);
  void Record(FaultSite site, uint64_t cycle, Segno segno, Wordno wordno, std::string detail);

  FaultConfig config_;
  Xorshift rng_;            // architectural sites: guest-visible stream
  Xorshift snapshot_rng_;   // kSnapshotWrite/kSnapshotRead only
  std::vector<FaultEvent> events_;
  std::array<uint64_t, kNumFaultSites> counts_{};
  uint64_t sequence_ = 0;
};

}  // namespace rings

#endif  // SRC_FAULT_FAULT_INJECTOR_H_

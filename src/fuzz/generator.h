// Seeded random guest-program generator for the differential fuzzer.
//
// GenerateGuest(seed) produces a complete, self-contained ringsim guest
// source file — `;;` manifest lines plus assembly — that is guaranteed to
// assemble and to terminate within a modest cycle budget (every loop is
// counted, every call returns, every trap either resumes or kills the
// process deterministically). The same seed always yields byte-identical
// source, so a seed alone is a full repro.
//
// The instruction mix is deliberately weighted toward the regions where
// the three engines (per-instruction slow path, fast path, superblock
// engine) and the fleet/snapshot machinery have historically been most at
// risk of diverging:
//   - CALL/RETURN gate crossings, including calls executed inside counted
//     loops (the only place the block engine re-executes a decoded CALL);
//   - indirect-word chains through planted .its words, including chains
//     that deepen inside data segments;
//   - stores into an executable segment (self-modifying code, the block
//     and insn cache store-invalidation site);
//   - demand-paged segments whose pages fault in mid-run;
//   - access-violation probes that kill a process mid-program;
//   - loop counts sized to straddle scheduling-quantum boundaries, and
//     occasionally a second process multiplexed on the same machine;
//   - tty output through the supervisor gate (I/O completions in flight).
#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <cstdint>
#include <string>

namespace rings {

struct GeneratorConfig {
  // Number of top-level program steps in the main process body.
  int min_steps = 6;
  int max_steps = 18;
  // A budget every generated program must terminate well within (the
  // harness and tests run with this; generated loops are sized to use a
  // few percent of it at most).
  uint64_t max_cycles = 2'000'000;
};

struct GeneratedGuest {
  uint64_t seed = 0;
  std::string source;  // manifest + assembly, ringsim-runnable as-is
};

GeneratedGuest GenerateGuest(uint64_t seed, const GeneratorConfig& config = GeneratorConfig{});

}  // namespace rings

#endif  // SRC_FUZZ_GENERATOR_H_

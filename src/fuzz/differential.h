// The differential oracle: run one guest program under every execution
// configuration the simulator promises is bit-identical — the
// per-instruction slow path, the host fast path, the superblock engine,
// the fleet engine at several thread counts, and a snapshot/restore cut
// mid-run — and compare the runs field by field (cycles, instructions,
// architectural counters, trap/ring-switch sequence, process outcomes,
// tty output, and the FNV-1a fingerprint that folds them all together).
// Any disagreement is a Divergence naming the leg and the first
// differing field.
#ifndef SRC_FUZZ_DIFFERENTIAL_H_
#define SRC_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sys/machine.h"
#include "src/sys/manifest.h"

namespace rings {

struct FuzzOptions {
  // Cycle budget every leg runs under. Generated guests terminate well
  // within this; a guest that does not is reported as an error, not a
  // divergence.
  uint64_t max_cycles = 2'000'000;
  // Fleet legs to run (one single-machine fleet per thread count). The
  // fleet must agree with the standalone reference at every count.
  std::vector<int> fleet_threads = {1, 4, 8};
  bool check_fleet = true;
  // Spawn the fleet legs' machines the way the serving daemon does: by
  // copy-on-write clone from a sealed golden image rather than a cold
  // build, so every fuzz trial also pins clone-vs-cold bit identity.
  bool fleet_clone = true;
  // Snapshot leg: run the block-engine machine to roughly half the
  // reference run, snapshot, restore into a bare machine, finish there.
  bool check_snapshot = true;
  // Deliberately sabotage the superblock engine on every non-reference
  // leg (MachineConfig::block_call_ablation) so tests can prove the
  // oracle and shrinker actually catch a broken engine.
  bool ablate_block_call = false;
  // Same, for block-to-block chaining (MachineConfig::chain_ablation):
  // one spurious cycle per followed link on every chaining leg.
  bool ablate_chain = false;
  // Host-side features under test on the optimized legs. Chaining also
  // gets its own dedicated leg (block-nochain) so a chain bug shows up as
  // a block-vs-nochain split even when both default knobs are on.
  bool chain = true;
  bool shared_decode = true;
};

// What one leg's finished run looks like to the comparator.
struct RunSignature {
  uint64_t fingerprint = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t counters_digest = 0;
  std::vector<std::string> traps;  // trap + ring-switch events, rendered
  std::vector<std::string> processes;
  std::string tty;
};

struct Divergence {
  bool found = false;
  std::string leg;     // "fast", "block", "fleet-4", "snapshot", ...
  std::string detail;  // first differing field, ref vs leg values

  std::string ToString() const;
};

struct CheckResult {
  // False when the guest could not be checked at all (assembly or
  // manifest error, failed instantiation, reference run not terminating);
  // `error` says why. Divergence is only meaningful when ok.
  bool ok = false;
  std::string error;
  Divergence divergence;
  RunSignature reference;  // the slow-path signature, for reporting
};

// Runs the full differential check on one guest source file (manifest
// lines included).
CheckResult CheckGuest(const std::string& source, const FuzzOptions& options = FuzzOptions{});

}  // namespace rings

#endif  // SRC_FUZZ_DIFFERENTIAL_H_

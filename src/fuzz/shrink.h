// Divergence shrinker: given a guest source on which an oracle (normally
// "CheckGuest still diverges") returns true, reduce the source to a
// minimal form the oracle still accepts. Two passes iterate to fixpoint:
// delete-instruction-ranges (ddmin-style contiguous chunks, halving the
// chunk size down to single lines), then simplify-operands (drop an
// indirection, turn an instruction into nop, zero a .word). Candidates
// that no longer assemble or instantiate simply fail the oracle, so
// structural validity never needs special-casing.
#ifndef SRC_FUZZ_SHRINK_H_
#define SRC_FUZZ_SHRINK_H_

#include <cstdint>
#include <functional>
#include <string>

namespace rings {

// Returns true when the candidate source still exhibits the behaviour
// being minimized (for fuzz repros: still diverges).
using ShrinkOracle = std::function<bool(const std::string& source)>;

struct ShrinkOptions {
  // Hard cap on oracle invocations; the best reduction so far is
  // returned when it runs out.
  int max_oracle_calls = 600;
};

struct ShrinkResult {
  std::string source;
  int oracle_calls = 0;
  int instructions = 0;  // executable instructions remaining (CountInstructions)
};

// Precondition: oracle(source) is true. The result source also satisfies
// the oracle.
ShrinkResult Shrink(const std::string& source, const ShrinkOracle& oracle,
                    const ShrinkOptions& options = ShrinkOptions{});

// Number of executable instruction lines (lines whose mnemonic names an
// opcode; directives, labels-only lines, data, and comments don't count).
int CountInstructions(const std::string& source);

// A self-contained repro file: a comment header carrying the seed, the
// divergence description, and the commands that replay it, followed by
// the (shrunken) guest source. The result is itself a runnable guest.
std::string FormatRepro(uint64_t seed, const std::string& divergence, const std::string& source);

}  // namespace rings

#endif  // SRC_FUZZ_SHRINK_H_

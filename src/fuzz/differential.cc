#include "src/fuzz/differential.h"

#include <memory>
#include <utility>

#include "src/base/strings.h"
#include "src/fleet/fingerprint.h"
#include "src/fleet/fleet.h"
#include "src/snapshot/snapshot.h"

namespace rings {

namespace {

// All legs share one machine shape; only the engine switches differ.
// 1M words is plenty for generated guests and keeps a leg's core store
// cheap to construct eight times per trial.
MachineConfig BaseConfig() {
  MachineConfig config;
  config.memory_words = size_t{1} << 20;
  return config;
}

std::unique_ptr<Machine> MakeGuestMachine(const MachineConfig& config, const Program& program,
                                          const Manifest& manifest, std::string* error) {
  auto machine = std::make_unique<Machine>(config);
  if (!machine->ok()) {
    *error = "machine construction failed";
    return nullptr;
  }
  // Enabled before any process starts so every leg records the identical
  // event sequence (the fingerprint folds the trace in when enabled).
  machine->trace().set_enabled(true);
  if (!InstantiateGuest(program, manifest, machine.get(), error)) {
    return nullptr;
  }
  return machine;
}

RunSignature SignatureOf(const Machine& machine) {
  RunSignature sig;
  sig.fingerprint = FingerprintMachine(machine);
  sig.cycles = machine.cpu().cycles();
  sig.instructions = machine.cpu().counters().instructions;
  sig.counters_digest = FingerprintCounters(machine.cpu().counters());
  for (const TraceEvent& event : machine.trace().events()) {
    if (event.kind == EventKind::kTrap || event.kind == EventKind::kRingSwitch) {
      sig.traps.push_back(event.ToString());
    }
  }
  for (const auto& process : machine.supervisor().processes()) {
    sig.processes.push_back(ProcessStatusLine(*process));
  }
  sig.tty = machine.TtyOutput();
  return sig;
}

std::string CompareLists(const char* what, const std::vector<std::string>& ref,
                         const std::vector<std::string>& got) {
  if (ref.size() != got.size()) {
    return StrFormat("%s count %zu vs %zu", what, ref.size(), got.size());
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] != got[i]) {
      return StrFormat("%s[%zu] '%s' vs '%s'", what, i, ref[i].c_str(), got[i].c_str());
    }
  }
  return "";
}

// Empty string when the signatures agree; otherwise the first differing
// field with both values.
std::string Compare(const RunSignature& ref, const RunSignature& got) {
  if (ref.cycles != got.cycles) {
    return StrFormat("cycles %llu vs %llu", static_cast<unsigned long long>(ref.cycles),
                     static_cast<unsigned long long>(got.cycles));
  }
  if (ref.instructions != got.instructions) {
    return StrFormat("instructions %llu vs %llu",
                     static_cast<unsigned long long>(ref.instructions),
                     static_cast<unsigned long long>(got.instructions));
  }
  if (ref.counters_digest != got.counters_digest) {
    return StrFormat("counters digest %016llx vs %016llx",
                     static_cast<unsigned long long>(ref.counters_digest),
                     static_cast<unsigned long long>(got.counters_digest));
  }
  if (std::string diff = CompareLists("trap", ref.traps, got.traps); !diff.empty()) {
    return diff;
  }
  if (std::string diff = CompareLists("process", ref.processes, got.processes); !diff.empty()) {
    return diff;
  }
  if (ref.tty != got.tty) {
    return StrFormat("tty '%s' vs '%s'", ref.tty.c_str(), got.tty.c_str());
  }
  if (ref.fingerprint != got.fingerprint) {
    return StrFormat("fingerprint %016llx vs %016llx",
                     static_cast<unsigned long long>(ref.fingerprint),
                     static_cast<unsigned long long>(got.fingerprint));
  }
  return "";
}

}  // namespace

std::string Divergence::ToString() const {
  if (!found) {
    return "no divergence";
  }
  return StrFormat("leg %s: %s", leg.c_str(), detail.c_str());
}

CheckResult CheckGuest(const std::string& source, const FuzzOptions& options) {
  CheckResult result;

  const AssembleResult assembled = Assemble(source);
  if (!assembled.ok) {
    result.error = "assembly: " + assembled.error.ToString();
    return result;
  }
  const Manifest manifest = ParseManifest(source);
  if (!manifest.ok()) {
    result.error = "manifest: " + manifest.error;
    return result;
  }
  const Program& program = assembled.program;

  // --- reference leg: the per-instruction slow path ----------------------
  MachineConfig slow = BaseConfig();
  slow.fast_path = false;
  slow.block_engine = false;
  std::string error;
  auto ref_machine = MakeGuestMachine(slow, program, manifest, &error);
  if (ref_machine == nullptr) {
    result.error = "instantiate: " + error;
    return result;
  }
  const RunResult ref_run = ref_machine->Run(options.max_cycles);
  if (!ref_run.idle) {
    result.error = StrFormat("reference run did not terminate within %llu cycles",
                             static_cast<unsigned long long>(options.max_cycles));
    return result;
  }
  result.reference = SignatureOf(*ref_machine);
  result.ok = true;

  auto diverged = [&result](const std::string& leg, std::string detail) {
    result.divergence.found = true;
    result.divergence.leg = leg;
    result.divergence.detail = std::move(detail);
  };

  // --- standalone legs: fast path, superblock engine, chaining off -------
  struct EngineLeg {
    const char* name;
    bool fast_path;
    bool block_engine;
    bool chain;
  };
  static constexpr EngineLeg kLegs[] = {
      {"fast", true, false, false},
      {"block", true, true, true},
      {"block-nochain", true, true, false},
  };
  for (const EngineLeg& leg : kLegs) {
    MachineConfig config = BaseConfig();
    config.fast_path = leg.fast_path;
    config.block_engine = leg.block_engine;
    config.chain = leg.chain && options.chain;
    config.shared_decode = options.shared_decode;
    config.block_call_ablation = options.ablate_block_call;
    config.chain_ablation = options.ablate_chain;
    auto machine = MakeGuestMachine(config, program, manifest, &error);
    if (machine == nullptr) {
      diverged(leg.name, "instantiate: " + error);
      return result;
    }
    machine->Run(options.max_cycles);
    if (std::string diff = Compare(result.reference, SignatureOf(*machine)); !diff.empty()) {
      diverged(leg.name, std::move(diff));
      return result;
    }
  }

  // --- fleet legs: one-machine fleets at several thread counts -----------
  // (thread count must not matter, but each count exercises different
  // worker/steal interleavings of the quantum schedule).
  MachineConfig fleet_config = BaseConfig();
  fleet_config.block_call_ablation = options.ablate_block_call;
  fleet_config.chain = options.chain;
  fleet_config.shared_decode = options.shared_decode;
  fleet_config.chain_ablation = options.ablate_chain;
  if (options.check_fleet) {
    // One cold build, sealed as a golden image; every fleet leg then
    // spawns by copy-on-write clone (the serving daemon's path), so the
    // fleet legs double as a clone-vs-cold bit-identity check.
    std::shared_ptr<const Machine> golden;
    if (options.fleet_clone) {
      auto cold = MakeGuestMachine(fleet_config, program, manifest, &error);
      if (cold == nullptr) {
        diverged("fleet-golden", "instantiate: " + error);
        return result;
      }
      cold->memory().SealForCloning();
      golden = std::move(cold);
    }
    for (const int threads : options.fleet_threads) {
      FleetConfig fc;
      fc.threads = threads;
      fc.slice_cycles = 50'000;
      Fleet fleet(fc);
      fleet.Add("fuzz", [golden, fleet_config, program, manifest]() -> std::unique_ptr<Machine> {
        if (golden != nullptr) {
          return Machine::CloneFrom(*golden);
        }
        std::string factory_error;
        return MakeGuestMachine(fleet_config, program, manifest, &factory_error);
      });
      fleet.Run();
      const MachineResult& res = fleet.results()[0];
      const std::string leg = StrFormat("fleet-%d", threads);
      RunSignature got;
      got.fingerprint = res.fingerprint;
      got.cycles = res.cycles;
      got.instructions = res.instructions;
      got.counters_digest = FingerprintCounters(res.counters);
      got.traps = result.reference.traps;  // fleet results carry no trap list;
                                           // the fingerprint covers it
      got.processes = res.process_status;
      got.tty = res.tty;
      if (std::string diff = Compare(result.reference, got); !diff.empty()) {
        diverged(leg, std::move(diff));
        return result;
      }
    }
  }

  // --- snapshot leg: cut the block-engine run in half --------------------
  if (options.check_snapshot && result.reference.cycles >= 2) {
    MachineConfig config = BaseConfig();
    config.block_call_ablation = options.ablate_block_call;
    config.chain = options.chain;
    config.shared_decode = options.shared_decode;
    config.chain_ablation = options.ablate_chain;
    auto live = MakeGuestMachine(config, program, manifest, &error);
    if (live == nullptr) {
      diverged("snapshot", "instantiate: " + error);
      return result;
    }
    live->Run(result.reference.cycles / 2);
    std::vector<uint8_t> image;
    if (!SaveSnapshot(*live, &image, &error)) {
      diverged("snapshot", "save: " + error);
      return result;
    }
    auto restored = std::make_unique<Machine>(config);
    if (!restored->ok() || !RestoreSnapshot(image, restored.get(), &error)) {
      diverged("snapshot", "restore: " + error);
      return result;
    }
    restored->Run(options.max_cycles);
    if (std::string diff = Compare(result.reference, SignatureOf(*restored)); !diff.empty()) {
      diverged("snapshot", std::move(diff));
      return result;
    }
  }

  return result;
}

}  // namespace rings

#include "src/fuzz/generator.h"

#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/base/xorshift.h"
#include "src/isa/instruction.h"

namespace rings {

namespace {

// Program-shape features drawn once per seed, up front, so the manifest
// and segment skeleton are fixed before step emission begins.
struct Shape {
  unsigned start_ring = 4;
  bool main_writable = false;  // enables store-into-code steps
  bool paged = false;          // a demand/populate paged data segment pd0
  bool paged_populate = false;
  unsigned paged_pages = 0;
  bool gate2 = false;           // a ring-2 subsystem with ring-2 data
  bool second_process = false;  // a second ;; start multiplexed by quanta
  int gate1_gates = 1;          // gate words in the ring-1 gate segment
};

class Gen {
 public:
  Gen(uint64_t seed, const GeneratorConfig& config) : seed_(seed), config_(config), rng_(seed) {}

  std::string Build();

 private:
  // --- small emission helpers --------------------------------------------
  std::string Label(const char* stem) { return StrFormat("%s%d", stem, label_seq_++); }
  void Code(const std::string& line) { code_ += "        " + line + "\n"; }
  void Code(const std::string& label, const std::string& line) {
    std::string head = label + ":";
    while (head.size() < 8) {
      head += ' ';
    }
    code_ += head + line + "\n";
  }
  void Data(const std::string& label, const std::string& line) {
    std::string head = label + ":";
    while (head.size() < 8) {
      head += ' ';
    }
    data_ += head + line + "\n";
  }
  void Data(const std::string& line) { data_ += "        " + line + "\n"; }

  // A fresh zeroed word in the shared `work` data segment, returned as the
  // label of an indirect word in main that addresses it.
  std::string WorkPtr() {
    const std::string label = Label("w");
    Data(label, StrFormat(".its  %u, work, %d", shape_.start_ring, work_words_++));
    return label;
  }

  // Opens a counted loop: body runs exactly `count` times, then control
  // falls through. The loop counter lives in `work` (memory, not A), so
  // bodies may clobber A and Q freely. Returns the loop-head label to pass
  // to CloseLoop.
  struct Loop {
    std::string head;
    std::string counter;
    std::string limit;
  };
  Loop OpenLoop(uint64_t count) {
    Loop loop;
    loop.head = Label("lp");
    loop.counter = WorkPtr();
    loop.limit = Label("lm");
    Data(loop.limit, StrFormat(".word %llu", static_cast<unsigned long long>(count)));
    Code(loop.head, "nop");
    return loop;
  }
  void CloseLoop(const Loop& loop) {
    Code(StrFormat("aos   %s,*", loop.counter.c_str()));
    Code(StrFormat("lda   %s,*", loop.counter.c_str()));
    Code(StrFormat("sba   %s", loop.limit.c_str()));
    Code(StrFormat("tmi   %s", loop.head.c_str()));
  }

  // A loop trip count: usually small; occasionally quantum-straddling big
  // (bounded by the remaining instruction budget).
  uint64_t LoopCount() {
    if (big_loops_ < 2 && instr_budget_ > 40'000 && rng_.Chance(1, 5)) {
      ++big_loops_;
      return rng_.Between(500, 1800);
    }
    return rng_.Between(3, 12);
  }
  void Charge(uint64_t count, uint64_t body_cost) {
    const uint64_t cost = count * (body_cost + 5) + 4;
    instr_budget_ = cost >= instr_budget_ ? 0 : instr_budget_ - cost;
  }

  // --- step emitters ------------------------------------------------------
  void StepGateCallLoop();
  void StepComputeLoop();
  void StepIndirectChain();
  void StepSmcLoop();
  void StepPagedTouch();
  void StepTtyWrite();
  void StepGate2Loop();
  void EmitTerminal();
  void EmitSecondProcess();
  void EmitGateSegments();

  uint64_t seed_;
  GeneratorConfig config_;
  Xorshift rng_;
  Shape shape_;

  std::string code_;  // body of the segment being generated
  std::string data_;  // trailing data of the segment being generated
  std::string ptrs_;  // indirect words assembled into the rodata `ptrs` segment
  int label_seq_ = 0;
  int work_words_ = 0;  // words of `work` handed out so far
  int ptr_words_ = 0;   // words of `ptrs` emitted so far
  int big_loops_ = 0;
  uint64_t instr_budget_ = 120'000;  // estimated instructions remaining
};

void Gen::StepGateCallLoop() {
  const std::string gp = Label("gp");
  const int gate = static_cast<int>(rng_.Below(static_cast<uint64_t>(shape_.gate1_gates)));
  Data(gp, StrFormat(".its  %u, gate1, %d", shape_.start_ring, gate));
  const uint64_t count = LoopCount();
  const Loop loop = OpenLoop(count);
  Code(StrFormat("epp   pr2, %s,*", gp.c_str()));
  Code("call  pr2|0");
  CloseLoop(loop);
  Charge(count, 12);
}

void Gen::StepComputeLoop() {
  // A handful of arithmetic/logic ops over main-resident constants and
  // work-resident scratch.
  std::vector<std::string> body;
  const int ops = static_cast<int>(rng_.Between(2, 5));
  const std::string scratch = WorkPtr();
  for (int i = 0; i < ops; ++i) {
    const std::string d = Label("d");
    Data(d, StrFormat(".word %llu", static_cast<unsigned long long>(rng_.Below(4000))));
    switch (rng_.Below(9)) {
      case 0:
        body.push_back(StrFormat("lda   %s", d.c_str()));
        break;
      case 1:
        body.push_back(StrFormat("ada   %s", d.c_str()));
        break;
      case 2:
        body.push_back(StrFormat("sba   %s", d.c_str()));
        break;
      case 3:
        body.push_back(StrFormat("ana   %s", d.c_str()));
        break;
      case 4:
        body.push_back(StrFormat("ora   %s", d.c_str()));
        break;
      case 5:
        body.push_back(StrFormat("era   %s", d.c_str()));
        break;
      case 6:
        body.push_back(StrFormat("adai  %llu", static_cast<unsigned long long>(rng_.Below(200))));
        break;
      case 7:
        body.push_back("xaq");
        break;
      default:
        body.push_back(StrFormat("sta   %s,*", scratch.c_str()));
        break;
    }
  }
  const uint64_t count = LoopCount();
  const Loop loop = OpenLoop(count);
  for (const std::string& line : body) {
    Code(line);
  }
  CloseLoop(loop);
  Charge(count, static_cast<uint64_t>(ops) + 1);
}

void Gen::StepIndirectChain() {
  // A read and a read-modify-write chased through 1-3 planted indirect
  // words; chain middles live in the read-only `ptrs` segment.
  const std::string target = WorkPtr();  // also gives the final work word
  const int final_word = work_words_ - 1;
  const int depth = static_cast<int>(rng_.Between(1, 3));
  int next = final_word;  // word in `work` the deepest link lands on
  std::string link;
  for (int i = 0; i < depth; ++i) {
    link = Label("p");
    std::string head = link + ":";
    while (head.size() < 8) {
      head += ' ';
    }
    if (i == 0) {
      ptrs_ += head + StrFormat(".its  %u, work, %d\n", shape_.start_ring, next);
    } else {
      ptrs_ += head + StrFormat(".its  %u, ptrs, %d, *\n", shape_.start_ring, ptr_words_ - 1);
    }
    ++ptr_words_;
  }
  const std::string chain = Label("ch");
  Data(chain, StrFormat(".its  %u, ptrs, %d, *", shape_.start_ring, ptr_words_ - 1));
  Code(StrFormat("aos   %s,*", chain.c_str()));
  Code(StrFormat("lda   %s,*", chain.c_str()));
  Code(StrFormat("adai  %llu", static_cast<unsigned long long>(rng_.Below(50))));
  Code(StrFormat("sta   %s,*", target.c_str()));
  instr_budget_ -= instr_budget_ < 8 ? instr_budget_ : 8;
}

void Gen::StepSmcLoop() {
  // Store-into-code: a loop whose body contains a patch site that the loop
  // itself overwrites on its first pass, so later passes (and any cached
  // decodes or superblocks built from them) must observe the new word.
  const std::string patch = Label("pt");
  const std::string pins = Label("pi");
  const Instruction patched =
      MakeIns(rng_.Chance(1, 2) ? Opcode::kAdai : Opcode::kLdai,
              static_cast<int32_t>(rng_.Below(300)));
  Data(pins, StrFormat(".word 0x%llx",
                       static_cast<unsigned long long>(EncodeInstruction(patched))));
  const uint64_t count = rng_.Between(3, 8);
  const Loop loop = OpenLoop(count);
  Code(patch, "nop");
  Code(StrFormat("lda   %s", pins.c_str()));
  Code(StrFormat("sta   %s", patch.c_str()));
  CloseLoop(loop);
  Charge(count, 3);
}

void Gen::StepPagedTouch() {
  // Walk a few random words of the paged segment, faulting pages in (and
  // under the snapshot leg, carrying page-table state across the cut).
  const int touches = static_cast<int>(rng_.Between(2, 4));
  std::vector<std::string> pointers;
  for (int i = 0; i < touches; ++i) {
    const std::string pp = Label("pg");
    const uint64_t off = rng_.Below(static_cast<uint64_t>(shape_.paged_pages) * 1024);
    Data(pp, StrFormat(".its  %u, pd0, %llu", shape_.start_ring,
                       static_cast<unsigned long long>(off)));
    pointers.push_back(pp);
  }
  const uint64_t count = rng_.Between(2, 6);
  const Loop loop = OpenLoop(count);
  for (const std::string& pp : pointers) {
    Code(StrFormat("lda   %s,*", pp.c_str()));
    Code("adai  1");
    Code(StrFormat("sta   %s,*", pp.c_str()));
  }
  CloseLoop(loop);
  Charge(count, static_cast<uint64_t>(touches) * 3);
}

void Gen::StepTtyWrite() {
  // hello.asm idiom: arglist in pr1, call sup_gates gate 1 (tty write).
  const std::string al = Label("al");
  const std::string buf = Label("bf");
  const std::string sgp = Label("sg");
  const int len = static_cast<int>(rng_.Between(3, 8));
  std::string text;
  for (int i = 0; i < len; ++i) {
    text += static_cast<char>('A' + rng_.Below(26));
  }
  Code(StrFormat("epp   pr1, %s", al.c_str()));
  Code(StrFormat("epp   pr2, %s,*", sgp.c_str()));
  Code("call  pr2|0");
  Data(al, ".word 1");
  Data(StrFormat(".its  %u, main, %s", shape_.start_ring, buf.c_str()));
  Data(StrFormat(".word %d", len));
  Data(buf, StrFormat(".string %s", text.c_str()));
  Data(sgp, StrFormat(".its  %u, sup_gates, 1", shape_.start_ring));
  instr_budget_ -= instr_budget_ < 20 ? instr_budget_ : 20;
}

void Gen::StepGate2Loop() {
  const std::string gp = Label("gp");
  Data(gp, StrFormat(".its  %u, gate2, 0", shape_.start_ring));
  const uint64_t count = LoopCount();
  const Loop loop = OpenLoop(count);
  Code(StrFormat("epp   pr3, %s,*", gp.c_str()));
  Code("call  pr3|0");
  CloseLoop(loop);
  Charge(count, 10);
}

void Gen::EmitTerminal() {
  if (rng_.Chance(1, 6)) {
    // Deliberate access violation: a store through a pointer whose target
    // refuses writes from the start ring — the process is killed here, a
    // trap-sequence event every engine must agree on.
    const std::string vp = Label("vp");
    if (shape_.gate2) {
      Data(vp, StrFormat(".its  %u, tally2, 0", shape_.start_ring));
    } else {
      Data(vp, StrFormat(".its  %u, ptrs, 0", shape_.start_ring));
    }
    Code(StrFormat("sta   %s,*", vp.c_str()));
  }
  const std::string ex = Label("ex");
  Data(ex, StrFormat(".word %llu", static_cast<unsigned long long>(rng_.Below(1000))));
  Code(StrFormat("lda   %s", ex.c_str()));
  Code("mme   0");
}

void Gen::EmitSecondProcess() {
  // A small companion program: compute + gate traffic, so quantum handoffs
  // interleave two processes' ring crossings.
  code_ += "\n        .segment prog2\n";
  const std::string save_data = data_;
  data_.clear();
  const std::string gp = Label("gp");
  Data(gp, StrFormat(".its  %u, gate1, 0", shape_.start_ring));
  const std::string d = Label("d");
  Data(d, StrFormat(".word %llu", static_cast<unsigned long long>(rng_.Below(500))));
  const uint64_t count = rng_.Between(50, 400);
  Code("entry2", "nop");
  const Loop loop = OpenLoop(count);
  Code(StrFormat("lda   %s", d.c_str()));
  Code("adai  7");
  Code(StrFormat("epp   pr2, %s,*", gp.c_str()));
  Code("call  pr2|0");
  CloseLoop(loop);
  Charge(count, 10);
  Code("ldai  0");
  Code("mme   0");
  code_ += data_;
  data_ = save_data;
}

void Gen::EmitGateSegments() {
  code_ += "\n        .segment gate1\n";
  code_ += StrFormat("        .gates %d\n", shape_.gate1_gates);
  std::vector<std::string> bodies;
  for (int g = 0; g < shape_.gate1_gates; ++g) {
    bodies.push_back(Label("gb"));
    Code(StrFormat("tra   %s", bodies.back().c_str()));
  }
  const std::string gptr = Label("gd");
  for (int g = 0; g < shape_.gate1_gates; ++g) {
    // Each gate body does a little ring-1 work against gdata, then
    // returns. Bodies may clobber A/Q; callers reload.
    switch (rng_.Below(3)) {
      case 0:
        Code(bodies[static_cast<size_t>(g)], StrFormat("aos   %s,*", gptr.c_str()));
        break;
      case 1:
        Code(bodies[static_cast<size_t>(g)], StrFormat("ldq   %s,*", gptr.c_str()));
        Code(StrFormat("stq   %s,*", gptr.c_str()));
        break;
      default:
        Code(bodies[static_cast<size_t>(g)], StrFormat("lda   %s,*", gptr.c_str()));
        Code("adai  2");
        Code(StrFormat("sta   %s,*", gptr.c_str()));
        break;
    }
    Code("ret   pr7|0");
  }
  Data(gptr, ".its  1, gdata, 0");
  code_ += data_;
  data_.clear();
  code_ += "\n        .segment gdata\n        .block 4\n";

  if (shape_.gate2) {
    code_ += "\n        .segment gate2\n        .gates 1\n";
    const std::string body = Label("gb");
    const std::string tp = Label("tp");
    Code(StrFormat("tra   %s", body.c_str()));
    Code(body, StrFormat("aos   %s,*", tp.c_str()));
    Code(StrFormat("lda   %s,*", tp.c_str()));
    Code("ret   pr7|0");
    Data(tp, ".its  2, tally2, 0");
    code_ += data_;
    data_.clear();
    code_ += "\n        .segment tally2\n        .word 0\n";
  }
}

std::string Gen::Build() {
  shape_.start_ring = rng_.Chance(3, 4) ? 4 : static_cast<unsigned>(rng_.Between(3, 5));
  shape_.main_writable = rng_.Chance(1, 3);
  shape_.paged = rng_.Chance(1, 2);
  shape_.paged_pages = static_cast<unsigned>(rng_.Between(2, 8));
  shape_.paged_populate = rng_.Chance(1, 6);
  shape_.gate2 = rng_.Chance(1, 3);
  shape_.second_process = rng_.Chance(1, 4);
  shape_.gate1_gates = static_cast<int>(rng_.Between(1, 3));
  const unsigned sr = shape_.start_ring;

  std::string out;
  out += StrFormat("; fuzz guest, seed %llu — generated by GenerateGuest (src/fuzz)\n",
                   static_cast<unsigned long long>(seed_));
  out += StrFormat(";; acl main * procedure %u %u%s\n", sr, sr,
                   shape_.main_writable ? " write" : "");
  out += StrFormat(";; acl work * data %u %u\n", sr, sr);
  out += StrFormat(";; acl ptrs * rodata %u\n", sr);
  out += ";; acl gate1 * procedure 1 1 7\n";
  out += StrFormat(";; acl gdata * data 1 %u\n", sr);
  if (shape_.gate2) {
    out += ";; acl gate2 * procedure 2 2 5\n";
    out += StrFormat(";; acl tally2 * data 2 %u\n", sr);
  }
  if (shape_.paged) {
    out += StrFormat(";; acl pd0 * data %u %u\n", sr, sr);
    out += StrFormat(";; segment pd0 %u paged %s\n", shape_.paged_pages * 1024,
                     shape_.paged_populate ? "populate" : "demand");
  }
  if (shape_.second_process) {
    out += StrFormat(";; acl prog2 * procedure %u %u\n", sr, sr);
  }
  out += StrFormat(";; start main start %u user1\n", sr);
  if (shape_.second_process) {
    out += StrFormat(";; start prog2 entry2 %u user2\n", sr);
  }

  code_ += "\n        .segment main\nstart:  nop\n";
  const int steps = static_cast<int>(
      rng_.Between(static_cast<uint64_t>(config_.min_steps), static_cast<uint64_t>(config_.max_steps)));
  for (int s = 0; s < steps; ++s) {
    // The first step is always a gate-call loop: calls re-executed from
    // cached decodes are where the superblock engine earns its keep (and
    // where the ablation oracle must be able to bite).
    const uint64_t pick = s == 0 ? 0 : rng_.Below(10);
    switch (pick) {
      case 0:
      case 1:
      case 2:
        StepGateCallLoop();
        break;
      case 3:
      case 4:
        StepComputeLoop();
        break;
      case 5:
        StepIndirectChain();
        break;
      case 6:
        if (shape_.main_writable) {
          StepSmcLoop();
        } else {
          StepComputeLoop();
        }
        break;
      case 7:
        if (shape_.paged) {
          StepPagedTouch();
        } else {
          StepIndirectChain();
        }
        break;
      case 8:
        StepTtyWrite();
        break;
      default:
        if (shape_.gate2) {
          StepGate2Loop();
        } else {
          StepGateCallLoop();
        }
        break;
    }
  }
  EmitTerminal();
  code_ += data_;
  data_.clear();

  if (shape_.second_process) {
    EmitSecondProcess();
  }
  EmitGateSegments();

  std::string segments;
  segments += StrFormat("\n        .segment work\n        .block %d\n", work_words_ + 8);
  segments += "\n        .segment ptrs\n";
  if (ptr_words_ == 0) {
    // Keep the segment non-empty (and give the no-gate2 violation probe a
    // word to aim at).
    segments += "        .word 0\n";
  } else {
    segments += ptrs_;
  }

  return out + code_ + segments;
}

}  // namespace

GeneratedGuest GenerateGuest(uint64_t seed, const GeneratorConfig& config) {
  GeneratedGuest guest;
  guest.seed = seed;
  guest.source = Gen(seed, config).Build();
  return guest;
}

}  // namespace rings

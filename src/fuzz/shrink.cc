#include "src/fuzz/shrink.h"

#include <sstream>
#include <string_view>
#include <vector>

#include "src/base/strings.h"
#include "src/isa/opcode.h"

namespace rings {

namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream stream(source);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// Lines the delete pass never removes: manifest directives and segment
// structure. Everything else (code, data, labels, comments, blanks) is
// fair game — a candidate that breaks assembly just fails the oracle.
bool Protected(const std::string& line) {
  const std::string_view t = StripWhitespace(line);
  return t.substr(0, 2) == ";;" || t.substr(0, 8) == ".segment" || t.substr(0, 6) == ".gates";
}

// Splits "label:   rest" into its parts; label empty when absent.
void SplitLabel(const std::string& line, std::string* label, std::string* rest) {
  const size_t colon = line.find(':');
  const size_t semi = line.find(';');
  if (colon != std::string::npos && (semi == std::string::npos || colon < semi) &&
      line.find_first_not_of(" \t") < colon) {
    *label = std::string(StripWhitespace(line.substr(0, colon)));
    *rest = std::string(StripWhitespace(line.substr(colon + 1)));
  } else {
    label->clear();
    *rest = std::string(StripWhitespace(line));
  }
}

// The mnemonic of an instruction line ("" for directives/data/comments).
std::string MnemonicOf(const std::string& line) {
  std::string label;
  std::string rest;
  SplitLabel(line, &label, &rest);
  if (rest.empty() || rest[0] == ';' || rest[0] == '.') {
    return "";
  }
  const size_t end = rest.find_first_of(" \t");
  const std::string word = rest.substr(0, end);
  return OpcodeFromMnemonic(word).has_value() ? word : "";
}

class Shrinker {
 public:
  Shrinker(std::vector<std::string> lines, const ShrinkOracle& oracle, const ShrinkOptions& options)
      : lines_(std::move(lines)), oracle_(oracle), options_(options) {}

  ShrinkResult Run() {
    bool progress = true;
    while (progress && calls_ < options_.max_oracle_calls) {
      progress = false;
      progress |= DeletePass();
      progress |= SimplifyPass();
    }
    ShrinkResult result;
    result.source = JoinLines(lines_);
    result.oracle_calls = calls_;
    result.instructions = CountInstructions(result.source);
    return result;
  }

 private:
  bool Accepts(const std::vector<std::string>& candidate) {
    if (calls_ >= options_.max_oracle_calls) {
      return false;
    }
    ++calls_;
    return oracle_(JoinLines(candidate));
  }

  // Tries deleting contiguous chunks, chunk size halving from n/2 down
  // to 1. Returns true if anything was deleted.
  bool DeletePass() {
    bool any = false;
    for (size_t chunk = lines_.size() / 2; chunk >= 1; chunk /= 2) {
      bool deleted = true;
      while (deleted) {
        deleted = false;
        for (size_t at = 0; at + chunk <= lines_.size();) {
          bool deletable = true;
          for (size_t i = at; i < at + chunk; ++i) {
            if (Protected(lines_[i])) {
              deletable = false;
              break;
            }
          }
          if (!deletable) {
            ++at;
            continue;
          }
          std::vector<std::string> candidate = lines_;
          candidate.erase(candidate.begin() + static_cast<long>(at),
                          candidate.begin() + static_cast<long>(at + chunk));
          if (Accepts(candidate)) {
            lines_ = std::move(candidate);
            deleted = true;
            any = true;
            // keep `at` — the next chunk slid into place
          } else {
            ++at;
          }
          if (calls_ >= options_.max_oracle_calls) {
            return any;
          }
        }
      }
      if (chunk == 1) {
        break;
      }
    }
    return any;
  }

  // Per-line operand simplifications, each kept only if the oracle still
  // accepts. Returns true if any line changed.
  bool SimplifyPass() {
    bool any = false;
    for (size_t i = 0; i < lines_.size(); ++i) {
      if (calls_ >= options_.max_oracle_calls) {
        return any;
      }
      if (Protected(lines_[i])) {
        continue;
      }
      std::string label;
      std::string rest;
      SplitLabel(lines_[i], &label, &rest);
      const std::string prefix = label.empty() ? "        " : label + ": ";

      std::vector<std::string> replacements;
      // Drop a trailing indirection.
      if (rest.size() > 2 && rest.substr(rest.size() - 2) == ",*") {
        replacements.push_back(prefix + rest.substr(0, rest.size() - 2));
      }
      // Zero a data word.
      if (rest.substr(0, 5) == ".word" && StripWhitespace(rest.substr(5)) != "0") {
        replacements.push_back(prefix + ".word 0");
      }
      // Neuter an instruction entirely.
      const std::string mnemonic = MnemonicOf(lines_[i]);
      if (!mnemonic.empty() && mnemonic != "nop") {
        replacements.push_back(prefix + "nop");
      }
      for (const std::string& replacement : replacements) {
        if (replacement == lines_[i]) {
          continue;
        }
        std::vector<std::string> candidate = lines_;
        candidate[i] = replacement;
        if (Accepts(candidate)) {
          lines_ = std::move(candidate);
          any = true;
          break;  // re-derived replacements for this line next pass
        }
        if (calls_ >= options_.max_oracle_calls) {
          return any;
        }
      }
    }
    return any;
  }

  std::vector<std::string> lines_;
  const ShrinkOracle& oracle_;
  ShrinkOptions options_;
  int calls_ = 0;
};

}  // namespace

ShrinkResult Shrink(const std::string& source, const ShrinkOracle& oracle,
                    const ShrinkOptions& options) {
  return Shrinker(SplitLines(source), oracle, options).Run();
}

int CountInstructions(const std::string& source) {
  int count = 0;
  for (const std::string& line : SplitLines(source)) {
    if (!MnemonicOf(line).empty()) {
      ++count;
    }
  }
  return count;
}

std::string FormatRepro(uint64_t seed, const std::string& divergence, const std::string& source) {
  std::string out;
  out += "; ---- fuzz divergence repro ------------------------------------\n";
  out += StrFormat("; seed:       %llu\n", static_cast<unsigned long long>(seed));
  out += StrFormat("; divergence: %s\n", divergence.c_str());
  out += "; replay this file directly:   ringsim <this-file>\n";
  out += StrFormat("; regenerate from the seed:    ringsim --fuzz=1 --fuzz-seed=%llu\n",
                   static_cast<unsigned long long>(seed));
  out += "; ---------------------------------------------------------------\n";
  out += source;
  if (!out.empty() && out.back() != '\n') {
    out += '\n';
  }
  return out;
}

}  // namespace rings

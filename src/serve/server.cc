#include "src/serve/server.h"

#include <algorithm>
#include <exception>

#include "src/base/strings.h"
#include "src/fleet/fingerprint.h"
#include "src/kasm/assembler.h"
#include "src/snapshot/snapshot.h"
#include "src/sys/manifest.h"

namespace rings {

namespace {

using Clock = std::chrono::steady_clock;

// Submission identity for the golden-image registry: FNV-1a over the full
// source text. Unlike ProgramIdentity this covers the `;;` manifest too —
// two sources assembling to the same program but with different ACLs,
// start points, or tty input must not share a golden machine.
uint64_t SourceIdentity(const std::string& source) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : source) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string_view ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kQueued:
      return "queued";
    case ServeStatus::kRunning:
      return "running";
    case ServeStatus::kCompleted:
      return "completed";
    case ServeStatus::kFailed:
      return "failed";
    case ServeStatus::kBudgetExceeded:
      return "budget-exceeded";
    case ServeStatus::kRejected:
      return "rejected";
  }
  return "?";
}

std::string Completion::ToString() const {
  std::string out = StrFormat(
      "submission %llu tenant '%s': %s exit=%d cycles=%llu fingerprint=%016llx",
      static_cast<unsigned long long>(id), tenant.c_str(),
      std::string(ServeStatusName(status)).c_str(), exit_code,
      static_cast<unsigned long long>(cycles), static_cast<unsigned long long>(fingerprint));
  if (!error.empty()) {
    out += StrFormat(" (%s)", error.c_str());
  }
  return out;
}

Server::Server(ServeConfig config) : config_(config) {
  if (config_.threads < 1) {
    config_.threads = 1;
  }
  if (config_.slice_cycles == 0) {
    config_.slice_cycles = 1;
  }
  for (int w = 0; w < config_.threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

Server::~Server() { Shutdown(); }

void Server::SetTenantBudget(const std::string& tenant, TenantBudget budget) {
  const std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].budget = budget;
}

uint64_t Server::Submit(Submission submission) {
  std::unique_ptr<Task> task = std::make_unique<Task>();
  task->submission = std::move(submission);
  task->submitted_at = Clock::now();
  task->max_cycles =
      task->submission.max_cycles > 0 ? task->submission.max_cycles : config_.default_max_cycles;
  task->completion.tenant = task->submission.tenant;

  std::string reject;
  uint64_t memory_words = config_.machine_memory_words;
  const bool has_source = !task->submission.source.empty();
  const bool has_image = !task->submission.image.empty();
  if (has_source == has_image) {
    reject = "submission must carry exactly one of kasm source or snapshot image";
  } else if (has_image) {
    std::string error;
    SnapshotMeta meta;
    if (!VerifySnapshot(task->submission.image, &error) ||
        !PeekSnapshotMeta(task->submission.image, &meta, &error)) {
      reject = StrFormat("snapshot image invalid: %s", error.c_str());
    } else {
      memory_words = meta.memory_words;
    }
  }

  Task* raw = task.get();
  size_t worker = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    raw->id = next_id_++;
    raw->completion.id = raw->id;
    if (!accepting_ && reject.empty()) {
      reject = "server is shutting down";
    }
    if (reject.empty()) {
      const auto it = tenants_.find(raw->submission.tenant);
      if (it != tenants_.end() && memory_words > it->second.budget.max_memory_words) {
        reject = StrFormat("tenant memory budget: machine wants %llu words, budget is %llu",
                           static_cast<unsigned long long>(memory_words),
                           static_cast<unsigned long long>(it->second.budget.max_memory_words));
      }
    }
    if (!reject.empty()) {
      raw->completion.status = ServeStatus::kRejected;
      raw->completion.error = std::move(reject);
      raw->completion.turnaround_ns = 0;
      raw->done = true;
      tasks_[raw->id] = std::move(task);
      done_cv_.notify_all();
      return raw->id;
    }
    ++queued_;
    worker = static_cast<size_t>(raw->id) % workers_.size();
    tasks_[raw->id] = std::move(task);
  }
  Enqueue(worker, raw);
  return raw->id;
}

Completion Server::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, id] {
    const auto it = tasks_.find(id);
    return it != tasks_.end() && it->second->done;
  });
  return tasks_.find(id)->second->completion;
}

void Server::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void Server::Enqueue(size_t worker, Task* task) {
  {
    const std::lock_guard<std::mutex> lock(workers_[worker]->mu);
    workers_[worker]->queue.push_back(task);
  }
  work_cv_.notify_one();
}

Server::Task* Server::Dequeue(size_t worker) {
  Worker& own = *workers_[worker];
  {
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      Task* task = own.queue.back();
      own.queue.pop_back();
      return task;
    }
  }
  // Steal from the front of a sibling's queue (the submission its owner
  // would touch last), scanning from the next worker around the ring.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(worker + k) % workers_.size()];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      Task* task = victim.queue.front();
      victim.queue.pop_front();
      ++own.steals;
      return task;
    }
  }
  return nullptr;
}

void Server::WorkerLoop(size_t worker) {
  while (true) {
    Task* task = Dequeue(worker);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_ && queued_ == 0) {
        return;
      }
      // Bounded wait instead of a precise predicate: enqueues happen
      // under per-worker locks, so a notify can slip past a worker
      // between its failed Dequeue and this wait; the timeout caps that
      // stall at one millisecond.
      work_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    const bool retired = RunSlice(task);
    if (!retired) {
      Enqueue(worker, task);
    }
  }
}

uint64_t Server::TenantRemaining(const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return UINT64_MAX;
  }
  const Tenant& t = it->second;
  return t.consumed_cycles >= t.budget.max_cycles_total
             ? 0
             : t.budget.max_cycles_total - t.consumed_cycles;
}

void Server::ChargeTenant(const std::string& tenant, uint64_t cycles) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    it->second.consumed_cycles += cycles;
  }
}

bool Server::Materialize(Task* task) {
  const Submission& sub = task->submission;
  std::unique_ptr<Machine> machine;
  if (!sub.image.empty()) {
    std::string error;
    SnapshotMeta meta;
    if (!PeekSnapshotMeta(sub.image, &meta, &error)) {
      Retire(task, ServeStatus::kFailed, std::move(error));
      return false;
    }
    MachineConfig config;
    config.memory_words = meta.memory_words;
    config.cycle_model = meta.cycle_model;
    config.quantum = meta.quantum;
    config.mode = meta.mode;
    machine = std::make_unique<Machine>(config);
    if (!machine->ok() || !RestoreSnapshot(sub.image, machine.get(), &error)) {
      Retire(task, ServeStatus::kFailed,
             machine->ok() ? std::move(error) : "machine construction failed");
      return false;
    }
  } else {
    // Golden-image path: the first submission of a distinct source pays
    // assemble+boot+load under the registry lock; every later one clones.
    // Engine flags join the identity (as in ringsim's fleet wiring) so a
    // golden booted under one host configuration never serves another.
    const uint64_t identity = SourceIdentity(sub.source) ^
                              ((config_.fast_path ? 1u : 0u) | (config_.block_engine ? 2u : 0u) |
                               (config_.chain ? 4u : 0u) | (config_.shared_decode ? 8u : 0u));
    std::string build_error;
    const std::shared_ptr<const GoldenImage> golden =
        GoldenImageRegistry::Instance().Acquire(identity, [this, &sub, &build_error,
                                                           identity]() -> std::unique_ptr<Machine> {
          const AssembleResult assembled = Assemble(sub.source);
          if (!assembled.ok) {
            build_error = assembled.error.ToString();
            return nullptr;
          }
          const Manifest manifest = ParseManifest(sub.source);
          if (!manifest.ok()) {
            build_error = manifest.error;
            return nullptr;
          }
          MachineConfig config;
          config.memory_words = config_.machine_memory_words;
          config.fast_path = config_.fast_path;
          config.block_engine = config_.block_engine;
          config.chain = config_.chain;
          config.shared_decode = config_.shared_decode;
          auto golden_machine = std::make_unique<Machine>(config);
          if (!golden_machine->ok()) {
            build_error = "machine construction failed";
            return nullptr;
          }
          std::string error;
          if (!InstantiateGuest(assembled.program, manifest, golden_machine.get(), &error)) {
            build_error = std::move(error);
            return nullptr;
          }
          (void)identity;
          return golden_machine;
        });
    if (golden == nullptr) {
      Retire(task, ServeStatus::kFailed,
             build_error.empty() ? "golden image construction failed" : std::move(build_error));
      return false;
    }
    machine = golden->Spawn();
    if (machine == nullptr) {
      Retire(task, ServeStatus::kFailed, "golden image clone failed");
      return false;
    }
  }
  if (!sub.stdin_text.empty()) {
    machine->TtyFeedInput(sub.stdin_text);
  }
  task->machine = std::move(machine);
  return true;
}

void Server::Retire(Task* task, ServeStatus status, std::string error) {
  Completion& completion = task->completion;
  completion.status = status;
  completion.error = std::move(error);
  if (task->machine != nullptr) {
    const Machine& machine = *task->machine;
    completion.fingerprint = FingerprintMachine(machine);
    completion.cycles = machine.cpu().cycles();
    completion.instructions = machine.cpu().counters().instructions;
    completion.tty = machine.TtyOutput();
    int exit_code = 0;
    for (const auto& process : machine.supervisor().processes()) {
      if (process->state == ProcessState::kExited) {
        exit_code = std::max(exit_code, static_cast<int>(process->exit_code & 0xFF));
      } else {
        exit_code = 111;
        if (completion.status == ServeStatus::kCompleted) {
          completion.status = ServeStatus::kFailed;
        }
        if (completion.error.empty()) {
          completion.error = ProcessStatusLine(*process);
        }
      }
    }
    completion.exit_code = exit_code;
  } else if (completion.exit_code == 0) {
    completion.exit_code = 111;
  }
  if (completion.status != ServeStatus::kCompleted && completion.exit_code == 0) {
    completion.exit_code = 111;
  }
  completion.turnaround_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - task->submitted_at)
          .count());
  task->machine.reset();  // bound peak memory: one retired machine at a time
  {
    const std::lock_guard<std::mutex> lock(mu_);
    task->done = true;
    --queued_;
  }
  done_cv_.notify_all();
  work_cv_.notify_all();  // drain check: sleepers re-test the exit condition
}

bool Server::RunSlice(Task* task) {
#if defined(__cpp_exceptions)
  try {
#endif
    if (task->machine == nullptr) {
      return !Materialize(task);  // materialization was this slice's work
    }
    const uint64_t tenant_remaining = TenantRemaining(task->submission.tenant);
    if (tenant_remaining == 0) {
      Retire(task, ServeStatus::kBudgetExceeded, "tenant cycle budget exhausted");
      return true;
    }
    const uint64_t remaining = task->max_cycles - task->consumed_cycles;
    const uint64_t slice = std::min({config_.slice_cycles, remaining, tenant_remaining});
    const RunResult run = task->machine->Run(slice);
    task->consumed_cycles += run.cycles;
    ChargeTenant(task->submission.tenant, run.cycles);
    if (run.idle) {
      Retire(task, ServeStatus::kCompleted, "");
      return true;
    }
    if (task->consumed_cycles >= task->max_cycles) {
      Retire(task, ServeStatus::kBudgetExceeded, "cycle budget exhausted");
      return true;
    }
    if (TenantRemaining(task->submission.tenant) == 0) {
      Retire(task, ServeStatus::kBudgetExceeded, "tenant cycle budget exhausted");
      return true;
    }
    return false;
#if defined(__cpp_exceptions)
  } catch (const std::exception& e) {
    // Host-side failure isolation: this submission retires, siblings and
    // the daemon itself keep running.
    task->machine.reset();
    Retire(task, ServeStatus::kFailed, StrFormat("host exception: %s", e.what()));
    return true;
  }
#endif
}

}  // namespace rings

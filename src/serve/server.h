// The multi-tenant serving core behind the `ringsimd` daemon: a
// long-running work-stealing pool that turns workload submissions (kasm
// source with a `;;` manifest, or a pre-assembled snapshot image, plus
// optional tty input) into protected machines, runs them in slices, and
// reports per-machine status + FNV-1a fingerprint.
//
// Machines are spawned from golden images (src/fleet/golden_image.h): the
// first submission of a distinct program pays boot+assemble+load once;
// every later submission of the same program is a copy-on-write clone.
// The simulated trajectory is identical either way — the differential
// tests and the daemon smoke job pin submission fingerprints against
// standalone ringsim runs.
//
// Tenancy: every submission names a tenant; a tenant's budget caps the
// memory words any of its machines may claim (enforced at submit) and the
// total simulated cycles all its machines may burn (enforced slice by
// slice — a machine that exhausts the tenant's remaining cycles retires
// as budget-exceeded, exactly like a fleet job hitting max_cycles).
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cpu/shared_decode.h"
#include "src/fleet/golden_image.h"
#include "src/sys/machine.h"

namespace rings {

struct ServeConfig {
  int threads = 4;
  // Simulated cycles per scheduling slice (the serving analogue of
  // FleetConfig::slice_cycles).
  uint64_t slice_cycles = 250'000;
  // Core-store size for machines built from kasm source — the
  // MachineConfig default, so daemon fingerprints are comparable with
  // standalone ringsim runs of the same guest. COW zero frames make the
  // large store free until written. (Image submissions dictate their own
  // size; the tenant memory budget applies to both.)
  size_t machine_memory_words = size_t{1} << 22;
  // Per-submission cycle cap when the submission does not set one.
  uint64_t default_max_cycles = 100'000'000;
  // Host engine configuration for machines built from source (image
  // submissions restore under their snapshot's own config). Host-only —
  // simulated results are bit-identical across all settings — but folded
  // into the golden-image identity so a golden built under one engine
  // configuration never serves another. bench_serve wires these to the
  // RINGS_BLOCK_ENGINE / RINGS_CHAIN / RINGS_SHARED_DECODE CI ablation
  // hooks.
  bool fast_path = true;
  bool block_engine = true;
  bool chain = true;
  bool shared_decode = true;
};

// Per-tenant resource ceilings. Defaults are unlimited.
struct TenantBudget {
  uint64_t max_cycles_total = UINT64_MAX;  // simulated cycles, summed over all machines
  uint64_t max_memory_words = UINT64_MAX;  // per-machine core-store ceiling
};

enum class ServeStatus {
  kQueued,
  kRunning,
  kCompleted,       // every process exited
  kFailed,          // assembly/instantiation/restore failure or dirty exit
  kBudgetExceeded,  // submission or tenant cycle budget exhausted
  kRejected,        // refused at submit (memory budget, malformed submission)
};

std::string_view ServeStatusName(ServeStatus status);

struct Submission {
  std::string tenant = "default";
  // Exactly one of `source` (kasm + `;;` manifest) or `image` (snapshot
  // bytes) must be set.
  std::string source;
  std::vector<uint8_t> image;
  // Extra tty input fed to this machine before it starts (appended after
  // any `;; tty-input` from the manifest).
  std::string stdin_text;
  // Simulated-cycle cap for this machine; 0 = ServeConfig default.
  uint64_t max_cycles = 0;
};

struct Completion {
  uint64_t id = 0;
  std::string tenant;
  ServeStatus status = ServeStatus::kQueued;
  uint64_t fingerprint = 0;
  int exit_code = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  std::string tty;
  std::string error;
  // Host-only: submit-to-retire turnaround (feeds bench_serve's p50/p99;
  // never part of any fingerprint).
  uint64_t turnaround_ns = 0;

  bool ok() const { return status == ServeStatus::kCompleted && exit_code == 0; }
  std::string ToString() const;
};

class Server {
 public:
  explicit Server(ServeConfig config = ServeConfig{});
  ~Server();  // implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Sets (replaces) a tenant's budget. Applies to future submissions and
  // future slices of running ones.
  void SetTenantBudget(const std::string& tenant, TenantBudget budget);

  // Enqueues a workload; returns its submission id (always valid to
  // Wait on — a refused submission completes immediately as kRejected).
  uint64_t Submit(Submission submission);

  // Blocks until submission `id` retires and returns its completion.
  Completion Wait(uint64_t id);

  // Stops accepting submissions, drains everything queued, joins the
  // workers. Idempotent.
  void Shutdown();

  const ServeConfig& config() const { return config_; }

 private:
  struct Task {
    uint64_t id = 0;
    Submission submission;
    std::unique_ptr<Machine> machine;
    uint64_t max_cycles = 0;
    uint64_t consumed_cycles = 0;
    std::chrono::steady_clock::time_point submitted_at;
    Completion completion;
    bool done = false;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Task*> queue;
    std::thread thread;
    uint64_t steals = 0;
  };
  struct Tenant {
    TenantBudget budget;
    uint64_t consumed_cycles = 0;
  };

  void WorkerLoop(size_t worker);
  Task* Dequeue(size_t worker);
  void Enqueue(size_t worker, Task* task);
  // Builds the task's machine (golden clone or image restore). Returns
  // false with the completion already filled on failure.
  bool Materialize(Task* task);
  // Runs one slice; true when the task retired.
  bool RunSlice(Task* task);
  void Retire(Task* task, ServeStatus status, std::string error);
  // Remaining simulated cycles the tenant may still burn.
  uint64_t TenantRemaining(const std::string& tenant);
  void ChargeTenant(const std::string& tenant, uint64_t cycles);

  ServeConfig config_;
  // Keep golden images and shared decode alive for the server's lifetime:
  // tenants come and go, the daemon persists.
  SharedDecodeRegistry::Pin decode_pin_;
  GoldenImageRegistry::Pin golden_pin_;

  std::mutex mu_;  // tasks_, tenants_, next_id_, accepting_, queued_
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable done_cv_;  // waiters sleep here
  std::map<uint64_t, std::unique_ptr<Task>> tasks_;
  std::map<std::string, Tenant> tenants_;
  uint64_t next_id_ = 1;
  size_t queued_ = 0;  // tasks enqueued but not yet retired
  bool accepting_ = true;
  bool stopping_ = false;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace rings

#endif  // SRC_SERVE_SERVER_H_

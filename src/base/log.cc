#include "src/base/log.h"

#include <cstdio>
#include <mutex>

namespace rings {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kNone};

// Guards the sink pointer and every emission through it (or stderr).
// Holding the lock across the sink call is deliberate: the sink owns
// captured state (test buffers) that a concurrent SetLogSink would
// otherwise free mid-invocation, and serialized emission keeps lines
// from concurrent fleet workers whole.
std::mutex g_sink_mu;
std::function<void(LogLevel, const std::string&)> g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[rings %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace rings

#include "src/base/log.h"

#include <cstdio>

namespace rings {

namespace {

LogLevel g_level = LogLevel::kNone;
std::function<void(LogLevel, const std::string&)> g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level) {
    return;
  }
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[rings %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace rings

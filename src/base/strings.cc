#include "src/base/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rings {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Hex(uint64_t value, int digits) {
  char buf[32];
  if (digits > 0) {
    std::snprintf(buf, sizeof(buf), "0x%0*llx", digits, static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  }
  return buf;
}

std::vector<std::string_view> SplitAny(std::string_view text, std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      break;
    }
    if (end > start) {
      pieces.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace rings

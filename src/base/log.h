// Minimal leveled logger. The simulator is a library first; logging is off
// by default and routed to a caller-provided sink so tests can capture it.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace rings {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global log configuration, shared by every Machine in the process and
// safe to use from concurrent fleet workers: the level is an atomic (so
// the RINGS_LOG fast path stays a single relaxed load) and the sink is
// read, replaced, and *invoked* under one mutex, which both keeps a
// concurrent SetLogSink from destroying a sink mid-call and serializes
// sink output so interleaved machines never shear a line.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void SetLogSink(std::function<void(LogLevel, const std::string&)> sink);
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: RINGS_LOG(kInfo) << "segno " << segno;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace rings

#define RINGS_LOG(level)                                  \
  if (::rings::GetLogLevel() <= ::rings::LogLevel::level) \
  ::rings::LogLine(::rings::LogLevel::level)

#endif  // SRC_BASE_LOG_H_

// Deterministic, seedable PRNG (xorshift128+) used by fuzz-style property
// tests and workload generators in the benchmark harness. We avoid
// std::mt19937 in hot benchmark loops and want cross-platform determinism.
#ifndef SRC_BASE_XORSHIFT_H_
#define SRC_BASE_XORSHIFT_H_

#include <cstdint>

namespace rings {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding so that nearby seeds give unrelated streams.
    for (auto& s : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  // Uniform value in [0, bound). `bound` must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Bernoulli trial with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  // Raw generator state, for checkpointing a stream mid-run (snapshot
  // images capture the fault injector's RNG so a restored machine draws
  // the exact sequence the live one would have).
  uint64_t state(int i) const { return state_[i]; }
  void set_state(uint64_t s0, uint64_t s1) {
    state_[0] = s0;
    state_[1] = s1;
  }

 private:
  uint64_t state_[2];
};

}  // namespace rings

#endif  // SRC_BASE_XORSHIFT_H_

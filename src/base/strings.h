// Small string formatting helpers shared by the assembler, tracer, and
// benchmark report printers.
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rings {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// "0x" + lowercase hex, zero-padded to `digits`.
std::string Hex(uint64_t value, int digits = 0);

// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAny(std::string_view text, std::string_view delims);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// ASCII lowercase copy.
std::string ToLower(std::string_view text);

}  // namespace rings

#endif  // SRC_BASE_STRINGS_H_

// Bit-field extraction and deposit helpers used by the ISA and memory
// format encoders. All machine words in the simulator are 64-bit; the
// original Honeywell hardware used 36-bit words (see DESIGN.md for the
// substitution rationale). Fields are described by (shift, width) pairs.
#ifndef SRC_BASE_BITFIELD_H_
#define SRC_BASE_BITFIELD_H_

#include <cstdint>

namespace rings {

// Returns a mask with `width` low bits set. `width` must be in [0, 64].
constexpr uint64_t BitMask(unsigned width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

// Extracts the `width`-bit field starting at bit `shift` of `word`.
constexpr uint64_t ExtractBits(uint64_t word, unsigned shift, unsigned width) {
  return (word >> shift) & BitMask(width);
}

// Returns `word` with the `width`-bit field at `shift` replaced by the low
// bits of `value`. Bits of `value` above `width` are discarded.
constexpr uint64_t DepositBits(uint64_t word, unsigned shift, unsigned width, uint64_t value) {
  const uint64_t mask = BitMask(width) << shift;
  return (word & ~mask) | ((value << shift) & mask);
}

// Sign-extends the low `width` bits of `value` to a signed 64-bit integer.
constexpr int64_t SignExtend(uint64_t value, unsigned width) {
  const uint64_t sign_bit = uint64_t{1} << (width - 1);
  const uint64_t masked = value & BitMask(width);
  return static_cast<int64_t>((masked ^ sign_bit)) - static_cast<int64_t>(sign_bit);
}

// Encodes a signed value into `width` bits (two's complement). The caller
// is responsible for ensuring the value fits; out-of-range values wrap.
constexpr uint64_t EncodeSigned(int64_t value, unsigned width) {
  return static_cast<uint64_t>(value) & BitMask(width);
}

// True if `value` is representable in a signed field of `width` bits.
constexpr bool FitsSigned(int64_t value, unsigned width) {
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

// True if `value` is representable in an unsigned field of `width` bits.
constexpr bool FitsUnsigned(uint64_t value, unsigned width) {
  return value <= BitMask(width);
}

}  // namespace rings

#endif  // SRC_BASE_BITFIELD_H_

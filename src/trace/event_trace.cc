#include "src/trace/event_trace.h"

#include "src/base/strings.h"

namespace rings {

namespace {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kInstruction:
      return "ins";
    case EventKind::kRingSwitch:
      return "ring";
    case EventKind::kTrap:
      return "trap";
    case EventKind::kTrapReturn:
      return "rett";
    case EventKind::kSupervisor:
      return "sup";
    case EventKind::kProcessSwitch:
      return "proc";
  }
  return "?";
}

}  // namespace

std::string TraceEvent::ToString() const {
  std::string out = StrFormat("[%8llu] %-4s r%u %u|%u", static_cast<unsigned long long>(cycle),
                              KindName(kind), ring, pc.segno, pc.wordno);
  if (kind == EventKind::kTrap) {
    out += " cause=" + std::string(TrapCauseName(cause));
  }
  if (kind == EventKind::kRingSwitch) {
    out += StrFormat(" -> r%u", new_ring);
  }
  if (!note.empty()) {
    out += " " + note;
  }
  return out;
}

void EventTrace::Record(TraceEvent event) {
  if (!enabled_) {
    return;
  }
  if (events_.size() >= capacity_) {
    events_.pop_front();
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> EventTrace::Filter(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<Ring> EventTrace::RingSwitchSequence() const {
  std::vector<Ring> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == EventKind::kRingSwitch) {
      out.push_back(e.new_ring);
    }
  }
  return out;
}

std::string EventTrace::Dump() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace rings

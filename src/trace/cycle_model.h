// The simulated-cycle cost model. The paper's performance argument is
// about *work the processor must do*: ring hardware adds "very small
// additional costs in hardware logic and processor speed", while a
// software implementation of rings pays a trap plus supervisor
// instructions on every crossing. We therefore account cycles for the
// events below and let benchmarks compare totals; the constants are
// deliberately simple and documented, and benches ablate them.
#ifndef SRC_TRACE_CYCLE_MODEL_H_
#define SRC_TRACE_CYCLE_MODEL_H_

#include <cstdint>

namespace rings {

struct CycleModel {
  // Base cost of decoding and executing any instruction.
  uint64_t instruction_base = 1;
  // Each word read or written in the core store.
  uint64_t memory_ref = 1;
  // Fetching an SDW pair from the descriptor segment (two word reads plus
  // the indexing). Paid only on a descriptor-cache miss.
  uint64_t sdw_fetch = 2;
  // The ring-validation comparisons themselves. The paper's design
  // integrates them into address translation at essentially zero marginal
  // cost; modelled as 0 by default so the overhead claim (C2) can be
  // tested by raising it.
  uint64_t access_check = 0;
  // A trap: save processor state, switch to ring 0, transfer to the fixed
  // supervisor location.
  uint64_t trap = 40;
  // RETT: restore processor state after a trap.
  uint64_t rett = 20;
  // One logical step of C++-bodied supervisor code (equivalent of a short
  // instruction sequence; see DESIGN.md substitution notes).
  uint64_t supervisor_step = 4;
  // Start-I/O channel latency until the completion trap.
  uint64_t io_latency = 200;

  static CycleModel Default() { return CycleModel{}; }
};

}  // namespace rings

#endif  // SRC_TRACE_CYCLE_MODEL_H_

#include "src/trace/counters.h"

#include "src/base/strings.h"

namespace rings {

uint64_t Counters::TotalTraps() const {
  uint64_t total = 0;
  for (const uint64_t n : traps) {
    total += n;
  }
  return total;
}

Counters Counters::Since(const Counters& earlier) const {
  Counters d;
  ForEachField([this, &earlier, &d](const char*, uint64_t Counters::* member, bool) {
    d.*member = this->*member - earlier.*member;
  });
  for (size_t i = 0; i < traps.size(); ++i) {
    d.traps[i] = traps[i] - earlier.traps[i];
  }
  return d;
}

void Counters::Accumulate(const Counters& other) {
  ForEachField([this, &other](const char*, uint64_t Counters::* member, bool) {
    this->*member += other.*member;
  });
  for (size_t i = 0; i < traps.size(); ++i) {
    traps[i] += other.traps[i];
  }
}

std::string Counters::ToString() const {
  std::string out = StrFormat(
      "instructions=%llu reads=%llu writes=%llu sdw_fetches=%llu sdw_hits=%llu checks=%llu "
      "traps=%llu",
      static_cast<unsigned long long>(instructions), static_cast<unsigned long long>(memory_reads),
      static_cast<unsigned long long>(memory_writes),
      static_cast<unsigned long long>(sdw_fetches),
      static_cast<unsigned long long>(sdw_cache_hits),
      static_cast<unsigned long long>(TotalChecks()),
      static_cast<unsigned long long>(TotalTraps()));
  if (verdict_hits + verdict_misses + insn_cache_hits + insn_cache_misses != 0) {
    out += StrFormat(" verdict_hits=%llu verdict_misses=%llu insn_hits=%llu insn_misses=%llu",
                     static_cast<unsigned long long>(verdict_hits),
                     static_cast<unsigned long long>(verdict_misses),
                     static_cast<unsigned long long>(insn_cache_hits),
                     static_cast<unsigned long long>(insn_cache_misses));
  }
  if (tlb_hits + tlb_misses != 0) {
    out += StrFormat(" tlb_hits=%llu tlb_misses=%llu",
                     static_cast<unsigned long long>(tlb_hits),
                     static_cast<unsigned long long>(tlb_misses));
  }
  if (block_builds + block_hits + block_ops != 0) {
    out += StrFormat(" block_builds=%llu block_hits=%llu block_ops=%llu block_bailouts=%llu",
                     static_cast<unsigned long long>(block_builds),
                     static_cast<unsigned long long>(block_hits),
                     static_cast<unsigned long long>(block_ops),
                     static_cast<unsigned long long>(block_bailouts));
  }
  for (size_t i = 0; i < traps.size(); ++i) {
    if (traps[i] != 0) {
      out += StrFormat(" %s=%llu", std::string(TrapCauseName(static_cast<TrapCause>(i))).c_str(),
                       static_cast<unsigned long long>(traps[i]));
    }
  }
  return out;
}

}  // namespace rings

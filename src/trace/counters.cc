#include "src/trace/counters.h"

#include "src/base/strings.h"

namespace rings {

uint64_t Counters::TotalTraps() const {
  uint64_t total = 0;
  for (const uint64_t n : traps) {
    total += n;
  }
  return total;
}

Counters Counters::Since(const Counters& earlier) const {
  Counters d;
  d.instructions = instructions - earlier.instructions;
  d.memory_reads = memory_reads - earlier.memory_reads;
  d.memory_writes = memory_writes - earlier.memory_writes;
  d.sdw_fetches = sdw_fetches - earlier.sdw_fetches;
  d.sdw_cache_hits = sdw_cache_hits - earlier.sdw_cache_hits;
  d.indirect_words = indirect_words - earlier.indirect_words;
  d.page_walks = page_walks - earlier.page_walks;
  d.pages_supplied = pages_supplied - earlier.pages_supplied;
  d.links_snapped = links_snapped - earlier.links_snapped;
  d.checks_fetch = checks_fetch - earlier.checks_fetch;
  d.checks_read = checks_read - earlier.checks_read;
  d.checks_write = checks_write - earlier.checks_write;
  d.checks_indirect = checks_indirect - earlier.checks_indirect;
  d.checks_transfer = checks_transfer - earlier.checks_transfer;
  d.checks_call = checks_call - earlier.checks_call;
  d.checks_return = checks_return - earlier.checks_return;
  d.calls_same_ring = calls_same_ring - earlier.calls_same_ring;
  d.calls_downward = calls_downward - earlier.calls_downward;
  d.returns_same_ring = returns_same_ring - earlier.returns_same_ring;
  d.returns_upward = returns_upward - earlier.returns_upward;
  d.supervisor_steps = supervisor_steps - earlier.supervisor_steps;
  d.upward_calls_emulated = upward_calls_emulated - earlier.upward_calls_emulated;
  d.downward_returns_emulated = downward_returns_emulated - earlier.downward_returns_emulated;
  d.argument_words_copied = argument_words_copied - earlier.argument_words_copied;
  d.verdict_hits = verdict_hits - earlier.verdict_hits;
  d.verdict_misses = verdict_misses - earlier.verdict_misses;
  d.verdict_invalidations = verdict_invalidations - earlier.verdict_invalidations;
  d.insn_cache_hits = insn_cache_hits - earlier.insn_cache_hits;
  d.insn_cache_misses = insn_cache_misses - earlier.insn_cache_misses;
  d.insn_cache_invalidations = insn_cache_invalidations - earlier.insn_cache_invalidations;
  d.tlb_hits = tlb_hits - earlier.tlb_hits;
  d.tlb_misses = tlb_misses - earlier.tlb_misses;
  d.tlb_invalidations = tlb_invalidations - earlier.tlb_invalidations;
  d.block_builds = block_builds - earlier.block_builds;
  d.block_hits = block_hits - earlier.block_hits;
  d.block_ops = block_ops - earlier.block_ops;
  d.block_bailouts = block_bailouts - earlier.block_bailouts;
  d.block_invalidations = block_invalidations - earlier.block_invalidations;
  d.sdw_recoveries = sdw_recoveries - earlier.sdw_recoveries;
  d.spurious_pages_ignored = spurious_pages_ignored - earlier.spurious_pages_ignored;
  d.machine_faults = machine_faults - earlier.machine_faults;
  d.trap_storm_kills = trap_storm_kills - earlier.trap_storm_kills;
  d.double_faults = double_faults - earlier.double_faults;
  for (size_t i = 0; i < traps.size(); ++i) {
    d.traps[i] = traps[i] - earlier.traps[i];
  }
  return d;
}

void Counters::Accumulate(const Counters& other) {
  ForEachField([this, &other](const char*, uint64_t Counters::* member, bool) {
    this->*member += other.*member;
  });
  for (size_t i = 0; i < traps.size(); ++i) {
    traps[i] += other.traps[i];
  }
}

std::string Counters::ToString() const {
  std::string out = StrFormat(
      "instructions=%llu reads=%llu writes=%llu sdw_fetches=%llu sdw_hits=%llu checks=%llu "
      "traps=%llu",
      static_cast<unsigned long long>(instructions), static_cast<unsigned long long>(memory_reads),
      static_cast<unsigned long long>(memory_writes),
      static_cast<unsigned long long>(sdw_fetches),
      static_cast<unsigned long long>(sdw_cache_hits),
      static_cast<unsigned long long>(TotalChecks()),
      static_cast<unsigned long long>(TotalTraps()));
  if (verdict_hits + verdict_misses + insn_cache_hits + insn_cache_misses != 0) {
    out += StrFormat(" verdict_hits=%llu verdict_misses=%llu insn_hits=%llu insn_misses=%llu",
                     static_cast<unsigned long long>(verdict_hits),
                     static_cast<unsigned long long>(verdict_misses),
                     static_cast<unsigned long long>(insn_cache_hits),
                     static_cast<unsigned long long>(insn_cache_misses));
  }
  if (tlb_hits + tlb_misses != 0) {
    out += StrFormat(" tlb_hits=%llu tlb_misses=%llu",
                     static_cast<unsigned long long>(tlb_hits),
                     static_cast<unsigned long long>(tlb_misses));
  }
  if (block_builds + block_hits + block_ops != 0) {
    out += StrFormat(" block_builds=%llu block_hits=%llu block_ops=%llu block_bailouts=%llu",
                     static_cast<unsigned long long>(block_builds),
                     static_cast<unsigned long long>(block_hits),
                     static_cast<unsigned long long>(block_ops),
                     static_cast<unsigned long long>(block_bailouts));
  }
  for (size_t i = 0; i < traps.size(); ++i) {
    if (traps[i] != 0) {
      out += StrFormat(" %s=%llu", std::string(TrapCauseName(static_cast<TrapCause>(i))).c_str(),
                       static_cast<unsigned long long>(traps[i]));
    }
  }
  return out;
}

}  // namespace rings

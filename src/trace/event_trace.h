// Optional execution trace: a bounded ring buffer of events (instruction
// retirements, ring switches, traps) that tests and examples can inspect
// or dump. Disabled by default; enabling costs one branch per event.
#ifndef SRC_TRACE_EVENT_TRACE_H_
#define SRC_TRACE_EVENT_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/core/ring.h"
#include "src/core/trap_cause.h"
#include "src/mem/word.h"

namespace rings {

enum class EventKind : uint8_t {
  kInstruction,
  kRingSwitch,
  kTrap,
  kTrapReturn,
  kSupervisor,
  kProcessSwitch,
};

struct TraceEvent {
  EventKind kind = EventKind::kInstruction;
  uint64_t cycle = 0;
  Ring ring = 0;
  SegAddr pc{};
  TrapCause cause = TrapCause::kNone;  // kTrap events
  Ring new_ring = 0;                   // kRingSwitch events
  std::string note;                    // kSupervisor / kProcessSwitch events

  std::string ToString() const;
};

class EventTrace {
 public:
  explicit EventTrace(size_t capacity = 4096) : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(TraceEvent event);
  void Clear() { events_.clear(); }

  const std::deque<TraceEvent>& events() const { return events_; }

  // All events of one kind, in order.
  std::vector<TraceEvent> Filter(EventKind kind) const;

  // Convenience for tests: the sequence of rings entered via kRingSwitch.
  std::vector<Ring> RingSwitchSequence() const;

  std::string Dump() const;

  size_t capacity() const { return capacity_; }

  // Snapshot support: replaces the buffered events and the enable flag
  // (the event sequence feeds the machine fingerprint when enabled, so a
  // restored machine must resume with the identical buffer). Events past
  // this trace's capacity are trimmed from the front, matching what
  // Record would have retained.
  void Restore(bool enabled, std::deque<TraceEvent> events) {
    enabled_ = enabled;
    events_ = std::move(events);
    while (events_.size() > capacity_) {
      events_.pop_front();
    }
  }

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::deque<TraceEvent> events_;
};

}  // namespace rings

#endif  // SRC_TRACE_EVENT_TRACE_H_

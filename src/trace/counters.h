// Event counters kept by the processor and supervisor. These are the raw
// series behind every benchmark table in EXPERIMENTS.md: instruction
// counts, memory references, descriptor fetches, the number of each kind
// of hardware validation performed, and traps by cause.
#ifndef SRC_TRACE_COUNTERS_H_
#define SRC_TRACE_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/trap_cause.h"

namespace rings {

struct Counters {
  uint64_t instructions = 0;
  uint64_t memory_reads = 0;
  uint64_t memory_writes = 0;
  uint64_t sdw_fetches = 0;      // descriptor-segment walks (cache misses)
  uint64_t sdw_cache_hits = 0;
  uint64_t indirect_words = 0;   // indirect words processed in EA formation
  uint64_t page_walks = 0;       // PTW fetches for paged segments
  uint64_t pages_supplied = 0;   // demand-zero pages installed by the supervisor
  uint64_t links_snapped = 0;    // dynamic links resolved on first reference

  // Hardware validations performed (Figures 4-8).
  uint64_t checks_fetch = 0;
  uint64_t checks_read = 0;
  uint64_t checks_write = 0;
  uint64_t checks_indirect = 0;
  uint64_t checks_transfer = 0;
  uint64_t checks_call = 0;
  uint64_t checks_return = 0;

  // CALL/RETURN outcomes.
  uint64_t calls_same_ring = 0;
  uint64_t calls_downward = 0;
  uint64_t returns_same_ring = 0;
  uint64_t returns_upward = 0;

  // Supervisor-side work.
  uint64_t supervisor_steps = 0;
  uint64_t upward_calls_emulated = 0;
  uint64_t downward_returns_emulated = 0;
  uint64_t argument_words_copied = 0;

  // Host-side fast path (see DESIGN.md, "Address-formation fast path").
  // These describe host work saved, not simulated events: simulated
  // cycles and the counters above are bit-identical with the fast path
  // on or off.
  uint64_t verdict_hits = 0;
  uint64_t verdict_misses = 0;          // slow-path reference that filled a verdict
  uint64_t verdict_invalidations = 0;   // slots dropped (SDW edits, evictions, drops)
  uint64_t insn_cache_hits = 0;
  uint64_t insn_cache_misses = 0;       // slow-path fetch that cached its decode
  uint64_t insn_cache_invalidations = 0;
  uint64_t tlb_hits = 0;                // page walks answered by the software TLB
  uint64_t tlb_misses = 0;              // walks that read the PTW and filled the TLB
  uint64_t tlb_invalidations = 0;       // invalidation events (stores, SDW edits, flushes)
  uint64_t block_builds = 0;            // superblocks formed from cached decodes
  uint64_t block_hits = 0;              // dispatches served by a cached block
  uint64_t block_ops = 0;               // instructions executed inside blocks
  uint64_t block_bailouts = 0;          // mid-block exits to the per-instruction path
  uint64_t block_invalidations = 0;     // blocks retired (stores, SDW edits, drops, flushes)

  // Hardened trap paths (see DESIGN.md, "Fault model & recovery").
  uint64_t sdw_recoveries = 0;         // corrupted cached SDW detected, flushed, resumed
  uint64_t spurious_pages_ignored = 0; // missing-page trap with the page already present
  uint64_t machine_faults = 0;         // physical-store faults converted to process kills
  uint64_t trap_storm_kills = 0;       // watchdog terminations
  uint64_t double_faults = 0;          // traps raised while servicing a trap

  std::array<uint64_t, static_cast<size_t>(TrapCause::kNumCauses)> traps{};

  uint64_t TotalChecks() const {
    return checks_fetch + checks_read + checks_write + checks_indirect + checks_transfer +
           checks_call + checks_return;
  }
  uint64_t TotalTraps() const;
  uint64_t TrapCount(TrapCause cause) const { return traps[static_cast<size_t>(cause)]; }
  void CountTrap(TrapCause cause) { ++traps[static_cast<size_t>(cause)]; }

  // Per-field difference (this - other); used to attribute costs to a
  // region of execution.
  Counters Since(const Counters& earlier) const;

  std::string ToString() const;
};

}  // namespace rings

#endif  // SRC_TRACE_COUNTERS_H_

// Event counters kept by the processor and supervisor. These are the raw
// series behind every benchmark table in EXPERIMENTS.md: instruction
// counts, memory references, descriptor fetches, the number of each kind
// of hardware validation performed, and traps by cause.
#ifndef SRC_TRACE_COUNTERS_H_
#define SRC_TRACE_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/trap_cause.h"

namespace rings {

struct Counters {
  uint64_t instructions = 0;
  uint64_t memory_reads = 0;
  uint64_t memory_writes = 0;
  uint64_t sdw_fetches = 0;      // descriptor-segment walks (cache misses)
  uint64_t sdw_cache_hits = 0;
  uint64_t indirect_words = 0;   // indirect words processed in EA formation
  uint64_t page_walks = 0;       // PTW fetches for paged segments
  uint64_t pages_supplied = 0;   // demand-zero pages installed by the supervisor
  uint64_t links_snapped = 0;    // dynamic links resolved on first reference

  // Hardware validations performed (Figures 4-8).
  uint64_t checks_fetch = 0;
  uint64_t checks_read = 0;
  uint64_t checks_write = 0;
  uint64_t checks_indirect = 0;
  uint64_t checks_transfer = 0;
  uint64_t checks_call = 0;
  uint64_t checks_return = 0;

  // CALL/RETURN outcomes.
  uint64_t calls_same_ring = 0;
  uint64_t calls_downward = 0;
  uint64_t returns_same_ring = 0;
  uint64_t returns_upward = 0;

  // Supervisor-side work.
  uint64_t supervisor_steps = 0;
  uint64_t upward_calls_emulated = 0;
  uint64_t downward_returns_emulated = 0;
  uint64_t argument_words_copied = 0;

  // Host-side fast path (see DESIGN.md, "Address-formation fast path").
  // These describe host work saved, not simulated events: simulated
  // cycles and the counters above are bit-identical with the fast path
  // on or off.
  uint64_t verdict_hits = 0;
  uint64_t verdict_misses = 0;          // slow-path reference that filled a verdict
  uint64_t verdict_invalidations = 0;   // slots dropped (SDW edits, evictions, drops)
  uint64_t insn_cache_hits = 0;
  uint64_t insn_cache_misses = 0;       // slow-path fetch that cached its decode
  uint64_t insn_cache_invalidations = 0;
  uint64_t tlb_hits = 0;                // page walks answered by the software TLB
  uint64_t tlb_misses = 0;              // walks that read the PTW and filled the TLB
  uint64_t tlb_invalidations = 0;       // invalidation events (stores, SDW edits, flushes)
  uint64_t block_builds = 0;            // superblocks formed from cached decodes
  uint64_t block_hits = 0;              // dispatches served by a cached block
  uint64_t block_ops = 0;               // instructions executed inside blocks
  uint64_t block_bailouts = 0;          // mid-block exits to the per-instruction path
  uint64_t block_invalidations = 0;     // blocks retired (stores, SDW edits, drops, flushes)
  uint64_t chain_links = 0;             // successor links patched into blocks
  uint64_t chain_follows = 0;           // dispatches served by following a patched link
  uint64_t crossing_hits = 0;           // CALL/RETURNs resolved by the crossing cache
  uint64_t crossing_misses = 0;         // CALL/RETURNs that re-resolved (and refilled a site)
  uint64_t shared_decode_hits = 0;      // slow-path fetches decoded from the shared image
  uint64_t shared_decode_misses = 0;    // image attached but the stored word diverged (CoW)
  uint64_t shared_decode_builds = 0;    // decode images this machine built (vs. shared)

  // Hardened trap paths (see DESIGN.md, "Fault model & recovery").
  uint64_t sdw_recoveries = 0;         // corrupted cached SDW detected, flushed, resumed
  uint64_t spurious_pages_ignored = 0; // missing-page trap with the page already present
  uint64_t machine_faults = 0;         // physical-store faults converted to process kills
  uint64_t trap_storm_kills = 0;       // watchdog terminations
  uint64_t double_faults = 0;          // traps raised while servicing a trap

  std::array<uint64_t, static_cast<size_t>(TrapCause::kNumCauses)> traps{};

  uint64_t TotalChecks() const {
    return checks_fetch + checks_read + checks_write + checks_indirect + checks_transfer +
           checks_call + checks_return;
  }
  uint64_t TotalTraps() const;
  uint64_t TrapCount(TrapCause cause) const { return traps[static_cast<size_t>(cause)]; }
  void CountTrap(TrapCause cause) { ++traps[static_cast<size_t>(cause)]; }

  // Per-field difference (this - other); used to attribute costs to a
  // region of execution.
  Counters Since(const Counters& earlier) const;

  // Adds every counter (including the traps array) of `other` into this
  // one. This is the fleet-level merge: summing each machine's counters
  // gives the aggregate simulated work of the whole fleet.
  void Accumulate(const Counters& other);

  // Visits every scalar counter as fn(name, member_pointer, host_only).
  // host_only marks the host-side fast-path statistics (verdict_* /
  // insn_cache_* / tlb_* / block_* / chain_* / crossing_* /
  // shared_decode_*): they describe host work saved, not simulated
  // events, and are the only counters excluded from differential
  // fingerprints. The traps array is architectural and is visited by
  // callers directly.
  template <typename Fn>
  static void ForEachField(Fn&& fn) {
    auto arch = [&fn](const char* name, uint64_t Counters::* member) {
      fn(name, member, /*host_only=*/false);
    };
    auto host = [&fn](const char* name, uint64_t Counters::* member) {
      fn(name, member, /*host_only=*/true);
    };
    arch("instructions", &Counters::instructions);
    arch("memory_reads", &Counters::memory_reads);
    arch("memory_writes", &Counters::memory_writes);
    arch("sdw_fetches", &Counters::sdw_fetches);
    arch("sdw_cache_hits", &Counters::sdw_cache_hits);
    arch("indirect_words", &Counters::indirect_words);
    arch("page_walks", &Counters::page_walks);
    arch("pages_supplied", &Counters::pages_supplied);
    arch("links_snapped", &Counters::links_snapped);
    arch("checks_fetch", &Counters::checks_fetch);
    arch("checks_read", &Counters::checks_read);
    arch("checks_write", &Counters::checks_write);
    arch("checks_indirect", &Counters::checks_indirect);
    arch("checks_transfer", &Counters::checks_transfer);
    arch("checks_call", &Counters::checks_call);
    arch("checks_return", &Counters::checks_return);
    arch("calls_same_ring", &Counters::calls_same_ring);
    arch("calls_downward", &Counters::calls_downward);
    arch("returns_same_ring", &Counters::returns_same_ring);
    arch("returns_upward", &Counters::returns_upward);
    arch("supervisor_steps", &Counters::supervisor_steps);
    arch("upward_calls_emulated", &Counters::upward_calls_emulated);
    arch("downward_returns_emulated", &Counters::downward_returns_emulated);
    arch("argument_words_copied", &Counters::argument_words_copied);
    host("verdict_hits", &Counters::verdict_hits);
    host("verdict_misses", &Counters::verdict_misses);
    host("verdict_invalidations", &Counters::verdict_invalidations);
    host("insn_cache_hits", &Counters::insn_cache_hits);
    host("insn_cache_misses", &Counters::insn_cache_misses);
    host("insn_cache_invalidations", &Counters::insn_cache_invalidations);
    host("tlb_hits", &Counters::tlb_hits);
    host("tlb_misses", &Counters::tlb_misses);
    host("tlb_invalidations", &Counters::tlb_invalidations);
    host("block_builds", &Counters::block_builds);
    host("block_hits", &Counters::block_hits);
    host("block_ops", &Counters::block_ops);
    host("block_bailouts", &Counters::block_bailouts);
    host("block_invalidations", &Counters::block_invalidations);
    host("chain_links", &Counters::chain_links);
    host("chain_follows", &Counters::chain_follows);
    host("crossing_hits", &Counters::crossing_hits);
    host("crossing_misses", &Counters::crossing_misses);
    host("shared_decode_hits", &Counters::shared_decode_hits);
    host("shared_decode_misses", &Counters::shared_decode_misses);
    host("shared_decode_builds", &Counters::shared_decode_builds);
    arch("sdw_recoveries", &Counters::sdw_recoveries);
    arch("spurious_pages_ignored", &Counters::spurious_pages_ignored);
    arch("machine_faults", &Counters::machine_faults);
    arch("trap_storm_kills", &Counters::trap_storm_kills);
    arch("double_faults", &Counters::double_faults);
  }

  std::string ToString() const;
};

}  // namespace rings

#endif  // SRC_TRACE_COUNTERS_H_

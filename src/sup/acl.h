// Access control lists. "The users that are permitted to access each
// segment are named by an access control list associated with each
// segment.... The gate list and the numbers specifying the read, write,
// and execute brackets and gate extension in each SDW all come from the
// access control list entry which permitted the process to include the
// corresponding segment in its virtual memory."
#ifndef SRC_SUP_ACL_H_
#define SRC_SUP_ACL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/brackets.h"

namespace rings {

inline constexpr char kAclWildcard[] = "*";

struct AclEntry {
  std::string user;  // user name, or "*" matching any user
  SegmentAccess access;
};

class AccessControlList {
 public:
  AccessControlList() = default;
  AccessControlList(std::initializer_list<AclEntry> entries) : entries_(entries) {}

  // First matching entry wins (specific entries should precede the
  // wildcard).
  std::optional<SegmentAccess> Lookup(const std::string& user) const;

  void Add(AclEntry entry) { entries_.push_back(std::move(entry)); }
  // Replaces the entry for `user` (or adds one). Returns false if the
  // entry is malformed (ill-formed brackets).
  bool Set(const std::string& user, const SegmentAccess& access);
  void Remove(const std::string& user);

  bool empty() const { return entries_.empty(); }
  const std::vector<AclEntry>& entries() const { return entries_; }

  // Grants `access` to every user.
  static AccessControlList Public(const SegmentAccess& access) {
    return AccessControlList{{kAclWildcard, access}};
  }
  static AccessControlList ForUser(const std::string& user, const SegmentAccess& access) {
    return AccessControlList{{user, access}};
  }

 private:
  std::vector<AclEntry> entries_;
};

}  // namespace rings

#endif  // SRC_SUP_ACL_H_

#include "src/sup/audit.h"

#include <map>

#include "src/base/strings.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/page_table.h"

namespace rings {

namespace {

void Add(std::vector<AuditFinding>* findings, AuditSeverity severity, int pid, Segno segno,
         std::string message) {
  findings->push_back(AuditFinding{severity, pid, segno, std::move(message)});
}

struct Extent {
  AbsAddr base = 0;
  uint64_t words = 0;

  bool Overlaps(const Extent& other) const {
    return base < other.base + other.words && other.base < base + words;
  }
};

}  // namespace

std::string AuditFinding::ToString() const {
  return StrFormat("[%s] pid=%d segno=%u: %s",
                   severity == AuditSeverity::kError ? "ERROR" : "warn", pid, segno,
                   message.c_str());
}

std::vector<AuditFinding> AuditProtectionState(PhysicalMemory* memory,
                                               const SegmentRegistry& registry,
                                               const Supervisor& supervisor) {
  std::vector<AuditFinding> findings;

  // Collect descriptor-segment extents (to detect exposure) and per-
  // process stack extents (to detect sharing).
  std::vector<Extent> descriptor_extents;
  std::map<int, std::vector<Extent>> stack_extents;
  for (const auto& process : supervisor.processes()) {
    descriptor_extents.push_back(
        Extent{process->dbr.base,
               static_cast<uint64_t>(process->dbr.bound) * kSdwPairWords});
  }

  for (const auto& process : supervisor.processes()) {
    const int pid = process->pid;
    DescriptorSegment dseg(memory, process->dbr);
    for (Segno s = 0; s < process->dbr.bound; ++s) {
      const auto sdw_opt = dseg.Fetch(s);
      if (!sdw_opt.has_value() || !sdw_opt->present) {
        continue;
      }
      const Sdw& sdw = *sdw_opt;

      // Structural validity.
      if (const auto problem = ValidateSdw(sdw); problem.has_value()) {
        Add(&findings, AuditSeverity::kError, pid, s, "malformed SDW: " + *problem);
        continue;
      }

      // Stack-segment discipline.
      if (s >= kStackBaseSegno && s < kStackBaseSegno + kRingCount) {
        const Ring ring = static_cast<Ring>(s - kStackBaseSegno);
        if (sdw.access.flags.execute) {
          Add(&findings, AuditSeverity::kError, pid, s, "stack segment is executable");
        }
        if (sdw.access.brackets.r1 != ring || sdw.access.brackets.r2 != ring) {
          Add(&findings, AuditSeverity::kError, pid, s,
              StrFormat("stack bracket %s does not end at ring %u",
                        sdw.access.brackets.ToString().c_str(), ring));
        }
        if (!sdw.paged) {
          stack_extents[pid].push_back(Extent{sdw.base, sdw.bound});
        }
      }

      // Descriptor-segment exposure: any SDW whose storage overlaps a
      // descriptor segment hands out the keys to the machine.
      const Extent extent{sdw.base, sdw.paged ? PageCount(sdw.bound) : sdw.bound};
      for (const Extent& dext : descriptor_extents) {
        if (extent.Overlaps(dext)) {
          Add(&findings, AuditSeverity::kError, pid, s,
              "SDW exposes descriptor-segment storage");
          break;
        }
      }

      // Gate sanity.
      const Brackets& b = sdw.access.brackets;
      if (b.r3 > b.r2 && sdw.access.gate_count == 0) {
        Add(&findings, AuditSeverity::kWarning, pid, s,
            "gate extension declared but the segment has no gates");
      }
      if (sdw.access.flags.write && sdw.access.flags.execute) {
        Add(&findings, AuditSeverity::kWarning, pid, s,
            StrFormat("segment both writable and executable (overlap at ring %u)", b.r1));
      }
    }
  }

  // Sole-occupant property: "although a given ring may simultaneously
  // protect different subsystems in different processes, each ring of
  // each process can protect only one subsystem at a time." Two gated
  // subsystems sharing a user ring of one process can call each other
  // freely, which usually defeats the point — flag it.
  for (const auto& process : supervisor.processes()) {
    DescriptorSegment dseg(memory, process->dbr);
    std::map<Ring, int> gated_per_ring;
    for (Segno s = kStackBaseSegno + kRingCount; s < process->dbr.bound; ++s) {
      const auto sdw = dseg.Fetch(s);
      if (!sdw.has_value() || !sdw->present || !sdw->access.flags.execute ||
          sdw->access.gate_count == 0) {
        continue;
      }
      const Brackets& b = sdw->access.brackets;
      // Only user-ring protected subsystems (the supervisor legitimately
      // layers rings 0 and 1).
      if (b.r2 >= 2 && b.r3 > b.r2) {
        ++gated_per_ring[b.r2];
      }
    }
    for (const auto& [ring, count] : gated_per_ring) {
      if (count > 1) {
        Add(&findings, AuditSeverity::kWarning, process->pid, 0,
            StrFormat("ring %u hosts %d gated subsystems (sole-occupant property violated)",
                      ring, count));
      }
    }
  }

  // Stack privacy across processes.
  const auto& processes = supervisor.processes();
  for (size_t i = 0; i < processes.size(); ++i) {
    for (size_t j = i + 1; j < processes.size(); ++j) {
      for (const Extent& a : stack_extents[processes[i]->pid]) {
        for (const Extent& b : stack_extents[processes[j]->pid]) {
          if (a.Overlaps(b)) {
            Add(&findings, AuditSeverity::kError, processes[i]->pid, 0,
                StrFormat("stack storage shared with pid %d", processes[j]->pid));
          }
        }
      }
    }
  }

  // Registry ACL sanity.
  for (const RegisteredSegment& seg : registry.segments()) {
    for (const AclEntry& entry : seg.acl.entries()) {
      if (!entry.access.brackets.IsWellFormed()) {
        Add(&findings, AuditSeverity::kError, 0, seg.segno,
            StrFormat("ACL entry for '%s' on %s has malformed brackets", entry.user.c_str(),
                      seg.name.c_str()));
      }
    }
    if (seg.gate_count > seg.bound) {
      Add(&findings, AuditSeverity::kError, 0, seg.segno,
          StrFormat("segment %s declares more gates than words", seg.name.c_str()));
    }
  }

  return findings;
}

bool AuditClean(const std::vector<AuditFinding>& findings) {
  for (const AuditFinding& f : findings) {
    if (f.severity == AuditSeverity::kError) {
      return false;
    }
  }
  return true;
}

}  // namespace rings

#include "src/sup/acl.h"

namespace rings {

std::optional<SegmentAccess> AccessControlList::Lookup(const std::string& user) const {
  for (const AclEntry& entry : entries_) {
    if (entry.user == user || entry.user == kAclWildcard) {
      return entry.access;
    }
  }
  return std::nullopt;
}

bool AccessControlList::Set(const std::string& user, const SegmentAccess& access) {
  if (!access.brackets.IsWellFormed()) {
    return false;
  }
  for (AclEntry& entry : entries_) {
    if (entry.user == user) {
      entry.access = access;
      return true;
    }
  }
  entries_.insert(entries_.begin(), AclEntry{user, access});
  return true;
}

void AccessControlList::Remove(const std::string& user) {
  std::erase_if(entries_, [&user](const AclEntry& e) { return e.user == user; });
}

}  // namespace rings

// Protection-configuration auditor. The paper's third criterion for
// access-control mechanisms is simplicity: "for a set of access control
// mechanisms to be accepted there must be confidence that no way exists
// to circumvent it." The ring model is simple enough that a machine's
// entire protection state can be checked mechanically — this module does
// so, verifying every invariant the supervisor is supposed to maintain:
//
//   * every present SDW is well-formed (R1 <= R2 <= R3, gate count within
//     bound, bound within the architectural maximum);
//   * stack segment n of each process has read/write brackets ending at
//     ring n and is not executable;
//   * stack storage is private: no two processes share stack frames;
//   * no process's virtual memory exposes its own (or any) descriptor
//     segment's storage through a writable SDW — a process that can write
//     SDWs owns the machine;
//   * segments with a nonempty gate extension actually declare gates;
//   * writable-and-executable segments are flagged (expressible only with
//     the degenerate overlap at R1, but worth eyes on).
//
// Returns findings rather than aborting, so it can run as a health check
// inside tests, tools, and long-lived simulations.
#ifndef SRC_SUP_AUDIT_H_
#define SRC_SUP_AUDIT_H_

#include <string>
#include <vector>

#include "src/sup/segment_registry.h"
#include "src/sup/supervisor.h"

namespace rings {

enum class AuditSeverity {
  kError,    // an exploitable or corrupt configuration
  kWarning,  // legal but suspicious
};

struct AuditFinding {
  AuditSeverity severity = AuditSeverity::kError;
  int pid = 0;          // 0 = system-wide
  Segno segno = 0;
  std::string message;

  std::string ToString() const;
};

// Audits every process's virtual memory plus the registry. `memory` must
// be the store the processes' DBRs refer to.
std::vector<AuditFinding> AuditProtectionState(PhysicalMemory* memory,
                                               const SegmentRegistry& registry,
                                               const Supervisor& supervisor);

// Convenience: true when no kError findings exist.
bool AuditClean(const std::vector<AuditFinding>& findings);

}  // namespace rings

#endif  // SRC_SUP_AUDIT_H_

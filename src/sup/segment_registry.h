// The system-wide registry of on-line segments. "On-line storage is
// organized as a collection of segments of information. A process can
// reference a segment of on-line storage only if the segment is first
// added to the virtual memory of the process" — that addition (initiation)
// happens in src/sup/supervisor.cc; this registry owns the segments'
// storage, names, gate counts, and access control lists.
//
// Segment numbering: each registered segment is assigned a global segment
// number (>= kFirstSharedSegno) used identically in every process's
// descriptor segment, so a single segment can be part of several virtual
// memories at the same time while pointer words (.its) resolve uniformly.
// (Real Multics used per-process numbering with dynamic linking; the
// global numbering is a documented simplification that does not affect the
// access-control mechanisms under study.)
#ifndef SRC_SUP_SEGMENT_REGISTRY_H_
#define SRC_SUP_SEGMENT_REGISTRY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/kasm/program.h"
#include "src/mem/physical_memory.h"
#include "src/sup/acl.h"

namespace rings {

// An unsnapped dynamic link: the symbolic target of a .link word, resolved
// by the supervisor on first reference.
struct LinkTarget {
  std::string segment;
  std::string symbol;  // empty = use offset directly
  int64_t offset = 0;
  Ring ring = 0;
  bool indirect = false;
};

struct RegisteredSegment {
  std::string name;
  Segno segno = 0;
  // Unpaged: address of word 0. Paged: address of the page table.
  AbsAddr base = 0;
  bool paged = false;
  uint64_t bound = 0;
  uint32_t gate_count = 0;
  AccessControlList acl;
  std::map<std::string, Wordno> symbols;
  // Link table: index = the wordno field of the fault-tagged word.
  std::vector<LinkTarget> links;
};

class SegmentRegistry {
 public:
  explicit SegmentRegistry(PhysicalMemory* memory) : memory_(memory) {}

  // Creates a zero-filled data segment. Returns nullopt on exhaustion.
  std::optional<Segno> CreateSegment(const std::string& name, uint64_t words,
                                     AccessControlList acl);

  // Creates a segment initialized with `contents` (extra_zero additional
  // zero words appended).
  std::optional<Segno> CreateSegmentWithContents(const std::string& name,
                                                 const std::vector<Word>& contents,
                                                 uint64_t extra_zero, uint32_t gate_count,
                                                 AccessControlList acl);

  // Creates a PAGED segment of `words` addressable words. When `populate`
  // is true every page is allocated (zero-filled) up front; otherwise all
  // pages are absent and references fault until the supervisor's demand
  // paging supplies them. `contents`, if nonempty, is copied into the
  // (populated) leading pages.
  std::optional<Segno> CreatePagedSegment(const std::string& name, uint64_t words,
                                          AccessControlList acl, bool populate,
                                          const std::vector<Word>& contents = {});

  // Registers every segment of an assembled program, applying the access
  // control list found in `acls` (by segment name; a missing entry is an
  // error). Resolves all .its patches afterwards. Returns false (with
  // `error` filled) on failure.
  bool LoadProgram(const Program& program, const std::map<std::string, AccessControlList>& acls,
                   std::string* error);

  const RegisteredSegment* Find(const std::string& name) const;
  const RegisteredSegment* FindBySegno(Segno segno) const;
  RegisteredSegment* FindMutable(const std::string& name);
  RegisteredSegment* FindMutableBySegno(Segno segno);

  // Resolves "segment$symbol" or "segment" to (segno, wordno).
  std::optional<SegAddr> Resolve(const std::string& segment, const std::string& symbol) const;

  Segno next_segno() const { return next_segno_; }
  const std::vector<RegisteredSegment>& segments() const { return segments_; }

  // Snapshot support: replaces the registry wholesale (segment storage
  // itself lives in PhysicalMemory and is restored with the core image);
  // the by-name index is rebuilt from the restored table.
  void RestoreState(Segno next_segno, std::vector<RegisteredSegment> segments) {
    next_segno_ = next_segno;
    segments_ = std::move(segments);
    by_name_.clear();
    for (size_t i = 0; i < segments_.size(); ++i) {
      by_name_[segments_[i].name] = i;
    }
  }

 private:
  PhysicalMemory* memory_;
  Segno next_segno_ = 8;  // kFirstSharedSegno
  std::vector<RegisteredSegment> segments_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace rings

#endif  // SRC_SUP_SEGMENT_REGISTRY_H_

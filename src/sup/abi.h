// Software conventions (the ABI) between guest code and the supervisor.
#ifndef SRC_SUP_ABI_H_
#define SRC_SUP_ABI_H_

#include <cstdint>

#include "src/core/ring.h"
#include "src/mem/word.h"

namespace rings {

// Segment-number map. Segment numbers 0..7 of every process are its eight
// standard stack segments — the paper's simple selection rule "the segment
// number of the appropriate stack segment is the same as the new ring
// number", i.e. DBR.stack_base = 0. Shared (registry) segments are
// numbered from kFirstSharedSegno upward, identically in every process.
inline constexpr Segno kStackBaseSegno = 0;
inline constexpr Segno kFirstSharedSegno = 8;
inline constexpr Segno kDescriptorSegmentSlots = 512;

// Stack segment layout. Word 0 of each stack segment holds the offset of
// the next available stack area ("By convention, a fixed word of each
// stack segment can point to the beginning of the next available stack
// area"); frames start at kStackFrameStart.
inline constexpr Wordno kStackNextFreeWord = 0;
inline constexpr Wordno kStackFrameStart = 16;
inline constexpr uint64_t kStackSegmentWords = 4096;

// Argument-list format (Call and Return Revisited): the caller builds "an
// array of indirect words containing the addresses of the various
// arguments" and loads PR1 (the paper's PRa) with its address.
//   word 0          argument count k
//   words 1..k      indirect words addressing the arguments
//   words k+1..2k   argument lengths in words (used by the supervisor's
//                   upward-call copy-in/copy-out and by I/O services)
inline constexpr Wordno kArgListCountWord = 0;

// Supervisor service numbers (the operand of SVC, executed inside gate
// segments).
enum SvcNumber : int64_t {
  kSvcExit = 1,        // terminate the calling process; A = exit code
  kSvcTtyWrite = 2,    // write argument 0 (buffer) to the typewriter
  kSvcTtyRead = 3,     // read from the typewriter into argument 0
  kSvcGetRing = 4,     // A <- ring the gate was called from
  kSvcSetAcl = 5,      // A = segno, Q = packed access; caller-ring limited
  kSvcRegisterUser = 6,  // administrative service (restricted gate)
  kSvcCycleCount = 7,  // A <- low bits of the cycle counter
  kSvcMakeSegment = 8,  // create + initiate a segment: A = words,
                        // Q = packed access; A <- segno or -1
};

// Largest segment a process may request through kSvcMakeSegment.
inline constexpr uint64_t kMaxUserSegmentWords = 1 << 16;

// Packing for kSvcSetAcl's Q operand: flags and brackets.
//   bit 8 read | bit 7 write | bit 6 execute | bits 5..4.. : r1 r2 r3 (3
//   rings x 3 bits = bits 8..0 below flags)
inline constexpr Word PackAccessSpec(bool read, bool write, bool execute, Ring r1, Ring r2,
                                     Ring r3) {
  return (Word{read} << 11) | (Word{write} << 10) | (Word{execute} << 9) | (Word{r1} << 6) |
         (Word{r2} << 3) | Word{r3};
}

}  // namespace rings

#endif  // SRC_SUP_ABI_H_

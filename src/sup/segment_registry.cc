#include "src/sup/segment_registry.h"

#include "src/base/strings.h"
#include "src/isa/indirect_word.h"
#include "src/mem/page_table.h"

namespace rings {

std::optional<Segno> SegmentRegistry::CreateSegment(const std::string& name, uint64_t words,
                                                    AccessControlList acl) {
  return CreateSegmentWithContents(name, {}, words, 0, std::move(acl));
}

std::optional<Segno> SegmentRegistry::CreateSegmentWithContents(const std::string& name,
                                                                const std::vector<Word>& contents,
                                                                uint64_t extra_zero,
                                                                uint32_t gate_count,
                                                                AccessControlList acl) {
  if (by_name_.count(name) != 0) {
    return std::nullopt;
  }
  const uint64_t bound = contents.size() + extra_zero;
  if (bound > kMaxSegmentWords) {
    return std::nullopt;
  }
  // Zero-length segments still get one slot of backing store so that the
  // SDW base is meaningful.
  const auto base = memory_->Allocate(bound == 0 ? 1 : bound);
  if (!base.has_value()) {
    return std::nullopt;
  }
  for (size_t i = 0; i < contents.size(); ++i) {
    memory_->Write(*base + i, contents[i]);
  }
  for (uint64_t i = contents.size(); i < bound; ++i) {
    memory_->Write(*base + i, 0);
  }

  RegisteredSegment seg;
  seg.name = name;
  seg.segno = next_segno_++;
  seg.base = *base;
  seg.bound = bound;
  seg.gate_count = gate_count;
  seg.acl = std::move(acl);
  by_name_[name] = segments_.size();
  segments_.push_back(std::move(seg));
  return segments_.back().segno;
}

std::optional<Segno> SegmentRegistry::CreatePagedSegment(const std::string& name, uint64_t words,
                                                         AccessControlList acl, bool populate,
                                                         const std::vector<Word>& contents) {
  if (by_name_.count(name) != 0 || words > kMaxSegmentWords || contents.size() > words) {
    return std::nullopt;
  }
  const uint64_t pages = PageCount(words == 0 ? 1 : words);
  const auto table = AllocatePageTable(memory_, pages);
  if (!table.has_value()) {
    return std::nullopt;
  }
  if (populate || !contents.empty()) {
    const uint64_t needed = populate ? pages : PageCount(contents.size());
    for (uint64_t p = 0; p < needed; ++p) {
      if (!InstallZeroPage(memory_, *table, p).has_value()) {
        return std::nullopt;
      }
    }
    for (size_t i = 0; i < contents.size(); ++i) {
      const Ptw ptw = DecodePtw(memory_->Read(*table + (i >> kPageShift)));
      memory_->Write(ptw.frame + (i & kPageMask), contents[i]);
    }
  }

  RegisteredSegment seg;
  seg.name = name;
  seg.segno = next_segno_++;
  seg.base = *table;
  seg.paged = true;
  seg.bound = words;
  seg.acl = std::move(acl);
  by_name_[name] = segments_.size();
  segments_.push_back(std::move(seg));
  return segments_.back().segno;
}

bool SegmentRegistry::LoadProgram(const Program& program,
                                  const std::map<std::string, AccessControlList>& acls,
                                  std::string* error) {
  // First register every segment so that patches can refer to any of them
  // regardless of order.
  for (const AssembledSegment& seg : program.segments) {
    const auto acl_it = acls.find(seg.name);
    if (acl_it == acls.end()) {
      *error = "no access control list supplied for segment " + seg.name;
      return false;
    }
    const auto segno = CreateSegmentWithContents(seg.name, seg.words, seg.reserve_words,
                                                 seg.gate_count, acl_it->second);
    if (!segno.has_value()) {
      *error = "cannot register segment " + seg.name + " (duplicate name or memory exhausted)";
      return false;
    }
    segments_.back().symbols = seg.symbols;
  }

  // Resolve .its patches; record .link patches for lazy snapping.
  for (const AssembledSegment& seg : program.segments) {
    RegisteredSegment* reg = FindMutable(seg.name);
    for (const ItsPatch& patch : seg.patches) {
      if (patch.dynamic) {
        // Dynamic link: emit a fault-tagged word carrying (owner segno,
        // link index); the supervisor resolves the symbolic target on
        // first reference, so it may name a segment registered later.
        const Wordno index = static_cast<Wordno>(reg->links.size());
        reg->links.push_back(LinkTarget{patch.target_segment, patch.target_symbol,
                                        patch.target_offset, patch.ring, patch.indirect});
        const IndirectWord fault{patch.ring, false, reg->segno, index, /*fault=*/true};
        memory_->Write(reg->base + patch.wordno, EncodeIndirectWord(fault));
        continue;
      }
      const RegisteredSegment* target = Find(patch.target_segment);
      if (target == nullptr) {
        *error = StrFormat("segment %s: .its refers to unknown segment %s", seg.name.c_str(),
                           patch.target_segment.c_str());
        return false;
      }
      int64_t wordno = patch.target_offset;
      if (!patch.target_symbol.empty()) {
        const auto sym = target->symbols.find(patch.target_symbol);
        if (sym == target->symbols.end()) {
          *error = StrFormat("segment %s: .its refers to unknown symbol %s$%s", seg.name.c_str(),
                             patch.target_segment.c_str(), patch.target_symbol.c_str());
          return false;
        }
        wordno += sym->second;
      }
      if (wordno < 0 || wordno > kMaxWordno) {
        *error = StrFormat("segment %s: .its offset out of range", seg.name.c_str());
        return false;
      }
      const IndirectWord iw{patch.ring, patch.indirect, target->segno,
                            static_cast<Wordno>(wordno)};
      memory_->Write(reg->base + patch.wordno, EncodeIndirectWord(iw));
    }
  }
  return true;
}

const RegisteredSegment* SegmentRegistry::Find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &segments_[it->second];
}

RegisteredSegment* SegmentRegistry::FindMutable(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &segments_[it->second];
}

const RegisteredSegment* SegmentRegistry::FindBySegno(Segno segno) const {
  for (const RegisteredSegment& seg : segments_) {
    if (seg.segno == segno) {
      return &seg;
    }
  }
  return nullptr;
}

RegisteredSegment* SegmentRegistry::FindMutableBySegno(Segno segno) {
  for (RegisteredSegment& seg : segments_) {
    if (seg.segno == segno) {
      return &seg;
    }
  }
  return nullptr;
}

std::optional<SegAddr> SegmentRegistry::Resolve(const std::string& segment,
                                                const std::string& symbol) const {
  const RegisteredSegment* seg = Find(segment);
  if (seg == nullptr) {
    return std::nullopt;
  }
  Wordno wordno = 0;
  if (!symbol.empty()) {
    const auto it = seg->symbols.find(symbol);
    if (it == seg->symbols.end()) {
      return std::nullopt;
    }
    wordno = it->second;
  }
  return SegAddr{seg->segno, wordno};
}

}  // namespace rings

#include "src/sup/supervisor.h"

#include "src/base/bitfield.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/isa/indirect_word.h"
#include "src/kasm/assembler.h"
#include "src/mem/page_table.h"
#include "src/mem/sdw.h"

namespace rings {

namespace {

constexpr uint32_t kMaxArgs = 16;

// Guest code for the supervisor's gate segments. Every service is entered
// by an ordinary hardware CALL to a gate word; the gate transfers to a
// body that issues the SVC (whose C++ implementation runs in the
// supervisor) and returns to the caller's ring with a hardware RETURN via
// the return pointer.
constexpr char kGateSource[] = R"(
; ring-1 supervisor gates, callable from rings 2-5
        .segment sup_gates
        .gates 7
g_exit: tra b_exit
g_ttyw: tra b_ttyw
g_ttyr: tra b_ttyr
g_ring: tra b_ring
g_acl:  tra b_acl
g_cyc:  tra b_cyc
g_mkseg: tra b_mkseg
b_exit: svc 1
        tra b_exit       ; not reached: exit does not return
b_ttyw: svc 2
        ret pr7|0
b_ttyr: svc 3
        ret pr7|0
b_ring: svc 4
        ret pr7|0
b_acl:  svc 5
        ret pr7|0
b_cyc:  svc 7
        ret pr7|0
b_mkseg: svc 8
        ret pr7|0

; ring-0 supervisor gates: the internal interface between the two
; supervisor layers ("Some gates into ring 0 are accessible to the
; processes of all users, but only to procedures executing in ring 1.")
        .segment sup_gates0
        .gates 1
g0_cyc: tra b0_cyc
b0_cyc: svc 7
        ret pr7|0

; administrative gates: the ACL restricts these to the processes of
; system administrators ("a gate for registering new users that is
; available only from the processes of system administrators").
        .segment admin_gates
        .gates 1
g_reg:  tra b_reg
b_reg:  svc 6
        ret pr7|0
)";

}  // namespace

Supervisor::Supervisor(Cpu* cpu, PhysicalMemory* memory, SegmentRegistry* registry,
                       Options options)
    : cpu_(cpu), memory_(memory), registry_(registry), options_(options) {}

void Supervisor::Charge(uint64_t steps) {
  cpu_->ChargeCycles(steps * cpu_->cycle_model().supervisor_step);
  cpu_->counters().supervisor_steps += steps;
}

bool Supervisor::Initialize() {
  const AssembleResult result = Assemble(kGateSource);
  if (!result.ok) {
    RINGS_LOG(kError) << "supervisor gate assembly failed: " << result.error.ToString();
    return false;
  }
  std::map<std::string, AccessControlList> acls;
  // Ring-1 gates: execute bracket [1,1], gate extension to ring 5 —
  // "Procedures executing in rings 6 and 7 are not given access to
  // supervisor gates."
  acls[kGateSegmentRing1] =
      AccessControlList::Public(MakeProcedureSegment(1, 1, 5, /*gate_count=*/7));
  // Ring-0 gates: callable from ring 1 only (the supervisor's internal
  // layer interface).
  acls[kGateSegmentRing0] =
      AccessControlList::Public(MakeProcedureSegment(0, 0, 1, /*gate_count=*/1));
  // Admin gates: same brackets as ring-1 gates but only for user "admin".
  acls[kAdminGateSegment] =
      AccessControlList::ForUser("admin", MakeProcedureSegment(1, 1, 5, /*gate_count=*/1));

  std::string error;
  if (!registry_->LoadProgram(result.program, acls, &error)) {
    RINGS_LOG(kError) << "supervisor gate load failed: " << error;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Process management
// ---------------------------------------------------------------------------

Process* Supervisor::CreateProcess(const std::string& user) {
  auto dseg = DescriptorSegment::Create(memory_, kDescriptorSegmentSlots, kStackBaseSegno);
  if (!dseg.has_value()) {
    return nullptr;
  }

  auto process = std::make_unique<Process>();
  process->pid = next_pid_++;
  process->user = user;
  process->dbr = dseg->dbr();

  // Eight per-ring stack segments at segment numbers 0..7. "The stack
  // segment for procedures executing in ring n has read and write brackets
  // that end at ring n."
  for (Ring ring = 0; ring < kRingCount; ++ring) {
    const auto base = memory_->Allocate(kStackSegmentWords);
    if (!base.has_value()) {
      return nullptr;
    }
    Sdw sdw;
    sdw.present = true;
    sdw.base = *base;
    sdw.bound = kStackSegmentWords;
    sdw.access = MakeStackSegment(ring);
    dseg->Store(kStackBaseSegno + ring, sdw);
    memory_->Write(*base + kStackNextFreeWord, kStackFrameStart);
  }

  processes_.push_back(std::move(process));
  return processes_.back().get();
}

std::optional<Segno> Supervisor::Initiate(Process* process, const std::string& name) {
  const RegisteredSegment* seg = registry_->Find(name);
  if (seg == nullptr) {
    return std::nullopt;
  }
  // "The name of the user associated with a process must match some entry
  // on the access control list of a segment before the supervisor will add
  // that segment to the virtual memory of the process."
  const auto access = seg->acl.Lookup(process->user);
  if (!access.has_value()) {
    return std::nullopt;
  }

  Sdw sdw;
  sdw.present = true;
  sdw.paged = seg->paged;
  sdw.base = seg->base;
  sdw.bound = seg->bound;
  sdw.access = *access;
  // The gate count reflects the segment's actual gate layout; the ACL
  // entry supplies flags and brackets.
  sdw.access.gate_count = seg->gate_count;
  if (ValidateSdw(sdw).has_value()) {
    return std::nullopt;
  }

  DescriptorSegment dseg(memory_, process->dbr);
  dseg.Store(seg->segno, sdw);
  if (process == current_) {
    cpu_->InvalidateSdw(seg->segno);
  }
  Charge(4);
  return seg->segno;
}

void Supervisor::InitiateAll(Process* process) {
  for (const RegisteredSegment& seg : registry_->segments()) {
    Initiate(process, seg.name);
  }
}

bool Supervisor::Start(Process* process, const std::string& segname, const std::string& entry,
                       Ring ring) {
  const auto segno = Initiate(process, segname);
  if (!segno.has_value()) {
    return false;
  }
  const auto addr = registry_->Resolve(segname, entry);
  if (!addr.has_value()) {
    return false;
  }

  RegisterFile regs;
  regs.dbr = process->dbr;
  regs.ipr = Ipr{ring, *segno, addr->wordno};
  for (PointerRegister& pr : regs.pr) {
    pr = PointerRegister{ring, 0, 0};
  }
  regs.pr[kPrStackBase] = PointerRegister{ring, kStackBaseSegno + ring, 0};
  regs.pr[kPrStack] = PointerRegister{ring, kStackBaseSegno + ring, kStackFrameStart};
  process->saved_regs = regs;
  process->state = ProcessState::kReady;
  ready_.push_back(process);
  return true;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

bool Supervisor::DispatchNext() {
  while (!ready_.empty()) {
    Process* next = ready_.front();
    ready_.pop_front();
    if (!next->runnable()) {
      continue;
    }
    current_ = next;
    current_->state = ProcessState::kRunning;
    ++current_->dispatches;
    Charge(6);  // process-exchange bookkeeping
    cpu_->Rett(current_->saved_regs);
    cpu_->SetTimer(options_.quantum);
    return true;
  }
  current_ = nullptr;
  return false;
}

bool Supervisor::Idle() const {
  if (current_ != nullptr) {
    return false;
  }
  for (const auto& p : processes_) {
    if (p->runnable()) {
      return false;
    }
  }
  return true;
}

void Supervisor::KillCurrent(TrapCause cause, const SegAddr& pc) {
  if (current_ == nullptr) {
    return;
  }
  current_->state = ProcessState::kKilled;
  current_->kill_cause = cause;
  current_->kill_pc = pc;
  RINGS_LOG(kInfo) << "process " << current_->pid << " killed: " << TrapCauseName(cause)
                   << " at " << pc.segno << "|" << pc.wordno;
  current_ = nullptr;
}

void Supervisor::ResumeCurrent(const RegisterFile& regs) {
  if (current_ != nullptr) {
    current_->saved_regs = regs;
  }
  cpu_->Rett(regs);
}

// ---------------------------------------------------------------------------
// Trap dispatch
// ---------------------------------------------------------------------------

bool Supervisor::HandleTrap() {
  if (handling_trap_) {
    // Double fault: a trap was raised while the supervisor was already
    // servicing one. On real hardware this means the trap machinery
    // itself can no longer make progress; the recoverable response is to
    // kill the offending process, never the machine. The nested frame
    // must not dispatch — the outer HandleTrap frame is still on the
    // C++ stack and finishes the scheduling decision.
    const TrapState trap = cpu_->TakeTrap();
    ++cpu_->counters().double_faults;
    RINGS_LOG(kWarning) << "double fault (" << TrapCauseName(trap.cause)
                        << ") while servicing a trap; killing process";
    KillCurrent(TrapCause::kDoubleFault,
                SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
    return current_ != nullptr;
  }
  handling_trap_ = true;
  const bool result = HandleTrapImpl();
  handling_trap_ = false;
  return result;
}

bool Supervisor::WatchdogTripped(const TrapState& trap) {
  if (options_.trap_storm_limit <= 0 || current_ == nullptr) {
    return false;
  }
  // External events (timer runout, I/O completions) can legitimately
  // arrive back-to-back without the process retiring an instruction;
  // only synchronous traps count toward the storm.
  if (trap.cause == TrapCause::kTimerRunout || trap.cause == TrapCause::kIoCompletion) {
    return false;
  }
  const uint64_t now = cpu_->counters().instructions;
  if (current_->trap_streak > 0 && now == current_->last_trap_instructions) {
    ++current_->trap_streak;
  } else {
    current_->trap_streak = 1;
  }
  current_->last_trap_instructions = now;
  if (current_->trap_streak < static_cast<uint64_t>(options_.trap_storm_limit)) {
    return false;
  }
  ++cpu_->counters().trap_storm_kills;
  RINGS_LOG(kWarning) << "trap storm: process " << current_->pid << " took "
                      << current_->trap_streak << " consecutive traps (last: "
                      << TrapCauseName(trap.cause) << ") without retiring an instruction";
  KillCurrent(TrapCause::kTrapStorm, SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
  return true;
}

bool Supervisor::TryRecoverCachedSdw(const TrapState& trap) {
  if (current_ == nullptr) {
    return false;
  }
  // Compare the processor's cached descriptors for the segments involved
  // in the faulting reference against the authoritative descriptor
  // segment. A mismatch means the cached copy was damaged in flight (the
  // descriptor segment is supervisor-maintained and cannot legitimately
  // disagree): flush the stale entry and re-execute the disrupted
  // instruction, which will re-fetch the descriptor from memory.
  bool flushed = false;
  const Segno candidates[] = {trap.regs.ipr.segno, trap.tpr.segno};
  for (const Segno segno : candidates) {
    const auto cached = cpu_->sdw_cache().Peek(segno);
    if (!cached.has_value()) {
      continue;
    }
    const auto authoritative = cpu_->ReadSdw(segno);
    if (!authoritative.has_value()) {
      continue;
    }
    Word c0 = 0, c1 = 0, a0 = 0, a1 = 0;
    EncodeSdw(*cached, &c0, &c1);
    EncodeSdw(*authoritative, &a0, &a1);
    if (c0 == a0 && c1 == a1) {
      continue;
    }
    cpu_->InvalidateSdw(segno);
    flushed = true;
    RINGS_LOG(kWarning) << "recovered corrupted cached SDW for segment " << segno
                        << " (process " << current_->pid << ", "
                        << TrapCauseName(trap.cause) << ")";
  }
  if (!flushed) {
    return false;
  }
  ++cpu_->counters().sdw_recoveries;
  Charge(6);  // descriptor comparison and cache flush
  ResumeCurrent(trap.regs);
  return true;
}

bool Supervisor::HandleTrapImpl() {
  const TrapState trap = cpu_->TakeTrap();
  Charge(2);  // trap decode and vectoring bookkeeping

  if (WatchdogTripped(trap)) {
    return DispatchNext();
  }

  switch (trap.cause) {
    case TrapCause::kSupervisorService:
      DispatchService(trap);
      return current_ != nullptr || DispatchNext();

    case TrapCause::kMasterModeEntry:
      if (mme_handler_ && mme_handler_(trap)) {
        return current_ != nullptr || DispatchNext();
      }
      // Default MME protocol: code 0 = exit with code in A.
      if (trap.code == 0) {
        if (current_ != nullptr) {
          current_->exit_code = static_cast<int64_t>(trap.regs.a);
          current_->state = ProcessState::kExited;
          current_ = nullptr;
        }
        return DispatchNext();
      }
      KillCurrent(TrapCause::kMasterModeEntry,
                  SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
      return DispatchNext();

    case TrapCause::kHalt:
      // HLT is privileged; reaching here means ring-0 code stopped the
      // process(or) deliberately.
      if (current_ != nullptr) {
        current_->exit_code = static_cast<int64_t>(trap.regs.a);
        current_->state = ProcessState::kExited;
        current_ = nullptr;
      }
      return DispatchNext();

    case TrapCause::kTimerRunout:
      if (current_ != nullptr) {
        current_->saved_regs = trap.regs;
        current_->state = ProcessState::kReady;
        ready_.push_back(current_);
        current_ = nullptr;
      }
      return DispatchNext();

    case TrapCause::kIoCompletion:
      // The device layer already recorded the completion; resume.
      ResumeCurrent(trap.regs);
      return true;

    case TrapCause::kMissingPage: {
      // Demand paging: supply a zero page and resume the disrupted
      // instruction — the trap/RETT machinery makes the fault invisible
      // to the guest, as the paper requires of paging.
      const SegAddr fault = trap.fault_addr;
      const auto sdw = cpu_->ReadSdw(fault.segno);
      if (current_ != nullptr && sdw.has_value() && sdw->present &&
          fault.wordno < sdw->bound) {
        if (!sdw->paged) {
          // Spurious: an unpaged present segment cannot legitimately page
          // fault. Absorb it — re-executing the disrupted instruction
          // succeeds against the intact descriptor.
          ++cpu_->counters().spurious_pages_ignored;
          Charge(2);
          ResumeCurrent(trap.regs);
          return true;
        }
        const Ptw ptw = DecodePtw(memory_->Read(sdw->base + (fault.wordno >> kPageShift)));
        if (ptw.present) {
          // Spurious: the page is already resident. Installing a fresh
          // zero page here would discard live data, so just resume.
          ++cpu_->counters().spurious_pages_ignored;
          Charge(2);
          ResumeCurrent(trap.regs);
          return true;
        }
        if (InstallZeroPage(memory_, sdw->base, fault.wordno >> kPageShift).has_value()) {
          // The install stored the PTW behind the processor's back; retire
          // any translation memoized from that word (there should be none
          // — absent pages are never cached — but a snoop is exact and
          // keeps the invariant local).
          cpu_->NotePtwStore(sdw->base + (fault.wordno >> kPageShift));
          ++cpu_->counters().pages_supplied;
          Charge(8);
          ResumeCurrent(trap.regs);
          return true;
        }
      }
      KillCurrent(TrapCause::kMissingPage, SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
      return DispatchNext();
    }

    case TrapCause::kLinkFault:
      SnapLink(trap);
      return current_ != nullptr || DispatchNext();

    case TrapCause::kUpwardCall:
      EmulateUpwardCall(trap);
      return current_ != nullptr || DispatchNext();

    case TrapCause::kDownwardReturn:
      EmulateDownwardReturn(trap);
      return current_ != nullptr || DispatchNext();

    case TrapCause::kMachineFault:
      // A physical-store fault: a reference escaped the segment-level
      // checks, which means the descriptor that produced the absolute
      // address was corrupt. The process is killed; the machine survives.
      ++cpu_->counters().machine_faults;
      RINGS_LOG(kWarning) << "machine fault (absolute address " << trap.code
                          << ") in process " << (current_ != nullptr ? current_->pid : 0);
      KillCurrent(TrapCause::kMachineFault,
                  SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
      return DispatchNext();

    default:
      // Before declaring an access violation fatal, check whether it was
      // manufactured by a damaged cached descriptor; if so, flush and
      // retry instead of killing the process.
      if (TryRecoverCachedSdw(trap)) {
        return true;
      }
      KillCurrent(trap.cause, SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
      return DispatchNext();
  }
}

// ---------------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------------

void Supervisor::DispatchService(const TrapState& trap) {
  RegisterFile regs = trap.regs;
  Charge(3);
  switch (trap.code) {
    case kSvcExit:
      SvcExit(trap);
      return;
    case kSvcTtyWrite:
      SvcTtyWrite(trap, &regs);
      break;
    case kSvcTtyRead:
      if (!SvcTtyRead(trap, &regs)) {
        return;  // blocked: the process re-issues the SVC when awakened
      }
      break;
    case kSvcGetRing:
      // The hardware left the ring of the gate's caller in the return
      // pointer: "the processor leave[s] in a program accessible register
      // the number of the ring in which execution was occurring before the
      // downward call was made."
      regs.a = trap.regs.pr[kPrReturn].ring;
      break;
    case kSvcSetAcl:
      SvcSetAcl(trap, &regs);
      break;
    case kSvcRegisterUser:
      if (current_ != nullptr) {
        registered_users_.push_back(current_->user);
      }
      regs.a = 0;
      break;
    case kSvcCycleCount:
      regs.a = cpu_->cycles();
      break;
    case kSvcMakeSegment:
      SvcMakeSegment(trap, &regs);
      break;
    default:
      KillCurrent(TrapCause::kSupervisorService,
                  SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno});
      return;
  }
  ResumeCurrent(regs);
}

void Supervisor::SvcExit(const TrapState& trap) {
  if (current_ != nullptr) {
    current_->exit_code = static_cast<int64_t>(trap.regs.a);
    current_->state = ProcessState::kExited;
    current_ = nullptr;
  }
}

bool Supervisor::ReadArgList(const PointerRegister& ap, std::vector<ArgRef>* args,
                             TrapCause* fault) {
  args->clear();
  if (ap.segno == 0 && ap.wordno == 0) {
    return true;  // no argument list (ABI convention)
  }
  Word count_word = 0;
  // Every reference is validated at the pointer's ring, exactly as the
  // hardware would validate `lda pr1|0`: the callee "can validate access
  // when referencing arguments as though execution were occurring in the
  // (higher numbered) ring of the calling procedure."
  if (TrapCause c = cpu_->SupervisorRead(ap.segno, ap.wordno + kArgListCountWord, ap.ring,
                                         &count_word);
      c != TrapCause::kNone) {
    *fault = c;
    return false;
  }
  const uint64_t count = count_word;
  if (count > kMaxArgs) {
    *fault = TrapCause::kBoundsViolation;
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    Word ptr_word = 0;
    Word len_word = 0;
    if (TrapCause c = cpu_->SupervisorRead(ap.segno, ap.wordno + 1 + i, ap.ring, &ptr_word);
        c != TrapCause::kNone) {
      *fault = c;
      return false;
    }
    if (TrapCause c =
            cpu_->SupervisorRead(ap.segno, ap.wordno + 1 + count + i, ap.ring, &len_word);
        c != TrapCause::kNone) {
      *fault = c;
      return false;
    }
    const IndirectWord iw = DecodeIndirectWord(ptr_word);
    ArgRef ref;
    ref.addr = SegAddr{iw.segno, iw.wordno};
    // "The RING field of an argument list indirect word will specify the
    // ring which originally provided the argument. If this value is higher
    // than the value of PRa.RING, then the indirect word ring number will
    // become the effective ring."
    ref.effective_ring = MaxRing(ap.ring, iw.ring);
    ref.length = static_cast<uint32_t>(len_word);
    args->push_back(ref);
  }
  Charge(2 + 2 * count);
  return true;
}

void Supervisor::SvcTtyWrite(const TrapState& trap, RegisterFile* regs) {
  std::vector<ArgRef> args;
  TrapCause fault = TrapCause::kNone;
  if (!ReadArgList(trap.regs.pr[kPrArgs], &args, &fault) || args.empty()) {
    regs->a = static_cast<Word>(-1);
    return;
  }
  const ArgRef& buffer = args[0];
  std::string written;
  for (uint32_t i = 0; i < buffer.length; ++i) {
    Word w = 0;
    if (TrapCause c = cpu_->SupervisorRead(buffer.addr.segno, buffer.addr.wordno + i,
                                           buffer.effective_ring, &w);
        c != TrapCause::kNone) {
      regs->a = static_cast<Word>(-1);
      return;
    }
    written.push_back(static_cast<char>(w & 0xFF));
  }
  tty_output_ += written;
  Charge(2 + buffer.length);
  if (start_io_) {
    start_io_(0, buffer.length);
  }
  regs->a = buffer.length;
}

bool Supervisor::SvcTtyRead(const TrapState& trap, RegisterFile* regs) {
  std::vector<ArgRef> args;
  TrapCause fault = TrapCause::kNone;
  if (!ReadArgList(trap.regs.pr[kPrArgs], &args, &fault) || args.empty()) {
    regs->a = static_cast<Word>(-1);
    return true;
  }
  if (tty_input_.empty() && current_ != nullptr) {
    // Nothing to read: block the process. The saved execution point is
    // moved back onto the SVC instruction, so the awakened process simply
    // re-issues the request.
    RegisterFile blocked = trap.regs;
    blocked.ipr.wordno -= 1;
    current_->saved_regs = blocked;
    current_->state = ProcessState::kBlocked;
    current_ = nullptr;
    DispatchNext();
    return false;
  }
  const ArgRef& buffer = args[0];
  uint32_t n = 0;
  while (n < buffer.length && !tty_input_.empty()) {
    if (TrapCause c =
            cpu_->SupervisorWrite(buffer.addr.segno, buffer.addr.wordno + n,
                                  buffer.effective_ring, static_cast<Word>(tty_input_.front()));
        c != TrapCause::kNone) {
      regs->a = static_cast<Word>(-1);
      return true;
    }
    tty_input_.erase(tty_input_.begin());
    ++n;
  }
  Charge(2 + n);
  regs->a = n;
  return true;
}

void Supervisor::NotifyTtyInput() {
  for (const auto& process : processes_) {
    if (process->state == ProcessState::kBlocked) {
      process->state = ProcessState::kReady;
      ready_.push_back(process.get());
    }
  }
}

void Supervisor::SvcSetAcl(const TrapState& trap, RegisterFile* regs) {
  const Ring caller_ring = trap.regs.pr[kPrReturn].ring;
  const Segno segno = static_cast<Segno>(trap.regs.a & kMaxSegno);
  const Word spec = trap.regs.q;

  SegmentAccess access;
  access.flags.read = ExtractBits(spec, 11, 1) != 0;
  access.flags.write = ExtractBits(spec, 10, 1) != 0;
  access.flags.execute = ExtractBits(spec, 9, 1) != 0;
  access.brackets.r1 = static_cast<Ring>(ExtractBits(spec, 6, 3));
  access.brackets.r2 = static_cast<Ring>(ExtractBits(spec, 3, 3));
  access.brackets.r3 = static_cast<Ring>(ExtractBits(spec, 0, 3));

  // "A fundamental constraint enforced by this software facility is that a
  // program executing in ring n cannot specify R1, R2, or R3 values of
  // less than n in an access control list entry of any segment."
  if (!access.brackets.IsWellFormed() || access.brackets.r1 < caller_ring ||
      access.brackets.r2 < caller_ring || access.brackets.r3 < caller_ring) {
    regs->a = static_cast<Word>(-1);
    return;
  }

  RegisteredSegment* seg = registry_->FindMutableBySegno(segno);
  if (seg == nullptr || current_ == nullptr) {
    regs->a = static_cast<Word>(-1);
    return;
  }
  access.gate_count = seg->gate_count;
  seg->acl.Set(current_->user, access);

  // Make the change immediately effective in the current virtual memory:
  // rewrite the SDW if the segment is initiated.
  DescriptorSegment dseg(memory_, current_->dbr);
  if (auto sdw = dseg.Fetch(segno); sdw.has_value() && sdw->present) {
    sdw->access = access;
    dseg.Store(segno, *sdw);
    cpu_->InvalidateSdw(segno);
  }
  Charge(6);
  regs->a = 0;
}

void Supervisor::SnapLink(const TrapState& trap) {
  const SegAddr at = trap.fault_addr;
  const SegAddr pc{trap.regs.ipr.segno, trap.regs.ipr.wordno};
  Word raw = 0;
  if (current_ == nullptr ||
      cpu_->SupervisorReadRaw(at.segno, at.wordno, &raw) != TrapCause::kNone) {
    KillCurrent(TrapCause::kLinkFault, pc);
    return;
  }
  const IndirectWord fault_word = DecodeIndirectWord(raw);
  RegisteredSegment* owner = registry_->FindMutableBySegno(fault_word.segno);
  if (!fault_word.fault || owner == nullptr || fault_word.wordno >= owner->links.size()) {
    KillCurrent(TrapCause::kLinkFault, pc);
    return;
  }
  const LinkTarget& link = owner->links[fault_word.wordno];
  const RegisteredSegment* target = registry_->Find(link.segment);
  if (target == nullptr) {
    KillCurrent(TrapCause::kLinkFault, pc);
    return;
  }
  int64_t wordno = link.offset;
  if (!link.symbol.empty()) {
    const auto sym = target->symbols.find(link.symbol);
    if (sym == target->symbols.end()) {
      KillCurrent(TrapCause::kLinkFault, pc);
      return;
    }
    wordno += sym->second;
  }
  if (wordno < 0 || wordno > kMaxWordno) {
    KillCurrent(TrapCause::kLinkFault, pc);
    return;
  }
  // Snap: overwrite the link word in place. The storage is shared, so the
  // snap is visible to every process (a documented simplification of the
  // per-process Multics linkage sections).
  const IndirectWord snapped{link.ring, link.indirect, target->segno,
                             static_cast<Wordno>(wordno)};
  if (cpu_->SupervisorWriteRaw(at.segno, at.wordno, EncodeIndirectWord(snapped)) !=
      TrapCause::kNone) {
    KillCurrent(TrapCause::kLinkFault, pc);
    return;
  }
  ++cpu_->counters().links_snapped;
  Charge(12);
  // Resume the disrupted instruction, which now follows the snapped word.
  ResumeCurrent(trap.regs);
}

void Supervisor::SvcMakeSegment(const TrapState& trap, RegisterFile* regs) {
  const Ring caller_ring = trap.regs.pr[kPrReturn].ring;
  const uint64_t words = trap.regs.a;
  const Word spec = trap.regs.q;

  SegmentAccess access;
  access.flags.read = ExtractBits(spec, 11, 1) != 0;
  access.flags.write = ExtractBits(spec, 10, 1) != 0;
  access.flags.execute = ExtractBits(spec, 9, 1) != 0;
  access.brackets.r1 = static_cast<Ring>(ExtractBits(spec, 6, 3));
  access.brackets.r2 = static_cast<Ring>(ExtractBits(spec, 3, 3));
  access.brackets.r3 = static_cast<Ring>(ExtractBits(spec, 0, 3));

  // Same ring constraint as kSvcSetAcl: a program in ring n may not mint
  // access reaching below ring n.
  if (current_ == nullptr || words == 0 || words > kMaxUserSegmentWords ||
      !access.brackets.IsWellFormed() || access.brackets.r1 < caller_ring ||
      access.brackets.r2 < caller_ring || access.brackets.r3 < caller_ring) {
    regs->a = static_cast<Word>(-1);
    return;
  }

  const std::string name =
      StrFormat("proc%d_seg%d", current_->pid, ++anonymous_segments_);
  const auto segno = registry_->CreateSegment(
      name, words, AccessControlList::ForUser(current_->user, access));
  if (!segno.has_value()) {
    regs->a = static_cast<Word>(-1);
    return;
  }
  if (!Initiate(current_, name).has_value()) {
    regs->a = static_cast<Word>(-1);
    return;
  }
  Charge(8);
  regs->a = *segno;
}

// ---------------------------------------------------------------------------
// Upward call / downward return emulation
// ---------------------------------------------------------------------------

void Supervisor::EmulateUpwardCall(const TrapState& trap) {
  if (current_ == nullptr) {
    return;
  }
  const SegAddr pc{trap.regs.ipr.segno, trap.regs.ipr.wordno};
  const auto sdw = cpu_->ReadSdw(trap.tpr.segno);
  if (!sdw.has_value() || !sdw->present || trap.tpr.wordno >= sdw->bound) {
    KillCurrent(TrapCause::kBoundsViolation, pc);
    return;
  }
  // "When the call occurs, the ring of execution will change to m", the
  // bottom of the target's execute bracket.
  const Ring callee_ring = sdw->access.brackets.r1;
  const Ring caller_ring = trap.regs.ipr.ring;

  ReturnGate gate;
  gate.expected_target = SegAddr{trap.regs.ipr.segno, trap.regs.ipr.wordno + 1};
  gate.caller_ring = caller_ring;
  gate.callee_ring = callee_ring;
  gate.saved_sp = trap.regs.pr[kPrStack];
  gate.saved_sb = trap.regs.pr[kPrStackBase];
  gate.saved_ap = trap.regs.pr[kPrArgs];

  RegisterFile regs = trap.regs;
  Charge(10);

  // Argument copy-in (the paper's third solution to the upward-argument
  // problem: "copying arguments into segments that are accessible in the
  // called ring, and then copying them back to their original locations
  // on return").
  std::vector<ArgRef> args;
  TrapCause fault = TrapCause::kNone;
  if (!ReadArgList(trap.regs.pr[kPrArgs], &args, &fault)) {
    KillCurrent(fault, pc);
    return;
  }
  if (!args.empty()) {
    uint64_t data_words = 0;
    for (const ArgRef& a : args) {
      data_words += a.length;
    }
    const uint64_t total = 1 + 2 * args.size() + data_words;
    const auto area = AllocateStackArea(callee_ring, total);
    if (!area.has_value()) {
      KillCurrent(TrapCause::kBoundsViolation, pc);
      return;
    }
    const Segno stack_segno = kStackBaseSegno + callee_ring;
    Wordno cursor = *area + 1 + static_cast<Wordno>(2 * args.size());
    cpu_->SupervisorWriteRaw(stack_segno, *area, args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      const ArgRef& a = args[i];
      // New argument-list pointer addressing the transfer copy, ring field
      // = the callee ring (accessible there).
      const IndirectWord iw{callee_ring, false, stack_segno, cursor};
      cpu_->SupervisorWriteRaw(stack_segno, *area + 1 + i, EncodeIndirectWord(iw));
      cpu_->SupervisorWriteRaw(stack_segno, *area + 1 + args.size() + i, a.length);
      for (uint32_t j = 0; j < a.length; ++j) {
        Word w = 0;
        if (TrapCause c =
                cpu_->SupervisorRead(a.addr.segno, a.addr.wordno + j, a.effective_ring, &w);
            c != TrapCause::kNone) {
          // The caller specified an argument it cannot itself reference.
          KillCurrent(c, pc);
          return;
        }
        cpu_->SupervisorWriteRaw(stack_segno, cursor + j, w);
      }
      gate.copied_args.push_back(ReturnGate::CopiedArg{
          a.addr, SegAddr{stack_segno, cursor}, a.length, a.effective_ring});
      cursor += a.length;
      cpu_->counters().argument_words_copied += a.length;
    }
    gate.transfer_words = total;
    Charge(4 + 2 * args.size() + data_words);
    regs.pr[kPrArgs] = PointerRegister{callee_ring, stack_segno, *area};
  }

  // Entering a higher numbered ring: raise every PR ring to at least the
  // callee ring (the same rule the hardware applies on an upward RETURN).
  for (PointerRegister& pr : regs.pr) {
    pr.ring = MaxRing(pr.ring, callee_ring);
  }
  regs.pr[kPrStackBase] =
      PointerRegister{callee_ring, kStackBaseSegno + callee_ring, 0};
  regs.pr[kPrReturn] =
      PointerRegister{callee_ring, gate.expected_target.segno, gate.expected_target.wordno};
  regs.ipr = Ipr{callee_ring, trap.tpr.segno, trap.tpr.wordno};

  current_->return_gates.push_back(std::move(gate));
  ++cpu_->counters().upward_calls_emulated;
  ResumeCurrent(regs);
}

void Supervisor::EmulateDownwardReturn(const TrapState& trap) {
  if (current_ == nullptr) {
    return;
  }
  const SegAddr pc{trap.regs.ipr.segno, trap.regs.ipr.wordno};
  if (current_->return_gates.empty()) {
    // No outstanding upward call: a genuine attempt to lower the ring.
    KillCurrent(TrapCause::kDownwardReturn, pc);
    return;
  }
  ReturnGate gate = current_->return_gates.back();
  const SegAddr target{trap.tpr.segno, trap.tpr.wordno};

  // Only the gate at the top of the stack can be used, and only for its
  // recorded target.
  if (target != gate.expected_target || trap.regs.ipr.ring < gate.callee_ring) {
    KillCurrent(TrapCause::kDownwardReturn, pc);
    return;
  }
  // "The same convention can be used without violating the protection
  // provided by the lower ring if the intervening software verifies the
  // restored stack pointer register value when performing the downward
  // return." The address must match exactly; the ring field may only have
  // been raised (the emulated upward entry raised every PR ring to the
  // callee ring, as hardware does on upward RETURN).
  const PointerRegister& sp = trap.regs.pr[kPrStack];
  if (sp.segno != gate.saved_sp.segno || sp.wordno != gate.saved_sp.wordno ||
      sp.ring < gate.saved_sp.ring) {
    KillCurrent(TrapCause::kDownwardReturn, pc);
    return;
  }
  current_->return_gates.pop_back();

  // Copy arguments back to their original locations. Writes are validated
  // at the effective ring recorded on the way in; arguments the caller
  // could only read (e.g. constants) are not copied back.
  for (const ReturnGate::CopiedArg& arg : gate.copied_args) {
    bool writable = true;
    for (uint32_t j = 0; j < arg.length && writable; ++j) {
      Word w = 0;
      cpu_->SupervisorReadRaw(arg.transfer.segno, arg.transfer.wordno + j, &w);
      if (cpu_->SupervisorWrite(arg.original.segno, arg.original.wordno + j, arg.effective_ring,
                                w) != TrapCause::kNone) {
        writable = false;
      }
    }
    cpu_->counters().argument_words_copied += arg.length;
  }
  if (gate.transfer_words > 0) {
    ReleaseStackArea(gate.callee_ring, gate.transfer_words);
  }

  RegisterFile regs = trap.regs;
  regs.ipr = Ipr{gate.caller_ring, target.segno, target.wordno};
  regs.pr[kPrStackBase] = gate.saved_sb;
  regs.pr[kPrArgs] = gate.saved_ap;
  regs.pr[kPrStack] = gate.saved_sp;
  Charge(10 + 2 * gate.copied_args.size());
  ++cpu_->counters().downward_returns_emulated;
  ResumeCurrent(regs);
}

std::optional<Wordno> Supervisor::AllocateStackArea(Ring ring, uint64_t words) {
  const Segno segno = kStackBaseSegno + ring;
  Word next_free = 0;
  if (cpu_->SupervisorReadRaw(segno, kStackNextFreeWord, &next_free) != TrapCause::kNone) {
    return std::nullopt;
  }
  if (next_free + words > kStackSegmentWords) {
    return std::nullopt;
  }
  cpu_->SupervisorWriteRaw(segno, kStackNextFreeWord, next_free + words);
  return static_cast<Wordno>(next_free);
}

void Supervisor::ReleaseStackArea(Ring ring, uint64_t words) {
  const Segno segno = kStackBaseSegno + ring;
  Word next_free = 0;
  cpu_->SupervisorReadRaw(segno, kStackNextFreeWord, &next_free);
  if (next_free >= words) {
    cpu_->SupervisorWriteRaw(segno, kStackNextFreeWord, next_free - words);
  }
}

// ---------------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------------

Supervisor::SchedulerSnapshot Supervisor::SnapshotScheduler() const {
  SchedulerSnapshot sched;
  sched.ready_pids.reserve(ready_.size());
  for (const Process* p : ready_) {
    sched.ready_pids.push_back(p->pid);
  }
  sched.current_pid = current_ != nullptr ? current_->pid : 0;
  sched.handling_trap = handling_trap_;
  sched.next_pid = next_pid_;
  sched.anonymous_segments = anonymous_segments_;
  return sched;
}

bool Supervisor::RestoreProcesses(std::vector<std::unique_ptr<Process>> processes,
                                  const SchedulerSnapshot& sched, std::string* error) {
  processes_ = std::move(processes);
  ready_.clear();
  current_ = nullptr;
  handling_trap_ = sched.handling_trap;
  next_pid_ = sched.next_pid;
  anonymous_segments_ = sched.anonymous_segments;

  auto find_pid = [this](int pid) -> Process* {
    for (const auto& p : processes_) {
      if (p->pid == pid) {
        return p.get();
      }
    }
    return nullptr;
  };
  for (const int pid : sched.ready_pids) {
    Process* p = find_pid(pid);
    if (p == nullptr) {
      if (error != nullptr) {
        *error = StrFormat("scheduler names unknown ready pid %d", pid);
      }
      return false;
    }
    ready_.push_back(p);
  }
  if (sched.current_pid != 0) {
    current_ = find_pid(sched.current_pid);
    if (current_ == nullptr) {
      if (error != nullptr) {
        *error = StrFormat("scheduler names unknown current pid %d", sched.current_pid);
      }
      return false;
    }
  }
  return true;
}

}  // namespace rings

// The process model. "A process with a new virtual memory is created for
// each user when he logs in to the system, and the name of the user is
// associated with the process. The process is the active agent of the
// user, and is his only means of referencing and manipulating information
// stored on-line."
//
// Each process owns: a descriptor segment (its virtual memory), eight
// private stack segments occupying segment numbers 0..7 (ring n stacks at
// segno n, per the paper's stack selection rule), a saved register file
// when not running, and the stack of dynamic return gates created by
// upward calls.
#ifndef SRC_SUP_PROCESS_H_
#define SRC_SUP_PROCESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/trap_cause.h"
#include "src/cpu/registers.h"
#include "src/mem/descriptor_segment.h"
#include "src/sup/abi.h"

namespace rings {

enum class ProcessState {
  kReady,
  kRunning,
  kBlocked,  // waiting for I/O completion
  kExited,   // voluntary exit (kSvcExit)
  kKilled,   // unhandled access violation
};

// A dynamic return gate, created by the supervisor when it emulates an
// upward call and consumed by the subsequent downward return. "The return
// gate must be created at the time of the upward call and be destroyed
// when the subsequent return occurs. If recursive calls into a ring are
// allowed, then this gate must behave as though it were stored in a
// push-down stack, so that only the gate at the top of the stack can be
// used."
struct ReturnGate {
  SegAddr expected_target{};         // the instruction after the upward CALL
  Ring caller_ring = 0;              // ring to restore on the downward return
  Ring callee_ring = 0;              // ring entered by the upward call
  PointerRegister saved_sp{};        // verified on return (paper requirement)
  PointerRegister saved_sb{};
  PointerRegister saved_ap{};        // caller's argument pointer, for copy-back
  // Argument copy-back records: the transfer-area address and original
  // destination of each copied argument.
  struct CopiedArg {
    SegAddr original{};
    SegAddr transfer{};
    uint32_t length = 0;
    // Effective ring the argument was validated at on the way in; writes
    // on the way out are validated at the same level.
    Ring effective_ring = 0;
  };
  std::vector<CopiedArg> copied_args;
  // Total words of the transfer area carved from the callee ring's stack
  // segment (released on return).
  uint64_t transfer_words = 0;
};

struct Process {
  int pid = 0;
  std::string user;
  ProcessState state = ProcessState::kReady;

  DbrValue dbr{};
  RegisterFile saved_regs{};

  // Outcome bookkeeping.
  int64_t exit_code = 0;
  TrapCause kill_cause = TrapCause::kNone;
  // The address at which the fatal violation occurred (for diagnostics
  // and tests).
  SegAddr kill_pc{};

  std::vector<ReturnGate> return_gates;

  // Scheduling statistics.
  uint64_t instructions_run = 0;
  uint64_t dispatches = 0;

  // Trap-storm watchdog state: consecutive synchronous traps taken without
  // an instruction retiring in between (see Supervisor::Options::
  // trap_storm_limit). Reset whenever the global instruction counter has
  // advanced since the previous trap.
  uint64_t trap_streak = 0;
  uint64_t last_trap_instructions = 0;

  bool runnable() const { return state == ProcessState::kReady || state == ProcessState::kRunning; }
  bool finished() const { return state == ProcessState::kExited || state == ProcessState::kKilled; }
};

}  // namespace rings

#endif  // SRC_SUP_PROCESS_H_

#include "src/sup/process.h"

// Process is a plain data aggregate; behaviour lives in the supervisor.

namespace rings {}  // namespace rings

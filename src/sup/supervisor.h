// The ring-0/ring-1 supervisor. Trap-handler and service bodies are C++
// charged with simulated cycles (see DESIGN.md); everything guest-visible
// — gate segments, the CALL/RETURN crossing path, stack segments,
// descriptor segments — is real simulated-machine state.
//
// Responsibilities:
//   * process creation (descriptor segment + eight per-ring stack
//     segments at segment numbers 0..7) and segment initiation driven by
//     access control lists;
//   * trap dispatch: supervisor services (SVC via gates), exit, timer-
//     driven round-robin scheduling, I/O completions, and fatal access
//     violations;
//   * the software side of the paper's hard cases: upward-call emulation
//     with argument copy-in/copy-out and dynamic stacked return gates,
//     and downward-return emulation with stack-pointer verification.
#ifndef SRC_SUP_SUPERVISOR_H_
#define SRC_SUP_SUPERVISOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/sup/abi.h"
#include "src/sup/process.h"
#include "src/sup/segment_registry.h"

namespace rings {

// Names of the supervisor's own gate segments, created by Initialize().
inline constexpr char kGateSegmentRing1[] = "sup_gates";    // callable from rings 2..5
inline constexpr char kGateSegmentRing0[] = "sup_gates0";   // callable from ring 1 only
inline constexpr char kAdminGateSegment[] = "admin_gates";  // ACL-restricted to "admin"

class Supervisor {
 public:
  struct Options {
    int64_t quantum = 5000;  // instructions per scheduling time slice
    bool verbose = false;
    // Trap-storm watchdog: a process that takes this many consecutive
    // synchronous traps without retiring a single instruction is killed
    // (kTrapStorm) instead of live-locking the machine. 0 disables.
    int64_t trap_storm_limit = 64;
  };

  Supervisor(Cpu* cpu, PhysicalMemory* memory, SegmentRegistry* registry, Options options);
  Supervisor(Cpu* cpu, PhysicalMemory* memory, SegmentRegistry* registry)
      : Supervisor(cpu, memory, registry, Options{}) {}

  // Creates the supervisor's gate segments. Must be called once, before
  // processes start. Returns false on resource exhaustion.
  bool Initialize();

  // --- process management -------------------------------------------------

  // Login: creates a process (descriptor segment + stack segments) for
  // `user`. Returns null on memory exhaustion.
  Process* CreateProcess(const std::string& user);

  // Adds the named registry segment to the process's virtual memory if the
  // ACL grants the process's user access; returns its segment number.
  std::optional<Segno> Initiate(Process* process, const std::string& name);
  // Initiates every registered segment the user's ACLs permit (convenient
  // for examples).
  void InitiateAll(Process* process);

  // Sets the process's initial execution point: `entry` symbol in segment
  // `segname`, executing in `ring`. The segment is initiated if needed.
  bool Start(Process* process, const std::string& segname, const std::string& entry, Ring ring);

  // --- machine interface --------------------------------------------------

  // Dispatches the CPU's pending trap. Returns true if execution should
  // continue (some process is running or ready), false when the system is
  // idle (all processes finished).
  bool HandleTrap();

  // Picks the next ready process and resumes it. Returns false when none.
  bool DispatchNext();

  // True when no process can run anymore.
  bool Idle() const;

  Process* current() const { return current_; }
  const std::vector<std::unique_ptr<Process>>& processes() const { return processes_; }

  // Device hooks supplied by the machine.
  void set_start_io(std::function<void(uint8_t, Word)> hook) { start_io_ = std::move(hook); }
  // Typewriter buffers (the machine's device layer reads/feeds these).
  std::string& tty_output() { return tty_output_; }
  const std::string& tty_output() const { return tty_output_; }
  std::string& tty_input() { return tty_input_; }
  const std::string& tty_input() const { return tty_input_; }

  // Wakes processes blocked in kSvcTtyRead (the machine calls this when
  // typewriter input arrives). Each awakened process re-executes its SVC.
  void NotifyTtyInput();

  // Handler for MME traps (installed by the 645-style baseline; default
  // kills the process).
  void set_mme_handler(std::function<bool(const TrapState&)> handler) {
    mme_handler_ = std::move(handler);
  }

  // Registered-users list appended by kSvcRegisterUser (admin example).
  const std::vector<std::string>& registered_users() const { return registered_users_; }

  const Options& options() const { return options_; }
  void set_quantum(int64_t quantum) { options_.quantum = quantum; }
  void set_trap_storm_limit(int64_t limit) { options_.trap_storm_limit = limit; }

  // --- snapshot support (src/snapshot) ------------------------------------

  // Scheduler state by pid (processes are identified by pid in the image;
  // pointers are rebuilt on restore). current_pid 0 = no current process.
  struct SchedulerSnapshot {
    std::vector<int> ready_pids;
    int current_pid = 0;
    bool handling_trap = false;
    int next_pid = 1;
    int anonymous_segments = 0;
  };
  SchedulerSnapshot SnapshotScheduler() const;

  // Replaces the process table and scheduler state. Every pid named by
  // `sched` must exist in `processes`; returns false (with *error filled)
  // otherwise, leaving the supervisor unusable — callers treat that as a
  // failed restore and discard the machine.
  bool RestoreProcesses(std::vector<std::unique_ptr<Process>> processes,
                        const SchedulerSnapshot& sched, std::string* error);

  void RestoreTty(std::string output, std::string input) {
    tty_output_ = std::move(output);
    tty_input_ = std::move(input);
  }
  void RestoreRegisteredUsers(std::vector<std::string> users) {
    registered_users_ = std::move(users);
  }

 private:
  // Charges `steps` logical supervisor steps to the cycle account.
  void Charge(uint64_t steps);

  // HandleTrap body; the public wrapper adds double-fault detection.
  bool HandleTrapImpl();

  // Trap-storm watchdog bookkeeping; true when the limit was hit and the
  // current process was killed.
  bool WatchdogTripped(const TrapState& trap);

  // Hardware-fault recovery: when a fatal-looking trap was caused by a
  // corrupted *cached* SDW (the authoritative descriptor-segment copy
  // disagrees with what the processor cached), invalidate the cached copy
  // and resume the disrupted instruction instead of killing the process.
  // Returns true when it recovered and resumed.
  bool TryRecoverCachedSdw(const TrapState& trap);

  void KillCurrent(TrapCause cause, const SegAddr& pc);
  void ResumeCurrent(const RegisterFile& regs);

  // Service bodies (SVC).
  void DispatchService(const TrapState& trap);
  void SvcExit(const TrapState& trap);
  void SvcTtyWrite(const TrapState& trap, RegisterFile* regs);
  // Returns false when the caller was blocked awaiting input (the
  // process will re-issue the SVC when awakened; do not resume now).
  bool SvcTtyRead(const TrapState& trap, RegisterFile* regs);
  void SvcSetAcl(const TrapState& trap, RegisterFile* regs);
  void SvcMakeSegment(const TrapState& trap, RegisterFile* regs);

  // The hard cases (Call and Return section).
  void EmulateUpwardCall(const TrapState& trap);
  void EmulateDownwardReturn(const TrapState& trap);

  // Dynamic linking: resolve the fault-tagged word at trap.fault_addr,
  // overwrite it with a snapped pointer, and resume the disrupted
  // instruction. Kills the process when the symbolic target does not
  // resolve.
  void SnapLink(const TrapState& trap);

  // Argument-list helpers (shared with services). Reads the argument list
  // addressed by `ap`, validating every reference at the hardware-
  // equivalent effective ring. Returns false on any violation (cause in
  // *fault).
  struct ArgRef {
    SegAddr addr{};
    Ring effective_ring = 0;
    uint32_t length = 0;
  };
  bool ReadArgList(const PointerRegister& ap, std::vector<ArgRef>* args, TrapCause* fault);

  // Stack-area allocation in a ring's stack segment (word 0 protocol).
  std::optional<Wordno> AllocateStackArea(Ring ring, uint64_t words);
  void ReleaseStackArea(Ring ring, uint64_t words);

  Cpu* cpu_;
  PhysicalMemory* memory_;
  SegmentRegistry* registry_;
  Options options_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> ready_;
  Process* current_ = nullptr;
  bool handling_trap_ = false;
  int next_pid_ = 1;
  int anonymous_segments_ = 0;

  std::function<void(uint8_t, Word)> start_io_;
  std::function<bool(const TrapState&)> mme_handler_;
  std::string tty_output_;
  std::string tty_input_;
  std::vector<std::string> registered_users_;
};

}  // namespace rings

#endif  // SRC_SUP_SUPERVISOR_H_

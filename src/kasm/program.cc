#include "src/kasm/program.h"

namespace rings {

const AssembledSegment* Program::Find(const std::string& name) const {
  for (const AssembledSegment& seg : segments) {
    if (seg.name == name) {
      return &seg;
    }
  }
  return nullptr;
}

AssembledSegment* Program::Find(const std::string& name) {
  for (AssembledSegment& seg : segments) {
    if (seg.name == name) {
      return &seg;
    }
  }
  return nullptr;
}

}  // namespace rings

#include "src/kasm/assembler.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "src/base/bitfield.h"
#include "src/base/strings.h"
#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"

namespace rings {

namespace {

constexpr unsigned kOffsetWidth = 18;

struct ParsedLine {
  int line_no = 0;
  std::string label;
  std::string mnemonic;  // directive (with leading '.') or opcode
  std::string rest;      // raw operand text
};

struct AsmContext {
  Program program;
  AssembledSegment* current = nullptr;
  std::map<std::string, int64_t> equs;
  AssembleError error;
  bool failed = false;

  bool Fail(int line, std::string message) {
    if (!failed) {
      failed = true;
      error = AssembleError{line, std::move(message)};
    }
    return false;
  }
};

bool IsIdentifier(std::string_view s) {
  if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')) {
    return false;
  }
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

bool ParseNumber(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return false;
  }
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (s.empty()) {
    return false;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  int64_t value = 0;
  for (const char c : s) {
    int digit;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = c - '0';
    } else if (base == 16 && std::isxdigit(static_cast<unsigned char>(c))) {
      digit = 10 + (std::tolower(static_cast<unsigned char>(c)) - 'a');
    } else {
      return false;
    }
    value = value * base + digit;
  }
  *out = negative ? -value : value;
  return true;
}

// Strips comments, extracts an optional label, and splits mnemonic/rest.
bool ParseLine(std::string_view raw, int line_no, ParsedLine* out) {
  const size_t comment = raw.find_first_of(";#");
  if (comment != std::string_view::npos) {
    raw = raw.substr(0, comment);
  }
  std::string_view text = StripWhitespace(raw);
  if (text.empty()) {
    return false;
  }
  out->line_no = line_no;

  const size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    const std::string_view label = StripWhitespace(text.substr(0, colon));
    if (IsIdentifier(label)) {
      out->label = std::string(label);
      text = StripWhitespace(text.substr(colon + 1));
    }
  }
  if (text.empty()) {
    return true;  // label-only line
  }
  const size_t space = text.find_first_of(" \t");
  if (space == std::string_view::npos) {
    out->mnemonic = ToLower(text);
  } else {
    out->mnemonic = ToLower(text.substr(0, space));
    out->rest = std::string(StripWhitespace(text.substr(space + 1)));
  }
  return true;
}

// Evaluates an expression against the equ table and the symbols of `seg`.
bool EvalExpr(const AsmContext& ctx, const AssembledSegment* seg, std::string_view expr,
              int64_t* out) {
  expr = StripWhitespace(expr);
  if (expr.empty()) {
    return false;
  }
  if (ParseNumber(expr, out)) {
    return true;
  }
  // name, name+literal, name-literal
  size_t split = expr.find_first_of("+-", 1);
  std::string_view name = expr;
  int64_t addend = 0;
  if (split != std::string_view::npos) {
    name = StripWhitespace(expr.substr(0, split));
    int64_t rhs;
    if (!ParseNumber(expr.substr(split + 1), &rhs)) {
      return false;
    }
    addend = expr[split] == '+' ? rhs : -rhs;
  }
  const std::string key(name);
  if (const auto it = ctx.equs.find(key); it != ctx.equs.end()) {
    *out = it->second + addend;
    return true;
  }
  if (seg != nullptr) {
    if (const auto sym = seg->Symbol(key); sym.has_value()) {
      *out = static_cast<int64_t>(*sym) + addend;
      return true;
    }
  }
  return false;
}

// Parses "xN" / "prN"; returns register number or nullopt.
std::optional<uint8_t> ParseRegister(std::string_view text, std::string_view prefix) {
  text = StripWhitespace(text);
  if (text.size() != prefix.size() + 1 || !EqualsIgnoreCase(text.substr(0, prefix.size()), prefix)) {
    return std::nullopt;
  }
  const char digit = text[prefix.size()];
  if (digit < '0' || digit > '7') {
    return std::nullopt;
  }
  return static_cast<uint8_t>(digit - '0');
}

// Splits operand text on commas, respecting no nesting (the language has
// none), and trims each piece.
std::vector<std::string> SplitOperands(std::string_view rest) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= rest.size()) {
    const size_t comma = rest.find(',', start);
    const std::string_view piece = comma == std::string_view::npos
                                       ? rest.substr(start)
                                       : rest.substr(start, comma - start);
    const std::string_view trimmed = StripWhitespace(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

// Counts the words a line will emit (pass 1).
bool SizeOfLine(AsmContext& ctx, const ParsedLine& line, uint64_t* words) {
  *words = 0;
  if (line.mnemonic.empty()) {
    return true;
  }
  if (line.mnemonic[0] == '.') {
    if (line.mnemonic == ".segment" || line.mnemonic == ".gates" || line.mnemonic == ".equ" ||
        line.mnemonic == ".reserve") {
      return true;
    }
    if (line.mnemonic == ".word" || line.mnemonic == ".its" || line.mnemonic == ".link") {
      *words = 1;
      return true;
    }
    if (line.mnemonic == ".string") {
      // One word per character of the operand text (leading/trailing
      // whitespace already stripped by the line parser).
      *words = line.rest.size();
      return *words > 0 || ctx.Fail(line.line_no, ".string requires text");
    }
    if (line.mnemonic == ".block") {
      int64_t n;
      if (!ParseNumber(line.rest, &n) || n < 0) {
        return ctx.Fail(line.line_no, ".block requires a nonnegative literal count");
      }
      *words = static_cast<uint64_t>(n);
      return true;
    }
    return ctx.Fail(line.line_no, "unknown directive: " + line.mnemonic);
  }
  if (!OpcodeFromMnemonic(line.mnemonic).has_value()) {
    return ctx.Fail(line.line_no, "unknown opcode: " + line.mnemonic);
  }
  *words = 1;
  return true;
}

bool AssembleInstruction(AsmContext& ctx, const ParsedLine& line, Instruction* ins) {
  const auto opcode = OpcodeFromMnemonic(line.mnemonic);
  *ins = Instruction{};
  ins->opcode = *opcode;
  const OpcodeInfo& info = GetOpcodeInfo(*opcode);

  std::vector<std::string> pieces = SplitOperands(line.rest);
  size_t next = 0;

  if (info.uses_reg) {
    if (next >= pieces.size()) {
      return ctx.Fail(line.line_no, line.mnemonic + " requires a register operand");
    }
    const std::string& spec = pieces[next++];
    std::optional<uint8_t> reg = ParseRegister(spec, "x");
    if (!reg.has_value()) {
      reg = ParseRegister(spec, "pr");
    }
    if (!reg.has_value()) {
      int64_t literal;
      if (ParseNumber(spec, &literal) && literal >= 0 && literal <= 7) {
        reg = static_cast<uint8_t>(literal);
      }
    }
    if (!reg.has_value()) {
      return ctx.Fail(line.line_no, "bad register operand: " + spec);
    }
    ins->reg = *reg;
  }

  // Trailing modifier pieces: ",xN" index tag and ",*" indirect.
  while (!pieces.empty() && pieces.size() > next) {
    const std::string& last = pieces.back();
    if (last == "*") {
      ins->indirect = true;
      pieces.pop_back();
      continue;
    }
    if (const auto tag = ParseRegister(last, "x"); tag.has_value() && pieces.size() > next + 1) {
      if (*tag == 0) {
        return ctx.Fail(line.line_no, "x0 cannot be used as an index tag");
      }
      ins->tag = *tag;
      pieces.pop_back();
      continue;
    }
    break;
  }

  const bool wants_addr = info.operand != OperandKind::kNone;
  if (!wants_addr) {
    if (next < pieces.size()) {
      return ctx.Fail(line.line_no, line.mnemonic + " takes no address operand");
    }
    return true;
  }
  if (next >= pieces.size()) {
    return ctx.Fail(line.line_no, line.mnemonic + " requires an address operand");
  }
  std::string addr = pieces[next++];
  if (next < pieces.size()) {
    return ctx.Fail(line.line_no, "unexpected operand: " + pieces[next]);
  }

  // prN|expr ?
  std::string_view addr_view = addr;
  const size_t bar = addr_view.find('|');
  std::string_view expr = addr_view;
  if (bar != std::string_view::npos) {
    const auto prnum = ParseRegister(addr_view.substr(0, bar), "pr");
    if (!prnum.has_value()) {
      return ctx.Fail(line.line_no, "bad pointer-register base: " + addr);
    }
    ins->pr_relative = true;
    ins->prnum = *prnum;
    expr = addr_view.substr(bar + 1);
  }

  int64_t value;
  if (!EvalExpr(ctx, ctx.current, expr, &value)) {
    return ctx.Fail(line.line_no, "cannot evaluate expression: " + std::string(expr));
  }
  if (!FitsSigned(value, kOffsetWidth)) {
    return ctx.Fail(line.line_no, StrFormat("offset %lld does not fit in 18 bits",
                                            static_cast<long long>(value)));
  }
  ins->offset = static_cast<int32_t>(value);
  return true;
}

bool EmitLine(AsmContext& ctx, const ParsedLine& line) {
  if (line.mnemonic.empty()) {
    return true;
  }
  AssembledSegment* seg = ctx.current;

  if (line.mnemonic[0] == '.') {
    if (line.mnemonic == ".segment") {
      const std::string name(StripWhitespace(line.rest));
      ctx.current = ctx.program.Find(name);
      return ctx.current != nullptr ||
             ctx.Fail(line.line_no, "internal: segment not found in pass 2");
    }
    if (line.mnemonic == ".equ") {
      return true;  // handled in pass 1; legal outside segments
    }
    if (seg == nullptr) {
      return ctx.Fail(line.line_no, "directive outside a .segment");
    }
    if (line.mnemonic == ".gates" || line.mnemonic == ".reserve") {
      return true;  // handled in pass 1
    }
    if (line.mnemonic == ".word") {
      int64_t value;
      if (!EvalExpr(ctx, seg, line.rest, &value)) {
        return ctx.Fail(line.line_no, "cannot evaluate expression: " + line.rest);
      }
      seg->words.push_back(static_cast<Word>(value));
      return true;
    }
    if (line.mnemonic == ".block") {
      int64_t n;
      ParseNumber(line.rest, &n);
      seg->words.insert(seg->words.end(), static_cast<size_t>(n), 0);
      return true;
    }
    if (line.mnemonic == ".string") {
      for (const char c : line.rest) {
        seg->words.push_back(static_cast<Word>(static_cast<unsigned char>(c)));
      }
      return true;
    }
    if (line.mnemonic == ".its" || line.mnemonic == ".link") {
      // .its/.link ring, segname, expr [,*]
      std::vector<std::string> pieces = SplitOperands(line.rest);
      bool indirect = false;
      if (!pieces.empty() && pieces.back() == "*") {
        indirect = true;
        pieces.pop_back();
      }
      if (pieces.size() != 3) {
        return ctx.Fail(line.line_no, line.mnemonic + " requires: ring, segment, offset [,*]");
      }
      int64_t ring;
      if (!EvalExpr(ctx, seg, pieces[0], &ring) || !IsValidRing(static_cast<unsigned>(ring))) {
        return ctx.Fail(line.line_no, "bad ring in " + line.mnemonic + ": " + pieces[0]);
      }
      ItsPatch patch;
      patch.wordno = static_cast<Wordno>(seg->words.size());
      patch.ring = static_cast<Ring>(ring);
      patch.indirect = indirect;
      patch.dynamic = line.mnemonic == ".link";
      patch.target_segment = pieces[1];
      // The offset expression is resolved by the loader against the target
      // segment's symbols unless it is a plain number.
      int64_t literal;
      if (ParseNumber(pieces[2], &literal)) {
        patch.target_offset = literal;
      } else {
        patch.target_symbol = pieces[2];
      }
      seg->patches.push_back(patch);
      seg->words.push_back(0);  // placeholder until load time
      return true;
    }
    return ctx.Fail(line.line_no, "unknown directive: " + line.mnemonic);
  }

  if (seg == nullptr) {
    return ctx.Fail(line.line_no, "instruction outside a .segment");
  }
  Instruction ins;
  if (!AssembleInstruction(ctx, line, &ins)) {
    return false;
  }
  seg->words.push_back(EncodeInstruction(ins));
  return true;
}

}  // namespace

std::string AssembleError::ToString() const {
  return StrFormat("line %d: %s", line, message.c_str());
}

AssembleResult Assemble(std::string_view source) {
  AsmContext ctx;

  // Split into lines and parse.
  std::vector<ParsedLine> lines;
  int line_no = 0;
  size_t start = 0;
  while (start <= source.size()) {
    const size_t nl = source.find('\n', start);
    const std::string_view raw = nl == std::string_view::npos ? source.substr(start)
                                                              : source.substr(start, nl - start);
    ++line_no;
    ParsedLine parsed;
    if (ParseLine(raw, line_no, &parsed)) {
      lines.push_back(std::move(parsed));
    }
    if (nl == std::string_view::npos) {
      break;
    }
    start = nl + 1;
  }

  // Pass 1: create segments, record symbols and sizes, collect .equ and
  // .gates and .reserve values.
  AssembledSegment* seg = nullptr;
  uint64_t location = 0;
  for (const ParsedLine& line : lines) {
    if (line.mnemonic == ".segment") {
      const std::string name(StripWhitespace(line.rest));
      if (!IsIdentifier(name)) {
        ctx.Fail(line.line_no, "bad segment name: " + name);
        break;
      }
      if (ctx.program.Find(name) != nullptr) {
        ctx.Fail(line.line_no, "duplicate segment: " + name);
        break;
      }
      ctx.program.segments.push_back(AssembledSegment{});
      seg = &ctx.program.segments.back();
      seg->name = name;
      location = 0;
      continue;
    }
    if (!line.label.empty()) {
      if (seg == nullptr) {
        ctx.Fail(line.line_no, "label outside a .segment");
        break;
      }
      if (seg->symbols.count(line.label) != 0) {
        ctx.Fail(line.line_no, "duplicate label: " + line.label);
        break;
      }
      seg->symbols[line.label] = static_cast<Wordno>(location);
    }
    if (line.mnemonic.empty()) {
      continue;
    }
    if (line.mnemonic == ".equ") {
      const std::vector<std::string> pieces = SplitOperands(line.rest);
      int64_t value;
      if (pieces.size() != 2 || !IsIdentifier(pieces[0]) ||
          !EvalExpr(ctx, seg, pieces[1], &value)) {
        ctx.Fail(line.line_no, ".equ requires: name, literal");
        break;
      }
      ctx.equs[pieces[0]] = value;
      continue;
    }
    if (seg == nullptr) {
      ctx.Fail(line.line_no, "statement outside a .segment");
      break;
    }
    if (line.mnemonic == ".gates") {
      int64_t n;
      if (!ParseNumber(line.rest, &n) || n < 0) {
        ctx.Fail(line.line_no, ".gates requires a nonnegative literal count");
        break;
      }
      seg->gate_count = static_cast<uint32_t>(n);
      continue;
    }
    if (line.mnemonic == ".reserve") {
      int64_t n;
      if (!ParseNumber(line.rest, &n) || n < 0) {
        ctx.Fail(line.line_no, ".reserve requires a nonnegative literal count");
        break;
      }
      seg->reserve_words += static_cast<uint64_t>(n);
      continue;
    }
    uint64_t words = 0;
    if (!SizeOfLine(ctx, line, &words)) {
      break;
    }
    location += words;
    if (location > kMaxSegmentWords) {
      ctx.Fail(line.line_no, "segment exceeds maximum size");
      break;
    }
  }

  // Pass 2: emit.
  if (!ctx.failed) {
    ctx.current = nullptr;
    for (const ParsedLine& line : lines) {
      if (!EmitLine(ctx, line)) {
        break;
      }
    }
  }

  AssembleResult result;
  result.ok = !ctx.failed;
  result.error = ctx.error;
  if (result.ok) {
    result.program = std::move(ctx.program);
  }
  return result;
}

Program AssembleOrDie(std::string_view source) {
  AssembleResult result = Assemble(source);
  if (!result.ok) {
    std::fprintf(stderr, "assembly failed: %s\n", result.error.ToString().c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace rings

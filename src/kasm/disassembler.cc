#include "src/kasm/disassembler.h"

#include "src/base/strings.h"
#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"

namespace rings {

std::string DisassembleWord(Word word) {
  Instruction ins;
  if (DecodeInstruction(word, &ins)) {
    return ins.ToString();
  }
  // Show both plausible data interpretations.
  const IndirectWord iw = DecodeIndirectWord(word);
  if (iw.segno != 0 || iw.ring != 0) {
    return StrFormat(".word %s  ; its %s", Hex(word).c_str(), iw.ToString().c_str());
  }
  return StrFormat(".word %llu", static_cast<unsigned long long>(word));
}

std::string DisassembleSegment(const std::vector<Word>& words, uint32_t gate_count) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    out += StrFormat("%6zu%s  %s\n", i, i < gate_count ? " G" : "  ",
                     DisassembleWord(words[i]).c_str());
  }
  return out;
}

}  // namespace rings

// Disassembler: renders machine words back to assembler-like text, for
// debugging, the ringsim CLI's listing mode, and round-trip tests.
#ifndef SRC_KASM_DISASSEMBLER_H_
#define SRC_KASM_DISASSEMBLER_H_

#include <string>
#include <vector>

#include "src/mem/word.h"

namespace rings {

// One word: the instruction mnemonic line if the word decodes to a valid
// instruction, otherwise a `.word`/indirect-word rendering. Data words
// that happen to decode are shown as instructions (the machine has no
// word tags; this mirrors what the processor itself would do).
std::string DisassembleWord(Word word);

// A full listing with word numbers; words below `gate_count` are marked
// as gates.
std::string DisassembleSegment(const std::vector<Word>& words, uint32_t gate_count = 0);

}  // namespace rings

#endif  // SRC_KASM_DISASSEMBLER_H_

// Assembled program representation: a set of named segments with their
// words, symbols, gate counts, and loader patch records for inter-segment
// pointer words (.its directives). Segment numbers are not known at
// assembly time — "segment numbers are not generally known at the time a
// segment is compiled" — so cross-segment references are resolved by the
// loader per process.
#ifndef SRC_KASM_PROGRAM_H_
#define SRC_KASM_PROGRAM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/ring.h"
#include "src/mem/word.h"

namespace rings {

// A .its patch: the loader must store at `wordno` an indirect word
// pointing at `target_symbol` (or plain offset) in segment `target_segment`
// with ring field `ring`. When `dynamic` is set (a .link directive) the
// loader instead emits a fault-tagged word and records the target in the
// segment's link table: the reference is resolved ("snapped") by the
// supervisor on first use — Multics-style dynamic linking, which also
// allows the target segment to be registered later than the referent.
struct ItsPatch {
  Wordno wordno = 0;
  Ring ring = 0;
  bool indirect = false;
  bool dynamic = false;
  std::string target_segment;
  std::string target_symbol;  // empty = use target_offset directly
  int64_t target_offset = 0;  // added to the symbol value (or absolute)
};

struct AssembledSegment {
  std::string name;
  std::vector<Word> words;
  uint32_t gate_count = 0;
  std::map<std::string, Wordno> symbols;
  std::vector<ItsPatch> patches;
  // Extra zero words appended at load time (from .bss-style `.reserve`).
  uint64_t reserve_words = 0;

  std::optional<Wordno> Symbol(const std::string& name_in) const {
    auto it = symbols.find(name_in);
    if (it == symbols.end()) {
      return std::nullopt;
    }
    return it->second;
  }
};

struct Program {
  std::vector<AssembledSegment> segments;

  const AssembledSegment* Find(const std::string& name) const;
  AssembledSegment* Find(const std::string& name);
};

}  // namespace rings

#endif  // SRC_KASM_PROGRAM_H_

// A two-pass assembler for the simulated machine's ISA. Used to author
// supervisor gate stubs, example programs, and benchmark workloads as
// realistic guest code.
//
// Syntax (line oriented; ';' and '#' start comments):
//
//   .segment name          begin a new segment
//   .gates n               declare the first n words to be gate locations
//   .equ name, expr        define an assembly-time constant
//   label: ...             define a label at the current location
//   .word expr             emit a data word
//   .string text           emit one word per character of `text` (no
//                          escapes; ';'/'#' end the line as comments)
//   .block n               emit n zero words
//   .reserve n             extend the segment by n zero words at load time
//   .its ring, seg, expr [,*]
//                          emit an indirect word to `expr` in segment `seg`
//                          (resolved by the loader), ring field `ring`,
//                          optional further-indirection flag
//   .link ring, seg, expr [,*]
//                          like .its, but emit a fault-tagged word that the
//                          supervisor snaps on first reference (dynamic
//                          linking; `seg` may be registered later)
//
//   opcode [reg,] addr[,xN][,*]
//
//   reg     xN for index-register opcodes (ldx/stx/ldxi), prN for
//           pointer-register opcodes (epp/spp), a device number for sio
//   addr    expr            IPR-relative (same segment) or immediate
//           prN|expr        PR-relative
//   ,xN     index register modification (N in 1..7)
//   ,*      indirect
//
//   expr    decimal or 0x hex literal, a label, an .equ name, or
//           name+literal / name-literal
#ifndef SRC_KASM_ASSEMBLER_H_
#define SRC_KASM_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/kasm/program.h"

namespace rings {

struct AssembleError {
  int line = 0;
  std::string message;

  std::string ToString() const;
};

struct AssembleResult {
  bool ok = false;
  Program program;
  AssembleError error;
};

AssembleResult Assemble(std::string_view source);

// Convenience for tests/examples: asserts success (aborts with the error
// message on failure) and returns the program.
Program AssembleOrDie(std::string_view source);

}  // namespace rings

#endif  // SRC_KASM_ASSEMBLER_H_

// Verified snapshot/restore of complete architectural Machine state.
//
// A snapshot image captures everything the simulated machine can observe:
// the core store, the register file and internal processor state (TPR,
// pending trap, quantum timer), the architectural counters and trap
// array, the descriptor cache (timing-architectural: the cycle model
// charges a descriptor fetch only on a miss, so its contents and
// statistics are part of machine state), the segment registry, the
// supervisor's process table and scheduler, the event trace, the fault
// injector's stream, and the device layer (pending I/O completions, tty
// buffers). Host-only derived caches — verdicts, decoded instructions,
// the TLB, superblocks — are NOT serialized; restore flushes and rebuilds
// them, which is invisible to the simulation by the fast path's
// bit-identical contract.
//
// The restore contract is exact: a machine restored from a snapshot taken
// at a Machine::Run boundary produces the same FNV-1a fingerprint,
// counters, and trap sequence the live machine would have produced had it
// run uninterrupted (pinned by tests/snapshot/ across the slow, fast, and
// block engines and across fleet thread counts).
//
// The image is versioned and section-checksummed (CRC-32); truncated,
// bit-flipped, or wrong-endian images are rejected with structured errors
// — never UB, never an abort. All multi-byte fields are written
// byte-explicitly little-endian, so images are portable across hosts.
// See DESIGN.md §8 for the format.
#ifndef SRC_SNAPSHOT_SNAPSHOT_H_
#define SRC_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sys/machine.h"

namespace rings {

// "RING" when the little-endian header is viewed byte-reversed; the
// byte-swapped value is recognized and rejected as wrong-endian.
inline constexpr uint32_t kSnapshotMagic = 0x52494E47u;
inline constexpr uint32_t kSnapshotVersion = 1;

// Machine-shape facts needed to construct a compatible Machine before
// restoring (ringsim --restore reads these without decoding the rest).
struct SnapshotMeta {
  uint64_t memory_words = 0;
  ProtectionMode mode = ProtectionMode::kRingHardware;
  int64_t quantum = 5000;
  int64_t trap_storm_limit = 64;
  CycleModel cycle_model{};
};

// Serializes `machine` (which must be at a Machine::Run boundary — the
// fleet checkpoints between quanta, ringsim after Run returns). When
// `write_injector` is supplied, the kSnapshotWrite fault site may damage
// one byte of the produced image (the injector state serialized inside
// the image is captured before the roll). Returns false with a structured
// *error on failure.
bool SaveSnapshot(const Machine& machine, std::vector<uint8_t>* out, std::string* error,
                  FaultInjector* write_injector = nullptr);

// Validates magic, version, and every section CRC without touching a
// machine. This is the fleet's checkpoint verification step.
bool VerifySnapshot(const uint8_t* data, size_t size, std::string* error);
inline bool VerifySnapshot(const std::vector<uint8_t>& image, std::string* error) {
  return VerifySnapshot(image.data(), image.size(), error);
}

// Reads the meta section (after a full VerifySnapshot pass).
bool PeekSnapshotMeta(const uint8_t* data, size_t size, SnapshotMeta* meta, std::string* error);
inline bool PeekSnapshotMeta(const std::vector<uint8_t>& image, SnapshotMeta* meta,
                             std::string* error) {
  return PeekSnapshotMeta(image.data(), image.size(), meta, error);
}

// Restores `machine` from an image. The machine must have been
// constructed with the same memory size and cycle model as the image
// (the same factory/config that produced the snapshotted machine); the
// image is fully verified and decoded before any machine state is
// touched, so a rejected image leaves the machine unchanged. When
// `read_injector` is supplied, the kSnapshotRead fault site may damage
// one byte of the image on its way in (the CRCs then reject it).
bool RestoreSnapshot(const uint8_t* data, size_t size, Machine* machine, std::string* error,
                     FaultInjector* read_injector = nullptr);
inline bool RestoreSnapshot(const std::vector<uint8_t>& image, Machine* machine,
                            std::string* error, FaultInjector* read_injector = nullptr) {
  return RestoreSnapshot(image.data(), image.size(), machine, error, read_injector);
}

// File variants (ringsim --snapshot-out / --restore).
bool SaveSnapshotFile(const Machine& machine, const std::string& path, std::string* error,
                      FaultInjector* write_injector = nullptr);
bool ReadSnapshotFile(const std::string& path, std::vector<uint8_t>* out, std::string* error);
bool RestoreSnapshotFile(const std::string& path, Machine* machine, std::string* error,
                         FaultInjector* read_injector = nullptr);

}  // namespace rings

#endif  // SRC_SNAPSHOT_SNAPSHOT_H_

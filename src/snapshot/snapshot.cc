#include "src/snapshot/snapshot.h"

#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <utility>

#include "src/base/strings.h"
#include "src/core/ring.h"
#include "src/core/trap_cause.h"

namespace rings {

namespace {

// --------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table-driven, no dependencies.
// --------------------------------------------------------------------------

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

constexpr uint32_t ByteSwap32(uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24);
}

// --------------------------------------------------------------------------
// Wire primitives: byte-explicit little-endian writer and bounds-checked
// reader. Every reader failure carries a structured message; readers never
// index past the buffer.
// --------------------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<uint8_t>& buf() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint64_t len = U64();
    if (!ok_) {
      return {};
    }
    if (len > size_ - pos_) {
      Fail(StrFormat("string length %llu exceeds remaining payload",
                     static_cast<unsigned long long>(len)));
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  bool AtEnd() const { return !ok_ || pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

  void Fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
  }

 private:
  bool Need(size_t n) {
    if (!ok_) {
      return false;
    }
    if (size_ - pos_ < n) {
      Fail("payload truncated");
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// --------------------------------------------------------------------------
// Image layout.
//
// Header (16 bytes): magic u32, version u32, section count u32, CRC-32 of
// the first 12 bytes. Then `section count` sections, each framed as
// id u32, payload length u64, payload CRC-32 u32, payload bytes. No
// padding, no trailing bytes.
// --------------------------------------------------------------------------

enum class Section : uint32_t {
  kMeta = 1,
  kMemory = 2,
  kCpu = 3,
  kRegistry = 4,
  kSupervisor = 5,
  kTrace = 6,
  kFault = 7,
  kDevice = 8,
};
constexpr uint32_t kNumSections = 8;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kSectionFrameBytes = 4 + 8 + 4;

void AppendSection(std::vector<uint8_t>* image, Section id, const std::vector<uint8_t>& payload) {
  Writer frame;
  frame.U32(static_cast<uint32_t>(id));
  frame.U64(payload.size());
  frame.U32(Crc32(payload.data(), payload.size()));
  image->insert(image->end(), frame.buf().begin(), frame.buf().end());
  image->insert(image->end(), payload.begin(), payload.end());
}

struct SectionSpan {
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool present = false;
};

// Header + section-table walk shared by VerifySnapshot and the decoders.
// Fills `spans` (indexed by section id - 1) when non-null.
bool WalkImage(const uint8_t* data, size_t size, std::array<SectionSpan, kNumSections>* spans,
               std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (size < kHeaderBytes) {
    return fail(StrFormat("image truncated: %zu bytes, header needs %zu", size, kHeaderBytes));
  }
  Reader header(data, kHeaderBytes);
  const uint32_t magic = header.U32();
  const uint32_t version = header.U32();
  const uint32_t section_count = header.U32();
  const uint32_t header_crc = header.U32();
  if (magic != kSnapshotMagic) {
    if (magic == ByteSwap32(kSnapshotMagic)) {
      return fail("wrong-endian image (magic is byte-swapped)");
    }
    return fail(StrFormat("bad magic 0x%08x (expected 0x%08x)", magic, kSnapshotMagic));
  }
  if (version != kSnapshotVersion) {
    return fail(StrFormat("unsupported snapshot version %u (expected %u)", version,
                          kSnapshotVersion));
  }
  if (header_crc != Crc32(data, 12)) {
    return fail("header CRC mismatch");
  }
  if (section_count != kNumSections) {
    return fail(StrFormat("unexpected section count %u (expected %u)", section_count,
                          kNumSections));
  }
  size_t pos = kHeaderBytes;
  for (uint32_t s = 0; s < section_count; ++s) {
    if (size - pos < kSectionFrameBytes) {
      return fail(StrFormat("image truncated in section table (section %u of %u)", s + 1,
                            section_count));
    }
    Reader frame(data + pos, kSectionFrameBytes);
    const uint32_t id = frame.U32();
    const uint64_t length = frame.U64();
    const uint32_t crc = frame.U32();
    pos += kSectionFrameBytes;
    if (id == 0 || id > kNumSections) {
      return fail(StrFormat("unknown section id %u", id));
    }
    if (length > size - pos) {
      return fail(StrFormat("section %u truncated: %llu payload bytes declared, %zu remain", id,
                            static_cast<unsigned long long>(length), size - pos));
    }
    if (crc != Crc32(data + pos, static_cast<size_t>(length))) {
      return fail(StrFormat("section %u payload CRC mismatch", id));
    }
    if (spans != nullptr) {
      SectionSpan& span = (*spans)[id - 1];
      if (span.present) {
        return fail(StrFormat("duplicate section id %u", id));
      }
      span = SectionSpan{data + pos, static_cast<size_t>(length), true};
    }
    pos += static_cast<size_t>(length);
  }
  if (pos != size) {
    return fail(StrFormat("trailing bytes after last section (%zu of %zu consumed)", pos, size));
  }
  if (spans != nullptr) {
    for (uint32_t id = 1; id <= kNumSections; ++id) {
      if (!(*spans)[id - 1].present) {
        return fail(StrFormat("missing section id %u", id));
      }
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// Shared codecs for architectural structures.
// --------------------------------------------------------------------------

void WritePointerRegister(Writer* w, const PointerRegister& pr) {
  w->U8(pr.ring);
  w->U32(pr.segno);
  w->U32(pr.wordno);
}

PointerRegister ReadPointerRegister(Reader* r) {
  PointerRegister pr;
  const uint8_t ring = r->U8();
  pr.segno = r->U32();
  pr.wordno = r->U32();
  if (r->ok() && !IsValidRing(ring)) {
    r->Fail(StrFormat("pointer-register ring %u out of range", ring));
    return pr;
  }
  pr.ring = ring;
  return pr;
}

void WriteSegAddr(Writer* w, const SegAddr& addr) {
  w->U32(addr.segno);
  w->U32(addr.wordno);
}

SegAddr ReadSegAddr(Reader* r) {
  SegAddr addr;
  addr.segno = r->U32();
  addr.wordno = r->U32();
  return addr;
}

void WriteRegisterFile(Writer* w, const RegisterFile& regs) {
  w->U64(regs.a);
  w->U64(regs.q);
  for (const uint32_t x : regs.x) {
    w->U32(x);
  }
  for (const PointerRegister& pr : regs.pr) {
    WritePointerRegister(w, pr);
  }
  WritePointerRegister(w, regs.ipr);
  w->U64(regs.dbr.base);
  w->U32(regs.dbr.bound);
  w->U32(regs.dbr.stack_base);
}

RegisterFile ReadRegisterFile(Reader* r) {
  RegisterFile regs;
  regs.a = r->U64();
  regs.q = r->U64();
  for (uint32_t& x : regs.x) {
    x = r->U32();
  }
  for (PointerRegister& pr : regs.pr) {
    pr = ReadPointerRegister(r);
  }
  regs.ipr = ReadPointerRegister(r);
  regs.dbr.base = r->U64();
  regs.dbr.bound = r->U32();
  regs.dbr.stack_base = r->U32();
  return regs;
}

void WriteSegmentAccess(Writer* w, const SegmentAccess& access) {
  uint8_t flags = 0;
  flags |= access.flags.read ? 1u : 0u;
  flags |= access.flags.write ? 2u : 0u;
  flags |= access.flags.execute ? 4u : 0u;
  w->U8(flags);
  w->U8(access.brackets.r1);
  w->U8(access.brackets.r2);
  w->U8(access.brackets.r3);
  w->U32(access.gate_count);
}

SegmentAccess ReadSegmentAccess(Reader* r) {
  SegmentAccess access;
  const uint8_t flags = r->U8();
  access.flags.read = (flags & 1u) != 0;
  access.flags.write = (flags & 2u) != 0;
  access.flags.execute = (flags & 4u) != 0;
  const uint8_t r1 = r->U8();
  const uint8_t r2 = r->U8();
  const uint8_t r3 = r->U8();
  access.gate_count = r->U32();
  if (r->ok() && (!IsValidRing(r1) || !IsValidRing(r2) || !IsValidRing(r3))) {
    r->Fail(StrFormat("bracket rings (%u,%u,%u) out of range", r1, r2, r3));
    return access;
  }
  access.brackets = Brackets{r1, r2, r3};
  return access;
}

void WriteSdw(Writer* w, const Sdw& sdw) {
  w->Bool(sdw.present);
  w->Bool(sdw.paged);
  w->U64(sdw.base);
  w->U64(sdw.bound);
  WriteSegmentAccess(w, sdw.access);
}

Sdw ReadSdw(Reader* r) {
  Sdw sdw;
  sdw.present = r->Bool();
  sdw.paged = r->Bool();
  sdw.base = r->U64();
  sdw.bound = r->U64();
  sdw.access = ReadSegmentAccess(r);
  return sdw;
}

void WriteInstruction(Writer* w, const Instruction& ins) {
  w->U8(static_cast<uint8_t>(ins.opcode));
  w->Bool(ins.indirect);
  w->Bool(ins.pr_relative);
  w->U8(ins.prnum);
  w->U8(ins.reg);
  w->U8(ins.tag);
  w->I64(ins.offset);
}

Instruction ReadInstruction(Reader* r) {
  Instruction ins;
  ins.opcode = static_cast<Opcode>(r->U8());
  ins.indirect = r->Bool();
  ins.pr_relative = r->Bool();
  ins.prnum = r->U8();
  ins.reg = r->U8();
  ins.tag = r->U8();
  ins.offset = static_cast<int32_t>(r->I64());
  return ins;
}

TrapCause ReadTrapCause(Reader* r) {
  const uint32_t cause = r->U32();
  if (r->ok() && cause >= static_cast<uint32_t>(TrapCause::kNumCauses)) {
    r->Fail(StrFormat("trap cause %u out of range", cause));
    return TrapCause::kNone;
  }
  return static_cast<TrapCause>(cause);
}

void WriteTrapState(Writer* w, const TrapState& trap) {
  w->U32(static_cast<uint32_t>(trap.cause));
  WriteRegisterFile(w, trap.regs);
  WritePointerRegister(w, trap.tpr);
  WriteInstruction(w, trap.instruction);
  w->I64(trap.code);
  WriteSegAddr(w, trap.fault_addr);
}

TrapState ReadTrapState(Reader* r) {
  TrapState trap;
  trap.cause = ReadTrapCause(r);
  trap.regs = ReadRegisterFile(r);
  trap.tpr = ReadPointerRegister(r);
  trap.instruction = ReadInstruction(r);
  trap.code = r->I64();
  trap.fault_addr = ReadSegAddr(r);
  return trap;
}

size_t CounterFieldCount() {
  size_t count = 0;
  Counters::ForEachField([&count](const char*, uint64_t Counters::*, bool) { ++count; });
  return count;
}

void WriteCounters(Writer* w, const Counters& counters) {
  w->U32(static_cast<uint32_t>(CounterFieldCount()));
  Counters::ForEachField([w, &counters](const char*, uint64_t Counters::* member, bool) {
    w->U64(counters.*member);
  });
  w->U32(static_cast<uint32_t>(counters.traps.size()));
  for (const uint64_t n : counters.traps) {
    w->U64(n);
  }
}

Counters ReadCounters(Reader* r) {
  Counters counters;
  const uint32_t fields = r->U32();
  if (r->ok() && fields != CounterFieldCount()) {
    r->Fail(StrFormat("counter field count %u does not match this build's %zu", fields,
                      CounterFieldCount()));
    return counters;
  }
  Counters::ForEachField([r, &counters](const char*, uint64_t Counters::* member, bool) {
    counters.*member = r->U64();
  });
  const uint32_t traps = r->U32();
  if (r->ok() && traps != counters.traps.size()) {
    r->Fail(StrFormat("trap array size %u does not match this build's %zu", traps,
                      counters.traps.size()));
    return counters;
  }
  for (uint64_t& n : counters.traps) {
    n = r->U64();
  }
  return counters;
}

// --------------------------------------------------------------------------
// Section payload encoders (save side).
// --------------------------------------------------------------------------

std::vector<uint8_t> EncodeMeta(const Machine& machine) {
  Writer w;
  const MachineConfig& config = machine.config();
  w.U64(machine.memory().size());
  w.U8(static_cast<uint8_t>(machine.cpu().mode()));
  w.I64(machine.supervisor().options().quantum);
  w.I64(machine.supervisor().options().trap_storm_limit);
  const CycleModel& cm = config.cycle_model;
  w.U64(cm.instruction_base);
  w.U64(cm.memory_ref);
  w.U64(cm.sdw_fetch);
  w.U64(cm.access_check);
  w.U64(cm.trap);
  w.U64(cm.rett);
  w.U64(cm.supervisor_step);
  w.U64(cm.io_latency);
  return w.buf();
}

std::vector<uint8_t> EncodeMemory(const Machine& machine) {
  Writer w;
  const PhysicalMemory& memory = machine.memory();
  w.U64(memory.allocated());
  w.U64(memory.fault_count());
  const auto latched = memory.fault_pending() ? memory.TakeFault() : std::nullopt;
  if (latched.has_value()) {
    // TakeFault cleared the latch (it models a read-to-clear hardware
    // indicator); re-arm it so saving is observation-free.
    const_cast<PhysicalMemory&>(memory).RestoreFaultLatch(latched, memory.fault_count());
  }
  w.Bool(latched.has_value());
  if (latched.has_value()) {
    w.U64(latched->addr);
    w.Bool(latched->write);
  }
  // Zero-run RLE over the core store: the typical machine allocates a few
  // hundred K words out of a multi-megaword store, so images stay compact.
  // Read through the non-latching word() accessor — the COW store has no
  // contiguous backing array to hand out.
  const size_t size = memory.size();
  w.U64(size);
  size_t i = 0;
  while (i < size) {
    size_t j = i;
    if (memory.word(i) == 0) {
      while (j < size && memory.word(j) == 0) {
        ++j;
      }
      w.U8(0);
      w.U64(j - i);
    } else {
      while (j < size && memory.word(j) != 0) {
        ++j;
      }
      w.U8(1);
      w.U64(j - i);
      for (size_t k = i; k < j; ++k) {
        w.U64(memory.word(k));
      }
    }
    i = j;
  }
  return w.buf();
}

std::vector<uint8_t> EncodeCpu(const Machine& machine) {
  Writer w;
  const Cpu& cpu = machine.cpu();
  w.U64(cpu.cycles());
  WriteRegisterFile(&w, cpu.regs());
  WritePointerRegister(&w, cpu.tpr());
  w.Bool(cpu.checks_enabled());
  w.Bool(cpu.timer_enabled());
  w.I64(cpu.timer());
  w.Bool(cpu.trap_pending());
  WriteTrapState(&w, cpu.trap_state());
  WriteCounters(&w, cpu.counters());
  const SdwCache& cache = cpu.sdw_cache();
  w.Bool(cache.enabled());
  w.U64(cache.hits());
  w.U64(cache.misses());
  w.U32(static_cast<uint32_t>(SdwCache::kEntries));
  for (size_t e = 0; e < SdwCache::kEntries; ++e) {
    const SdwCache::SnapshotEntry entry = cache.SnapshotAt(e);
    w.Bool(entry.valid);
    w.U32(entry.segno);
    WriteSdw(&w, entry.sdw);
  }
  return w.buf();
}

std::vector<uint8_t> EncodeRegistry(const Machine& machine) {
  Writer w;
  const SegmentRegistry& registry = machine.registry();
  w.U32(registry.next_segno());
  w.U64(registry.segments().size());
  for (const RegisteredSegment& seg : registry.segments()) {
    w.Str(seg.name);
    w.U32(seg.segno);
    w.U64(seg.base);
    w.Bool(seg.paged);
    w.U64(seg.bound);
    w.U32(seg.gate_count);
    w.U64(seg.acl.entries().size());
    for (const AclEntry& entry : seg.acl.entries()) {
      w.Str(entry.user);
      WriteSegmentAccess(&w, entry.access);
    }
    w.U64(seg.symbols.size());
    for (const auto& [symbol, wordno] : seg.symbols) {
      w.Str(symbol);
      w.U32(wordno);
    }
    w.U64(seg.links.size());
    for (const LinkTarget& link : seg.links) {
      w.Str(link.segment);
      w.Str(link.symbol);
      w.I64(link.offset);
      w.U8(link.ring);
      w.Bool(link.indirect);
    }
  }
  return w.buf();
}

std::vector<uint8_t> EncodeSupervisor(const Machine& machine) {
  Writer w;
  const Supervisor& sup = machine.supervisor();
  const Supervisor::SchedulerSnapshot sched = sup.SnapshotScheduler();
  w.I64(sched.next_pid);
  w.I64(sched.anonymous_segments);
  w.Bool(sched.handling_trap);
  w.I64(sched.current_pid);
  w.U64(sched.ready_pids.size());
  for (const int pid : sched.ready_pids) {
    w.I64(pid);
  }
  w.Str(sup.tty_output());
  w.Str(const_cast<Supervisor&>(sup).tty_input());
  w.U64(sup.registered_users().size());
  for (const std::string& user : sup.registered_users()) {
    w.Str(user);
  }
  w.U64(sup.processes().size());
  for (const auto& process : sup.processes()) {
    w.I64(process->pid);
    w.Str(process->user);
    w.U8(static_cast<uint8_t>(process->state));
    w.U64(process->dbr.base);
    w.U32(process->dbr.bound);
    w.U32(process->dbr.stack_base);
    WriteRegisterFile(&w, process->saved_regs);
    w.I64(process->exit_code);
    w.U32(static_cast<uint32_t>(process->kill_cause));
    WriteSegAddr(&w, process->kill_pc);
    w.U64(process->instructions_run);
    w.U64(process->dispatches);
    w.U64(process->trap_streak);
    w.U64(process->last_trap_instructions);
    w.U64(process->return_gates.size());
    for (const ReturnGate& gate : process->return_gates) {
      WriteSegAddr(&w, gate.expected_target);
      w.U8(gate.caller_ring);
      w.U8(gate.callee_ring);
      WritePointerRegister(&w, gate.saved_sp);
      WritePointerRegister(&w, gate.saved_sb);
      WritePointerRegister(&w, gate.saved_ap);
      w.U64(gate.transfer_words);
      w.U64(gate.copied_args.size());
      for (const ReturnGate::CopiedArg& arg : gate.copied_args) {
        WriteSegAddr(&w, arg.original);
        WriteSegAddr(&w, arg.transfer);
        w.U32(arg.length);
        w.U8(arg.effective_ring);
      }
    }
  }
  return w.buf();
}

std::vector<uint8_t> EncodeTrace(const Machine& machine) {
  Writer w;
  const EventTrace& trace = machine.trace();
  w.Bool(trace.enabled());
  w.U64(trace.events().size());
  for (const TraceEvent& e : trace.events()) {
    w.U8(static_cast<uint8_t>(e.kind));
    w.U64(e.cycle);
    w.U8(e.ring);
    WriteSegAddr(&w, e.pc);
    w.U32(static_cast<uint32_t>(e.cause));
    w.U8(e.new_ring);
    w.Str(e.note);
  }
  return w.buf();
}

std::vector<uint8_t> EncodeFault(const Machine& machine) {
  Writer w;
  const FaultInjector* injector = machine.fault_injector();
  w.Bool(injector != nullptr);
  if (injector == nullptr) {
    return w.buf();
  }
  const FaultConfig& config = injector->config();
  w.Bool(config.enabled);
  w.U64(config.seed);
  w.U32(static_cast<uint32_t>(config.rate_ppm.size()));
  for (const uint32_t ppm : config.rate_ppm) {
    w.U32(ppm);
  }
  w.U64(injector->rng().state(0));
  w.U64(injector->rng().state(1));
  w.U64(injector->snapshot_rng().state(0));
  w.U64(injector->snapshot_rng().state(1));
  w.U32(static_cast<uint32_t>(injector->counts().size()));
  for (const uint64_t count : injector->counts()) {
    w.U64(count);
  }
  w.U64(injector->sequence());
  w.U64(injector->events().size());
  for (const FaultEvent& e : injector->events()) {
    w.U64(e.sequence);
    w.U32(static_cast<uint32_t>(e.site));
    w.U64(e.cycle);
    w.U32(e.segno);
    w.U32(e.wordno);
    w.Str(e.detail);
  }
  return w.buf();
}

std::vector<uint8_t> EncodeDevice(const Machine& machine) {
  Writer w;
  w.U64(machine.tty_operations());
  w.U64(machine.audit_runs());
  w.U64(machine.pending_io().size());
  for (const Machine::IoEvent& event : machine.pending_io()) {
    w.U64(event.due_cycle);
    w.U8(event.device);
  }
  return w.buf();
}

// --------------------------------------------------------------------------
// Section payload decoders (restore side). Everything decodes into host
// structures before any machine state is touched, so a rejected image
// leaves the machine unchanged.
// --------------------------------------------------------------------------

struct DecodedMemory {
  AbsAddr next_free = 0;
  uint64_t fault_count = 0;
  std::optional<MemoryFault> latched;
  std::vector<Word> store;
};

struct DecodedCpu {
  uint64_t cycles = 0;
  RegisterFile regs;
  Tpr tpr;
  bool checks_enabled = true;
  bool timer_enabled = false;
  int64_t timer = 0;
  bool trap_pending = false;
  TrapState trap_state;
  Counters counters;
  bool sdw_cache_enabled = true;
  uint64_t sdw_hits = 0;
  uint64_t sdw_misses = 0;
  std::array<SdwCache::SnapshotEntry, SdwCache::kEntries> sdw_entries{};
};

struct DecodedSupervisor {
  Supervisor::SchedulerSnapshot sched;
  std::string tty_output;
  std::string tty_input;
  std::vector<std::string> users;
  std::vector<std::unique_ptr<Process>> processes;
};

struct DecodedFault {
  bool present = false;
  FaultConfig config;
  uint64_t rng_state0 = 0;
  uint64_t rng_state1 = 0;
  uint64_t snapshot_rng_state0 = 0;
  uint64_t snapshot_rng_state1 = 0;
  std::array<uint64_t, kNumFaultSites> counts{};
  uint64_t sequence = 0;
  std::vector<FaultEvent> events;
};

struct DecodedDevice {
  uint64_t tty_operations = 0;
  uint64_t audit_runs = 0;
  std::deque<Machine::IoEvent> pending_io;
};

bool SectionError(Reader* r, Section id, std::string* error) {
  if (r->ok() && !r->AtEnd()) {
    r->Fail("unconsumed payload bytes");
  }
  if (r->ok()) {
    return true;
  }
  if (error != nullptr) {
    *error = StrFormat("section %u: %s", static_cast<uint32_t>(id), r->error().c_str());
  }
  return false;
}

bool DecodeMeta(const SectionSpan& span, SnapshotMeta* meta, std::string* error) {
  Reader r(span.data, span.size);
  meta->memory_words = r.U64();
  const uint8_t mode = r.U8();
  if (r.ok() && mode > static_cast<uint8_t>(ProtectionMode::kFlags645)) {
    r.Fail(StrFormat("protection mode %u out of range", mode));
  }
  meta->mode = static_cast<ProtectionMode>(mode);
  meta->quantum = r.I64();
  meta->trap_storm_limit = r.I64();
  CycleModel& cm = meta->cycle_model;
  cm.instruction_base = r.U64();
  cm.memory_ref = r.U64();
  cm.sdw_fetch = r.U64();
  cm.access_check = r.U64();
  cm.trap = r.U64();
  cm.rett = r.U64();
  cm.supervisor_step = r.U64();
  cm.io_latency = r.U64();
  return SectionError(&r, Section::kMeta, error);
}

bool DecodeMemory(const SectionSpan& span, DecodedMemory* out, std::string* error) {
  Reader r(span.data, span.size);
  out->next_free = r.U64();
  out->fault_count = r.U64();
  if (r.Bool()) {
    MemoryFault fault;
    fault.addr = r.U64();
    fault.write = r.Bool();
    out->latched = fault;
  }
  const uint64_t words = r.U64();
  if (r.ok() && words > (uint64_t{1} << 34)) {
    r.Fail(StrFormat("implausible store size %llu words", static_cast<unsigned long long>(words)));
  }
  if (!r.ok()) {
    return SectionError(&r, Section::kMemory, error);
  }
  out->store.assign(static_cast<size_t>(words), 0);
  uint64_t filled = 0;
  while (r.ok() && filled < words) {
    const uint8_t tag = r.U8();
    const uint64_t count = r.U64();
    if (!r.ok()) {
      break;
    }
    if (count == 0 || count > words - filled) {
      r.Fail(StrFormat("memory run of %llu words overflows the %llu-word store",
                       static_cast<unsigned long long>(count),
                       static_cast<unsigned long long>(words)));
      break;
    }
    if (tag == 0) {
      filled += count;  // the store is pre-zeroed
    } else if (tag == 1) {
      for (uint64_t k = 0; k < count && r.ok(); ++k) {
        out->store[static_cast<size_t>(filled + k)] = r.U64();
      }
      filled += count;
    } else {
      r.Fail(StrFormat("unknown memory run tag %u", tag));
    }
  }
  return SectionError(&r, Section::kMemory, error);
}

bool DecodeCpu(const SectionSpan& span, DecodedCpu* out, std::string* error) {
  Reader r(span.data, span.size);
  out->cycles = r.U64();
  out->regs = ReadRegisterFile(&r);
  out->tpr = ReadPointerRegister(&r);
  out->checks_enabled = r.Bool();
  out->timer_enabled = r.Bool();
  out->timer = r.I64();
  out->trap_pending = r.Bool();
  out->trap_state = ReadTrapState(&r);
  out->counters = ReadCounters(&r);
  out->sdw_cache_enabled = r.Bool();
  out->sdw_hits = r.U64();
  out->sdw_misses = r.U64();
  const uint32_t entries = r.U32();
  if (r.ok() && entries != SdwCache::kEntries) {
    r.Fail(StrFormat("descriptor-cache geometry %u does not match this build's %zu", entries,
                     SdwCache::kEntries));
  }
  for (size_t e = 0; e < SdwCache::kEntries && r.ok(); ++e) {
    out->sdw_entries[e].valid = r.Bool();
    out->sdw_entries[e].segno = r.U32();
    out->sdw_entries[e].sdw = ReadSdw(&r);
  }
  return SectionError(&r, Section::kCpu, error);
}

bool DecodeRegistry(const SectionSpan& span, Segno* next_segno,
                    std::vector<RegisteredSegment>* segments, std::string* error) {
  Reader r(span.data, span.size);
  *next_segno = r.U32();
  const uint64_t count = r.U64();
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    RegisteredSegment seg;
    seg.name = r.Str();
    seg.segno = r.U32();
    seg.base = r.U64();
    seg.paged = r.Bool();
    seg.bound = r.U64();
    seg.gate_count = r.U32();
    const uint64_t acl_entries = r.U64();
    for (uint64_t a = 0; a < acl_entries && r.ok(); ++a) {
      AclEntry entry;
      entry.user = r.Str();
      entry.access = ReadSegmentAccess(&r);
      seg.acl.Add(std::move(entry));
    }
    const uint64_t symbols = r.U64();
    for (uint64_t s = 0; s < symbols && r.ok(); ++s) {
      std::string symbol = r.Str();
      const Wordno wordno = r.U32();
      seg.symbols[std::move(symbol)] = wordno;
    }
    const uint64_t links = r.U64();
    for (uint64_t l = 0; l < links && r.ok(); ++l) {
      LinkTarget link;
      link.segment = r.Str();
      link.symbol = r.Str();
      link.offset = r.I64();
      const uint8_t ring = r.U8();
      link.indirect = r.Bool();
      if (r.ok() && !IsValidRing(ring)) {
        r.Fail(StrFormat("link ring %u out of range", ring));
        break;
      }
      link.ring = ring;
      seg.links.push_back(std::move(link));
    }
    segments->push_back(std::move(seg));
  }
  return SectionError(&r, Section::kRegistry, error);
}

bool DecodeSupervisor(const SectionSpan& span, DecodedSupervisor* out, std::string* error) {
  Reader r(span.data, span.size);
  out->sched.next_pid = static_cast<int>(r.I64());
  out->sched.anonymous_segments = static_cast<int>(r.I64());
  out->sched.handling_trap = r.Bool();
  out->sched.current_pid = static_cast<int>(r.I64());
  const uint64_t ready = r.U64();
  for (uint64_t i = 0; i < ready && r.ok(); ++i) {
    out->sched.ready_pids.push_back(static_cast<int>(r.I64()));
  }
  out->tty_output = r.Str();
  out->tty_input = r.Str();
  const uint64_t users = r.U64();
  for (uint64_t i = 0; i < users && r.ok(); ++i) {
    out->users.push_back(r.Str());
  }
  const uint64_t processes = r.U64();
  for (uint64_t i = 0; i < processes && r.ok(); ++i) {
    auto process = std::make_unique<Process>();
    process->pid = static_cast<int>(r.I64());
    process->user = r.Str();
    const uint8_t state = r.U8();
    if (r.ok() && state > static_cast<uint8_t>(ProcessState::kKilled)) {
      r.Fail(StrFormat("process state %u out of range", state));
      break;
    }
    process->state = static_cast<ProcessState>(state);
    process->dbr.base = r.U64();
    process->dbr.bound = r.U32();
    process->dbr.stack_base = r.U32();
    process->saved_regs = ReadRegisterFile(&r);
    process->exit_code = r.I64();
    process->kill_cause = ReadTrapCause(&r);
    process->kill_pc = ReadSegAddr(&r);
    process->instructions_run = r.U64();
    process->dispatches = r.U64();
    process->trap_streak = r.U64();
    process->last_trap_instructions = r.U64();
    const uint64_t gates = r.U64();
    for (uint64_t g = 0; g < gates && r.ok(); ++g) {
      ReturnGate gate;
      gate.expected_target = ReadSegAddr(&r);
      const uint8_t caller_ring = r.U8();
      const uint8_t callee_ring = r.U8();
      if (r.ok() && (!IsValidRing(caller_ring) || !IsValidRing(callee_ring))) {
        r.Fail(StrFormat("return-gate rings (%u,%u) out of range", caller_ring, callee_ring));
        break;
      }
      gate.caller_ring = caller_ring;
      gate.callee_ring = callee_ring;
      gate.saved_sp = ReadPointerRegister(&r);
      gate.saved_sb = ReadPointerRegister(&r);
      gate.saved_ap = ReadPointerRegister(&r);
      gate.transfer_words = r.U64();
      const uint64_t args = r.U64();
      for (uint64_t a = 0; a < args && r.ok(); ++a) {
        ReturnGate::CopiedArg arg;
        arg.original = ReadSegAddr(&r);
        arg.transfer = ReadSegAddr(&r);
        arg.length = r.U32();
        const uint8_t ring = r.U8();
        if (r.ok() && !IsValidRing(ring)) {
          r.Fail(StrFormat("copied-arg ring %u out of range", ring));
          break;
        }
        arg.effective_ring = ring;
        gate.copied_args.push_back(arg);
      }
      process->return_gates.push_back(std::move(gate));
    }
    out->processes.push_back(std::move(process));
  }
  if (r.ok()) {
    // Validate the scheduler's pid references while everything is still
    // host-side, so applying the decoded state cannot fail.
    auto has_pid = [out](int pid) {
      for (const auto& p : out->processes) {
        if (p->pid == pid) {
          return true;
        }
      }
      return false;
    };
    for (const int pid : out->sched.ready_pids) {
      if (!has_pid(pid)) {
        r.Fail(StrFormat("scheduler names unknown ready pid %d", pid));
        break;
      }
    }
    if (r.ok() && out->sched.current_pid != 0 && !has_pid(out->sched.current_pid)) {
      r.Fail(StrFormat("scheduler names unknown current pid %d", out->sched.current_pid));
    }
  }
  return SectionError(&r, Section::kSupervisor, error);
}

bool DecodeTrace(const SectionSpan& span, bool* enabled, std::deque<TraceEvent>* events,
                 std::string* error) {
  Reader r(span.data, span.size);
  *enabled = r.Bool();
  const uint64_t count = r.U64();
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    TraceEvent e;
    const uint8_t kind = r.U8();
    if (r.ok() && kind > static_cast<uint8_t>(EventKind::kProcessSwitch)) {
      r.Fail(StrFormat("trace event kind %u out of range", kind));
      break;
    }
    e.kind = static_cast<EventKind>(kind);
    e.cycle = r.U64();
    const uint8_t ring = r.U8();
    e.pc = ReadSegAddr(&r);
    e.cause = ReadTrapCause(&r);
    const uint8_t new_ring = r.U8();
    e.note = r.Str();
    if (r.ok() && (!IsValidRing(ring) || !IsValidRing(new_ring))) {
      r.Fail(StrFormat("trace event rings (%u,%u) out of range", ring, new_ring));
      break;
    }
    e.ring = ring;
    e.new_ring = new_ring;
    events->push_back(std::move(e));
  }
  return SectionError(&r, Section::kTrace, error);
}

bool DecodeFault(const SectionSpan& span, DecodedFault* out, std::string* error) {
  Reader r(span.data, span.size);
  out->present = r.Bool();
  if (!out->present) {
    return SectionError(&r, Section::kFault, error);
  }
  out->config.enabled = r.Bool();
  out->config.seed = r.U64();
  const uint32_t rates = r.U32();
  if (r.ok() && rates != kNumFaultSites) {
    r.Fail(StrFormat("fault-site count %u does not match this build's %zu", rates,
                     kNumFaultSites));
  }
  for (size_t i = 0; i < kNumFaultSites && r.ok(); ++i) {
    out->config.rate_ppm[i] = r.U32();
  }
  out->rng_state0 = r.U64();
  out->rng_state1 = r.U64();
  out->snapshot_rng_state0 = r.U64();
  out->snapshot_rng_state1 = r.U64();
  const uint32_t counts = r.U32();
  if (r.ok() && counts != kNumFaultSites) {
    r.Fail(StrFormat("fault-count array size %u does not match this build's %zu", counts,
                     kNumFaultSites));
  }
  for (size_t i = 0; i < kNumFaultSites && r.ok(); ++i) {
    out->counts[i] = r.U64();
  }
  out->sequence = r.U64();
  const uint64_t events = r.U64();
  for (uint64_t i = 0; i < events && r.ok(); ++i) {
    FaultEvent e;
    e.sequence = r.U64();
    const uint32_t site = r.U32();
    if (r.ok() && site >= kNumFaultSites) {
      r.Fail(StrFormat("fault site %u out of range", site));
      break;
    }
    e.site = static_cast<FaultSite>(site);
    e.cycle = r.U64();
    e.segno = r.U32();
    e.wordno = r.U32();
    e.detail = r.Str();
    out->events.push_back(std::move(e));
  }
  return SectionError(&r, Section::kFault, error);
}

bool DecodeDevice(const SectionSpan& span, DecodedDevice* out, std::string* error) {
  Reader r(span.data, span.size);
  out->tty_operations = r.U64();
  out->audit_runs = r.U64();
  const uint64_t count = r.U64();
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    Machine::IoEvent event;
    event.due_cycle = r.U64();
    event.device = r.U8();
    out->pending_io.push_back(event);
  }
  return SectionError(&r, Section::kDevice, error);
}

bool SameCycleModel(const CycleModel& a, const CycleModel& b) {
  return a.instruction_base == b.instruction_base && a.memory_ref == b.memory_ref &&
         a.sdw_fetch == b.sdw_fetch && a.access_check == b.access_check && a.trap == b.trap &&
         a.rett == b.rett && a.supervisor_step == b.supervisor_step &&
         a.io_latency == b.io_latency;
}

}  // namespace

// --------------------------------------------------------------------------
// Public API.
// --------------------------------------------------------------------------

bool SaveSnapshot(const Machine& machine, std::vector<uint8_t>* out, std::string* error,
                  FaultInjector* write_injector) {
  if (!machine.ok()) {
    if (error != nullptr) {
      *error = "machine failed construction; nothing to snapshot";
    }
    return false;
  }
  out->clear();
  Writer header;
  header.U32(kSnapshotMagic);
  header.U32(kSnapshotVersion);
  header.U32(kNumSections);
  *out = header.buf();
  {
    Writer crc;
    crc.U32(Crc32(out->data(), out->size()));
    out->insert(out->end(), crc.buf().begin(), crc.buf().end());
  }
  AppendSection(out, Section::kMeta, EncodeMeta(machine));
  AppendSection(out, Section::kMemory, EncodeMemory(machine));
  AppendSection(out, Section::kCpu, EncodeCpu(machine));
  AppendSection(out, Section::kRegistry, EncodeRegistry(machine));
  AppendSection(out, Section::kSupervisor, EncodeSupervisor(machine));
  AppendSection(out, Section::kTrace, EncodeTrace(machine));
  AppendSection(out, Section::kFault, EncodeFault(machine));
  AppendSection(out, Section::kDevice, EncodeDevice(machine));
  if (write_injector != nullptr) {
    size_t byte_index = 0;
    uint8_t mask = 0;
    if (write_injector->MaybeCorruptSnapshotWrite(machine.cpu().cycles(), out->size(),
                                                  &byte_index, &mask)) {
      (*out)[byte_index] ^= mask;
    }
  }
  return true;
}

bool VerifySnapshot(const uint8_t* data, size_t size, std::string* error) {
  std::array<SectionSpan, kNumSections> spans{};
  return WalkImage(data, size, &spans, error);
}

bool PeekSnapshotMeta(const uint8_t* data, size_t size, SnapshotMeta* meta, std::string* error) {
  std::array<SectionSpan, kNumSections> spans{};
  if (!WalkImage(data, size, &spans, error)) {
    return false;
  }
  return DecodeMeta(spans[static_cast<size_t>(Section::kMeta) - 1], meta, error);
}

bool RestoreSnapshot(const uint8_t* data, size_t size, Machine* machine, std::string* error,
                     FaultInjector* read_injector) {
  // A simulated read fault damages the image on its way in; the CRC pass
  // below then rejects it with a structured error, exactly as a real
  // corrupted checkpoint read would present.
  std::vector<uint8_t> damaged;
  if (read_injector != nullptr && size > 0) {
    size_t byte_index = 0;
    uint8_t mask = 0;
    if (read_injector->MaybeCorruptSnapshotRead(machine->cpu().cycles(), size, &byte_index,
                                                &mask)) {
      damaged.assign(data, data + size);
      damaged[byte_index] ^= mask;
      data = damaged.data();
    }
  }

  std::array<SectionSpan, kNumSections> spans{};
  if (!WalkImage(data, size, &spans, error)) {
    return false;
  }
  auto span = [&spans](Section id) -> const SectionSpan& {
    return spans[static_cast<size_t>(id) - 1];
  };

  // Decode everything host-side first: a structurally invalid image is
  // rejected before any machine state changes.
  SnapshotMeta meta;
  DecodedMemory memory;
  DecodedCpu cpu;
  Segno next_segno = 0;
  std::vector<RegisteredSegment> segments;
  DecodedSupervisor sup;
  bool trace_enabled = false;
  std::deque<TraceEvent> trace_events;
  DecodedFault fault;
  DecodedDevice device;
  if (!DecodeMeta(span(Section::kMeta), &meta, error) ||
      !DecodeMemory(span(Section::kMemory), &memory, error) ||
      !DecodeCpu(span(Section::kCpu), &cpu, error) ||
      !DecodeRegistry(span(Section::kRegistry), &next_segno, &segments, error) ||
      !DecodeSupervisor(span(Section::kSupervisor), &sup, error) ||
      !DecodeTrace(span(Section::kTrace), &trace_enabled, &trace_events, error) ||
      !DecodeFault(span(Section::kFault), &fault, error) ||
      !DecodeDevice(span(Section::kDevice), &device, error)) {
    return false;
  }
  if (!machine->ok()) {
    if (error != nullptr) {
      *error = "target machine failed construction";
    }
    return false;
  }
  if (meta.memory_words != machine->memory().size()) {
    if (error != nullptr) {
      *error = StrFormat("image memory size %llu words does not match machine's %zu",
                         static_cast<unsigned long long>(meta.memory_words),
                         machine->memory().size());
    }
    return false;
  }
  if (memory.store.size() != machine->memory().size()) {
    if (error != nullptr) {
      *error = StrFormat("memory section carries %zu words for a %zu-word machine",
                         memory.store.size(), machine->memory().size());
    }
    return false;
  }
  if (!SameCycleModel(meta.cycle_model, machine->config().cycle_model)) {
    if (error != nullptr) {
      *error = "image cycle model does not match the machine's (trajectories would diverge)";
    }
    return false;
  }

  // Apply, in dependency order. Core store first; then flush every derived
  // host-side cache BEFORE reinstating counters, so the flushes' host-only
  // counter bumps are overwritten by the image's exact values.
  machine->memory().RestoreContents(std::move(memory.store));
  machine->memory().RestoreAllocator(memory.next_free);
  machine->memory().RestoreFaultLatch(memory.latched, memory.fault_count);

  Cpu& c = machine->cpu();
  c.FlushSdwCache();
  c.FlushInsnCache();
  c.FlushTlb();
  c.set_mode(meta.mode);
  c.set_checks_enabled(cpu.checks_enabled);
  c.RestoreExecutionState(cpu.regs, cpu.tpr, cpu.cycles);
  c.RestoreTimer(cpu.timer_enabled, cpu.timer);
  c.RestoreTrapState(cpu.trap_pending, cpu.trap_state);
  c.sdw_cache().set_enabled(cpu.sdw_cache_enabled);
  for (size_t e = 0; e < SdwCache::kEntries; ++e) {
    const SdwCache::SnapshotEntry& entry = cpu.sdw_entries[e];
    c.sdw_cache().RestoreEntry(e, entry.valid, entry.segno, entry.sdw);
  }
  c.sdw_cache().RestoreStats(cpu.sdw_hits, cpu.sdw_misses);
  c.counters() = cpu.counters;

  machine->registry().RestoreState(next_segno, std::move(segments));

  Supervisor& supervisor = machine->supervisor();
  supervisor.set_quantum(meta.quantum);
  supervisor.set_trap_storm_limit(meta.trap_storm_limit);
  std::string restore_error;
  if (!supervisor.RestoreProcesses(std::move(sup.processes), sup.sched, &restore_error)) {
    if (error != nullptr) {
      *error = restore_error;  // unreachable: pids were validated at decode
    }
    return false;
  }
  supervisor.RestoreTty(std::move(sup.tty_output), std::move(sup.tty_input));
  supervisor.RestoreRegisteredUsers(std::move(sup.users));

  machine->trace().Restore(trace_enabled, std::move(trace_events));

  if (fault.present) {
    FaultInjector* injector = machine->EnsureFaultInjector(fault.config);
    injector->RestoreStream(fault.rng_state0, fault.rng_state1, fault.snapshot_rng_state0,
                            fault.snapshot_rng_state1, fault.counts, fault.sequence,
                            std::move(fault.events));
  } else {
    machine->ClearFaultInjector();
  }

  machine->RestorePendingIo(std::move(device.pending_io));
  machine->RestoreDeviceCounters(device.tty_operations, device.audit_runs);
  return true;
}

bool SaveSnapshotFile(const Machine& machine, const std::string& path, std::string* error,
                      FaultInjector* write_injector) {
  std::vector<uint8_t> image;
  if (!SaveSnapshot(machine, &image, error, write_injector)) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = StrFormat("cannot open '%s' for writing", path.c_str());
    }
    return false;
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != image.size() || !closed) {
    if (error != nullptr) {
      *error = StrFormat("short write to '%s'", path.c_str());
    }
    return false;
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, std::vector<uint8_t>* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = StrFormat("cannot open '%s' for reading", path.c_str());
    }
    return false;
  }
  out->clear();
  std::array<uint8_t, 65536> chunk;
  size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    out->insert(out->end(), chunk.begin(), chunk.begin() + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) {
      *error = StrFormat("read error on '%s'", path.c_str());
    }
    return false;
  }
  return true;
}

bool RestoreSnapshotFile(const std::string& path, Machine* machine, std::string* error,
                         FaultInjector* read_injector) {
  std::vector<uint8_t> image;
  if (!ReadSnapshotFile(path, &image, error)) {
    return false;
  }
  return RestoreSnapshot(image.data(), image.size(), machine, error, read_injector);
}

}  // namespace rings

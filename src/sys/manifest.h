// The `;;` guest manifest: the self-contained header a guest program file
// carries so one source file fully describes a runnable machine — access
// control lists, process start points, tty input, and (for paged
// workloads) pre-created segments that exist outside the assembled
// program. Directive lines are ordinary `;` comments to the assembler:
//
//   ;; acl <segment> <user|*> procedure <r1> <r2> [<r3>] [write]
//   ;; acl <segment> <user|*> data <write_top> <read_top>
//   ;; acl <segment> <user|*> rodata <read_top>
//   ;; segment <name> <words> paged [demand|populate]
//   ;; start <segment> <entry> <ring> [<user>]
//   ;; tty-input <text until end of line>
//
// `;; segment` creates a paged segment (demand-zero by default) through
// the registry before the program is loaded, so `.its` references to it
// resolve normally; its access comes from a matching `;; acl` line. This
// is what lets the fuzzer emit demand-paging guests as single repro files
// ringsim can replay directly.
//
// Shared by ringsim's single-machine, fleet, and fuzz modes and by the
// differential fuzz harness (src/fuzz), which must build bit-comparable
// machines from one source of truth.
#ifndef SRC_SYS_MANIFEST_H_
#define SRC_SYS_MANIFEST_H_

#include <map>
#include <string>
#include <vector>

#include "src/sup/acl.h"
#include "src/sys/machine.h"

namespace rings {

struct StartSpec {
  std::string segment;
  std::string entry;
  Ring ring = kUserRing;
  std::string user = "user";
};

// A segment created through the registry before program load (today only
// paged segments need this; assembled segments carry their own words).
struct ManifestSegment {
  std::string name;
  uint64_t words = 0;
  bool populate = false;  // false: demand-zero, pages fault in
};

struct Manifest {
  std::map<std::string, AccessControlList> acls;
  std::vector<StartSpec> starts;
  std::vector<ManifestSegment> segments;
  std::string tty_input;
  std::string error;

  bool ok() const { return error.empty(); }
};

Manifest ParseManifest(const std::string& source);

// Builds the machine a source file describes: creates every `;; segment`,
// loads `program` under the manifest ACLs, feeds the tty input, and
// logs in + starts every `;; start` process. Returns false with a
// structured *error (machine state is then unspecified; discard it).
// Tracing is left to the caller.
bool InstantiateGuest(const Program& program, const Manifest& manifest, Machine* machine,
                      std::string* error);

}  // namespace rings

#endif  // SRC_SYS_MANIFEST_H_

// The complete simulated machine: core store, one processor with the ring
// hardware, the segment registry, the supervisor, and a typewriter I/O
// channel. This is the top-level public API most users of the library
// interact with: assemble a program, load it with access control lists,
// log users in, start processes, run.
#ifndef SRC_SYS_MACHINE_H_
#define SRC_SYS_MACHINE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/cpu/cpu.h"
#include "src/fault/fault_injector.h"
#include "src/kasm/assembler.h"
#include "src/mem/physical_memory.h"
#include "src/sup/audit.h"
#include "src/sup/segment_registry.h"
#include "src/sup/supervisor.h"
#include "src/trace/event_trace.h"

namespace rings {

struct MachineConfig {
  size_t memory_words = size_t{1} << 22;
  CycleModel cycle_model{};
  int64_t quantum = 5000;
  ProtectionMode mode = ProtectionMode::kRingHardware;
  // Host-side address-formation fast path (verdict + decoded-instruction
  // caches). Simulated cycles and counters are bit-identical either way;
  // off is useful for differential testing and host-cost ablation.
  bool fast_path = true;
  // Superblock execution engine: chains cached decodes into straight-line
  // blocks executed one dispatch at a time (see DESIGN.md §7). Host-side
  // only, like the fast path; bit-identical simulation either way.
  bool block_engine = true;
  // Test-only: deliberately break the block engine (one spurious cycle
  // per CALL executed inside a block) so the differential fuzz oracle's
  // catch-and-shrink path can be exercised. See Cpu::block_call_ablation.
  bool block_call_ablation = false;
  // Block-to-block chaining inside the superblock engine, plus the
  // monomorphic CALL/RETURN crossing cache (see DESIGN.md §7). Host-side
  // only, like the fast path; bit-identical simulation either way.
  bool chain = true;
  // Test-only: deliberately break chaining (one spurious cycle per
  // followed link) for the fuzz oracle. See Cpu::chain_ablation.
  bool chain_ablation = false;
  // Share one read-only pre-decoded image per distinct program across all
  // machines in this process (fleet members running the same guest).
  // Off = each machine builds a private image; decode results are
  // identical either way, only the host sharing differs.
  bool shared_decode = true;
  // Deterministic fault injection (see DESIGN.md, "Fault model &
  // recovery"). Disabled by default; zero overhead when disabled.
  FaultConfig fault{};
  // Run the protection auditor after every quantum (timer runout) and
  // accumulate its findings; Run() keeps going, the caller inspects
  // audit_findings(). Off by default — auditing walks every descriptor
  // segment of every process.
  bool audit_every_quantum = false;
};

struct RunResult {
  // True when every process finished (exited or was killed); false when
  // the cycle budget ran out first.
  bool idle = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;

  std::string ToString() const;
};

class Machine {
 public:
  // A scheduled I/O completion on the simulated channel.
  struct IoEvent {
    uint64_t due_cycle = 0;
    uint8_t device = 0;
  };

  explicit Machine(MachineConfig config = MachineConfig{});

  // Copy-on-write clone: a new machine whose core store aliases `golden`'s
  // frames read-only (privatized frame-by-frame on first store) and whose
  // processor, registry, supervisor, trace, and device state are exact
  // copies — so the clone runs the same trajectory, fingerprint, and
  // counters a fresh boot+load of the same program would, at O(registers +
  // frame table) spawn cost instead of O(memory). Skips supervisor
  // initialization and program load entirely. Cloning the same sealed
  // golden machine from multiple threads is safe (see
  // GoldenImageRegistry); cloning a machine that is still running is safe
  // only single-threaded. Returns null if `golden` is not ok().
  static std::unique_ptr<Machine> CloneFrom(const Machine& golden);

  // False if construction failed (resource exhaustion during supervisor
  // initialization) — all other calls are invalid then.
  bool ok() const { return ok_; }

  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  Supervisor& supervisor() { return supervisor_; }
  const Supervisor& supervisor() const { return supervisor_; }
  SegmentRegistry& registry() { return registry_; }
  const SegmentRegistry& registry() const { return registry_; }
  EventTrace& trace() { return trace_; }
  const EventTrace& trace() const { return trace_; }

  // Null unless MachineConfig::fault.enabled.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  const FaultInjector* fault_injector() const { return fault_injector_.get(); }

  // Per-quantum audit results (empty unless audit_every_quantum).
  const std::vector<AuditFinding>& audit_findings() const { return audit_findings_; }
  uint64_t audit_runs() const { return audit_runs_; }

  // Registers an assembled program's segments with the given ACLs (keyed
  // by segment name).
  bool LoadProgram(const Program& program, const std::map<std::string, AccessControlList>& acls,
                   std::string* error = nullptr);
  // Assembles and loads in one step. Assembly failures are reported
  // through `error` (and the log), never by aborting the host.
  bool LoadProgramSource(std::string_view source,
                         const std::map<std::string, AccessControlList>& acls,
                         std::string* error = nullptr);

  // Login: creates a process for `user`.
  Process* Login(const std::string& user) { return supervisor_.CreateProcess(user); }

  // Starts `entry` in `segname` in the given ring, making the process
  // ready to run.
  bool Start(Process* process, const std::string& segname, const std::string& entry, Ring ring) {
    return supervisor_.Start(process, segname, entry, ring);
  }

  // Runs until every process finishes or the cycle budget is exhausted.
  RunResult Run(uint64_t max_cycles = 100'000'000);

  // Typewriter device access. Feeding input wakes processes blocked in
  // the tty-read service.
  const std::string& TtyOutput() const { return supervisor_.tty_output(); }
  void TtyFeedInput(const std::string& text) {
    supervisor_.tty_input() += text;
    supervisor_.NotifyTtyInput();
  }
  uint64_t tty_operations() const { return tty_operations_; }

  // Test/debug helpers: direct word access to a registered segment.
  std::optional<Word> PeekSegment(const std::string& name, Wordno wordno) const;
  bool PokeSegment(const std::string& name, Wordno wordno, Word value);

  // --- snapshot support (src/snapshot) ------------------------------------
  const MachineConfig& config() const { return config_; }
  const std::deque<IoEvent>& pending_io() const { return pending_io_; }
  void RestorePendingIo(std::deque<IoEvent> io) { pending_io_ = std::move(io); }
  void RestoreDeviceCounters(uint64_t tty_operations, uint64_t audit_runs) {
    tty_operations_ = tty_operations;
    audit_runs_ = audit_runs;
  }
  // Installs (or reconfigures) the fault injector so an image's injector
  // stream can be reinstated on a machine built without one; returns the
  // live injector. ClearFaultInjector removes it (image had none).
  FaultInjector* EnsureFaultInjector(const FaultConfig& config);
  void ClearFaultInjector();

 private:
  // Tag for the cloning constructor: builds the shell (COW memory, cpu,
  // empty registry/supervisor) without running supervisor initialization;
  // CloneFrom then copies the parent's state in.
  struct CloneTag {};
  Machine(const Machine& parent, CloneTag);

  void StartIo(uint8_t device, Word detail);

  // Builds or acquires the program's shared decode image and maps its
  // segments onto the segnos the registry just assigned.
  void AttachSharedDecode(const Program& program);

  // Runs the protection auditor once and accumulates findings.
  void RunAudit();

  MachineConfig config_;
  PhysicalMemory memory_;
  Cpu cpu_;
  SegmentRegistry registry_;
  Supervisor supervisor_;
  EventTrace trace_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::deque<IoEvent> pending_io_;
  std::vector<AuditFinding> audit_findings_;
  uint64_t audit_runs_ = 0;
  uint64_t tty_operations_ = 0;
  bool ok_ = false;
};

// Program-image identity: FNV-1a over the segment names, gate counts,
// reserve sizes, and assembled words. Two machines loading byte-identical
// programs hash to the same identity; any difference (even one word)
// yields a distinct one. Keys both the shared-decode registry and the
// golden-image registry (src/fleet/golden_image.h).
uint64_t ProgramIdentity(const Program& program);

}  // namespace rings

#endif  // SRC_SYS_MACHINE_H_


#include "src/sys/machine.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/mem/page_table.h"

namespace rings {

std::string RunResult::ToString() const {
  return StrFormat("%s cycles=%llu instructions=%llu", idle ? "idle" : "budget-exhausted",
                   static_cast<unsigned long long>(cycles),
                   static_cast<unsigned long long>(instructions));
}

Machine::Machine(MachineConfig config)
    : config_(config),
      memory_(config.memory_words),
      cpu_(&memory_, config.cycle_model),
      registry_(&memory_),
      supervisor_(&cpu_, &memory_, &registry_,
                  Supervisor::Options{.quantum = config.quantum, .verbose = false}) {
  cpu_.set_mode(config.mode);
  cpu_.set_fast_path_enabled(config.fast_path);
  cpu_.set_block_engine_enabled(config.block_engine);
  cpu_.set_block_call_ablation(config.block_call_ablation);
  cpu_.set_chain_enabled(config.chain);
  cpu_.set_chain_ablation(config.chain_ablation);
  cpu_.set_trace(&trace_);
  supervisor_.set_start_io([this](uint8_t device, Word detail) { StartIo(device, detail); });
  if (config_.fault.enabled) {
    fault_injector_ = std::make_unique<FaultInjector>(config_.fault);
    cpu_.set_fault_injector(fault_injector_.get());
  }
  ok_ = supervisor_.Initialize();
}

Machine::Machine(const Machine& parent, CloneTag)
    : config_(parent.config_),
      memory_(parent.memory_, PhysicalMemory::CowClone{}),
      cpu_(&memory_, config_.cycle_model),
      registry_(&memory_),
      supervisor_(&cpu_, &memory_, &registry_, parent.supervisor_.options()) {
  cpu_.set_mode(config_.mode);
  cpu_.set_fast_path_enabled(config_.fast_path);
  cpu_.set_block_engine_enabled(config_.block_engine);
  cpu_.set_block_call_ablation(config_.block_call_ablation);
  cpu_.set_chain_enabled(config_.chain);
  cpu_.set_chain_ablation(config_.chain_ablation);
  cpu_.set_trace(&trace_);
  supervisor_.set_start_io([this](uint8_t device, Word detail) { StartIo(device, detail); });
  // No supervisor_.Initialize(), no program load: the cloned core store
  // and the copied registry/process state below already carry both.
  ok_ = true;
}

std::unique_ptr<Machine> Machine::CloneFrom(const Machine& golden) {
  if (!golden.ok()) {
    return nullptr;
  }
  std::unique_ptr<Machine> clone(new Machine(golden, CloneTag{}));

  // Copy processor state in snapshot-restore order: architectural state
  // first, host caches stay cold (they are rebuilt on demand and, like
  // tlb_*/block_*, never feed fingerprints), counters last so nothing
  // below perturbs them.
  const Cpu& src = golden.cpu_;
  Cpu& dst = clone->cpu_;
  dst.set_checks_enabled(src.checks_enabled());
  dst.RestoreExecutionState(src.regs(), src.tpr(), src.cycles());
  dst.RestoreTimer(src.timer_enabled(), src.timer());
  dst.RestoreTrapState(src.trap_pending(), src.trap_state());
  // The SDW cache is timing-architectural (its hits and misses feed the
  // cycle account), so its exact contents come along.
  dst.sdw_cache().set_enabled(src.sdw_cache().enabled());
  for (size_t e = 0; e < SdwCache::kEntries; ++e) {
    const SdwCache::SnapshotEntry entry = src.sdw_cache().SnapshotAt(e);
    dst.sdw_cache().RestoreEntry(e, entry.valid, entry.segno, entry.sdw);
  }
  dst.sdw_cache().RestoreStats(src.sdw_cache().hits(), src.sdw_cache().misses());
  dst.CopyDecodeTablesFrom(src);
  dst.counters() = src.counters();

  clone->registry_.RestoreState(golden.registry_.next_segno(),
                                std::vector<RegisteredSegment>(golden.registry_.segments()));

  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(golden.supervisor_.processes().size());
  for (const auto& process : golden.supervisor_.processes()) {
    processes.push_back(std::make_unique<Process>(*process));
  }
  std::string error;
  if (!clone->supervisor_.RestoreProcesses(std::move(processes),
                                           golden.supervisor_.SnapshotScheduler(), &error)) {
    return nullptr;  // unreachable: the parent's pids are consistent
  }
  clone->supervisor_.RestoreTty(golden.supervisor_.tty_output(), golden.supervisor_.tty_input());
  clone->supervisor_.RestoreRegisteredUsers(golden.supervisor_.registered_users());

  clone->trace_.Restore(golden.trace_.enabled(),
                        std::deque<TraceEvent>(golden.trace_.events()));

  if (golden.fault_injector_ != nullptr) {
    const FaultInjector& fi = *golden.fault_injector_;
    FaultInjector* injector = clone->EnsureFaultInjector(fi.config());
    injector->RestoreStream(fi.rng().state(0), fi.rng().state(1), fi.snapshot_rng().state(0),
                            fi.snapshot_rng().state(1), fi.counts(), fi.sequence(),
                            std::vector<FaultEvent>(fi.events()));
  }

  clone->pending_io_ = golden.pending_io_;
  clone->audit_findings_ = golden.audit_findings_;
  clone->audit_runs_ = golden.audit_runs_;
  clone->tty_operations_ = golden.tty_operations_;
  return clone;
}

bool Machine::LoadProgram(const Program& program,
                          const std::map<std::string, AccessControlList>& acls,
                          std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  const bool ok = registry_.LoadProgram(program, acls, err);
  // Loading writes segment contents (and page tables) directly into the
  // core store.
  cpu_.FlushInsnCache();
  cpu_.FlushTlb();
  if (ok) {
    AttachSharedDecode(program);
  }
  return ok;
}

// Program-image identity for the shared-decode and golden-image
// registries: FNV-1a over the segment names, gate counts, reserve sizes,
// and assembled words. Two machines loading byte-identical programs hash
// to the same image; any difference (even one word) yields a distinct one.
uint64_t ProgramIdentity(const Program& program) {
  uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<uint8_t>(v >> (i * 8)));
    }
  };
  for (const AssembledSegment& seg : program.segments) {
    mix(seg.name.size());
    for (const char c : seg.name) {
      mix_byte(static_cast<uint8_t>(c));
    }
    mix(seg.gate_count);
    mix(seg.reserve_words);
    mix(seg.words.size());
    for (const Word w : seg.words) {
      mix(w);
    }
  }
  return h;
}

namespace {

std::shared_ptr<const SharedDecodeImage> BuildDecodeImage(const Program& program,
                                                          uint64_t identity) {
  SharedDecodeImage::Builder builder;
  for (const AssembledSegment& seg : program.segments) {
    builder.AddSegment(seg.name, seg.words);
  }
  return builder.Publish(identity);
}

}  // namespace

void Machine::AttachSharedDecode(const Program& program) {
  const uint64_t identity = ProgramIdentity(program);
  bool built = false;
  std::shared_ptr<const SharedDecodeImage> image;
  if (config_.shared_decode) {
    image = SharedDecodeRegistry::Instance().Acquire(
        identity, [&] { return BuildDecodeImage(program, identity); }, &built);
  } else {
    // Private image, never registered: the decode results are identical,
    // only the cross-machine sharing is ablated.
    image = BuildDecodeImage(program, identity);
    built = true;
  }
  if (built) {
    ++cpu_.counters().shared_decode_builds;
  }
  std::vector<std::pair<Segno, const SharedDecodeImage::Segment*>> map;
  for (const AssembledSegment& seg : program.segments) {
    const RegisteredSegment* reg = registry_.Find(seg.name);
    const SharedDecodeImage::Segment* img = image->FindSegment(seg.name);
    if (reg != nullptr && img != nullptr) {
      map.emplace_back(reg->segno, img);
    }
  }
  cpu_.AttachDecodeImage(std::move(image), map);
}

bool Machine::LoadProgramSource(std::string_view source,
                                const std::map<std::string, AccessControlList>& acls,
                                std::string* error) {
  const AssembleResult result = Assemble(source);
  if (!result.ok) {
    const std::string message = result.error.ToString();
    RINGS_LOG(kError) << "assembly failed: " << message;
    if (error != nullptr) {
      *error = message;
    }
    return false;
  }
  return LoadProgram(result.program, acls, error);
}

FaultInjector* Machine::EnsureFaultInjector(const FaultConfig& config) {
  config_.fault = config;
  fault_injector_ = std::make_unique<FaultInjector>(config);
  cpu_.set_fault_injector(fault_injector_.get());
  return fault_injector_.get();
}

void Machine::ClearFaultInjector() {
  fault_injector_.reset();
  cpu_.set_fault_injector(nullptr);
  config_.fault = FaultConfig{};
}

void Machine::StartIo(uint8_t device, Word detail) {
  (void)detail;
  ++tty_operations_;
  uint64_t latency = config_.cycle_model.io_latency;
  if (fault_injector_ != nullptr) {
    latency += fault_injector_->MaybeIoDelay(cpu_.cycles());
  }
  pending_io_.push_back(IoEvent{cpu_.cycles() + latency, device});
}

void Machine::RunAudit() {
  ++audit_runs_;
  std::vector<AuditFinding> findings = AuditProtectionState(&memory_, registry_, supervisor_);
  for (AuditFinding& finding : findings) {
    if (finding.severity == AuditSeverity::kError) {
      RINGS_LOG(kError) << "audit: " << finding.ToString();
    }
    audit_findings_.push_back(std::move(finding));
  }
}

RunResult Machine::Run(uint64_t max_cycles) {
  RunResult result;
  const uint64_t start_cycles = cpu_.cycles();
  const uint64_t start_instructions = cpu_.counters().instructions;

  if (supervisor_.current() == nullptr && !cpu_.trap_pending()) {
    if (!supervisor_.DispatchNext()) {
      result.idle = true;
      return result;
    }
  }

  while (cpu_.cycles() - start_cycles < max_cycles) {
    // A latched physical-store fault becomes a machine-fault trap. When
    // some other trap is already pending, it is serviced first; the
    // latch survives until the fault can be delivered.
    if (!cpu_.trap_pending() && memory_.fault_pending()) {
      const auto fault = memory_.TakeFault();
      cpu_.InjectTrap(TrapCause::kMachineFault, static_cast<int64_t>(fault->addr));
    }
    if (cpu_.trap_pending()) {
      const bool quantum_end = cpu_.trap_state().cause == TrapCause::kTimerRunout;
      if (!supervisor_.HandleTrap()) {
        if (config_.audit_every_quantum) {
          RunAudit();
        }
        result.idle = true;
        break;
      }
      if (quantum_end && config_.audit_every_quantum) {
        RunAudit();
      }
      continue;
    }
    // Deliver any due I/O completion before the next instruction.
    if (!pending_io_.empty() && pending_io_.front().due_cycle <= cpu_.cycles()) {
      const IoEvent event = pending_io_.front();
      pending_io_.pop_front();
      cpu_.InjectTrap(TrapCause::kIoCompletion, event.device);
      continue;
    }
    // The superblock engine may run several instructions per dispatch;
    // give it the nearest boundary this loop must regain control at (the
    // cycle budget or the next due I/O completion).
    uint64_t bound = start_cycles + max_cycles;
    if (!pending_io_.empty() && pending_io_.front().due_cycle < bound) {
      bound = pending_io_.front().due_cycle;
    }
    cpu_.StepBlock(bound);
  }

  result.cycles = cpu_.cycles() - start_cycles;
  result.instructions = cpu_.counters().instructions - start_instructions;
  if (!result.idle) {
    result.idle = supervisor_.Idle() && !cpu_.trap_pending();
  }
  return result;
}

namespace {

// Resolves a (possibly paged) registry segment word to an absolute
// address; nullopt if the page is absent.
std::optional<AbsAddr> ResolveRegistryWord(const PhysicalMemory& memory,
                                           const RegisteredSegment& seg, Wordno wordno) {
  if (!seg.paged) {
    return seg.base + wordno;
  }
  const Ptw ptw = DecodePtw(memory.Read(seg.base + (wordno >> kPageShift)));
  if (!ptw.present) {
    return std::nullopt;
  }
  return ptw.frame + (wordno & kPageMask);
}

}  // namespace

std::optional<Word> Machine::PeekSegment(const std::string& name, Wordno wordno) const {
  const RegisteredSegment* seg = registry_.Find(name);
  if (seg == nullptr || wordno >= seg->bound) {
    return std::nullopt;
  }
  const auto addr = ResolveRegistryWord(memory_, *seg, wordno);
  if (!addr.has_value()) {
    return std::nullopt;
  }
  return memory_.Read(*addr);
}

bool Machine::PokeSegment(const std::string& name, Wordno wordno, Word value) {
  const RegisteredSegment* seg = registry_.Find(name);
  if (seg == nullptr || wordno >= seg->bound) {
    return false;
  }
  const auto addr = ResolveRegistryWord(memory_, *seg, wordno);
  if (!addr.has_value()) {
    return false;
  }
  memory_.Write(*addr, value);
  cpu_.FlushInsnCache();
  cpu_.FlushTlb();
  return true;
}

}  // namespace rings

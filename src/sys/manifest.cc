#include "src/sys/manifest.h"

#include <sstream>

#include "src/base/strings.h"

namespace rings {

namespace {

bool ParseRingValue(const std::string& text, unsigned* out) {
  if (text.size() != 1 || text[0] < '0' || text[0] > '7') {
    return false;
  }
  *out = static_cast<unsigned>(text[0] - '0');
  return true;
}

}  // namespace

Manifest ParseManifest(const std::string& source) {
  Manifest manifest;
  std::istringstream stream(source);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = StripWhitespace(line);
    if (trimmed.substr(0, 2) != ";;") {
      continue;
    }
    const std::string body(StripWhitespace(trimmed.substr(2)));
    std::istringstream words(body);
    std::string verb;
    words >> verb;
    if (verb == "acl") {
      std::string segment;
      std::string user;
      std::string kind;
      words >> segment >> user >> kind;
      SegmentAccess access;
      unsigned a = 0;
      unsigned b = 0;
      unsigned c = 0;
      std::string sa, sb, sc;
      if (kind == "procedure") {
        words >> sa >> sb;
        if (!ParseRingValue(sa, &a) || !ParseRingValue(sb, &b)) {
          manifest.error = StrFormat("line %d: bad procedure rings", line_no);
          return manifest;
        }
        c = b;
        bool writable = false;
        while (words >> sc) {
          if (sc == "write") {
            writable = true;
          } else if (!ParseRingValue(sc, &c)) {
            manifest.error = StrFormat("line %d: bad gate extension", line_no);
            return manifest;
          }
        }
        access = MakeProcedureSegment(static_cast<Ring>(a), static_cast<Ring>(b),
                                      static_cast<Ring>(c), /*gate_count=*/0);
        // `write` makes the segment self-modifiable within its write
        // bracket [0, r1] — the fuzzer's store-into-code workloads.
        access.flags.write = writable;
      } else if (kind == "data") {
        words >> sa >> sb;
        if (!ParseRingValue(sa, &a) || !ParseRingValue(sb, &b)) {
          manifest.error = StrFormat("line %d: bad data rings", line_no);
          return manifest;
        }
        access = MakeDataSegment(static_cast<Ring>(a), static_cast<Ring>(b));
      } else if (kind == "rodata") {
        words >> sa;
        if (!ParseRingValue(sa, &a)) {
          manifest.error = StrFormat("line %d: bad rodata ring", line_no);
          return manifest;
        }
        access = MakeReadOnlyDataSegment(static_cast<Ring>(a));
      } else {
        manifest.error = StrFormat("line %d: unknown acl kind '%s'", line_no, kind.c_str());
        return manifest;
      }
      if (!access.brackets.IsWellFormed()) {
        manifest.error = StrFormat("line %d: ill-formed brackets", line_no);
        return manifest;
      }
      manifest.acls[segment].Add(AclEntry{user, access});
    } else if (verb == "segment") {
      ManifestSegment spec;
      std::string kind;
      std::string fill;
      unsigned long long count = 0;
      words >> spec.name >> count >> kind;
      if (spec.name.empty() || count == 0 || count > (1ull << 22) || kind != "paged") {
        manifest.error = StrFormat(
            "line %d: bad segment directive (want: segment <name> <words> paged "
            "[demand|populate])",
            line_no);
        return manifest;
      }
      spec.words = count;
      if (words >> fill) {
        if (fill == "populate") {
          spec.populate = true;
        } else if (fill != "demand") {
          manifest.error = StrFormat("line %d: bad segment fill '%s'", line_no, fill.c_str());
          return manifest;
        }
      }
      manifest.segments.push_back(spec);
    } else if (verb == "start") {
      StartSpec spec;
      std::string ring_text;
      words >> spec.segment >> spec.entry >> ring_text;
      unsigned ring = 0;
      if (spec.segment.empty() || spec.entry.empty() || !ParseRingValue(ring_text, &ring)) {
        manifest.error = StrFormat("line %d: bad start directive", line_no);
        return manifest;
      }
      spec.ring = static_cast<Ring>(ring);
      std::string user;
      if (words >> user) {
        spec.user = user;
      }
      manifest.starts.push_back(spec);
    } else if (verb == "tty-input") {
      const size_t pos = body.find("tty-input");
      manifest.tty_input += std::string(StripWhitespace(body.substr(pos + 9)));
    } else if (!verb.empty()) {
      manifest.error = StrFormat("line %d: unknown directive '%s'", line_no, verb.c_str());
      return manifest;
    }
  }
  if (manifest.starts.empty()) {
    manifest.error = "no ';; start <segment> <entry> <ring>' directive found";
  }
  return manifest;
}

bool InstantiateGuest(const Program& program, const Manifest& manifest, Machine* machine,
                      std::string* error) {
  std::string local;
  std::string* err = error != nullptr ? error : &local;
  // Pre-created segments first, so the program's .its patches to them
  // resolve at load time.
  for (const ManifestSegment& spec : manifest.segments) {
    const auto acl = manifest.acls.find(spec.name);
    if (acl == manifest.acls.end()) {
      *err = StrFormat("segment %s has no ';; acl' line", spec.name.c_str());
      return false;
    }
    if (!machine->registry()
             .CreatePagedSegment(spec.name, spec.words, acl->second, spec.populate)
             .has_value()) {
      *err = StrFormat("cannot create paged segment %s", spec.name.c_str());
      return false;
    }
  }
  if (!machine->LoadProgram(program, manifest.acls, err)) {
    return false;
  }
  machine->TtyFeedInput(manifest.tty_input);
  for (const StartSpec& spec : manifest.starts) {
    Process* p = machine->Login(spec.user);
    if (p == nullptr) {
      *err = StrFormat("login failed for '%s'", spec.user.c_str());
      return false;
    }
    machine->supervisor().InitiateAll(p);
    if (!machine->Start(p, spec.segment, spec.entry, spec.ring)) {
      *err = StrFormat("cannot start %s$%s in ring %u", spec.segment.c_str(),
                       spec.entry.c_str(), spec.ring);
      return false;
    }
  }
  return true;
}

}  // namespace rings

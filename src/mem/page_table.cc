#include "src/mem/page_table.h"

#include "src/base/bitfield.h"

namespace rings {

namespace {

constexpr unsigned kPresentShift = 63;
constexpr unsigned kFrameShift = 0;
constexpr unsigned kFrameWidth = 40;

}  // namespace

Word EncodePtw(const Ptw& ptw) {
  Word w = 0;
  w = DepositBits(w, kPresentShift, 1, ptw.present ? 1 : 0);
  w = DepositBits(w, kFrameShift, kFrameWidth, ptw.frame);
  return w;
}

Ptw DecodePtw(Word word) {
  Ptw ptw;
  ptw.present = ExtractBits(word, kPresentShift, 1) != 0;
  ptw.frame = ExtractBits(word, kFrameShift, kFrameWidth);
  return ptw;
}

std::optional<AbsAddr> AllocatePageTable(PhysicalMemory* memory, uint64_t pages) {
  const auto base = memory->Allocate(pages == 0 ? 1 : pages);
  if (!base.has_value()) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < pages; ++i) {
    memory->Write(*base + i, EncodePtw(Ptw{}));
  }
  return base;
}

std::optional<AbsAddr> InstallZeroPage(PhysicalMemory* memory, AbsAddr table_base, uint64_t page) {
  const auto frame = memory->Allocate(kPageWords);
  if (!frame.has_value()) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < kPageWords; ++i) {
    memory->Write(*frame + i, 0);
  }
  memory->Write(table_base + page, EncodePtw(Ptw{true, *frame}));
  return frame;
}

}  // namespace rings

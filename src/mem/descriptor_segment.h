// A descriptor segment: the array of SDW pairs that defines one virtual
// memory. "The number of a segment is just the index of the corresponding
// SDW in the descriptor segment. ... The absolute address of the beginning
// of the descriptor segment is contained in the descriptor base register
// (DBR) of a processor."
//
// DescriptorSegment is a typed view over words in PhysicalMemory, so
// swapping the DBR between processes really does change which translation
// table the simulated processor walks.
#ifndef SRC_MEM_DESCRIPTOR_SEGMENT_H_
#define SRC_MEM_DESCRIPTOR_SEGMENT_H_

#include <optional>

#include "src/mem/physical_memory.h"
#include "src/mem/sdw.h"
#include "src/mem/word.h"

namespace rings {

// The descriptor base register contents: where the descriptor segment
// lives and how many SDWs it holds. `stack_base` is the additional DBR
// field from Figure 8's footnote: the first of the eight consecutively
// numbered segments that are the standard stack segments of the process.
struct DbrValue {
  AbsAddr base = 0;
  Segno bound = 0;  // number of SDW slots
  Segno stack_base = 0;

  bool operator==(const DbrValue&) const = default;
};

class DescriptorSegment {
 public:
  DescriptorSegment(PhysicalMemory* memory, DbrValue dbr) : memory_(memory), dbr_(dbr) {}

  const DbrValue& dbr() const { return dbr_; }
  Segno bound() const { return dbr_.bound; }

  // Fetches the SDW for `segno`; nullopt when segno is out of bounds.
  // (An in-bounds but non-present SDW is returned as-is; the caller
  // distinguishes the two missing-segment flavors if it cares.)
  std::optional<Sdw> Fetch(Segno segno) const;

  // Installs an SDW (supervisor-side operation).
  void Store(Segno segno, const Sdw& sdw);

  // Allocates a fresh descriptor segment of `bound` slots in `memory` and
  // returns a view with every SDW absent. Returns nullopt when memory is
  // exhausted.
  static std::optional<DescriptorSegment> Create(PhysicalMemory* memory, Segno bound,
                                                 Segno stack_base);

 private:
  PhysicalMemory* memory_;
  DbrValue dbr_;
};

}  // namespace rings

#endif  // SRC_MEM_DESCRIPTOR_SEGMENT_H_

#include "src/mem/descriptor_segment.h"

namespace rings {

std::optional<Sdw> DescriptorSegment::Fetch(Segno segno) const {
  if (segno >= dbr_.bound) {
    return std::nullopt;
  }
  const AbsAddr addr = dbr_.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  return DecodeSdw(memory_->Read(addr), memory_->Read(addr + 1));
}

void DescriptorSegment::Store(Segno segno, const Sdw& sdw) {
  if (segno >= dbr_.bound) {
    return;
  }
  Word w0 = 0;
  Word w1 = 0;
  EncodeSdw(sdw, &w0, &w1);
  const AbsAddr addr = dbr_.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  memory_->Write(addr, w0);
  memory_->Write(addr + 1, w1);
}

std::optional<DescriptorSegment> DescriptorSegment::Create(PhysicalMemory* memory, Segno bound,
                                                           Segno stack_base) {
  const auto base = memory->Allocate(static_cast<size_t>(bound) * kSdwPairWords);
  if (!base.has_value()) {
    return std::nullopt;
  }
  DbrValue dbr{*base, bound, stack_base};
  DescriptorSegment ds(memory, dbr);
  Sdw absent;
  for (Segno s = 0; s < bound; ++s) {
    ds.Store(s, absent);
  }
  return ds;
}

}  // namespace rings

// Segment descriptor words. Each SDW describes one segment of a virtual
// memory: where it lives in the core store, how long it is, and the access
// fields of Figure 3 (R/W/E flags, ring numbers R1/R2/R3, and the GATE
// count). An SDW is stored in the descriptor segment as a two-word pair so
// that descriptor segments are themselves ordinary segments in memory.
#ifndef SRC_MEM_SDW_H_
#define SRC_MEM_SDW_H_

#include <optional>
#include <string>

#include "src/core/brackets.h"
#include "src/mem/word.h"

namespace rings {

struct Sdw {
  // Fault bit: when false, any reference through this SDW raises a
  // missing-segment trap (the segment is not in this virtual memory, or
  // the supervisor has revoked it).
  bool present = false;
  // When set, `base` addresses a page table rather than the data; address
  // resolution walks one PTW per reference (see src/mem/page_table.h).
  // Access control fields are unaffected — paging is transparent to it.
  bool paged = false;
  // Absolute address of word 0 of the segment (unpaged) or of the page
  // table (paged) in the core store.
  AbsAddr base = 0;
  // Number of addressable words; references at wordno >= bound trap.
  uint64_t bound = 0;
  // Access control fields (flags, brackets, gate count).
  SegmentAccess access;

  bool operator==(const Sdw&) const = default;
  std::string ToString() const;
};

// Number of words an SDW occupies in a descriptor segment.
inline constexpr unsigned kSdwPairWords = 2;

// Encoding of the SDW pair.
//
// Word 0 (addressing):  bit 63 present | bit 62 paged |
//                       bits 58..40 bound | bits 39..0 base
// Word 1 (access):      bit 63 R | bit 62 W | bit 61 E |
//                       bits 60..58 R1 | bits 57..55 R2 | bits 54..52 R3 |
//                       bits 31..0 GATE
void EncodeSdw(const Sdw& sdw, Word* word0, Word* word1);
Sdw DecodeSdw(Word word0, Word word1);

// Validates the invariants supervisor code must guarantee before
// installing an SDW: well-formed brackets and a gate count within bound.
// Returns a diagnostic message on failure.
std::optional<std::string> ValidateSdw(const Sdw& sdw);

}  // namespace rings

#endif  // SRC_MEM_SDW_H_

// The absolute-addressed core store, plus a bump allocator for carving out
// segment storage. Storage for segments on the real machine was allocated
// with a paging scheme "in scattered fixed-length blocks"; the paper notes
// that paging, appropriately implemented, does not affect access control
// and ignores it, as do we: segments are contiguous in this store.
#ifndef SRC_MEM_PHYSICAL_MEMORY_H_
#define SRC_MEM_PHYSICAL_MEMORY_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/mem/word.h"

namespace rings {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(size_t size_words);

  size_t size() const { return store_.size(); }

  // Unchecked-by-trap accessors: out-of-range absolute addresses indicate a
  // simulator bug (virtual bounds are checked before translation), so they
  // abort rather than raise a simulated trap.
  Word Read(AbsAddr addr) const;
  void Write(AbsAddr addr, Word value);

  // Allocates `words` contiguous words; returns the base absolute address,
  // or nullopt when the store is exhausted.
  std::optional<AbsAddr> Allocate(size_t words);

  // Words handed out so far (for diagnostics and memory-usage reports).
  AbsAddr allocated() const { return next_free_; }

 private:
  std::vector<Word> store_;
  AbsAddr next_free_ = 0;
};

}  // namespace rings

#endif  // SRC_MEM_PHYSICAL_MEMORY_H_

// The absolute-addressed core store, plus a bump allocator for carving out
// segment storage. Storage for segments on the real machine was allocated
// with a paging scheme "in scattered fixed-length blocks"; the paper notes
// that paging, appropriately implemented, does not affect access control
// and ignores it, as do we: segments are contiguous in this store.
//
// The store itself is organized as fixed-size host frames with refcounted
// copy-on-write sharing. A machine cloned from a golden image (see
// src/fleet/golden_image.h) aliases the parent's frames read-only and
// privatizes a frame only on first store, so forking a booted+loaded
// machine costs O(page table), not O(memory). Frames that have never been
// written alias one immortal process-wide zero frame, so even cold
// construction of a multi-megaword store allocates no frame storage at
// all. All of this bookkeeping is host-only: reads and writes observe
// exactly the flat-array semantics the simulator always had, and none of
// the sharing state feeds fingerprints or sim_* counters.
#ifndef SRC_MEM_PHYSICAL_MEMORY_H_
#define SRC_MEM_PHYSICAL_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/word.h"

namespace rings {

// A latched out-of-range access. Out-of-range absolute addresses indicate a
// simulator bug or injected hardware fault; instead of aborting the host
// process, the store records the first offending access and lets the machine
// convert it into a simulated kMachineFault trap (the supervisor then kills
// the offending process rather than the whole machine).
struct MemoryFault {
  AbsAddr addr = 0;
  bool write = false;
};

class PhysicalMemory {
 public:
  // Host frame granularity: 4096 words (32 KiB) per frame. Frames are a
  // host sharing unit only — guest-visible paging (src/mem/page_table)
  // is independent of this size.
  static constexpr size_t kFrameShift = 12;
  static constexpr size_t kFrameWords = size_t{1} << kFrameShift;
  static constexpr size_t kFrameMask = kFrameWords - 1;
  static constexpr size_t kFrameBytes = kFrameWords * sizeof(Word);

  // What to do on an out-of-range absolute address.
  //   kLatchFault: record the access in a sticky latch, make the reference
  //     inert (reads return 0, writes are dropped) and keep running — the
  //     machine's run loop converts the latch into a kMachineFault trap.
  //   kAbort: legacy behaviour for debugging the simulator itself.
  enum class OutOfRangePolicy { kLatchFault, kAbort };

  // Tag selecting the copy-on-write cloning constructor below.
  struct CowClone {};

  explicit PhysicalMemory(size_t size_words);

  // Copy-on-write clone: the new store aliases every frame of `parent`
  // read-only and privatizes a frame on its own first store. Seals the
  // parent first (see SealForCloning); cloning the same sealed parent from
  // multiple threads is safe, but cloning must not race with writes to the
  // parent (a golden image is sealed once and never run again).
  PhysicalMemory(const PhysicalMemory& parent, CowClone);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;
  ~PhysicalMemory();

  size_t size() const { return size_words_; }

  OutOfRangePolicy out_of_range_policy() const { return policy_; }
  void set_out_of_range_policy(OutOfRangePolicy policy) { policy_ = policy; }

  // Read/Write are the simulator's hottest calls (every simulated memory
  // reference lands here); they stay in the header so the in-range path
  // inlines to a bounds check plus a frame-table access. Writes take one
  // extra null check against the writable-frame table: a null entry means
  // the frame is shared (or still the zero frame) and the cold out-of-line
  // Privatize gives this store its own copy.
  Word Read(AbsAddr addr) const {
    if (addr >= size_words_) {
      LatchFault(addr, /*write=*/false);
      return 0;
    }
    return read_frames_[addr >> kFrameShift][addr & kFrameMask];
  }
  void Write(AbsAddr addr, Word value) {
    if (addr >= size_words_) {
      LatchFault(addr, /*write=*/true);
      return;
    }
    Word* frame = write_frames_[addr >> kFrameShift];
    if (frame == nullptr) {
      frame = Privatize(addr >> kFrameShift);
    }
    frame[addr & kFrameMask] = value;
  }

  // The oldest unconsumed out-of-range access, if any; consuming clears the
  // latch (later accesses re-arm it). fault_count() keeps the lifetime total.
  std::optional<MemoryFault> TakeFault() const {
    const auto fault = latched_fault_;
    latched_fault_.reset();
    return fault;
  }
  bool fault_pending() const { return latched_fault_.has_value(); }
  uint64_t fault_count() const { return fault_count_; }

  // Allocates `words` contiguous words; returns the base absolute address,
  // or nullopt when the store is exhausted.
  std::optional<AbsAddr> Allocate(size_t words);

  // Words handed out so far (for diagnostics and memory-usage reports).
  AbsAddr allocated() const { return next_free_; }

  // --- cloning support (src/fleet/golden_image) ---------------------------
  // Drops this store's write access to every owned frame so that clones
  // may alias them: subsequent writes re-privatize frame by frame.
  // Idempotent; called automatically by the cloning constructor and by
  // GoldenImage at registration (under the registry lock) so concurrent
  // Spawn() calls only ever read the sealed tables.
  void SealForCloning() const;

  // Host-side sharing diagnostics for the bench_fleet frame-share report.
  // None of this feeds fingerprints or sim_* counters.
  struct FrameStats {
    size_t frames = 0;          // total logical frames in the store
    size_t zero_frames = 0;     // still aliasing the immortal zero frame
    size_t shared_frames = 0;   // refcount > 1 (aliased by a clone/golden)
    size_t private_frames = 0;  // exclusively owned by this store
    size_t shared_bytes() const { return (zero_frames + shared_frames) * kFrameBytes; }
    size_t private_bytes() const { return private_frames * kFrameBytes; }
  };
  FrameStats frame_stats() const;
  // Lifetime count of frames this store privatized on write (shared-frame
  // copies plus zero-frame materializations).
  uint64_t frames_privatized() const { return frames_privatized_; }

  // --- snapshot support (src/snapshot) -----------------------------------
  // Single-word accessor for image serialization: in-range, non-latching.
  // `addr` must be < size().
  Word word(AbsAddr addr) const {
    return read_frames_[addr >> kFrameShift][addr & kFrameMask];
  }
  // Replaces the store contents. `store` must already be size() words (the
  // snapshot reader rejects size mismatches before calling this).
  // Frame-aware: frames whose incoming contents already match are left
  // untouched, so restoring a snapshot into a clone of the machine that
  // took it keeps unchanged frames shared — the restore-into-clone fast
  // path used by fleet checkpoint restarts.
  void RestoreContents(std::vector<Word> store);
  void RestoreAllocator(AbsAddr next_free) { next_free_ = next_free; }
  void RestoreFaultLatch(std::optional<MemoryFault> fault, uint64_t fault_count) {
    latched_fault_ = fault;
    fault_count_ = fault_count;
  }

 private:
  struct Frame;  // refcounted frame storage, defined in the .cc

  void LatchFault(AbsAddr addr, bool write) const;
  // Gives this store an exclusively-owned, writable copy of frame `index`
  // and returns its word storage. Cold path: called at most once per frame
  // between seals.
  Word* Privatize(size_t frame_index);

  size_t size_words_ = 0;
  // frames_[i] == nullptr means frame i still aliases the immortal
  // process-wide zero frame (never refcounted, never freed).
  std::vector<Frame*> frames_;
  // Always-valid read pointers: either a frame's own words or the zero
  // frame's words.
  std::vector<const Word*> read_frames_;
  // Non-null only while the frame is exclusively owned AND unsealed;
  // mutable so SealForCloning() can drop write access from a const golden
  // machine (host bookkeeping, not logical store state).
  mutable std::vector<Word*> write_frames_;
  // True whenever every write_frames_ slot is null (fresh stores and
  // clones start sealed; Privatize unseals). Lets SealForCloning return
  // without touching the tables when there is nothing to drop, so
  // concurrent Spawn()s of one already-sealed golden never write to it.
  mutable std::atomic<bool> sealed_{true};
  uint64_t frames_privatized_ = 0;
  AbsAddr next_free_ = 0;
  OutOfRangePolicy policy_ = OutOfRangePolicy::kLatchFault;
  // Mutable so that a const Read can latch: the latch models a hardware
  // fault indicator, not logical store state.
  mutable std::optional<MemoryFault> latched_fault_;
  mutable uint64_t fault_count_ = 0;
};

}  // namespace rings

#endif  // SRC_MEM_PHYSICAL_MEMORY_H_

// The absolute-addressed core store, plus a bump allocator for carving out
// segment storage. Storage for segments on the real machine was allocated
// with a paging scheme "in scattered fixed-length blocks"; the paper notes
// that paging, appropriately implemented, does not affect access control
// and ignores it, as do we: segments are contiguous in this store.
#ifndef SRC_MEM_PHYSICAL_MEMORY_H_
#define SRC_MEM_PHYSICAL_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/word.h"

namespace rings {

// A latched out-of-range access. Out-of-range absolute addresses indicate a
// simulator bug or injected hardware fault; instead of aborting the host
// process, the store records the first offending access and lets the machine
// convert it into a simulated kMachineFault trap (the supervisor then kills
// the offending process rather than the whole machine).
struct MemoryFault {
  AbsAddr addr = 0;
  bool write = false;
};

class PhysicalMemory {
 public:
  // What to do on an out-of-range absolute address.
  //   kLatchFault: record the access in a sticky latch, make the reference
  //     inert (reads return 0, writes are dropped) and keep running — the
  //     machine's run loop converts the latch into a kMachineFault trap.
  //   kAbort: legacy behaviour for debugging the simulator itself.
  enum class OutOfRangePolicy { kLatchFault, kAbort };

  explicit PhysicalMemory(size_t size_words);

  size_t size() const { return store_.size(); }

  OutOfRangePolicy out_of_range_policy() const { return policy_; }
  void set_out_of_range_policy(OutOfRangePolicy policy) { policy_ = policy; }

  // Read/Write are the simulator's hottest calls (every simulated memory
  // reference lands here); they stay in the header so the in-range path
  // inlines to a bounds check plus a vector access. The out-of-range path
  // is cold and stays out of line.
  Word Read(AbsAddr addr) const {
    if (addr >= store_.size()) {
      LatchFault(addr, /*write=*/false);
      return 0;
    }
    return store_[addr];
  }
  void Write(AbsAddr addr, Word value) {
    if (addr >= store_.size()) {
      LatchFault(addr, /*write=*/true);
      return;
    }
    store_[addr] = value;
  }

  // The oldest unconsumed out-of-range access, if any; consuming clears the
  // latch (later accesses re-arm it). fault_count() keeps the lifetime total.
  std::optional<MemoryFault> TakeFault() const {
    const auto fault = latched_fault_;
    latched_fault_.reset();
    return fault;
  }
  bool fault_pending() const { return latched_fault_.has_value(); }
  uint64_t fault_count() const { return fault_count_; }

  // Allocates `words` contiguous words; returns the base absolute address,
  // or nullopt when the store is exhausted.
  std::optional<AbsAddr> Allocate(size_t words);

  // Words handed out so far (for diagnostics and memory-usage reports).
  AbsAddr allocated() const { return next_free_; }

  // --- snapshot support (src/snapshot) -----------------------------------
  // The raw store, for image serialization.
  const std::vector<Word>& contents() const { return store_; }
  // Replaces the store wholesale. `store` must already be size() words
  // (the snapshot reader rejects size mismatches before calling this).
  void RestoreContents(std::vector<Word> store) { store_ = std::move(store); }
  void RestoreAllocator(AbsAddr next_free) { next_free_ = next_free; }
  void RestoreFaultLatch(std::optional<MemoryFault> fault, uint64_t fault_count) {
    latched_fault_ = fault;
    fault_count_ = fault_count;
  }

 private:
  void LatchFault(AbsAddr addr, bool write) const;

  std::vector<Word> store_;
  AbsAddr next_free_ = 0;
  OutOfRangePolicy policy_ = OutOfRangePolicy::kLatchFault;
  // Mutable so that a const Read can latch: the latch models a hardware
  // fault indicator, not logical store state.
  mutable std::optional<MemoryFault> latched_fault_;
  mutable uint64_t fault_count_ = 0;
};

}  // namespace rings

#endif  // SRC_MEM_PHYSICAL_MEMORY_H_

// Page tables. "Storage for segments is usually allocated with a paging
// scheme in scattered fixed-length blocks. If used, paging is also taken
// into account by the address translation logic, but is totally
// transparent to an executing machine language program. Paging, if
// appropriately implemented, need not affect access control."
//
// A paged segment's SDW points at a page table instead of the data; each
// page table word (PTW) maps one kPageWords-sized page to a frame in the
// core store. Access control (flags, brackets, gates, bound) stays in the
// SDW — paging affects only the final address resolution, which is
// exactly the transparency the paper asserts and the paging tests verify.
#ifndef SRC_MEM_PAGE_TABLE_H_
#define SRC_MEM_PAGE_TABLE_H_

#include <optional>
#include <vector>

#include "src/mem/physical_memory.h"
#include "src/mem/word.h"

namespace rings {

inline constexpr unsigned kPageShift = 10;
inline constexpr uint64_t kPageWords = uint64_t{1} << kPageShift;  // 1024, as on Multics
inline constexpr uint64_t kPageMask = kPageWords - 1;

// Number of pages needed to back `words` of segment.
constexpr uint64_t PageCount(uint64_t words) { return (words + kPageWords - 1) / kPageWords; }

struct Ptw {
  bool present = false;
  AbsAddr frame = 0;  // absolute address of the page's first word

  bool operator==(const Ptw&) const = default;
};

Word EncodePtw(const Ptw& ptw);
Ptw DecodePtw(Word word);

// Allocates a page table of `pages` PTWs (all absent) in `memory`;
// returns its base address.
std::optional<AbsAddr> AllocatePageTable(PhysicalMemory* memory, uint64_t pages);

// Allocates a frame and installs it as page `page` of the table at
// `table_base`. The frame is zero-filled. Returns the frame address.
std::optional<AbsAddr> InstallZeroPage(PhysicalMemory* memory, AbsAddr table_base, uint64_t page);

}  // namespace rings

#endif  // SRC_MEM_PAGE_TABLE_H_

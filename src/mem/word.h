// Fundamental machine types. The simulated machine is word addressed; all
// words are 64 bits (see DESIGN.md: the Honeywell hardware used 36-bit
// words; widening to 64 keeps every paper-specified field intact while
// letting instruction and indirect-word formats fit in one word).
//
// A two-part address (s, w) identifies word w of the segment numbered s.
// Segment numbers are 15 bits and word numbers 18 bits, as in Multics.
#ifndef SRC_MEM_WORD_H_
#define SRC_MEM_WORD_H_

#include <cstdint>

namespace rings {

using Word = uint64_t;
using Segno = uint32_t;    // 15-bit segment number
using Wordno = uint32_t;   // 18-bit word number within a segment
using AbsAddr = uint64_t;  // absolute (physical) word address

inline constexpr unsigned kSegnoBits = 15;
inline constexpr unsigned kWordnoBits = 18;
inline constexpr Segno kMaxSegno = (Segno{1} << kSegnoBits) - 1;
inline constexpr Wordno kMaxWordno = (Wordno{1} << kWordnoBits) - 1;
inline constexpr uint64_t kMaxSegmentWords = uint64_t{1} << kWordnoBits;

// A two-part virtual address.
struct SegAddr {
  Segno segno = 0;
  Wordno wordno = 0;

  bool operator==(const SegAddr&) const = default;
};

}  // namespace rings

#endif  // SRC_MEM_WORD_H_

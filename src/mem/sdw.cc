#include "src/mem/sdw.h"

#include "src/base/bitfield.h"
#include "src/base/strings.h"

namespace rings {

namespace {

// Word 0 layout.
constexpr unsigned kPresentShift = 63;
constexpr unsigned kPagedShift = 62;
constexpr unsigned kBoundShift = 40;
constexpr unsigned kBoundWidth = 19;  // bound can equal 2^18 (full segment)
constexpr unsigned kBaseShift = 0;
constexpr unsigned kBaseWidth = 40;

// Word 1 layout.
constexpr unsigned kReadShift = 63;
constexpr unsigned kWriteShift = 62;
constexpr unsigned kExecuteShift = 61;
constexpr unsigned kR1Shift = 58;
constexpr unsigned kR2Shift = 55;
constexpr unsigned kR3Shift = 52;
constexpr unsigned kGateShift = 0;
constexpr unsigned kGateWidth = 32;

}  // namespace

std::string Sdw::ToString() const {
  if (!present) {
    return "<absent>";
  }
  return StrFormat("base=%llu bound=%llu %s", static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(bound), access.ToString().c_str());
}

void EncodeSdw(const Sdw& sdw, Word* word0, Word* word1) {
  Word w0 = 0;
  w0 = DepositBits(w0, kPresentShift, 1, sdw.present ? 1 : 0);
  w0 = DepositBits(w0, kPagedShift, 1, sdw.paged ? 1 : 0);
  w0 = DepositBits(w0, kBoundShift, kBoundWidth, sdw.bound);
  w0 = DepositBits(w0, kBaseShift, kBaseWidth, sdw.base);

  Word w1 = 0;
  w1 = DepositBits(w1, kReadShift, 1, sdw.access.flags.read ? 1 : 0);
  w1 = DepositBits(w1, kWriteShift, 1, sdw.access.flags.write ? 1 : 0);
  w1 = DepositBits(w1, kExecuteShift, 1, sdw.access.flags.execute ? 1 : 0);
  w1 = DepositBits(w1, kR1Shift, kRingBits, sdw.access.brackets.r1);
  w1 = DepositBits(w1, kR2Shift, kRingBits, sdw.access.brackets.r2);
  w1 = DepositBits(w1, kR3Shift, kRingBits, sdw.access.brackets.r3);
  w1 = DepositBits(w1, kGateShift, kGateWidth, sdw.access.gate_count);

  *word0 = w0;
  *word1 = w1;
}

Sdw DecodeSdw(Word word0, Word word1) {
  Sdw sdw;
  sdw.present = ExtractBits(word0, kPresentShift, 1) != 0;
  sdw.paged = ExtractBits(word0, kPagedShift, 1) != 0;
  sdw.bound = ExtractBits(word0, kBoundShift, kBoundWidth);
  sdw.base = ExtractBits(word0, kBaseShift, kBaseWidth);

  sdw.access.flags.read = ExtractBits(word1, kReadShift, 1) != 0;
  sdw.access.flags.write = ExtractBits(word1, kWriteShift, 1) != 0;
  sdw.access.flags.execute = ExtractBits(word1, kExecuteShift, 1) != 0;
  sdw.access.brackets.r1 = static_cast<Ring>(ExtractBits(word1, kR1Shift, kRingBits));
  sdw.access.brackets.r2 = static_cast<Ring>(ExtractBits(word1, kR2Shift, kRingBits));
  sdw.access.brackets.r3 = static_cast<Ring>(ExtractBits(word1, kR3Shift, kRingBits));
  sdw.access.gate_count = static_cast<uint32_t>(ExtractBits(word1, kGateShift, kGateWidth));
  return sdw;
}

std::optional<std::string> ValidateSdw(const Sdw& sdw) {
  if (!sdw.present) {
    return std::nullopt;  // absent SDWs carry no meaningful fields
  }
  if (!sdw.access.brackets.IsWellFormed()) {
    return "brackets violate R1 <= R2 <= R3: " + sdw.access.brackets.ToString();
  }
  if (sdw.bound > kMaxSegmentWords) {
    return StrFormat("bound %llu exceeds maximum segment size",
                     static_cast<unsigned long long>(sdw.bound));
  }
  if (sdw.access.gate_count > sdw.bound) {
    return StrFormat("gate count %u exceeds segment bound %llu", sdw.access.gate_count,
                     static_cast<unsigned long long>(sdw.bound));
  }
  return std::nullopt;
}

}  // namespace rings

#include "src/mem/physical_memory.h"

#include <cstdio>
#include <cstdlib>

namespace rings {

PhysicalMemory::PhysicalMemory(size_t size_words) : store_(size_words, 0) {}

void PhysicalMemory::LatchFault(AbsAddr addr, bool write) const {
  if (policy_ == OutOfRangePolicy::kAbort) {
    std::fprintf(stderr, "PhysicalMemory::%s out of range: %llu >= %zu\n",
                 write ? "Write" : "Read", static_cast<unsigned long long>(addr),
                 store_.size());
    std::abort();
  }
  ++fault_count_;
  if (!latched_fault_.has_value()) {
    latched_fault_ = MemoryFault{addr, write};
  }
}

std::optional<AbsAddr> PhysicalMemory::Allocate(size_t words) {
  if (next_free_ + words > store_.size()) {
    return std::nullopt;
  }
  const AbsAddr base = next_free_;
  next_free_ += words;
  return base;
}

}  // namespace rings

#include "src/mem/physical_memory.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rings {

namespace {

// The immortal zero frame: every never-written frame of every store reads
// from this one block of zeros. Never refcounted, never freed.
const Word kZeroFrameWords[PhysicalMemory::kFrameWords] = {};

}  // namespace

// Refcounted frame storage. refs counts the stores aliasing this frame;
// the last decref frees it. incref is relaxed (the holder already owns a
// reference, so publication is ordered by whatever handed the pointer
// over); decref is acq_rel so the delete observes every write made
// through any alias.
struct PhysicalMemory::Frame {
  std::atomic<uint32_t> refs{1};
  Word words[kFrameWords];

  static Frame* NewZeroed() {
    Frame* f = new Frame;
    std::memset(f->words, 0, sizeof(f->words));
    return f;
  }
  static Frame* NewCopy(const Word* src) {
    Frame* f = new Frame;
    std::memcpy(f->words, src, sizeof(f->words));
    return f;
  }
  static void Unref(Frame* f) {
    if (f->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete f;
    }
  }
};

PhysicalMemory::PhysicalMemory(size_t size_words) : size_words_(size_words) {
  const size_t frame_count = (size_words + kFrameWords - 1) >> kFrameShift;
  frames_.assign(frame_count, nullptr);
  read_frames_.assign(frame_count, kZeroFrameWords);
  write_frames_.assign(frame_count, nullptr);
}

PhysicalMemory::PhysicalMemory(const PhysicalMemory& parent, CowClone)
    : size_words_(parent.size_words_),
      next_free_(parent.next_free_),
      policy_(parent.policy_),
      latched_fault_(parent.latched_fault_),
      fault_count_(parent.fault_count_) {
  parent.SealForCloning();
  frames_ = parent.frames_;
  read_frames_ = parent.read_frames_;
  write_frames_.assign(frames_.size(), nullptr);
  for (Frame* frame : frames_) {
    if (frame != nullptr) {
      frame->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PhysicalMemory::~PhysicalMemory() {
  for (Frame* frame : frames_) {
    if (frame != nullptr) {
      Frame::Unref(frame);
    }
  }
}

void PhysicalMemory::SealForCloning() const {
  // Acquire pairs with the release below: once one seal has dropped the
  // write tables, later seals (e.g. from every concurrent clone of a
  // shared golden image) are pure reads of the flag.
  if (sealed_.load(std::memory_order_acquire)) {
    return;
  }
  for (Word*& slot : write_frames_) {
    slot = nullptr;
  }
  sealed_.store(true, std::memory_order_release);
}

Word* PhysicalMemory::Privatize(size_t frame_index) {
  Frame* owned = frames_[frame_index];
  if (owned == nullptr) {
    // First store into a zero frame: materialize private zeroed storage.
    owned = Frame::NewZeroed();
  } else if (owned->refs.load(std::memory_order_acquire) > 1) {
    // Shared with a clone or parent: copy, then drop our alias reference.
    Frame* copy = Frame::NewCopy(owned->words);
    Frame::Unref(owned);
    owned = copy;
  }
  // else: exclusively owned already, merely sealed — re-expose in place.
  frames_[frame_index] = owned;
  read_frames_[frame_index] = owned->words;
  write_frames_[frame_index] = owned->words;
  sealed_.store(false, std::memory_order_relaxed);
  ++frames_privatized_;
  return owned->words;
}

void PhysicalMemory::LatchFault(AbsAddr addr, bool write) const {
  if (policy_ == OutOfRangePolicy::kAbort) {
    std::fprintf(stderr, "PhysicalMemory::%s out of range: %llu >= %zu\n",
                 write ? "Write" : "Read", static_cast<unsigned long long>(addr),
                 size_words_);
    std::abort();
  }
  ++fault_count_;
  if (!latched_fault_.has_value()) {
    latched_fault_ = MemoryFault{addr, write};
  }
}

std::optional<AbsAddr> PhysicalMemory::Allocate(size_t words) {
  if (next_free_ + words > size_words_) {
    return std::nullopt;
  }
  const AbsAddr base = next_free_;
  next_free_ += words;
  return base;
}

PhysicalMemory::FrameStats PhysicalMemory::frame_stats() const {
  FrameStats stats;
  stats.frames = frames_.size();
  for (const Frame* frame : frames_) {
    if (frame == nullptr) {
      ++stats.zero_frames;
    } else if (frame->refs.load(std::memory_order_relaxed) > 1) {
      ++stats.shared_frames;
    } else {
      ++stats.private_frames;
    }
  }
  return stats;
}

void PhysicalMemory::RestoreContents(std::vector<Word> store) {
  for (size_t i = 0; i < frames_.size(); ++i) {
    const size_t base = i << kFrameShift;
    const size_t count = std::min(kFrameWords, size_words_ - base);
    const Word* incoming = store.data() + base;
    if (std::memcmp(incoming, read_frames_[i], count * sizeof(Word)) == 0) {
      continue;  // unchanged frame stays shared (restore-into-clone fast path)
    }
    Word* dst = write_frames_[i];
    if (dst == nullptr) {
      dst = Privatize(i);
    }
    std::memcpy(dst, incoming, count * sizeof(Word));
  }
}

}  // namespace rings

#include "src/mem/physical_memory.h"

#include <cstdio>
#include <cstdlib>

namespace rings {

PhysicalMemory::PhysicalMemory(size_t size_words) : store_(size_words, 0) {}

Word PhysicalMemory::Read(AbsAddr addr) const {
  if (addr >= store_.size()) {
    std::fprintf(stderr, "PhysicalMemory::Read out of range: %llu >= %zu\n",
                 static_cast<unsigned long long>(addr), store_.size());
    std::abort();
  }
  return store_[addr];
}

void PhysicalMemory::Write(AbsAddr addr, Word value) {
  if (addr >= store_.size()) {
    std::fprintf(stderr, "PhysicalMemory::Write out of range: %llu >= %zu\n",
                 static_cast<unsigned long long>(addr), store_.size());
    std::abort();
  }
  store_[addr] = value;
}

std::optional<AbsAddr> PhysicalMemory::Allocate(size_t words) {
  if (next_free_ + words > store_.size()) {
    return std::nullopt;
  }
  const AbsAddr base = next_free_;
  next_free_ += words;
  return base;
}

}  // namespace rings

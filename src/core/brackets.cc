#include "src/core/brackets.h"

#include "src/base/strings.h"

namespace rings {

std::optional<Brackets> Brackets::Make(unsigned r1, unsigned r2, unsigned r3) {
  Brackets b{static_cast<Ring>(r1), static_cast<Ring>(r2), static_cast<Ring>(r3)};
  if (r1 > kMaxRing || r2 > kMaxRing || r3 > kMaxRing || !b.IsWellFormed()) {
    return std::nullopt;
  }
  return b;
}

std::string Brackets::ToString() const {
  return StrFormat("(%u,%u,%u)", r1, r2, r3);
}

std::string AccessFlags::ToString() const {
  std::string out = "---";
  if (read) {
    out[0] = 'r';
  }
  if (write) {
    out[1] = 'w';
  }
  if (execute) {
    out[2] = 'e';
  }
  return out;
}

std::string SegmentAccess::ToString() const {
  return StrFormat("%s%s gates=%u", flags.ToString().c_str(), brackets.ToString().c_str(),
                   gate_count);
}

SegmentAccess MakeDataSegment(Ring write_top, Ring read_top) {
  SegmentAccess access;
  access.flags = {.read = true, .write = true, .execute = false};
  // R1 tops the write bracket, R2 tops the read bracket; R3 is irrelevant
  // for a non-executable segment but must keep R2 <= R3.
  access.brackets = {write_top, read_top, read_top};
  return access;
}

SegmentAccess MakeReadOnlyDataSegment(Ring read_top) {
  SegmentAccess access;
  access.flags = {.read = true, .write = false, .execute = false};
  access.brackets = {read_top, read_top, read_top};
  return access;
}

SegmentAccess MakeProcedureSegment(Ring lo, Ring hi, Ring gate_top, uint32_t gate_count) {
  SegmentAccess access;
  // A pure procedure: not writable in any ring (write flag off); readable
  // and executable within the execute bracket. R1 doubles as the execute
  // bracket floor.
  access.flags = {.read = true, .write = false, .execute = true};
  access.brackets = {lo, hi, gate_top};
  access.gate_count = gate_count;
  return access;
}

SegmentAccess MakeProcedureSegment(Ring lo, Ring hi) {
  return MakeProcedureSegment(lo, hi, hi, 0);
}

SegmentAccess MakeStackSegment(Ring ring) {
  return MakeDataSegment(ring, ring);
}

}  // namespace rings

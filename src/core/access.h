// Pure access-validation predicates: the checks of Figures 4 and 6, and
// the indirect-word read check of Figure 5, expressed over a SegmentAccess
// and an effective ring. The processor (src/cpu) and the software-rings
// baseline (src/b645) both route every reference through these functions so
// there is exactly one statement of the paper's rules in the codebase.
#ifndef SRC_CORE_ACCESS_H_
#define SRC_CORE_ACCESS_H_

#include "src/core/brackets.h"
#include "src/core/ring.h"
#include "src/core/trap_cause.h"

namespace rings {

// Result of a validation: either permitted, or the trap cause the hardware
// would raise.
struct AccessDecision {
  TrapCause cause = TrapCause::kNone;

  bool ok() const { return cause == TrapCause::kNone; }
  static AccessDecision Allow() { return {TrapCause::kNone}; }
  static AccessDecision Deny(TrapCause cause) { return {cause}; }

  bool operator==(const AccessDecision&) const = default;
};

// Figure 6, read side: "an instruction which reads its operand" is allowed
// iff the read flag is on and the effective ring lies inside the read
// bracket [0, R2].
AccessDecision CheckRead(const SegmentAccess& access, Ring effective_ring);

// Figure 6, write side: allowed iff the write flag is on and the effective
// ring lies inside the write bracket [0, R1].
AccessDecision CheckWrite(const SegmentAccess& access, Ring effective_ring);

// Figure 4: instruction fetch. Allowed iff the execute flag is on and the
// ring of execution lies inside the execute bracket [R1, R2].
AccessDecision CheckExecute(const SegmentAccess& access, Ring ring_of_execution);

// Figure 5: "The capability to read an indirect word during effective
// address formation must be validated before the indirect word is
// retrieved. Validation is with respect to the value in TPR.RING at the
// time the indirect word is encountered." Identical to CheckRead; kept as
// a distinct entry point so call sites document which figure they
// implement and so instrumentation can count the two check kinds apart.
AccessDecision CheckIndirectRead(const SegmentAccess& access, Ring effective_ring);

// Figure 7: advance check for transfer instructions other than CALL and
// RETURN. The transfer itself references nothing, but the next fetch will
// be validated; checking early "catches the access violation while it is
// still possible to identify the instruction which made the illegal
// transfer". A non-CALL transfer cannot change the ring of execution, so
// an effective ring raised above the ring of execution (by PR-relative
// addressing or indirection) is rejected.
AccessDecision CheckTransfer(const SegmentAccess& access, Ring ring_of_execution,
                             Ring effective_ring);

// True if `ring` may reference *anything* in a segment with this access —
// used by diagnostics and by the baseline's descriptor-segment compiler.
bool AnyAccess(const SegmentAccess& access, Ring ring);

}  // namespace rings

#endif  // SRC_CORE_ACCESS_H_

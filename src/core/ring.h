// Ring numbers. Following the paper (and Multics), a process has a fixed
// set of r protection rings numbered 0..r-1; ring 0 has the greatest access
// privilege. Multics chose r = 8, and SDW ring fields are 3 bits wide, so
// this library fixes r = 8 as well ("Eight rings are shown in the
// examples, although more or fewer rings might be appropriate in another
// system" — the bracket/validation algebra in this module is written
// against kRingCount and would work for any power-of-two ring count).
#ifndef SRC_CORE_RING_H_
#define SRC_CORE_RING_H_

#include <algorithm>
#include <cstdint>

namespace rings {

using Ring = uint8_t;

inline constexpr Ring kRingCount = 8;
inline constexpr Ring kMaxRing = kRingCount - 1;
inline constexpr unsigned kRingBits = 3;

// Conventional ring assignments in Multics (Use of Rings section).
inline constexpr Ring kSupervisorCore = 0;   // access control, I/O, multiplexing
inline constexpr Ring kSupervisorOuter = 1;  // accounting, stream mgmt, search
inline constexpr Ring kUserRing = 4;         // standard user procedures
inline constexpr Ring kDebugRing = 5;        // user self-protection / debugging

constexpr bool IsValidRing(unsigned value) { return value < kRingCount; }

// The effective-ring combination rule of Figure 5: whenever an address is
// influenced by a pointer register, an indirect word, or a segment writable
// from a higher ring, validation proceeds relative to the *highest* ring
// involved. "TPR.RING is updated with the larger of its current value..."
constexpr Ring MaxRing(Ring a, Ring b) { return std::max(a, b); }
constexpr Ring MaxRing(Ring a, Ring b, Ring c) { return std::max(a, std::max(b, c)); }

}  // namespace rings

#endif  // SRC_CORE_RING_H_

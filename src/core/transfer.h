// Ring-resolution logic for the two instructions that can change the ring
// of execution: CALL (Figure 8) and RETURN (Figure 9), expressed as pure
// functions so the rules can be tested exhaustively over all ring/bracket
// combinations, independent of the processor plumbing.
#ifndef SRC_CORE_TRANSFER_H_
#define SRC_CORE_TRANSFER_H_

#include <cstdint>

#include "src/core/access.h"
#include "src/core/brackets.h"
#include "src/core/ring.h"
#include "src/core/trap_cause.h"

namespace rings {

// Outcome of resolving a CALL or RETURN: either a trap, or the new ring of
// execution.
struct TransferOutcome {
  TrapCause cause = TrapCause::kNone;
  Ring new_ring = 0;
  // CALL only: true when the call crosses into a lower numbered ring (the
  // "downward call" the paper's hardware performs without supervisor
  // intervention).
  bool ring_changed = false;

  bool ok() const { return cause == TrapCause::kNone; }
  static TransferOutcome Trap(TrapCause cause) { return {cause, 0, false}; }
  static TransferOutcome Enter(Ring ring, bool changed) {
    return {TrapCause::kNone, ring, changed};
  }

  bool operator==(const TransferOutcome&) const = default;
};

// Figure 8: validation and ring resolution for CALL.
//
// Inputs: the target segment's access fields, the current ring of execution
// (IPR.RING), the effective ring of the operand address (TPR.RING), the
// target word number, and whether the target lies in the same segment as
// the CALL instruction itself.
//
// Checks, in the order the figure performs them:
//   1. TPR.RING > IPR.RING: "what would appear to be a call within the
//      same ring ... can in fact be an upward call with respect to
//      IPR.RING. Because in normal circumstances this situation represents
//      an error, the decision is made to generate an access violation."
//   2. Execute flag must be on.
//   3. Gate check: unless the target is in the same segment ("Allowing a
//      CALL instruction to ignore the gate list of the segment containing
//      the instruction permits it to be used to implement calls to
//      internal procedures"), target_word must be < gate_count.
//   4. Ring resolution:
//        IPR.RING <  R1             -> upward call, trap for software
//        R1 <= IPR.RING <= R2       -> same-ring call, ring unchanged
//        R2 <  IPR.RING <= R3       -> downward call through the gate
//                                      extension; new ring = R2
//        IPR.RING >  R3             -> no gate capability: access violation
TransferOutcome ResolveCall(const SegmentAccess& target, Ring ring_of_execution,
                            Ring effective_ring, uint64_t target_word, bool same_segment);

// Figure 9: validation and ring resolution for RETURN.
//
// "The ring to which the return is made is specified by the effective ring
// portion of the effective address." Because the effective ring can never
// be lower than the ring of execution, a RETURN can only keep the ring or
// raise it; the downward-return case (after an upward call) manifests as
// the target being executable only below the effective ring, which this
// function reports as kDownwardReturn for the supervisor to emulate.
//
// Checks:
//   1. Execute flag must be on (plain execute violation otherwise).
//   2. effective_ring > target.R2: the return point is only executable
//      below the effective ring — exactly what a downward return looks
//      like to the hardware. Reported as kDownwardReturn; the supervisor
//      decides legitimacy against the dynamic return-gate stack and kills
//      the process if no matching gate exists.
//   3. effective_ring < target.R1: the return ring cannot execute the
//      target — execute violation.
//   4. Otherwise the return enters effective_ring.
TransferOutcome ResolveReturn(const SegmentAccess& target, Ring ring_of_execution,
                              Ring effective_ring);

// The stack-segment selection rule of Figure 8's footnote. The processor
// computes the new stack base segment number for CALL: if the ring is
// unchanged, the current stack segment continues in use ("allowing the
// continued use of a nonstandard stack segment"); if the ring changes, the
// stack segment is stack_base + new_ring, where stack_base is the DBR
// field designating the process's eight consecutive standard stack
// segments.
inline uint64_t SelectStackSegment(bool ring_changed, uint64_t current_stack_segno,
                                   uint64_t dbr_stack_base, Ring new_ring) {
  if (!ring_changed) {
    return current_stack_segno;
  }
  return dbr_stack_base + new_ring;
}

}  // namespace rings

#endif  // SRC_CORE_TRANSFER_H_

#include "src/core/access.h"

namespace rings {

AccessDecision CheckRead(const SegmentAccess& access, Ring effective_ring) {
  if (!access.flags.read || !access.brackets.InReadBracket(effective_ring)) {
    return AccessDecision::Deny(TrapCause::kReadViolation);
  }
  return AccessDecision::Allow();
}

AccessDecision CheckWrite(const SegmentAccess& access, Ring effective_ring) {
  if (!access.flags.write || !access.brackets.InWriteBracket(effective_ring)) {
    return AccessDecision::Deny(TrapCause::kWriteViolation);
  }
  return AccessDecision::Allow();
}

AccessDecision CheckExecute(const SegmentAccess& access, Ring ring_of_execution) {
  if (!access.flags.execute || !access.brackets.InExecuteBracket(ring_of_execution)) {
    return AccessDecision::Deny(TrapCause::kExecuteViolation);
  }
  return AccessDecision::Allow();
}

AccessDecision CheckIndirectRead(const SegmentAccess& access, Ring effective_ring) {
  if (!access.flags.read || !access.brackets.InReadBracket(effective_ring)) {
    return AccessDecision::Deny(TrapCause::kReadViolation);
  }
  return AccessDecision::Allow();
}

AccessDecision CheckTransfer(const SegmentAccess& access, Ring ring_of_execution,
                             Ring effective_ring) {
  if (effective_ring != ring_of_execution) {
    // The pointer that produced this target was influenced by a higher
    // numbered ring; a plain transfer may not act on it (Figure 7).
    return AccessDecision::Deny(TrapCause::kTransferRingViolation);
  }
  return CheckExecute(access, ring_of_execution);
}

bool AnyAccess(const SegmentAccess& access, Ring ring) {
  return CheckRead(access, ring).ok() || CheckWrite(access, ring).ok() ||
         CheckExecute(access, ring).ok() ||
         (access.flags.execute && access.brackets.InGateExtension(ring) && access.gate_count > 0);
}

}  // namespace rings

// Ring brackets: the (R1, R2, R3) triple stored in each segment descriptor
// word, together with the single-bit read/write/execute flags.
//
// From the paper (Figure 3 and accompanying text):
//   - write bracket   = rings [0,  R1]
//   - execute bracket = rings [R1, R2]   (R1 is reused as the bracket floor,
//     "the field of an SDW which specifies the top of the write bracket
//      [specifies] the bottom of the execute bracket as well")
//   - read bracket    = rings [0,  R2]   (R2 reused as the read-bracket top)
//   - gate extension  = rings (R2, R3]
// with the constraint R1 <= R2 <= R3 maintained by supervisor code.
#ifndef SRC_CORE_BRACKETS_H_
#define SRC_CORE_BRACKETS_H_

#include <optional>
#include <string>

#include "src/core/ring.h"

namespace rings {

struct Brackets {
  Ring r1 = 0;
  Ring r2 = 0;
  Ring r3 = 0;

  // Validated constructor helper: returns nullopt unless
  // r1 <= r2 <= r3 < kRingCount. ("Supervisor code for constructing SDW's
  // must guarantee that SDW.R1 <= SDW.R2 <= SDW.R3 is true.")
  static std::optional<Brackets> Make(unsigned r1, unsigned r2, unsigned r3);

  bool IsWellFormed() const { return r1 <= r2 && r2 <= r3 && r3 <= kMaxRing; }

  bool InWriteBracket(Ring ring) const { return ring <= r1; }
  bool InReadBracket(Ring ring) const { return ring <= r2; }
  bool InExecuteBracket(Ring ring) const { return ring >= r1 && ring <= r2; }
  // The rings strictly above the execute bracket that hold the "transfer to
  // a gate and change ring" capability.
  bool InGateExtension(Ring ring) const { return ring > r2 && ring <= r3; }

  bool operator==(const Brackets&) const = default;

  std::string ToString() const;  // "(r1,r2,r3)"
};

// Access flags of an SDW. Turning a flag off indicates that the
// corresponding capability "is not included in any ring of the process".
struct AccessFlags {
  bool read = false;
  bool write = false;
  bool execute = false;

  bool operator==(const AccessFlags&) const = default;
  std::string ToString() const;  // "rwe", "r-e", ...
};

// The access-control content of an SDW, independent of its addressing
// content. This is the unit the pure validation functions in access.h and
// transfer.h operate on, and what an access-control-list entry supplies.
struct SegmentAccess {
  AccessFlags flags;
  Brackets brackets;
  // Number of gate locations. "The list of gate locations of a segment is
  // compressed to a single length field by requiring all gate locations to
  // be gathered together, beginning at location 0 of a segment."
  uint32_t gate_count = 0;

  bool operator==(const SegmentAccess&) const = default;
  std::string ToString() const;
};

// Convenience factories mirroring the paper's Figure 1 and Figure 2
// examples.

// A data segment: read bracket [0,read_top], write bracket [0,write_top],
// execute off. (Figure 1: "Example access indicators for a writable data
// segment".) Requires write_top <= read_top.
SegmentAccess MakeDataSegment(Ring write_top, Ring read_top);

// A read-only data segment: read bracket [0, read_top].
SegmentAccess MakeReadOnlyDataSegment(Ring read_top);

// A pure procedure segment: execute bracket [lo,hi], gate extension to
// gate_top, with `gate_count` gate words; write off; readable through the
// execute bracket top. (Figure 2: "Example access indicators for a pure
// procedure segment which contains gates".)
SegmentAccess MakeProcedureSegment(Ring lo, Ring hi, Ring gate_top, uint32_t gate_count);

// A procedure segment with no gate extension (not callable from above its
// execute bracket).
SegmentAccess MakeProcedureSegment(Ring lo, Ring hi);

// A stack segment for procedures executing in ring n: "read and write
// brackets that end at ring n. Thus, stack areas for these procedures are
// not accessible to procedures executing in any ring m > n."
SegmentAccess MakeStackSegment(Ring ring);

}  // namespace rings

#endif  // SRC_CORE_BRACKETS_H_

#include "src/core/trap_cause.h"

namespace rings {

std::string_view TrapCauseName(TrapCause cause) {
  switch (cause) {
    case TrapCause::kNone:
      return "none";
    case TrapCause::kMissingSegment:
      return "missing_segment";
    case TrapCause::kBoundsViolation:
      return "bounds_violation";
    case TrapCause::kMissingPage:
      return "missing_page";
    case TrapCause::kLinkFault:
      return "link_fault";
    case TrapCause::kReadViolation:
      return "read_violation";
    case TrapCause::kWriteViolation:
      return "write_violation";
    case TrapCause::kExecuteViolation:
      return "execute_violation";
    case TrapCause::kGateViolation:
      return "gate_violation";
    case TrapCause::kCallRingViolation:
      return "call_ring_violation";
    case TrapCause::kTransferRingViolation:
      return "transfer_ring_violation";
    case TrapCause::kUpwardCall:
      return "upward_call";
    case TrapCause::kDownwardReturn:
      return "downward_return";
    case TrapCause::kPrivilegedViolation:
      return "privileged_violation";
    case TrapCause::kIllegalOpcode:
      return "illegal_opcode";
    case TrapCause::kIndirectionLimit:
      return "indirection_limit";
    case TrapCause::kMasterModeEntry:
      return "master_mode_entry";
    case TrapCause::kSupervisorService:
      return "supervisor_service";
    case TrapCause::kTimerRunout:
      return "timer_runout";
    case TrapCause::kIoCompletion:
      return "io_completion";
    case TrapCause::kHalt:
      return "halt";
    case TrapCause::kMachineFault:
      return "machine_fault";
    case TrapCause::kDoubleFault:
      return "double_fault";
    case TrapCause::kTrapStorm:
      return "trap_storm";
    case TrapCause::kNumCauses:
      break;
  }
  return "invalid";
}

bool IsAccessViolation(TrapCause cause) {
  switch (cause) {
    case TrapCause::kMissingSegment:
    case TrapCause::kBoundsViolation:
    case TrapCause::kReadViolation:
    case TrapCause::kWriteViolation:
    case TrapCause::kExecuteViolation:
    case TrapCause::kGateViolation:
    case TrapCause::kCallRingViolation:
    case TrapCause::kTransferRingViolation:
    case TrapCause::kPrivilegedViolation:
      return true;
    default:
      return false;
  }
}

}  // namespace rings

#include "src/core/transfer.h"

namespace rings {

TransferOutcome ResolveCall(const SegmentAccess& target, Ring ring_of_execution,
                            Ring effective_ring, uint64_t target_word, bool same_segment) {
  // Step 1: an effective ring above the ring of execution means the address
  // was influenced by a less privileged ring; the paper rejects the call
  // outright "even if the current ring of execution is within the execute
  // bracket of the called procedure segment".
  if (effective_ring > ring_of_execution) {
    return TransferOutcome::Trap(TrapCause::kCallRingViolation);
  }

  // Step 2: the segment must be executable at all.
  if (!target.flags.execute) {
    return TransferOutcome::Trap(TrapCause::kExecuteViolation);
  }

  // Step 3: the gate check. "A CALL must be directed at a gate location
  // even when the called procedure will execute in the same ring as the
  // calling procedure... The only exception ... occurs if the operand is in
  // the same segment as the instruction."
  if (!same_segment && target_word >= target.gate_count) {
    return TransferOutcome::Trap(TrapCause::kGateViolation);
  }

  const Brackets& b = target.brackets;
  const Ring ring = ring_of_execution;

  if (ring < b.r1) {
    // Upward call: the hardware "responds to each attempted upward call
    // ... by generating a trap to a supervisor procedure which performs
    // the necessary environment adjustments."
    return TransferOutcome::Trap(TrapCause::kUpwardCall);
  }
  if (ring <= b.r2) {
    // Within the execute bracket: a call that does not change the ring.
    return TransferOutcome::Enter(ring, /*changed=*/false);
  }
  if (ring <= b.r3) {
    // Within the gate extension: "the ring of execution of the process
    // will switch down to the top of the execute bracket of the segment as
    // the transfer occurs."
    return TransferOutcome::Enter(b.r2, /*changed=*/true);
  }
  // Above the gate extension: no capability to enter this segment.
  return TransferOutcome::Trap(TrapCause::kExecuteViolation);
}

TransferOutcome ResolveReturn(const SegmentAccess& target, Ring ring_of_execution,
                              Ring effective_ring) {
  if (!target.flags.execute) {
    return TransferOutcome::Trap(TrapCause::kExecuteViolation);
  }
  const Brackets& b = target.brackets;
  if (effective_ring > b.r2) {
    // The return point is only executable below the effective ring: this
    // is what a downward return (following an upward call) looks like to
    // the hardware. It cannot tell a legitimate one from an attack, so it
    // traps and the supervisor consults the dynamic return-gate stack.
    return TransferOutcome::Trap(TrapCause::kDownwardReturn);
  }
  if (effective_ring < b.r1) {
    // The return ring lies below the execute bracket floor: the target was
    // never intended to execute there.
    return TransferOutcome::Trap(TrapCause::kExecuteViolation);
  }
  return TransferOutcome::Enter(effective_ring,
                                /*changed=*/effective_ring != ring_of_execution);
}

}  // namespace rings

// Trap causes raised by the simulated processor. "The access violations
// and other conditions requiring software intervention ... generate traps,
// derailing the instruction cycle." (paper, Hardware Implementation
// section). The supervisor receives the cause together with the saved
// processor state.
#ifndef SRC_CORE_TRAP_CAUSE_H_
#define SRC_CORE_TRAP_CAUSE_H_

#include <string_view>

namespace rings {

enum class TrapCause {
  kNone = 0,

  // Segmented-memory faults.
  kMissingSegment,     // segno out of descriptor-segment bounds or SDW not present
  kBoundsViolation,    // wordno >= SDW.BOUND
  kMissingPage,        // paged segment, PTW not present (demand paging)
  kLinkFault,          // fault-tagged indirect word: unsnapped dynamic link

  // Access violations from the ring checks of Figures 4-9.
  kReadViolation,      // read flag off or TPR.RING > SDW.R2      (Fig 6)
  kWriteViolation,     // write flag off or TPR.RING > SDW.R1     (Fig 6)
  kExecuteViolation,   // execute flag off, or ring outside execute bracket (Fig 4)
  kGateViolation,      // CALL target not one of the first SDW.GATE words   (Fig 8)
  kCallRingViolation,  // CALL whose effective ring exceeds the ring of execution (Fig 8)
  kTransferRingViolation,  // non-CALL transfer through a pointer with a raised ring (Fig 7)

  // Conditions the hardware deliberately leaves to software (Call and
  // Return section): an upward call, and the subsequent downward return.
  kUpwardCall,         // CALL into a segment whose execute bracket lies below the ring
  kDownwardReturn,     // RETURN whose target is only executable below the effective ring

  // Instruction-level conditions.
  kPrivilegedViolation,  // privileged instruction outside ring 0 (or SVC outside 0/1)
  kIllegalOpcode,
  kIndirectionLimit,   // runaway indirect-word chain

  // Asynchronous / service conditions.
  kMasterModeEntry,    // MME instruction: explicit trap to the supervisor
  kSupervisorService,  // SVC instruction: supervisor service dispatch
  kTimerRunout,        // end of scheduling quantum
  kIoCompletion,       // simulated channel finished
  kHalt,               // HLT executed in ring 0

  // Hardware-fault conditions (see DESIGN.md, "Fault model & recovery").
  kMachineFault,       // physical store fault (e.g. out-of-range absolute address)
  kDoubleFault,        // trap raised while the supervisor was servicing a trap
  kTrapStorm,          // watchdog: repeated traps without forward progress

  kNumCauses,
};

// Stable human-readable name ("read_violation" etc) for traces and tests.
std::string_view TrapCauseName(TrapCause cause);

// True for the causes that represent access-control denials, as opposed to
// service requests or asynchronous events.
bool IsAccessViolation(TrapCause cause);

}  // namespace rings

#endif  // SRC_CORE_TRAP_CAUSE_H_

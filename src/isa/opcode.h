// The instruction set of the simulated processor. The paper specifies only
// the access-control-relevant behaviour (EAP-type instructions, transfer
// instructions, CALL, RETURN, privileged instructions, and the read/write
// operand classes of Figure 6); the rest is a small Multics-flavoured
// word-machine ISA sufficient to write the supervisor gates, examples, and
// benchmark workloads.
#ifndef SRC_ISA_OPCODE_H_
#define SRC_ISA_OPCODE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace rings {

enum class Opcode : uint8_t {
  kNop = 0,

  // Loads (read their operand; Figure 6 read validation).
  kLda,   // A <- C(ea)
  kLdq,   // Q <- C(ea)
  kLdx,   // X[reg] <- C(ea) (low 18 bits)

  // Stores (write their operand; Figure 6 write validation).
  kSta,   // C(ea) <- A
  kStq,   // C(ea) <- Q
  kStx,   // C(ea) <- X[reg]
  kStz,   // C(ea) <- 0

  // Immediate forms (no memory operand; the offset field is the literal).
  kLdai,  // A <- sext(offset)
  kLdqi,  // Q <- sext(offset)
  kLdxi,  // X[reg] <- offset
  kAdai,  // A <- A + sext(offset)

  // Arithmetic / logic on A with a memory operand (read validation).
  kAda,   // A <- A + C(ea)
  kSba,   // A <- A - C(ea)
  kMpy,   // A <- A * C(ea)
  kAna,   // A <- A & C(ea)
  kOra,   // A <- A | C(ea)
  kEra,   // A <- A ^ C(ea)

  // Register-only operations (no memory operand).
  kAls,   // A <- A << offset (logical)
  kArs,   // A <- A >> offset (logical)
  kNega,  // A <- -A
  kXaq,   // exchange A and Q

  // Read-modify-write (both validations).
  kAos,   // C(ea) <- C(ea) + 1

  // EAP-type instructions (Figure 7): load a pointer register from the
  // effective address; "the operand is not referenced, so no access
  // validation is required. Instructions of this type are important ...
  // for they are the only way to load PR's."
  kEpp,   // PR[reg] <- TPR (ring, segno, wordno)

  // Stores a pointer register as an indirect word (write validation; the
  // ring field written is PR[reg].RING, preserving argument-chain safety).
  kSpp,   // C(ea) <- indirect-word(PR[reg])

  // Transfer instructions other than CALL/RETURN (Figure 7 advance check;
  // cannot change the ring of execution).
  kTra,   // IC <- ea
  kTze,   // if A == 0
  kTnz,   // if A != 0
  kTmi,   // if A < 0
  kTpl,   // if A >= 0

  // The ring-crossing pair (Figures 8 and 9).
  kCall,
  kRet,

  // Explicit trap to the supervisor ("master mode entry"; the 645-style
  // software-rings baseline performs every ring crossing through this).
  kMme,

  // Supervisor service dispatch: the bodies of supervisor services are
  // C++ in this reproduction (see DESIGN.md); gate segments contain real
  // guest code `SVC n; RET` so the hardware CALL/RETURN path is always
  // exercised. Executable in rings 0 and 1 only.
  kSvc,

  // Privileged instructions: "Such instructions are designated as
  // privileged and will be executed by the processor only in ring 0."
  kLdbr,  // load descriptor base register from operand pair
  kRett,  // restore processor state after a trap
  kSio,   // start an I/O channel operation
  kHlt,   // stop the processor

  kNumOpcodes,
};

// How an instruction treats its operand; drives which Figure 4-7 checks
// the processor applies.
enum class OperandKind : uint8_t {
  kNone,       // no effective-address calculation at all
  kImmediate,  // offset is a literal; no memory reference
  kRead,       // reads C(ea)            (Figure 6)
  kWrite,      // writes C(ea)           (Figure 6)
  kReadWrite,  // reads and writes C(ea) (Figure 6, both checks)
  kEaOnly,     // EAP-type: ea computed, operand not referenced (Figure 7)
  kTransfer,   // transfer advance check (Figure 7)
  kCall,       // Figure 8
  kReturn,     // Figure 9
};

// Minimum privilege required: the highest ring allowed to execute the
// opcode. kMaxRing means unprivileged.
struct OpcodeInfo {
  std::string_view mnemonic;
  OperandKind operand;
  uint8_t max_ring;        // executing above this ring traps
  bool uses_reg = false;   // the reg field selects an X or PR register
};

const OpcodeInfo& GetOpcodeInfo(Opcode op);
std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic);
bool IsValidOpcode(uint64_t raw);

}  // namespace rings

#endif  // SRC_ISA_OPCODE_H_

// Indirect words (the IND of Figure 3). "Indirect words contain the same
// information as PR's, and may also indicate further indirection with an
// indirect flag." The ring number in an indirect word forces validation of
// the eventual operand reference relative to a higher numbered ring — this
// is half of the automatic argument-validation mechanism.
//
// Word layout (64 bits):
//   bits 62..60  RING
//   bit  59      I (further indirection)
//   bit  58      F (fault tag: an unsnapped dynamic link — encountering it
//                in effective-address formation traps to the supervisor,
//                which resolves the symbolic reference, overwrites the
//                word with a snapped pointer, and resumes the disrupted
//                instruction; see src/sup/supervisor.cc)
//   bits 47..33  SEGNO  (for a faulted link: the segment owning the word)
//   bits 17..0   WORDNO (for a faulted link: the link-table index)
#ifndef SRC_ISA_INDIRECT_WORD_H_
#define SRC_ISA_INDIRECT_WORD_H_

#include <string>

#include "src/base/bitfield.h"
#include "src/core/ring.h"
#include "src/mem/word.h"

namespace rings {

struct IndirectWord {
  Ring ring = 0;
  bool indirect = false;
  Segno segno = 0;
  Wordno wordno = 0;
  // Unsnapped link (kept last so four-field aggregate initialization of
  // ordinary pointers stays valid).
  bool fault = false;

  bool operator==(const IndirectWord&) const = default;
  std::string ToString() const;  // "ring|segno|wordno[,*][,F]"
};

namespace indirect_word_layout {
inline constexpr unsigned kRingShift = 60;
inline constexpr unsigned kIndirectShift = 59;
inline constexpr unsigned kFaultShift = 58;
inline constexpr unsigned kSegnoShift = 33;
inline constexpr unsigned kWordnoShift = 0;
}  // namespace indirect_word_layout

Word EncodeIndirectWord(const IndirectWord& iw);

// Decoded during effective-address formation for every `,*` operand, so it
// stays in the header and inlines to a few shifts and masks.
inline IndirectWord DecodeIndirectWord(Word word) {
  namespace layout = indirect_word_layout;
  IndirectWord iw;
  iw.ring = static_cast<Ring>(ExtractBits(word, layout::kRingShift, kRingBits));
  iw.indirect = ExtractBits(word, layout::kIndirectShift, 1) != 0;
  iw.fault = ExtractBits(word, layout::kFaultShift, 1) != 0;
  iw.segno = static_cast<Segno>(ExtractBits(word, layout::kSegnoShift, kSegnoBits));
  iw.wordno = static_cast<Wordno>(ExtractBits(word, layout::kWordnoShift, kWordnoBits));
  return iw;
}

}  // namespace rings

#endif  // SRC_ISA_INDIRECT_WORD_H_

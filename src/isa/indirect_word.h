// Indirect words (the IND of Figure 3). "Indirect words contain the same
// information as PR's, and may also indicate further indirection with an
// indirect flag." The ring number in an indirect word forces validation of
// the eventual operand reference relative to a higher numbered ring — this
// is half of the automatic argument-validation mechanism.
//
// Word layout (64 bits):
//   bits 62..60  RING
//   bit  59      I (further indirection)
//   bit  58      F (fault tag: an unsnapped dynamic link — encountering it
//                in effective-address formation traps to the supervisor,
//                which resolves the symbolic reference, overwrites the
//                word with a snapped pointer, and resumes the disrupted
//                instruction; see src/sup/supervisor.cc)
//   bits 47..33  SEGNO  (for a faulted link: the segment owning the word)
//   bits 17..0   WORDNO (for a faulted link: the link-table index)
#ifndef SRC_ISA_INDIRECT_WORD_H_
#define SRC_ISA_INDIRECT_WORD_H_

#include <string>

#include "src/core/ring.h"
#include "src/mem/word.h"

namespace rings {

struct IndirectWord {
  Ring ring = 0;
  bool indirect = false;
  Segno segno = 0;
  Wordno wordno = 0;
  // Unsnapped link (kept last so four-field aggregate initialization of
  // ordinary pointers stays valid).
  bool fault = false;

  bool operator==(const IndirectWord&) const = default;
  std::string ToString() const;  // "ring|segno|wordno[,*][,F]"
};

Word EncodeIndirectWord(const IndirectWord& iw);
IndirectWord DecodeIndirectWord(Word word);

}  // namespace rings

#endif  // SRC_ISA_INDIRECT_WORD_H_

#include "src/isa/indirect_word.h"

#include "src/base/bitfield.h"
#include "src/base/strings.h"

namespace rings {

namespace layout = indirect_word_layout;

std::string IndirectWord::ToString() const {
  std::string out = StrFormat("%u|%u|%u", ring, segno, wordno);
  if (indirect) {
    out += ",*";
  }
  if (fault) {
    out += ",F";
  }
  return out;
}

Word EncodeIndirectWord(const IndirectWord& iw) {
  Word w = 0;
  w = DepositBits(w, layout::kRingShift, kRingBits, iw.ring);
  w = DepositBits(w, layout::kIndirectShift, 1, iw.indirect ? 1 : 0);
  w = DepositBits(w, layout::kFaultShift, 1, iw.fault ? 1 : 0);
  w = DepositBits(w, layout::kSegnoShift, kSegnoBits, iw.segno);
  w = DepositBits(w, layout::kWordnoShift, kWordnoBits, iw.wordno);
  return w;
}

}  // namespace rings

#include "src/isa/indirect_word.h"

#include "src/base/bitfield.h"
#include "src/base/strings.h"

namespace rings {

namespace {

constexpr unsigned kRingShift = 60;
constexpr unsigned kIndirectShift = 59;
constexpr unsigned kFaultShift = 58;
constexpr unsigned kSegnoShift = 33;
constexpr unsigned kWordnoShift = 0;

}  // namespace

std::string IndirectWord::ToString() const {
  std::string out = StrFormat("%u|%u|%u", ring, segno, wordno);
  if (indirect) {
    out += ",*";
  }
  if (fault) {
    out += ",F";
  }
  return out;
}

Word EncodeIndirectWord(const IndirectWord& iw) {
  Word w = 0;
  w = DepositBits(w, kRingShift, kRingBits, iw.ring);
  w = DepositBits(w, kIndirectShift, 1, iw.indirect ? 1 : 0);
  w = DepositBits(w, kFaultShift, 1, iw.fault ? 1 : 0);
  w = DepositBits(w, kSegnoShift, kSegnoBits, iw.segno);
  w = DepositBits(w, kWordnoShift, kWordnoBits, iw.wordno);
  return w;
}

IndirectWord DecodeIndirectWord(Word word) {
  IndirectWord iw;
  iw.ring = static_cast<Ring>(ExtractBits(word, kRingShift, kRingBits));
  iw.indirect = ExtractBits(word, kIndirectShift, 1) != 0;
  iw.fault = ExtractBits(word, kFaultShift, 1) != 0;
  iw.segno = static_cast<Segno>(ExtractBits(word, kSegnoShift, kSegnoBits));
  iw.wordno = static_cast<Wordno>(ExtractBits(word, kWordnoShift, kWordnoBits));
  return iw;
}

}  // namespace rings

#include "src/isa/instruction.h"

#include "src/base/bitfield.h"
#include "src/base/strings.h"

namespace rings {

namespace {

constexpr unsigned kOpcodeShift = 56;
constexpr unsigned kOpcodeWidth = 8;
constexpr unsigned kIndirectShift = 55;
constexpr unsigned kPrRelShift = 54;
constexpr unsigned kPrnumShift = 51;
constexpr unsigned kRegShift = 48;
constexpr unsigned kTagShift = 45;
constexpr unsigned kFieldWidth3 = 3;
constexpr unsigned kOffsetShift = 0;
constexpr unsigned kOffsetWidth = 18;

}  // namespace

std::string Instruction::ToString() const {
  const OpcodeInfo& info = GetOpcodeInfo(opcode);
  std::string out(info.mnemonic);
  if (info.uses_reg) {
    // Render the register operand in assembler syntax: a pointer register
    // for the EAP-type pair, a bare device number for SIO, an index
    // register otherwise.
    if (opcode == Opcode::kEpp || opcode == Opcode::kSpp) {
      out += StrFormat(" pr%u,", reg);
    } else if (opcode == Opcode::kSio) {
      out += StrFormat(" %u,", reg);
    } else {
      out += StrFormat(" x%u,", reg);
    }
  }
  if (info.operand != OperandKind::kNone) {
    if (pr_relative) {
      out += StrFormat(" pr%u|%d", prnum, offset);
    } else {
      out += StrFormat(" %d", offset);
    }
    if (tag != 0) {
      out += StrFormat(",x%u", tag);
    }
    if (indirect) {
      out += ",*";
    }
  }
  return out;
}

Word EncodeInstruction(const Instruction& ins) {
  Word w = 0;
  w = DepositBits(w, kOpcodeShift, kOpcodeWidth, static_cast<uint64_t>(ins.opcode));
  w = DepositBits(w, kIndirectShift, 1, ins.indirect ? 1 : 0);
  w = DepositBits(w, kPrRelShift, 1, ins.pr_relative ? 1 : 0);
  w = DepositBits(w, kPrnumShift, kFieldWidth3, ins.prnum);
  w = DepositBits(w, kRegShift, kFieldWidth3, ins.reg);
  w = DepositBits(w, kTagShift, kFieldWidth3, ins.tag);
  w = DepositBits(w, kOffsetShift, kOffsetWidth, EncodeSigned(ins.offset, kOffsetWidth));
  return w;
}

bool DecodeInstruction(Word word, Instruction* ins) {
  const uint64_t raw_opcode = ExtractBits(word, kOpcodeShift, kOpcodeWidth);
  if (!IsValidOpcode(raw_opcode)) {
    return false;
  }
  ins->opcode = static_cast<Opcode>(raw_opcode);
  ins->indirect = ExtractBits(word, kIndirectShift, 1) != 0;
  ins->pr_relative = ExtractBits(word, kPrRelShift, 1) != 0;
  ins->prnum = static_cast<uint8_t>(ExtractBits(word, kPrnumShift, kFieldWidth3));
  ins->reg = static_cast<uint8_t>(ExtractBits(word, kRegShift, kFieldWidth3));
  ins->tag = static_cast<uint8_t>(ExtractBits(word, kTagShift, kFieldWidth3));
  ins->offset =
      static_cast<int32_t>(SignExtend(ExtractBits(word, kOffsetShift, kOffsetWidth), kOffsetWidth));
  return true;
}

Instruction MakeIns(Opcode op, int32_t offset) {
  Instruction ins;
  ins.opcode = op;
  ins.offset = offset;
  return ins;
}

Instruction MakeInsReg(Opcode op, uint8_t reg, int32_t offset) {
  Instruction ins = MakeIns(op, offset);
  ins.reg = reg;
  return ins;
}

Instruction MakeInsPr(Opcode op, uint8_t prnum, int32_t offset, bool indirect) {
  Instruction ins = MakeIns(op, offset);
  ins.pr_relative = true;
  ins.prnum = prnum;
  ins.indirect = indirect;
  return ins;
}

Instruction MakeInsPrReg(Opcode op, uint8_t prnum, uint8_t reg, int32_t offset, bool indirect) {
  Instruction ins = MakeInsPr(op, prnum, offset, indirect);
  ins.reg = reg;
  return ins;
}

}  // namespace rings
